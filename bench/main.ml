(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6) against the simulated substrate, printing measured
   numbers next to the paper's reported ones.

     dune exec bench/main.exe            — everything (reduced workload sizes)
     dune exec bench/main.exe -- full    — everything at paper-scale sizes
     dune exec bench/main.exe -- fig5    — a single experiment
     dune exec bench/main.exe -- micro   — Bechamel micro-benchmarks of
                                           the rewriter itself            *)

module E = Bolt_pipeline.Experiments
module P = Bolt_pipeline.Pipeline
module Obs = Bolt_obs.Obs
module Json = Bolt_obs.Json

(* One telemetry bundle for the whole harness: every experiment runs in a
   span, and each run_* contributes a JSON section.  Everything lands in
   BENCH_results.json at the end via the manifest serializer. *)
let obs = Obs.create ~name:"bench" ()
let bench_sections : (string * Json.t) list ref = ref []
let add_section name j = bench_sections := (name, j) :: !bench_sections

let section title = Printf.printf "\n==== %s ====\n%!" title

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = Obs.span obs name f in
  Printf.printf "[%s: %.1fs]\n%!" name (Unix.gettimeofday () -. t0);
  r

(* ---- Figure 5 ---- *)

let run_fig5 ~quick () =
  section "Figure 5: BOLT speedups on data-center workloads (over HFSort(+LTO) baseline)";
  let results = timed "fig5" (fun () -> E.fig5 ~quick ()) in
  Printf.printf "%-12s %10s %10s  %s\n" "workload" "paper(%)" "ours(%)" "behaviour";
  List.iter
    (fun (r : E.fb_result) ->
      let paper = try List.assoc r.E.fb_name E.fig5_paper with Not_found -> 0.0 in
      Printf.printf "%-12s %10.1f %10.1f  %s\n" r.E.fb_name paper r.E.fb_speedup
        (if r.E.fb_behaviour_ok then "identical" else "MISMATCH!"))
    results;
  let ours = List.map (fun (r : E.fb_result) -> r.E.fb_speedup) results in
  let paper = List.map snd E.fig5_paper in
  Printf.printf "%-12s %10.1f %10.1f\n" "geomean" (E.geomean paper) (E.geomean ours);
  add_section "fig5"
    (Json.Obj
       [
         ( "workloads",
           Json.List
             (List.map
                (fun (r : E.fb_result) ->
                  Json.Obj
                    [
                      ("name", Json.String r.E.fb_name);
                      ( "paper_pct",
                        Json.Float
                          (try List.assoc r.E.fb_name E.fig5_paper
                           with Not_found -> 0.0) );
                      ("ours_pct", Json.Float r.E.fb_speedup);
                      ("behaviour_ok", Json.Bool r.E.fb_behaviour_ok);
                    ])
                results) );
         ("geomean_paper_pct", Json.Float (E.geomean paper));
         ("geomean_ours_pct", Json.Float (E.geomean ours));
       ]);
  results

(* ---- Figure 6 ---- *)

let run_fig6 (hhvm : E.fb_result) =
  section "Figure 6: micro-architecture miss reductions for hhvm (%)";
  Printf.printf "%-14s %10s %10s\n" "metric" "paper(%)" "ours(%)";
  List.iter2
    (fun (name, paper) (_, ours) -> Printf.printf "%-14s %10.1f %10.1f\n" name paper ours)
    E.fig6_paper (E.fig6_rows hhvm);
  add_section "fig6"
    (Json.List
       (List.map2
          (fun (name, paper) (_, ours) ->
            Json.Obj
              [
                ("metric", Json.String name);
                ("paper_pct", Json.Float paper);
                ("ours_pct", Json.Float ours);
              ])
          E.fig6_paper (E.fig6_rows hhvm)))

(* ---- Figures 7/8 ---- *)

let print_cc title paper (cc : E.cc_result) =
  section title;
  (match cc.E.cc_variants with
  | v :: _ ->
      Printf.printf "%-14s" "variant";
      List.iter (fun (n, _) -> Printf.printf " %18s" n) v.E.cv_speedups;
      Printf.printf "\n"
  | [] -> ());
  List.iter
    (fun (v : E.cc_variant) ->
      Printf.printf "%-14s" v.E.cv_name;
      let paper_row = List.assoc_opt v.E.cv_name paper in
      List.iter
        (fun (input, ours) ->
          let p =
            match paper_row with
            | Some row -> ( try List.assoc input row with Not_found -> 0.0)
            | None -> 0.0
          in
          Printf.printf "  %6.1f (p %5.1f)" ours p)
        v.E.cv_speedups;
      Printf.printf "\n")
    cc.E.cc_variants

let cc_json (cc : E.cc_result) =
  Json.List
    (List.map
       (fun (v : E.cc_variant) ->
         Json.Obj
           [
             ("variant", Json.String v.E.cv_name);
             ( "speedups_pct",
               Json.Obj
                 (List.map (fun (input, s) -> (input, Json.Float s)) v.E.cv_speedups) );
           ])
       cc.E.cc_variants)

(* ---- Table 2 ---- *)

let run_table2 (cc : E.cc_result) =
  section "Table 2: dyno-stats deltas for the compiler workload (%)";
  let over_base, over_pgo = E.table2_rows cc in
  Printf.printf "%-34s %10s %10s %12s %12s\n" "metric" "paper/base" "ours/base"
    "paper/pgolto" "ours/pgolto";
  List.iter
    (fun (name, p_base, p_pgo) ->
      let find rows = try List.assoc name rows with Not_found -> nan in
      Printf.printf "%-34s %10.1f %10.1f %12.1f %12.1f\n" name p_base (find over_base)
        p_pgo (find over_pgo))
    E.table2_paper;
  let rows name rows =
    (name, Json.Obj (List.map (fun (m, v) -> (m, Json.Float v)) rows))
  in
  add_section "table2" (Json.Obj [ rows "over_base" over_base; rows "over_pgolto" over_pgo ])

(* ---- Figure 9 ---- *)

let run_fig9 (hhvm : E.fb_result) =
  section "Figure 9: instruction-address heat maps for hhvm";
  let r = E.fig9_of hhvm in
  Printf.printf "before: hot extent %d KB, heat in first 1/16 of text: %.1f%%\n"
    (r.E.h_extent_before / 1024)
    (100.0 *. r.E.h_prefix_before);
  Printf.printf "after : hot extent %d KB, heat in first 1/16 of text: %.1f%%\n"
    (r.E.h_extent_after / 1024)
    (100.0 *. r.E.h_prefix_after);
  Printf.printf "(paper: hot code packed from a 148.2MB span into ~4MB)\n";
  add_section "fig9"
    (Json.Obj
       [
         ("hot_extent_before", Json.Int r.E.h_extent_before);
         ("hot_extent_after", Json.Int r.E.h_extent_after);
         ("heat_in_prefix_16th_before", Json.Float r.E.h_prefix_before);
         ("heat_in_prefix_16th_after", Json.Float r.E.h_prefix_after);
         ("heatmap_before", Bolt_core.Heatmap.summary_json r.E.h_before);
         ("heatmap_after", Bolt_core.Heatmap.summary_json r.E.h_after);
       ]);
  Printf.printf "\n-- before --\n%!";
  Fmt.pr "%a@." Bolt_core.Heatmap.render r.E.h_before;
  Printf.printf "-- after --\n%!";
  Fmt.pr "%a@." Bolt_core.Heatmap.render r.E.h_after

(* ---- Figure 10 ---- *)

let run_fig10 ~quick () =
  section "Figure 10 / §6.3: -report-bad-layout on the PGO+LTO compiler binary";
  let findings = timed "fig10" (fun () -> E.fig10 ~quick ()) in
  Printf.printf "%d suspicious hot/cold interleavings; top findings:\n" (List.length findings);
  List.iteri (fun i f -> if i < 8 then Fmt.pr "  %a" Bolt_core.Report.pp_finding f) findings;
  add_section "fig10" (Json.Obj [ ("findings", Json.Int (List.length findings)) ])

(* ---- Figure 11 ---- *)

let run_fig11 () =
  section "Figure 11 / §6.5: improvement from using LBRs (% vs non-LBR profile)";
  let rows = timed "fig11" (fun () -> E.fig11 ()) in
  (match rows with
  | (_, metrics) :: _ ->
      Printf.printf "%-12s" "scenario";
      List.iter (fun (m, _) -> Printf.printf " %17s" m) metrics;
      Printf.printf "\n"
  | [] -> ());
  List.iter
    (fun (scenario, metrics) ->
      Printf.printf "%-12s" scenario;
      let paper = try List.assoc scenario E.fig11_paper with Not_found -> [] in
      List.iter
        (fun (m, v) ->
          let p = try List.assoc m paper with Not_found -> 0.0 in
          Printf.printf "  %5.2f (p %5.2f)" v p)
        metrics;
      Printf.printf "\n")
    rows;
  add_section "fig11"
    (Json.Obj
       (List.map
          (fun (scenario, metrics) ->
            (scenario, Json.Obj (List.map (fun (m, v) -> (m, Json.Float v)) metrics)))
          rows))

(* ---- §5.1 ---- *)

let run_sec51 () =
  section "§5.1: sampling events (speedup obtained from each profile source)";
  let rows = timed "sec51" (fun () -> E.sec51 ()) in
  List.iter (fun (name, s) -> Printf.printf "  %-22s %6.2f%%\n" name s) rows;
  let lbr =
    List.filter (fun (n, _) -> String.length n > 3 && String.sub n 0 3 = "lbr") rows
  in
  let vals = List.map snd lbr in
  let spread =
    List.fold_left max neg_infinity vals -. List.fold_left min infinity vals
  in
  Printf.printf "  LBR spread across events: %.2f%% (paper: within ~1%%)\n" spread;
  add_section "sec51"
    (Json.Obj
       (("lbr_spread_pct", Json.Float spread)
       :: List.map (fun (name, s) -> (name, Json.Float s)) rows))

(* ---- ICF ---- *)

let run_icf () =
  section "§4: BOLT ICF on top of linker ICF (hhvm-like)";
  let r = timed "icf" (fun () -> E.icf_experiment ()) in
  Printf.printf "  linker ICF: %d functions, %d bytes\n" r.E.icf_linker_folded
    r.E.icf_linker_bytes;
  Printf.printf "  BOLT ICF  : %d more functions, %d bytes = %.1f%% of text (paper: ~3%%)\n"
    r.E.icf_bolt_folded r.E.icf_bolt_bytes r.E.icf_pct;
  add_section "icf"
    (Json.Obj
       [
         ("linker_folded", Json.Int r.E.icf_linker_folded);
         ("linker_bytes", Json.Int r.E.icf_linker_bytes);
         ("bolt_folded", Json.Int r.E.icf_bolt_folded);
         ("bolt_bytes", Json.Int r.E.icf_bolt_bytes);
         ("bolt_pct_of_text", Json.Float r.E.icf_pct);
       ])

(* ---- Figure 2 ---- *)

let run_fig2 () =
  section "Figure 2: compile-time layout (plain, PGO) vs binary-level samples (BOLT)";
  let r = timed "fig2" (fun () -> E.fig2 ()) in
  Printf.printf
    "  taken conditional branches: plain %d, +PGO recompile %d, plain+BOLT %d\n"
    r.E.f2_plain_taken r.E.f2_pgo_taken r.E.f2_bolt_taken;
  Printf.printf "  total taken branches: plain %d, PGO %d, BOLT %d\n"
    r.E.f2_plain_branches r.E.f2_pgo_branches r.E.f2_bolt_branches;
  Printf.printf "  cycles: plain %d, PGO %d, BOLT %d; behaviour %s\n"
    r.E.f2_plain_cycles r.E.f2_pgo_cycles r.E.f2_bolt_cycles
    (if r.E.f2_behaviour_ok then "identical" else "MISMATCH!");
  add_section "fig2"
    (Json.Obj
       [
         ("plain_taken", Json.Int r.E.f2_plain_taken);
         ("pgo_taken", Json.Int r.E.f2_pgo_taken);
         ("bolt_taken", Json.Int r.E.f2_bolt_taken);
         ("plain_branches", Json.Int r.E.f2_plain_branches);
         ("pgo_branches", Json.Int r.E.f2_pgo_branches);
         ("bolt_branches", Json.Int r.E.f2_bolt_branches);
         ("plain_cycles", Json.Int r.E.f2_plain_cycles);
         ("pgo_cycles", Json.Int r.E.f2_pgo_cycles);
         ("bolt_cycles", Json.Int r.E.f2_bolt_cycles);
         ("behaviour_ok", Json.Bool r.E.f2_behaviour_ok);
       ])

(* ---- ablations ---- *)

let run_ablations ~quick () =
  section "Ablations: design choices (speedup over HFSort baseline, hhvm-like)";
  let params =
    {
      Bolt_workloads.Workloads.hhvm_like with
      Bolt_workloads.Gen.iterations = (if quick then 2_500 else 6_000);
      funcs = (if quick then 1_200 else 2_200);
    }
  in
  let rows = timed "ablations" (fun () -> E.ablations ~params ()) in
  List.iter
    (fun (name, s, ok) ->
      Printf.printf "  %-28s %6.2f%%  %s\n" name s (if ok then "" else "MISMATCH!"))
    rows;
  add_section "ablations"
    (Json.List
       (List.map
          (fun (name, s, ok) ->
            Json.Obj
              [
                ("variant", Json.String name);
                ("speedup_pct", Json.Float s);
                ("behaviour_ok", Json.Bool ok);
              ])
          rows))

(* ---- domain scaling ---- *)

(* Rewrite wall-time at -j1/2/4 on the hhvm-like workload.  The output is
   byte-identical at every level (asserted), so the only variable is the
   per-function fan-out of the Table 1 passes. *)
let run_scaling ~quick () =
  section "Scaling: rewrite wall-time vs worker domains (hhvm-like)";
  let params =
    {
      Bolt_workloads.Workloads.hhvm_like with
      Bolt_workloads.Gen.iterations = (if quick then 2_000 else 6_000);
      funcs = (if quick then 1_200 else 2_200);
    }
  in
  let w = Bolt_workloads.Gen.gen params in
  let cc = Bolt_minic.Driver.default_options in
  let b =
    Bolt_minic.Driver.compile ~options:cc ~externals:w.Bolt_workloads.Gen.externals
      ~extra_objs:w.Bolt_workloads.Gen.extra_objs w.Bolt_workloads.Gen.sources
  in
  let build = { P.exe = b.exe; cc } in
  let prof, _ = P.profile build ~input:w.Bolt_workloads.Gen.input in
  let time_at jobs =
    let t0 = Unix.gettimeofday () in
    let b', _ = P.bolt ~jobs build prof in
    (Unix.gettimeofday () -. t0, Bolt_obj.Objfile.to_string b'.P.exe)
  in
  ignore (time_at 1) (* warm-up: heap growth, code loading *);
  let levels = [ 1; 2; 4 ] in
  let runs = List.map (fun j -> (j, time_at j)) levels in
  let base_t, base_out = List.assoc 1 runs in
  Printf.printf "  (machine reports %d recommended domain(s))\n"
    (Domain.recommended_domain_count ());
  Printf.printf "  %-6s %10s %10s  %s\n" "jobs" "wall(s)" "speedup" "output";
  List.iter
    (fun (j, (t, out)) ->
      Printf.printf "  %-6d %10.2f %9.2fx  %s\n" j t
        (if t > 0.0 then base_t /. t else 0.0)
        (if out = base_out then "identical" else "DIFFERS!"))
    runs;
  add_section "scaling"
    (Json.Obj
       [
         ("recommended_domains", Json.Int (Domain.recommended_domain_count ()));
         ( "runs",
           Json.List
             (List.map
                (fun (j, (t, out)) ->
                  Json.Obj
                    [
                      ("jobs", Json.Int j);
                      ("wall_s", Json.Float t);
                      ("speedup", Json.Float (if t > 0.0 then base_t /. t else 0.0));
                      ("output_identical", Json.Bool (out = base_out));
                    ])
                runs) );
       ])

(* ---- layout quality ---- *)

(* Offline layout evaluation (lib/layout): aggregate ExtTSP score and
   estimated hot working set of the input layout vs what each
   -reorder-blocks algorithm produces, plus the dyno-stats taken-branch
   count, on the hhvm-like workload.  No simulation involved. *)
let run_layout ~quick () =
  section "Layout: ExtTSP score and working-set estimates per algorithm (hhvm-like)";
  let params =
    {
      Bolt_workloads.Workloads.hhvm_like with
      Bolt_workloads.Gen.iterations = (if quick then 2_000 else 6_000);
      funcs = (if quick then 800 else 2_200);
    }
  in
  let w = Bolt_workloads.Gen.gen params in
  let cc = Bolt_minic.Driver.default_options in
  let b =
    Bolt_minic.Driver.compile ~options:cc ~externals:w.Bolt_workloads.Gen.externals
      ~extra_objs:w.Bolt_workloads.Gen.extra_objs w.Bolt_workloads.Gen.sources
  in
  let build = { P.exe = b.exe; cc } in
  let prof, _ = P.profile build ~input:w.Bolt_workloads.Gen.input in
  let totals rows = Bolt_core.Layout_bbs.snapshot_totals rows in
  let ev_row name (t : Bolt_layout.Evaluator.result) taken =
    Printf.printf "  %-18s %14.1f %10d %8d %14d\n" name
      t.Bolt_layout.Evaluator.ev_score t.Bolt_layout.Evaluator.ev_icache_lines
      t.Bolt_layout.Evaluator.ev_itlb_pages taken
  in
  let ev_json (t : Bolt_layout.Evaluator.result) taken =
    Json.Obj
      [
        ("exttsp_score", Json.Float t.Bolt_layout.Evaluator.ev_score);
        ("hot_icache_lines", Json.Int t.Bolt_layout.Evaluator.ev_icache_lines);
        ("hot_itlb_pages", Json.Int t.Bolt_layout.Evaluator.ev_itlb_pages);
        ("hot_bytes", Json.Int t.Bolt_layout.Evaluator.ev_hot_bytes);
        ("taken_branches", Json.Int taken);
      ]
  in
  let algos =
    [
      ("cache", Bolt_core.Opts.Rb_cache);
      ("cache+", Bolt_core.Opts.Rb_cache_plus);
      ("ext-tsp", Bolt_core.Opts.Rb_ext_tsp);
    ]
  in
  Printf.printf "  %-18s %14s %10s %8s %14s\n" "layout" "exttsp" "lines"
    "pages" "taken branches";
  let before = ref None in
  let rows =
    timed "layout" (fun () ->
        List.map
          (fun (name, rb) ->
            let opts = { Bolt_core.Opts.default with reorder_blocks = rb } in
            let _, r = P.bolt ~opts build prof in
            if !before = None then
              before :=
                Some
                  ( totals r.Bolt_core.Bolt.r_layout_before,
                    r.Bolt_core.Bolt.r_dyno_before.Bolt_core.Dyno_stats
                    .taken_branches );
            ( name,
              totals r.Bolt_core.Bolt.r_layout_after,
              r.Bolt_core.Bolt.r_dyno_after.Bolt_core.Dyno_stats.taken_branches
            ))
          algos)
  in
  let before_t, before_taken =
    match !before with Some x -> x | None -> (Bolt_layout.Evaluator.zero, 0)
  in
  ev_row "original" before_t before_taken;
  List.iter (fun (name, t, taken) -> ev_row name t taken) rows;
  add_section "layout"
    (Json.Obj
       (("before", ev_json before_t before_taken)
       :: List.map (fun (name, t, taken) -> (name, ev_json t taken)) rows))

(* ---- fleet aggregation ---- *)

(* Fleet profile merging (lib/fleet): simulate the 8-host fleet, then
   (a) merge throughput at -j1/2/4 over a replicated shard set — output
   asserted byte-identical at every level — and (b) the end-to-end payoff:
   dyno-stats taken branches on the fleet-wide traffic for BOLT fed the
   merged profile vs BOLT fed the best single host shard. *)
let run_fleet ~quick () =
  section "Fleet: shard merge throughput and merged-vs-single-shard dyno-stats";
  let module FS = Bolt_fleet.Fleet_sim in
  let module M = Bolt_fleet.Merge in
  let cfg =
    {
      FS.default_config with
      FS.fc_requests = (if quick then 1_200 else 4_000);
      fc_params =
        {
          FS.default_config.FS.fc_params with
          Bolt_workloads.Gen.funcs = (if quick then 200 else 320);
        };
      fc_sampling =
        { P.default_sampling with Bolt_sim.Machine.period = 101 };
    }
  in
  (* simulate the fleet plus a rollout: tick 0 has the configured stale
     hosts, then one upgrades to the current revision per tick *)
  let r, rollout_ticks =
    timed "fleet-sim" (fun () ->
        FS.rollout ~obs ~ticks:(cfg.FS.fc_stale + 1) cfg)
  in
  let shards = FS.loaded_shards r in
  (* replicate the host shards into a bigger fleet for throughput numbers *)
  let copies = if quick then 16 else 64 in
  let big =
    List.init copies (fun i ->
        List.map
          (fun (s : M.loaded) ->
            { s with M.sh_name = Printf.sprintf "%s.copy%d" s.M.sh_name i })
          shards)
    |> List.concat
  in
  let record_lines (p : Bolt_profile.Fdata.t) =
    List.length p.Bolt_profile.Fdata.branches
    + List.length p.Bolt_profile.Fdata.ranges
    + List.length p.Bolt_profile.Fdata.samples
  in
  let total_lines =
    List.fold_left (fun a (s : M.loaded) -> a + record_lines s.M.sh_prof) 0 big
  in
  let time_at jobs =
    let t0 = Unix.gettimeofday () in
    let merged = M.merge ~opts:{ M.default_options with M.jobs } big in
    (Unix.gettimeofday () -. t0, merged)
  in
  ignore (time_at 1) (* warm-up *);
  let runs = List.map (fun j -> (j, time_at j)) [ 1; 2; 4 ] in
  let _, (_, base_merged) = List.hd runs in
  let base_bytes = Bolt_profile.Fdata.to_string base_merged in
  Printf.printf "  merging %d shards (%d record lines):\n" (List.length big)
    total_lines;
  Printf.printf "  %-6s %10s %12s %14s  %s\n" "jobs" "wall(s)" "shards/s"
    "lines/s" "output";
  let throughput =
    List.map
      (fun (j, (t, merged)) ->
        let sps = if t > 0.0 then float_of_int (List.length big) /. t else 0.0 in
        let lps = if t > 0.0 then float_of_int total_lines /. t else 0.0 in
        let identical = Bolt_profile.Fdata.to_string merged = base_bytes in
        Printf.printf "  %-6d %10.3f %12.0f %14.0f  %s\n" j t sps lps
          (if identical then "identical" else "DIFFERS!");
        (j, t, sps, lps, identical))
      runs
  in
  (* merged profile vs each single host shard, on fleet-wide traffic *)
  let build = r.FS.fr_build in
  let input = r.FS.fr_fleet_input in
  (* merge as a deployment pipeline would: day-old stale shards decayed
     to ~nothing, target build-id pinned *)
  let merged =
    M.merge ~obs
      ~opts:
        {
          M.default_options with
          M.decay = Some 1e-4;
          expect_build_id = Some build.P.exe.Bolt_obj.Objfile.build_id;
        }
      shards
  in
  let taken_with prof =
    let b', _ = P.bolt build prof in
    (P.run b' ~input).Bolt_sim.Machine.counters.Bolt_sim.Machine.taken_branches
  in
  let merged_taken = timed "fleet-dyno" (fun () -> taken_with merged) in
  let singles =
    List.map
      (fun ((h : FS.host), prof) -> (h.FS.h_name, taken_with prof))
      r.FS.fr_shards
  in
  let best_name, best_taken =
    List.fold_left
      (fun (bn, bt) (n, t) -> if t < bt then (n, t) else (bn, bt))
      (List.hd singles) (List.tl singles)
  in
  let delta_pct =
    if best_taken = 0 then 0.0
    else
      100.0 *. float_of_int (best_taken - merged_taken) /. float_of_int best_taken
  in
  Printf.printf "  taken branches on fleet traffic: merged %d, best single %d (%s), delta %.2f%%\n"
    merged_taken best_taken best_name delta_pct;
  (* fold each rollout tick through stale recovery + merge into the
     fleet health monitor: per-host coverage/age/rollout state over time *)
  let module Mon = Bolt_fleet.Monitor in
  let target_id = P.build_id build and target_fps = P.fingerprints build in
  let monitor = Mon.create () in
  timed "fleet-health" (fun () ->
      List.iter
        (fun t ->
          let shards_t = FS.tick_loaded_shards t in
          let recovered, recovery =
            M.recover_stale_each ~fingerprints:target_fps ~build_id:target_id
              shards_t
          in
          let merged_t =
            M.merge ~obs
              ~opts:
                { M.default_options with M.expect_build_id = Some target_id }
              recovered
          in
          ignore
            (Mon.observe ~obs monitor ~expected_build_id:target_id ~recovery
               shards_t ~merged:merged_t))
        rollout_ticks);
  Fmt.pr "%a" Mon.pp monitor;
  (let name, j = Mon.manifest_section monitor in
   add_section name j);
  let tick0_recovery =
    match Mon.ticks monitor with
    | tk :: _ -> (
        match tk.Mon.tk_quality.Bolt_fleet.Quality.q_recovery with
        | Some st ->
            Json.Float (Bolt_profile.Stale_match.recovery_rate st)
        | None -> Json.Null)
    | [] -> Json.Null
  in
  add_section "fleet"
    (Json.Obj
       [
         ("hosts", Json.Int cfg.FS.fc_hosts);
         ("stale_hosts", Json.Int cfg.FS.fc_stale);
         ("merge_shards", Json.Int (List.length big));
         ("merge_lines", Json.Int total_lines);
         ( "merge_runs",
           Json.List
             (List.map
                (fun (j, t, sps, lps, identical) ->
                  Json.Obj
                    [
                      ("jobs", Json.Int j);
                      ("wall_s", Json.Float t);
                      ("shards_per_s", Json.Float sps);
                      ("lines_per_s", Json.Float lps);
                      ("output_identical", Json.Bool identical);
                    ])
                throughput) );
         ("merged_taken_branches", Json.Int merged_taken);
         ("best_single_taken_branches", Json.Int best_taken);
         ("best_single_host", Json.String best_name);
         ("merged_delta_pct", Json.Float delta_pct);
         ("rollout_ticks", Json.Int (List.length rollout_ticks));
         ("recovery", Json.Obj [ ("rate", tick0_recovery) ]);
       ])

(* ---- iocore: the zero-copy data plane, legacy vs new, side by side ---- *)

let run_iocore ~quick () =
  section "iocore: zero-copy data plane (slice/cursor core vs legacy byte paths)";
  let funcs = if quick then 10_000 else 100_000 in
  let fdata_lines = if quick then 200_000 else 2_000_000 in
  let m =
    timed "iocore-gen" (fun () ->
        Bolt_workloads.Gen.gen_mega ~funcs ~fdata_lines ())
  in
  let belf = m.Bolt_workloads.Gen.mg_belf in
  let fdata = m.Bolt_workloads.Gen.mg_fdata in
  let lines = float_of_int m.Bolt_workloads.Gen.mg_fdata_lines in
  let mb = float_of_int (String.length belf) /. 1048576.0 in
  (* best-of-N with a full major collection before each rep: the loads
     allocate tens of MB of live data, and where the GC pacing lands
     otherwise dominates run-to-run variance *)
  let reps = if quick then 3 else 7 in
  let best f =
    let b = ref infinity in
    for _ = 1 to reps do
      Gc.full_major ();
      let t0 = Unix.gettimeofday () in
      Sys.opaque_identity (ignore (f ()));
      b := min !b (Unix.gettimeofday () -. t0)
    done;
    !b
  in
  (* BELF load: both decoders, equality is a hard requirement *)
  let belf_identical =
    Bolt_obj.Objfile.of_string belf = Bolt_obj.Objfile.of_string_legacy belf
  in
  let t_new = best (fun () -> Bolt_obj.Objfile.of_string belf) in
  let t_leg = best (fun () -> Bolt_obj.Objfile.of_string_legacy belf) in
  Printf.printf "BELF load     %6.1f MB: new %6.1f MB/s  legacy %6.1f MB/s  %4.2fx  %s\n%!"
    mb (mb /. t_new) (mb /. t_leg) (t_leg /. t_new)
    (if belf_identical then "identical" else "MISMATCH!");
  (* fdata: the materializing parse and the streaming lexer vs the
     split_on_char parser.  [scan] is what the fleet merger consumes. *)
  let fdata_parity =
    Bolt_profile.Fdata.parse fdata = Bolt_profile.Fdata.parse_legacy fdata
  in
  let t_scan = best (fun () -> Bolt_profile.Fdata.scan fdata) in
  let t_parse = best (fun () -> Bolt_profile.Fdata.parse fdata) in
  let t_pleg = best (fun () -> Bolt_profile.Fdata.parse_legacy fdata) in
  Printf.printf
    "fdata parse   %6.0fk lines: legacy %5.2f Ml/s  parse %5.2f Ml/s (%4.2fx)  stream %5.2f Ml/s (%4.2fx)  %s\n%!"
    (lines /. 1000.0) (lines /. t_pleg /. 1e6) (lines /. t_parse /. 1e6)
    (t_pleg /. t_parse) (lines /. t_scan /. 1e6) (t_pleg /. t_scan)
    (if fdata_parity then "identical" else "MISMATCH!");
  (* fdata emit: arena writer with hand-rolled decimal/hex vs Printf *)
  let prof = fst (Bolt_profile.Fdata.parse fdata) in
  let emit_identical =
    Bolt_profile.Fdata.to_string prof = Bolt_profile.Fdata.to_string_legacy prof
  in
  let t_emit = best (fun () -> Bolt_profile.Fdata.to_string prof) in
  let t_emit_leg = best (fun () -> Bolt_profile.Fdata.to_string_legacy prof) in
  Printf.printf "fdata emit:   new %5.2fs  legacy %5.2fs  %4.2fx  %s\n%!" t_emit
    t_emit_leg (t_emit_leg /. t_emit)
    (if emit_identical then "identical" else "MISMATCH!");
  (* fleet merge: record-list fold vs streaming scan, over distinct-seed
     shards; outputs must normalize to the same bytes *)
  let shard_lines = if quick then 50_000 else 200_000 in
  let shards =
    List.init 4 (fun i ->
        let s =
          Bolt_workloads.Gen.gen_mega ~seed:(100 + i) ~funcs:2_000
            ~fdata_lines:shard_lines ()
        in
        (Printf.sprintf "shard%d" i, s.Bolt_workloads.Gen.mg_fdata))
  in
  let batch () =
    Bolt_fleet.Merge.merge
      (List.map
         (fun (name, text) ->
           Bolt_fleet.Merge.shard_of_profile ~name
             (fst (Bolt_profile.Fdata.parse text)))
         shards)
  in
  let stream () = Bolt_fleet.Merge.merge_stream shards in
  let merge_identical =
    Bolt_profile.Fdata.to_string (batch ())
    = Bolt_profile.Fdata.to_string (stream ())
  in
  let t_batch = best batch in
  let t_stream = best stream in
  let merge_lines = float_of_int (4 * shard_lines) in
  Printf.printf "fleet merge   %6.0fk lines: batch %5.2f Ml/s  stream %5.2f Ml/s  %4.2fx  %s\n%!"
    (merge_lines /. 1000.0) (merge_lines /. t_batch /. 1e6)
    (merge_lines /. t_stream /. 1e6) (t_batch /. t_stream)
    (if merge_identical then "identical" else "MISMATCH!");
  (* re-encode determinism: the arena emit path must produce the same
     bytes at any -j *)
  let w =
    Bolt_workloads.Gen.gen
      { Bolt_workloads.Workloads.multifeed2 with iterations = 2_000 }
  in
  let cc = Bolt_minic.Driver.default_options in
  let b =
    Bolt_minic.Driver.compile ~options:cc ~externals:w.Bolt_workloads.Gen.externals
      ~extra_objs:w.Bolt_workloads.Gen.extra_objs w.Bolt_workloads.Gen.sources
  in
  let prof4, _ = P.profile { P.exe = b.exe; cc } ~input:w.Bolt_workloads.Gen.input in
  let opt jobs =
    let exe', _ =
      Bolt_core.Bolt.optimize
        ~opts:{ Bolt_core.Opts.default with jobs }
        b.exe prof4
    in
    Bolt_obj.Objfile.to_string exe'
  in
  let reencode_identical = opt 1 = opt 4 in
  Printf.printf "re-encode:    j=1 vs j=4 %s\n%!"
    (if reencode_identical then "identical" else "MISMATCH!");
  add_section "iocore"
    (Json.Obj
       [
         ("funcs", Json.Int funcs);
         ("fdata_lines", Json.Int m.Bolt_workloads.Gen.mg_fdata_lines);
         ( "belf",
           Json.Obj
             [
               ("mb", Json.Float mb);
               ("new_mb_per_s", Json.Float (mb /. t_new));
               ("legacy_mb_per_s", Json.Float (mb /. t_leg));
               ("load_speedup", Json.Float (t_leg /. t_new));
               ("identical", Json.Bool belf_identical);
             ] );
         ( "fdata",
           Json.Obj
             [
               ("legacy_lines_per_s", Json.Float (lines /. t_pleg));
               ("parse_lines_per_s", Json.Float (lines /. t_parse));
               ("stream_lines_per_s", Json.Float (lines /. t_scan));
               ("parse_speedup", Json.Float (t_pleg /. t_parse));
               ("stream_speedup", Json.Float (t_pleg /. t_scan));
               ("parity", Json.Bool fdata_parity);
             ] );
         ( "emit",
           Json.Obj
             [
               ("new_s", Json.Float t_emit);
               ("legacy_s", Json.Float t_emit_leg);
               ("emit_speedup", Json.Float (t_emit_leg /. t_emit));
               ("identical", Json.Bool emit_identical);
             ] );
         ( "merge",
           Json.Obj
             [
               ("batch_lines_per_s", Json.Float (merge_lines /. t_batch));
               ("stream_lines_per_s", Json.Float (merge_lines /. t_stream));
               ("stream_speedup", Json.Float (t_batch /. t_stream));
               ("identical", Json.Bool merge_identical);
             ] );
         ("reencode_j1_j4_identical", Json.Bool reencode_identical);
       ])

(* ---- continuous-optimization service ---- *)

(* Daemon-mode ingest at data-center scale: a synthetic tape of
   thousands of hosts / up to millions of fdata lines is replayed
   through the service loop (Fleet_sim.scale_tape -> Service.run), and
   the section records what an operator would gate on:

   - ingest throughput (tape lines per second through the full loop —
     sketch ingest, per-step merge, quality assessment, triggering);
   - the steady-state RSS proxy: sketch occupancy vs its byte budget
     (within_budget must hold), plus the eviction count and the
     merged-quality degradation the bound cost vs an unbounded merge;
   - trigger latency in ticks;
   - the sharded-by-function-key merge vs the single-accumulator
     streaming merge, bytes asserted identical. *)
let run_service ~quick () =
  section "Service: daemon ingest at fleet scale (sketch bound, triggers, sharded merge)";
  let module FS = Bolt_fleet.Fleet_sim in
  let module M = Bolt_fleet.Merge in
  let module S = Bolt_service.Service in
  let module Sk = Bolt_service.Sketch in
  let sc =
    {
      FS.default_scale with
      FS.sc_hosts = (if quick then 400 else 2_000);
      sc_funcs = (if quick then 1_500 else 5_000);
      sc_lines = (if quick then 500 else 1_000);
    }
  in
  let tape_raw = timed "service-tape" (fun () -> FS.scale_tape sc) in
  let count_lines text =
    let n = ref 0 in
    String.iter (fun c -> if c = '\n' then incr n) text;
    !n
  in
  let total_lines =
    List.fold_left (fun a (_, _, x) -> a + count_lines x) 0 tape_raw
  in
  let texts = List.map (fun (_, h, x) -> (h, x)) tape_raw in
  Printf.printf "  tape: %d hosts, %d lines (%d-function universe)\n%!"
    sc.FS.sc_hosts total_lines sc.FS.sc_funcs;
  (* sharded-by-function-key merge vs the single-accumulator stream *)
  let t0 = Unix.gettimeofday () in
  let stream_merged = M.merge_stream texts in
  let t_stream = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let sharded_merged =
    M.merge_stream_sharded ~opts:{ M.default_options with M.jobs = 4 } texts
  in
  let t_sharded = Unix.gettimeofday () -. t0 in
  let sharded_identical =
    Bolt_profile.Fdata.to_string sharded_merged
    = Bolt_profile.Fdata.to_string stream_merged
  in
  let lps t = if t > 0.0 then float_of_int total_lines /. t else 0.0 in
  Printf.printf
    "  merge:   stream %8.0f lines/s   sharded(j4) %8.0f lines/s (%.2fx)  %s\n%!"
    (lps t_stream) (lps t_sharded) (t_stream /. t_sharded)
    (if sharded_identical then "identical" else "MISMATCH!");
  (* the service loop itself, under a deliberately tight sketch budget
     so the memory bound and its quality cost are exercised *)
  let budget = (if quick then 1 else 4) * 1024 * 1024 in
  let cfg =
    {
      S.default_config with
      S.c_topk = 64;
      c_budget = budget;
      c_trigger =
        {
          S.default_trigger with
          S.tr_min_hosts = sc.FS.sc_hosts / 2;
          (* the tight budget caps per-host coverage well below the
             production default; the bench wants the trigger path
             exercised, not gated off *)
          tr_min_coverage_pct = 0.25;
          tr_max_staleness_pct = 60.0;
        };
    }
  in
  let tape =
    List.map
      (fun (t, h, x) -> { S.ev_time = t; ev_host = h; ev_text = x })
      tape_raw
  in
  let svc =
    S.create ~config:cfg ~expect_build_id:FS.scale_build_id
      ~start_time:FS.base_timestamp ()
  in
  let t0 = Unix.gettimeofday () in
  let reports = S.run svc tape in
  let t_ingest = Unix.gettimeofday () -. t0 in
  let sk = S.sketch svc in
  let within_budget = Sk.peak sk <= Sk.budget sk in
  let latency =
    match S.first_trigger_step svc with Some s -> s | None -> -1
  in
  Printf.printf
    "  service: %d steps, %8.0f lines/s ingest, trigger latency %d tick(s)\n%!"
    (List.length reports) (lps t_ingest) latency;
  Printf.printf
    "  sketch:  peak %d / budget %d bytes (%s), %d evictions\n%!" (Sk.peak sk)
    budget
    (if within_budget then "within budget" else "OVER BUDGET!")
    (Sk.evictions sk);
  (* what the memory bound cost: event mass and function coverage of the
     sketch-bounded merge vs the unbounded merge of the same tape *)
  let event_mass (p : Bolt_profile.Fdata.t) =
    let m = ref 0L in
    List.iter
      (fun (b : Bolt_profile.Fdata.branch) ->
        m := Bolt_profile.Fdata.sat_add !m b.Bolt_profile.Fdata.br_count)
      p.Bolt_profile.Fdata.branches;
    List.iter
      (fun (s : Bolt_profile.Fdata.sample) ->
        m := Bolt_profile.Fdata.sat_add !m s.Bolt_profile.Fdata.sm_count)
      p.Bolt_profile.Fdata.samples;
    Int64.to_float !m
  in
  let funcs_of p = Hashtbl.length (Bolt_profile.Fdata.func_events p) in
  let events_retained_pct, funcs_retained_pct =
    match S.last_merged svc with
    | None -> (0.0, 0.0)
    | Some bounded ->
        let um = event_mass stream_merged and bm = event_mass bounded in
        let uf = funcs_of stream_merged and bf = funcs_of bounded in
        ( (if um > 0.0 then 100.0 *. bm /. um else 0.0),
          if uf > 0 then 100.0 *. float_of_int bf /. float_of_int uf else 0.0 )
  in
  Printf.printf
    "  quality degradation vs unbounded merge: %.1f%% events retained, %.1f%% functions\n%!"
    events_retained_pct funcs_retained_pct;
  add_section "service"
    (Json.Obj
       [
         ("hosts", Json.Int sc.FS.sc_hosts);
         ("lines", Json.Int total_lines);
         ("steps", Json.Int (List.length reports));
         ("ingest_lines_per_s", Json.Float (lps t_ingest));
         ("stream_lines_per_s", Json.Float (lps t_stream));
         ("sharded_lines_per_s", Json.Float (lps t_sharded));
         ("sharded_speedup", Json.Float (t_stream /. t_sharded));
         ("sharded_identical", Json.Bool sharded_identical);
         ("sketch_budget_bytes", Json.Int budget);
         ("sketch_peak_bytes", Json.Int (Sk.peak sk));
         ("sketch_within_budget", Json.Bool within_budget);
         ("sketch_evictions", Json.Int (Sk.evictions sk));
         ("trigger_latency_ticks", Json.Int latency);
         ("events_retained_pct", Json.Float events_retained_pct);
         ("functions_retained_pct", Json.Float funcs_retained_pct);
       ])

(* ---- Bechamel micro-benchmarks ---- *)

let run_micro () =
  section "Bechamel micro-benchmarks: BOLT pipeline stages";
  let params = { Bolt_workloads.Workloads.multifeed2 with iterations = 2_000 } in
  let w = Bolt_workloads.Gen.gen params in
  let cc = Bolt_minic.Driver.default_options in
  let b =
    Bolt_minic.Driver.compile ~options:cc ~externals:w.Bolt_workloads.Gen.externals
      ~extra_objs:w.Bolt_workloads.Gen.extra_objs w.Bolt_workloads.Gen.sources
  in
  let prof, _ =
    P.profile { P.exe = b.exe; cc } ~input:w.Bolt_workloads.Gen.input
  in
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"discover+disassemble+cfg"
        (Staged.stage (fun () ->
             let ctx = Bolt_core.Context.create ~opts:Bolt_core.Opts.default b.exe in
             Bolt_core.Build.run ctx));
      Test.make ~name:"hfsort-c3"
        (Staged.stage (fun () ->
             let funcs =
               Bolt_obj.Objfile.function_symbols b.exe
               |> List.map (fun (s : Bolt_obj.Types.symbol) ->
                      (s.sym_name, max 1 s.sym_size))
             in
             let g = Bolt_hfsort.Callgraph.of_profile ~funcs prof in
             ignore (Bolt_hfsort.Order.c3 g)));
      Test.make ~name:"full-bolt-pipeline"
        (Staged.stage (fun () -> ignore (Bolt_core.Bolt.optimize b.exe prof)));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 2.0) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
        Toolkit.Instance.monotonic_clock raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-28s %12.2f us/run\n%!" name (est /. 1000.0)
        | _ -> Printf.printf "  %-28s (no estimate)\n%!" name)
      results
  in
  List.iter benchmark tests

(* ---- main ---- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* reduced workload sizes are the default; pass "full" for paper-scale *)
  let quick = not (List.mem "full" args) in
  let args = List.filter (fun a -> a <> "quick" && a <> "full") args in
  (* every harness run lands in the longitudinal store (satellite of the
     bstat regression gate); history=FILE overrides the default path *)
  let history_file = ref "BENCH_history.jsonl" in
  let args =
    List.filter
      (fun a ->
        if String.length a >= 8 && String.sub a 0 8 = "history=" then begin
          history_file := String.sub a 8 (String.length a - 8);
          false
        end
        else true)
      args
  in
  let all = args = [] in
  let want x = all || List.mem x args in
  let fig5_results = ref None in
  let get_fig5 () =
    match !fig5_results with
    | Some r -> r
    | None ->
        let r = run_fig5 ~quick () in
        fig5_results := Some r;
        r
  in
  if want "fig5" then ignore (get_fig5 ());
  if want "fig6" then begin
    let results = get_fig5 () in
    match List.find_opt (fun (r : E.fb_result) -> r.E.fb_name = "hhvm") results with
    | Some hhvm -> run_fig6 hhvm
    | None -> ()
  end;
  if want "fig9" then begin
    section "Figure 9 (collecting heat maps for hhvm)";
    let params =
      {
        Bolt_workloads.Workloads.hhvm_like with
        iterations = (if quick then 2_000 else 6_000);
      }
    in
    let hhvm =
      timed "fig9" (fun () -> E.fb_flow ~lto:true ~heatmap:true ~name:"hhvm" params)
    in
    run_fig9 hhvm
  end;
  let cc7 = ref None in
  if want "fig7" || want "table2" then
    cc7 := Some (timed "fig7" (fun () -> E.fig7 ~quick ()));
  (match !cc7 with
  | Some cc when want "fig7" ->
      print_cc "Figure 7: Clang-like compiler speedups (%) [ours (paper)]" E.fig7_paper cc;
      add_section "fig7" (cc_json cc)
  | _ -> ());
  if want "fig8" then begin
    let cc = timed "fig8" (fun () -> E.fig8 ~quick ()) in
    print_cc "Figure 8: GCC-like compiler speedups (%) [ours (paper)]" E.fig8_paper cc;
    add_section "fig8" (cc_json cc)
  end;
  (match !cc7 with Some cc when want "table2" -> run_table2 cc | _ -> ());
  if want "fig10" then run_fig10 ~quick ();
  if want "fig11" then run_fig11 ();
  if want "sec51" then run_sec51 ();
  if want "icf" then run_icf ();
  if want "fig2" then run_fig2 ();
  if all || List.mem "ablations" args then run_ablations ~quick ();
  if want "scaling" then run_scaling ~quick ();
  if want "layout" then run_layout ~quick ();
  if want "fleet" then run_fleet ~quick ();
  if want "iocore" then run_iocore ~quick ();
  if want "service" then run_service ~quick ();
  if List.mem "micro" args then run_micro ();
  let out = "BENCH_results.json" in
  let manifest =
    Bolt_obs.Manifest.make ~tool:"bench" ~argv:(Array.to_list Sys.argv)
      ~sections:(("quick", Json.Bool quick) :: List.rev !bench_sections)
      obs
  in
  Bolt_obs.Manifest.save out manifest;
  Bolt_obs.History.append !history_file
    (Bolt_obs.History.of_manifest
       ~workload:(if quick then "bench-quick" else "bench-full")
       ~git_rev:(Bolt_obs.History.detect_git_rev ())
       manifest);
  Printf.printf "\nwrote %s\nappended run history %s\nDone.\n" out !history_file
