(* Stale-profile recovery: fingerprint matching units (exact renames,
   fuzzy offset remapping, count inference, clean drops, deterministic
   tie refusal), BELF v5 fingerprint round-trips with v4 read-compat,
   match_profile offset boundaries, and the subsystem's acceptance
   check — a revision N-1 profile driven through the recovery path must
   keep at least 70% of the fresh-profile win on the fleet workload. *)

module Fdata = Bolt_profile.Fdata
module SM = Bolt_profile.Stale_match
module F = Bolt_obj.Fingerprint
module Objfile = Bolt_obj.Objfile
module Buf = Bolt_obj.Buf
module Gen = Bolt_workloads.Gen
module Workloads = Bolt_workloads.Workloads
module FS = Bolt_fleet.Fleet_sim
module Merge = Bolt_fleet.Merge
module Quality = Bolt_fleet.Quality
module P = Bolt_pipeline.Pipeline
module Machine = Bolt_sim.Machine
module Driver = Bolt_minic.Driver

(* ------------------------------------------------------------------ *)
(* Builders                                                           *)

let mk_block off size oh sh =
  { F.bk_off = off; bk_size = size; bk_opcode_hash = oh; bk_shape_hash = sh }

let mk_func ?(calls = []) name size oh ch blocks =
  {
    F.fp_func = name;
    fp_size = size;
    fp_opcode_hash = oh;
    fp_cfg_hash = ch;
    fp_calls = calls;
    fp_blocks = blocks;
  }

let mk_prof ?(build = "OLD") ?(fps = []) ?(branches = []) ?(ranges = [])
    ?(samples = []) () =
  {
    Fdata.lbr = true;
    header =
      Some
        {
          Fdata.hd_host = "h";
          hd_build_id = build;
          hd_timestamp = 0;
          hd_events = 0L;
          hd_weight = 1.0;
        };
    branches;
    ranges;
    samples;
    total_samples = 0L;
    fingerprints = fps;
  }

let br ff fo tf to_ c =
  {
    Fdata.br_from_func = ff;
    br_from_off = fo;
    br_to_func = tf;
    br_to_off = to_;
    br_count = c;
    br_mispreds = 0L;
  }

let recover_exn ~fps ~build p =
  match SM.recover_if_stale ~fingerprints:fps ~build_id:build p with
  | Some r -> r
  | None -> Alcotest.fail "expected recovery to trigger"

(* ------------------------------------------------------------------ *)
(* Matching tiers                                                     *)

(* A pure rename: identical hashes under a new name.  Records keep
   their offsets, only the name changes. *)
let test_exact_rename () =
  let blocks = [ mk_block 0 4 10 20; mk_block 4 4 11 21 ] in
  let old_fp = mk_func ~calls:[ "leaf" ] "old_fn" 8 100 200 blocks in
  let new_fp = mk_func ~calls:[ "leaf" ] "new_fn" 8 100 200 blocks in
  let p =
    mk_prof ~fps:[ old_fp ]
      ~branches:[ br "old_fn" 5 "old_fn" 4 10L; br "caller" 0 "old_fn" 0 3L ]
      ()
  in
  let p', st = recover_exn ~fps:[ new_fp ] ~build:"NEW" p in
  Alcotest.(check int) "one function" 1 st.SM.st_funcs;
  Alcotest.(check int) "exact" 1 st.SM.st_exact;
  Alcotest.(check int) "records kept" 2 st.SM.st_records_kept;
  List.iter
    (fun (b : Fdata.branch) ->
      Alcotest.(check bool) "no stale name" false
        (b.br_from_func = "old_fn" || b.br_to_func = "old_fn"))
    p'.Fdata.branches;
  let intra =
    List.find (fun (b : Fdata.branch) -> b.br_from_func = "new_fn") p'.Fdata.branches
  in
  Alcotest.(check int) "offset untouched" 5 intra.Fdata.br_from_off;
  (* the recovered profile describes the target revision *)
  Alcotest.(check string) "restamped" "NEW"
    (Option.get p'.Fdata.header).Fdata.hd_build_id;
  Alcotest.(check bool) "carries target fingerprints" true
    (p'.Fdata.fingerprints = [ new_fp ])

(* A light edit: same name, entry block grew, later block intact.  The
   positional alignment remaps every offset through the edit. *)
let test_fuzzy_remap () =
  let old_fp =
    mk_func "f" 16 100 200 [ mk_block 0 8 10 20; mk_block 8 8 11 21 ]
  in
  let new_fp =
    mk_func "f" 20 101 200 [ mk_block 0 12 99 20; mk_block 12 8 11 21 ]
  in
  let p =
    mk_prof ~fps:[ old_fp ]
      ~branches:[ br "f" 9 "f" 8 10L ]
      ~ranges:[ { Fdata.rg_func = "f"; rg_start = 0; rg_end = 9; rg_count = 5L } ]
      ~samples:
        [
          { Fdata.sm_func = "f"; sm_off = 1; sm_count = 2L };
          (* past every old block: no containment, must drop *)
          { Fdata.sm_func = "f"; sm_off = 400; sm_count = 9L };
        ]
      ()
  in
  let p', st = recover_exn ~fps:[ new_fp ] ~build:"NEW" p in
  Alcotest.(check int) "fuzzy" 1 st.SM.st_fuzzy;
  (match p'.Fdata.branches with
  | [ b ] ->
      (* source off 9 sat 1 byte into old block 1 -> 1 byte into new
         block 1 (12+1); target off 8 was a block start -> 12 *)
      Alcotest.(check int) "from remapped" 13 b.Fdata.br_from_off;
      Alcotest.(check int) "to remapped" 12 b.Fdata.br_to_off
  | bs -> Alcotest.failf "expected 1 branch, got %d" (List.length bs));
  (match p'.Fdata.ranges with
  | [ r ] ->
      Alcotest.(check int) "range start" 0 r.Fdata.rg_start;
      Alcotest.(check int) "range end" 13 r.Fdata.rg_end
  | rs -> Alcotest.failf "expected 1 range, got %d" (List.length rs));
  Alcotest.(check int) "off-the-end sample dropped" 1
    (List.length p'.Fdata.samples)

(* Heavy edit: no block aligns, so offsets are noise.  Function-level
   evidence must survive as an inferred entry count. *)
let test_inferred_entry () =
  let old_fp =
    mk_func "g" 16 100 200
      [ mk_block 0 4 1 2; mk_block 4 4 3 4; mk_block 8 4 5 6; mk_block 12 4 7 8 ]
  in
  let new_fp =
    mk_func "g" 12 101 201
      [ mk_block 0 4 30 40; mk_block 4 4 50 60; mk_block 8 4 70 80 ]
  in
  let p =
    mk_prof ~fps:[ old_fp ]
      ~branches:[ br "g" 5 "g" 8 100L; br "g" 13 "g" 4 40L ]
      ~samples:[ { Fdata.sm_func = "g"; sm_off = 9; sm_count = 7L } ]
      ()
  in
  let p', st = recover_exn ~fps:[ new_fp ] ~build:"NEW" p in
  Alcotest.(check int) "inferred" 1 st.SM.st_inferred;
  (* intra edges drop; the hottest one becomes a synthetic entry count
     for the dataflow repair to spread *)
  (match p'.Fdata.branches with
  | [ b ] ->
      Alcotest.(check string) "ghost caller" SM.ghost_caller b.Fdata.br_from_func;
      Alcotest.(check string) "into g" "g" b.Fdata.br_to_func;
      Alcotest.(check int) "entry offset" 0 b.Fdata.br_to_off;
      Alcotest.(check int64) "hottest edge" 100L b.Fdata.br_count
  | bs -> Alcotest.failf "expected 1 branch, got %d" (List.length bs));
  (* samples keep function-level hotness at the entry *)
  (match p'.Fdata.samples with
  | [ s ] -> Alcotest.(check int) "sample pinned to entry" 0 s.Fdata.sm_off
  | ss -> Alcotest.failf "expected 1 sample, got %d" (List.length ss))

(* A deleted function's records vanish rather than spraying
   unknown-function diagnostics downstream. *)
let test_dropped_deleted () =
  let old_fp = mk_func ~calls:[ "x" ] "dead" 8 100 200 [ mk_block 0 8 10 20 ] in
  let new_fp = mk_func "other" 4 999 888 [] in
  let p =
    mk_prof ~fps:[ old_fp ]
      ~branches:[ br "dead" 4 "dead" 0 10L; br "live" 0 "dead" 0 5L ]
      ~samples:[ { Fdata.sm_func = "dead"; sm_off = 2; sm_count = 3L } ]
      ()
  in
  let p', st = recover_exn ~fps:[ new_fp ] ~build:"NEW" p in
  Alcotest.(check int) "dropped" 1 st.SM.st_dropped;
  Alcotest.(check int) "no records survive" 0 st.SM.st_records_kept;
  Alcotest.(check int) "branches gone" 0 (List.length p'.Fdata.branches)

(* Two structurally identical rename candidates: refusing to guess is
   the deterministic choice. *)
let test_ambiguous_rename_refused () =
  let blocks = [ mk_block 0 4 10 20 ] in
  let old_fp = mk_func "o" 4 100 200 blocks in
  let n1 = mk_func "n1" 4 100 200 blocks in
  let n2 = mk_func "n2" 4 100 200 blocks in
  let p = mk_prof ~fps:[ old_fp ] ~branches:[ br "o" 2 "o" 0 10L ] () in
  let _, st = recover_exn ~fps:[ n1; n2 ] ~build:"NEW" p in
  Alcotest.(check int) "tie refused" 1 st.SM.st_dropped;
  Alcotest.(check int) "nothing matched" 0 (st.SM.st_exact + st.SM.st_fuzzy)

(* Recovery must not trigger on fresh, unstamped or fingerprint-less
   profiles. *)
let test_no_false_trigger () =
  let fp = mk_func "f" 4 1 2 [ mk_block 0 4 1 2 ] in
  let none = SM.recover_if_stale ~fingerprints:[ fp ] ~build_id:"B" in
  Alcotest.(check bool) "fresh profile untouched" true
    (none (mk_prof ~build:"B" ~fps:[ fp ] ()) = None);
  Alcotest.(check bool) "unstamped profile untouched" true
    (none { (mk_prof ~fps:[ fp ] ()) with Fdata.header = None } = None);
  Alcotest.(check bool) "no shard fingerprints: untouched" true
    (none (mk_prof ~build:"OLD" ()) = None);
  Alcotest.(check bool) "no target fingerprints: untouched" true
    (SM.recover_if_stale ~fingerprints:[] ~build_id:"B"
       (mk_prof ~build:"OLD" ~fps:[ fp ] ())
    = None)

(* ------------------------------------------------------------------ *)
(* BELF v5: fingerprints travel with the binary                       *)

let small_src =
  {| fn helper(x) { if (x % 4 < 2) { return x + 3; } else { return x * 2; } }
     fn main() {
       var i = 0;
       var s = 0;
       while (i < 500) { s = s + helper(i); i = i + 1; }
       out s;
       return 0;
     } |}

let compile srcs = (Driver.compile srcs).Driver.exe

let test_v5_roundtrip () =
  let exe = compile [ ("m", small_src) ] in
  Alcotest.(check bool) "linker stamps fingerprints" true
    (exe.Objfile.fingerprints <> []);
  let exe' = Objfile.of_string (Objfile.to_string exe) in
  Alcotest.(check bool) "v5 round-trips" true (exe' = exe);
  (* the stamp is exactly what a recompute over the image yields *)
  Alcotest.(check bool) "stamp = recompute" true
    (F.compute ~sections:exe'.Objfile.sections ~symbols:exe'.Objfile.symbols
    = exe'.Objfile.fingerprints)

(* The rewriter must restamp: the bolted binary's table describes the
   NEW layout, ready to recover the next generation of profiles. *)
let test_rewrite_restamps () =
  let exe = compile [ ("m", small_src) ] in
  let sampling = { P.default_sampling with Machine.period = 97 } in
  let o = Machine.run ~sampling exe ~input:[||] in
  let prof =
    match o.Machine.profile with
    | Some raw -> Bolt_profile.Perf2bolt.convert exe raw
    | None -> Fdata.empty
  in
  let exe', _ = Bolt_core.Bolt.optimize exe prof in
  Alcotest.(check bool) "bolted binary stamped" true
    (exe'.Objfile.fingerprints <> []);
  Alcotest.(check bool) "stamp matches bolted layout" true
    (F.compute ~sections:exe'.Objfile.sections ~symbols:exe'.Objfile.symbols
    = exe'.Objfile.fingerprints)

(* A v4 file (build-id but no fingerprint table) still loads. *)
let test_v4_compat () =
  let exe = compile [ ("m", small_src) ] in
  let stripped = { exe with Objfile.fingerprints = [] } in
  let v5 = Objfile.to_string stripped in
  (* v4 layout = v5 minus the trailing (empty) fingerprint list *)
  let tail_len =
    let b = Buf.writer () in
    Buf.list b Buf.str [];
    String.length (Buf.contents b)
  in
  let v4 = Bytes.of_string (String.sub v5 0 (String.length v5 - tail_len)) in
  Bytes.set v4 4 '\x04' (* version byte follows the 4-byte magic *);
  let exe' = Objfile.of_string (Bytes.to_string v4) in
  Alcotest.(check string) "build-id survives" exe.Objfile.build_id
    exe'.Objfile.build_id;
  Alcotest.(check bool) "payload intact, no fingerprints" true (exe' = stripped)

(* ------------------------------------------------------------------ *)
(* match_profile offset containment at the boundaries                 *)

let test_match_boundaries () =
  let exe = compile [ ("m", small_src) ] in
  let helper = Option.get (Objfile.find_symbol exe "helper") in
  let size = helper.Bolt_obj.Types.sym_size in
  let prof =
    {
      Fdata.empty with
      Fdata.lbr = true;
      branches =
        [
          (* source exactly at the entry block start *)
          br "helper" 0 "helper" 0 5L;
          (* source and target both past the function's end *)
          br "helper" (size + 64) "helper" 4 7L;
          br "helper" 4 "helper" (size + 64) 7L;
          (* unknown function (intra record, so the name is resolved) *)
          br "nosuch" 4 "nosuch" 8 1L;
        ];
      ranges =
        [
          (* empty range: start == end *)
          { Fdata.rg_func = "helper"; rg_start = 0; rg_end = 0; rg_count = 3L };
          (* range hanging off the end *)
          {
            Fdata.rg_func = "helper";
            rg_start = size;
            rg_end = size + 8;
            rg_count = 2L;
          };
        ];
      samples = [ { Fdata.sm_func = "helper"; sm_off = size + 64; sm_count = 1L } ];
    }
  in
  let ctx = Bolt_core.Context.create ~opts:Bolt_core.Opts.default exe in
  Bolt_core.Build.run ctx;
  let st = Bolt_core.Match_profile.attach ctx prof in
  Bolt_core.Match_profile.finalize ctx ~lbr:true ~trust_fallthrough:true;
  Alcotest.(check bool) "off-the-end records counted stale" true
    (st.Bolt_core.Match_profile.stale_records > 0);
  Alcotest.(check bool) "unknown function counted" true
    (st.Bolt_core.Match_profile.unknown_funcs > 0);
  (* an empty profile attaches as a no-op *)
  let ctx2 = Bolt_core.Context.create ~opts:Bolt_core.Opts.default exe in
  Bolt_core.Build.run ctx2;
  let st2 = Bolt_core.Match_profile.attach ctx2 Fdata.empty in
  Bolt_core.Match_profile.finalize ctx2 ~lbr:true ~trust_fallthrough:true;
  Alcotest.(check int) "empty profile matches nothing" 0
    st2.Bolt_core.Match_profile.matched_branches

(* ------------------------------------------------------------------ *)
(* End to end: revision N-1 profile on revision N                     *)

let drift_params =
  {
    Workloads.hhvm_like with
    Gen.funcs = 160;
    modules = 4;
    input_driven = true;
    dispatch_thresholds = 12;
  }

(* The acceptance bar: a stale shard pushed through fingerprint
   recovery must keep >= 70% of the fresh-profile win (taken branches,
   the layout objective) on the fleet_sim workload. *)
let test_recovery_e2e () =
  let fresh = FS.compile_params drift_params in
  let old = FS.compile_params (FS.stale_params drift_params) in
  Alcotest.(check bool) "revisions differ" true
    (fresh.P.exe.Objfile.build_id <> old.P.exe.Objfile.build_id);
  let input = Workloads.token_input ~seed:99 ~n:2500 ~mix:80 in
  let sampling = { P.default_sampling with Machine.period = 97 } in
  let fresh_prof, _ =
    P.profile_shard ~sampling ~host:"fresh01" ~timestamp:2 fresh ~input
  in
  let stale_prof, _ =
    P.profile_shard ~sampling ~host:"stale01" ~timestamp:1 old ~input
  in
  Alcotest.(check bool) "shard carries old fingerprints" true
    (stale_prof.Fdata.fingerprints <> []);
  let taken (o : Machine.outcome) = o.Machine.counters.Machine.taken_branches in
  let base = P.run fresh ~input in
  let bf, _ = P.bolt fresh fresh_prof in
  let bs, report = P.bolt fresh stale_prof in
  let o_f = P.run bf ~input in
  let o_s = P.run bs ~input in
  Alcotest.(check bool) "behaviour preserved" true (P.same_behaviour base o_s);
  let win_fresh = taken base - taken o_f in
  let win_stale = taken base - taken o_s in
  Fmt.epr "stale e2e: baseline %d taken, fresh-bolted %d, stale-bolted %d@."
    (taken base) (taken o_f) (taken o_s);
  Alcotest.(check bool) "fresh profile wins" true (win_fresh > 0);
  (match report.Bolt_core.Bolt.r_recovery with
  | None -> Alcotest.fail "no recovery breakdown in the report"
  | Some st ->
      Fmt.epr "stale e2e: recovery %a@." SM.pp_stats st;
      Alcotest.(check bool) "some exact matches" true (st.SM.st_exact > 0);
      Alcotest.(check bool) "some fuzzy matches" true (st.SM.st_fuzzy > 0));
  (* the breakdown lands in the run manifest *)
  (match
     List.assoc_opt "profile_quality" (Bolt_core.Bolt.manifest_sections report)
   with
  | Some (Bolt_obs.Json.Obj fields) -> (
      match List.assoc_opt "recovery" fields with
      | Some (Bolt_obs.Json.Obj _) -> ()
      | _ -> Alcotest.fail "recovery missing from run manifest")
  | _ -> Alcotest.fail "profile_quality section missing");
  if 10 * win_stale < 7 * win_fresh then
    Alcotest.failf "stale profile kept only %d of the fresh win %d" win_stale
      win_fresh;
  (* recovery is deterministic under -j *)
  let b1, _ = P.bolt ~jobs:1 fresh stale_prof in
  let b4, _ = P.bolt ~jobs:4 fresh stale_prof in
  Alcotest.(check bool) "-j byte-identical with recovery" true
    (Objfile.to_string b1.P.exe = Objfile.to_string b4.P.exe)

(* The fleet path: stale shards recovered per-shard before the merge,
   breakdown surfaced through the quality report and manifest. *)
let test_fleet_recovery () =
  let cfg =
    {
      FS.default_config with
      FS.fc_hosts = 4;
      fc_stale = 2;
      fc_requests = 800;
      fc_params =
        { FS.default_config.FS.fc_params with Gen.funcs = 120; modules = 4 };
      fc_sampling = { P.default_sampling with Machine.period = 97 };
    }
  in
  let r = FS.run cfg in
  let target = r.FS.fr_build.P.exe in
  let shards = FS.loaded_shards r in
  let shards', recovery =
    Merge.recover_stale ~fingerprints:target.Objfile.fingerprints
      ~build_id:target.Objfile.build_id shards
  in
  (match recovery with
  | None -> Alcotest.fail "expected stale shards to be recovered"
  | Some st ->
      Fmt.epr "fleet recovery: %a@." SM.pp_stats st;
      Alcotest.(check bool) "functions recovered" true
        (st.SM.st_exact + st.SM.st_fuzzy > 0));
  let opts =
    {
      Merge.default_options with
      Merge.expect_build_id = Some target.Objfile.build_id;
    }
  in
  let merged = Merge.merge ~opts shards' in
  let q =
    Quality.assess ~expect_build_id:target.Objfile.build_id ?recovery shards
      ~merged
  in
  Alcotest.(check int) "staleness assessed pre-recovery" 2
    q.Quality.q_stale_shards;
  Alcotest.(check bool) "breakdown in quality report" true
    (q.Quality.q_recovery <> None);
  (match Quality.manifest_section q with
  | "fleet", Bolt_obs.Json.Obj fields -> (
      match List.assoc_opt "recovery" fields with
      | Some (Bolt_obs.Json.Obj _) -> ()
      | _ -> Alcotest.fail "recovery missing from fleet manifest section")
  | _ -> Alcotest.fail "manifest section shape");
  (* the recovered merge still drives the optimizer safely *)
  let b', report = P.bolt r.FS.fr_build merged in
  Alcotest.(check (list (pair string string)))
    "no quarantine" [] report.Bolt_core.Bolt.r_quarantined;
  let base = P.run r.FS.fr_build ~input:r.FS.fr_fleet_input in
  let opt = P.run b' ~input:r.FS.fr_fleet_input in
  Alcotest.(check bool) "same behaviour" true (P.same_behaviour base opt)

let suite =
  [
    Alcotest.test_case "exact-rename" `Quick test_exact_rename;
    Alcotest.test_case "fuzzy-remap" `Quick test_fuzzy_remap;
    Alcotest.test_case "inferred-entry" `Quick test_inferred_entry;
    Alcotest.test_case "dropped-deleted" `Quick test_dropped_deleted;
    Alcotest.test_case "ambiguous-rename-refused" `Quick
      test_ambiguous_rename_refused;
    Alcotest.test_case "no-false-trigger" `Quick test_no_false_trigger;
    Alcotest.test_case "belf-v5-roundtrip" `Quick test_v5_roundtrip;
    Alcotest.test_case "rewrite-restamps" `Quick test_rewrite_restamps;
    Alcotest.test_case "belf-v4-compat" `Quick test_v4_compat;
    Alcotest.test_case "match-profile-boundaries" `Quick test_match_boundaries;
    Alcotest.test_case "recovery-e2e-70pct" `Slow test_recovery_e2e;
    Alcotest.test_case "fleet-recovery" `Slow test_fleet_recovery;
  ]
