(* Integration tests over the experiment pipeline and the workload
   generators: determinism, behaviour preservation under the full flow,
   and the qualitative claims each experiment must reproduce. *)

module E = Bolt_pipeline.Experiments
module P = Bolt_pipeline.Pipeline

let small_params =
  {
    Bolt_workloads.Workloads.multifeed2 with
    Bolt_workloads.Gen.funcs = 300;
    modules = 6;
    iterations = 1_500;
    dup_plain_families = 2;
    dup_switch_families = 2;
    asm_dispatchers = 1;
  }

let test_generator_deterministic () =
  let a = Bolt_workloads.Gen.gen small_params in
  let b = Bolt_workloads.Gen.gen small_params in
  Alcotest.(check bool) "same sources" true
    (a.Bolt_workloads.Gen.sources = b.Bolt_workloads.Gen.sources)

let test_generator_compiles_and_runs () =
  let w = Bolt_workloads.Gen.gen small_params in
  let r =
    Bolt_minic.Driver.compile ~externals:w.Bolt_workloads.Gen.externals
      ~extra_objs:w.Bolt_workloads.Gen.extra_objs w.Bolt_workloads.Gen.sources
  in
  let o = Bolt_sim.Machine.run ~fuel:200_000_000 r.exe ~input:w.Bolt_workloads.Gen.input in
  Alcotest.(check bool) "produces output" true (o.Bolt_sim.Machine.output <> []);
  Alcotest.(check bool) "no uncaught" false o.Bolt_sim.Machine.uncaught_exception

let test_full_flow_preserves_behaviour () =
  let r = E.fb_flow ~lto:false ~name:"small" small_params in
  Alcotest.(check bool) "behaviour identical" true r.E.fb_behaviour_ok;
  Alcotest.(check bool) "BOLT wins" true (r.E.fb_speedup > 0.0)

let test_full_flow_with_lto () =
  let r = E.fb_flow ~lto:true ~name:"small-lto" small_params in
  Alcotest.(check bool) "behaviour identical (LTO)" true r.E.fb_behaviour_ok

let test_fig2_mechanism () =
  (* the motivating example: BOLT, given only per-address samples of the
     plain binary, must recover the layout that instrumentation-PGO
     needs a recompile (and per-copy edge counters) to reach *)
  let r = E.fig2 () in
  Alcotest.(check bool) "behaviour" true r.E.f2_behaviour_ok;
  (* compile-time PGO collapses both inlined copies' conditionals *)
  Alcotest.(check bool) "PGO collapses taken conditionals" true
    (r.E.f2_pgo_taken * 10 <= r.E.f2_plain_taken * 6);
  (* so must BOLT, from samples alone (the rotated loop's bottom-of-loop
     conditional stays taken, so at least half vanish, not all) *)
  Alcotest.(check bool) "BOLT collapses taken conditionals" true
    (r.E.f2_bolt_taken * 10 <= r.E.f2_plain_taken * 6);
  (* and the loop rotation is something the compile-time layout missed:
     BOLT's total taken branches drop below both other builds *)
  Alcotest.(check bool) "BOLT cuts total taken branches" true
    (r.E.f2_bolt_branches < r.E.f2_plain_branches
    && r.E.f2_bolt_branches < r.E.f2_pgo_branches);
  Alcotest.(check bool) "BOLT speeds up the plain build" true
    (r.E.f2_bolt_cycles < r.E.f2_plain_cycles)

let test_icf_on_top_of_linker () =
  let r =
    E.icf_experiment
      ~params:{ small_params with Bolt_workloads.Gen.dup_plain_families = 4;
                dup_plain_copies = 3; dup_switch_families = 4; dup_switch_copies = 3 }
      ()
  in
  Alcotest.(check bool) "linker folded some" true (r.E.icf_linker_folded > 0);
  Alcotest.(check bool) "BOLT folded more" true (r.E.icf_bolt_folded > 0)

let test_pgo_complements_bolt () =
  (* tiny compiler-flow: all three variants must beat the baseline and the
     stacked variant must beat PGO alone on the training input *)
  let params =
    { Bolt_workloads.Workloads.gcc_like with Bolt_workloads.Gen.funcs = 250; modules = 5 }
  in
  let cc = E.compiler_flow ~quick:true ~lto:false params in
  let get name =
    List.find (fun (v : E.cc_variant) -> v.E.cv_name = name) cc.E.cc_variants
  in
  let full v = List.assoc "full-build" v.E.cv_speedups in
  let bolt = full (get "BOLT") and pgo = full (get "PGO") and both = full (get "PGO+BOLT") in
  Alcotest.(check bool) "BOLT beats baseline" true (bolt > 0.0);
  Alcotest.(check bool) "PGO beats baseline" true (pgo > 0.0);
  Alcotest.(check bool) "stacking beats PGO alone" true (both > pgo)

let test_heatmap_concentration () =
  let r = E.fb_flow ~lto:false ~heatmap:true ~name:"small" small_params in
  let h = E.fig9_of r in
  (* BOLT must shrink the extent of touched code (Figure 9's packing) *)
  Alcotest.(check bool) "hot extent shrinks" true
    (h.E.h_extent_after < h.E.h_extent_before)

let test_non_lbr_worse_than_lbr () =
  let rows = E.fig11 ~params:small_params () in
  let both = List.assoc "both" rows in
  let cpu = List.assoc "cpu-time" both in
  (* LBR-driven build should not be slower than the non-LBR-driven one *)
  Alcotest.(check bool) "lbr at least as good" true (cpu >= -1.0)

let suite =
  [
    Alcotest.test_case "generator-deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "generator-runs" `Quick test_generator_compiles_and_runs;
    Alcotest.test_case "full-flow" `Slow test_full_flow_preserves_behaviour;
    Alcotest.test_case "full-flow-lto" `Slow test_full_flow_with_lto;
    Alcotest.test_case "fig2-mechanism" `Slow test_fig2_mechanism;
    Alcotest.test_case "icf-stacking" `Slow test_icf_on_top_of_linker;
    Alcotest.test_case "pgo-complements" `Slow test_pgo_complements_bolt;
    Alcotest.test_case "heatmap-concentration" `Slow test_heatmap_concentration;
    Alcotest.test_case "lbr-vs-nolbr" `Slow test_non_lbr_worse_than_lbr;
  ]
