(* iocore parity suite: the zero-copy data plane against its legacy
   baselines.  The refactor's contract is "byte-identical, just faster",
   so every test here is differential — QCheck properties drive the new
   fdata lexer and the legacy split_on_char parser over generated text
   (valid records, junk lines, CRLF, double spaces), the BELF decoders
   are compared on committed v4/v5 fixtures, and the golden-digest check
   recompiles the fixture program and demands the same md5s the
   pre-refactor code produced (obolt at j=1/j=4, bmerge, fdata dump). *)

module Fdata = Bolt_profile.Fdata
module Objfile = Bolt_obj.Objfile
module Buf = Bolt_obj.Buf
module Merge = Bolt_fleet.Merge
module Gen = Bolt_workloads.Gen
module P = Bolt_pipeline.Pipeline

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let md5 s = Digest.to_hex (Digest.string s)

let digests () =
  read_file "fixtures/digests.txt" |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         match String.split_on_char ' ' line with
         | [ k; v ] -> Some (k, v)
         | _ -> None)

let digest_of name = List.assoc name (digests ())

(* ------------------------------------------------------------------ *)
(* fdata text generator: a mix every fleet shard could contain        *)

let gen_name =
  QCheck.Gen.oneofl
    [ "main"; "work"; "f_1"; "a.b/c$d"; "x"; "_Z4loopi"; "mf_000001" ]

let gen_num =
  QCheck.Gen.oneofl
    [
      "0";
      "1";
      "42";
      "4096";
      "9223372036854775807";
      (* over max_int64: both parsers must agree on the rejection *)
      "9999999999999999999999";
      "-3";
      "0x10";
      "ff";
      "";
      "12junk";
    ]

let gen_sep = QCheck.Gen.oneofl [ " "; "  "; " \t" ]

let gen_line =
  let open QCheck.Gen in
  let fields tag parts =
    gen_sep >>= fun sep -> return (String.concat sep (tag :: parts))
  in
  frequency
    [
      ( 4,
        gen_name >>= fun ff ->
        gen_num >>= fun fo ->
        gen_name >>= fun tf ->
        gen_num >>= fun t_o ->
        gen_num >>= fun c ->
        gen_num >>= fun m -> fields "B" [ ff; fo; tf; t_o; c; m ] );
      ( 2,
        gen_name >>= fun f ->
        gen_num >>= fun s ->
        gen_num >>= fun e ->
        gen_num >>= fun c -> fields "F" [ f; s; e; c ] );
      ( 2,
        gen_name >>= fun f ->
        gen_num >>= fun o ->
        gen_num >>= fun c -> fields "S" [ f; o; c ] );
      ( 1,
        gen_name >>= fun f ->
        gen_num >>= fun sz ->
        oneofl [ "-"; "main,work"; "x" ] >>= fun calls ->
        fields "G" [ f; sz; "6450b1484cf4a5"; "24c2db74b1ff07"; calls ] );
      ( 1,
        gen_name >>= fun f ->
        gen_num >>= fun o ->
        gen_num >>= fun sz -> fields "GB" [ f; o; sz; "2b826cf0"; "137454ad" ] );
      ( 1,
        oneofl [ "host"; "build-id"; "timestamp"; "events"; "weight"; "color" ]
        >>= fun k ->
        oneofl [ "fleet-01"; "7bc66ccc"; "100"; "2.5"; "" ] >>= fun v ->
        fields "H" [ k; v ] );
      (1, oneofl [ "mode lbr"; "mode sample"; "mode turbo" ]);
      ( 1,
        oneofl
          [
            "";
            " ";
            "B";
            "B main";
            "Z who knows";
            "GB before_any_g 0 8 ab cd";
            "B main 0 main 4 1 0 extra";
            String.make 200 'B';
          ] );
    ]

let gen_text =
  let open QCheck.Gen in
  list_size (int_range 0 60) gen_line >>= fun lines ->
  (* CRLF and missing trailing newline must not change what parses *)
  oneofl [ "\n"; "\r\n" ] >>= fun eol ->
  oneofl [ ""; "\n" ] >>= fun last ->
  frequency [ (4, return true); (1, return false) ] >>= fun with_mode ->
  let lines = if with_mode then "mode lbr" :: lines else lines in
  return (String.concat eol lines ^ last)

let arb_text = QCheck.make ~print:(fun s -> String.escaped s) gen_text

(* Lenient parses must agree exactly — records, header, fingerprints,
   totals AND the warning list (uncapped so the legacy list lines up). *)
let prop_parse_parity =
  QCheck.Test.make ~name:"fdata lexer == legacy parse (lenient)" ~count:500
    arb_text (fun text ->
      Fdata.parse ~max_warnings:max_int text = Fdata.parse_legacy text)

(* Strict parses must fail on the same input with the same message. *)
let prop_strict_parity =
  QCheck.Test.make ~name:"fdata lexer == legacy parse (strict)" ~count:500
    arb_text (fun text ->
      let run p =
        match p () with
        | r -> Ok r
        | exception Fdata.Bad_format m -> Error m
      in
      run (fun () -> Fdata.parse ~strict:true text)
      = run (fun () -> Fdata.parse_legacy ~strict:true text))

(* The streaming scan delivers exactly the records parse materializes,
   in file order, and the same envelope. *)
let prop_scan_parity =
  QCheck.Test.make ~name:"fdata scan callbacks == parse lists" ~count:300
    arb_text (fun text ->
      let branches = ref [] and ranges = ref [] and samples = ref [] in
      let t, w =
        Fdata.scan ~max_warnings:max_int
          ~branch:(fun b -> branches := b :: !branches)
          ~range:(fun r -> ranges := r :: !ranges)
          ~sample:(fun s -> samples := s :: !samples)
          text
      in
      let p, pw = Fdata.parse ~max_warnings:max_int text in
      w = pw
      && { p with Fdata.branches = []; ranges = []; samples = [] } = t
      && List.rev !branches = p.Fdata.branches
      && List.rev !ranges = p.Fdata.ranges
      && List.rev !samples = p.Fdata.samples)

(* The arena emitter and the Printf emitter write the same bytes, and
   the dump is a fixpoint: parsing it and dumping again reproduces the
   exact bytes.  (Plain [parse (to_string p) = p] is too strong — an
   all-defaults header parses to [Some no_header] but dumps to nothing,
   which is the format's canonicalization, shared by both emitters.) *)
let prop_emit_parity =
  QCheck.Test.make ~name:"fdata to_string == to_string_legacy" ~count:300
    arb_text (fun text ->
      let p = fst (Fdata.parse text) in
      let s = Fdata.to_string p in
      s = Fdata.to_string_legacy p && Fdata.to_string (fst (Fdata.parse s)) = s)

(* ------------------------------------------------------------------ *)
(* Buf primitive parity: new batched reads vs the legacy byte loops   *)

let arb_bytes =
  QCheck.make
    ~print:(fun s -> String.escaped s)
    QCheck.Gen.(map Bytes.unsafe_to_string (bytes_size (int_range 0 64)))

let prop_reader_parity =
  QCheck.Test.make ~name:"Buf reader == Buf.Legacy reader" ~count:500
    arb_bytes (fun payload ->
      (* serialize with the new writer, read back with both cursors *)
      let w = Buf.writer () in
      Buf.u8 w 0xab;
      Buf.u32 w (String.length payload * 7919);
      Buf.i64 w (String.length payload * 104729);
      Buf.i64 w (-1);
      Buf.str w payload;
      let s = Buf.contents w in
      let lw = Buf.Legacy.writer () in
      Buf.Legacy.u8 lw 0xab;
      Buf.Legacy.u32 lw (String.length payload * 7919);
      Buf.Legacy.i64 lw (String.length payload * 104729);
      Buf.Legacy.i64 lw (-1);
      Buf.Legacy.str lw payload;
      s = Buf.Legacy.contents lw
      &&
      let r = Buf.reader s and lr = Buf.reader s in
      Buf.r_u8 r = Buf.Legacy.r_u8 lr
      && Buf.r_u32 r = Buf.Legacy.r_u32 lr
      && Buf.r_i64 r = Buf.Legacy.r_i64 lr
      && Buf.r_i64 r = Buf.Legacy.r_i64 lr
      && Buf.r_str r = Buf.Legacy.r_str lr)

let prop_text_emitters =
  QCheck.Test.make ~name:"Buf dec/dec64/hex == Printf" ~count:500
    QCheck.(pair int (int_range 0 max_int))
    (fun (a, b) ->
      let w = Buf.writer () in
      Buf.dec w a;
      Buf.add_char w ' ';
      Buf.dec64 w (Int64.of_int a);
      Buf.add_char w ' ';
      Buf.hex w b;
      Buf.contents w = Printf.sprintf "%d %d %x" a a b)

let buf_units () =
  (* slice bounds *)
  let sl = Buf.slice_of_string "hello world" in
  let sub = Buf.sub_slice sl 6 5 in
  Alcotest.(check string) "sub_slice" "world" (Buf.slice_to_string sub);
  Alcotest.check_raises "oob sub_slice" (Buf.Corrupt "slice out of bounds")
    (fun () -> ignore (Buf.sub_slice sl 8 5));
  (* reserve/patch: a length prefix written after its payload *)
  let w = Buf.writer ~capacity:4 () in
  let off = Buf.reserve w 4 in
  Buf.add_string w "payload";
  Buf.patch_u32 w off (Buf.length w - 4);
  let r = Buf.reader (Buf.contents w) in
  Alcotest.(check string) "patched prefix" "payload" (Buf.r_str r);
  (* reader memo: repeated strings come back physically shared *)
  let w = Buf.writer () in
  List.iter (Buf.str w) [ "f1"; ".text"; "f2"; ".text"; "f3"; ".text" ];
  let r = Buf.reader (Buf.contents w) in
  let vs = List.init 6 (fun _ -> Buf.r_str r) in
  (match vs with
  | [ _; t1; _; t2; _; t3 ] ->
      Alcotest.(check bool) "memo shares" true (t1 == t2 && t2 == t3)
  | _ -> assert false);
  (* truncation raises, never reads past the window *)
  let r = Buf.reader "\xff\xff\xff\xff" in
  Alcotest.check_raises "truncated str" (Buf.Corrupt "truncated input")
    (fun () -> ignore (Buf.r_str r))

(* ------------------------------------------------------------------ *)
(* BELF fixtures: both decoders, both container versions              *)

let belf_fixture_parity () =
  List.iter
    (fun (file, key) ->
      let bytes = read_file ("fixtures/" ^ file) in
      Alcotest.(check string)
        (file ^ " digest") (digest_of key) (md5 bytes);
      let n = Objfile.of_string bytes in
      let l = Objfile.of_string_legacy bytes in
      Alcotest.(check bool) (file ^ " decoders agree") true (n = l);
      (* v5 re-encodes to the same bytes; v4 re-encodes as v5 *)
      if key = "belf_v5" then
        Alcotest.(check string)
          (file ^ " round-trip") (md5 bytes)
          (md5 (Objfile.to_string n)))
    [ ("small_v5.belf", "belf_v5"); ("small_v4.belf", "belf_v4") ]

let fdata_fixture_parity () =
  List.iter
    (fun file ->
      let text = read_file ("fixtures/" ^ file) in
      let n = Fdata.parse ~max_warnings:max_int text in
      Alcotest.(check bool) (file ^ " parsers agree") true
        (n = Fdata.parse_legacy text);
      Alcotest.(check int) (file ^ " no warnings") 0 (List.length (snd n));
      Alcotest.(check string) (file ^ " emitters agree")
        (Fdata.to_string_legacy (fst n))
        (Fdata.to_string (fst n)))
    [ "profile.fdata"; "merged.fdata" ]

(* ------------------------------------------------------------------ *)
(* Golden digests: the whole pipeline, byte-identical to pre-refactor *)

(* The program the committed fixtures were generated from; changing it
   invalidates test/fixtures/digests.txt. *)
let fixture_source =
  {|
global total = 0;
const table = { 5, 3, 8, 1, 9, 2, 7, 4 };

fn hash(x) { return (x * 2654435761) & 1073741823; }

fn classify(x) {
  switch (x % 8) {
    case 0: { return table[0]; }
    case 1: { return table[1]; }
    case 2: { return table[2]; }
    case 3: { return table[3]; }
    case 4: { return table[4]; }
    default: { return x % 3; }
  }
}

fn process(x) {
  var h = hash(x);
  if (h % 100 < 2) { throw h; }
  return classify(h) + (h % 7);
}

fn main() {
  var i = 0;
  while (i < 20000) {
    try { total = total + process(i); }
    catch (e) { total = total + 1; }
    i = i + 1;
  }
  out total;
  return 0;
}
|}

let golden_digests () =
  let build = P.compile [ ("m", fixture_source) ] in
  let input = Array.init 16 (fun i -> (i * 7) + 3) in
  let prof, _ = P.profile build ~input in
  Alcotest.(check string) "fdata dump" (digest_of "fdata")
    (md5 (Fdata.to_string prof));
  let b1, _ = P.bolt ~jobs:1 build prof in
  let b4, _ = P.bolt ~jobs:4 build prof in
  Alcotest.(check string) "obolt j=1" (digest_of "obolt_j1")
    (md5 (Objfile.to_string b1.P.exe));
  Alcotest.(check string) "obolt j=4" (digest_of "obolt_j4")
    (md5 (Objfile.to_string b4.P.exe));
  let shard host w ts =
    let p, _ = P.profile_shard ~host ~weight:w ~timestamp:ts build ~input in
    Merge.shard_of_profile ~name:host p
  in
  let merged =
    Merge.merge
      ~opts:{ Merge.default_options with Merge.decay = Some 0.001; jobs = 2 }
      [ shard "host-a" 1.0 100; shard "host-b" 2.5 130; shard "host-c" 0.75 90 ]
  in
  Alcotest.(check string) "bmerge" (digest_of "bmerge")
    (md5 (Fdata.to_string merged));
  (* streaming merge produces the same bytes as the batch merge *)
  let texts =
    [ ("host-a", 1.0, 100); ("host-b", 2.5, 130); ("host-c", 0.75, 90) ]
    |> List.map (fun (h, w, ts) ->
           let p, _ = P.profile_shard ~host:h ~weight:w ~timestamp:ts build ~input in
           (h, Fdata.to_string p))
  in
  let streamed =
    Merge.merge_stream
      ~opts:{ Merge.default_options with Merge.decay = Some 0.001; jobs = 2 }
      texts
  in
  Alcotest.(check string) "bmerge streaming" (digest_of "bmerge")
    (md5 (Fdata.to_string streamed))

(* ------------------------------------------------------------------ *)
(* Mega-workload smoke: the bench's generator, at unit-test scale     *)

let mega_parity () =
  let m = Gen.gen_mega ~funcs:96 ~fdata_lines:2_500 () in
  let belf = m.Gen.mg_belf in
  Alcotest.(check bool) "belf decoders agree" true
    (Objfile.of_string belf = Objfile.of_string_legacy belf);
  let p, w = Fdata.parse m.Gen.mg_fdata in
  Alcotest.(check int) "mega fdata clean" 0 (List.length w);
  Alcotest.(check bool) "fdata parsers agree" true
    ((p, w) = Fdata.parse_legacy m.Gen.mg_fdata);
  Alcotest.(check bool) "mega has fingerprints" true (p.Fdata.fingerprints <> []);
  Alcotest.(check int) "line count" m.Gen.mg_fdata_lines
    (List.length
       (String.split_on_char '\n' (String.trim m.Gen.mg_fdata)))

(* ------------------------------------------------------------------ *)
(* sat_scale near the saturation boundary                             *)

let sat_scale_boundary () =
  (* identity scale is exact even where Int64.to_float rounds up *)
  let near = Int64.sub Int64.max_int 512L in
  Alcotest.(check int64) "identity near max" near (Fdata.sat_scale near 1.0);
  Alcotest.(check int64) "identity at max" Int64.max_int
    (Fdata.sat_scale Int64.max_int 1.0);
  (* the float path still saturates cleanly just past the boundary *)
  Alcotest.(check int64) "x1.5 near max saturates" Int64.max_int
    (Fdata.sat_scale near 1.5);
  let half = Fdata.sat_scale near 0.5 in
  Alcotest.(check bool) "half below max" true (half < Int64.max_int && half > 0L);
  Alcotest.(check int64) "zero factor" 0L (Fdata.sat_scale near 0.0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_parse_parity;
    QCheck_alcotest.to_alcotest prop_strict_parity;
    QCheck_alcotest.to_alcotest prop_scan_parity;
    QCheck_alcotest.to_alcotest prop_emit_parity;
    QCheck_alcotest.to_alcotest prop_reader_parity;
    QCheck_alcotest.to_alcotest prop_text_emitters;
    Alcotest.test_case "buf units" `Quick buf_units;
    Alcotest.test_case "belf fixtures old-vs-new" `Quick belf_fixture_parity;
    Alcotest.test_case "fdata fixtures old-vs-new" `Quick fdata_fixture_parity;
    Alcotest.test_case "golden digests (pre-refactor bytes)" `Slow golden_digests;
    Alcotest.test_case "mega workload parity" `Quick mega_parity;
    Alcotest.test_case "sat_scale boundary" `Quick sat_scale_boundary;
  ]
