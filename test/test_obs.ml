(* Unit tests for the telemetry layer (lib/obs): span nesting and timing
   under a deterministic fake clock, metrics registry semantics and
   merging, manifest JSON round-trips, and the heat-map summary edge
   cases the manifest relies on. *)

module Json = Bolt_obs.Json
module Metrics = Bolt_obs.Metrics
module Trace = Bolt_obs.Trace
module Obs = Bolt_obs.Obs
module Manifest = Bolt_obs.Manifest
module Heatmap = Bolt_core.Heatmap

(* A hand-cranked clock: tests advance time explicitly. *)
let fake_clock () =
  let t = ref 0.0 in
  ((fun () -> !t), fun d -> t := !t +. d)

(* ---- trace spans ---- *)

let test_span_nesting () =
  let clock, advance = fake_clock () in
  let tr = Trace.create ~clock ~name:"root" () in
  Trace.with_span tr "outer" (fun () ->
      advance 0.5;
      Trace.with_span tr "inner" (fun () -> advance 0.25);
      Trace.with_span tr "inner2" (fun () -> advance 0.125));
  Trace.finish tr;
  let flat = Trace.flatten tr in
  Alcotest.(check (list (pair int string)))
    "pre-order depth/name"
    [ (0, "root"); (1, "outer"); (2, "inner"); (2, "inner2") ]
    (List.map (fun (d, (s : Trace.span)) -> (d, s.Trace.sp_name)) flat);
  let dur name =
    let _, s = List.find (fun (_, s) -> s.Trace.sp_name = name) flat in
    s.Trace.sp_dur
  in
  Alcotest.(check (float 1e-9)) "outer duration" 0.875 (dur "outer");
  Alcotest.(check (float 1e-9)) "inner duration" 0.25 (dur "inner");
  Alcotest.(check (float 1e-9)) "inner2 duration" 0.125 (dur "inner2");
  Alcotest.(check (float 1e-9)) "root duration" 0.875 (dur "root")

let test_span_monotonic () =
  (* a clock that jumps backwards must never produce negative durations
     or out-of-order siblings *)
  let t = ref 10.0 in
  let readings = ref [ 10.0; 9.0; 8.5; 11.0; 7.0 ] in
  let clock () =
    (match !readings with
    | v :: rest ->
        t := v;
        readings := rest
    | [] -> ());
    !t
  in
  let tr = Trace.create ~clock ~name:"root" () in
  Trace.with_span tr "a" (fun () -> ());
  Trace.with_span tr "b" (fun () -> ());
  Trace.finish tr;
  List.iter
    (fun (_, (s : Trace.span)) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s duration non-negative" s.Trace.sp_name)
        true
        (s.Trace.sp_dur >= 0.0);
      Alcotest.(check bool)
        (Printf.sprintf "%s start non-negative" s.Trace.sp_name)
        true
        (s.Trace.sp_start >= 0.0))
    (Trace.flatten tr)

let test_span_exception () =
  let clock, advance = fake_clock () in
  let tr = Trace.create ~clock ~name:"root" () in
  (try
     Trace.with_span tr "boom" (fun () ->
         advance 1.0;
         failwith "kaboom")
   with Failure _ -> ());
  Trace.finish tr;
  match Trace.flatten tr with
  | [ _; (1, s) ] ->
      Alcotest.(check (float 1e-9)) "failed span still timed" 1.0 s.Trace.sp_dur;
      Alcotest.(check bool)
        "error attr attached" true
        (List.mem_assoc "error" s.Trace.sp_attrs)
  | other -> Alcotest.failf "expected root + 1 span, got %d" (List.length other)

(* ---- metrics registry ---- *)

let test_metrics_basics () =
  let m = Metrics.create () in
  Metrics.incr m "pass.icf.folded";
  Metrics.incr m ~by:4 "pass.icf.folded";
  Metrics.set m "profile.staleness_ratio" 0.25;
  Metrics.observe m "func.size" 10.0;
  Metrics.observe m "func.size" 30.0;
  Alcotest.(check int) "counter" 5 (Metrics.counter m "pass.icf.folded");
  Alcotest.(check (float 0.0)) "gauge" 0.25 (Metrics.gauge m "profile.staleness_ratio");
  (match Metrics.dist m "func.size" with
  | Some d ->
      Alcotest.(check int) "dist n" 2 d.Metrics.d_n;
      Alcotest.(check (float 0.0)) "dist sum" 40.0 d.Metrics.d_sum;
      Alcotest.(check (float 0.0)) "dist min" 10.0 d.Metrics.d_min;
      Alcotest.(check (float 0.0)) "dist max" 30.0 d.Metrics.d_max
  | None -> Alcotest.fail "distribution missing");
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Metrics: pass.icf.folded is a counter, not a gauge")
    (fun () -> Metrics.set m "pass.icf.folded" 1.0)

let test_metrics_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a ~by:3 "c.shared";
  Metrics.incr a ~by:1 "c.only_a";
  Metrics.set a "g.x" 1.0;
  Metrics.observe a "d.x" 5.0;
  Metrics.incr b ~by:4 "c.shared";
  Metrics.incr b ~by:7 "c.only_b";
  Metrics.set b "g.x" 2.0;
  Metrics.observe b "d.x" 1.0;
  Metrics.observe b "d.x" 9.0;
  Metrics.merge ~into:a b;
  Alcotest.(check int) "counters add" 7 (Metrics.counter a "c.shared");
  Alcotest.(check int) "a-only kept" 1 (Metrics.counter a "c.only_a");
  Alcotest.(check int) "b-only copied" 7 (Metrics.counter a "c.only_b");
  Alcotest.(check (float 0.0)) "gauge takes other's" 2.0 (Metrics.gauge a "g.x");
  (match Metrics.dist a "d.x" with
  | Some d ->
      Alcotest.(check int) "dist n combined" 3 d.Metrics.d_n;
      Alcotest.(check (float 0.0)) "dist min combined" 1.0 d.Metrics.d_min;
      Alcotest.(check (float 0.0)) "dist max combined" 9.0 d.Metrics.d_max
  | None -> Alcotest.fail "merged distribution missing");
  (* merging into a fresh registry must not alias the source *)
  let fresh = Metrics.create () in
  Metrics.merge ~into:fresh a;
  Metrics.incr fresh "c.shared";
  Alcotest.(check int) "merge copies, not aliases" 7 (Metrics.counter a "c.shared")

let test_counter_delta () =
  let m = Metrics.create () in
  Metrics.incr m ~by:2 "a";
  Metrics.incr m ~by:5 "b";
  let before = Metrics.counters m in
  Metrics.incr m ~by:3 "b";
  Metrics.incr m "c";
  Alcotest.(check (list (pair string int)))
    "only moved counters, sorted"
    [ ("b", 3); ("c", 1) ]
    (Metrics.counter_delta m ~before)

(* ---- JSON + manifest round-trip ---- *)

let json = Alcotest.testable Json.pp ( = )

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("int", Json.Int 42);
        ("neg", Json.Int (-7));
        ("float", Json.Float 3.25);
        ("float_int_valued", Json.Float 2.0);
        ("tiny", Json.Float 1.5e-9);
        ("string", Json.String "a \"quoted\"\n\ttab\\slash\x01");
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
        ("nested", Json.Obj [ ("l", Json.List [ Json.Int 1; Json.Obj [ ("k", Json.Null) ] ]) ]);
      ]
  in
  Alcotest.check json "compact round-trip" v (Json.of_string (Json.to_string v));
  Alcotest.check json "indented round-trip" v
    (Json.of_string (Json.to_string ~indent:true v));
  (* the int/float split survives: 2.0 must come back as Float, 2 as Int *)
  Alcotest.check json "float stays float" (Json.Float 2.0) (Json.of_string "2.0");
  Alcotest.check json "int stays int" (Json.Int 2) (Json.of_string "2")

let test_json_deep_nesting () =
  (* history records nest tool sections arbitrarily; the parser must
     survive structures far deeper than anything the tools emit *)
  let depth = 300 in
  let rec deep_list n = if n = 0 then Json.Int 7 else Json.List [ deep_list (n - 1) ] in
  let rec deep_obj n =
    if n = 0 then Json.Bool true else Json.Obj [ ("k", deep_obj (n - 1)) ]
  in
  let v = Json.Obj [ ("l", deep_list depth); ("o", deep_obj depth) ] in
  Alcotest.check json "deep nesting round-trips" v (Json.of_string (Json.to_string v));
  Alcotest.check json "deep nesting round-trips indented" v
    (Json.of_string (Json.to_string ~indent:true v))

let test_json_escape_roundtrip () =
  (* every control character, the two mandatory escapes, and raw bytes
     above 0x7f (UTF-8 passes through untouched) *)
  let controls = String.init 0x20 Char.chr in
  let cases =
    [
      controls;
      "quote \" backslash \\ slash /";
      "caf\xc3\xa9 \xe2\x82\xac";
      (* raw UTF-8 bytes *)
      "\x7f\x80\xff";
    ]
  in
  List.iter
    (fun s ->
      Alcotest.check json
        (Printf.sprintf "escape round-trip %S" s)
        (Json.String s)
        (Json.of_string (Json.to_string (Json.String s))))
    cases;
  (* \u escapes we never emit still parse: ASCII, 2-byte and 3-byte *)
  Alcotest.check json "\\u0041" (Json.String "A") (Json.of_string {|"A"|});
  Alcotest.check json "\\u00e9" (Json.String "\xc3\xa9") (Json.of_string {|"é"|});
  Alcotest.check json "\\u20ac" (Json.String "\xe2\x82\xac")
    (Json.of_string {|"€"|})

let test_json_nonfinite_policy () =
  (* NaN and the infinities have no JSON spelling: they print as null so
     a manifest with a degenerate rate never produces unparseable output *)
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string)
    "inf is null" "null"
    (Json.to_string (Json.Float Float.infinity));
  Alcotest.(check string)
    "-inf is null" "null"
    (Json.to_string (Json.Float Float.neg_infinity));
  Alcotest.(check string)
    "nested nonfinite" {|[1.0,null,2.5]|}
    (Json.to_string
       (Json.List [ Json.Float 1.0; Json.Float Float.nan; Json.Float 2.5 ]))

let test_json_int_float_boundaries () =
  let rt v = Json.of_string (Json.to_string v) in
  (* int-valued floats keep their decimal point up to the 1e15 printing
     boundary; past it the %g spelling still round-trips as Float *)
  Alcotest.check json "2^53 float" (Json.Float 9007199254740992.0)
    (rt (Json.Float 9007199254740992.0));
  Alcotest.check json "1e15 float" (Json.Float 1e15) (rt (Json.Float 1e15));
  Alcotest.check json "1e15-1 float" (Json.Float (1e15 -. 1.0))
    (rt (Json.Float (1e15 -. 1.0)));
  Alcotest.check json "big int stays int" (Json.Int 1_000_000_000_000_000)
    (rt (Json.Int 1_000_000_000_000_000));
  Alcotest.check json "max_int" (Json.Int max_int) (rt (Json.Int max_int));
  Alcotest.check json "min_int" (Json.Int min_int) (rt (Json.Int min_int));
  Alcotest.check json "subnormal float" (Json.Float 5e-324) (rt (Json.Float 5e-324));
  Alcotest.check json "tiny rate" (Json.Float 1.25e-9) (rt (Json.Float 1.25e-9));
  (* the printed spelling always marks floats as floats *)
  Alcotest.(check string) "int-valued float keeps point" "2.0"
    (Json.to_string (Json.Float 2.0));
  Alcotest.(check bool) "1e15 prints with exponent or point" true
    (let s = Json.to_string (Json.Float 1e15) in
     String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s)

let test_manifest_roundtrip () =
  let clock, advance = fake_clock () in
  let obs = Obs.create ~clock ~name:"test-tool" () in
  Obs.span obs "stage-1" (fun () ->
      advance 0.5;
      Obs.incr obs ~by:3 "pass.test.things";
      Obs.span obs "stage-1.child" (fun () -> advance 0.25));
  Obs.event obs "quarantine" ~attrs:[ ("func", Json.String "f12") ];
  Obs.set obs "profile.staleness_ratio" 0.125;
  let m =
    Manifest.make ~tool:"test-tool" ~argv:[ "test"; "--flag" ]
      ~sections:[ ("extra", Json.Obj [ ("k", Json.Int 1) ]) ]
      obs
  in
  let m' = Json.of_string (Json.to_string ~indent:true m) in
  Alcotest.check json "manifest round-trips exactly" m m';
  Alcotest.(check (option string))
    "schema" (Some Manifest.schema)
    (Json.get_string (Json.member "schema" m'));
  Alcotest.(check (option string))
    "tool" (Some "test-tool")
    (Json.get_string (Json.member "tool" m'));
  (* reading spans back: root + 2 spans, metrics delta attached *)
  let spans = Manifest.flat_spans m' in
  Alcotest.(check (list (pair int string)))
    "flat spans"
    [ (0, "test-tool"); (1, "stage-1"); (2, "stage-1.child") ]
    (List.map (fun (s : Manifest.flat_span) -> (s.Manifest.fs_depth, s.Manifest.fs_name)) spans);
  let stage1 = List.find (fun s -> s.Manifest.fs_name = "stage-1") spans in
  Alcotest.(check (float 1e-9)) "span duration survives" 0.75 stage1.Manifest.fs_dur;
  (match Json.member "metrics" (Json.Obj stage1.Manifest.fs_attrs) with
  | Some (Json.Obj [ ("pass.test.things", Json.Int 3) ]) -> ()
  | _ -> Alcotest.fail "per-span counter delta missing");
  (* slowest: child-before-parent ordering not required, just sorted by time *)
  match Manifest.slowest ~n:1 m' with
  | [ s ] -> Alcotest.(check string) "slowest span" "stage-1" s.Manifest.fs_name
  | _ -> Alcotest.fail "slowest ~n:1 did not return one span"

let test_disabled_obs () =
  let obs = Obs.create ~enabled:false ~name:"off" () in
  let r = Obs.span obs "stage" (fun () -> Obs.incr obs "x"; 17) in
  Alcotest.(check int) "wrapped function still runs" 17 r;
  Alcotest.(check int) "no metrics recorded" 0 (Metrics.counter obs.Obs.metrics "x");
  match Trace.flatten obs.Obs.trace with
  | [ (0, _) ] -> ()
  | l -> Alcotest.failf "disabled obs recorded %d spans" (List.length l - 1)

(* ---- heat-map summary edge cases ---- *)

let test_heatmap_empty () =
  let hm = Heatmap.build ~base:0x1000 ~span:4096 (Hashtbl.create 0) in
  Alcotest.(check int) "empty histogram has no extent" 0 (Heatmap.hot_extent hm);
  Alcotest.(check (float 0.0)) "empty histogram has no prefix heat" 0.0
    (Heatmap.heat_in_prefix hm (1.0 /. 16.0));
  match Json.member "hot_cells" (Heatmap.summary_json hm) with
  | Some (Json.Int 0) -> ()
  | _ -> Alcotest.fail "summary_json hot_cells should be 0"

let test_heatmap_hot_line_at_end () =
  (* one hot line in the very last bucket of the span: the extent must be
     the whole span and none of the heat is in the prefix *)
  let span = 64 * 64 * 8 in
  let heat = Hashtbl.create 1 in
  Hashtbl.replace heat (span - 8) 100;
  let hm = Heatmap.build ~base:0 ~span heat in
  Alcotest.(check int) "extent reaches the end" span (Heatmap.hot_extent hm);
  Alcotest.(check (float 0.0)) "no heat in the first 1/16" 0.0
    (Heatmap.heat_in_prefix hm (1.0 /. 16.0));
  Alcotest.(check (float 1e-9)) "all heat within the whole span" 1.0
    (Heatmap.heat_in_prefix hm 1.0)

let test_heatmap_out_of_range_ignored () =
  let heat = Hashtbl.create 2 in
  Hashtbl.replace heat 0x900 50 (* below base *);
  Hashtbl.replace heat 0x10000 50 (* beyond span *);
  let hm = Heatmap.build ~base:0x1000 ~span:4096 heat in
  Alcotest.(check int) "out-of-range lines contribute nothing" 0 (Heatmap.hot_extent hm)

let suite =
  [
    Alcotest.test_case "span nesting and fake-clock timing" `Quick test_span_nesting;
    Alcotest.test_case "span durations never negative" `Quick test_span_monotonic;
    Alcotest.test_case "span closed and marked on exception" `Quick test_span_exception;
    Alcotest.test_case "metrics basics and kind safety" `Quick test_metrics_basics;
    Alcotest.test_case "metrics merge semantics" `Quick test_metrics_merge;
    Alcotest.test_case "counter deltas" `Quick test_counter_delta;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json deep nesting" `Quick test_json_deep_nesting;
    Alcotest.test_case "json escape round-trips" `Quick test_json_escape_roundtrip;
    Alcotest.test_case "json nan/infinity policy" `Quick test_json_nonfinite_policy;
    Alcotest.test_case "json int/float boundaries" `Quick test_json_int_float_boundaries;
    Alcotest.test_case "manifest round-trip" `Quick test_manifest_roundtrip;
    Alcotest.test_case "disabled obs is a no-op" `Quick test_disabled_obs;
    Alcotest.test_case "heatmap: empty histogram" `Quick test_heatmap_empty;
    Alcotest.test_case "heatmap: hot line at span end" `Quick test_heatmap_hot_line_at_end;
    Alcotest.test_case "heatmap: out-of-range lines" `Quick test_heatmap_out_of_range_ignored;
  ]
