(* The shared layout engine (lib/layout): ExtTSP objective, chain pool,
   the three algorithms, the offline evaluator, and the end-to-end
   properties the PR promises — ext-tsp never scores below cache+ or
   the original layout on any profiled function, chains never lose
   blocks, the entry block stays first, and both obolt and minicc stay
   deterministic. *)

module L = Bolt_layout
module Cfg = Bolt_layout.Cfg
module Chain = Bolt_layout.Chain
module Engine = Bolt_layout.Engine
module P = Bolt_pipeline.Pipeline
module Context = Bolt_core.Context
module Opts = Bolt_core.Opts
module Passman = Bolt_core.Passman
module Layout_bbs = Bolt_core.Layout_bbs

let mk ?entry nodes edges =
  Cfg.make
    ~nodes:
      (Array.of_list
         (List.map
            (fun (label, size, count) ->
              { Cfg.n_label = label; n_size = size; n_count = count })
            nodes))
    ?entry edges

let order_labels cfg order =
  Array.to_list (Array.map (Cfg.label cfg) order)

let pos order label =
  let rec go i = function
    | [] -> Alcotest.failf "label %s not placed" label
    | l :: _ when l = label -> i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 order

(* ---- the objective ---- *)

let test_exttsp_weights () =
  (* two hot blocks laid out back to back: pure fall-through weight *)
  let cfg = mk ~entry:0 [ ("a", 16, 10); ("b", 16, 10) ] [ (0, 1, 10) ] in
  Alcotest.(check (float 1e-6)) "fall-through" 10.0 (L.Exttsp.score cfg [| 0; 1 |]);
  (* reversed: b sits before a; the jump goes backward 32 bytes, from
     the end of a (offset 32) to the start of b (offset 0) *)
  let back = L.Exttsp.score cfg [| 1; 0 |] in
  Alcotest.(check (float 1e-6)) "short backward jump"
    (0.1 *. 10.0 *. (1.0 -. (32.0 /. 640.0)))
    back;
  (* a gap block pushes the target to a short forward jump *)
  let cfg3 =
    mk ~entry:0
      [ ("a", 16, 10); ("gap", 100, 0); ("b", 16, 10) ]
      [ (0, 2, 10) ]
  in
  Alcotest.(check (float 1e-6)) "short forward jump"
    (0.1 *. 10.0 *. (1.0 -. (100.0 /. 1024.0)))
    (L.Exttsp.score cfg3 [| 0; 1; 2 |]);
  (* beyond the window the edge is worthless *)
  let far =
    mk ~entry:0 [ ("a", 16, 10); ("gap", 2000, 0); ("b", 16, 10) ] [ (0, 2, 10) ]
  in
  Alcotest.(check (float 1e-6)) "long jump scores zero" 0.0
    (L.Exttsp.score far [| 0; 1; 2 |])

(* ---- golden layouts on the four example CFG shapes ---- *)

(* quickstart-shaped: a diamond with one dominant side *)
let test_golden_diamond () =
  let cfg =
    mk ~entry:0
      [ ("entry", 12, 100); ("hot", 20, 99); ("cold", 20, 1); ("join", 12, 100) ]
      [ (0, 1, 99); (0, 2, 1); (1, 3, 99); (2, 3, 1) ]
  in
  let o = order_labels cfg (Engine.order Engine.Ext_tsp cfg) in
  Alcotest.(check int) "entry first" 0 (pos o "entry");
  Alcotest.(check int) "hot side falls through" 1 (pos o "hot");
  Alcotest.(check int) "join follows the hot side" 2 (pos o "join")

(* datacenter-shaped: a hot loop with a cold exit *)
let test_golden_loop () =
  let cfg =
    mk ~entry:0
      [ ("head", 12, 1000); ("body", 40, 995); ("exit", 12, 5) ]
      [ (0, 1, 995); (1, 0, 990); (0, 2, 5) ]
  in
  let o = order_labels cfg (Engine.order Engine.Ext_tsp cfg) in
  Alcotest.(check int) "loop head first" 0 (pos o "head");
  Alcotest.(check int) "body falls through from head" 1 (pos o "body")

(* compiler-shaped: a switch with one hot case *)
let test_golden_switch () =
  let cfg =
    mk ~entry:0
      [
        ("dispatch", 16, 100);
        ("case_hot", 24, 90);
        ("case_b", 24, 6);
        ("case_c", 24, 4);
        ("join", 12, 100);
      ]
      [ (0, 1, 90); (0, 2, 6); (0, 3, 4); (1, 4, 90); (2, 4, 6); (3, 4, 4) ]
  in
  let o = order_labels cfg (Engine.order Engine.Ext_tsp cfg) in
  Alcotest.(check int) "dispatch first" 0 (pos o "dispatch");
  Alcotest.(check int) "hot case falls through" 1 (pos o "case_hot");
  Alcotest.(check int) "join follows the hot case" 2 (pos o "join")

(* multifeed-shaped: two hot chains given interleaved in the original
   order; the engine must reassemble each chain contiguously *)
let test_golden_two_chains () =
  let cfg =
    mk ~entry:0
      [
        ("e", 8, 100);
        ("a1", 16, 60); ("b1", 16, 40);
        ("a2", 16, 60); ("b2", 16, 40);
        ("a3", 16, 60); ("b3", 16, 40);
      ]
      [
        (0, 1, 60); (0, 2, 40);
        (1, 3, 60); (3, 5, 60);
        (2, 4, 40); (4, 6, 40);
      ]
  in
  let o = order_labels cfg (Engine.order Engine.Ext_tsp cfg) in
  Alcotest.(check int) "entry first" 0 (pos o "e");
  Alcotest.(check int) "a-chain contiguous (a2 after a1)"
    (pos o "a1" + 1) (pos o "a2");
  Alcotest.(check int) "a-chain contiguous (a3 after a2)"
    (pos o "a2" + 1) (pos o "a3");
  Alcotest.(check int) "b-chain contiguous (b2 after b1)"
    (pos o "b1" + 1) (pos o "b2");
  Alcotest.(check int) "b-chain contiguous (b3 after b2)"
    (pos o "b2" + 1) (pos o "b3")

(* A split-merge must beat plain concatenation here: the hot chain X =
   [x1; x2] has a hot edge from x1 into Y and back from Y to x2, so the
   best arrangement is x1·Y·x2 — only reachable by splitting X. *)
let test_split_improves () =
  let cfg =
    mk ~entry:0
      [ ("x1", 16, 100); ("x2", 16, 100); ("y", 16, 100) ]
      [ (0, 1, 1); (0, 2, 100); (2, 1, 100) ]
  in
  let o = order_labels cfg (Engine.order Engine.Ext_tsp cfg) in
  Alcotest.(check (list string)) "split arrangement chosen"
    [ "x1"; "y"; "x2" ] o

(* ---- chain pool invariants ---- *)

let test_chain_pool () =
  let cfg =
    mk [ ("a", 8, 1); ("b", 8, 2); ("c", 8, 3); ("d", 8, 4) ] [ (0, 1, 5) ]
  in
  let pool = Chain.create cfg in
  Alcotest.(check int) "four singleton chains" 4 (List.length (Chain.live_chains pool));
  Chain.append pool ~into:0 1;
  Alcotest.(check int) "merge shrinks the pool" 3 (List.length (Chain.live_chains pool));
  Alcotest.(check int) "O(1) head" 0 (Chain.head pool 0);
  Alcotest.(check int) "O(1) tail" 1 (Chain.tail pool 0);
  Alcotest.(check int) "weights add" 3 (Chain.weight pool 0);
  Alcotest.(check int) "sizes add" 16 (Chain.size pool 0);
  (* split-merge: c between a and b *)
  Chain.replace pool ~keep:0 ~drop:2 [| 0; 2; 1 |];
  Alcotest.(check bool) "dropped chain is dead" false (Chain.alive pool 2);
  Alcotest.(check int) "split keeps every block" 3 (Chain.length pool 0);
  Alcotest.(check int) "membership rerouted" 0 (Chain.chain_of pool 2);
  (* losing a block is rejected *)
  Alcotest.check_raises "lossy arrangement rejected"
    (Invalid_argument "Chain.replace: arrangement loses or duplicates blocks")
    (fun () -> Chain.replace pool ~keep:0 ~drop:3 [| 0; 1 |])

(* Random CFGs: every algorithm returns a permutation with the entry
   block first, and ext-tsp honours its guard contract — score never
   below cache+, fall-through weight (taken branches, sign flipped)
   never below cache+ either, and never below any original layout that
   itself meets the fall-through floor.  Chain splitting included;
   nothing is ever lost. *)
let engine_properties =
  QCheck.Test.make ~name:"engine: permutation, entry-first, ext-tsp dominates"
    ~count:120
    (QCheck.make
       QCheck.Gen.(
         let n = int_range 1 12 in
         pair n (list_size (int_range 0 40) (triple (int_range 0 11) (int_range 0 11) (int_range 0 100))))
    )
    (fun (n, raw_edges) ->
      let nodes =
        List.init n (fun i -> (Printf.sprintf "b%d" i, 8 + (8 * (i mod 4)), (i * 7) mod 50))
      in
      let edges = List.filter (fun (s, d, _) -> s < n && d < n) raw_edges in
      let cfg = mk ~entry:0 nodes edges in
      let ident = List.init n (fun i -> i) in
      let score o = L.Exttsp.score cfg o in
      let results =
        List.map
          (fun a -> Engine.order a cfg)
          [ Engine.Cache; Engine.Cache_plus; Engine.Ext_tsp ]
      in
      let perm_ok =
        List.for_all
          (fun o -> List.sort compare (Array.to_list o) = ident)
          results
      in
      let entry_ok = List.for_all (fun o -> o.(0) = 0) results in
      let ft o = L.Exttsp.fallthroughs cfg o in
      let ext_o = List.nth results 2 and cp_o = List.nth results 1 in
      let ext = score ext_o in
      let floor = ft cp_o in
      let dominates =
        ext +. 1e-6 >= score cp_o
        && ft ext_o >= floor
        && (ft (Cfg.identity cfg) < floor
           || ext +. 1e-6 >= score (Cfg.identity cfg))
      in
      perm_ok && entry_ok && dominates)

(* ---- evaluator ---- *)

let test_evaluator () =
  let cfg =
    mk ~entry:0
      [ ("a", 64, 10); ("b", 64, 10); ("c", 64, 10); ("cold", 4096, 0) ]
      [ (0, 1, 10); (1, 2, 10) ]
  in
  let r = L.Evaluator.evaluate cfg (Cfg.identity cfg) in
  Alcotest.(check int) "three hot cache lines" 3 r.L.Evaluator.ev_icache_lines;
  Alcotest.(check int) "one hot page" 1 r.L.Evaluator.ev_itlb_pages;
  Alcotest.(check int) "cold block excluded" 192 r.L.Evaluator.ev_hot_bytes;
  Alcotest.(check (float 1e-6)) "straight-line score" 20.0 r.L.Evaluator.ev_score;
  (* spreading the same hot blocks across pages costs pages, not score *)
  let spread =
    mk ~entry:0
      [ ("a", 64, 10); ("pad", 8192, 0); ("b", 64, 10); ("c", 64, 10) ]
      [ (0, 2, 10); (2, 3, 10) ]
  in
  let r2 = L.Evaluator.evaluate spread (Cfg.identity spread) in
  Alcotest.(check int) "spread hot pages" 2 r2.L.Evaluator.ev_itlb_pages

(* ---- end-to-end: score monotonicity on example-shaped workloads ---- *)

let quickstart_source =
  {|
global total = 0;
const table = { 5, 3, 8, 1, 9, 2, 7, 4 };

fn hash(x) { return (x * 2654435761) & 1073741823; }

fn classify(x) {
  switch (x % 8) {
    case 0: { return table[0]; }
    case 1: { return table[1]; }
    case 2: { return table[2]; }
    case 3: { return table[3]; }
    case 4: { return table[4]; }
    default: { return x % 3; }
  }
}

fn process(x) {
  var h = hash(x);
  if (h % 100 < 2) { throw h; }
  return classify(h) + (h % 7);
}

fn main() {
  var i = 0;
  while (i < 20000) {
    try { total = total + process(i); }
    catch (e) { total = total + 1; }
    i = i + 1;
  }
  out total;
  return 0;
}
|}

(* A context with CFGs built and the profile attached, pre-reorder. *)
let mk_ctx build prof =
  let ctx = Context.create ~opts:Opts.default build.P.exe in
  let env = Passman.make_env ctx prof in
  Passman.run env Passman.pre_passes;
  ctx

let check_monotone name ctx =
  let checked = ref 0 in
  List.iter
    (fun fb ->
      if Bolt_core.Bfunc.has_profile fb && Hashtbl.length fb.Bolt_core.Bfunc.blocks > 1
      then begin
        incr checked;
        let cfg = Layout_bbs.cfg_of_fn fb in
        let score a = L.Exttsp.score cfg (Engine.order a cfg) in
        let ext = score Engine.Ext_tsp in
        let fname = fb.Bolt_core.Bfunc.fb_name in
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s: ext-tsp >= cache+" name fname)
          true
          (ext +. 1e-6 >= score Engine.Cache_plus);
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s: ext-tsp >= cache" name fname)
          true
          (ext +. 1e-6 >= score Engine.Cache);
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s: ext-tsp >= original" name fname)
          true
          (ext +. 1e-6 >= L.Exttsp.score cfg (Cfg.identity cfg))
      end)
    (Context.simple_funcs ctx);
  Alcotest.(check bool) (name ^ ": checked some functions") true (!checked > 0)

let test_monotone_quickstart () =
  let build = P.compile [ ("quickstart", quickstart_source) ] in
  let prof, _ = P.profile build ~input:[||] in
  check_monotone "quickstart" (mk_ctx build prof)

let gen_build params =
  let w = Bolt_workloads.Gen.gen params in
  let cc = Bolt_minic.Driver.default_options in
  let r =
    Bolt_minic.Driver.compile ~options:cc
      ~externals:w.Bolt_workloads.Gen.externals
      ~extra_objs:w.Bolt_workloads.Gen.extra_objs w.Bolt_workloads.Gen.sources
  in
  let build = { P.exe = r.exe; cc } in
  let prof, _ = P.profile build ~input:w.Bolt_workloads.Gen.input in
  (build, prof)

let test_monotone_datacenter () =
  let build, prof =
    gen_build
      {
        Bolt_workloads.Workloads.hhvm_like with
        Bolt_workloads.Gen.funcs = 150;
        modules = 3;
        iterations = 1_000;
      }
  in
  check_monotone "datacenter" (mk_ctx build prof)

(* The dyno-stats acceptance bar: with the ext-tsp default, taken
   branches after BOLT stay no worse than what cache+ achieves on the
   datacenter-shaped workload, and the after-layout ExtSTP total is no
   worse either. *)
let test_beats_cache_plus_e2e () =
  let build, prof =
    gen_build
      {
        Bolt_workloads.Workloads.hhvm_like with
        Bolt_workloads.Gen.funcs = 150;
        modules = 3;
        iterations = 1_000;
      }
  in
  let run rb =
    let opts = { Opts.default with reorder_blocks = rb } in
    let _, r = P.bolt ~opts build prof in
    r
  in
  let ext = run Opts.Rb_ext_tsp and cp = run Opts.Rb_cache_plus in
  let taken (r : Bolt_core.Bolt.report) =
    r.Bolt_core.Bolt.r_dyno_after.Bolt_core.Dyno_stats.taken_branches
  in
  let score (r : Bolt_core.Bolt.report) =
    (Layout_bbs.snapshot_totals r.Bolt_core.Bolt.r_layout_after)
      .L.Evaluator.ev_score
  in
  Alcotest.(check bool) "taken branches <= cache+" true (taken ext <= taken cp);
  Alcotest.(check bool) "ExtTSP total >= cache+" true
    (score ext +. 1e-6 >= score cp)

(* ---- determinism ---- *)

(* -j1 vs -j4 byte-identity for the new default pass (the parallel
   suite re-checks this on the bigger workloads). *)
let test_parallel_identity () =
  let build = P.compile [ ("t", quickstart_source) ] in
  let prof, _ = P.profile build ~input:[||] in
  let at jobs =
    let b, _ = P.bolt ~jobs build prof in
    Bolt_obj.Objfile.to_string b.P.exe
  in
  Alcotest.(check bool) "j1 = j4 bytes" true (at 1 = at 4)

(* minicc PGO -O2 layout: two compiles of the same sources with the
   same edge profile must be byte-identical (the old blocklayout sorted
   equal-weight edges in hashtable order and was not). *)
let test_minicc_pgo_deterministic () =
  let sources = [ ("t", quickstart_source) ] in
  let cc = Bolt_minic.Driver.default_options in
  let edge_prof = P.pgo_profile ~cc sources ~input:[||] in
  let compile () =
    (Bolt_minic.Driver.compile
       ~options:{ cc with Bolt_minic.Driver.pgo = Bolt_minic.Driver.Apply edge_prof }
       sources)
      .Bolt_minic.Driver.exe |> Bolt_obj.Objfile.to_string
  in
  Alcotest.(check bool) "PGO recompile is byte-identical" true
    (compile () = compile ())

let suite =
  [
    Alcotest.test_case "exttsp-weights" `Quick test_exttsp_weights;
    Alcotest.test_case "golden-diamond" `Quick test_golden_diamond;
    Alcotest.test_case "golden-loop" `Quick test_golden_loop;
    Alcotest.test_case "golden-switch" `Quick test_golden_switch;
    Alcotest.test_case "golden-two-chains" `Quick test_golden_two_chains;
    Alcotest.test_case "split-improves" `Quick test_split_improves;
    Alcotest.test_case "chain-pool" `Quick test_chain_pool;
    QCheck_alcotest.to_alcotest engine_properties;
    Alcotest.test_case "evaluator" `Quick test_evaluator;
    Alcotest.test_case "monotone-quickstart" `Quick test_monotone_quickstart;
    Alcotest.test_case "monotone-datacenter" `Slow test_monotone_datacenter;
    Alcotest.test_case "beats-cache-plus-e2e" `Slow test_beats_cache_plus_e2e;
    Alcotest.test_case "parallel-identity" `Quick test_parallel_identity;
    Alcotest.test_case "minicc-pgo-deterministic" `Quick
      test_minicc_pgo_deterministic;
  ]
