(* Differential fuzzing: random generated programs, random build options,
   full BOLT pipeline — output must be identical every time.  This is the
   repository's strongest property: the generator covers switches, jump
   tables (both PIC and absolute), exceptions, indirect calls, duplicate
   functions and assembly dispatchers, so each seed exercises a different
   slice of the rewriter. *)

module Machine = Bolt_sim.Machine

let params_of_seed seed =
  {
    Bolt_workloads.Gen.default with
    Bolt_workloads.Gen.seed;
    funcs = 120 + (seed * 37 mod 120);
    modules = 3 + (seed mod 5);
    layers = 4 + (seed mod 3);
    iterations = 600;
    switch_per_mille = 150 + (seed * 53 mod 400);
    indirect_per_mille = 100 + (seed * 29 mod 200);
    eh_per_mille = 80 + (seed * 17 mod 200);
    dup_plain_families = seed mod 3;
    dup_switch_families = seed mod 3;
    asm_dispatchers = seed mod 2;
    leaf_helpers = 8;
    top_funcs = 6;
  }

let cc_of_seed seed =
  {
    Bolt_minic.Driver.default_options with
    lto = seed mod 3 = 0;
    pic_jump_tables = seed mod 2 = 0;
    emit_relocs = seed mod 5 <> 4; (* occasionally exercise in-place mode *)
    function_sections = seed mod 7 <> 6;
    opt_level = (if seed mod 11 = 10 then 1 else 2);
  }

let run_seed seed =
  let w = Bolt_workloads.Gen.gen (params_of_seed seed) in
  let cc = cc_of_seed seed in
  let r =
    Bolt_minic.Driver.compile ~options:cc ~externals:w.Bolt_workloads.Gen.externals
      ~extra_objs:w.Bolt_workloads.Gen.extra_objs w.Bolt_workloads.Gen.sources
  in
  let base = Machine.run ~fuel:100_000_000 r.exe ~input:w.Bolt_workloads.Gen.input in
  let sampling =
    { Machine.event = Machine.Ev_cycles; period = 509; lbr = true; precise = true }
  in
  let o = Machine.run ~sampling r.exe ~input:w.Bolt_workloads.Gen.input in
  let prof =
    match o.Machine.profile with
    | Some raw -> Bolt_profile.Perf2bolt.convert r.exe raw
    | None -> Bolt_profile.Fdata.empty
  in
  let exe', _ = Bolt_core.Bolt.optimize r.exe prof in
  let opt = Machine.run ~fuel:100_000_000 exe' ~input:w.Bolt_workloads.Gen.input in
  (base, opt)

let check_seed seed () =
  let base, opt = run_seed seed in
  Alcotest.(check (list int))
    (Printf.sprintf "seed %d output" seed)
    base.Machine.output opt.Machine.output;
  Alcotest.(check int)
    (Printf.sprintf "seed %d exit" seed)
    base.Machine.exit_code opt.Machine.exit_code;
  Alcotest.(check bool)
    (Printf.sprintf "seed %d exceptions" seed)
    base.Machine.uncaught_exception opt.Machine.uncaught_exception

(* Seeds come from FUZZ_SEEDS when set ("3,7,100" or "1-32"), so a long
   fuzzing run does not need a rebuild. *)
let seeds_from_env () =
  match Sys.getenv_opt "FUZZ_SEEDS" with
  | None | Some "" -> List.init 12 (fun i -> i + 1)
  | Some spec ->
      String.split_on_char ',' spec
      |> List.concat_map (fun part ->
             let part = String.trim part in
             match String.index_opt part '-' with
             | Some i when i > 0 -> (
                 let lo = String.sub part 0 i in
                 let hi = String.sub part (i + 1) (String.length part - i - 1) in
                 match (int_of_string_opt lo, int_of_string_opt hi) with
                 | Some lo, Some hi when hi >= lo ->
                     List.init (hi - lo + 1) (fun k -> lo + k)
                 | _ -> failwith ("FUZZ_SEEDS: bad range " ^ part))
             | _ -> (
                 match int_of_string_opt part with
                 | Some s -> [ s ]
                 | None -> failwith ("FUZZ_SEEDS: bad seed " ^ part)))

let suite =
  List.map
    (fun seed ->
      Alcotest.test_case (Printf.sprintf "seed-%d" seed) `Slow (check_seed seed))
    (seeds_from_env ())
