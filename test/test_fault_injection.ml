(* Fault injection: corrupted binaries, corrupted profiles, stale
   profiles — the hardened pipeline's acceptance test.

   Every case feeds a deliberately damaged input through the full
   optimizer and demands one of exactly two outcomes:

   - a clean, sanctioned rejection ([Buf.Corrupt], [Context.Bolt_error],
     [Diag.Strict_error], [Diag.Quarantine_limit]) — never a stray
     exception; or
   - a rewritten binary that behaves identically to its (possibly
     damaged) input on the simulator: same output tape, same exit code,
     same crash.

   Corruption families: byte flips in the serialized container,
   truncations, byte flips inside .text of a well-formed container (in
   both relocations and in-place mode), mutated fdata text, stale
   profiles (offset drift, wrong binary), and drifted-revision profiles
   through the fingerprint matcher (edited bodies, renamed symbols,
   deleted functions, mangled fingerprint tables). *)

module Machine = Bolt_sim.Machine
module Objfile = Bolt_obj.Objfile
module Types = Bolt_obj.Types
module Fdata = Bolt_profile.Fdata
module Gen = Bolt_workloads.Gen

(* Deterministic PRNG: the suite must replay byte-for-byte. *)
let mk_rng seed =
  let state = ref (((seed * 2654435761) + 1013904223) land 0x3FFFFFFF) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    if bound <= 0 then 0 else !state mod bound

(* ---- base workload, built once ---- *)

let small_params seed =
  {
    Gen.default with
    Gen.seed;
    funcs = 28;
    modules = 2;
    layers = 3;
    iterations = 150;
    switch_per_mille = 300;
    indirect_per_mille = 150;
    eh_per_mille = 120;
    dup_plain_families = 1;
    dup_switch_families = 1;
    asm_dispatchers = 1;
    leaf_helpers = 4;
    top_funcs = 3;
  }

type base = {
  exe : Objfile.t;
  input : int array;
  prof : Fdata.t;
}

let build_base ~emit_relocs seed =
  let w = Gen.gen (small_params seed) in
  let cc = { Bolt_minic.Driver.default_options with emit_relocs } in
  let r =
    Bolt_minic.Driver.compile ~options:cc ~externals:w.Gen.externals
      ~extra_objs:w.Gen.extra_objs w.Gen.sources
  in
  let sampling =
    { Machine.event = Machine.Ev_cycles; period = 251; lbr = true; precise = true }
  in
  let o = Machine.run ~sampling r.exe ~input:w.Gen.input in
  let prof =
    match o.Machine.profile with
    | Some raw -> Bolt_profile.Perf2bolt.convert r.exe raw
    | None -> Fdata.empty
  in
  { exe = r.exe; input = w.Gen.input; prof }

let base_rel = lazy (build_base ~emit_relocs:true 3)
let base_inplace = lazy (build_base ~emit_relocs:false 4)

(* ---- outcome classification ---- *)

(* What a binary does when run, exceptions folded in: two binaries are
   behaviourally identical iff their classifications are equal. *)
type behaviour =
  | Ran of int list * int * bool (* output, exit code, uncaught exception *)
  | Crashed of string

let behaviour_pp ppf = function
  | Ran (out, code, exn) ->
      Fmt.pf ppf "ran: exit %d, uncaught %b, output %a" code exn
        Fmt.(Dump.list int)
        out
  | Crashed m -> Fmt.pf ppf "crashed: %s" m

let behaviour_t = Alcotest.testable behaviour_pp ( = )

(* Crash messages embed code addresses, and addresses legitimately move
   under relocation (even quarantined functions are re-placed verbatim in
   relocations mode), so compare messages with hex literals masked. *)
let mask_addresses m =
  let is_hex c =
    (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
  in
  let b = Buffer.create (String.length m) in
  let n = String.length m in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && m.[!i] = '0' && m.[!i + 1] = 'x' then begin
      Buffer.add_string b "0x_";
      i := !i + 2;
      while !i < n && is_hex m.[!i] do
        incr i
      done
    end
    else begin
      Buffer.add_char b m.[!i];
      incr i
    end
  done;
  Buffer.contents b

let classify exe ~input =
  match Machine.run ~fuel:20_000_000 exe ~input with
  | o -> Ran (o.Machine.output, o.Machine.exit_code, o.Machine.uncaught_exception)
  | exception Machine.Sim_error m -> Crashed (mask_addresses ("sim: " ^ m))
  | exception exn -> Crashed (mask_addresses (Printexc.to_string exn))

(* Run the optimizer; only the four sanctioned exceptions may escape. *)
type bolt_result =
  | Rewritten of Objfile.t * Bolt_core.Bolt.report
  | Rejected of string

let try_bolt ?(opts = Bolt_core.Opts.default) exe prof =
  match Bolt_core.Bolt.optimize ~opts exe prof with
  | out, report -> Rewritten (out, report)
  | exception Bolt_obj.Buf.Corrupt m -> Rejected ("corrupt: " ^ m)
  | exception Bolt_core.Context.Bolt_error m -> Rejected ("bolt-error: " ^ m)
  | exception Bolt_core.Diag.Strict_error m -> Rejected ("strict: " ^ m)
  | exception Bolt_core.Diag.Quarantine_limit n ->
      Rejected (Printf.sprintf "quarantine-limit: %d" n)
  | exception exn ->
      Alcotest.fail
        ("optimize leaked an unsanctioned exception: " ^ Printexc.to_string exn)

let check_preserved name input before_exe result =
  match result with
  | Rejected _ -> () (* clean rejection is always acceptable *)
  | Rewritten (out, _) ->
      Alcotest.check behaviour_t name (classify before_exe ~input)
        (classify out ~input)

(* ---- family 1: byte flips in the serialized container ---- *)

let flip_case i () =
  let b = Lazy.force base_rel in
  let rng = mk_rng (1000 + i) in
  let s = Bytes.of_string (Objfile.to_string b.exe) in
  let flips = 1 + rng 3 in
  for _ = 1 to flips do
    let off = rng (Bytes.length s) in
    Bytes.set s off (Char.chr (rng 256))
  done;
  match Objfile.of_string (Bytes.to_string s) with
  | exception Bolt_obj.Buf.Corrupt _ -> () (* rejected at parse: clean *)
  | exe' ->
      check_preserved
        (Printf.sprintf "flip-%d behaviour preserved" i)
        b.input exe' (try_bolt exe' b.prof)

(* ---- family 2: truncations of the serialized container ---- *)

let truncate_case i () =
  let b = Lazy.force base_rel in
  let s = Objfile.to_string b.exe in
  let keep = String.length s * (i + 1) / 12 in
  match Objfile.of_string (String.sub s 0 keep) with
  | exception Bolt_obj.Buf.Corrupt _ -> ()
  | exe' ->
      check_preserved
        (Printf.sprintf "truncate-%d behaviour preserved" i)
        b.input exe' (try_bolt exe' b.prof)

(* ---- family 3: garbage bytes inside .text of a well-formed file ---- *)

let corrupt_text rng (exe : Objfile.t) =
  (* deep copy through the serializer so the pristine base is untouched *)
  let exe = Objfile.of_string (Objfile.to_string exe) in
  let text =
    List.find (fun (s : Types.section) -> s.sec_name = ".text") exe.sections
  in
  let hits = 2 + rng 8 in
  for _ = 1 to hits do
    let off = rng (Bytes.length text.sec_data) in
    Bytes.set text.sec_data off (Char.chr (rng 256))
  done;
  exe

let text_case i () =
  let b = Lazy.force (if i mod 2 = 0 then base_rel else base_inplace) in
  let exe' = corrupt_text (mk_rng (2000 + i)) b.exe in
  check_preserved
    (Printf.sprintf "text-%d behaviour preserved" i)
    b.input exe' (try_bolt exe' b.prof)

(* ---- family 4: mutated fdata text ---- *)

let mutate_fdata rng text =
  let s = Bytes.of_string text in
  (match rng 4 with
  | 0 ->
      (* sprinkle random bytes *)
      for _ = 1 to 20 do
        Bytes.set s (rng (Bytes.length s)) (Char.chr (rng 256))
      done;
      Bytes.to_string s
  | 1 ->
      (* truncate mid-record *)
      Bytes.sub_string s 0 (rng (Bytes.length s))
  | 2 ->
      (* inject junk lines *)
      String.concat "\n"
        [
          "Z not a record";
          Bytes.to_string s;
          "B one two three";
          "F f -5 -9 nan";
          String.make 200 'x';
        ]
  | _ ->
      (* swap a block of the text with itself shifted: tears many lines *)
      let n = Bytes.length s in
      let cut = rng n in
      Bytes.to_string s
      |> fun t -> String.sub t cut (n - cut) ^ String.sub t 0 cut)

let fdata_case i () =
  let b = Lazy.force base_rel in
  let text' = mutate_fdata (mk_rng (3000 + i)) (Fdata.to_string b.prof) in
  (* lenient parse must never raise, whatever the damage *)
  let prof', _warnings = Fdata.parse text' in
  (* the binary is intact, so BOLT must complete (a worse profile only
     means worse layout) and preserve behaviour *)
  match try_bolt b.exe prof' with
  | Rejected m -> Alcotest.fail ("intact binary rejected: " ^ m)
  | Rewritten (out, _) ->
      Alcotest.check behaviour_t
        (Printf.sprintf "fdata-%d behaviour preserved" i)
        (classify b.exe ~input:b.input)
        (classify out ~input:b.input)

(* ---- family 5: stale profiles ---- *)

let stale_shifted () =
  (* every offset drifted, as after recompiling with small edits (§7) *)
  let b = Lazy.force base_rel in
  let p = b.prof in
  let shift n = n + 7 in
  let prof' =
    {
      p with
      Fdata.branches =
        List.map
          (fun (br : Fdata.branch) ->
            {
              br with
              Fdata.br_from_off = shift br.br_from_off;
              br_to_off = (if br.br_to_off = 0 then 0 else shift br.br_to_off);
            })
          p.Fdata.branches;
      ranges =
        List.map
          (fun (r : Fdata.range) ->
            { r with Fdata.rg_start = shift r.rg_start; rg_end = shift r.rg_end })
          p.Fdata.ranges;
    }
  in
  match try_bolt b.exe prof' with
  | Rejected m -> Alcotest.fail ("stale profile rejected: " ^ m)
  | Rewritten (out, report) ->
      Alcotest.check behaviour_t "shifted-profile behaviour preserved"
        (classify b.exe ~input:b.input)
        (classify out ~input:b.input);
      Alcotest.(check bool)
        "decay is reported" true
        (report.Bolt_core.Bolt.r_profile_stale_records > 0
        || report.Bolt_core.Bolt.r_profile_branches_unmatched > 0)

let stale_wrong_binary () =
  (* a profile collected from an unrelated binary: unknown functions *)
  let b = Lazy.force base_rel in
  let other = build_base ~emit_relocs:true 11 in
  match try_bolt b.exe other.prof with
  | Rejected m -> Alcotest.fail ("foreign profile rejected: " ^ m)
  | Rewritten (out, report) ->
      Alcotest.check behaviour_t "foreign-profile behaviour preserved"
        (classify b.exe ~input:b.input)
        (classify out ~input:b.input);
      ignore report

(* ---- family 6: drifted revisions through the fingerprint matcher ---- *)

module Fp = Bolt_obj.Fingerprint

(* Mark a profile as collected on [exe]: build-id mismatch against the
   optimization target is what arms the stale matcher. *)
let stamp_header build_id (p : Fdata.t) =
  { p with Fdata.header = Some { Fdata.no_header with Fdata.hd_build_id = build_id } }

(* The same service "one commit earlier": bodies edited, some symbols
   renamed, some helpers that the current revision deleted.  Its profile
   — fingerprints and all — must drive the current binary through
   recovery without a crash, and the rewrite must preserve behaviour. *)
let drifted_case i () =
  let b = Lazy.force base_rel in
  let rng = mk_rng (5000 + i) in
  let old_params =
    {
      (small_params 3) with
      Gen.body_pad = 1 + rng 3;
      rename_every = 4 + rng 5;
      extra_funcs = rng 4;
    }
  in
  let w = Gen.gen old_params in
  let cc = { Bolt_minic.Driver.default_options with emit_relocs = true } in
  let r =
    Bolt_minic.Driver.compile ~options:cc ~externals:w.Gen.externals
      ~extra_objs:w.Gen.extra_objs w.Gen.sources
  in
  let sampling =
    { Machine.event = Machine.Ev_cycles; period = 251; lbr = true; precise = true }
  in
  let o = Machine.run ~sampling r.exe ~input:w.Gen.input in
  let prof =
    match o.Machine.profile with
    | Some raw -> Bolt_profile.Perf2bolt.convert r.exe raw
    | None -> Fdata.empty
  in
  let prof = stamp_header r.exe.Objfile.build_id prof in
  match try_bolt b.exe prof with
  | Rejected m -> Alcotest.fail ("intact binary rejected drifted profile: " ^ m)
  | Rewritten (out, _) ->
      Alcotest.check behaviour_t
        (Printf.sprintf "drift-%d behaviour preserved" i)
        (classify b.exe ~input:b.input)
        (classify out ~input:b.input)

(* Garbage fingerprint tables: random hashes, torn block lists,
   out-of-range offsets, colliding names.  Whatever the matcher makes of
   them, the intact target binary must come out behaving the same. *)
let mangled_fp_case i () =
  let b = Lazy.force base_rel in
  let rng = mk_rng (6000 + i) in
  let mangle_block (bk : Fp.block) =
    match rng 5 with
    | 0 -> { bk with Fp.bk_off = bk.Fp.bk_off - 1 - rng 64 }
    | 1 -> { bk with Fp.bk_size = rng 2 * 1_000_000 }
    | 2 -> { bk with Fp.bk_opcode_hash = rng 1000 }
    | 3 -> { bk with Fp.bk_shape_hash = rng 1000 }
    | _ -> bk
  in
  let mangle_fn (f : Fp.func) =
    match rng 7 with
    | 0 -> { f with Fp.fp_func = Printf.sprintf "zz%d" (rng 4) }
    | 1 -> { f with Fp.fp_blocks = [] }
    | 2 ->
        let keep = rng (1 + List.length f.Fp.fp_blocks) in
        { f with Fp.fp_blocks = List.filteri (fun j _ -> j < keep) f.Fp.fp_blocks }
    | 3 ->
        {
          f with
          Fp.fp_opcode_hash = rng 1000;
          fp_cfg_hash = rng 1000;
        }
    | 4 -> { f with Fp.fp_blocks = f.Fp.fp_blocks @ f.Fp.fp_blocks }
    | 5 -> { f with Fp.fp_calls = [ String.make 300 'q' ] }
    | _ -> { f with Fp.fp_blocks = List.map mangle_block f.Fp.fp_blocks }
  in
  let prof =
    stamp_header "drifted-build-gone"
      { b.prof with Fdata.fingerprints = List.map mangle_fn b.prof.Fdata.fingerprints }
  in
  match try_bolt b.exe prof with
  | Rejected m -> Alcotest.fail ("intact binary rejected mangled fingerprints: " ^ m)
  | Rewritten (out, _) ->
      Alcotest.check behaviour_t
        (Printf.sprintf "mangled-fp-%d behaviour preserved" i)
        (classify b.exe ~input:b.input)
        (classify out ~input:b.input)

(* ---- quarantine mechanism unit tests ---- *)

let quarantine_demote_preserves () =
  (* demote a few hot functions by hand: the output must still behave
     identically (their original bytes are emitted verbatim) *)
  let b = Lazy.force base_rel in
  let opts = Bolt_core.Opts.default in
  let ctx = Bolt_core.Context.create ~opts b.exe in
  Bolt_core.Build.run ctx;
  let victims =
    match Bolt_core.Context.simple_funcs ctx with
    | a :: _ :: c :: _ -> [ a; c ]
    | l -> l
  in
  List.iter
    (fun fb ->
      Bolt_core.Quarantine.demote ctx ~stage:"test" fb "injected failure";
      Alcotest.(check bool)
        (fb.Bolt_core.Bfunc.fb_name ^ " demoted")
        false fb.Bolt_core.Bfunc.simple)
    victims;
  Alcotest.(check int)
    "quarantine count" (List.length victims)
    (Bolt_core.Diag.quarantined_count ctx.Bolt_core.Context.diag)

let quarantine_limit_enforced () =
  let b = Lazy.force base_rel in
  let opts = { Bolt_core.Opts.default with max_quarantine = Some 0 } in
  let ctx = Bolt_core.Context.create ~opts b.exe in
  Bolt_core.Build.run ctx;
  match Bolt_core.Context.simple_funcs ctx with
  | [] -> Alcotest.fail "no simple functions in base workload"
  | fb :: _ -> (
      match Bolt_core.Quarantine.demote ctx ~stage:"test" fb "injected" with
      | () -> Alcotest.fail "limit of 0 did not trip"
      | exception Bolt_core.Diag.Quarantine_limit n ->
          Alcotest.(check int) "limit count" 1 n)

let strict_turns_demotion_fatal () =
  let b = Lazy.force base_rel in
  let opts = { Bolt_core.Opts.default with strict = true } in
  let ctx = Bolt_core.Context.create ~opts b.exe in
  Bolt_core.Build.run ctx;
  match Bolt_core.Context.simple_funcs ctx with
  | [] -> Alcotest.fail "no simple functions in base workload"
  | fb :: _ -> (
      match Bolt_core.Quarantine.demote ctx ~stage:"test" fb "injected" with
      | () -> Alcotest.fail "strict did not raise"
      | exception Bolt_core.Diag.Strict_error _ -> ())

let clean_input_unaffected () =
  (* the hardening must not change what BOLT does to a healthy input:
     no quarantines, no fallback, behaviour preserved *)
  let b = Lazy.force base_rel in
  match try_bolt b.exe b.prof with
  | Rejected m -> Alcotest.fail ("clean input rejected: " ^ m)
  | Rewritten (out, report) ->
      Alcotest.(check int)
        "no quarantines" 0
        (List.length report.Bolt_core.Bolt.r_quarantined);
      Alcotest.(check bool)
        "no identity fallback" false report.Bolt_core.Bolt.r_identity_fallback;
      Alcotest.check behaviour_t "clean behaviour preserved"
        (classify b.exe ~input:b.input)
        (classify out ~input:b.input)

(* FUZZ_SEEDS (same spec as the fuzz suite: "3,7,100" or "1-32") adds a
   corruption round per seed, each with its own PRNG stream, so long runs
   need no rebuild.  Unset: one round. *)
let rounds =
  match Sys.getenv_opt "FUZZ_SEEDS" with
  | None | Some "" -> [ 0 ]
  | Some _ -> Test_fuzz.seeds_from_env ()

let corruption_cases round =
  let mix i = (round * 7919) + i in
  let tag name i =
    if round = 0 then Printf.sprintf "%s-%d" name i
    else Printf.sprintf "%s-r%d-%d" name round i
  in
  List.init 16 (fun i ->
      Alcotest.test_case (tag "flip" i) `Slow (flip_case (mix i)))
  @ (* truncation points depend only on the index, so extra rounds add
       nothing there *)
  (if round = 0 then
     List.init 10 (fun i ->
         Alcotest.test_case (Printf.sprintf "truncate-%d" i) `Slow
           (truncate_case i))
   else [])
  @ List.init 10 (fun i ->
        Alcotest.test_case (tag "text" i) `Slow (text_case (mix i)))
  @ List.init 14 (fun i ->
        Alcotest.test_case (tag "fdata" i) `Slow (fdata_case (mix i)))
  @ List.init 3 (fun i ->
        Alcotest.test_case (tag "drift" i) `Slow (drifted_case (mix i)))
  @ List.init 8 (fun i ->
        Alcotest.test_case (tag "mangled-fp" i) `Slow (mangled_fp_case (mix i)))

let suite =
  List.concat_map corruption_cases rounds
  @ [
      Alcotest.test_case "stale-shifted-offsets" `Slow stale_shifted;
      Alcotest.test_case "stale-wrong-binary" `Slow stale_wrong_binary;
      Alcotest.test_case "quarantine-demote-preserves" `Slow
        quarantine_demote_preserves;
      Alcotest.test_case "quarantine-limit-enforced" `Slow
        quarantine_limit_enforced;
      Alcotest.test_case "strict-demotion-fatal" `Slow strict_turns_demotion_fatal;
      Alcotest.test_case "clean-input-unaffected" `Slow clean_input_unaffected;
    ]
