(* Longitudinal observability tests: the run-history store (append/load
   durability), the bstat comparison engine (manifest/record diff,
   rolling-baseline regression gate), and the fleet health monitor's
   per-host rollout view over simulated fleet_sim ticks.

   The acceptance checks of the subsystem live here: an injected 20%
   pass-time regression and a recovery-rate drop against a 3-run
   baseline must be detected and name the offending metric, two
   identical runs must diff clean, and the monitor must flag every
   stale host fleet_sim configures until the rollout converges. *)

module Json = Bolt_obs.Json
module Obs = Bolt_obs.Obs
module Manifest = Bolt_obs.Manifest
module History = Bolt_obs.History
module Compare = Bolt_obs.Compare
module Merge = Bolt_fleet.Merge
module Monitor = Bolt_fleet.Monitor
module Quality = Bolt_fleet.Quality
module FS = Bolt_fleet.Fleet_sim
module Gen = Bolt_workloads.Gen
module P = Bolt_pipeline.Pipeline

let in_temp name = Filename.concat (Filename.get_temp_dir_name ()) name
let fresh_temp name =
  let path = in_temp name in
  if Sys.file_exists path then Sys.remove path;
  path

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let fake_clock () =
  let t = ref 0.0 in
  ((fun () -> !t), fun d -> t := !t +. d)

(* One synthetic tool run: [wall] seconds inside a "bolt" span, a
   simulated-cycles counter and a recovery-rate section — the paths the
   gate's rules key on. *)
let manifest_of_run ?(wall = 1.0) ?(cycles = 1_000) ?(recovery_rate = 0.9) () =
  let clock, advance = fake_clock () in
  let obs = Obs.create ~clock ~name:"obolt" () in
  Obs.span obs "bolt" (fun () -> advance wall);
  Obs.incr obs ~by:cycles "sim.cycles";
  Manifest.make ~tool:"obolt"
    ~argv:[ "obolt"; "prog.x" ]
    ~sections:
      [ ("recovery", Json.Obj [ ("rate", Json.Float recovery_rate) ]) ]
    obs

let record ?wall ?cycles ?recovery_rate () =
  History.of_manifest ~workload:"prog.x" ~git_rev:"abc1234" ~build_id:"bid-1"
    (manifest_of_run ?wall ?cycles ?recovery_rate ())

(* ---- meta stanza + schema compatibility ---- *)

let test_meta_stanza () =
  let m = manifest_of_run () in
  (match Json.member "meta" m with
  | Some meta ->
      Alcotest.(check (option string))
        "meta tool" (Some "obolt")
        (Json.get_string (Json.member "tool" meta));
      Alcotest.(check (option string))
        "meta schema" (Some Manifest.schema)
        (Json.get_string (Json.member "schema" meta));
      Alcotest.(check (option int))
        "meta version" (Some Manifest.version)
        (Json.get_int (Json.member "version" meta));
      Alcotest.(check (option string))
        "meta clock" (Some "monotonic")
        (Json.get_string (Json.member "clock" meta))
  | None -> Alcotest.fail "manifest carries no meta stanza");
  Alcotest.(check (option int))
    "version_of manifest" (Some Manifest.version) (Manifest.version_of m);
  (* the history record keeps the stanza verbatim *)
  let r = record () in
  Alcotest.(check bool)
    "record keeps meta" true
    (Json.member "meta" r <> None)

let test_compatibility () =
  let m = manifest_of_run () and r = record () in
  (* manifest and history record are deliberately cross-comparable *)
  (match Compare.compatible m r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "manifest vs record incompatible: %s" e);
  let expect_error label a b needle =
    match Compare.compatible a b with
    | Ok () -> Alcotest.failf "%s: expected incompatibility" label
    | Error e ->
        if not (contains e needle) then
          Alcotest.failf "%s: diagnostic %S does not mention %S" label e needle
  in
  expect_error "missing schema" (Json.Obj [ ("x", Json.Int 1) ]) r "no schema";
  expect_error "unknown schema"
    (Json.Obj [ ("schema", Json.String "weird-tool/1") ])
    r "unknown schema";
  expect_error "version mismatch"
    (Json.Obj [ ("schema", Json.String "obolt-history/99") ])
    r "version mismatch"

(* ---- diff ---- *)

let test_identical_runs_diff_clean () =
  let a = record () and b = record () in
  Alcotest.(check int)
    "identical records: no changed rows" 0
    (List.length (Compare.changed (Compare.diff_rows a b)));
  (* a manifest and the history record projected from it flatten to the
     same numeric namespace, so they diff clean too *)
  let m = manifest_of_run () in
  let r =
    History.of_manifest ~workload:"prog.x" ~git_rev:"abc1234"
      ~build_id:"bid-1" m
  in
  Alcotest.(check int)
    "manifest vs own record: no changed rows" 0
    (List.length (Compare.changed (Compare.diff_rows m r)))

let test_diff_reports_changes () =
  let a = record ~wall:1.0 ~cycles:1_000 ()
  and b = record ~wall:1.5 ~cycles:900 () in
  let changed = Compare.changed (Compare.diff_rows a b) in
  let paths = List.map (fun (r : Compare.row) -> r.Compare.r_path) changed in
  Alcotest.(check bool) "wall_s changed" true (List.mem "wall_s" paths);
  Alcotest.(check bool) "spans.bolt changed" true (List.mem "spans.bolt" paths);
  Alcotest.(check bool)
    "cycles changed" true
    (List.mem "metrics.sim.cycles.value" paths);
  let wall = List.find (fun (r : Compare.row) -> r.Compare.r_path = "wall_s") changed in
  (match wall.Compare.r_delta_pct with
  | Some d -> Alcotest.(check (float 1e-6)) "wall delta +50%" 50.0 d
  | None -> Alcotest.fail "wall_s delta missing")

(* ---- the regression gate ---- *)

let rule s =
  match Compare.parse_rule s with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse_rule %S: %s" s e

let test_rule_parsing () =
  let r = rule "spans.bolt=+10" in
  Alcotest.(check bool) "up is bad" true (r.Compare.ru_dir = Compare.Up_is_bad);
  Alcotest.(check (float 0.0)) "pct" 10.0 r.Compare.ru_pct;
  let r = rule "fleet.recovery.rate=-5" in
  Alcotest.(check bool) "down is bad" true (r.Compare.ru_dir = Compare.Down_is_bad);
  (match Compare.parse_rule "nonsense" with
  | Ok _ -> Alcotest.fail "bare path accepted"
  | Error _ -> ());
  (match Compare.parse_rule "x=+banana" with
  | Ok _ -> Alcotest.fail "non-numeric threshold accepted"
  | Error _ -> ());
  Alcotest.(check bool)
    "glob matches suffix" true
    (Compare.glob_match "*recovery.rate" "fleet.recovery.rate");
  Alcotest.(check bool)
    "glob matches infix" true
    (Compare.glob_match "spans.*" "spans.bolt");
  Alcotest.(check bool)
    "glob rejects" false
    (Compare.glob_match "*recovery.rate" "recovery.tier")

(* The acceptance check: a 20% pass-time regression against a 3-run
   baseline fires and names the metric; the same latest run passes the
   conservative default wall rule (30%). *)
let test_check_detects_pass_time_regression () =
  let baseline = [ record (); record (); record () ] in
  let latest = record ~wall:1.2 () in
  let verdicts =
    Compare.check ~rules:[ rule "spans.bolt=+10" ] ~baseline latest
  in
  (match verdicts with
  | [ v ] ->
      Alcotest.(check string) "names the metric" "spans.bolt" v.Compare.v_path;
      Alcotest.(check int) "baseline window" 3 v.Compare.v_runs;
      Alcotest.(check bool)
        "change is ~+20%" true
        (Float.abs (v.Compare.v_change_pct -. 20.0) < 1.0);
      let rendered = Fmt.str "%a" Compare.pp_verdict v in
      Alcotest.(check bool)
        "verdict names the metric" true
        (contains rendered "spans.bolt")
  | l -> Alcotest.failf "expected exactly 1 verdict, got %d" (List.length l));
  (* under the default rules the same 20% movement is within budget *)
  Alcotest.(check int)
    "default wall budget (30%) tolerates 20%" 0
    (List.length
       (Compare.check ~rules:Compare.default_rules ~baseline latest))

let test_check_detects_recovery_drop () =
  let baseline =
    [
      record ~recovery_rate:0.9 ();
      record ~recovery_rate:0.9 ();
      record ~recovery_rate:0.9 ();
    ]
  in
  let latest = record ~recovery_rate:0.5 () in
  let verdicts =
    Compare.check ~rules:Compare.default_rules ~baseline latest
  in
  (match verdicts with
  | [ v ] ->
      Alcotest.(check string) "names the metric" "recovery.rate" v.Compare.v_path;
      Alcotest.(check bool) "fell" true (v.Compare.v_change_pct < -10.0)
  | l -> Alcotest.failf "expected exactly 1 verdict, got %d" (List.length l));
  (* identical latest run passes the full default rule set *)
  Alcotest.(check int)
    "steady state is clean" 0
    (List.length
       (Compare.check ~rules:Compare.default_rules ~baseline
          (record ~recovery_rate:0.9 ())))

let test_check_zero_baseline () =
  let z = Json.Obj [ ("schema", Json.String History.schema); ("m", Json.Int 0) ] in
  let up = Json.Obj [ ("schema", Json.String History.schema); ("m", Json.Int 3) ] in
  (* a cost appearing where there was none fires Up_is_bad... *)
  (match
     Compare.check
       ~rules:[ rule "m=+10" ]
       ~baseline:[ z; z ] up
   with
  | [ v ] -> Alcotest.(check (float 0.0)) "change pinned to +100" 100.0 v.Compare.v_change_pct
  | l -> Alcotest.failf "expected 1 verdict, got %d" (List.length l));
  (* ...but a zero staying zero, or Down_is_bad from zero, never fires *)
  Alcotest.(check int)
    "zero->zero clean" 0
    (List.length (Compare.check ~rules:[ rule "m=+10" ] ~baseline:[ z ] z));
  Alcotest.(check int)
    "down-from-zero clean" 0
    (List.length (Compare.check ~rules:[ rule "m=-10" ] ~baseline:[ z ] up))

(* ---- the history store ---- *)

let test_history_roundtrip () =
  let path = fresh_temp "t_history.jsonl" in
  History.append path (record ~wall:1.0 ());
  History.append path (record ~wall:2.0 ());
  History.append path (record ~wall:3.0 ());
  let records, warnings = History.load path in
  Sys.remove path;
  Alcotest.(check int) "3 records" 3 (List.length records);
  Alcotest.(check int) "no warnings" 0 (List.length warnings);
  List.iteri
    (fun i r ->
      Alcotest.(check string) "tool stamp" "obolt" (History.tool_of r);
      Alcotest.(check string) "workload stamp" "prog.x" (History.workload_of r);
      Alcotest.(check string) "git stamp" "abc1234" (History.git_rev_of r);
      Alcotest.(check string) "build stamp" "bid-1" (History.build_id_of r);
      Alcotest.(check (float 1e-9))
        "wall in file order"
        (float_of_int (i + 1))
        (History.wall_of r))
    records

let test_history_truncated_line () =
  let path = fresh_temp "t_history_torn.jsonl" in
  History.append path (record ());
  History.append path (record ());
  (* a writer that died mid-line: torn JSON, no trailing newline *)
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  output_string oc {|{"schema":"obolt-history/1","tool":"ob|};
  close_out oc;
  let records, warnings = History.load path in
  Sys.remove path;
  Alcotest.(check int) "2 intact records survive" 2 (List.length records);
  (match warnings with
  | [ w ] -> Alcotest.(check int) "torn line reported" 3 w.History.w_line
  | l -> Alcotest.failf "expected 1 warning, got %d" (List.length l))

let test_history_blank_lines () =
  let path = fresh_temp "t_history_blank.jsonl" in
  History.append path (record ());
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  output_string oc "\n   \n";
  close_out oc;
  History.append path (record ());
  let records, warnings = History.load path in
  Sys.remove path;
  Alcotest.(check int) "blank lines ignored" 2 (List.length records);
  Alcotest.(check int) "no warnings" 0 (List.length warnings)

let test_history_missing_file () =
  let records, warnings = History.load (in_temp "t_history_nonexistent.jsonl") in
  Alcotest.(check int) "no records" 0 (List.length records);
  Alcotest.(check int) "no warnings" 0 (List.length warnings)

let test_history_concurrent_appends () =
  (* four domains, each appending its own records: O_APPEND plus
     one-write-per-line means every line lands intact *)
  let path = fresh_temp "t_history_concurrent.jsonl" in
  let per_domain = 8 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              History.append path
                (Json.Obj
                   [
                     ("schema", Json.String History.schema);
                     ("tool", Json.String (Printf.sprintf "d%d" d));
                     ("seq", Json.Int i);
                   ])
            done))
  in
  List.iter Domain.join domains;
  let records, warnings = History.load path in
  Sys.remove path;
  Alcotest.(check int) "every append survived" (4 * per_domain)
    (List.length records);
  Alcotest.(check int) "no torn lines" 0 (List.length warnings);
  (* each writer's own records appear in its program order *)
  List.iter
    (fun d ->
      let tool = Printf.sprintf "d%d" d in
      let seqs =
        List.filter_map
          (fun r ->
            if History.tool_of r = tool then
              Json.get_int (Json.member "seq" r)
            else None)
          records
      in
      Alcotest.(check (list int))
        (tool ^ " in order")
        (List.init per_domain Fun.id)
        seqs)
    [ 0; 1; 2; 3 ]

(* ---- fleet health monitor over a simulated rollout ---- *)

let rollout_cfg =
  {
    FS.default_config with
    FS.fc_hosts = 4;
    fc_stale = 2;
    fc_requests = 600;
    fc_params =
      { FS.default_config.FS.fc_params with Gen.funcs = 120; modules = 4 };
  }

let test_monitor_rollout () =
  let r, ticks = FS.rollout ~ticks:3 rollout_cfg in
  let target_id = P.build_id r.FS.fr_build in
  let fps = P.fingerprints r.FS.fr_build in
  let obs = Obs.create ~name:"test-monitor" () in
  let monitor = Monitor.create () in
  List.iter
    (fun t ->
      let shards = FS.tick_loaded_shards t in
      let recovered, recovery =
        Merge.recover_stale_each ~fingerprints:fps ~build_id:target_id shards
      in
      let merged =
        Merge.merge
          ~opts:
            { Merge.default_options with Merge.expect_build_id = Some target_id }
          recovered
      in
      ignore
        (Monitor.observe ~obs monitor ~expected_build_id:target_id ~recovery
           shards ~merged))
    ticks;
  let tks = Monitor.ticks monitor in
  Alcotest.(check int) "3 ticks recorded" 3 (List.length tks);
  let configured_stale =
    List.filter_map
      (fun (h : FS.host) -> if h.FS.h_stale then Some h.FS.h_name else None)
      r.FS.fr_hosts
  in
  Alcotest.(check int) "fleet_sim configured 2 stale hosts" 2
    (List.length configured_stale);
  (* tick 0: the monitor flags exactly the configured stale hosts *)
  let t0 = List.hd tks in
  Alcotest.(check (slist string compare))
    "tick 0 flags every configured stale host" configured_stale
    (Monitor.stale_hosts t0);
  let all_alerts = Monitor.alerts monitor in
  List.iter
    (fun host ->
      Alcotest.(check bool)
        (host ^ " raised a stale_build alert at tick 0")
        true
        (List.exists
           (fun (a : Monitor.alert) ->
             a.Monitor.al_kind = "stale_build"
             && a.Monitor.al_host = host
             && a.Monitor.al_tick = 0)
           all_alerts))
    configured_stale;
  (* stale recovery ran against the stale shards *)
  (match t0.Monitor.tk_quality.Quality.q_recovery with
  | Some st ->
      Alcotest.(check bool)
        "recovery matched something" true
        (Bolt_profile.Stale_match.recovery_rate st > 0.0)
  | None -> Alcotest.fail "no recovery stats despite stale shards");
  (* one host upgrades per tick: stale count decreases to zero *)
  Alcotest.(check (list int))
    "rollout converges one host per tick" [ 2; 1; 0 ]
    (List.map (fun tk -> List.length (Monitor.stale_hosts tk)) tks);
  (* the per-host view and the health table reflect the rollout *)
  let rendered = Fmt.str "%a" Monitor.pp monitor in
  List.iter
    (fun host ->
      Alcotest.(check bool)
        (host ^ " appears in the health table")
        true (contains rendered host))
    configured_stale;
  Alcotest.(check bool)
    "alerts rendered" true
    (contains rendered "stale_build");
  (* manifest section: the longitudinal series and final host states *)
  let name, j = Monitor.manifest_section monitor in
  Alcotest.(check string) "section name" "fleet_health" name;
  (match Json.get_list (Json.member "series" j) with
  | Some series -> Alcotest.(check int) "series has 3 points" 3 (List.length series)
  | None -> Alcotest.fail "no series in fleet_health");
  (match Json.get_list (Json.member "hosts" j) with
  | Some hosts ->
      Alcotest.(check int) "4 host states" 4 (List.length hosts);
      let stale_flags =
        List.filter_map
          (fun h ->
            match Json.member "stale" h with
            | Some (Json.Bool b) -> Some b
            | _ -> None)
          hosts
      in
      Alcotest.(check int)
        "latest tick: no host stale" 0
        (List.length (List.filter Fun.id stale_flags))
  | None -> Alcotest.fail "no hosts in fleet_health");
  (* alert flow landed in obs as structured events *)
  let events = Bolt_obs.Trace.events obs.Obs.trace in
  Alcotest.(check bool)
    "monitor events emitted" true
    (List.exists
       (fun (e : Bolt_obs.Trace.event) ->
         e.Bolt_obs.Trace.ev_name = "fleet.monitor.stale_build")
       events)

(* A --threshold rule whose path matches no metric of the gated record
   can never fire; [Compare.unmatched_rules] is how bstat warns. *)
let test_unmatched_rules () =
  let record =
    Json.Obj
      [
        ("wall_s", Json.Float 1.0);
        ("spans", Json.Obj [ ("bolt", Json.Float 0.5) ]);
      ]
  in
  let names rules =
    List.map (fun r -> r.Compare.ru_path) (Compare.unmatched_rules ~rules record)
  in
  Alcotest.(check (list string))
    "typo'd path reported" [ "walls_s" ]
    (names [ rule "walls_s=+10"; rule "wall_s=+10" ]);
  Alcotest.(check (list string))
    "globs count as matched" []
    (names [ rule "spans.*=+10" ]);
  Alcotest.(check (list string))
    "unmatched glob reported" [ "fleet.*" ]
    (names [ rule "fleet.*=-5" ])

(* Satellite property: on a 1000-host simulated tape, the monitor's
   threshold alert set is identical for any host-arrival order and any
   -j — the health view is a function of the fleet's state, never of
   aggregation schedule. *)
let test_alerts_order_invariant () =
  let sc =
    {
      FS.default_scale with
      FS.sc_hosts = 1_000;
      sc_funcs = 200;
      sc_lines = 20;
    }
  in
  let shards =
    List.map
      (fun (_, host, text) ->
        let prof, _ = Bolt_profile.Fdata.parse text in
        Merge.shard_of_profile ~name:host prof)
      (FS.scale_tape sc)
  in
  let observe order jobs =
    let merged =
      Merge.merge
        ~opts:
          {
            Merge.default_options with
            Merge.expect_build_id = Some FS.scale_build_id;
            jobs;
          }
        order
    in
    let monitor = Monitor.create () in
    ignore
      (Monitor.observe monitor ~expected_build_id:FS.scale_build_id order
         ~merged);
    let alerts =
      List.sort compare
        (List.map
           (fun (a : Monitor.alert) -> (a.Monitor.al_kind, a.Monitor.al_host))
           (Monitor.alerts monitor))
    in
    (alerts, Bolt_profile.Fdata.to_string merged)
  in
  let perm =
    (* deterministic shuffle: sort by a host-name hash *)
    List.sort
      (fun a b ->
        compare (Hashtbl.hash (Merge.host_of a)) (Hashtbl.hash (Merge.host_of b)))
      shards
  in
  let base_alerts, base_merged = observe shards 1 in
  Alcotest.(check bool) "the tape raises alerts at all" true (base_alerts <> []);
  List.iter
    (fun (label, order, jobs) ->
      let alerts, merged = observe order jobs in
      Alcotest.(check int)
        (label ^ ": same alert count")
        (List.length base_alerts) (List.length alerts);
      Alcotest.(check bool) (label ^ ": same alert set") true
        (alerts = base_alerts);
      Alcotest.(check string) (label ^ ": same merged bytes") base_merged merged)
    [
      ("reversed", List.rev shards, 1);
      ("shuffled j=2", perm, 2);
      ("reversed j=4", List.rev shards, 4);
    ]

let suite =
  [
    Alcotest.test_case "manifest meta stanza" `Quick test_meta_stanza;
    Alcotest.test_case "schema compatibility diagnostics" `Quick test_compatibility;
    Alcotest.test_case "identical runs diff clean" `Quick test_identical_runs_diff_clean;
    Alcotest.test_case "diff reports changed paths" `Quick test_diff_reports_changes;
    Alcotest.test_case "threshold rule parsing and globs" `Quick test_rule_parsing;
    Alcotest.test_case "gate: 20% pass-time regression vs 3-run baseline" `Quick
      test_check_detects_pass_time_regression;
    Alcotest.test_case "gate: recovery-rate drop fires default rules" `Quick
      test_check_detects_recovery_drop;
    Alcotest.test_case "gate: zero-baseline semantics" `Quick test_check_zero_baseline;
    Alcotest.test_case "history: append/load round-trip" `Quick test_history_roundtrip;
    Alcotest.test_case "history: torn final line skipped with warning" `Quick
      test_history_truncated_line;
    Alcotest.test_case "history: blank lines ignored" `Quick test_history_blank_lines;
    Alcotest.test_case "history: missing file loads empty" `Quick
      test_history_missing_file;
    Alcotest.test_case "history: concurrent appenders stay line-atomic" `Quick
      test_history_concurrent_appends;
    Alcotest.test_case "monitor: rollout flags stale hosts until convergence"
      `Slow test_monitor_rollout;
    Alcotest.test_case "gate: unmatched threshold rules reported" `Quick
      test_unmatched_rules;
    Alcotest.test_case "monitor: 1000-host alerts invariant to order and -j"
      `Slow test_alerts_order_invariant;
  ]
