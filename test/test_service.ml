(* Continuous-optimization service tests: the bounded-memory sketch
   (top-K eviction, newest-shard-wins, the global byte budget), the
   sharded-by-function-key parallel merge's byte parity with the
   streaming merge, the trigger policy on scripted tapes, tape/spool
   parsing, injected-clock manifest reproducibility, and the e2e
   acceptance check — a 1000-host tape with drifting revisions must
   fire a re-optimization whose binary beats the pre-trigger build,
   byte-identically for any arrival order and any -j. *)

module Fdata = Bolt_profile.Fdata
module Merge = Bolt_fleet.Merge
module Monitor = Bolt_fleet.Monitor
module FS = Bolt_fleet.Fleet_sim
module S = Bolt_service.Service
module Sk = Bolt_service.Sketch
module P = Bolt_pipeline.Pipeline
module Json = Bolt_obs.Json
module Obs = Bolt_obs.Obs
module Manifest = Bolt_obs.Manifest

let in_temp name = Filename.concat (Filename.get_temp_dir_name ()) name

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Sketch: the bounded per-host state                                 *)

(* A one-host shard with [n] functions of strictly increasing weight:
   f0 is the coldest, f(n-1) the hottest. *)
let ramp_shard ?(host = "web01") ?(build = "rev1") ?(ts = 1_000) n =
  let b = Buffer.create 256 in
  Buffer.add_string b "mode lbr\n";
  Buffer.add_string b (Printf.sprintf "H host %s\n" host);
  Buffer.add_string b (Printf.sprintf "H build-id %s\n" build);
  Buffer.add_string b (Printf.sprintf "H timestamp %d\n" ts);
  Buffer.add_string b (Printf.sprintf "H events %d\n" (n * 100));
  for i = 0 to n - 1 do
    Buffer.add_string b
      (Printf.sprintf "B f%02d 0 f%02d 8 %d 0\n" i i ((i + 1) * 10))
  done;
  Buffer.contents b

let test_sketch_topk () =
  let sk = Sk.create ~topk:4 ~budget:(1 lsl 20) () in
  let ig = Sk.ingest sk ~host:"web01" (ramp_shard 10) in
  Alcotest.(check int) "records ingested" 10 ig.Sk.ig_records;
  Alcotest.(check int) "top-K entries survive" 4 (Sk.funcs sk);
  Alcotest.(check int) "the rest evicted" 6 (Sk.evictions sk);
  (* evicted mass = counts of f0..f5 = 10+20+...+60 *)
  Alcotest.(check int64) "evicted event mass" 210L (Sk.evicted_events sk);
  match Sk.to_shards sk with
  | [ sh ] ->
      let kept =
        List.map
          (fun (b : Fdata.branch) -> b.Fdata.br_from_func)
          sh.Merge.sh_prof.Fdata.branches
      in
      Alcotest.(check (list string)) "the hottest K kept"
        [ "f06"; "f07"; "f08"; "f09" ] (List.sort compare kept)
  | shards -> Alcotest.failf "expected 1 shard, got %d" (List.length shards)

let test_sketch_latest_wins () =
  let sk = Sk.create ~topk:64 ~budget:(1 lsl 20) () in
  ignore (Sk.ingest sk ~host:"web01" (ramp_shard ~build:"rev1" ~ts:100 3));
  ignore (Sk.ingest sk ~host:"web01" "mode lbr\nH host web01\nH build-id rev2\nH timestamp 200\nH events 7\nB g 0 g 4 7 0\n");
  Alcotest.(check int) "one host" 1 (Sk.hosts sk);
  Alcotest.(check int) "old shard replaced, not merged" 1 (Sk.funcs sk);
  (* supersession is not memory pressure: the eviction counter only
     tracks the budget/top-K bound *)
  Alcotest.(check int) "supersession is not an eviction" 0 (Sk.evictions sk);
  match Sk.to_shards sk with
  | [ sh ] ->
      let h = Option.get sh.Merge.sh_prof.Fdata.header in
      Alcotest.(check string) "newest build-id" "rev2" h.Fdata.hd_build_id;
      Alcotest.(check int) "newest timestamp" 200 h.Fdata.hd_timestamp
  | _ -> Alcotest.fail "expected exactly one shard"

let test_sketch_budget () =
  let budget = 4_096 in
  let sk = Sk.create ~topk:512 ~budget () in
  for i = 0 to 9 do
    ignore
      (Sk.ingest sk
         ~host:(Printf.sprintf "web%02d" i)
         (ramp_shard ~host:(Printf.sprintf "web%02d" i) 20));
    Alcotest.(check bool)
      (Printf.sprintf "occupancy <= budget after ingest %d" i)
      true
      (Sk.occupancy sk <= budget)
  done;
  Alcotest.(check bool) "peak <= budget" true (Sk.peak sk <= budget);
  Alcotest.(check bool) "the bound forced evictions" true (Sk.evictions sk > 0);
  Alcotest.(check int) "host states survive eviction" 10 (Sk.hosts sk)

(* ------------------------------------------------------------------ *)
(* Sharded-by-function-key merge == streaming merge, byte for byte    *)

let small_scale =
  {
    FS.default_scale with
    FS.sc_hosts = 16;
    sc_funcs = 100;
    sc_lines = 200;
    sc_wave = 4;
  }

let test_sharded_merge_parity () =
  let texts =
    List.map (fun (_, h, x) -> (h, x)) (FS.scale_tape small_scale)
  in
  let baseline = Fdata.to_string (Merge.merge_stream texts) in
  List.iter
    (fun jobs ->
      let opts = { Merge.default_options with Merge.jobs } in
      Alcotest.(check string)
        (Printf.sprintf "sharded j=%d == stream" jobs)
        baseline
        (Fdata.to_string (Merge.merge_stream_sharded ~opts texts)))
    [ 2; 3; 4 ];
  (* arrival order of the shard list must not matter either *)
  let opts = { Merge.default_options with Merge.jobs = 4 } in
  Alcotest.(check string) "sharded over reversed input == stream" baseline
    (Fdata.to_string (Merge.merge_stream_sharded ~opts (List.rev texts)));
  (* parity holds under the full option set: weights, decay, pinned id *)
  let opts =
    {
      Merge.weights = [ ("mh00003.dc1", 3.0) ];
      decay = Some 1e-6;
      expect_build_id = Some FS.scale_build_id;
      jobs = 3;
    }
  in
  Alcotest.(check string) "sharded == stream under weights+decay+id"
    (Fdata.to_string (Merge.merge_stream ~opts:{ opts with Merge.jobs = 1 } texts))
    (Fdata.to_string (Merge.merge_stream_sharded ~opts texts))

(* ------------------------------------------------------------------ *)
(* Trigger policy on a scripted tape                                  *)

let tape_of_scale sc =
  List.map
    (fun (t, h, x) -> { S.ev_time = t; ev_host = h; ev_text = x })
    (FS.scale_tape sc)

let svc_config trigger =
  { S.default_config with S.c_trigger = trigger; c_topk = 512 }

let test_trigger_quality () =
  let sc = { small_scale with FS.sc_hosts = 12; sc_wave = 4 } in
  let trigger =
    {
      S.default_trigger with
      S.tr_min_hosts = 8;
      tr_min_coverage_pct = 1.0;
      tr_max_staleness_pct = 60.0;
    }
  in
  let svc =
    S.create ~config:(svc_config trigger)
      ~expect_build_id:FS.scale_build_id ~start_time:FS.base_timestamp ()
  in
  let reports = S.run svc (tape_of_scale sc) in
  Alcotest.(check int) "one step per wave" 3 (List.length reports);
  (* 4 hosts after wave 0 < min_hosts; 8 after wave 1 fire the trigger *)
  Alcotest.(check (option int)) "trigger latency" (Some 2)
    (S.first_trigger_step svc);
  match S.reopts svc with
  | r :: _ -> Alcotest.(check string) "reason" "quality" r.S.ro_reason
  | [] -> Alcotest.fail "no trigger fired"

let test_trigger_min_hosts_gate () =
  let trigger =
    { S.default_trigger with S.tr_min_hosts = 100; tr_min_coverage_pct = 1.0 }
  in
  let svc =
    S.create ~config:(svc_config trigger)
      ~expect_build_id:FS.scale_build_id ~start_time:FS.base_timestamp ()
  in
  ignore (S.run svc (tape_of_scale small_scale));
  Alcotest.(check (option int)) "too few hosts: no trigger" None
    (S.first_trigger_step svc);
  Alcotest.(check int) "no reopt recorded" 0 (List.length (S.reopts svc))

let test_trigger_max_interval () =
  (* quality can never pass (impossible coverage bar), but the
     max-staleness timer must still fire once a tick interval of
     logical time has passed with traffic arriving *)
  let trigger =
    {
      S.default_trigger with
      S.tr_min_hosts = 1;
      tr_min_coverage_pct = 1_000.0;
      tr_max_interval = FS.tick_interval;
    }
  in
  let svc =
    S.create ~config:(svc_config trigger)
      ~expect_build_id:FS.scale_build_id ~start_time:FS.base_timestamp ()
  in
  ignore (S.run svc (tape_of_scale small_scale));
  match S.reopts svc with
  | r :: _ -> Alcotest.(check string) "reason" "max_interval" r.S.ro_reason
  | [] -> Alcotest.fail "max-interval timer never fired"

(* ------------------------------------------------------------------ *)
(* Tape and spool parsing                                             *)

let test_load_tape () =
  let shard = in_temp "svc_shard.fdata" in
  write_file shard (ramp_shard 3);
  let tape = in_temp "svc_tape.txt" in
  write_file tape
    (String.concat "\n"
       [
         "# arrival script";
         Printf.sprintf "1000  web01   %s" shard;
         Printf.sprintf "nonsense web02 %s" shard;
         "1010 web03 /nonexistent/shard.fdata";
         "not-enough-fields";
         "";
       ]);
  let events, skips = S.load_tape tape in
  Alcotest.(check int) "one good event" 1 (List.length events);
  let ev = List.hd events in
  Alcotest.(check int) "time" 1_000 ev.S.ev_time;
  Alcotest.(check string) "host" "web01" ev.S.ev_host;
  Alcotest.(check int) "bad time + missing shard + short line skipped" 3
    (List.length skips)

let test_spool_scan () =
  let dir = in_temp "svc_spool" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  write_file (Filename.concat dir "a.fdata")
    (ramp_shard ~host:"web07" ~ts:4_242 3);
  (* no header: host falls back to the file name, time to default *)
  write_file (Filename.concat dir "b.fdata") "mode lbr\nB f 0 f 4 1 0\n";
  let entries, skips = S.spool_scan ~default_time:99 dir in
  Alcotest.(check int) "no skips" 0 (List.length skips);
  match List.map snd entries with
  | [ a; b ] ->
      Alcotest.(check string) "host from header" "web07" a.S.ev_host;
      Alcotest.(check int) "time from header" 4_242 a.S.ev_time;
      Alcotest.(check string) "host from file name" "b.fdata" b.S.ev_host;
      Alcotest.(check int) "default time" 99 b.S.ev_time
  | l -> Alcotest.failf "expected 2 spool entries, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Injected clock: two identical runs render identical manifests      *)

let test_manifest_reproducible () =
  let run () =
    let obs = Obs.create ~clock:(fun () -> 123.0) ~name:"boltd" () in
    let svc =
      S.create ~obs
        ~config:
          (svc_config
             { S.default_trigger with S.tr_min_hosts = 4; tr_min_coverage_pct = 1.0 })
        ~expect_build_id:FS.scale_build_id ~start_time:FS.base_timestamp ()
    in
    ignore (S.run svc (tape_of_scale small_scale));
    let m =
      Manifest.make ~tool:"boltd" ~argv:[ "boltd"; "--tape"; "t" ]
        ~sections:
          [ S.manifest_section svc; Monitor.manifest_section (S.monitor svc) ]
        obs
    in
    Json.to_string m
  in
  Alcotest.(check string) "same tape + pinned clock => same manifest bytes"
    (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* E2E: a 1000-host tape with drifting revisions through the daemon   *)

(* Replicate a small simulated fleet (fresh + stale revisions, skewed
   per-host traffic) out to 1000 hosts arriving in 8 waves, and drive
   it through the full service loop with a real target binary. *)
let thousand_host_tape (r : FS.result) =
  let base = Array.of_list r.FS.fr_shards in
  List.init 1_000 (fun i ->
      let _, prof = base.(i mod Array.length base) in
      let name = Printf.sprintf "h%04d.dc1" i in
      let header =
        Option.map
          (fun h -> { h with Fdata.hd_host = name })
          prof.Fdata.header
      in
      {
        S.ev_time = FS.base_timestamp + (i / 125 * FS.tick_interval);
        ev_host = name;
        ev_text = Fdata.to_string { prof with Fdata.header };
      })

let e2e_fleet_cfg =
  {
    FS.default_config with
    FS.fc_hosts = 4;
    fc_stale = 1;
    fc_requests = 600;
    fc_params =
      {
        FS.default_config.FS.fc_params with
        Bolt_workloads.Gen.funcs = 120;
        modules = 4;
      };
  }

let e2e_service_cfg ~jobs =
  {
    S.default_config with
    S.c_jobs = jobs;
    c_trigger =
      {
        S.default_trigger with
        S.tr_min_hosts = 600;
        tr_min_coverage_pct = 5.0;
        tr_max_staleness_pct = 60.0;
        tr_min_recovery_rate = 0.0;
      };
  }

let test_e2e_thousand_hosts () =
  let r = FS.run e2e_fleet_cfg in
  let tape = thousand_host_tape r in
  let drive ~jobs tape =
    let svc =
      S.create ~config:(e2e_service_cfg ~jobs) ~target:r.FS.fr_build
        ~start_time:FS.base_timestamp ()
    in
    ignore (S.run svc tape);
    svc
  in
  let svc = drive ~jobs:1 tape in
  (* the drifting fleet fired at least one re-optimization *)
  let reopts = S.reopts svc in
  Alcotest.(check bool) "a re-optimization fired" true (reopts <> []);
  List.iter
    (fun ro ->
      Alcotest.(check bool) "rewrite changed the build-id" true
        (ro.S.ro_build_id_before <> ro.S.ro_build_id_after))
    reopts;
  (* memory bound held across a 1000-host ingest *)
  let sk = S.sketch svc in
  Alcotest.(check bool) "sketch peak within budget" true
    (Sk.peak sk <= Sk.budget sk);
  (* the re-optimized binary beats the pre-trigger build on fleet
     traffic (taken branches, the layout objective) *)
  let taken b =
    (P.run b ~input:r.FS.fr_fleet_input).Bolt_sim.Machine.counters
      .Bolt_sim.Machine.taken_branches
  in
  let before = taken r.FS.fr_build in
  let after = taken (Option.get (S.target svc)) in
  Fmt.epr "service e2e: taken branches %d -> %d@." before after;
  Alcotest.(check bool) "optimized build takes fewer branches" true
    (after < before);
  (* determinism: a reversed tape driven at -j4 lands on byte-identical
     state — final binary, trigger profile, service + health sections.
     (Trace timings are excluded by construction: they are measured.) *)
  let svc' = drive ~jobs:4 (List.rev tape) in
  let exe_bytes s =
    Bolt_obj.Objfile.to_string (Option.get (S.target s)).P.exe
  in
  Alcotest.(check string) "final binary bytes identical" (exe_bytes svc)
    (exe_bytes svc');
  let reopt_profiles s =
    String.concat "---"
      (List.map (fun ro -> Fdata.to_string ro.S.ro_profile) (S.reopts s))
  in
  Alcotest.(check string) "trigger profiles identical" (reopt_profiles svc)
    (reopt_profiles svc');
  let state s =
    Json.to_string
      (Json.Obj [ S.manifest_section s; Monitor.manifest_section (S.monitor s) ])
  in
  Alcotest.(check string) "service + health state identical" (state svc)
    (state svc')

let suite =
  [
    Alcotest.test_case "sketch: top-K eviction order and accounting" `Quick
      test_sketch_topk;
    Alcotest.test_case "sketch: newest shard supersedes, no eviction" `Quick
      test_sketch_latest_wins;
    Alcotest.test_case "sketch: global byte budget holds under pressure" `Quick
      test_sketch_budget;
    Alcotest.test_case "sharded merge == streaming merge (bytes)" `Quick
      test_sharded_merge_parity;
    Alcotest.test_case "trigger: quality gate after min-hosts" `Quick
      test_trigger_quality;
    Alcotest.test_case "trigger: min-hosts gate blocks" `Quick
      test_trigger_min_hosts_gate;
    Alcotest.test_case "trigger: max-interval timer" `Quick
      test_trigger_max_interval;
    Alcotest.test_case "tape: parse + skip diagnostics" `Quick test_load_tape;
    Alcotest.test_case "spool: header-driven host/time" `Quick test_spool_scan;
    Alcotest.test_case "manifest: injected clock reproducibility" `Quick
      test_manifest_reproducible;
    Alcotest.test_case "e2e: 1000-host tape triggers a winning re-opt" `Slow
      test_e2e_thousand_hosts;
  ]
