let () =
  Alcotest.run "obolt"
    [
      ("isa", Test_isa.suite);
      ("obj", Test_obj.suite);
      ("asm-link", Test_asm_link.suite);
      ("sim", Test_sim.suite);
      ("profile-hfsort", Test_profile_hfsort.suite);
      ("minic-units", Test_minic_units.suite);
      ("minic-e2e", Test_minic.suite);
      ("obs", Test_obs.suite);
      ("bolt-core", Test_bolt_core.suite);
      ("dataflow-emit", Test_dataflow_emit.suite);
      ("cli-tools", Test_cli_tools.suite);
      ("pipeline", Test_pipeline.suite);
      ("fdata", Test_fdata.suite);
      ("fault-injection", Test_fault_injection.suite);
      ("parallel", Test_parallel.suite);
      ("layout", Test_layout.suite);
      ("fuzz", Test_fuzz.suite);
      ("fleet", Test_fleet.suite);
      ("stale", Test_stale.suite);
      ("monitor", Test_monitor.suite);
      ("service", Test_service.suite);
      ("iocore", Test_iocore.suite);
    ]
