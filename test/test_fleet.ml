(* Fleet aggregation tests: the merge algebra (QCheck properties over
   random shards), a golden 3-host merge, order/-j byte determinism, the
   quality report, stale-shard tolerance through the optimizer, and the
   end-to-end acceptance check — a profile merged across a simulated
   fleet must serve fleet traffic at least as well as any single host's
   shard. *)

module Fdata = Bolt_profile.Fdata
module Merge = Bolt_fleet.Merge
module Quality = Bolt_fleet.Quality
module FS = Bolt_fleet.Fleet_sim
module Gen = Bolt_workloads.Gen
module P = Bolt_pipeline.Pipeline

(* ------------------------------------------------------------------ *)
(* Builders                                                           *)

let mk_branch ff fo tf to_ c m =
  {
    Fdata.br_from_func = ff;
    br_from_off = fo;
    br_to_func = tf;
    br_to_off = to_;
    br_count = c;
    br_mispreds = m;
  }

let mk_prof ?(host = "") ?(build = "") ?(ts = 0) ?(events = 0L)
    ?(branches = []) ?(ranges = []) ?(samples = []) () =
  {
    Fdata.lbr = true;
    header =
      Some
        {
          Fdata.hd_host = host;
          hd_build_id = build;
          hd_timestamp = ts;
          hd_events = events;
          hd_weight = 1.0;
        };
    branches;
    ranges;
    samples;
    total_samples = 0L;
    fingerprints = [];
  }

let shards_of_profiles ps =
  List.mapi
    (fun i p -> Merge.shard_of_profile ~name:(Printf.sprintf "s%d" i) p)
    ps

(* ------------------------------------------------------------------ *)
(* Random shard generators                                            *)

let gen_func = QCheck.Gen.oneofl [ "main"; "work"; "dispatch"; "aux" ]
let gen_off = QCheck.Gen.map (fun n -> n * 4) (QCheck.Gen.int_range 0 16)
let gen_count = QCheck.Gen.map Int64.of_int (QCheck.Gen.int_range 0 1_000)

let gen_branch =
  let open QCheck.Gen in
  gen_func >>= fun ff ->
  gen_off >>= fun fo ->
  gen_func >>= fun tf ->
  gen_off >>= fun to_ ->
  gen_count >>= fun c ->
  map (fun m -> mk_branch ff fo tf to_ c m) gen_count

let gen_range =
  let open QCheck.Gen in
  gen_func >>= fun f ->
  gen_off >>= fun s ->
  int_range 0 16 >>= fun len ->
  map
    (fun c -> { Fdata.rg_func = f; rg_start = s; rg_end = s + (4 * len); rg_count = c })
    gen_count

let gen_sample =
  let open QCheck.Gen in
  gen_func >>= fun f ->
  gen_off >>= fun o ->
  map (fun c -> { Fdata.sm_func = f; sm_off = o; sm_count = c }) gen_count

(* Weight stays 1.0 here: weighting has its own linearity property. *)
let gen_profile =
  let open QCheck.Gen in
  list_size (int_range 0 10) gen_branch >>= fun branches ->
  list_size (int_range 0 6) gen_range >>= fun ranges ->
  list_size (int_range 0 6) gen_sample >>= fun samples ->
  oneofl [ "web"; "db"; "cache"; "" ] >>= fun host ->
  oneofl [ "revX"; "revY"; "" ] >>= fun build ->
  int_range 0 100 >>= fun ts ->
  map
    (fun ev ->
      mk_prof ~host ~build ~ts ~events:(Int64.of_int ev) ~branches ~ranges
        ~samples ())
    (int_range 0 500)

let print_profiles ps = String.concat "---\n" (List.map Fdata.to_string ps)

let arb_shards =
  QCheck.make ~print:print_profiles
    (QCheck.Gen.list_size (QCheck.Gen.int_range 1 5) gen_profile)

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                  *)

(* Byte-identical output for any shard ordering. *)
let prop_order_independent =
  QCheck.Test.make ~name:"merge is order-independent (bytes)" ~count:200
    arb_shards (fun ps ->
      let s = shards_of_profiles ps in
      let fwd = Fdata.to_string (Merge.merge s) in
      let rev = Fdata.to_string (Merge.merge (List.rev s)) in
      let rot = match s with [] -> [] | x :: tl -> tl @ [ x ] in
      fwd = rev && fwd = Fdata.to_string (Merge.merge rot))

(* Incremental (left-fold) merging equals the batch merge on records and
   on the provenance totals.  The merged build-id is excluded: it is the
   *modal* shard build-id, and a mode over [a; b] then [c] is not the
   mode over [a; b; c] — pin --expect-build-id when merging
   incrementally and the whole header is associative too. *)
let strip p = Fdata.to_string { p with Fdata.header = None }

let prop_incremental_eq_batch =
  QCheck.Test.make ~name:"incremental merge == batch merge (records)"
    ~count:100 arb_shards (fun ps ->
      match shards_of_profiles ps with
      | [] | [ _ ] -> true
      | first :: rest ->
          let batch = Merge.merge (first :: rest) in
          let inc =
            List.fold_left
              (fun acc sh ->
                Merge.merge [ Merge.shard_of_profile ~name:"acc" acc; sh ])
              first.Merge.sh_prof rest
          in
          let hb = Option.get batch.Fdata.header
          and hi = Option.get inc.Fdata.header in
          strip batch = strip inc
          && { hb with Fdata.hd_build_id = "" }
             = { hi with Fdata.hd_build_id = "" })

(* An integer --weight multiplies every count exactly (far from
   saturation, integer scaling has no rounding). *)
let arb_prof_k =
  QCheck.make
    ~print:(fun (p, k) -> Printf.sprintf "k=%d\n%s" k (Fdata.to_string p))
    (QCheck.Gen.pair gen_profile (QCheck.Gen.int_range 1 8))

let prop_weight_linear =
  QCheck.Test.make ~name:"integer host weight multiplies every count"
    ~count:100 arb_prof_k (fun (p, k) ->
      let sh = Merge.shard_of_profile ~name:"s0" p in
      let opts =
        {
          Merge.default_options with
          Merge.weights = [ (Merge.host_of sh, float_of_int k) ];
        }
      in
      let w = Merge.merge ~opts [ sh ] in
      let base = Merge.merge [ sh ] in
      let k64 = Int64.of_int k in
      List.length w.Fdata.branches = List.length base.Fdata.branches
      && List.length w.Fdata.ranges = List.length base.Fdata.ranges
      && List.length w.Fdata.samples = List.length base.Fdata.samples
      && List.for_all2
           (fun (a : Fdata.branch) (b : Fdata.branch) ->
             a.br_count = Int64.mul k64 b.br_count
             && a.br_mispreds = Int64.mul k64 b.br_mispreds)
           w.Fdata.branches base.Fdata.branches
      && List.for_all2
           (fun (a : Fdata.range) (b : Fdata.range) ->
             a.rg_count = Int64.mul k64 b.rg_count)
           w.Fdata.ranges base.Fdata.ranges
      && List.for_all2
           (fun (a : Fdata.sample) (b : Fdata.sample) ->
             a.sm_count = Int64.mul k64 b.sm_count)
           w.Fdata.samples base.Fdata.samples)

(* Raising the decay rate can only shrink an old shard's contribution. *)
let old_key_count merged =
  match
    List.find_opt
      (fun (b : Fdata.branch) -> b.br_from_func = "work" && b.br_from_off = 0)
      merged.Fdata.branches
  with
  | Some b -> b.Fdata.br_count
  | None -> 0L

let decay_shards =
  shards_of_profiles
    [
      mk_prof ~host:"old" ~ts:100
        ~branches:[ mk_branch "work" 0 "work" 8 1_000L 10L ]
        ();
      mk_prof ~host:"new" ~ts:200
        ~branches:[ mk_branch "main" 0 "main" 4 500L 5L ]
        ();
    ]

let prop_decay_monotone =
  QCheck.Test.make ~name:"older shards decay monotonically in lambda"
    ~count:100
    (QCheck.make
       ~print:(fun (a, b) -> Printf.sprintf "l1=%h l2=%h" a b)
       (QCheck.Gen.pair
          (QCheck.Gen.float_bound_inclusive 0.05)
          (QCheck.Gen.float_bound_inclusive 0.05)))
    (fun (a, b) ->
      let l1 = min a b and l2 = max a b in
      let at l =
        old_key_count
          (Merge.merge
             ~opts:{ Merge.default_options with Merge.decay = Some l }
             decay_shards)
      in
      Int64.compare (at l2) (at l1) <= 0)

(* ------------------------------------------------------------------ *)
(* Golden 3-host merge                                                *)

let golden_shards () =
  shards_of_profiles
    [
      mk_prof ~host:"web00" ~build:"revX" ~ts:10 ~events:100L
        ~branches:
          [
            mk_branch "main" 4 "main" 20 10L 1L;
            mk_branch "helper" 0 "helper" 8 5L 0L;
          ]
        ();
      mk_prof ~host:"web01" ~build:"revX" ~ts:20 ~events:50L
        ~branches:
          [
            mk_branch "main" 4 "main" 20 7L 2L;
            mk_branch "main" 30 "helper" 0 3L 0L;
          ]
        ();
      mk_prof ~host:"web02" ~build:"revY" ~ts:5 ~events:30L
        ~branches:[ mk_branch "main" 4 "main" 20 1L 0L ]
        ~ranges:[ { Fdata.rg_func = "main"; rg_start = 0; rg_end = 12; rg_count = 9L } ]
        ();
    ]

let test_golden_merge () =
  let merged = Merge.merge (golden_shards ()) in
  let expected =
    String.concat "\n"
      [
        "mode lbr";
        "H host fleet";
        "H build-id revX";
        "H timestamp 20";
        "H events 180";
        "B helper 0 helper 8 5 0";
        "B main 4 main 20 18 3";
        "B main 30 helper 0 3 0";
        "F main 0 12 9";
        "";
      ]
  in
  Alcotest.(check string) "golden merge bytes" expected (Fdata.to_string merged)

(* --expect-build-id overrides the modal stamp and drives staleness. *)
let test_expect_build_id () =
  let opts =
    { Merge.default_options with Merge.expect_build_id = Some "revY" }
  in
  let merged = Merge.merge ~opts (golden_shards ()) in
  Alcotest.(check string)
    "expected id wins over modal" "revY"
    (Option.get merged.Fdata.header).Fdata.hd_build_id

(* ------------------------------------------------------------------ *)
(* Parallel determinism                                               *)

let many_shards () =
  List.init 12 (fun i ->
      mk_prof
        ~host:(Printf.sprintf "h%02d" i)
        ~build:(if i mod 3 = 0 then "revY" else "revX")
        ~ts:(10 * i)
        ~events:(Int64.of_int (100 + i))
        ~branches:
          [
            mk_branch "main" 4 "main" 20 (Int64.of_int (i + 1)) 0L;
            mk_branch "work" (4 * i) "work" 0 (Int64.of_int (2 * i)) 1L;
          ]
        ~samples:[ { Fdata.sm_func = "aux"; sm_off = i; sm_count = 3L } ]
        ())
  |> shards_of_profiles

let test_jobs_identical () =
  let s = many_shards () in
  let at jobs order =
    Fdata.to_string
      (Merge.merge ~opts:{ Merge.default_options with Merge.jobs } order)
  in
  let baseline = at 1 s in
  Alcotest.(check string) "j=4 == j=1" baseline (at 4 s);
  Alcotest.(check string) "j=4 reversed == j=1" baseline (at 4 (List.rev s));
  Alcotest.(check string) "j=3 rotated == j=1" baseline
    (at 3 (match s with x :: tl -> tl @ [ x ] | [] -> []))

(* ------------------------------------------------------------------ *)
(* Quality report                                                     *)

let test_quality_report () =
  let shards = golden_shards () in
  let merged = Merge.merge shards in
  let q = Quality.assess ~expect_build_id:"revX" shards ~merged in
  Alcotest.(check int) "shards" 3 q.Quality.q_shards;
  Alcotest.(check (list string)) "hosts"
    [ "web00"; "web01"; "web02" ] q.Quality.q_hosts;
  Alcotest.(check int64) "events" 180L q.Quality.q_events;
  Alcotest.(check int) "stale shards" 1 q.Quality.q_stale_shards;
  Alcotest.(check int) "unstamped shards" 0 q.Quality.q_unstamped_shards;
  (* the revY shard carries 30 of 180 events *)
  Alcotest.(check (float 1e-6)) "staleness pct" (100.0 *. 30.0 /. 180.0)
    q.Quality.q_staleness_pct;
  (* merged branch keys: 3, of which only main+4->main+20 is multi-shard *)
  Alcotest.(check (float 1e-6)) "agreement pct" (100.0 /. 3.0)
    q.Quality.q_agreement_pct;
  Alcotest.(check (float 1e-6)) "divergence pct" (200.0 /. 3.0)
    q.Quality.q_divergence_pct;
  Alcotest.(check (list (pair string int))) "build tally"
    [ ("revX", 2); ("revY", 1) ] q.Quality.q_build_ids;
  match Quality.manifest_section q with
  | "fleet", Bolt_obs.Json.Obj fields ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " in manifest") true (List.mem_assoc k fields))
        [ "shards"; "coverage_pct"; "agreement_pct"; "staleness_pct"; "build_ids" ]
  | _ -> Alcotest.fail "manifest section shape"

let test_unstamped_not_stale () =
  let shards =
    shards_of_profiles
      [
        mk_prof ~host:"a" ~build:"revX" ~events:10L
          ~branches:[ mk_branch "main" 0 "main" 4 1L 0L ]
          ();
        mk_prof ~host:"b" ~events:10L
          ~branches:[ mk_branch "main" 0 "main" 4 1L 0L ]
          ();
      ]
  in
  let merged = Merge.merge shards in
  let q = Quality.assess ~expect_build_id:"revX" shards ~merged in
  Alcotest.(check int) "unstamped" 1 q.Quality.q_unstamped_shards;
  Alcotest.(check int) "not counted stale" 0 q.Quality.q_stale_shards

(* ------------------------------------------------------------------ *)
(* Simulated fleet: stale shards flow through the optimizer            *)

let small_fleet ~hosts ~requests =
  {
    FS.default_config with
    FS.fc_hosts = hosts;
    fc_stale = 1;
    fc_requests = requests;
    fc_params =
      { FS.default_config.FS.fc_params with Gen.funcs = 120; modules = 4 };
  }

let test_stale_shard_tolerated () =
  let r = FS.run (small_fleet ~hosts:3 ~requests:600) in
  let shards = FS.loaded_shards r in
  let expect = r.FS.fr_build.P.exe.Bolt_obj.Objfile.build_id in
  let merged =
    Merge.merge
      ~opts:{ Merge.default_options with Merge.expect_build_id = Some expect }
      shards
  in
  let q = Quality.assess ~expect_build_id:expect shards ~merged in
  Alcotest.(check int) "one stale shard detected" 1 q.Quality.q_stale_shards;
  (* the merged profile — stale records included — must optimize the
     current build without quarantining anything *)
  let b', report = P.bolt r.FS.fr_build merged in
  Alcotest.(check (list (pair string string)))
    "no quarantined functions" [] report.Bolt_core.Bolt.r_quarantined;
  Alcotest.(check bool) "stale records detected" true
    (report.Bolt_core.Bolt.r_profile_staleness > 0.0);
  (* behaviour is preserved on fleet traffic *)
  let base = P.run r.FS.fr_build ~input:r.FS.fr_fleet_input in
  let opt = P.run b' ~input:r.FS.fr_fleet_input in
  Alcotest.(check bool) "same behaviour" true (P.same_behaviour base opt)

(* The subsystem's end-to-end acceptance check: on fleet-wide traffic,
   the profile merged as a deployment pipeline would merge it — age
   decay downweighting the day-old stale shard, target build-id pinned —
   must direct the optimizer at least as well as the best single host's
   shard (taken branches, the layout objective). *)
let test_merged_beats_any_single () =
  let cfg =
    {
      (small_fleet ~hosts:8 ~requests:800) with
      FS.fc_sampling =
        { P.default_sampling with Bolt_sim.Machine.period = 97 };
    }
  in
  let r = FS.run cfg in
  let input = r.FS.fr_fleet_input in
  let taken prof =
    let b', _ = P.bolt r.FS.fr_build prof in
    (P.run b' ~input).Bolt_sim.Machine.counters.Bolt_sim.Machine.taken_branches
  in
  (* merge as a deployment pipeline would: the day-old stale shard is
     decayed to ~nothing, and the target build-id is pinned *)
  let opts =
    {
      Merge.default_options with
      Merge.decay = Some 1e-4;
      expect_build_id = Some r.FS.fr_build.P.exe.Bolt_obj.Objfile.build_id;
    }
  in
  let merged = taken (Merge.merge ~opts (FS.loaded_shards r)) in
  let singles =
    List.map (fun ((h : FS.host), prof) -> (h.FS.h_name, taken prof)) r.FS.fr_shards
  in
  List.iter
    (fun (name, single) ->
      Fmt.epr "fleet e2e: %s alone %d, merged %d@." name single merged)
    singles;
  List.iter
    (fun (name, single) ->
      if merged > single then
        Alcotest.failf "merged profile worse than %s alone: %d > %d" name
          merged single)
    singles

let suite =
  [
    QCheck_alcotest.to_alcotest prop_order_independent;
    QCheck_alcotest.to_alcotest prop_incremental_eq_batch;
    QCheck_alcotest.to_alcotest prop_weight_linear;
    QCheck_alcotest.to_alcotest prop_decay_monotone;
    Alcotest.test_case "golden-3-host-merge" `Quick test_golden_merge;
    Alcotest.test_case "expect-build-id" `Quick test_expect_build_id;
    Alcotest.test_case "jobs-byte-identical" `Quick test_jobs_identical;
    Alcotest.test_case "quality-report" `Quick test_quality_report;
    Alcotest.test_case "unstamped-not-stale" `Quick test_unstamped_not_stale;
    Alcotest.test_case "stale-shard-tolerated" `Slow test_stale_shard_tolerated;
    Alcotest.test_case "merged-beats-any-single" `Slow test_merged_beats_any_single;
  ]
