(* fdata profile format: to_string/parse round trips, and the lenient /
   strict split on malformed input.  A profile is data about a binary,
   not part of it — the parser must degrade, never throw (unless asked
   to with ~strict:true). *)

module Fdata = Bolt_profile.Fdata

let sample_profile =
  {
    Fdata.lbr = true;
    header = None;
    branches =
      [
        {
          Fdata.br_from_func = "main";
          br_from_off = 12;
          br_to_func = "main";
          br_to_off = 40;
          br_count = 1000L;
          br_mispreds = 13L;
        };
        {
          Fdata.br_from_func = "main";
          br_from_off = 52;
          br_to_func = "helper";
          br_to_off = 0;
          br_count = 480L;
          br_mispreds = 0L;
        };
      ];
    ranges = [ { Fdata.rg_func = "main"; rg_start = 0; rg_end = 12; rg_count = 990L } ];
    samples = [];
    total_samples = 1480L;
    fingerprints = [];
  }

let nonlbr_profile =
  {
    Fdata.lbr = false;
    header = None;
    branches = [];
    ranges = [];
    samples =
      [
        { Fdata.sm_func = "main"; sm_off = 8; sm_count = 77L };
        { Fdata.sm_func = "helper"; sm_off = 0; sm_count = 3L };
      ];
    total_samples = 80L;
    fingerprints = [];
  }

let check_round_trip name (p : Fdata.t) =
  let text = Fdata.to_string p in
  let p', warnings = Fdata.parse text in
  Alcotest.(check int) (name ^ " no warnings") 0 (List.length warnings);
  Alcotest.(check bool) (name ^ " lbr") p.Fdata.lbr p'.Fdata.lbr;
  Alcotest.(check int)
    (name ^ " branches")
    (List.length p.Fdata.branches)
    (List.length p'.Fdata.branches);
  Alcotest.(check bool) (name ^ " identical") true (p = p');
  (* and the text itself is a fixpoint *)
  Alcotest.(check string) (name ^ " text fixpoint") text (Fdata.to_string p')

let round_trip_lbr () = check_round_trip "lbr" sample_profile
let round_trip_sample () = check_round_trip "sample" nonlbr_profile

let round_trip_empty () =
  let p', warnings = Fdata.parse (Fdata.to_string Fdata.empty) in
  Alcotest.(check int) "no warnings" 0 (List.length warnings);
  Alcotest.(check bool) "empty" true (p' = Fdata.empty)

(* one malformed line of each family, interleaved with good records *)
let corrupt_text =
  String.concat "\n"
    [
      "mode lbr";
      "B main 12 main 40 1000 13";
      "B main 12 main 40 1000"; (* wrong field count *)
      "B main twelve main 40 1000 13"; (* non-integer field *)
      "B main -4 main 40 1000 13"; (* negative offset *)
      "F main 0 12 990";
      "F main 40 12 990"; (* inverted range *)
      "X what is this"; (* unknown tag *)
      "S main 8 77"; (* valid but ignored counts in lbr mode parsing *)
      "mode turbo"; (* unknown mode *)
      "";
    ]

let lenient_skips_bad_records () =
  let p, warnings = Fdata.parse corrupt_text in
  Alcotest.(check int) "warnings" 6 (List.length warnings);
  Alcotest.(check int) "good branches kept" 1 (List.length p.Fdata.branches);
  Alcotest.(check int) "good ranges kept" 1 (List.length p.Fdata.ranges);
  Alcotest.(check int) "good samples kept" 1 (List.length p.Fdata.samples);
  (* warnings carry the line numbers of the bad lines *)
  let lines = List.map (fun w -> w.Fdata.w_line) warnings in
  Alcotest.(check (list int)) "bad line numbers" [ 3; 4; 5; 7; 8; 10 ]
    (List.sort compare lines)

let strict_raises () =
  Alcotest.check_raises "strict rejects first bad record"
    (Fdata.Bad_format "line 3: wrong field count: B main 12 main 40 1000")
    (fun () -> ignore (Fdata.parse ~strict:true corrupt_text))

let crlf_tolerated () =
  let text = "mode lbr\r\nB main 12 main 40 1000 13\r\n" in
  let p, warnings = Fdata.parse text in
  Alcotest.(check int) "no warnings" 0 (List.length warnings);
  Alcotest.(check int) "branch kept" 1 (List.length p.Fdata.branches)

let total_recomputed () =
  (* total_samples is derived, not parsed: corrupt counts cannot leak in *)
  let p, _ = Fdata.parse corrupt_text in
  let expect =
    Int64.add
      (List.fold_left (fun a (b : Fdata.branch) -> Int64.add a b.br_count) 0L p.Fdata.branches)
      (List.fold_left (fun a (s : Fdata.sample) -> Int64.add a s.sm_count) 0L p.Fdata.samples)
  in
  Alcotest.(check int64) "total" expect p.Fdata.total_samples

let header_round_trip () =
  let h =
    {
      Fdata.hd_host = "web042.dc1";
      hd_build_id = "deadbeef01234567";
      hd_timestamp = 86400;
      hd_events = 123456789L;
      hd_weight = 2.5;
    }
  in
  let p = { sample_profile with Fdata.header = Some h } in
  let p', warnings = Fdata.parse (Fdata.to_string p) in
  Alcotest.(check int) "no warnings" 0 (List.length warnings);
  Alcotest.(check bool) "header kept" true (p'.Fdata.header = Some h);
  Alcotest.(check bool) "identical" true (p = p')

let saturation () =
  Alcotest.(check int64) "add saturates" Int64.max_int
    (Fdata.sat_add Int64.max_int 1L);
  Alcotest.(check int64) "add exact" 7L (Fdata.sat_add 3L 4L);
  Alcotest.(check int64) "scale saturates" Int64.max_int
    (Fdata.sat_scale Int64.max_int 2.0);
  Alcotest.(check int64) "scale rounds" 3L (Fdata.sat_scale 5L 0.5);
  (* giant counts parse instead of overflowing into garbage *)
  let p, w = Fdata.parse "mode lbr\nB a 0 a 4 9223372036854775807 0\n" in
  Alcotest.(check int) "no warnings" 0 (List.length w);
  Alcotest.(check int64) "max count kept" Int64.max_int
    (List.hd p.Fdata.branches).Fdata.br_count

let garbage_never_raises () =
  (* arbitrary bytes through the lenient parser: warnings only *)
  let texts =
    [
      "";
      "\n\n\n";
      "B";
      "mode";
      "B  main  12"; (* double spaces produce empty fields *)
      String.make 1000 'B';
      "S f 1 2 3 4 5 6 7 8 9";
      "\x00\x01\x02 binary junk \xff";
      "B main 4611686018427387904 main 0 1 0"; (* overflows OCaml's int *)
    ]
  in
  List.iter
    (fun t ->
      let _p, _w = Fdata.parse t in
      ())
    texts;
  Alcotest.(check pass) "no exception" () ()

(* ---- fingerprint records (G/GB) ---- *)

module Fp = Bolt_obj.Fingerprint

let fp_profile =
  {
    sample_profile with
    Fdata.fingerprints =
      [
        {
          Fp.fp_func = "helper";
          fp_size = 16;
          fp_opcode_hash = 0x1234;
          fp_cfg_hash = 0x55;
          fp_calls = [];
          fp_blocks =
            [ { Fp.bk_off = 0; bk_size = 16; bk_opcode_hash = 9; bk_shape_hash = 2 } ];
        };
        {
          Fp.fp_func = "main";
          fp_size = 64;
          fp_opcode_hash = 0xabcdef;
          fp_cfg_hash = 0xfeed;
          fp_calls = [ "helper"; "exit" ];
          fp_blocks =
            [
              { Fp.bk_off = 0; bk_size = 12; bk_opcode_hash = 3; bk_shape_hash = 4 };
              { Fp.bk_off = 12; bk_size = 52; bk_opcode_hash = 5; bk_shape_hash = 6 };
            ];
        };
      ];
  }

let round_trip_fingerprints () = check_round_trip "fingerprints" fp_profile

let gb_before_g_rejected () =
  (* a GB line with no G opened for its function is an orphan: skipped
     with a warning leniently, fatal under ~strict *)
  let text =
    String.concat "\n"
      [
        "mode lbr";
        "GB main 0 12 3 4";
        "G main 64 abcdef feed helper,exit";
        "GB main 12 52 5 6";
        "B main 12 main 40 1000 13";
        "";
      ]
  in
  let p, warnings = Fdata.parse text in
  Alcotest.(check int) "one warning" 1 (List.length warnings);
  Alcotest.(check int) "orphan line" 2 (List.hd warnings).Fdata.w_line;
  (match p.Fdata.fingerprints with
  | [ f ] ->
      Alcotest.(check string) "func kept" "main" f.Fp.fp_func;
      Alcotest.(check int) "only the later block" 1 (List.length f.Fp.fp_blocks)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 fingerprint, got %d" (List.length l)));
  Alcotest.check_raises "strict rejects the orphan"
    (Fdata.Bad_format "line 2: GB record before its G record: GB main 0 12 3 4")
    (fun () -> ignore (Fdata.parse ~strict:true text))

(* ---- normalize: duplicate and zero-count triples ---- *)

let normalize_folds_duplicates () =
  let br f fo t to_ c m =
    {
      Fdata.br_from_func = f;
      br_from_off = fo;
      br_to_func = t;
      br_to_off = to_;
      br_count = c;
      br_mispreds = m;
    }
  in
  let p =
    {
      Fdata.empty with
      Fdata.branches =
        [
          br "b" 4 "b" 0 5L 1L;
          br "a" 0 "a" 8 2L 0L;
          br "a" 0 "a" 8 3L 1L;
          br "z" 0 "z" 4 0L 0L;
        ];
      ranges =
        [
          { Fdata.rg_func = "a"; rg_start = 0; rg_end = 8; rg_count = 1L };
          { Fdata.rg_func = "a"; rg_start = 0; rg_end = 8; rg_count = 2L };
        ];
      samples =
        [
          { Fdata.sm_func = "s"; sm_off = 4; sm_count = 7L };
          { Fdata.sm_func = "s"; sm_off = 4; sm_count = Int64.max_int };
        ];
    }
  in
  let n = Fdata.normalize p in
  Alcotest.(check int) "duplicate branches folded" 3 (List.length n.Fdata.branches);
  let a = List.find (fun (b : Fdata.branch) -> b.br_from_func = "a") n.Fdata.branches in
  Alcotest.(check int64) "counts added" 5L a.Fdata.br_count;
  Alcotest.(check int64) "mispreds added" 1L a.Fdata.br_mispreds;
  (* zero-count records are data ("this edge was never taken"), not noise *)
  Alcotest.(check bool) "zero-count triple survives" true
    (List.exists (fun (b : Fdata.branch) -> b.Fdata.br_count = 0L) n.Fdata.branches);
  Alcotest.(check bool) "branches sorted" true
    (n.Fdata.branches = List.sort compare n.Fdata.branches);
  Alcotest.(check int) "duplicate ranges folded" 1 (List.length n.Fdata.ranges);
  Alcotest.(check int64) "range counts added" 3L (List.hd n.Fdata.ranges).Fdata.rg_count;
  Alcotest.(check int64) "sample add saturates" Int64.max_int
    (List.hd n.Fdata.samples).Fdata.sm_count;
  Alcotest.(check int64) "total recomputed, saturating" Int64.max_int
    n.Fdata.total_samples;
  (* already-canonical input is a fixpoint *)
  Alcotest.(check bool) "idempotent" true (Fdata.normalize n = n)

let suite =
  [
    Alcotest.test_case "round-trip-lbr" `Quick round_trip_lbr;
    Alcotest.test_case "round-trip-sample" `Quick round_trip_sample;
    Alcotest.test_case "round-trip-empty" `Quick round_trip_empty;
    Alcotest.test_case "lenient-skips-bad-records" `Quick lenient_skips_bad_records;
    Alcotest.test_case "strict-raises" `Quick strict_raises;
    Alcotest.test_case "crlf-tolerated" `Quick crlf_tolerated;
    Alcotest.test_case "total-recomputed" `Quick total_recomputed;
    Alcotest.test_case "header-round-trip" `Quick header_round_trip;
    Alcotest.test_case "saturation" `Quick saturation;
    Alcotest.test_case "garbage-never-raises" `Quick garbage_never_raises;
    Alcotest.test_case "round-trip-fingerprints" `Quick round_trip_fingerprints;
    Alcotest.test_case "gb-before-g-rejected" `Quick gb_before_g_rejected;
    Alcotest.test_case "normalize-folds-duplicates" `Quick normalize_folds_duplicates;
  ]
