(* Profile pipeline (fdata, perf2bolt) and function-ordering tests. *)

module F = Bolt_profile.Fdata

let sample_profile =
  {
    F.lbr = true;
    header = None;
    branches =
      [
        { F.br_from_func = "a"; br_from_off = 10; br_to_func = "b"; br_to_off = 0; br_count = 100L; br_mispreds = 3L };
        { F.br_from_func = "b"; br_from_off = 4; br_to_func = "b"; br_to_off = 20; br_count = 50L; br_mispreds = 1L };
        { F.br_from_func = "c"; br_from_off = 2; br_to_func = "a"; br_to_off = 0; br_count = 7L; br_mispreds = 0L };
      ];
    ranges = [ { F.rg_func = "b"; rg_start = 0; rg_end = 30; rg_count = 44L } ];
    samples = [ { F.sm_func = "c"; sm_off = 8; sm_count = 5L } ];
    total_samples = 162L;
    fingerprints = [];
  }

let test_fdata_roundtrip () =
  let path = Filename.temp_file "bolt" ".fdata" in
  F.save path sample_profile;
  let p = F.load path in
  Sys.remove path;
  Alcotest.(check int) "branches" 3 (List.length p.F.branches);
  Alcotest.(check int) "ranges" 1 (List.length p.F.ranges);
  Alcotest.(check int) "samples" 1 (List.length p.F.samples);
  Alcotest.(check bool) "lbr flag" true p.F.lbr;
  Alcotest.(check bool) "identical records" true (p.F.branches = sample_profile.F.branches)

let test_func_events () =
  let h = F.func_events sample_profile in
  Alcotest.(check int64) "a events" 100L (Hashtbl.find h "a");
  Alcotest.(check int64) "b events" 94L (Hashtbl.find h "b");
  Alcotest.(check int64) "c events" 12L (Hashtbl.find h "c")

let test_perf2bolt_resolution () =
  (* build a tiny exe and resolve absolute sample addresses *)
  let exe =
    (Bolt_minic.Driver.compile
       [ ("m", {| fn helper(x) { return x + 1; }
                  fn main() { out helper(1); return 0; } |}) ])
      .Bolt_minic.Driver.exe
  in
  let raw = Bolt_sim.Machine.new_raw_profile true in
  let main_sym = Option.get (Bolt_obj.Objfile.find_symbol exe "main") in
  let helper_sym = Option.get (Bolt_obj.Objfile.find_symbol exe "helper") in
  Hashtbl.replace raw.Bolt_sim.Machine.rp_branches
    (main_sym.sym_value + 4, helper_sym.sym_value)
    (ref 9, ref 1);
  (* a branch to an unmapped address must be dropped *)
  Hashtbl.replace raw.Bolt_sim.Machine.rp_branches (12345, 777) (ref 3, ref 0);
  let f = Bolt_profile.Perf2bolt.convert exe raw in
  Alcotest.(check int) "one resolved record" 1 (List.length f.F.branches);
  let b = List.hd f.F.branches in
  Alcotest.(check string) "from func" "main" b.F.br_from_func;
  Alcotest.(check int) "from off" 4 b.F.br_from_off;
  Alcotest.(check string) "to func" "helper" b.F.br_to_func;
  Alcotest.(check int) "to off" 0 b.F.br_to_off

(* ---- call graph + ordering ---- *)

module CG = Bolt_hfsort.Callgraph
module O = Bolt_hfsort.Order

let mk_graph edges sizes samples =
  let g = CG.create () in
  List.iter (fun (n, sz) -> CG.add_node g ~name:n ~size:sz) sizes;
  List.iter (fun (n, c) -> CG.add_samples g n c) samples;
  List.iter (fun (a, b, w) -> CG.add_edge g a b w) edges;
  g

let test_c3_clusters_hot_pair () =
  (* a hot caller/callee pair must be adjacent, hot code before cold *)
  let g =
    mk_graph
      [ ("main", "hot", 1000); ("main", "cold", 1) ]
      [ ("main", 64); ("hot", 64); ("cold", 64); ("never", 64) ]
      [ ("main", 500); ("hot", 1000); ("cold", 1) ]
  in
  let order = O.order O.C3 g ~original:[ "never"; "cold"; "hot"; "main" ] in
  let idx n = Option.get (List.find_index (( = ) n) order) in
  Alcotest.(check bool) "hot before cold" true (idx "hot" < idx "cold");
  Alcotest.(check bool) "hot adjacent to main" true (abs (idx "hot" - idx "main") = 1);
  Alcotest.(check bool) "never-sampled last" true (idx "never" = List.length order - 1)

let test_c3_page_budget () =
  (* a callee too large to fit the page budget is not merged *)
  let g =
    mk_graph
      [ ("a", "big", 100) ]
      [ ("a", 100); ("big", 100_000) ]
      [ ("a", 10); ("big", 10) ]
  in
  let order = O.order O.C3 g ~original:[ "a"; "big" ] in
  Alcotest.(check int) "both present" 2 (List.length order)

let test_orders_complete () =
  let g =
    mk_graph
      [ ("m", "x", 5); ("m", "y", 3); ("x", "y", 2) ]
      [ ("m", 32); ("x", 32); ("y", 32); ("z", 32) ]
      [ ("m", 9); ("x", 5); ("y", 3) ]
  in
  let original = [ "m"; "x"; "y"; "z" ] in
  List.iter
    (fun algo ->
      let order = O.order algo g ~original in
      Alcotest.(check int) "complete permutation" 4 (List.length order);
      List.iter
        (fun n -> Alcotest.(check bool) n true (List.mem n order))
        original)
    [ O.C3; O.Hfsort_plus; O.Pettis_hansen ]

let test_callgraph_from_profile () =
  let g =
    CG.of_profile ~funcs:[ ("a", 10); ("b", 10); ("c", 10) ] sample_profile
  in
  (* a->b is a call (to_off = 0); b->b intra is not a call edge *)
  Alcotest.(check bool) "a->b edge" true (Hashtbl.mem g.CG.edges ("a", "b"));
  Alcotest.(check bool) "no b->b call edge" false (Hashtbl.mem g.CG.edges ("b", "b"));
  Alcotest.(check bool) "c->a edge" true (Hashtbl.mem g.CG.edges ("c", "a"))

let test_non_lbr_callgraph () =
  let prof = { sample_profile with F.lbr = false; branches = [] } in
  let g =
    CG.of_samples_and_calls
      ~funcs:[ ("a", 10); ("b", 10); ("c", 10) ]
      ~direct_calls:[ ("c", 6, "a"); ("a", 2, "b") ]
      prof
  in
  (* the call at c+6 picks up the IP samples at c+8 *)
  Alcotest.(check bool) "weighted by nearby samples" true
    (match Hashtbl.find_opt g.CG.edges ("c", "a") with Some w -> !w >= 5 | None -> false);
  Alcotest.(check bool) "unsampled call still gets weight 1" true
    (match Hashtbl.find_opt g.CG.edges ("a", "b") with Some w -> !w = 1 | None -> false)

let order_is_permutation =
  QCheck.Test.make ~name:"orderings are permutations of the input" ~count:50
    (QCheck.make
       QCheck.Gen.(
         let node = int_range 0 15 in
         list_size (int_range 0 40) (triple node node (int_range 1 100))))
    (fun edges ->
      let names = List.init 16 (fun i -> Printf.sprintf "n%d" i) in
      let g = CG.create () in
      List.iter (fun n -> CG.add_node g ~name:n ~size:32) names;
      List.iter (fun n -> CG.add_samples g n 1) names;
      List.iter
        (fun (a, b, w) ->
          CG.add_edge g (Printf.sprintf "n%d" a) (Printf.sprintf "n%d" b) w)
        edges;
      List.for_all
        (fun algo ->
          let o = O.order algo g ~original:names in
          List.length o = 16 && List.sort compare o = List.sort compare names)
        [ O.C3; O.Hfsort_plus; O.Pettis_hansen ])

let suite =
  [
    Alcotest.test_case "fdata-roundtrip" `Quick test_fdata_roundtrip;
    Alcotest.test_case "func-events" `Quick test_func_events;
    Alcotest.test_case "perf2bolt-resolution" `Quick test_perf2bolt_resolution;
    Alcotest.test_case "c3-hot-pair" `Quick test_c3_clusters_hot_pair;
    Alcotest.test_case "c3-page-budget" `Quick test_c3_page_budget;
    Alcotest.test_case "orders-complete" `Quick test_orders_complete;
    Alcotest.test_case "callgraph-lbr" `Quick test_callgraph_from_profile;
    Alcotest.test_case "callgraph-non-lbr" `Quick test_non_lbr_callgraph;
    QCheck_alcotest.to_alcotest order_is_permutation;
  ]
