(* BELF container: serialization roundtrips and lookups. *)

open Bolt_obj
open Types

let sample_exe () =
  let text = Bytes.of_string "\x01\x02\x04" in
  {
    Objfile.kind = Objfile.Executable;
    entry = 0x400000;
    build_id = "";
    sections =
      [
        { sec_name = ".text"; sec_kind = Text; sec_addr = 0x400000; sec_data = text; sec_size = 3 };
        {
          sec_name = ".rodata";
          sec_kind = Rodata;
          sec_addr = 0x1000000;
          sec_data = Bytes.make 16 '\x07';
          sec_size = 16;
        };
        { sec_name = ".bss"; sec_kind = Bss; sec_addr = 0x2000000; sec_data = Bytes.empty; sec_size = 64 };
      ];
    symbols =
      [
        {
          sym_name = "main";
          sym_kind = Func;
          sym_bind = Global;
          sym_section = ".text";
          sym_value = 0x400000;
          sym_size = 3;
        };
        {
          sym_name = "data";
          sym_kind = Object;
          sym_bind = Local;
          sym_section = ".rodata";
          sym_value = 0x1000000;
          sym_size = 16;
        };
      ];
    relocs =
      [
        {
          rel_section = ".text";
          rel_offset = 1;
          rel_kind = Rel32;
          rel_sym = "main";
          rel_addend = -3;
          rel_end = 4;
          rel_pic_base = "";
        };
        {
          rel_section = ".rodata";
          rel_offset = 0;
          rel_kind = Abs64;
          rel_sym = "main";
          rel_addend = 8;
          rel_end = 0;
          rel_pic_base = "tbl";
        };
      ];
    fdes =
      [
        {
          fde_func = "main";
          fde_addr = 0x400000;
          fde_size = 3;
          fde_cfi =
            [
              (2, Cfi_establish);
              (2, Cfi_def_locals 16);
              (2, Cfi_save (Bolt_isa.Reg.r8, 24));
              (3, Cfi_restore Bolt_isa.Reg.r8);
              ( 3,
                Cfi_set_state
                  { cfa_established = true; cfa_locals = 8; cfa_saved = [ (Bolt_isa.Reg.r9, 16) ] }
              );
              (3, Cfi_teardown);
            ];
        };
      ];
    lsdas =
      [
        {
          lsda_func = "main";
          lsda_fn_addr = 0x400000;
          lsda_entries = [ { lsda_start = 0; lsda_len = 2; lsda_pad = -8; lsda_action = 1 } ];
        };
      ];
    dbgs =
      [ { dbg_func = "main"; dbg_addr = 0x400000; dbg_entries = [ (0, "a.mc", 3); (2, "a.mc", 9) ] } ];
    fingerprints =
      [
        {
          Fingerprint.fp_func = "main";
          fp_size = 3;
          fp_opcode_hash = 0x1234;
          fp_cfg_hash = 0xabcd;
          fp_calls = [ "helper" ];
          fp_blocks =
            [
              { Fingerprint.bk_off = 0; bk_size = 3; bk_opcode_hash = 0x9; bk_shape_hash = 0x7 };
            ];
        };
      ];
  }

let test_roundtrip () =
  let exe = sample_exe () in
  let s = Objfile.to_string exe in
  let exe' = Objfile.of_string s in
  Alcotest.(check bool) "roundtrip equal" true (exe = exe')

let test_bad_magic () =
  match Objfile.of_string "NOPE....." with
  | _ -> Alcotest.fail "expected Corrupt"
  | exception Buf.Corrupt _ -> ()

let test_truncated () =
  let s = Objfile.to_string (sample_exe ()) in
  match Objfile.of_string (String.sub s 0 (String.length s / 2)) with
  | _ -> Alcotest.fail "expected Corrupt"
  | exception Buf.Corrupt _ -> ()

let test_lookups () =
  let exe = sample_exe () in
  Alcotest.(check bool) "find_section" true (Objfile.find_section exe ".rodata" <> None);
  Alcotest.(check bool) "function_at inside" true
    (match Objfile.function_at exe 0x400002 with
    | Some s -> s.sym_name = "main"
    | None -> false);
  Alcotest.(check bool) "function_at outside" true (Objfile.function_at exe 0x400003 = None);
  Alcotest.(check bool) "section_at" true
    (match Objfile.section_at exe 0x1000004 with
    | Some s -> s.sec_name = ".rodata"
    | None -> false);
  Alcotest.(check int) "text_size" 3 (Objfile.text_size exe)

let test_cfi_state_replay () =
  let ops =
    [
      (4, Cfi_establish);
      (10, Cfi_def_locals 32);
      (12, Cfi_save (Bolt_isa.Reg.r8, 40));
      (14, Cfi_save (Bolt_isa.Reg.r9, 48));
      (60, Cfi_restore Bolt_isa.Reg.r9);
      (64, Cfi_teardown);
    ]
  in
  let st = cfi_state_at ops 13 in
  Alcotest.(check bool) "established" true st.cfa_established;
  Alcotest.(check int) "locals" 32 st.cfa_locals;
  Alcotest.(check int) "one save" 1 (List.length st.cfa_saved);
  let st = cfi_state_at ops 20 in
  Alcotest.(check int) "two saves" 2 (List.length st.cfa_saved);
  let st = cfi_state_at ops 62 in
  Alcotest.(check int) "after restore" 1 (List.length st.cfa_saved);
  let st = cfi_state_at ops 100 in
  Alcotest.(check bool) "torn down" false st.cfa_established;
  (* set-state overrides everything *)
  let st =
    cfi_state_at
      (ops @ [ (70, Cfi_set_state { cfa_established = true; cfa_locals = 8; cfa_saved = [] }) ])
      70
  in
  Alcotest.(check bool) "set-state" true (st.cfa_established && st.cfa_locals = 8)

let test_cfi_state_equal () =
  let a = { cfa_established = true; cfa_locals = 8; cfa_saved = [ (Bolt_isa.Reg.r8, 16); (Bolt_isa.Reg.r9, 24) ] } in
  let b = { cfa_established = true; cfa_locals = 8; cfa_saved = [ (Bolt_isa.Reg.r9, 24); (Bolt_isa.Reg.r8, 16) ] } in
  Alcotest.(check bool) "order-insensitive" true (cfi_state_equal a b);
  Alcotest.(check bool) "locals differ" false
    (cfi_state_equal a { b with cfa_locals = 16 })

let test_build_id () =
  let exe = Objfile.stamp_build_id (sample_exe ()) in
  (* deterministic: restamping the same contents gives the same id *)
  Alcotest.(check string) "stable" exe.Objfile.build_id
    (Objfile.compute_build_id exe);
  Alcotest.(check bool) "non-empty" true (exe.Objfile.build_id <> "");
  (* the stamp itself is excluded from the digest, so it cannot
     invalidate itself *)
  Alcotest.(check string) "self-consistent" exe.Objfile.build_id
    (Objfile.compute_build_id { exe with Objfile.build_id = "" });
  (* any code change is a new revision *)
  let patched =
    {
      exe with
      Objfile.sections =
        List.map
          (fun (s : Types.section) ->
            if s.sec_name = ".text" then
              { s with sec_data = Bytes.of_string "\x01\x02\x05" }
            else s)
          exe.Objfile.sections;
    }
  in
  Alcotest.(check bool) "changed text changes id" true
    (Objfile.compute_build_id patched <> exe.Objfile.build_id);
  (* survives serialization *)
  let exe' = Objfile.of_string (Objfile.to_string exe) in
  Alcotest.(check string) "round-trips" exe.Objfile.build_id exe'.Objfile.build_id

let test_v3_compat () =
  (* a pre-build-id (v3) file still loads, with an empty build-id *)
  let exe = sample_exe () in
  let v4 = Objfile.to_string exe in
  (* v3 layout = v4 minus the build-id string field after the entry;
     sample_exe has build_id = "", serialized as a zero length *)
  let b = Buf.writer () in
  Buf.str b "";
  let empty_str = Buf.contents b in
  let prefix_len = 4 + 1 + 1 + 8 (* magic, version, kind, entry *) in
  let v3 =
    String.concat ""
      [
        "BELF";
        "\x03";
        String.sub v4 5 (prefix_len - 5);
        String.sub v4
          (prefix_len + String.length empty_str)
          (String.length v4 - prefix_len - String.length empty_str);
      ]
  in
  let exe' = Objfile.of_string v3 in
  Alcotest.(check string) "unstamped" "" exe'.Objfile.build_id;
  (* v3 predates fingerprints too: they drop, everything else survives *)
  Alcotest.(check bool) "payload intact" true
    (exe' = { exe with Objfile.fingerprints = [] })

let buf_roundtrip =
  QCheck.Test.make ~name:"Buf i64 roundtrip" ~count:1000
    (QCheck.make QCheck.Gen.(int_range min_int max_int))
    (fun v ->
      let b = Buf.writer () in
      Buf.i64 b v;
      let r = Buf.reader (Buf.contents b) in
      Buf.r_i64 r = v)

let buf_str_roundtrip =
  QCheck.Test.make ~name:"Buf str/list roundtrip" ~count:200
    QCheck.(small_list (string_of_size (QCheck.Gen.int_range 0 30)))
    (fun ss ->
      let b = Buf.writer () in
      Buf.list b Buf.str ss;
      let r = Buf.reader (Buf.contents b) in
      Buf.r_list r Buf.r_str = ss)

let suite =
  [
    Alcotest.test_case "objfile-roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "bad-magic" `Quick test_bad_magic;
    Alcotest.test_case "truncated" `Quick test_truncated;
    Alcotest.test_case "lookups" `Quick test_lookups;
    Alcotest.test_case "cfi-state-replay" `Quick test_cfi_state_replay;
    Alcotest.test_case "cfi-state-equal" `Quick test_cfi_state_equal;
    Alcotest.test_case "build-id" `Quick test_build_id;
    Alcotest.test_case "v3-compat" `Quick test_v3_compat;
    QCheck_alcotest.to_alcotest buf_roundtrip;
    QCheck_alcotest.to_alcotest buf_str_roundtrip;
  ]
