(* The pass manager and the domain-parallel executor.

   Two properties are load-bearing:
   - determinism: -j1 and -j4 produce byte-identical binaries and
     identical dyno-stats on every example-shaped workload (the
     executor's contract);
   - the registry: Table 1's order is preserved, the enablement
     predicates match the old Opts-flag behaviour flag for flag, and a
     raising registered pass degrades through quarantine with the same
     strict / max-quarantine semantics the sequential pipeline had. *)

module P = Bolt_pipeline.Pipeline
module Passman = Bolt_core.Passman
module Context = Bolt_core.Context
module Opts = Bolt_core.Opts
module Diag = Bolt_core.Diag
module Metrics = Bolt_obs.Metrics

(* ---- determinism: -j1 vs -j4 ---- *)

let quickstart_source =
  {|
global total = 0;
const table = { 5, 3, 8, 1, 9, 2, 7, 4 };

fn hash(x) { return (x * 2654435761) & 1073741823; }

fn classify(x) {
  switch (x % 8) {
    case 0: { return table[0]; }
    case 1: { return table[1]; }
    case 2: { return table[2]; }
    case 3: { return table[3]; }
    case 4: { return table[4]; }
    default: { return x % 3; }
  }
}

fn process(x) {
  var h = hash(x);
  if (h % 100 < 2) { throw h; }
  return classify(h) + (h % 7);
}

fn main() {
  var i = 0;
  while (i < 20000) {
    try { total = total + process(i); }
    catch (e) { total = total + 1; }
    i = i + 1;
  }
  out total;
  return 0;
}
|}

let bolt_at ~jobs build prof =
  let b, r = P.bolt ~jobs build prof in
  (Bolt_obj.Objfile.to_string b.P.exe, r)

let check_deterministic name build prof =
  let out1, r1 = bolt_at ~jobs:1 build prof in
  let out4, r4 = bolt_at ~jobs:4 build prof in
  Alcotest.(check bool) (name ^ ": byte-identical output") true (out1 = out4);
  Alcotest.(check bool)
    (name ^ ": identical dyno-stats (before)")
    true
    (r1.Bolt_core.Bolt.r_dyno_before = r4.Bolt_core.Bolt.r_dyno_before);
  Alcotest.(check bool)
    (name ^ ": identical dyno-stats (after)")
    true
    (r1.Bolt_core.Bolt.r_dyno_after = r4.Bolt_core.Bolt.r_dyno_after);
  Alcotest.(check bool)
    (name ^ ": same quarantine verdicts")
    true
    (r1.Bolt_core.Bolt.r_quarantined = r4.Bolt_core.Bolt.r_quarantined)

let gen_build ?input params =
  let w = Bolt_workloads.Gen.gen params in
  let cc = Bolt_minic.Driver.default_options in
  let r =
    Bolt_minic.Driver.compile ~options:cc
      ~externals:w.Bolt_workloads.Gen.externals
      ~extra_objs:w.Bolt_workloads.Gen.extra_objs w.Bolt_workloads.Gen.sources
  in
  let build = { P.exe = r.exe; cc } in
  let input =
    match input with Some i -> i | None -> w.Bolt_workloads.Gen.input
  in
  let prof, _ = P.profile build ~input in
  (build, prof)

let test_det_quickstart () =
  let build = P.compile [ ("quickstart", quickstart_source) ] in
  let prof, _ = P.profile build ~input:[||] in
  check_deterministic "quickstart" build prof

let test_det_datacenter () =
  let build, prof =
    gen_build
      {
        Bolt_workloads.Workloads.hhvm_like with
        Bolt_workloads.Gen.funcs = 400;
        modules = 8;
        iterations = 2_000;
      }
  in
  check_deterministic "datacenter" build prof

let test_det_compiler () =
  let build, prof =
    gen_build
      ~input:(Bolt_workloads.Workloads.token_input ~seed:9 ~n:2_000 ~mix:60)
      {
        Bolt_workloads.Workloads.clang_like with
        Bolt_workloads.Gen.funcs = 350;
        modules = 7;
      }
  in
  check_deterministic "compiler" build prof

let test_det_multifeed () =
  let build, prof =
    gen_build
      {
        Bolt_workloads.Workloads.multifeed2 with
        Bolt_workloads.Gen.funcs = 300;
        modules = 6;
        iterations = 1_500;
      }
  in
  check_deterministic "multifeed" build prof

(* ---- the registry ---- *)

let table1_names = List.map (fun p -> p.Passman.p_name) Passman.table1

let test_table1_order () =
  Alcotest.(check (list string))
    "Table 1 order"
    [
      "strip-rep-ret";
      "icf";
      "icp";
      "peepholes";
      "inline-small";
      "simplify-ro-loads";
      "icf-2";
      "plt";
      "reorder-bbs";
      "split-functions";
      "peepholes-2";
      "uce";
      "reorder-functions";
      "sctc";
      "frame-opts";
      "shrink-wrapping";
    ]
    table1_names

let find_pass name =
  List.find (fun p -> p.Passman.p_name = name) Passman.table1

(* Each descriptor's predicate must match the Opts flag the old inline
   driver consulted, flag for flag: enabled under [default], disabled
   when exactly that flag is turned off. *)
let test_enabled_predicates () =
  let check name ~off =
    let p = find_pass name in
    Alcotest.(check bool) (name ^ " on by default") true
      (p.Passman.p_enabled Opts.default);
    Alcotest.(check bool) (name ^ " off") false (p.Passman.p_enabled off)
  in
  let d = Opts.default in
  check "strip-rep-ret" ~off:{ d with strip_rep_ret = false };
  check "icf" ~off:{ d with icf = false };
  check "icf-2" ~off:{ d with icf = false };
  check "icp" ~off:{ d with icp = false };
  check "peepholes" ~off:{ d with peepholes = false };
  check "peepholes-2" ~off:{ d with peepholes = false };
  check "inline-small" ~off:{ d with inline_small = false };
  check "simplify-ro-loads" ~off:{ d with simplify_ro_loads = false };
  check "plt" ~off:{ d with plt = false };
  check "reorder-bbs" ~off:{ d with reorder_blocks = Opts.Rb_none };
  check "split-functions" ~off:{ d with split_functions = Opts.Split_none };
  check "uce" ~off:{ d with uce = false };
  check "sctc" ~off:{ d with sctc = false };
  check "frame-opts" ~off:{ d with frame_opts = false };
  check "shrink-wrapping" ~off:{ d with shrink_wrapping = false };
  (* reorder-functions always runs: under Rf_none it still computes the
     identity layout *)
  Alcotest.(check bool) "reorder-functions always on" true
    ((find_pass "reorder-functions").Passman.p_enabled
       { d with reorder_functions = Opts.Rf_none });
  (* under Opts.none every optimization pass is off *)
  Alcotest.(check (list string))
    "Opts.none leaves only reorder-functions"
    [ "reorder-functions" ]
    (Passman.table1
    |> List.filter (fun p -> p.Passman.p_enabled Opts.none)
    |> List.map (fun p -> p.Passman.p_name))

(* A built environment over the quickstart program, ready for custom
   passes. *)
let mk_env ?(opts = { Opts.default with Opts.jobs = 4 }) () =
  let build = P.compile [ ("t", quickstart_source) ] in
  let prof, _ = P.profile build ~input:[||] in
  let ctx = Context.create ~opts build.P.exe in
  let env = Passman.make_env ctx prof in
  Passman.run env Passman.pre_passes;
  env

(* A registered pass that raises is caught by the quarantine barrier:
   every affected function is demoted, the run completes, and the
   strict / max-quarantine escalations raise exactly as the sequential
   pipeline's did (obolt maps them to exit codes 4 and 5). *)
let boom = Passman.pf "boom" (fun _ -> true) (fun _env _sh _fb -> failwith "kaboom")

let test_raising_pass_quarantined () =
  let env = mk_env () in
  let ctx = env.Passman.ctx in
  let simple_before = List.length (Context.simple_funcs ctx) in
  Alcotest.(check bool) "has simple functions" true (simple_before > 0);
  Passman.run_pass env boom;
  Alcotest.(check int) "every visited function quarantined" simple_before
    (Diag.quarantined_count ctx.Context.diag);
  Alcotest.(check int) "no simple functions left" 0
    (List.length (Context.simple_funcs ctx))

let test_raising_pass_strict () =
  let env = mk_env ~opts:{ Opts.default with Opts.jobs = 4; strict = true } () in
  match Passman.run_pass env boom with
  | () -> Alcotest.fail "strict mode must raise"
  | exception Diag.Strict_error _ -> ()

let test_raising_pass_quarantine_limit () =
  let env =
    mk_env ~opts:{ Opts.default with Opts.jobs = 4; max_quarantine = Some 1 } ()
  in
  Alcotest.(check bool) "budget smaller than the function count" true
    (List.length (Context.simple_funcs env.Passman.ctx) > 1);
  match Passman.run_pass env boom with
  | () -> Alcotest.fail "quarantine budget must abort"
  | exception Diag.Quarantine_limit _ -> ()

(* Per-domain shard registries must merge without losing counts: a pass
   bumping one counter per function over 4 domains lands the exact
   function count in [Context.stats]. *)
let test_shard_counter_merge () =
  let env = mk_env () in
  let ctx = env.Passman.ctx in
  let n = List.length (Context.simple_funcs ctx) in
  let count =
    Passman.pf "count-test"
      (fun _ -> true)
      (fun _env sh _fb -> Context.sh_incr sh "pass.count-test.n")
  in
  Passman.run_pass env count;
  Alcotest.(check int) "no torn counts across domains" n
    (Metrics.counter ctx.Context.stats "pass.count-test.n")

let suite =
  [
    Alcotest.test_case "det-quickstart" `Quick test_det_quickstart;
    Alcotest.test_case "det-datacenter" `Slow test_det_datacenter;
    Alcotest.test_case "det-compiler" `Slow test_det_compiler;
    Alcotest.test_case "det-multifeed" `Slow test_det_multifeed;
    Alcotest.test_case "table1-order" `Quick test_table1_order;
    Alcotest.test_case "enabled-predicates" `Quick test_enabled_predicates;
    Alcotest.test_case "raising-pass-quarantined" `Quick
      test_raising_pass_quarantined;
    Alcotest.test_case "raising-pass-strict" `Quick test_raising_pass_strict;
    Alcotest.test_case "raising-pass-limit" `Quick
      test_raising_pass_quarantine_limit;
    Alcotest.test_case "shard-counter-merge" `Quick test_shard_counter_merge;
  ]
