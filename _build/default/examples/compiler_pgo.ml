(* Compiler scenario (§6.2): shows that compile-time FDO and post-link
   BOLT are complementary, on a clang-like input-driven workload.

     dune exec examples/compiler_pgo.exe

   Four binaries of the same program:
     baseline            -O2
     baseline + BOLT
     PGO+LTO             instrumented run -> rebuild with profile
     PGO+LTO + BOLT
   evaluated on an unseen input, like Figure 7's per-input bars. *)

module E = Bolt_pipeline.Experiments

let () =
  let params =
    { Bolt_workloads.Workloads.clang_like with Bolt_workloads.Gen.funcs = 900 }
  in
  Fmt.pr "building clang-like workload and four binary variants...@.";
  let cc = E.compiler_flow ~quick:true ~lto:true params in
  Fmt.pr "@.speedups over the plain -O2 baseline (per input):@.";
  List.iter
    (fun (v : E.cc_variant) ->
      Fmt.pr "  %-14s" v.E.cv_name;
      List.iter (fun (i, s) -> Fmt.pr "  %s: %6.2f%%" i s) v.E.cv_speedups;
      Fmt.pr "@.")
    cc.E.cc_variants;
  Fmt.pr
    "@.The paper's point (Figure 7): BOLT alone and PGO+LTO alone both win;@.\
     stacked they win the most — neither supersedes the other.@.";
  Fmt.pr "@.dyno-stats of BOLT applied to the PGO+LTO binary (Table 2 analog):@.";
  Bolt_core.Dyno_stats.pp_comparison Fmt.stdout
    ~before:cc.E.cc_pgobolt_report.Bolt_core.Bolt.r_dyno_before
    ~after:cc.E.cc_pgobolt_report.Bolt_core.Bolt.r_dyno_after
