(* LBR study (§5, §6.5): what the last-branch-record hardware buys.

     dune exec examples/lbr_study.exe

   Optimizes the same binary from an LBR profile and from a plain-IP
   profile (edge counts inferred), in three scenarios — function
   reordering only, basic-block optimizations only, and everything —
   and reports how much better the LBR-driven binary is (Figure 11). *)

module E = Bolt_pipeline.Experiments

let () =
  let params =
    { Bolt_workloads.Workloads.hhvm_like with Bolt_workloads.Gen.iterations = 4_000 }
  in
  Fmt.pr "comparing LBR vs non-LBR profiles on an hhvm-like workload...@.";
  let rows = E.fig11 ~params () in
  Fmt.pr "@.improvement from using LBRs (%% better than the non-LBR build):@.";
  List.iter
    (fun (scenario, metrics) ->
      Fmt.pr "  %-10s" scenario;
      List.iter (fun (m, v) -> Fmt.pr "  %s %+.2f%%" m v) metrics;
      Fmt.pr "@.")
    rows;
  Fmt.pr
    "@.Expected shape (paper §6.5): block reordering depends on LBRs much more@.\
     than function reordering does, because it needs fine-grained edge counts.@."
