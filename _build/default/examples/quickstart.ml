(* Quickstart: the whole BOLT flow on a small program, using the public
   library API.

     dune exec examples/quickstart.exe

   Flow (Figure 1 of the paper):
     MiniC sources --compile--> executable
       --simulate with LBR sampling--> raw samples
       --perf2bolt--> fdata profile
       --BOLT--> optimized executable
     and both binaries produce identical output, the optimized one in
     fewer cycles. *)

let source =
  {|
global total = 0;
const table = { 5, 3, 8, 1, 9, 2, 7, 4 };

fn hash(x) { return (x * 2654435761) & 1073741823; }

fn classify(x) {
  switch (x % 8) {
    case 0: { return table[0]; }
    case 1: { return table[1]; }
    case 2: { return table[2]; }
    case 3: { return table[3]; }
    case 4: { return table[4]; }
    default: { return x % 3; }
  }
}

fn process(x) {
  var h = hash(x);
  if (h % 100 < 2) {
    // the rare path: an error that unwinds to main
    throw h;
  }
  return classify(h) + (h % 7);
}

fn main() {
  var i = 0;
  while (i < 50000) {
    try { total = total + process(i); }
    catch (e) { total = total + 1; }
    i = i + 1;
  }
  out total;
  return 0;
}
|}

let () =
  Fmt.pr "== 1. compile ==@.";
  let build = Bolt_pipeline.Pipeline.compile [ ("quickstart", source) ] in
  Fmt.pr "   text size: %d bytes@." (Bolt_obj.Objfile.text_size build.exe);

  Fmt.pr "== 2. baseline run ==@.";
  let base = Bolt_pipeline.Pipeline.run build ~input:[||] in
  Fmt.pr "   output=%a cycles=%d@."
    Fmt.(list ~sep:comma int)
    base.output
    (Bolt_sim.Machine.cycles base.counters);

  Fmt.pr "== 3. profile with LBR sampling ==@.";
  let prof, _ = Bolt_pipeline.Pipeline.profile build ~input:[||] in
  Fmt.pr "   %d branch records, %d fall-through ranges@."
    (List.length prof.branches) (List.length prof.ranges);

  Fmt.pr "== 4. BOLT ==@.";
  let bolted, report = Bolt_pipeline.Pipeline.bolt build prof in
  Fmt.pr "%a" Bolt_core.Bolt.pp_report report;

  Fmt.pr "== 5. optimized run ==@.";
  let opt = Bolt_pipeline.Pipeline.run bolted ~input:[||] in
  Fmt.pr "   output=%a cycles=%d@."
    Fmt.(list ~sep:comma int)
    opt.output
    (Bolt_sim.Machine.cycles opt.counters);
  Fmt.pr "   behaviour identical: %b@." (Bolt_pipeline.Pipeline.same_behaviour base opt);
  Fmt.pr "   speedup: %.2f%%@."
    (Bolt_pipeline.Pipeline.speedup ~baseline:base ~optimized:opt)
