(* Data-center scenario (the paper's §6.1 flow on one workload):

     dune exec examples/datacenter.exe [-- workload-name]

   Builds an hhvm-like service binary with LTO, establishes the paper's
   baseline (HFSort function ordering at link time, [25]), then applies
   BOLT on top and reports the speedup and micro-architecture metric
   improvements — the single-workload version of Figures 5 and 6. *)

module E = Bolt_pipeline.Experiments
module P = Bolt_pipeline.Pipeline

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "hhvm" in
  let params =
    match List.assoc_opt name Bolt_workloads.Workloads.fb_workloads with
    | Some p -> p
    | None -> Fmt.failwith "unknown workload %s" name
  in
  (* keep the example snappy *)
  let params = { params with Bolt_workloads.Gen.iterations = 6_000 } in
  Fmt.pr "building %s-like workload (%d functions over %d modules)...@." name
    params.Bolt_workloads.Gen.funcs params.Bolt_workloads.Gen.modules;
  let r = E.fb_flow ~lto:(name = "hhvm") ~name params in
  Fmt.pr "@.BOLT on top of the HFSort%s baseline:@."
    (if name = "hhvm" then "+LTO" else "");
  Fmt.pr "  speedup: %.2f%% (paper reports %.1f%% for %s)@." r.E.fb_speedup
    (try List.assoc name E.fig5_paper with Not_found -> 0.0)
    name;
  Fmt.pr "  behaviour identical: %b@." r.E.fb_behaviour_ok;
  let d = r.E.fb_deltas in
  Fmt.pr "  metric reductions:@.";
  Fmt.pr "    branch misses  %6.1f%%@." d.P.d_branch_miss;
  Fmt.pr "    i-cache misses %6.1f%%@." d.P.d_l1i_miss;
  Fmt.pr "    i-TLB misses   %6.1f%%@." d.P.d_itlb_miss;
  Fmt.pr "    LLC misses     %6.1f%%@." d.P.d_llc_miss;
  Fmt.pr "    taken branches %6.1f%%@." d.P.d_taken_branches;
  Fmt.pr "@.pass summary:@.%a" Bolt_core.Bolt.pp_report r.E.fb_report
