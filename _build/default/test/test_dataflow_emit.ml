(* Lower-level bolt_core tests: liveness dataflow, heat-map construction,
   dyno-stats accounting, and emission/relaxation invariants checked by
   disassembling a rewritten binary. *)

open Bolt_minic
module Machine = Bolt_sim.Machine

let compile ?(options = Driver.default_options) srcs =
  (Driver.compile ~options srcs).Driver.exe

let build_ctx ?(opts = Bolt_core.Opts.default) exe =
  let ctx = Bolt_core.Context.create ~opts exe in
  Bolt_core.Build.run ctx;
  ctx

let test_liveness_callee_saved () =
  (* a framed function that uses r8 must report r8 as referenced *)
  let exe =
    compile
      [
        ( "m",
          {| fn busy(a, b) {
               var x = a * 2;
               var y = b * 3;
               var z = x + y;
               var w = z * z;
               var v = w + x;
               var u = v + y;
               return u + busy2(z, w);
             }
             fn busy2(a, b) { return a + b; }
             fn main() { out busy(1, 2); return 0; } |} );
      ]
  in
  let ctx = build_ctx exe in
  let fb = Option.get (Bolt_core.Context.func ctx "busy") in
  (* it's a framed function (has calls): some callee-saved reg is used *)
  let used_any =
    List.exists
      (fun r -> Bolt_core.Dataflow.references_reg fb r)
      Bolt_isa.Reg.callee_saved
  in
  Alcotest.(check bool) "uses callee-saved regs" true used_any;
  (* liveness converges and entry block exists *)
  let live = Bolt_core.Dataflow.liveness fb in
  Alcotest.(check bool) "entry live-in computed" true
    (Hashtbl.mem live fb.Bolt_core.Bfunc.entry)

let test_heatmap_build_and_prefix () =
  let h = Hashtbl.create 16 in
  (* all heat in the first cells *)
  Hashtbl.replace h 0x400000 500;
  Hashtbl.replace h 0x400040 300;
  let t = Bolt_core.Heatmap.build ~rows:8 ~cols:8 ~base:0x400000 ~span:(64 * 64 * 8) h in
  Alcotest.(check bool) "prefix captures all" true
    (Bolt_core.Heatmap.heat_in_prefix t 0.25 > 0.99);
  Alcotest.(check bool) "extent small" true (Bolt_core.Heatmap.hot_extent t <= 2 * t.Bolt_core.Heatmap.bucket);
  (* csv shape: rows lines, cols columns *)
  let csv = Bolt_core.Heatmap.to_csv t in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "csv rows" 8 (List.length lines)

(* Disassemble every function of a rewritten binary: all bytes must decode
   and all direct intra-function branch targets must land on instruction
   boundaries. *)
let check_decodable (exe : Bolt_obj.Objfile.t) =
  List.iter
    (fun (s : Bolt_obj.Types.symbol) ->
      if s.sym_kind = Bolt_obj.Types.Func && s.sym_size > 0 then begin
        let sec =
          List.find
            (fun (sec : Bolt_obj.Types.section) ->
              s.sym_value >= sec.sec_addr && s.sym_value < sec.sec_addr + sec.sec_size)
            exe.Bolt_obj.Objfile.sections
        in
        let starts = Hashtbl.create 64 in
        let pos = ref (s.sym_value - sec.sec_addr) in
        let stop = !pos + s.sym_size in
        (try
           while !pos < stop do
             Hashtbl.replace starts !pos ();
             let _, sz = Bolt_isa.Codec.decode sec.sec_data !pos in
             pos := !pos + sz
           done
         with Bolt_isa.Codec.Decode_error p ->
           Alcotest.failf "%s: decode error at %d" s.sym_name p);
        (* branch targets on boundaries *)
        let pos = ref (s.sym_value - sec.sec_addr) in
        while !pos < stop do
          let i, sz = Bolt_isa.Codec.decode sec.sec_data !pos in
          let next = !pos + sz in
          (match i with
          | Bolt_isa.Insn.Jmp (Bolt_isa.Insn.Imm rel, _)
          | Bolt_isa.Insn.Jcc (_, Bolt_isa.Insn.Imm rel, _) ->
              let t = next + rel in
              let fstart = s.sym_value - sec.sec_addr in
              if t >= fstart && t < stop then
                Alcotest.(check bool)
                  (Printf.sprintf "%s: target %d on boundary" s.sym_name t)
                  true (Hashtbl.mem starts t)
          | _ -> ());
          pos := next
        done
      end)
    exe.Bolt_obj.Objfile.symbols

let test_rewritten_binary_decodes () =
  let exe =
    compile
      [
        ( "m",
          {| fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
             fn pick(x) {
               switch (x % 6) {
                 case 0: { return 1; } case 1: { return 2; } case 2: { return 3; }
                 case 3: { return 4; } case 4: { return 5; } default: { return 0; }
               }
             }
             fn main() {
               var i = 0;
               var s = 0;
               while (i < 300) { s = s + fib(i % 10) + pick(i); i = i + 1; }
               out s;
               return 0;
             } |} );
      ]
  in
  let sampling =
    { Machine.event = Machine.Ev_cycles; period = 211; lbr = true; precise = true }
  in
  let o = Machine.run ~sampling exe ~input:[||] in
  let prof = Bolt_profile.Perf2bolt.convert exe (Option.get o.Machine.profile) in
  let exe', _ = Bolt_core.Bolt.optimize exe prof in
  check_decodable exe'

let test_dyno_stats_zero_on_empty_profile () =
  let exe = compile [ ("m", {| fn main() { out 1; return 0; } |}) ] in
  let ctx = build_ctx exe in
  let st = Bolt_core.Dyno_stats.collect ctx in
  Alcotest.(check int) "no weighted insns" 0 st.Bolt_core.Dyno_stats.executed_instructions

let test_report_bad_layout_detects () =
  (* construct a function whose ORIGINAL layout has a never-executed block
     between two hot ones: classic cold-in-the-middle *)
  let exe =
    compile
      [
        ( "m",
          {| global acc = 0;
             fn work(x) {
               if (x % 1000 == 999) { acc = acc + x * 31; acc = acc * 2; acc = acc - x; }
               else { acc = acc + 1; }
               return acc;
             }
             fn main() { var i = 0; while (i < 400) { acc = work(i); i = i + 1; } out acc; return 0; } |}
        );
      ]
  in
  let sampling =
    { Machine.event = Machine.Ev_cycles; period = 101; lbr = true; precise = true }
  in
  let o = Machine.run ~sampling exe ~input:[||] in
  let prof = Bolt_profile.Perf2bolt.convert exe (Option.get o.Machine.profile) in
  let ctx = build_ctx exe in
  ignore (Bolt_core.Match_profile.attach ctx prof);
  Bolt_core.Match_profile.finalize ctx ~lbr:true ~trust_fallthrough:true;
  let findings = Bolt_core.Report.bad_layout ctx ~top:10 in
  Alcotest.(check bool) "found at least one" true (List.length findings >= 1)

let test_sctc_straightens_jump_chains () =
  let exe =
    compile
      ~options:{ Driver.default_options with opt_level = 1 }
      [
        ( "m",
          {| fn main() {
               var i = 0;
               var s = 0;
               while (i < 100) {
                 if (i % 2 == 0) { s = s + 1; } else { s = s + 2; }
                 i = i + 1;
               }
               out s;
               return 0;
             } |} );
      ]
  in
  let ctx = build_ctx exe in
  (* run sctc; it must not break the CFG *)
  Bolt_core.Passes_simple.sctc ctx;
  Bolt_core.Passes_simple.uce ctx;
  let fb = Option.get (Bolt_core.Context.func ctx "main") in
  Alcotest.(check bool) "entry survives" true
    (Hashtbl.mem fb.Bolt_core.Bfunc.blocks fb.Bolt_core.Bfunc.entry)

let suite =
  [
    Alcotest.test_case "liveness" `Quick test_liveness_callee_saved;
    Alcotest.test_case "heatmap-build" `Quick test_heatmap_build_and_prefix;
    Alcotest.test_case "rewritten-decodes" `Quick test_rewritten_binary_decodes;
    Alcotest.test_case "dyno-empty" `Quick test_dyno_stats_zero_on_empty_profile;
    Alcotest.test_case "report-bad-layout" `Quick test_report_bad_layout_detects;
    Alcotest.test_case "sctc-safe" `Quick test_sctc_straightens_jump_chains;
  ]
