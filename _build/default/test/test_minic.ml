(* End-to-end compiler tests: MiniC source -> executable -> simulator,
   checking program OUTPUT (and thus the whole toolchain's correctness). *)

open Bolt_minic

let run_source ?(options = Driver.default_options) ?(input = [||]) src =
  let r = Driver.compile ~options [ ("m", src) ] in
  Bolt_sim.Machine.run r.exe ~input

let outputs ?options ?input src = (run_source ?options ?input src).Bolt_sim.Machine.output

let check_out name src expected =
  Alcotest.(check (list int)) name expected (outputs src)

let test_arith () =
  check_out "arith"
    {| fn main() { out 1 + 2 * 3; out (10 - 4) / 2; out 7 % 3; out 1 << 4; out -5; } |}
    [ 7; 3; 1; 16; -5 ]

let test_vars_and_if () =
  check_out "if"
    {| fn main() {
         var x = 10;
         if (x > 5) { out 1; } else { out 2; }
         if (x < 5) { out 3; } else { out 4; }
         if (x == 10 && x > 0) { out 5; }
         if (x != 10 || x >= 10) { out 6; }
       } |}
    [ 1; 4; 5; 6 ]

let test_while_loop () =
  check_out "while"
    {| fn main() {
         var i = 0;
         var sum = 0;
         while (i < 10) { sum = sum + i; i = i + 1; }
         out sum;
       } |}
    [ 45 ]

let test_break_continue () =
  check_out "break/continue"
    {| fn main() {
         var i = 0;
         var sum = 0;
         while (i < 100) {
           i = i + 1;
           if (i % 2 == 0) { continue; }
           if (i > 10) { break; }
           sum = sum + i;
         }
         out sum;
       } |}
    [ 1 + 3 + 5 + 7 + 9 ]

let test_calls () =
  check_out "calls"
    {| fn add(a, b) { return a + b; }
       fn twice(x) { return add(x, x); }
       fn main() { out twice(21); out add(1, add(2, 3)); } |}
    [ 42; 6 ]

let test_recursion () =
  check_out "recursion"
    {| fn fib(n) {
         if (n < 2) { return n; }
         return fib(n - 1) + fib(n - 2);
       }
       fn main() { out fib(15); } |}
    [ 610 ]

let test_globals_arrays () =
  check_out "globals"
    {| global g = 5;
       array a[10];
       fn main() {
         g = g + 1;
         out g;
         var i = 0;
         while (i < 10) { a[i] = i * i; i = i + 1; }
         out a[7];
       } |}
    [ 6; 49 ]

let test_const_table () =
  check_out "const table"
    {| const t = { 10, 20, 30, 40 };
       fn main() { out t[2]; var i = 1; out t[i]; } |}
    [ 30; 20 ]

let test_switch_dense () =
  check_out "switch dense"
    {| fn classify(x) {
         switch (x) {
           case 0: { return 100; }
           case 1: { return 101; }
           case 2: { return 102; }
           case 3: { return 103; }
           case 5: { return 105; }
           default: { return -1; }
         }
       }
       fn main() {
         out classify(0); out classify(3); out classify(4);
         out classify(5); out classify(99); out classify(-7);
       } |}
    [ 100; 103; -1; 105; -1; -1 ]

let test_switch_sparse () =
  check_out "switch sparse"
    {| fn f(x) {
         switch (x) {
           case 1: { return 11; }
           case 1000: { return 12; }
           case 2000000: { return 13; }
           default: { return 0; }
         }
       }
       fn main() { out f(1); out f(1000); out f(2000000); out f(5); } |}
    [ 11; 12; 13; 0 ]

let test_function_pointers () =
  check_out "function pointers"
    {| fn inc(x) { return x + 1; }
       fn dec(x) { return x - 1; }
       fn main() {
         var p = &inc;
         var q = &dec;
         out *p(10);
         out *q(10);
       } |}
    [ 11; 9 ]

let test_exceptions () =
  check_out "exceptions"
    {| fn may_throw(x) {
         if (x > 10) { throw x; }
         return x * 2;
       }
       fn main() {
         try { out may_throw(4); out may_throw(20); out 999; }
         catch (e) { out e; }
         out 7;
       } |}
    [ 8; 20; 7 ]

let test_exceptions_nested () =
  check_out "nested exceptions"
    {| fn deep(x) { if (x == 3) { throw 33; } return x; }
       fn mid(x) { return deep(x) + 100; }
       fn main() {
         try {
           out mid(1);
           try { out mid(3); } catch (e) { out e + 1; }
           out mid(2);
         } catch (e2) { out 555; }
         out 0;
       } |}
    [ 101; 34; 102; 0 ]

let test_uncaught () =
  let o = run_source {| fn main() { throw 13; } |} in
  Alcotest.(check bool) "uncaught flagged" true o.Bolt_sim.Machine.uncaught_exception

let test_input () =
  let o =
    run_source ~input:[| 3; 4; 5 |]
      {| fn main() { var s = 0; var x = in(); while (x != 0) { s = s + x; x = in(); } out s; } |}
  in
  Alcotest.(check (list int)) "input sum" [ 12 ] o.Bolt_sim.Machine.output

let test_exit_code () =
  let o = run_source {| fn main() { return 42; } |} in
  Alcotest.(check int) "exit" 42 o.Bolt_sim.Machine.exit_code

let opt_variants =
  [
    ("O0", { Driver.default_options with opt_level = 0; align_loops = false });
    ("O1", { Driver.default_options with opt_level = 1 });
    ("O2", Driver.default_options);
    ("O2-lto", { Driver.default_options with lto = true });
    ("O2-noplt", { Driver.default_options with plt_calls = false });
    ("O2-absjt", { Driver.default_options with pic_jump_tables = false });
    ("O2-nofs", { Driver.default_options with function_sections = false });
  ]

(* One moderately spicy program that exercises everything, compiled under
   every option combination: results must agree. *)
let mixed_program =
  {| global acc = 0;
     array buf[32];
     const weights = { 3, 1, 4, 1, 5, 9, 2, 6 };
     extern fn helper(x);
     fn collatz(n) {
       var steps = 0;
       while (n != 1) {
         if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
         steps = steps + 1;
       }
       return steps;
     }
     inline fn square(x) { return x * x; }
     fn dispatch(k, v) {
       switch (k) {
         case 0: { return v + 1; }
         case 1: { return v * 2; }
         case 2: { return square(v); }
         case 3: { return collatz(v); }
         case 4: { return helper(v); }
         default: { return 0; }
       }
     }
     fn main() {
       var i = 0;
       while (i < 8) {
         buf[i] = dispatch(i % 5, weights[i % 8] + i);
         acc = acc + buf[i];
         i = i + 1;
       }
       out acc;
       try { if (acc > 10) { throw acc; } } catch (e) { out e + 1000; }
       var p = &collatz;
       out *p(27);
     } |}

let helper_module = {| fn helper(x) { return x * 3 + 1; } |}

let test_mixed_all_options () =
  let results =
    List.map
      (fun (name, options) ->
        let r = Driver.compile ~options [ ("m", mixed_program); ("h", helper_module) ] in
        let o = Bolt_sim.Machine.run r.exe ~input:[||] in
        (name, o.Bolt_sim.Machine.output))
      opt_variants
  in
  match results with
  | [] -> ()
  | (_, expected) :: _ ->
      List.iter
        (fun (name, got) -> Alcotest.(check (list int)) name expected got)
        results

let test_separate_modules_plt () =
  let m1 =
    {| extern fn mul2(x);
       fn main() { out mul2(21); } |}
  in
  let m2 = {| fn mul2(x) { return x * 2; } |} in
  let r = Driver.compile [ ("a", m1); ("b", m2) ] in
  (* a PLT stub must exist for the cross-module call *)
  Alcotest.(check bool)
    "plt stub" true
    (Bolt_obj.Objfile.find_symbol r.exe "mul2$plt" <> None);
  let o = Bolt_sim.Machine.run r.exe ~input:[||] in
  Alcotest.(check (list int)) "plt call result" [ 42 ] o.Bolt_sim.Machine.output

let test_instrumented_build_runs () =
  let src =
    {| fn main() {
         var i = 0;
         var s = 0;
         while (i < 100) { if (i % 3 == 0) { s = s + i; } i = i + 1; }
         out s;
       } |}
  in
  let options = { Driver.default_options with pgo = Driver.Instrument } in
  let r = Driver.compile ~options [ ("m", src) ] in
  Alcotest.(check bool) "has mapping" true (r.mapping <> None);
  let o = Bolt_sim.Machine.run r.exe ~input:[||] in
  Alcotest.(check (list int)) "instrumented output" [ 1683 ] o.Bolt_sim.Machine.output;
  (* counters must be live in memory: rerun and extract them *)
  let sym = Bolt_obj.Objfile.find_symbol r.exe Pgo.counters_symbol in
  Alcotest.(check bool) "counter symbol" true (sym <> None)

let suite =
  [
    Alcotest.test_case "arith" `Quick test_arith;
    Alcotest.test_case "if/else" `Quick test_vars_and_if;
    Alcotest.test_case "while" `Quick test_while_loop;
    Alcotest.test_case "break-continue" `Quick test_break_continue;
    Alcotest.test_case "calls" `Quick test_calls;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "globals-arrays" `Quick test_globals_arrays;
    Alcotest.test_case "const-table" `Quick test_const_table;
    Alcotest.test_case "switch-dense" `Quick test_switch_dense;
    Alcotest.test_case "switch-sparse" `Quick test_switch_sparse;
    Alcotest.test_case "function-pointers" `Quick test_function_pointers;
    Alcotest.test_case "exceptions" `Quick test_exceptions;
    Alcotest.test_case "exceptions-nested" `Quick test_exceptions_nested;
    Alcotest.test_case "uncaught-exception" `Quick test_uncaught;
    Alcotest.test_case "input-tape" `Quick test_input;
    Alcotest.test_case "exit-code" `Quick test_exit_code;
    Alcotest.test_case "mixed-all-option-combos" `Quick test_mixed_all_options;
    Alcotest.test_case "plt-cross-module" `Quick test_separate_modules_plt;
    Alcotest.test_case "instrumented-build" `Quick test_instrumented_build_runs;
  ]
