(* MiniC front-end/middle-end unit tests: lexer, parser, sema errors,
   IR cleanup invariants, PGO instrumentation and the inliner. *)

open Bolt_minic

let parse src = Parser.parse_module ~name:"t" ~file:"t.mc" src

let test_lexer_tokens () =
  let lx = Lexer.create ~file:"t" "fn f(x) { return x <= 42; } // comment" in
  let rec collect acc =
    match Lexer.token lx with
    | Lexer.EOF -> List.rev acc
    | t ->
        Lexer.advance lx;
        collect (Lexer.token_desc t :: acc)
  in
  Alcotest.(check (list string)) "tokens"
    [ "fn"; "f"; "("; "x"; ")"; "{"; "return"; "x"; "<="; "42"; ";"; "}" ]
    (collect [])

let test_lexer_error () =
  let lx = Lexer.create ~file:"t" "fn f() { @ }" in
  match
    let rec go () =
      match Lexer.token lx with
      | Lexer.EOF -> ()
      | _ ->
          Lexer.advance lx;
          go ()
    in
    go ()
  with
  | () -> Alcotest.fail "expected Lex_error"
  | exception Lexer.Lex_error _ -> ()

let test_parser_precedence () =
  let m = parse "fn main() { out 1 + 2 * 3 == 7 && 1 < 2; }" in
  match m.Ast.m_decls with
  | [ Ast.Dfunc f ] -> (
      match f.Ast.fn_body with
      | [ { sk = Ast.Sout (Ast.Ebin (Ast.Bland, Ast.Ebin (Ast.Beq, _, _), Ast.Ebin (Ast.Blt, _, _))); _ } ] ->
          ()
      | _ -> Alcotest.fail "unexpected parse")
  | _ -> Alcotest.fail "unexpected decls"

let test_parser_error_position () =
  match parse "fn main() {\n  var x = ;\n}" with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Parser.Parse_error (_, line) -> Alcotest.(check int) "line" 2 line

let sema_fails src =
  match Sema.check [ parse src ] with
  | _ -> Alcotest.fail "expected Sema_error"
  | exception Sema.Sema_error _ -> ()

let test_sema_errors () =
  sema_fails "fn main() { out y; }";
  sema_fails "fn main() { foo(1); }";
  sema_fails "fn f(a) { return a; } fn main() { out f(1, 2); }";
  sema_fails "fn f(a,b,c,d,e) { return a; } fn main() { out f(1,2,3,4,5); }";
  sema_fails "fn main() { break; }";
  sema_fails "const t = { 1, 2 }; fn main() { t[0] = 5; }";
  sema_fails "fn f() { return 1; } fn f() { return 2; } fn main() { out f(); }";
  sema_fails "fn notmain() { return 0; }" (* no main *)

let test_sema_externals () =
  let m = parse "fn main() { out asmfn(1); }" in
  (match Sema.check [ m ] with
  | _ -> Alcotest.fail "unknown function should fail"
  | exception Sema.Sema_error _ -> ());
  ignore (Sema.check ~externals:[ ("asmfn", 1) ] [ m ])

let lower src =
  let m = parse src in
  let genv = Sema.check [ m ] in
  Lower.lower_program genv [ m ]

(* IR invariant: every terminator's targets are blocks of the function. *)
let check_cfg_closed (f : Ir.func) =
  let ok = ref true in
  List.iter
    (fun (_, b) ->
      List.iter
        (fun s -> if not (List.mem_assoc s f.Ir.f_blocks) then ok := false)
        (Ir.successors b.Ir.term);
      match b.Ir.lp with
      | Some l -> if not (List.mem_assoc l f.Ir.f_blocks) then ok := false
      | None -> ())
    f.Ir.f_blocks;
  !ok

let tricky_src =
  {| global g = 0;
     fn main() {
       var i = 0;
       while (i < 10) {
         if (i % 2 == 0 && i > 2 || i == 1) { g = g + 1; } else { g = g + 2; }
         switch (i % 4) {
           case 0: { g = g * 2; }
           case 1: { g = g - 1; }
           case 2: { if (g > 100) { break; } g = g + 3; }
           default: { continue; }
         }
         try { if (g % 7 == 0) { throw g; } } catch (e) { g = e + 1; }
         i = i + 1;
       }
       out g;
     } |}

let test_lower_cfg_closed () =
  let p = lower tricky_src in
  List.iter
    (fun f -> Alcotest.(check bool) (f.Ir.f_name ^ " closed") true (check_cfg_closed f))
    p.Ir.p_funcs

let test_cleanup_preserves_closure () =
  let p = lower tricky_src in
  Irpass.cleanup p;
  List.iter
    (fun f ->
      Alcotest.(check bool) "still closed" true (check_cfg_closed f);
      (* entry still present *)
      Alcotest.(check bool) "entry block" true (List.mem_assoc f.Ir.f_entry f.Ir.f_blocks))
    p.Ir.p_funcs

let test_constant_folding () =
  let p = lower "fn main() { var x = 2 + 3 * 4; if (x == 14) { out 1; } else { out 2; } }" in
  Irpass.cleanup p;
  let main = List.hd p.Ir.p_funcs in
  (* the branch must be folded away: only the out 1 path remains *)
  let has_branch =
    List.exists
      (fun (_, b) -> match b.Ir.term with Ir.Tbr _ -> true | _ -> false)
      main.Ir.f_blocks
  in
  Alcotest.(check bool) "branch folded" false has_branch

let test_instrumentation_counts_edges () =
  let p = lower "fn main() { var i = 0; while (i < 5) { i = i + 1; } out i; }" in
  Irpass.cleanup p;
  let mapping = Pgo.instrument p in
  Alcotest.(check bool) "counters assigned" true (Pgo.num_counters mapping >= 2);
  (* every counter is attached somewhere in the IR *)
  let found = Hashtbl.create 16 in
  List.iter
    (fun f ->
      List.iter
        (fun (_, b) ->
          List.iter
            (fun (i, _) ->
              match i with Ir.Iprofcnt k -> Hashtbl.replace found k () | _ -> ())
            b.Ir.insns)
        f.Ir.f_blocks)
    p.Ir.p_funcs;
  List.iter
    (fun (_, _, _, k) ->
      Alcotest.(check bool) (Printf.sprintf "counter %d placed" k) true (Hashtbl.mem found k))
    mapping

let test_inline_scales_profile () =
  let src =
    {| fn tiny(x) { if (x > 0) { return 1; } return 2; }
       fn main() { out tiny(5); } |}
  in
  let p = lower src in
  Irpass.cleanup p;
  (* annotate a fake profile on tiny and on main's entry *)
  let tiny = List.find (fun f -> f.Ir.f_name = "tiny") p.Ir.p_funcs in
  let edges = List.concat_map (fun (l, b) -> List.map (fun s -> (l, s)) (Ir.successors b.Ir.term)) tiny.Ir.f_blocks in
  List.iter (fun (a, b) -> Hashtbl.replace tiny.Ir.f_edge_counts (a, b) 100) edges;
  let n = Inline.run ~cross_module:true ~decisions:{ Inline.default_decisions with small_threshold = 50 } p in
  Alcotest.(check bool) "inlined" true (n >= 1);
  let main = List.find (fun f -> f.Ir.f_name = "main") p.Ir.p_funcs in
  Alcotest.(check bool) "main grew" true (List.length main.Ir.f_blocks > 1)

let test_pgo_profile_files () =
  let prof = [ ("f", 0, 1, 42); ("g", 2, 3, 7) ] in
  let path = Filename.temp_file "bolt" ".edges" in
  Pgo.save_profile path prof;
  let p = Pgo.load_profile path in
  Sys.remove path;
  Alcotest.(check bool) "roundtrip" true (p = prof)

let suite =
  [
    Alcotest.test_case "lexer-tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer-error" `Quick test_lexer_error;
    Alcotest.test_case "parser-precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser-error-line" `Quick test_parser_error_position;
    Alcotest.test_case "sema-errors" `Quick test_sema_errors;
    Alcotest.test_case "sema-externals" `Quick test_sema_externals;
    Alcotest.test_case "lower-cfg-closed" `Quick test_lower_cfg_closed;
    Alcotest.test_case "cleanup-closed" `Quick test_cleanup_preserves_closure;
    Alcotest.test_case "constant-folding" `Quick test_constant_folding;
    Alcotest.test_case "instrumentation" `Quick test_instrumentation_counts_edges;
    Alcotest.test_case "inline" `Quick test_inline_scales_profile;
    Alcotest.test_case "pgo-files" `Quick test_pgo_profile_files;
  ]
