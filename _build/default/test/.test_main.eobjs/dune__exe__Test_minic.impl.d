test/test_minic.ml: Alcotest Bolt_minic Bolt_obj Bolt_sim Driver List Pgo
