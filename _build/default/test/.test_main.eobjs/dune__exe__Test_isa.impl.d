test/test_isa.ml: Alcotest Bolt_isa Bytes Codec Cond Insn QCheck QCheck_alcotest Reg
