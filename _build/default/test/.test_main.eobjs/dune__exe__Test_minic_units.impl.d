test/test_minic_units.ml: Alcotest Ast Bolt_minic Filename Hashtbl Inline Ir Irpass Lexer List Lower Parser Pgo Printf Sema Sys
