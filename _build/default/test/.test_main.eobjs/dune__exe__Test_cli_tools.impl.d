test/test_cli_tools.ml: Alcotest Array Bolt_core Bolt_minic Bolt_obj Bolt_profile Bolt_sim Filename List Option Sys
