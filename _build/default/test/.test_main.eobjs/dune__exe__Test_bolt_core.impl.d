test/test_bolt_core.ml: Alcotest Array Bolt_asm Bolt_core Bolt_isa Bolt_minic Bolt_obj Bolt_profile Bolt_sim Driver Hashtbl Inline Insn List Option Reg
