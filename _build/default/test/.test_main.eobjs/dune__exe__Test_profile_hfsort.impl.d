test/test_profile_hfsort.ml: Alcotest Bolt_hfsort Bolt_minic Bolt_obj Bolt_profile Bolt_sim Filename Hashtbl List Option Printf QCheck QCheck_alcotest Sys
