test/test_sim.ml: Alcotest Bolt_minic Bolt_profile Bolt_sim Bpred Cache Filename Hashtbl Machine Memory Option QCheck QCheck_alcotest Sys
