test/test_obj.ml: Alcotest Bolt_isa Bolt_obj Buf Bytes List Objfile QCheck QCheck_alcotest String Types
