test/test_fuzz.ml: Alcotest Bolt_core Bolt_minic Bolt_profile Bolt_sim Bolt_workloads List Printf
