test/test_pipeline.ml: Alcotest Bolt_minic Bolt_pipeline Bolt_sim Bolt_workloads List
