test/test_asm_link.ml: Alcotest Bolt_asm Bolt_isa Bolt_linker Bolt_obj Buf Bytes Codec Cond Insn List Objfile Option Reg Types
