test/test_dataflow_emit.ml: Alcotest Bolt_core Bolt_isa Bolt_minic Bolt_obj Bolt_profile Bolt_sim Driver Hashtbl List Option Printf String
