(* Simulator unit tests: memory, caches, branch prediction, timing
   counters, LBR sampling, unwinding. *)

open Bolt_sim

let test_memory_aligned () =
  let m = Memory.create () in
  Memory.write64 m 0x1000 123456789;
  Alcotest.(check int) "read back" 123456789 (Memory.read64 m 0x1000);
  Memory.write64 m 0x1000 (-42);
  Alcotest.(check int) "negative" (-42) (Memory.read64 m 0x1000)

let test_memory_unaligned_cross_page () =
  let m = Memory.create () in
  let addr = 4096 - 3 in
  Memory.write64 m addr 0x1122334455667788;
  Alcotest.(check int) "cross-page" 0x1122334455667788 (Memory.read64 m addr);
  (* bytes land on both pages *)
  Alcotest.(check int) "low byte" 0x88 (Memory.read8 m addr);
  Alcotest.(check int) "high byte" 0x11 (Memory.read8 m (addr + 7))

let memory_prop =
  QCheck.Test.make ~name:"memory write/read roundtrip" ~count:500
    (QCheck.make QCheck.Gen.(pair (int_range 0 1_000_000) (int_range min_int max_int)))
    (fun (addr, v) ->
      let m = Memory.create () in
      Memory.write64 m addr v;
      Memory.read64 m addr = v)

let test_cache_basic () =
  let c = Cache.create ~size:1024 ~line:64 ~assoc:2 in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "hit" true (Cache.access c 0);
  Alcotest.(check bool) "same line hit" true (Cache.access c 63);
  Alcotest.(check bool) "next line miss" false (Cache.access c 64)

let test_cache_lru () =
  (* 2-way set: three conflicting lines evict the least recently used *)
  let c = Cache.create ~size:1024 ~line:64 ~assoc:2 in
  let set_stride = 64 * (1024 / 64 / 2) in
  ignore (Cache.access c 0);
  ignore (Cache.access c set_stride);
  ignore (Cache.access c 0);
  (* evicts set_stride, not 0 *)
  ignore (Cache.access c (2 * set_stride));
  Alcotest.(check bool) "0 survives" true (Cache.access c 0);
  Alcotest.(check bool) "stride evicted" false (Cache.access c set_stride)

let test_bpred_direction () =
  let p = Bpred.create () in
  (* a branch always taken becomes predicted after warm-up *)
  let misses = ref 0 in
  for _ = 1 to 100 do
    if Bpred.cond_branch p 0x400100 true then incr misses
  done;
  Alcotest.(check bool) "learns always-taken" true (!misses <= 2)

let test_bpred_ras () =
  let p = Bpred.create () in
  Bpred.push_ras p 100;
  Bpred.push_ras p 200;
  Alcotest.(check bool) "pop 200" false (Bpred.pop_ras p 200);
  Alcotest.(check bool) "pop 100" false (Bpred.pop_ras p 100);
  Alcotest.(check bool) "underflow mispredicts" true (Bpred.pop_ras p 300)

let test_btb_indirect () =
  let p = Bpred.create () in
  ignore (Bpred.taken_target p 0x400500 1000);
  Alcotest.(check bool) "stable target hits" false (Bpred.taken_target p 0x400500 1000);
  Alcotest.(check bool) "changed target misses" true (Bpred.taken_target p 0x400500 2000)

(* ---- end-to-end timing/counters on a compiled program ---- *)

let compile src = (Bolt_minic.Driver.compile [ ("m", src) ]).Bolt_minic.Driver.exe

let test_counters_sane () =
  let exe =
    compile
      {| fn main() {
           var i = 0;
           while (i < 1000) { i = i + 1; }
           out i;
           return 0;
         } |}
  in
  let o = Machine.run exe ~input:[||] in
  let c = o.Machine.counters in
  Alcotest.(check bool) "instructions counted" true (c.Machine.instructions > 4000);
  Alcotest.(check bool) "cycles >= insns/4" true
    (Machine.cycles c >= c.Machine.instructions / 4);
  Alcotest.(check bool) "cond branches" true (c.Machine.cond_branches >= 1000);
  Alcotest.(check bool) "taken < total transfers sane" true
    (c.Machine.taken_branches > 900)

let test_sampling_aggregates () =
  let exe =
    compile
      {| fn spin(n) { var j = 0; while (j < n) { j = j + 1; } return j; }
         fn main() { var i = 0; while (i < 500) { i = i + spin(20) / 20; } out i; return 0; } |}
  in
  let sampling =
    { Machine.event = Machine.Ev_instructions; period = 97; lbr = true; precise = true }
  in
  let o = Machine.run ~sampling exe ~input:[||] in
  match o.Machine.profile with
  | None -> Alcotest.fail "no profile"
  | Some p ->
      Alcotest.(check bool) "samples taken" true (p.Machine.rp_samples > 50);
      Alcotest.(check bool) "branch records" true (Hashtbl.length p.Machine.rp_branches > 3);
      Alcotest.(check bool) "fallthrough traces" true (Hashtbl.length p.Machine.rp_traces > 0);
      (* LBR mode: no plain IP samples *)
      Alcotest.(check int) "no ip samples in lbr mode" 0 (Hashtbl.length p.Machine.rp_ips)

let test_sampling_non_lbr () =
  let exe =
    compile {| fn main() { var i = 0; while (i < 2000) { i = i + 1; } out i; return 0; } |}
  in
  let sampling =
    { Machine.event = Machine.Ev_cycles; period = 53; lbr = false; precise = false }
  in
  let o = Machine.run ~sampling exe ~input:[||] in
  match o.Machine.profile with
  | None -> Alcotest.fail "no profile"
  | Some p ->
      Alcotest.(check bool) "ip samples present" true (Hashtbl.length p.Machine.rp_ips > 0);
      Alcotest.(check int) "no branch records" 0 (Hashtbl.length p.Machine.rp_branches)

let test_heatmap_collection () =
  let exe =
    compile {| fn main() { var i = 0; while (i < 100) { i = i + 1; } out i; return 0; } |}
  in
  let o = Machine.run ~heatmap:true exe ~input:[||] in
  match o.Machine.heat with
  | Some h -> Alcotest.(check bool) "lines touched" true (Hashtbl.length h > 0)
  | None -> Alcotest.fail "no heat"

let test_fuel_exhaustion () =
  let exe = compile {| fn main() { var i = 1; while (i > 0) { i = i + 1; } return 0; } |} in
  match Machine.run ~fuel:10_000 exe ~input:[||] with
  | _ -> Alcotest.fail "expected Sim_error"
  | exception Machine.Sim_error _ -> ()

let test_deterministic () =
  let exe =
    compile
      {| fn main() { var i = 0; var s = 7; while (i < 3000) { s = s * 31 + i; i = i + 1; } out s; return 0; } |}
  in
  let a = Machine.run exe ~input:[||] in
  let b = Machine.run exe ~input:[||] in
  Alcotest.(check bool) "same cycles" true
    (Machine.cycles a.Machine.counters = Machine.cycles b.Machine.counters);
  Alcotest.(check bool) "same output" true (a.Machine.output = b.Machine.output)

let test_samples_file_roundtrip () =
  let exe =
    compile {| fn main() { var i = 0; while (i < 3000) { i = i + 1; } out i; return 0; } |}
  in
  let sampling =
    { Machine.event = Machine.Ev_cycles; period = 101; lbr = true; precise = true }
  in
  let o = Machine.run ~sampling exe ~input:[||] in
  let p = Option.get o.Machine.profile in
  let path = Filename.temp_file "bolt" ".bprf" in
  Bolt_profile.Samples.save path p;
  let p' = Bolt_profile.Samples.load path in
  Sys.remove path;
  Alcotest.(check int) "samples" p.Machine.rp_samples p'.Machine.rp_samples;
  Alcotest.(check int) "branches" (Hashtbl.length p.Machine.rp_branches)
    (Hashtbl.length p'.Machine.rp_branches);
  Alcotest.(check int) "traces" (Hashtbl.length p.Machine.rp_traces)
    (Hashtbl.length p'.Machine.rp_traces)

let suite =
  [
    Alcotest.test_case "memory-aligned" `Quick test_memory_aligned;
    Alcotest.test_case "memory-cross-page" `Quick test_memory_unaligned_cross_page;
    QCheck_alcotest.to_alcotest memory_prop;
    Alcotest.test_case "cache-basic" `Quick test_cache_basic;
    Alcotest.test_case "cache-lru" `Quick test_cache_lru;
    Alcotest.test_case "bpred-direction" `Quick test_bpred_direction;
    Alcotest.test_case "bpred-ras" `Quick test_bpred_ras;
    Alcotest.test_case "btb-indirect" `Quick test_btb_indirect;
    Alcotest.test_case "counters-sane" `Quick test_counters_sane;
    Alcotest.test_case "sampling-lbr" `Quick test_sampling_aggregates;
    Alcotest.test_case "sampling-non-lbr" `Quick test_sampling_non_lbr;
    Alcotest.test_case "heatmap" `Quick test_heatmap_collection;
    Alcotest.test_case "fuel" `Quick test_fuel_exhaustion;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "samples-roundtrip" `Quick test_samples_file_roundtrip;
  ]
