(* ISA encode/decode properties and unit checks. *)

open Bolt_isa

let reg_gen = QCheck.Gen.map Reg.of_int (QCheck.Gen.int_range 0 15)
let cond_gen = QCheck.Gen.map Cond.of_int (QCheck.Gen.int_range 0 5)

let alu_gen =
  QCheck.Gen.oneofl
    [
      Insn.Add; Insn.Sub; Insn.Mul; Insn.Div; Insn.Mod; Insn.And; Insn.Or; Insn.Xor;
      Insn.Shl; Insn.Shr; Insn.Cmp; Insn.Test;
    ]

let imm32_gen = QCheck.Gen.int_range (-0x4000_0000) 0x4000_0000
let imm8_gen = QCheck.Gen.int_range (-128) 127
let addr_gen = QCheck.Gen.int_range 0 0x7fff_ffff

(* Generator over all encodable instructions with resolved operands. *)
let insn_gen : Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      return Insn.Halt;
      map (fun n -> Insn.Nop n) (int_range 1 15);
      return Insn.Ret;
      return Insn.Repz_ret;
      map (fun r -> Insn.Push r) reg_gen;
      map (fun r -> Insn.Pop r) reg_gen;
      map2 (fun a b -> Insn.Mov_rr (a, b)) reg_gen reg_gen;
      map2 (fun r v -> Insn.Mov_ri (r, Insn.Imm v, Insn.I32)) reg_gen imm32_gen;
      map2 (fun r v -> Insn.Mov_ri (r, Insn.Imm v, Insn.I64)) reg_gen (int_range min_int max_int);
      map3 (fun d b o -> Insn.Load (d, b, o)) reg_gen reg_gen imm32_gen;
      map3 (fun b o s -> Insn.Store (b, o, s)) reg_gen imm32_gen reg_gen;
      map2 (fun r a -> Insn.Load_abs (r, Insn.Imm a)) reg_gen addr_gen;
      map2 (fun a r -> Insn.Store_abs (Insn.Imm a, r)) addr_gen reg_gen;
      map2 (fun r a -> Insn.Lea (r, Insn.Imm a)) reg_gen addr_gen;
      map2 (fun r a -> Insn.Lea_rel (r, Insn.Imm a)) reg_gen imm32_gen;
      map3 (fun op a b -> Insn.Alu_rr (op, a, b)) alu_gen reg_gen reg_gen;
      map3 (fun op r v -> Insn.Alu_ri (op, r, Insn.Imm v)) alu_gen reg_gen imm32_gen;
      map2 (fun c r -> Insn.Setcc (c, r)) cond_gen reg_gen;
      map (fun v -> Insn.Jmp (Insn.Imm v, Insn.W8)) imm8_gen;
      map (fun v -> Insn.Jmp (Insn.Imm v, Insn.W32)) imm32_gen;
      map2 (fun c v -> Insn.Jcc (c, Insn.Imm v, Insn.W8)) cond_gen imm8_gen;
      map2 (fun c v -> Insn.Jcc (c, Insn.Imm v, Insn.W32)) cond_gen imm32_gen;
      map (fun v -> Insn.Call (Insn.Imm v)) imm32_gen;
      map (fun r -> Insn.Call_ind r) reg_gen;
      map (fun a -> Insn.Call_mem (Insn.Imm a)) addr_gen;
      map (fun r -> Insn.Jmp_ind r) reg_gen;
      map (fun a -> Insn.Jmp_mem (Insn.Imm a)) addr_gen;
      map (fun r -> Insn.In_ r) reg_gen;
      map (fun r -> Insn.Out r) reg_gen;
      return Insn.Throw;
    ]

let arb_insn = QCheck.make ~print:Insn.to_string insn_gen

let roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip preserves insn and size" ~count:2000
    arb_insn (fun i ->
      let b = Codec.encode i in
      let i', sz = Codec.decode b 0 in
      Insn.equal i i' && sz = Insn.size i && sz = Bytes.length b)

let sizes_match_encoding =
  QCheck.Test.make ~name:"declared size equals encoded size" ~count:2000 arb_insn
    (fun i -> Bytes.length (Codec.encode i) = Insn.size i)

let branch_widths () =
  Alcotest.(check int) "jcc short" 2 (Insn.size (Insn.Jcc (Cond.Eq, Insn.Imm 5, Insn.W8)));
  Alcotest.(check int) "jcc long" 6 (Insn.size (Insn.Jcc (Cond.Eq, Insn.Imm 5, Insn.W32)));
  Alcotest.(check int) "jmp short" 2 (Insn.size (Insn.Jmp (Insn.Imm 5, Insn.W8)));
  Alcotest.(check int) "jmp long" 5 (Insn.size (Insn.Jmp (Insn.Imm 5, Insn.W32)));
  Alcotest.(check int) "repz ret" 2 (Insn.size Insn.Repz_ret);
  Alcotest.(check int) "ret" 1 (Insn.size Insn.Ret)

let rel8_overflow () =
  Alcotest.check_raises "rel8 overflow raises"
    (Codec.Encoding_overflow "i8")
    (fun () -> ignore (Codec.encode (Insn.Jmp (Insn.Imm 1000, Insn.W8))))

let unresolved_sym () =
  match Codec.encode (Insn.Call (Insn.Sym ("f", 0))) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let decode_error () =
  let b = Bytes.make 4 '\xff' in
  match Codec.decode b 0 with
  | _ -> Alcotest.fail "expected Decode_error"
  | exception Codec.Decode_error 0 -> ()

let cond_invert_involutive =
  QCheck.Test.make ~name:"cond invert is involutive" ~count:100
    (QCheck.make cond_gen) (fun c -> Cond.invert (Cond.invert c) = c)

let cond_invert_negates =
  QCheck.Test.make ~name:"inverted cond negates on all orderings" ~count:100
    (QCheck.make QCheck.Gen.(pair cond_gen (int_range (-2) 2)))
    (fun (c, ord) -> Cond.holds c ord = not (Cond.holds (Cond.invert c) ord))

let operand_kind_consistent =
  QCheck.Test.make ~name:"operand field lies within the encoding" ~count:2000 arb_insn
    (fun i ->
      match Codec.operand_kind i with
      | Codec.Op_none -> true
      | Codec.Op_abs (off, w) | Codec.Op_rel (off, w) ->
          off > 0 && off + w <= Insn.size i)

let suite =
  [
    Alcotest.test_case "branch-widths" `Quick branch_widths;
    Alcotest.test_case "rel8-overflow" `Quick rel8_overflow;
    Alcotest.test_case "unresolved-sym" `Quick unresolved_sym;
    Alcotest.test_case "decode-error" `Quick decode_error;
    QCheck_alcotest.to_alcotest roundtrip;
    QCheck_alcotest.to_alcotest sizes_match_encoding;
    QCheck_alcotest.to_alcotest cond_invert_involutive;
    QCheck_alcotest.to_alcotest cond_invert_negates;
    QCheck_alcotest.to_alcotest operand_kind_consistent;
  ]
