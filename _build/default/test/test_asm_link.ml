(* Assembler and linker unit tests: relaxation, relocations, PLT/GOT
   synthesis, linker ICF, function ordering, jump-table data resolution. *)

open Bolt_isa
open Bolt_asm.Asm
open Bolt_obj

let mk_func ?(global = true) ?(fde = true) name body =
  { af_name = name; af_global = global; af_align = 16; af_emit_fde = fde; af_body = body }

let link ?(options = Bolt_linker.Linker.default_options) objs =
  (* tests link arbitrary function sets; use the first function as entry *)
  let entry =
    List.concat_map (fun (o : Objfile.t) -> o.Objfile.symbols) objs
    |> List.find_map (fun (s : Types.symbol) ->
           if s.sym_kind = Types.Func && s.sym_name = "main" then Some "main" else None)
    |> Option.value
         ~default:
           (match
              List.concat_map (fun (o : Objfile.t) -> o.Objfile.symbols) objs
              |> List.find_opt (fun (s : Types.symbol) -> s.sym_kind = Types.Func)
            with
           | Some s -> s.sym_name
           | None -> "main")
  in
  Bolt_linker.Linker.link ~options:{ options with entry } objs

let test_relaxation_short () =
  (* a short forward branch stays 2 bytes *)
  let f =
    mk_func "f"
      [
        A_insn (Insn.Jmp (Insn.Sym ("l", 0), Insn.W8));
        A_insn (Insn.Nop 4);
        A_label "l";
        A_insn Insn.Ret;
      ]
  in
  let out = assemble_function ~base:0 f in
  Alcotest.(check int) "total size" (2 + 4 + 1) out.fo_size;
  let i, sz = Codec.decode out.fo_bytes 0 in
  Alcotest.(check int) "short jmp" 2 sz;
  match i with
  | Insn.Jmp (Insn.Imm 4, Insn.W8) -> ()
  | i -> Alcotest.failf "unexpected %s" (Insn.to_string i)

let test_relaxation_widens () =
  (* a branch over >127 bytes must widen to 5 bytes *)
  let nops = List.init 20 (fun _ -> A_insn (Insn.Nop 15)) in
  let f =
    mk_func "f"
      ((A_insn (Insn.Jmp (Insn.Sym ("l", 0), Insn.W8)) :: nops)
      @ [ A_label "l"; A_insn Insn.Ret ])
  in
  let out = assemble_function ~base:0 f in
  let i, sz = Codec.decode out.fo_bytes 0 in
  Alcotest.(check int) "widened" 5 sz;
  match i with
  | Insn.Jmp (Insn.Imm 300, Insn.W32) -> ()
  | i -> Alcotest.failf "unexpected %s" (Insn.to_string i)

let test_backward_branch () =
  let f =
    mk_func "f"
      [
        A_label "top";
        A_insn (Insn.Alu_ri (Insn.Sub, Reg.r1, Insn.Imm 1));
        A_insn (Insn.Jcc (Cond.Gt, Insn.Sym ("top", 0), Insn.W8));
        A_insn Insn.Ret;
      ]
  in
  let out = assemble_function ~base:0 f in
  let i, _ = Codec.decode out.fo_bytes 6 in
  match i with
  | Insn.Jcc (Cond.Gt, Insn.Imm -8, Insn.W8) -> ()
  | i -> Alcotest.failf "unexpected %s" (Insn.to_string i)

let test_cross_function_reloc () =
  let caller = mk_func "caller" [ A_insn (Insn.Call (Insn.Sym ("callee", 0))); A_insn Insn.Ret ] in
  let callee = mk_func "callee" [ A_insn Insn.Ret ] in
  let obj = assemble { empty_unit with u_funcs = [ caller; callee ] } in
  Alcotest.(check int) "one reloc" 1 (List.length obj.Objfile.relocs);
  let exe, _ = link [ obj ] in
  (* the call must land on callee's entry *)
  let text = Objfile.section_exn exe ".text" in
  let csym = Option.get (Objfile.find_symbol exe "caller") in
  let tsym = Option.get (Objfile.find_symbol exe "callee") in
  let i, sz = Codec.decode text.Types.sec_data (csym.sym_value - text.sec_addr) in
  (match i with
  | Insn.Call (Insn.Imm rel) ->
      Alcotest.(check int) "call target" tsym.sym_value (csym.sym_value + sz + rel)
  | i -> Alcotest.failf "unexpected %s" (Insn.to_string i))

let test_invisible_local_calls () =
  (* without function sections, intra-unit calls leave NO relocations *)
  let caller = mk_func "c2" [ A_insn (Insn.Call (Insn.Sym ("d2", 0))); A_insn Insn.Ret ] in
  let callee = mk_func "d2" [ A_insn Insn.Ret ] in
  let obj =
    assemble { empty_unit with u_funcs = [ caller; callee ]; u_function_sections = false }
  in
  Alcotest.(check int) "no relocs" 0 (List.length obj.Objfile.relocs);
  Alcotest.(check int) "single text section" 1
    (List.length (List.filter (fun s -> s.Types.sec_kind = Types.Text) obj.Objfile.sections))

let test_plt_and_got () =
  let caller =
    mk_func "main" [ A_insn (Insn.Call (Insn.Sym ("ext$plt", 0))); A_insn Insn.Ret ]
  in
  let ext = mk_func "ext" [ A_insn Insn.Ret ] in
  let o1 = assemble { empty_unit with u_funcs = [ caller ] } in
  let o2 = assemble { empty_unit with u_funcs = [ ext ] } in
  let exe, stats = link [ o1; o2 ] in
  Alcotest.(check int) "one stub" 1 stats.Bolt_linker.Linker.plt_stubs;
  let stub = Option.get (Objfile.find_symbol exe "ext$plt") in
  let got = Option.get (Objfile.find_symbol exe "ext$got") in
  let plt_sec = Objfile.section_exn exe ".plt" in
  let i, _ = Codec.decode plt_sec.sec_data (stub.sym_value - plt_sec.sec_addr) in
  (match i with
  | Insn.Jmp_mem (Insn.Imm slot) -> Alcotest.(check int) "stub slot" got.sym_value slot
  | i -> Alcotest.failf "unexpected %s" (Insn.to_string i));
  (* the GOT cell holds ext's address *)
  let got_sec = Objfile.section_exn exe ".got" in
  let r = Buf.reader (Bytes.to_string got_sec.sec_data) in
  r.Buf.pos <- got.sym_value - got_sec.sec_addr;
  let target = Buf.r_i64 r in
  let ext_sym = Option.get (Objfile.find_symbol exe "ext") in
  Alcotest.(check int) "got content" ext_sym.sym_value target

let test_undefined_symbol () =
  let caller = mk_func "main" [ A_insn (Insn.Call (Insn.Sym ("missing", 0))); A_insn Insn.Ret ] in
  let obj = assemble { empty_unit with u_funcs = [ caller ] } in
  match link [ obj ] with
  | _ -> Alcotest.fail "expected Link_error"
  | exception Bolt_linker.Linker.Link_error _ -> ()

let test_duplicate_symbol () =
  let f1 = mk_func "main" [ A_insn Insn.Ret ] in
  let f2 = mk_func "main" [ A_insn Insn.Halt ] in
  let o1 = assemble { empty_unit with u_funcs = [ f1 ] } in
  let o2 = assemble { empty_unit with u_funcs = [ f2 ] } in
  match link [ o1; o2 ] with
  | _ -> Alcotest.fail "expected Link_error"
  | exception Bolt_linker.Linker.Link_error _ -> ()

let test_linker_icf () =
  let body = [ A_insn (Insn.Alu_ri (Insn.Add, Reg.r1, Insn.Imm 3)); A_insn Insn.Ret ] in
  let main = mk_func "main" [ A_insn Insn.Ret ] in
  let f1 = mk_func "twin1" body in
  let f2 = mk_func "twin2" body in
  let f3 = mk_func "other" [ A_insn (Insn.Alu_ri (Insn.Add, Reg.r1, Insn.Imm 4)); A_insn Insn.Ret ] in
  let obj = assemble { empty_unit with u_funcs = [ main; f1; f2; f3 ] } in
  let exe, stats =
    link ~options:{ Bolt_linker.Linker.default_options with icf = true } [ obj ]
  in
  Alcotest.(check int) "one folded" 1 stats.Bolt_linker.Linker.icf_folded;
  let t1 = Option.get (Objfile.find_symbol exe "twin1") in
  let t2 = Option.get (Objfile.find_symbol exe "twin2") in
  Alcotest.(check int) "aliased" t1.sym_value t2.sym_value;
  let o = Option.get (Objfile.find_symbol exe "other") in
  Alcotest.(check bool) "other distinct" true (o.sym_value <> t1.sym_value)

let test_function_order () =
  let mk name = mk_func name [ A_insn Insn.Ret ] in
  let obj = assemble { empty_unit with u_funcs = [ mk "main"; mk "a"; mk "b"; mk "c" ] } in
  let options =
    { Bolt_linker.Linker.default_options with func_order = Some [ "c"; "a" ] }
  in
  let exe, _ = link ~options [ obj ] in
  let addr n = (Option.get (Objfile.find_symbol exe n)).Types.sym_value in
  Alcotest.(check bool) "c first" true (addr "c" < addr "a");
  Alcotest.(check bool) "a before main" true (addr "a" < addr "main");
  Alcotest.(check bool) "main before b" true (addr "main" < addr "b")

let test_jump_table_data_resolution () =
  (* a D_quad referring to a function-internal label becomes fn+offset *)
  let f =
    mk_func "f"
      [ A_insn (Insn.Nop 4); A_label "inner"; A_insn Insn.Ret ]
  in
  let obj =
    assemble
      {
        empty_unit with
        u_funcs = [ f; mk_func "main" [ A_insn Insn.Ret ] ];
        u_rodata = [ D_label ("JT", false); D_quad (Insn.Sym ("inner", 0)) ];
      }
  in
  let r = List.find (fun (r : Types.reloc) -> r.rel_section = ".rodata") obj.Objfile.relocs in
  Alcotest.(check string) "resolved to fn" "f" r.rel_sym;
  Alcotest.(check int) "addend is offset" 4 r.rel_addend;
  let exe, _ = link [ obj ] in
  let ro = Objfile.section_exn exe ".rodata" in
  let rr = Buf.reader (Bytes.to_string ro.sec_data) in
  let v = Buf.r_i64 rr in
  let fsym = Option.get (Objfile.find_symbol exe "f") in
  Alcotest.(check int) "cell holds inner addr" (fsym.sym_value + 4) v

let test_pic_difference_dropped () =
  (* PIC entries resolve at link time and the reloc disappears even with
     emit_relocs *)
  let f = mk_func "f" [ A_insn (Insn.Nop 4); A_label "inner"; A_insn Insn.Ret ] in
  let obj =
    assemble
      {
        empty_unit with
        u_funcs = [ f; mk_func "main" [ A_insn Insn.Ret ] ];
        u_rodata = [ D_label ("JTP", false); D_quad_pic ("inner", 0, "JTP") ];
      }
  in
  let exe, _ =
    link ~options:{ Bolt_linker.Linker.default_options with emit_relocs = true } [ obj ]
  in
  Alcotest.(check int) "pic reloc dropped" 0
    (List.length (List.filter (fun (r : Types.reloc) -> r.rel_section = ".rodata") exe.Objfile.relocs));
  let ro = Objfile.section_exn exe ".rodata" in
  let jt = Option.get (Objfile.find_symbol exe "JTP") in
  let rr = Buf.reader (Bytes.to_string ro.sec_data) in
  rr.Buf.pos <- jt.sym_value - ro.sec_addr;
  let v = Buf.r_i64 rr in
  let fsym = Option.get (Objfile.find_symbol exe "f") in
  Alcotest.(check int) "difference value" (fsym.sym_value + 4 - jt.sym_value) v

let test_lsda_and_dbg_roundtrip () =
  let f =
    mk_func "f"
      [
        A_loc ("x.mc", 10);
        A_insn_lp (Insn.Call (Insn.Sym ("main", 0)), "pad");
        A_loc ("x.mc", 11);
        A_insn Insn.Ret;
        A_label "pad";
        A_insn Insn.Ret;
      ]
  in
  let obj = assemble { empty_unit with u_funcs = [ f; mk_func "main" [ A_insn Insn.Ret ] ] } in
  let l = Option.get (Objfile.lsda_for obj "f") in
  (match l.lsda_entries with
  | [ e ] ->
      Alcotest.(check int) "range start" 0 e.lsda_start;
      Alcotest.(check int) "range len" 5 e.lsda_len;
      Alcotest.(check int) "pad offset" 6 e.lsda_pad
  | _ -> Alcotest.fail "one lsda entry expected");
  let d = Option.get (Objfile.dbg_for obj "f") in
  Alcotest.(check int) "two line entries" 2 (List.length d.dbg_entries)

let suite =
  [
    Alcotest.test_case "relax-short" `Quick test_relaxation_short;
    Alcotest.test_case "relax-widens" `Quick test_relaxation_widens;
    Alcotest.test_case "backward-branch" `Quick test_backward_branch;
    Alcotest.test_case "cross-function-reloc" `Quick test_cross_function_reloc;
    Alcotest.test_case "invisible-local-calls" `Quick test_invisible_local_calls;
    Alcotest.test_case "plt-got" `Quick test_plt_and_got;
    Alcotest.test_case "undefined-symbol" `Quick test_undefined_symbol;
    Alcotest.test_case "duplicate-symbol" `Quick test_duplicate_symbol;
    Alcotest.test_case "linker-icf" `Quick test_linker_icf;
    Alcotest.test_case "function-order" `Quick test_function_order;
    Alcotest.test_case "jt-data-resolution" `Quick test_jump_table_data_resolution;
    Alcotest.test_case "pic-difference-dropped" `Quick test_pic_difference_dropped;
    Alcotest.test_case "lsda-dbg" `Quick test_lsda_and_dbg_roundtrip;
  ]
