(* BOLT core tests: CFG reconstruction, jump-table discovery, profile
   matching, individual passes, rewriting in both modes, and the
   must-hold invariant that rewritten binaries behave identically. *)

open Bolt_minic
module Machine = Bolt_sim.Machine

let compile ?(options = Driver.default_options) srcs = (Driver.compile ~options srcs).Driver.exe

let profile_of exe ~input =
  let sampling =
    { Machine.event = Machine.Ev_cycles; period = 401; lbr = true; precise = true }
  in
  let o = Machine.run ~sampling exe ~input in
  match o.Machine.profile with
  | Some raw -> Bolt_profile.Perf2bolt.convert exe raw
  | None -> Bolt_profile.Fdata.empty

let build_ctx ?(opts = Bolt_core.Opts.default) exe =
  let ctx = Bolt_core.Context.create ~opts exe in
  Bolt_core.Build.run ctx;
  ctx

let switch_src =
  {| fn classify(x) {
       switch (x % 8) {
         case 0: { return 10; }
         case 1: { return 11; }
         case 2: { return 12; }
         case 3: { return 13; }
         case 4: { return 14; }
         case 5: { return 15; }
         default: { return 0; }
       }
     }
     fn main() {
       var i = 0;
       var s = 0;
       while (i < 4000) { s = s + classify(i); i = i + 1; }
       out s;
       return 0;
     } |}

let test_cfg_reconstruction () =
  let exe = compile [ ("m", switch_src) ] in
  let ctx = build_ctx exe in
  let fb = Option.get (Bolt_core.Context.func ctx "classify") in
  Alcotest.(check bool) "simple" true fb.Bolt_core.Bfunc.simple;
  Alcotest.(check bool) "several blocks" true (Hashtbl.length fb.Bolt_core.Bfunc.blocks > 5);
  Alcotest.(check int) "one jump table" 1 (Array.length fb.Bolt_core.Bfunc.jts)

let test_pic_jump_table_discovery () =
  (* PIC jump tables leave no relocations: must be discovered by pattern *)
  let exe =
    compile ~options:{ Driver.default_options with pic_jump_tables = true }
      [ ("m", switch_src) ]
  in
  let ctx = build_ctx exe in
  let fb = Option.get (Bolt_core.Context.func ctx "classify") in
  Alcotest.(check int) "table found" 1 (Array.length fb.Bolt_core.Bfunc.jts);
  Alcotest.(check bool) "is pic" true fb.Bolt_core.Bfunc.jts.(0).Bolt_core.Bfunc.jt_pic

let test_abs_jump_table_discovery () =
  let exe =
    compile ~options:{ Driver.default_options with pic_jump_tables = false }
      [ ("m", switch_src) ]
  in
  let ctx = build_ctx exe in
  let fb = Option.get (Bolt_core.Context.func ctx "classify") in
  Alcotest.(check int) "table found" 1 (Array.length fb.Bolt_core.Bfunc.jts);
  Alcotest.(check bool) "not pic" false fb.Bolt_core.Bfunc.jts.(0).Bolt_core.Bfunc.jt_pic

let test_indirect_tail_call_non_simple () =
  (* hand-written assembly with an indirect tail call must be non-simple *)
  let open Bolt_asm.Asm in
  let open Bolt_isa in
  let asm =
    assemble
      {
        empty_unit with
        u_funcs =
          [
            {
              af_name = "dispatcher";
              af_global = true;
              af_align = 16;
              af_emit_fde = false;
              af_body =
                [
                  A_insn (Insn.Lea (Reg.r6, Insn.Sym ("target", 0)));
                  A_insn (Insn.Jmp_ind Reg.r6);
                ];
            };
          ];
      }
  in
  let r =
    Driver.compile
      ~externals:[ ("dispatcher", 1) ]
      ~extra_objs:[ asm ]
      [
        ( "m",
          {| fn target(x) { return x + 1; }
             fn main() { out dispatcher(41); return 0; } |} );
      ]
  in
  let ctx = build_ctx r.Driver.exe in
  let fb = Option.get (Bolt_core.Context.func ctx "dispatcher") in
  Alcotest.(check bool) "non-simple" false fb.Bolt_core.Bfunc.simple;
  (* and the program still works after a full rewrite *)
  let prof = profile_of r.Driver.exe ~input:[||] in
  let exe', _ = Bolt_core.Bolt.optimize r.Driver.exe prof in
  let o = Machine.run exe' ~input:[||] in
  Alcotest.(check (list int)) "works after rewrite" [ 42 ] o.Machine.output

let test_profile_matching () =
  let exe = compile [ ("m", switch_src) ] in
  let prof = profile_of exe ~input:[||] in
  let ctx = build_ctx exe in
  let st = Bolt_core.Match_profile.attach ctx prof in
  Bolt_core.Match_profile.finalize ctx ~lbr:true ~trust_fallthrough:true;
  Alcotest.(check bool) "some branches matched" true (st.Bolt_core.Match_profile.matched_branches > 0);
  let fb = Option.get (Bolt_core.Context.func ctx "classify") in
  Alcotest.(check bool) "exec count" true (fb.Bolt_core.Bfunc.exec_count > 0);
  Alcotest.(check bool) "profile acc high" true (fb.Bolt_core.Bfunc.profile_acc > 0.5)

let test_strip_rep_ret () =
  let exe = compile [ ("m", {| fn main() { out 1; return 0; } |}) ] in
  let ctx = build_ctx exe in
  Bolt_core.Passes_simple.strip_rep_ret ctx;
  let fb = Option.get (Bolt_core.Context.func ctx "main") in
  let has_repz =
    Hashtbl.fold
      (fun _ (b : Bolt_core.Bfunc.bb) acc ->
        acc
        || List.exists
             (fun (i : Bolt_core.Bfunc.minsn) -> i.Bolt_core.Bfunc.op = Bolt_isa.Insn.Repz_ret)
             b.Bolt_core.Bfunc.insns)
      fb.Bolt_core.Bfunc.blocks false
  in
  Alcotest.(check bool) "no repz left" false has_repz

let test_icf_folds_twins () =
  let src =
    {| fn twin1(x) { return x * 7 + 3; }
       fn twin2(x) { return x * 7 + 3; }
       fn other(x) { return x * 7 + 4; }
       fn main() { out twin1(1) + twin2(2) + other(3); return 0; } |}
  in
  (* compiler would inline these; lower the inliner's enthusiasm *)
  let options =
    {
      Driver.default_options with
      inline_decisions = { Inline.default_decisions with small_threshold = 0; hint_threshold = 0 };
    }
  in
  let exe = compile ~options [ ("m", src) ] in
  let ctx = build_ctx exe in
  let folded, _bytes = Bolt_core.Icf.run ctx in
  Alcotest.(check int) "one pair folded" 1 folded;
  (* behaviour preserved through the full pipeline *)
  let prof = profile_of exe ~input:[||] in
  let exe', _ = Bolt_core.Bolt.optimize exe prof in
  let a = Machine.run exe ~input:[||] in
  let b = Machine.run exe' ~input:[||] in
  Alcotest.(check (list int)) "same output" a.Machine.output b.Machine.output

let test_simplify_ro_loads () =
  let src =
    {| const k = { 100, 200, 300 };
       fn main() { var i = 0; var s = 0; while (i < 100) { s = s + k[1]; i = i + 1; } out s; return 0; } |}
  in
  let exe = compile [ ("m", src) ] in
  let prof = profile_of exe ~input:[||] in
  let opts = { Bolt_core.Opts.none with simplify_ro_loads = true } in
  let exe', _ = Bolt_core.Bolt.optimize ~opts exe prof in
  let a = Machine.run exe ~input:[||] in
  let b = Machine.run exe' ~input:[||] in
  Alcotest.(check (list int)) "same output" a.Machine.output b.Machine.output;
  (* the hot load became an immediate: fewer data accesses *)
  Alcotest.(check bool) "fewer d-accesses" true
    (b.Machine.counters.Machine.l1d_accesses < a.Machine.counters.Machine.l1d_accesses)

let test_plt_pass_removes_indirection () =
  let m1 = {| extern fn callee(x); fn main() { var i = 0; var s = 0; while (i < 500) { s = s + callee(i); i = i + 1; } out s; return 0; } |} in
  let m2 = {| fn callee(x) { return x + 1; } |} in
  let exe = compile [ ("a", m1); ("b", m2) ] in
  let prof = profile_of exe ~input:[||] in
  let opts = { Bolt_core.Opts.none with plt = true } in
  let exe', _ = Bolt_core.Bolt.optimize ~opts exe prof in
  let a = Machine.run exe ~input:[||] in
  let b = Machine.run exe' ~input:[||] in
  Alcotest.(check (list int)) "same output" a.Machine.output b.Machine.output;
  (* calls no longer bounce through the stub: fewer taken branches *)
  Alcotest.(check bool) "fewer taken branches" true
    (b.Machine.counters.Machine.taken_branches < a.Machine.counters.Machine.taken_branches)

let test_icp_promotes () =
  let src =
    {| fn hot(x) { return x + 1; }
       fn cold(x) { return x - 1; }
       fn main() {
         var i = 0;
         var s = 0;
         while (i < 3000) {
           var p = &hot;
           if (i % 64 == 0) { p = &cold; }
           s = s + *p(i);
           i = i + 1;
         }
         out s;
         return 0;
       } |}
  in
  let exe = compile [ ("m", src) ] in
  let prof = profile_of exe ~input:[||] in
  let opts = { Bolt_core.Opts.none with icp = true } in
  let exe', report = Bolt_core.Bolt.optimize ~opts exe prof in
  Alcotest.(check bool) "promoted" true (report.Bolt_core.Bolt.r_icp_promoted >= 1);
  let a = Machine.run exe ~input:[||] in
  let b = Machine.run exe' ~input:[||] in
  Alcotest.(check (list int)) "same output" a.Machine.output b.Machine.output

let test_dyno_stats_taken_branches_drop () =
  (* layout optimization must reduce profile-weighted taken branches *)
  let src =
    {| global acc = 0;
       fn work(x) {
         if (x % 16 < 1) { acc = acc + x * 3; } else { acc = acc + 1; }
         if (x % 8 < 1) { acc = acc + x; } else { acc = acc + 2; }
         return acc;
       }
       fn main() { var i = 0; while (i < 5000) { acc = work(i); i = i + 1; } out acc; return 0; } |}
  in
  let exe = compile [ ("m", src) ] in
  let prof = profile_of exe ~input:[||] in
  let exe', report = Bolt_core.Bolt.optimize exe prof in
  let before = report.Bolt_core.Bolt.r_dyno_before.Bolt_core.Dyno_stats.taken_branches in
  let after = report.Bolt_core.Bolt.r_dyno_after.Bolt_core.Dyno_stats.taken_branches in
  Alcotest.(check bool) "taken branches reduced" true (after < before);
  let a = Machine.run exe ~input:[||] in
  let b = Machine.run exe' ~input:[||] in
  Alcotest.(check (list int)) "same output" a.Machine.output b.Machine.output

let test_inplace_mode () =
  (* without relocations, BOLT rewrites functions in place *)
  let exe =
    compile ~options:{ Driver.default_options with emit_relocs = false } [ ("m", switch_src) ]
  in
  Alcotest.(check int) "no relocs kept" 0 (List.length exe.Bolt_obj.Objfile.relocs);
  let prof = profile_of exe ~input:[||] in
  let exe', _ = Bolt_core.Bolt.optimize exe prof in
  (* function must not move *)
  let a0 = (Option.get (Bolt_obj.Objfile.find_symbol exe "classify")).Bolt_obj.Types.sym_value in
  let a1 = (Option.get (Bolt_obj.Objfile.find_symbol exe' "classify")).Bolt_obj.Types.sym_value in
  Alcotest.(check int) "address unchanged" a0 a1;
  let a = Machine.run exe ~input:[||] in
  let b = Machine.run exe' ~input:[||] in
  Alcotest.(check (list int)) "same output" a.Machine.output b.Machine.output

let test_exceptions_survive_rewrite () =
  let src =
    {| fn risky(x) { if (x % 97 == 13) { throw x; } return x * 2; }
       fn middle(x) { return risky(x) + 1; }
       fn main() {
         var i = 0;
         var s = 0;
         while (i < 2000) {
           try { s = s + middle(i); } catch (e) { s = s - e; }
           i = i + 1;
         }
         out s;
         return 0;
       } |}
  in
  let exe = compile [ ("m", src) ] in
  let prof = profile_of exe ~input:[||] in
  (* full pipeline including split-eh: landing pads move to cold code *)
  let exe', _ = Bolt_core.Bolt.optimize exe prof in
  let a = Machine.run exe ~input:[||] in
  let b = Machine.run ~fuel:200_000_000 exe' ~input:[||] in
  Alcotest.(check (list int)) "same output" a.Machine.output b.Machine.output;
  Alcotest.(check bool) "throws happened" true (a.Machine.counters.Machine.throws > 0)

let test_identity_rewrite_preserves_everything () =
  let exe = compile [ ("m", switch_src) ] in
  let prof = profile_of exe ~input:[||] in
  let exe', _ = Bolt_core.Bolt.optimize ~opts:Bolt_core.Opts.none exe prof in
  let a = Machine.run exe ~input:[||] in
  let b = Machine.run exe' ~input:[||] in
  Alcotest.(check (list int)) "same output" a.Machine.output b.Machine.output;
  Alcotest.(check int) "same exit" a.Machine.exit_code b.Machine.exit_code

let test_frame_opts_removes_dead_save () =
  (* after BOLT inlines the callee, the caller's saved register for the
     call result chain may become dead — at minimum the pass must keep
     behaviour identical *)
  let src =
    {| fn big(a, b) {
         var x = a + b;
         var y = a * b;
         var z = x + y;
         var w = x * 2 + y * 3 + z;
         return w + x + y + z;
       }
       fn main() { var i = 0; var s = 0; while (i < 1000) { s = s + big(i, 3); i = i + 1; } out s; return 0; } |}
  in
  let exe = compile [ ("m", src) ] in
  let prof = profile_of exe ~input:[||] in
  let opts = { Bolt_core.Opts.none with frame_opts = true; shrink_wrapping = true } in
  let exe', _ = Bolt_core.Bolt.optimize ~opts exe prof in
  let a = Machine.run exe ~input:[||] in
  let b = Machine.run exe' ~input:[||] in
  Alcotest.(check (list int)) "same output" a.Machine.output b.Machine.output

let suite =
  [
    Alcotest.test_case "cfg-reconstruction" `Quick test_cfg_reconstruction;
    Alcotest.test_case "jt-discovery-pic" `Quick test_pic_jump_table_discovery;
    Alcotest.test_case "jt-discovery-abs" `Quick test_abs_jump_table_discovery;
    Alcotest.test_case "indirect-tail-call" `Quick test_indirect_tail_call_non_simple;
    Alcotest.test_case "profile-matching" `Quick test_profile_matching;
    Alcotest.test_case "strip-rep-ret" `Quick test_strip_rep_ret;
    Alcotest.test_case "icf" `Quick test_icf_folds_twins;
    Alcotest.test_case "simplify-ro-loads" `Quick test_simplify_ro_loads;
    Alcotest.test_case "plt-pass" `Quick test_plt_pass_removes_indirection;
    Alcotest.test_case "icp" `Quick test_icp_promotes;
    Alcotest.test_case "dyno-stats" `Quick test_dyno_stats_taken_branches_drop;
    Alcotest.test_case "inplace-mode" `Quick test_inplace_mode;
    Alcotest.test_case "exceptions-survive" `Quick test_exceptions_survive_rewrite;
    Alcotest.test_case "identity-rewrite" `Quick test_identity_rewrite_preserves_everything;
    Alcotest.test_case "frame-opts" `Quick test_frame_opts_removes_dead_save;
  ]
