(* The file-based tool flow, exactly as a user would drive it:

     minicc -> .x   bsim --record -> .bprf   perf2bolt -> .fdata
     obolt -> bolted .x   bsim again, same output, fewer cycles

   These tests exercise the same code the bin/ executables wrap, through
   the on-disk formats (BELF files, raw-sample files, fdata files). *)

module Machine = Bolt_sim.Machine

let in_temp name = Filename.concat (Filename.get_temp_dir_name ()) name

let src =
  {| global acc = 0;
     fn crunch(x) {
       if (x % 16 >= 2) { acc = acc + 1; } else { acc = acc + x * 3; }
       return acc;
     }
     fn main() {
       var i = 0;
       while (i < 8000) { acc = crunch(i); i = i + 1; }
       out acc;
       return 0;
     } |}

let test_file_flow () =
  let exe_path = in_temp "t_prog.x" in
  let samples_path = in_temp "t_prog.bprf" in
  let fdata_path = in_temp "t_prog.fdata" in
  let bolted_path = in_temp "t_prog.bolt.x" in
  (* minicc *)
  let r = Bolt_minic.Driver.compile [ ("m", src) ] in
  Bolt_obj.Objfile.save exe_path r.exe;
  (* bsim --record *)
  let exe = Bolt_obj.Objfile.load exe_path in
  let sampling =
    { Machine.event = Machine.Ev_cycles; period = 301; lbr = true; precise = true }
  in
  let o1 = Machine.run ~sampling exe ~input:[||] in
  Bolt_profile.Samples.save samples_path (Option.get o1.Machine.profile);
  (* perf2bolt *)
  let raw = Bolt_profile.Samples.load samples_path in
  let fdata = Bolt_profile.Perf2bolt.convert exe raw in
  Bolt_profile.Fdata.save fdata_path fdata;
  (* obolt *)
  let exe = Bolt_obj.Objfile.load exe_path in
  let prof = Bolt_profile.Fdata.load fdata_path in
  let exe', _report = Bolt_core.Bolt.optimize exe prof in
  Bolt_obj.Objfile.save bolted_path exe';
  (* run both from disk *)
  let a = Machine.run (Bolt_obj.Objfile.load exe_path) ~input:[||] in
  let b = Machine.run (Bolt_obj.Objfile.load bolted_path) ~input:[||] in
  List.iter Sys.remove [ exe_path; samples_path; fdata_path; bolted_path ];
  Alcotest.(check (list int)) "same output through files" a.Machine.output b.Machine.output;
  Alcotest.(check bool) "bolted is faster" true
    (Machine.cycles b.Machine.counters < Machine.cycles a.Machine.counters)

let test_pgo_file_flow () =
  (* instrument -> run -> dump counters via the mapping file -> rebuild *)
  let map_path = in_temp "t_prog.map" in
  let prof_path = in_temp "t_prog.edges" in
  let sources = [ ("m", src) ] in
  let r =
    Bolt_minic.Driver.compile
      ~options:{ Bolt_minic.Driver.default_options with pgo = Bolt_minic.Driver.Instrument }
      sources
  in
  let mapping = Option.get r.mapping in
  Bolt_minic.Pgo.save_mapping map_path mapping;
  let o = Machine.run r.exe ~input:[||] in
  let base =
    (Option.get (Bolt_obj.Objfile.find_symbol r.exe Bolt_minic.Pgo.counters_symbol))
      .Bolt_obj.Types.sym_value
  in
  let mapping' = Bolt_minic.Pgo.load_mapping map_path in
  Alcotest.(check int) "mapping roundtrip" (List.length mapping) (List.length mapping');
  let counters =
    Array.init (Bolt_minic.Pgo.num_counters mapping') (fun i ->
        Bolt_sim.Memory.read64 o.Machine.final_mem (base + (8 * i)))
  in
  let prof = Bolt_minic.Pgo.profile_of_counters mapping' counters in
  Bolt_minic.Pgo.save_profile prof_path prof;
  let prof' = Bolt_minic.Pgo.load_profile prof_path in
  List.iter Sys.remove [ map_path; prof_path ];
  let r2 =
    Bolt_minic.Driver.compile
      ~options:{ Bolt_minic.Driver.default_options with pgo = Bolt_minic.Driver.Apply prof' }
      sources
  in
  let a = Machine.run r2.exe ~input:[||] in
  let plain = Bolt_minic.Driver.compile sources in
  let b = Machine.run plain.exe ~input:[||] in
  Alcotest.(check (list int)) "pgo build same output" b.Machine.output a.Machine.output;
  (* the hot-in-then branch must have been flipped by the profile *)
  Alcotest.(check bool) "pgo reduces taken conditionals" true
    (a.Machine.counters.Machine.cond_taken < b.Machine.counters.Machine.cond_taken)

(* optimizing twice must be stable: same behaviour, no blow-up *)
let test_bolt_idempotent_behaviour () =
  let r = Bolt_minic.Driver.compile [ ("m", src) ] in
  let sampling =
    { Machine.event = Machine.Ev_cycles; period = 301; lbr = true; precise = true }
  in
  let o = Machine.run ~sampling r.exe ~input:[||] in
  let prof = Bolt_profile.Perf2bolt.convert r.exe (Option.get o.Machine.profile) in
  let exe1, _ = Bolt_core.Bolt.optimize r.exe prof in
  (* re-profile the bolted binary and bolt again *)
  let o1 = Machine.run ~sampling exe1 ~input:[||] in
  let prof1 = Bolt_profile.Perf2bolt.convert exe1 (Option.get o1.Machine.profile) in
  let exe2, _ = Bolt_core.Bolt.optimize exe1 prof1 in
  let a = Machine.run exe1 ~input:[||] in
  let b = Machine.run ~fuel:200_000_000 exe2 ~input:[||] in
  Alcotest.(check (list int)) "double-bolt same output" a.Machine.output b.Machine.output;
  (* the second pass must not find much left to do *)
  let c1 = Machine.cycles a.Machine.counters and c2 = Machine.cycles b.Machine.counters in
  Alcotest.(check bool) "second pass roughly neutral" true
    (float_of_int (abs (c2 - c1)) /. float_of_int c1 < 0.10)

let suite =
  [
    Alcotest.test_case "file-flow" `Quick test_file_flow;
    Alcotest.test_case "pgo-file-flow" `Quick test_pgo_file_flow;
    Alcotest.test_case "bolt-rebolt" `Quick test_bolt_idempotent_behaviour;
  ]
