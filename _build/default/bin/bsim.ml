(* bsim: run a BELF executable under the simulator, optionally recording
   samples (the `perf record` analog).

     bsim prog.x
     bsim --record samples.bprf --event cycles --lbr prog.x
     bsim --counters --heatmap heat.csv prog.x
     bsim --input 1,2,3 prog.x                                  *)

open Cmdliner
module Machine = Bolt_sim.Machine

let run exe_path record event period lbr precise counters_flag heat_csv input_str
    dump_counters_sym =
  let exe = Bolt_obj.Objfile.load exe_path in
  let input =
    match input_str with
    | "" -> [||]
    | s -> String.split_on_char ',' s |> List.map int_of_string |> Array.of_list
  in
  let sampling =
    if record <> None then
      Some
        {
          Machine.event =
            (match event with
            | "cycles" -> Machine.Ev_cycles
            | "instructions" -> Machine.Ev_instructions
            | "taken-branches" -> Machine.Ev_taken_branches
            | e -> Fmt.failwith "unknown event %s" e);
          period;
          lbr;
          precise;
        }
    else None
  in
  let o = Machine.run ?sampling ~heatmap:(heat_csv <> None) exe ~input in
  List.iter (fun v -> Printf.printf "%d\n" v) o.Machine.output;
  if o.Machine.uncaught_exception then Fmt.epr "uncaught exception@.";
  (match (record, o.Machine.profile) with
  | Some path, Some p ->
      Bolt_profile.Samples.save path p;
      Fmt.epr "recorded %d samples to %s@." p.Machine.rp_samples path
  | _ -> ());
  (match heat_csv with
  | Some path ->
      (match o.Machine.heat with
      | Some h ->
          let oc = open_out path in
          Hashtbl.iter (fun addr c -> Printf.fprintf oc "%d,%d\n" addr c) h;
          close_out oc
      | None -> ())
  | None -> ());
  (match dump_counters_sym with
  | Some spec -> (
      (* SYMBOL:N -> dump N 64-bit words from the final memory *)
      match String.split_on_char ':' spec with
      | [ sym; n ] -> (
          match Bolt_obj.Objfile.find_symbol exe sym with
          | Some s ->
              for i = 0 to int_of_string n - 1 do
                Printf.printf "counter %d %d\n" i
                  (Bolt_sim.Memory.read64 o.Machine.final_mem
                     (s.Bolt_obj.Types.sym_value + (8 * i)))
              done
          | None -> Fmt.epr "no symbol %s@." sym)
      | _ -> Fmt.epr "bad --dump-counters spec@.")
  | None -> ());
  if counters_flag then begin
    let c = o.Machine.counters in
    Fmt.epr "instructions      %d@." c.Machine.instructions;
    Fmt.epr "cycles            %d@." (Machine.cycles c);
    Fmt.epr "taken-branches    %d@." c.Machine.taken_branches;
    Fmt.epr "branch-misses     %d@." c.Machine.branch_misses;
    Fmt.epr "l1i-misses        %d@." c.Machine.l1i_misses;
    Fmt.epr "l1d-misses        %d@." c.Machine.l1d_misses;
    Fmt.epr "llc-misses        %d@." c.Machine.llc_misses;
    Fmt.epr "itlb-misses       %d@." c.Machine.itlb_misses;
    Fmt.epr "dtlb-misses       %d@." c.Machine.dtlb_misses;
    Fmt.epr "throws            %d@." c.Machine.throws
  end;
  o.Machine.exit_code land 0xff

let exe_path = Arg.(required & pos 0 (some file) None & info [] ~docv:"EXE")
let record = Arg.(value & opt (some string) None & info [ "record" ] ~doc:"Write raw samples here.")
let event = Arg.(value & opt string "cycles" & info [ "event" ] ~doc:"cycles|instructions|taken-branches")
let period = Arg.(value & opt int 4001 & info [ "period" ] ~doc:"Sampling period.")
let lbr = Arg.(value & opt bool true & info [ "lbr" ] ~doc:"Record last-branch records.")
let precise = Arg.(value & opt bool true & info [ "precise" ] ~doc:"PEBS-style precise IPs.")
let counters = Arg.(value & flag & info [ "counters" ] ~doc:"Print performance counters.")
let heat_csv = Arg.(value & opt (some string) None & info [ "heatmap" ] ~doc:"Write fetch heat CSV.")
let input = Arg.(value & opt string "" & info [ "input" ] ~doc:"Comma-separated input tape.")
let dump_counters = Arg.(value & opt (some string) None & info [ "dump-counters" ] ~doc:"SYMBOL:N memory dump.")

let cmd =
  Cmd.v
    (Cmd.info "bsim" ~doc:"BISA simulator with sampling profiler")
    Term.(
      const run $ exe_path $ record $ event $ period $ lbr $ precise $ counters
      $ heat_csv $ input $ dump_counters)

let () = exit (Cmd.eval' cmd)
