(* perf2bolt: aggregate raw samples against a binary's symbol table and
   produce the fdata profile BOLT consumes.

     perf2bolt -p samples.bprf -o prog.fdata prog.x            *)

open Cmdliner

let run exe_path samples_path out =
  let exe = Bolt_obj.Objfile.load exe_path in
  let raw = Bolt_profile.Samples.load samples_path in
  let fdata = Bolt_profile.Perf2bolt.convert exe raw in
  Bolt_profile.Fdata.save out fdata;
  Fmt.pr "wrote %s: %d branch records, %d ranges, %d ip samples@." out
    (List.length fdata.Bolt_profile.Fdata.branches)
    (List.length fdata.Bolt_profile.Fdata.ranges)
    (List.length fdata.Bolt_profile.Fdata.samples);
  0

let exe_path = Arg.(required & pos 0 (some file) None & info [] ~docv:"EXE")

let samples =
  Arg.(required & opt (some file) None & info [ "p" ] ~docv:"SAMPLES" ~doc:"Raw samples.")

let out = Arg.(value & opt string "out.fdata" & info [ "o" ] ~doc:"Output profile.")

let cmd =
  Cmd.v
    (Cmd.info "perf2bolt" ~doc:"convert raw samples to an fdata profile")
    Term.(const run $ exe_path $ samples $ out)

let () = exit (Cmd.eval' cmd)
