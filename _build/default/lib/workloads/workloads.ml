(* Named workload configurations for the paper's evaluation.

   Five data-center-like services (§6.1) and two compiler-like programs
   (§6.2).  The parameter choices control the properties that matter:
   text size vs. the simulated cache hierarchy (front-end boundedness),
   profile skew, dispatch style, exception density.

   - hhvm_like: the largest and most front-end bound; switch-heavy
     dispatch (a bytecode-VM flavour), plenty of indirect calls and some
     dynamically-unanalyzable (assembly) dispatchers.
   - tao_like: an in-memory cache: array traffic, medium code size.
   - proxygen_like: a load balancer: deep call chains, many small
     functions.
   - multifeed1/2: ranking services: two related variants of the same
     shape with different seeds and mixes.
   - clang_like / gcc_like: input-tape-driven "compilers": they read a
     token stream (the "source file"), so different inputs exercise
     different paths. *)

let hhvm_like =
  {
    Gen.default with
    seed = 11;
    modules = 32;
    funcs = 2200;
    layers = 7;
    hot_per_mille = 220;
    work_ops = 14;
    mem_per_mille = 400;
    array_size = 4096;
    switch_per_mille = 380;
    indirect_per_mille = 220;
    eh_per_mille = 150;
    dup_plain_families = 10;
    dup_plain_copies = 4;
    dup_switch_families = 10;
    dup_switch_copies = 4;
    leaf_helpers = 40;
    asm_dispatchers = 5;
    top_funcs = 14;
    iterations = 26_000;
  }

let tao_like =
  {
    Gen.default with
    seed = 22;
    modules = 20;
    funcs = 1300;
    layers = 6;
    hot_per_mille = 260;
    work_ops = 32;
    mem_per_mille = 820;
    array_size = 16384;
    switch_per_mille = 180;
    indirect_per_mille = 120;
    eh_per_mille = 80;
    leaf_helpers = 24;
    asm_dispatchers = 2;
    top_funcs = 10;
    iterations = 30_000;
  }

let proxygen_like =
  {
    Gen.default with
    seed = 33;
    modules = 24;
    funcs = 1600;
    layers = 8;
    hot_per_mille = 240;
    work_ops = 36;
    mem_per_mille = 780;
    array_size = 8192;
    switch_per_mille = 220;
    indirect_per_mille = 160;
    eh_per_mille = 180;
    leaf_helpers = 32;
    asm_dispatchers = 2;
    top_funcs = 12;
    iterations = 30_000;
  }

let multifeed1 =
  {
    Gen.default with
    seed = 44;
    modules = 16;
    funcs = 1100;
    layers = 6;
    hot_per_mille = 300;
    work_ops = 40;
    mem_per_mille = 840;
    array_size = 8192;
    switch_per_mille = 200;
    indirect_per_mille = 140;
    eh_per_mille = 100;
    leaf_helpers = 20;
    asm_dispatchers = 1;
    top_funcs = 10;
    iterations = 32_000;
  }

let multifeed2 =
  { multifeed1 with Gen.seed = 55; funcs = 1000; work_ops = 42; mem_per_mille = 860 }

let clang_like =
  {
    Gen.default with
    seed = 66;
    modules = 28;
    funcs = 1800;
    layers = 7;
    hot_per_mille = 230;
    work_ops = 6;
    switch_per_mille = 420;
    indirect_per_mille = 180;
    eh_per_mille = 90;
    dup_plain_families = 8;
    dup_switch_families = 8;
    leaf_helpers = 30;
    asm_dispatchers = 2;
    top_funcs = 12;
    input_driven = true;
  }

let gcc_like =
  {
    clang_like with
    Gen.seed = 77;
    modules = 24;
    funcs = 1500;
    switch_per_mille = 360;
    indirect_per_mille = 120;
  }

(* Token streams (the compiler "inputs"): [n] tokens with an LCG whose mix
   parameter shifts which dispatch paths are hot. *)
let token_input ~seed ~n ~mix : int array =
  let r = Rng.create seed in
  Array.init n (fun _ ->
      let v = 1 + Rng.int r 1_000_000 in
      (* bias the low digits so t = tok mod 100 is skewed *)
      if Rng.bool r mix 100 then (v / 100 * 100) + Rng.int r 30 else v)

let fb_workloads =
  [
    ("hhvm", hhvm_like);
    ("tao", tao_like);
    ("proxygen", proxygen_like);
    ("multifeed1", multifeed1);
    ("multifeed2", multifeed2);
  ]
