(* Deterministic splitmix64-style PRNG.  Every workload is generated from
   an explicit seed so experiments are bit-for-bit reproducible. *)

type t = { mutable state : int }

let create seed = { state = seed lxor 0x1e3779b97f4a7c15 }

let next t =
  t.state <- (t.state + 0x1e3779b97f4a7c15) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb land max_int in
  z lxor (z lsr 31)

(* uniform in [0, n) *)
let int t n = if n <= 0 then 0 else next t mod n

let bool t p_num p_den = int t p_den < p_num

let pick t arr = arr.(int t (Array.length arr))

let pick_list t l = List.nth l (int t (List.length l))

(* Zipf-ish skewed index in [0, n): low indices much more likely. *)
let zipf t n =
  if n <= 1 then 0
  else begin
    let r = int t 100 in
    if r < 50 then int t (max 1 (n / 16))
    else if r < 80 then int t (max 1 (n / 4))
    else int t n
  end
