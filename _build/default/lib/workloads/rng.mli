(** Deterministic splitmix-style PRNG used by every workload generator.
    Same seed, same program — experiments are reproducible bit-for-bit. *)

type t

val create : int -> t

(** Next raw 62-bit positive value. *)
val next : t -> int

(** [int t n] is uniform in [\[0, n)]; 0 when [n <= 0]. *)
val int : t -> int -> int

(** [bool t num den] is true with probability [num/den]. *)
val bool : t -> int -> int -> bool

val pick : t -> 'a array -> 'a
val pick_list : t -> 'a list -> 'a

(** Zipf-flavoured index in [\[0, n)]: low indices strongly preferred —
    the shape of data-center call-frequency distributions. *)
val zipf : t -> int -> int
