lib/workloads/workloads.ml: Array Gen Rng
