lib/workloads/gen.ml: Array Bolt_asm Bolt_isa Bolt_obj Buffer Cond Fmt Fun Hashtbl Insn List Printf Reg Rng String
