lib/workloads/rng.mli:
