(* BISA instructions.

   The instruction set is deliberately x86-flavoured where it matters to a
   post-link optimizer:

   - variable-length encodings, so code layout changes code size;
   - conditional branches come in a 2-byte form (8-bit displacement) and a
     6-byte form (32-bit displacement), reproducing the x86 peculiarity the
     BOLT paper calls out when discussing hot-code growth;
   - [repz ret] exists as a distinct 2-byte return (legacy-AMD idiom) so the
     strip-rep-ret pass has something to strip;
   - multi-byte alignment NOPs (1..15 bytes);
   - calls through memory ([call_mem]) model PLT/GOT indirection;
   - register-indirect jumps serve both jump tables and indirect tail calls.

   Branch and memory operands are symbolic ([Sym]) until the assembler or
   the rewriter resolves them; decoded instructions always carry [Imm].
   Relative displacements are measured from the END of the instruction, as
   on x86. *)

type value = Imm of int | Sym of string * int

(* Displacement width of a branch encoding. *)
type width = W8 | W32

(* Immediate width of a register load. *)
type iwidth = I32 | I64

type alu = Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr | Cmp | Test

type t =
  | Halt
  | Nop of int (* total encoded size in bytes, 1..15 *)
  | Ret
  | Repz_ret
  | Push of Reg.t
  | Pop of Reg.t
  | Mov_rr of Reg.t * Reg.t (* dst, src *)
  | Mov_ri of Reg.t * value * iwidth
  | Load of Reg.t * Reg.t * int (* dst <- mem[base + disp] *)
  | Store of Reg.t * int * Reg.t (* mem[base + disp] <- src *)
  | Load_abs of Reg.t * value (* dst <- mem[addr32] *)
  | Store_abs of value * Reg.t (* mem[addr32] <- src *)
  | Lea of Reg.t * value (* dst <- addr32 *)
  | Lea_rel of Reg.t * value (* dst <- end-of-insn address + disp32 (PIC) *)
  | Alu_rr of alu * Reg.t * Reg.t (* op dst, src *)
  | Alu_ri of alu * Reg.t * value (* op dst, imm32 *)
  | Setcc of Cond.t * Reg.t (* reg := last comparison satisfies cond ? 1 : 0 *)
  | Jmp of value * width
  | Jcc of Cond.t * value * width
  | Call of value
  | Call_ind of Reg.t
  | Call_mem of value (* call through mem cell, i.e. a GOT slot *)
  | Jmp_ind of Reg.t
  | Jmp_mem of value (* jump through mem cell: the body of a PLT stub *)
  | In_ of Reg.t (* read next value of the input tape, 0 at EOF *)
  | Out of Reg.t (* append register to the output tape *)
  | Throw (* raise an exception; the simulator unwinds frames *)

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Cmp -> "cmp"
  | Test -> "test"

let alu_code = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | And -> 4
  | Or -> 5
  | Xor -> 6
  | Shl -> 7
  | Shr -> 8
  | Cmp -> 9
  | Test -> 10
  | Mod -> 11

let alu_of_code = function
  | 0 -> Add
  | 1 -> Sub
  | 2 -> Mul
  | 3 -> Div
  | 4 -> And
  | 5 -> Or
  | 6 -> Xor
  | 7 -> Shl
  | 8 -> Shr
  | 9 -> Cmp
  | 10 -> Test
  | 11 -> Mod
  | n -> invalid_arg (Printf.sprintf "Insn.alu_of_code %d" n)

(* Encoded size in bytes.  This is the ground truth the assembler, the
   rewriter and the simulator all share. *)
let size = function
  | Halt -> 1
  | Nop n -> n
  | Ret -> 1
  | Repz_ret -> 2
  | Push _ | Pop _ -> 2
  | Mov_rr _ -> 2
  | Mov_ri (_, _, I32) -> 6
  | Mov_ri (_, _, I64) -> 10
  | Load _ | Store _ -> 6
  | Load_abs _ | Store_abs _ -> 6
  | Lea _ | Lea_rel _ -> 6
  | Alu_rr _ -> 2
  | Alu_ri _ -> 6
  | Setcc _ -> 2
  | Jmp (_, W8) -> 2
  | Jmp (_, W32) -> 5
  | Jcc (_, _, W8) -> 2
  | Jcc (_, _, W32) -> 6
  | Call _ -> 5
  | Call_ind _ -> 2
  | Call_mem _ -> 6
  | Jmp_ind _ -> 2
  | Jmp_mem _ -> 6
  | In_ _ | Out _ -> 2
  | Throw -> 1

(* Control-flow classification, used when reconstructing CFGs. *)

type cf =
  | CF_none
  | CF_jump (* unconditional direct jump *)
  | CF_cond (* conditional direct branch *)
  | CF_call
  | CF_icall (* indirect or through-memory call *)
  | CF_ijump (* indirect jump: jump table or indirect tail call *)
  | CF_ret
  | CF_halt
  | CF_throw

let classify = function
  | Jmp _ -> CF_jump
  | Jcc _ -> CF_cond
  | Call _ -> CF_call
  | Call_ind _ | Call_mem _ -> CF_icall
  | Jmp_ind _ | Jmp_mem _ -> CF_ijump
  | Ret | Repz_ret -> CF_ret
  | Halt -> CF_halt
  | Throw -> CF_throw
  | _ -> CF_none

(* An instruction after which control never falls through. *)
let is_terminator i =
  match classify i with
  | CF_jump | CF_ijump | CF_ret | CF_halt | CF_throw -> true
  | CF_none | CF_cond | CF_call | CF_icall -> false

let is_branch i =
  match classify i with
  | CF_jump | CF_cond | CF_ijump -> true
  | _ -> false

let is_call i = match classify i with CF_call | CF_icall -> true | _ -> false

(* Symbolic/direct target of a branch or call, if any. *)
let target = function
  | Jmp (v, _) | Jcc (_, v, _) | Call v -> Some v
  | _ -> None

let with_target i v =
  match i with
  | Jmp (_, w) -> Jmp (v, w)
  | Jcc (c, _, w) -> Jcc (c, v, w)
  | Call _ -> Call v
  | _ -> invalid_arg "Insn.with_target"

(* Replace the (unique) symbolic operand of an instruction. *)
let with_value i v =
  match i with
  | Jmp (_, w) -> Jmp (v, w)
  | Jcc (c, _, w) -> Jcc (c, v, w)
  | Call _ -> Call v
  | Lea_rel (r, _) -> Lea_rel (r, v)
  | Mov_ri (r, _, iw) -> Mov_ri (r, v, iw)
  | Load_abs (r, _) -> Load_abs (r, v)
  | Store_abs (_, s) -> Store_abs (v, s)
  | Lea (r, _) -> Lea (r, v)
  | Call_mem _ -> Call_mem v
  | Jmp_mem _ -> Jmp_mem v
  | Alu_ri (op, r, _) -> Alu_ri (op, r, v)
  | _ -> invalid_arg "Insn.with_value"

(* The symbolic/immediate operand, if the instruction has one. *)
let value = function
  | Jmp (v, _) | Jcc (_, v, _) | Call v | Lea_rel (_, v) -> Some v
  | Mov_ri (_, v, _) | Load_abs (_, v) | Store_abs (v, _) | Lea (_, v) -> Some v
  | Call_mem v | Jmp_mem v | Alu_ri (_, _, v) -> Some v
  | _ -> None

(* Registers written by an instruction.  Calls additionally clobber all
   caller-saved registers; dataflow clients handle that case themselves. *)
let defs = function
  | Mov_rr (r, _)
  | Mov_ri (r, _, _)
  | Load (r, _, _)
  | Load_abs (r, _)
  | Lea (r, _)
  | Lea_rel (r, _)
  | In_ r ->
      [ r ]
  | Alu_rr (op, r, _) | Alu_ri (op, r, _) -> (
      match op with Cmp | Test -> [] | _ -> [ r ])
  | Setcc (_, r) -> [ r ]
  | Push _ -> [ Reg.sp ]
  | Pop r -> [ r; Reg.sp ]
  | _ -> []

(* Registers read by an instruction. *)
let uses = function
  | Push r -> [ r; Reg.sp ]
  | Pop _ -> [ Reg.sp ]
  | Mov_rr (_, s) -> [ s ]
  | Load (_, b, _) -> [ b ]
  | Store (b, _, s) -> [ b; s ]
  | Store_abs (_, s) -> [ s ]
  | Alu_rr (op, d, s) -> ( match op with Cmp | Test -> [ d; s ] | _ -> [ d; s ])
  | Alu_ri (_, d, _) -> [ d ]
  | Call_ind r | Jmp_ind r -> [ r ]
  | Out r -> [ r ]
  | Ret | Repz_ret -> [ Reg.sp ]
  | Call _ | Call_mem _ -> Reg.args
  | _ -> []

let pp_value ppf = function
  | Imm n -> Fmt.pf ppf "%#x" n
  | Sym (s, 0) -> Fmt.string ppf s
  | Sym (s, a) -> Fmt.pf ppf "%s%+d" s a

let pp ppf i =
  match i with
  | Halt -> Fmt.string ppf "halt"
  | Nop 1 -> Fmt.string ppf "nop"
  | Nop n -> Fmt.pf ppf "nop%d" n
  | Ret -> Fmt.string ppf "ret"
  | Repz_ret -> Fmt.string ppf "repz ret"
  | Push r -> Fmt.pf ppf "push %a" Reg.pp r
  | Pop r -> Fmt.pf ppf "pop %a" Reg.pp r
  | Mov_rr (d, s) -> Fmt.pf ppf "mov %a, %a" Reg.pp d Reg.pp s
  | Mov_ri (d, v, I32) -> Fmt.pf ppf "mov %a, %a" Reg.pp d pp_value v
  | Mov_ri (d, v, I64) -> Fmt.pf ppf "movabs %a, %a" Reg.pp d pp_value v
  | Load (d, b, o) -> Fmt.pf ppf "mov %a, [%a%+d]" Reg.pp d Reg.pp b o
  | Store (b, o, s) -> Fmt.pf ppf "mov [%a%+d], %a" Reg.pp b o Reg.pp s
  | Load_abs (d, v) -> Fmt.pf ppf "mov %a, [%a]" Reg.pp d pp_value v
  | Store_abs (v, s) -> Fmt.pf ppf "mov [%a], %a" pp_value v Reg.pp s
  | Lea (d, v) -> Fmt.pf ppf "lea %a, %a" Reg.pp d pp_value v
  | Lea_rel (d, v) -> Fmt.pf ppf "lea %a, [rip%a]" Reg.pp d pp_value v
  | Alu_rr (op, d, s) ->
      Fmt.pf ppf "%s %a, %a" (alu_name op) Reg.pp d Reg.pp s
  | Alu_ri (op, d, v) ->
      Fmt.pf ppf "%s %a, %a" (alu_name op) Reg.pp d pp_value v
  | Setcc (c, r) -> Fmt.pf ppf "set%s %a" (Cond.name c) Reg.pp r
  | Jmp (v, W8) -> Fmt.pf ppf "jmp.8 %a" pp_value v
  | Jmp (v, W32) -> Fmt.pf ppf "jmp %a" pp_value v
  | Jcc (c, v, W8) -> Fmt.pf ppf "j%s.8 %a" (Cond.name c) pp_value v
  | Jcc (c, v, W32) -> Fmt.pf ppf "j%s %a" (Cond.name c) pp_value v
  | Call v -> Fmt.pf ppf "call %a" pp_value v
  | Call_ind r -> Fmt.pf ppf "call *%a" Reg.pp r
  | Call_mem v -> Fmt.pf ppf "call [%a]" pp_value v
  | Jmp_ind r -> Fmt.pf ppf "jmp *%a" Reg.pp r
  | Jmp_mem v -> Fmt.pf ppf "jmp [%a]" pp_value v
  | In_ r -> Fmt.pf ppf "in %a" Reg.pp r
  | Out r -> Fmt.pf ppf "out %a" Reg.pp r
  | Throw -> Fmt.string ppf "throw"

let to_string i = Fmt.str "%a" pp i

let equal (a : t) (b : t) = a = b
