lib/isa/codec.ml: Bytes Char Cond Insn Int64 Printf Reg
