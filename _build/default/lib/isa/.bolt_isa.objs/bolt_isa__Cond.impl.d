lib/isa/cond.ml: Fmt Printf
