lib/isa/insn.ml: Cond Fmt Printf Reg
