(** Machine registers of the BISA target: sixteen 64-bit general-purpose
    registers [r0..r13] plus the frame pointer [fp] (r14) and the stack
    pointer [sp] (r15).

    ABI: arguments in [r1..r4], result in [r0]; [r0..r7] are clobbered by
    calls, [r8..fp] are callee-saved.  These sets drive both the MiniC
    code generator and BOLT's liveness analysis. *)

type t = private int

val count : int

(** Raises [Invalid_argument] outside [0..15]. *)
val of_int : int -> t

val to_int : t -> int

val r0 : t
val r1 : t
val r2 : t
val r3 : t
val r4 : t
val r5 : t
val r6 : t
val r7 : t
val r8 : t
val r9 : t
val r10 : t
val r11 : t
val r12 : t
val r13 : t
val fp : t
val sp : t

(** Argument registers, in position order. *)
val args : t list

(** The return-value register ([r0]). *)
val ret : t

val caller_saved : t list
val callee_saved : t list
val is_callee_saved : t -> bool

val name : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
