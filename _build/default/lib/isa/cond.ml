(* Condition codes for conditional branches.

   Flags are set by [cmp a b] (signed comparison of a and b) and
   [test a b] (comparison of [a land b] against zero).  The simulator
   materialises the flags as the three-way ordering of the two operands,
   which a condition code then consults. *)

type t = Eq | Ne | Lt | Le | Gt | Ge

let all = [ Eq; Ne; Lt; Le; Gt; Ge ]

let to_int = function Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5

let of_int = function
  | 0 -> Eq
  | 1 -> Ne
  | 2 -> Lt
  | 3 -> Le
  | 4 -> Gt
  | 5 -> Ge
  | n -> invalid_arg (Printf.sprintf "Cond.of_int %d" n)

(* The branch taken when this condition is false. *)
let invert = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

(* [holds c ord] decides the condition given [ord = compare a b]. *)
let holds c ord =
  match c with
  | Eq -> ord = 0
  | Ne -> ord <> 0
  | Lt -> ord < 0
  | Le -> ord <= 0
  | Gt -> ord > 0
  | Ge -> ord >= 0

let name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let pp ppf c = Fmt.string ppf (name c)

let equal (a : t) (b : t) = a = b
