(** Condition codes for conditional branches.

    The simulator materialises comparison flags as the three-way ordering
    of the two operands of the last [cmp]/[test]; a condition code then
    consults that ordering. *)

type t = Eq | Ne | Lt | Le | Gt | Ge

val all : t list

val to_int : t -> int

(** Inverse of [to_int]; raises [Invalid_argument] outside [0..5]. *)
val of_int : int -> t

(** The condition that holds exactly when this one does not — what
    fixup-branches uses to flip a branch's polarity when the layout makes
    the other side the fall-through. *)
val invert : t -> t

(** [holds c ord] decides the condition given [ord = compare a b]. *)
val holds : t -> int -> bool

val name : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
