(* Machine registers of the BISA target.

   Sixteen general-purpose 64-bit registers, r0..r15.  The ABI fixes r15 as
   the stack pointer and r14 as the frame pointer.  Values are represented
   as ints in [0, 15]; the private alias keeps arbitrary ints out. *)

type t = int

let count = 16

let of_int n =
  if n < 0 || n >= count then invalid_arg (Printf.sprintf "Reg.of_int %d" n);
  n

let to_int r = r

let r0 = 0
let r1 = 1
let r2 = 2
let r3 = 3
let r4 = 4
let r5 = 5
let r6 = 6
let r7 = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12
let r13 = 13
let fp = 14
let sp = 15

(* ABI sets.  Arguments are passed in r1..r4, the result comes back in r0.
   r0..r7 are clobbered by calls; r8..r14 survive them. *)

let args = [ r1; r2; r3; r4 ]
let ret = r0
let caller_saved = [ r0; r1; r2; r3; r4; r5; r6; r7 ]
let callee_saved = [ r8; r9; r10; r11; r12; r13; fp ]

let is_callee_saved r = r >= r8 && r <= fp && r <> sp

let name r =
  match r with
  | 14 -> "fp"
  | 15 -> "sp"
  | n -> "r" ^ string_of_int n

let pp ppf r = Fmt.string ppf (name r)

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = compare a b
