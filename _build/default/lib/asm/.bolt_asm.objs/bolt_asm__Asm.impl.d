lib/asm/asm.ml: Array Bolt_isa Bolt_obj Buf Buffer Bytes Codec Fmt Hashtbl Insn List Objfile String Types
