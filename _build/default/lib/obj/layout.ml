(* Canonical address-space layout for linked executables.

   Mirrors a typical small x86-64 Linux layout: text low, read-only data
   after it, writable data above, stack high.  The BOLT rewriter appends
   rewritten text as a fresh segment at [bolt_text_base], like the real
   tool appends a new ELF segment when optimized code outgrows its slot. *)

let text_base = 0x40_0000
let rodata_base = 0x100_0000
let data_base = 0x200_0000
let bolt_text_base = 0x300_0000
let heap_base = 0x400_0000
let stack_top = 0x7f0_0000
let page_size = 4096

(* Default alignment the compiler requests for function entries. *)
let func_align = 16
