(* Little binary writer/reader used by the BELF serializer and the profile
   file formats.  Integers are little-endian; strings are length-prefixed. *)

type writer = Buffer.t

let writer () = Buffer.create 4096

let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let u32 b v =
  u8 b v;
  u8 b (v lsr 8);
  u8 b (v lsr 16);
  u8 b (v lsr 24)

let i64 b v =
  let v64 = Int64.of_int v in
  for i = 0 to 7 do
    u8 b (Int64.to_int (Int64.shift_right_logical v64 (8 * i)) land 0xff)
  done

let str b s =
  u32 b (String.length s);
  Buffer.add_string b s

let bytes b by =
  u32 b (Bytes.length by);
  Buffer.add_bytes b by

let list b f xs =
  u32 b (List.length xs);
  List.iter (f b) xs

let contents = Buffer.contents

type reader = { data : string; mutable pos : int }

exception Corrupt of string

let reader data = { data; pos = 0 }

let need r n =
  if r.pos + n > String.length r.data then raise (Corrupt "truncated input")

let r_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  let a = r_u8 r in
  let b = r_u8 r in
  let c = r_u8 r in
  let d = r_u8 r in
  a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

let r_i64 r =
  let v = ref 0L in
  need r 8;
  for i = 7 downto 0 do
    v :=
      Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code r.data.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  Int64.to_int !v

let r_str r =
  let n = r_u32 r in
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_bytes r =
  let n = r_u32 r in
  need r n;
  let b = Bytes.of_string (String.sub r.data r.pos n) in
  r.pos <- r.pos + n;
  b

let r_list r f =
  let n = r_u32 r in
  List.init n (fun _ -> f r)
