(* Core record types of the BELF binary container: sections, symbols,
   relocations, frame (CFI) descriptors and exception (LSDA) tables.

   The container plays the role ELF plays for the real BOLT: executables
   carry a symbol table, optional relocations (the linker's --emit-relocs
   analog), frame-unwind information and per-function exception tables.
   Everything a post-link rewriter must parse, preserve and update lives
   here. *)

type section_kind = Text | Rodata | Data | Bss

let section_kind_code = function Text -> 0 | Rodata -> 1 | Data -> 2 | Bss -> 3

let section_kind_of_code = function
  | 0 -> Text
  | 1 -> Rodata
  | 2 -> Data
  | 3 -> Bss
  | n -> raise (Buf.Corrupt (Printf.sprintf "section kind %d" n))

type section = {
  sec_name : string;
  sec_kind : section_kind;
  sec_addr : int; (* virtual address; 0 in relocatable objects *)
  sec_data : Bytes.t; (* empty for Bss *)
  sec_size : int; (* = Bytes.length sec_data except for Bss *)
}

type sym_kind = Func | Object | Notype

let sym_kind_code = function Func -> 0 | Object -> 1 | Notype -> 2

let sym_kind_of_code = function
  | 0 -> Func
  | 1 -> Object
  | 2 -> Notype
  | n -> raise (Buf.Corrupt (Printf.sprintf "symbol kind %d" n))

type binding = Local | Global

type symbol = {
  sym_name : string;
  sym_kind : sym_kind;
  sym_bind : binding;
  sym_section : string; (* "" for undefined symbols *)
  sym_value : int; (* offset within section (objects) or address (exes) *)
  sym_size : int;
}

(* Relocation kinds.  [Rel] kinds are pc-relative, measured from the end of
   the instruction (so the relocated field holds target - end_of_insn). *)
type reloc_kind = Abs32 | Abs64 | Rel32 | Rel8

let reloc_kind_code = function Abs32 -> 0 | Abs64 -> 1 | Rel32 -> 2 | Rel8 -> 3

let reloc_kind_of_code = function
  | 0 -> Abs32
  | 1 -> Abs64
  | 2 -> Rel32
  | 3 -> Rel8
  | n -> raise (Buf.Corrupt (Printf.sprintf "reloc kind %d" n))

type reloc = {
  rel_section : string; (* section whose bytes are patched *)
  rel_offset : int; (* offset of the patched field within that section *)
  rel_kind : reloc_kind;
  rel_sym : string; (* target symbol (possibly a section symbol) *)
  rel_addend : int;
  rel_end : int; (* for Rel kinds: offset of insn end relative to field *)
  rel_pic_base : string;
      (* when nonempty: the patched field holds S(sym)+addend - S(base),
         a PIC jump-table difference.  The linker resolves these and then
         DROPS them even under --emit-relocs, reproducing the "relative
         offsets for PIC jump tables are removed by the linker" gap that
         forces BOLT to rediscover such tables by disassembly. *)
}

(* CFI operations, attached to code offsets within a function.  [Save]
   records that a callee-saved register was stored at [fp - slot]; the
   unwinder replays the ops up to the faulting offset to learn the frame
   state.  [Set_state] lets a rewriter re-establish a complete state at a
   block boundary after reordering, mirroring how BOLT regenerates DWARF
   CFI from its annotations. *)

type cfi_state = {
  cfa_established : bool; (* fp chain set up *)
  cfa_locals : int; (* bytes of locals below fp *)
  cfa_saved : (Bolt_isa.Reg.t * int) list; (* reg, slot offset below fp *)
}

let initial_cfi_state = { cfa_established = false; cfa_locals = 0; cfa_saved = [] }

type cfi_op =
  | Cfi_establish (* push fp; mov fp, sp done *)
  | Cfi_def_locals of int
  | Cfi_save of Bolt_isa.Reg.t * int
  | Cfi_restore of Bolt_isa.Reg.t
  | Cfi_teardown (* epilogue: frame gone *)
  | Cfi_set_state of cfi_state

type fde = {
  fde_func : string; (* symbol name; "" if anonymous *)
  fde_addr : int; (* function start (address in exes, sec offset in objs) *)
  fde_size : int;
  fde_cfi : (int * cfi_op) list; (* sorted by code offset *)
}

(* Per-function line-number table, the .debug_line analog: [entries] maps a
   code offset (function-relative) to the source file/line that produced
   the instruction there.  A rewriter that moves code must regenerate the
   offsets, which is what the paper's -update-debug-sections does. *)
type dbg = {
  dbg_func : string;
  dbg_addr : int; (* function start: section offset in objects, address in exes *)
  dbg_entries : (int * string * int) list; (* offset, file, line *)
}

(* Exception table: ranges of code covered by a landing pad, offsets
   relative to function start. *)
type lsda_entry = {
  lsda_start : int;
  lsda_len : int;
  lsda_pad : int; (* landing pad offset within the function *)
  lsda_action : int;
}

type lsda = { lsda_func : string; lsda_fn_addr : int; lsda_entries : lsda_entry list }

(* Applies [ops] in offset order up to and including [off]. *)
let cfi_state_at ops off =
  let apply st = function
    | Cfi_establish -> { st with cfa_established = true }
    | Cfi_def_locals n -> { st with cfa_locals = n }
    | Cfi_save (r, slot) -> { st with cfa_saved = st.cfa_saved @ [ (r, slot) ] }
    | Cfi_restore r ->
        { st with cfa_saved = List.filter (fun (r', _) -> r' <> r) st.cfa_saved }
    | Cfi_teardown -> initial_cfi_state
    | Cfi_set_state s -> s
  in
  List.fold_left
    (fun st (o, op) -> if o <= off then apply st op else st)
    initial_cfi_state ops

let cfi_state_equal a b =
  a.cfa_established = b.cfa_established
  && a.cfa_locals = b.cfa_locals
  && List.sort compare a.cfa_saved = List.sort compare b.cfa_saved
