lib/obj/buf.ml: Buffer Bytes Char Int64 List String
