lib/obj/objfile.ml: Bolt_isa Buf Buffer List Printf String Types
