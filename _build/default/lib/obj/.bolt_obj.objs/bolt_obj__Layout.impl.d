lib/obj/layout.ml:
