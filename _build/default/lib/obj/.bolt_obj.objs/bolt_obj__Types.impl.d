lib/obj/types.ml: Bolt_isa Buf Bytes List Printf
