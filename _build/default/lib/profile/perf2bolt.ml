(* perf2bolt: convert raw simulator samples (absolute addresses) into the
   function-relative fdata profile, using the executable's symbol table.

   Mirrors the real tool: branch records whose endpoints fall outside any
   known function are dropped; fall-through ranges are only kept when both
   ends land in the same function. *)

open Bolt_obj

let convert (exe : Objfile.t) (raw : Bolt_sim.Machine.raw_profile) : Fdata.t =
  let funcs =
    Objfile.function_symbols exe
    |> List.map (fun (s : Types.symbol) -> (s.sym_value, s.sym_value + s.sym_size, s.sym_name))
    |> Array.of_list
  in
  Array.sort compare funcs;
  let resolve addr =
    let lo = ref 0 and hi = ref (Array.length funcs - 1) in
    let res = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let a, b, name = funcs.(mid) in
      if addr < a then hi := mid - 1
      else if addr >= b then lo := mid + 1
      else begin
        res := Some (name, addr - a);
        lo := !hi + 1
      end
    done;
    !res
  in
  let branches = ref [] in
  Hashtbl.iter
    (fun (f, t) (cnt, mis) ->
      match (resolve f, resolve t) with
      | Some (ff, fo), Some (tf, to_) ->
          branches :=
            {
              Fdata.br_from_func = ff;
              br_from_off = fo;
              br_to_func = tf;
              br_to_off = to_;
              br_count = !cnt;
              br_mispreds = !mis;
            }
            :: !branches
      | _ -> ())
    raw.rp_branches;
  let ranges = ref [] in
  Hashtbl.iter
    (fun (s, e) cnt ->
      match (resolve s, resolve e) with
      | Some (f1, o1), Some (f2, o2) when f1 = f2 && o2 >= o1 ->
          ranges :=
            { Fdata.rg_func = f1; rg_start = o1; rg_end = o2; rg_count = !cnt } :: !ranges
      | _ -> ())
    raw.rp_traces;
  let samples = ref [] in
  Hashtbl.iter
    (fun ip cnt ->
      match resolve ip with
      | Some (f, o) ->
          samples := { Fdata.sm_func = f; sm_off = o; sm_count = !cnt } :: !samples
      | None -> ())
    raw.rp_ips;
  let total =
    List.fold_left (fun a (b : Fdata.branch) -> a + b.br_count) 0 !branches
    + List.fold_left (fun a (s : Fdata.sample) -> a + s.sm_count) 0 !samples
  in
  {
    Fdata.lbr = raw.rp_lbr;
    branches = List.rev !branches;
    ranges = List.rev !ranges;
    samples = List.rev !samples;
    total_samples = total;
  }
