(** BOLT's profile format (the fdata/YAML analog): function-relative
    branch records, LBR fall-through ranges and plain IP samples.

    Text format, one record per line:
    {v
    mode lbr|sample
    B <from_func> <from_off> <to_func> <to_off> <count> <mispreds>
    F <func> <start_off> <end_off> <count>
    S <func> <off> <count>
    v} *)

type branch = {
  br_from_func : string;
  br_from_off : int;
  br_to_func : string;
  br_to_off : int;  (** 0 means the target's entry: a call or tail transfer *)
  br_count : int;
  br_mispreds : int;
}

type range = { rg_func : string; rg_start : int; rg_end : int; rg_count : int }

type sample = { sm_func : string; sm_off : int; sm_count : int }

type t = {
  lbr : bool;  (** false: only [samples] are meaningful (§5's non-LBR mode) *)
  branches : branch list;
  ranges : range list;
  samples : sample list;
  total_samples : int;
}

val empty : t

(** Aggregate event count attributed to each function — the hotness the
    reorder-functions pass sorts by. *)
val func_events : t -> (string, int) Hashtbl.t

val save : string -> t -> unit

exception Bad_format of string

val load : string -> t
