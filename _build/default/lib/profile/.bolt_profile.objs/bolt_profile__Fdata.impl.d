lib/profile/fdata.ml: Hashtbl List Printf String
