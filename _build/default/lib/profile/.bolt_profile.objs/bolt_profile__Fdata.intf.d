lib/profile/fdata.mli: Hashtbl
