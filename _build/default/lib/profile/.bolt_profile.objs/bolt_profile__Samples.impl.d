lib/profile/samples.ml: Bolt_obj Bolt_sim Buffer Hashtbl String
