lib/profile/perf2bolt.ml: Array Bolt_obj Bolt_sim Fdata Hashtbl List Objfile Types
