(* BOLT's profile format (the fdata/YAML analog): function-relative branch
   records, fall-through ranges and plain IP samples.

   Produced by [Perf2bolt] from raw simulator samples; consumed by the
   rewriter's profile matcher.  Text format, one record per line:

     B <from_func> <from_off> <to_func> <to_off> <count> <mispreds>
     F <func> <start_off> <end_off> <count>        (LBR fall-through range)
     S <func> <off> <count>                        (non-LBR IP sample)

   Function names never contain spaces by construction. *)

type branch = {
  br_from_func : string;
  br_from_off : int;
  br_to_func : string;
  br_to_off : int;
  br_count : int;
  br_mispreds : int;
}

type range = { rg_func : string; rg_start : int; rg_end : int; rg_count : int }

type sample = { sm_func : string; sm_off : int; sm_count : int }

type t = {
  lbr : bool;
  branches : branch list;
  ranges : range list;
  samples : sample list;
  total_samples : int;
}

let empty = { lbr = true; branches = []; ranges = []; samples = []; total_samples = 0 }

(* Aggregate count of events attributed to a function, used for function
   hotness by the reorder-functions pass. *)
let func_events t =
  let h = Hashtbl.create 64 in
  let add f c = Hashtbl.replace h f (c + try Hashtbl.find h f with Not_found -> 0) in
  List.iter (fun b -> add b.br_from_func b.br_count) t.branches;
  List.iter (fun r -> add r.rg_func r.rg_count) t.ranges;
  List.iter (fun s -> add s.sm_func s.sm_count) t.samples;
  h

let save path t =
  let oc = open_out path in
  Printf.fprintf oc "mode %s\n" (if t.lbr then "lbr" else "sample");
  List.iter
    (fun b ->
      Printf.fprintf oc "B %s %d %s %d %d %d\n" b.br_from_func b.br_from_off
        b.br_to_func b.br_to_off b.br_count b.br_mispreds)
    t.branches;
  List.iter
    (fun r -> Printf.fprintf oc "F %s %d %d %d\n" r.rg_func r.rg_start r.rg_end r.rg_count)
    t.ranges;
  List.iter
    (fun s -> Printf.fprintf oc "S %s %d %d\n" s.sm_func s.sm_off s.sm_count)
    t.samples;
  close_out oc

exception Bad_format of string

let load path =
  let ic = open_in path in
  let branches = ref [] in
  let ranges = ref [] in
  let samples = ref [] in
  let lbr = ref true in
  (try
     while true do
       let line = input_line ic in
       match String.split_on_char ' ' line with
       | [ "mode"; m ] -> lbr := m = "lbr"
       | [ "B"; ff; fo; tf; to_; c; m ] ->
           branches :=
             {
               br_from_func = ff;
               br_from_off = int_of_string fo;
               br_to_func = tf;
               br_to_off = int_of_string to_;
               br_count = int_of_string c;
               br_mispreds = int_of_string m;
             }
             :: !branches
       | [ "F"; f; s; e; c ] ->
           ranges :=
             {
               rg_func = f;
               rg_start = int_of_string s;
               rg_end = int_of_string e;
               rg_count = int_of_string c;
             }
             :: !ranges
       | [ "S"; f; o; c ] ->
           samples :=
             { sm_func = f; sm_off = int_of_string o; sm_count = int_of_string c }
             :: !samples
       | [] | [ "" ] -> ()
       | _ -> raise (Bad_format line)
     done
   with End_of_file -> close_in ic);
  let total =
    List.fold_left (fun a (b : branch) -> a + b.br_count) 0 !branches
    + List.fold_left (fun a s -> a + s.sm_count) 0 !samples
  in
  {
    lbr = !lbr;
    branches = List.rev !branches;
    ranges = List.rev !ranges;
    samples = List.rev !samples;
    total_samples = total;
  }
