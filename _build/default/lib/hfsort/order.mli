(** Function-ordering algorithms over a weighted dynamic call graph.

    [C3] is HFSort's call-chain clustering (Ottoni & Maher, CGO'17): each
    hot function is appended to the cluster of its hottest caller while
    the merged cluster fits a page budget, then clusters are emitted in
    decreasing density (samples per byte).  [Hfsort_plus] adds a greedy
    cluster-merging refinement driven by inter-cluster call weight, the
    spirit of BOLT's [-reorder-functions=hfsort+].  [Pettis_hansen] is the
    classic "closest is best" baseline. *)

type algo = C3 | Hfsort_plus | Pettis_hansen

(** Bytes of hot code a C3 cluster may grow to before merging stops; one
    simulated i-TLB page. *)
val page_budget : int

(** Order produced by plain C3 over the hot (sampled) functions only. *)
val c3 : Callgraph.t -> string list

(** C3 followed by the hfsort+ style cluster-merge refinement. *)
val hfsort_plus : Callgraph.t -> string list

(** Classic Pettis-Hansen function ordering. *)
val pettis_hansen : Callgraph.t -> string list

(** [order algo g ~original] is a complete permutation of [original]: the
    algorithm's hot-function order first, then every remaining function in
    its original position order. *)
val order : algo -> Callgraph.t -> original:string list -> string list
