(* Function-ordering algorithms.

   - [c3] is HFSort's call-chain clustering (Ottoni & Maher, CGO'17): hot
     functions are appended to the cluster of their hottest caller as long
     as the merged cluster stays within a page-budget and the callee is not
     drastically colder than the cluster, then clusters are emitted by
     density (samples per byte).
   - [hfsort_plus] runs c3 and then greedily merges clusters by expected
     i-TLB benefit — a simplified rendition of the hfsort+ refinement used
     by BOLT's -reorder-functions=hfsort+.
   - [pettis_hansen] is the classic PH "closest is best" cluster merge on
     raw edge weights, the baseline HFSort was measured against. *)

type algo = C3 | Hfsort_plus | Pettis_hansen

let page_budget = 4096
let merge_density_ratio = 8 (* callee may be at most 8x colder per byte *)

type cluster = {
  mutable members : string list; (* reversed *)
  mutable c_size : int;
  mutable c_samples : int;
}

let density c = if c.c_size = 0 then 0.0 else float_of_int c.c_samples /. float_of_int c.c_size

let cluster_order clusters =
  clusters
  |> List.filter (fun c -> c.members <> [])
  |> List.sort (fun a b -> compare (density b) (density a))
  |> List.concat_map (fun c -> List.rev c.members)

let c3_clusters (g : Callgraph.t) =
  let nodes = Hashtbl.fold (fun _ n acc -> n :: acc) g.Callgraph.nodes [] in
  let hot =
    List.filter (fun n -> n.Callgraph.n_samples > 0) nodes
    |> List.sort (fun a b ->
           if a.Callgraph.n_samples <> b.Callgraph.n_samples then
             compare b.Callgraph.n_samples a.Callgraph.n_samples
           else compare a.Callgraph.n_name b.Callgraph.n_name)
  in
  let cluster_of : (string, cluster) Hashtbl.t = Hashtbl.create 256 in
  let clusters = ref [] in
  let fresh n =
    let c =
      { members = [ n.Callgraph.n_name ]; c_size = n.Callgraph.n_size; c_samples = n.n_samples }
    in
    Hashtbl.replace cluster_of n.n_name c;
    clusters := c :: !clusters;
    c
  in
  List.iter (fun n -> ignore (fresh n)) hot;
  let best_caller = Callgraph.hottest_caller g in
  List.iter
    (fun n ->
      match Hashtbl.find_opt best_caller n.Callgraph.n_name with
      | None -> ()
      | Some (caller, _w) -> (
          match
            (Hashtbl.find_opt cluster_of caller, Hashtbl.find_opt cluster_of n.n_name)
          with
          | Some cc, Some cf when cc != cf ->
              let merged_size = cc.c_size + cf.c_size in
              let callee_density =
                if cf.c_size = 0 then 0.0
                else float_of_int cf.c_samples /. float_of_int cf.c_size
              in
              if
                merged_size <= page_budget
                && callee_density *. float_of_int merge_density_ratio >= density cc
              then begin
                cc.members <- cf.members @ cc.members;
                cc.c_size <- merged_size;
                cc.c_samples <- cc.c_samples + cf.c_samples;
                List.iter (fun m -> Hashtbl.replace cluster_of m cc) cf.members;
                cf.members <- [];
                cf.c_size <- 0;
                cf.c_samples <- 0
              end
          | _ -> ()))
    hot;
  !clusters

let c3 g = cluster_order (c3_clusters g)

(* hfsort+ style refinement: keep merging cluster pairs with the highest
   inter-cluster call weight normalised by merged size, while the merge
   still fits a small multiple of the page budget. *)
let hfsort_plus (g : Callgraph.t) =
  let clusters = Array.of_list (List.filter (fun c -> c.members <> []) (c3_clusters g)) in
  let n = Array.length clusters in
  let idx_of = Hashtbl.create 256 in
  Array.iteri
    (fun i c -> List.iter (fun m -> Hashtbl.replace idx_of m i) c.members)
    clusters;
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  (* inter-cluster weights *)
  let w = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun (a, b) r ->
      match (Hashtbl.find_opt idx_of a, Hashtbl.find_opt idx_of b) with
      | Some ia, Some ib when ia <> ib ->
          let key = (min ia ib, max ia ib) in
          Hashtbl.replace w key (!r + try Hashtbl.find w key with Not_found -> 0)
      | _ -> ())
    g.Callgraph.edges;
  let candidates =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) w []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  List.iter
    (fun ((ia, ib), _) ->
      let ra = find ia and rb = find ib in
      if ra <> rb && clusters.(ra).c_size + clusters.(rb).c_size <= 4 * page_budget
      then begin
        let a, b = (clusters.(ra), clusters.(rb)) in
        (* append the less dense cluster after the denser one *)
        let hi, lo = if density a >= density b then (a, b) else (b, a) in
        hi.members <- lo.members @ hi.members;
        hi.c_size <- hi.c_size + lo.c_size;
        hi.c_samples <- hi.c_samples + lo.c_samples;
        lo.members <- [];
        lo.c_size <- 0;
        lo.c_samples <- 0;
        let rhi = if hi == a then ra else rb in
        parent.(ra) <- rhi;
        parent.(rb) <- rhi
      end)
    candidates;
  cluster_order (Array.to_list clusters)

(* Classic Pettis-Hansen function ordering: merge the clusters joined by
   the globally heaviest remaining edge. *)
let pettis_hansen (g : Callgraph.t) =
  let cluster_of = Hashtbl.create 256 in
  let clusters = ref [] in
  Hashtbl.iter
    (fun _ n ->
      if n.Callgraph.n_samples > 0 then begin
        let c =
          {
            members = [ n.Callgraph.n_name ];
            c_size = n.Callgraph.n_size;
            c_samples = n.n_samples;
          }
        in
        Hashtbl.replace cluster_of n.n_name c;
        clusters := c :: !clusters
      end)
    g.Callgraph.nodes;
  let edges =
    Hashtbl.fold (fun (a, b) r acc -> if a <> b then ((a, b), !r) :: acc else acc) g.edges []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  List.iter
    (fun ((a, b), _) ->
      match (Hashtbl.find_opt cluster_of a, Hashtbl.find_opt cluster_of b) with
      | Some ca, Some cb when ca != cb ->
          ca.members <- cb.members @ ca.members;
          ca.c_size <- ca.c_size + cb.c_size;
          ca.c_samples <- ca.c_samples + cb.c_samples;
          List.iter (fun m -> Hashtbl.replace cluster_of m ca) cb.members;
          cb.members <- [];
          cb.c_size <- 0;
          cb.c_samples <- 0
      | _ -> ())
    edges;
  cluster_order !clusters

(* Full ordering: hot functions by the chosen algorithm, then everything
   else in original order. *)
let order algo (g : Callgraph.t) ~(original : string list) : string list =
  let hot =
    match algo with
    | C3 -> c3 g
    | Hfsort_plus -> hfsort_plus g
    | Pettis_hansen -> pettis_hansen g
  in
  let placed = Hashtbl.create 256 in
  List.iter (fun f -> Hashtbl.replace placed f ()) hot;
  hot @ List.filter (fun f -> not (Hashtbl.mem placed f)) original
