lib/hfsort/callgraph.ml: Bolt_profile Hashtbl List
