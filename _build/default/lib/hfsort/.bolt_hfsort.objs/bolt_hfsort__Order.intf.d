lib/hfsort/order.mli: Callgraph
