lib/hfsort/order.ml: Array Callgraph Hashtbl List
