lib/pipeline/experiments.ml: Bolt_core Bolt_hfsort Bolt_linker Bolt_minic Bolt_obj Bolt_profile Bolt_sim Bolt_workloads Hashtbl List Pipeline
