lib/pipeline/pipeline.mli: Bolt_core Bolt_hfsort Bolt_minic Bolt_obj Bolt_profile Bolt_sim
