(* The BOLT driver: rewriting pipeline of Figure 3 with the optimization
   sequence of Table 1.

     1. strip-rep-ret     5. inline-small      9. reorder-bbs (+split)
     2. icf               6. simplify-ro-loads 10. peepholes
     3. icp               7. icf               11. uce
     4. peepholes         8. plt               12. fixup-branches (emission)
                                               13. reorder-functions
                                               14. sctc
                                               15. frame-opts
                                               16. shrink-wrapping        *)

type report = {
  r_funcs : int;
  r_simple : int;
  r_icf_folded : int;
  r_icf_bytes : int;
  r_icp_promoted : int;
  r_inlined : int;
  r_frame_saves_removed : int;
  r_shrink_wrapped : int;
  r_profile_branches_matched : int;
  r_profile_branches_unmatched : int;
  r_dyno_before : Dyno_stats.t;
  r_dyno_after : Dyno_stats.t;
  r_text_before : int;
  r_text_after : int;
  r_hot_size : int;
  r_cold_size : int;
  r_bad_layout : Report.finding list;
  r_log : string list;
}

let optimize ?(opts = Opts.default) (exe : Bolt_obj.Objfile.t)
    (prof : Bolt_profile.Fdata.t) : Bolt_obj.Objfile.t * report =
  let ctx = Context.create ~opts exe in
  (* Figure 3: discover functions, read debug info and profile,
     disassemble, build CFGs *)
  Build.run ctx;
  let mstats = Match_profile.attach ctx prof in
  Match_profile.finalize ctx ~lbr:prof.lbr ~trust_fallthrough:opts.trust_fallthrough;
  let bad_layout = Report.bad_layout ctx ~top:20 in
  let dyno_before = Dyno_stats.collect ctx in
  (* Table 1 pipeline *)
  if opts.strip_rep_ret then Passes_simple.strip_rep_ret ctx;
  let icf_folded1, icf_bytes1 = if opts.icf then Icf.run ctx else (0, 0) in
  let icp_promoted =
    if opts.icp then Icp.run ctx (Icp.build_site_profile ctx prof) else 0
  in
  if opts.peepholes then Passes_simple.peepholes ctx;
  let inlined = if opts.inline_small then Inline_small.run ctx else 0 in
  if opts.simplify_ro_loads then Passes_simple.simplify_ro_loads ctx;
  let icf_folded2, icf_bytes2 = if opts.icf then Icf.run ctx else (0, 0) in
  if opts.plt then Passes_simple.plt ctx;
  Layout_bbs.reorder ctx;
  Layout_bbs.split ctx;
  if opts.peepholes then Passes_simple.peepholes ctx;
  if opts.uce then Passes_simple.uce ctx;
  (* fixup-branches happens structurally at emission *)
  ctx.Context.func_layout <- Some (Reorder_funcs.run ctx prof);
  if opts.sctc then Passes_simple.sctc ctx;
  let frames_removed = if opts.frame_opts then Frame_opts.frame_opts ctx else 0 in
  let shrink_wrapped =
    if opts.shrink_wrapping then Frame_opts.shrink_wrapping ctx else 0
  in
  let dyno_after = Dyno_stats.collect ctx in
  (* emit, link, rewrite *)
  let rw = Rewrite.run ctx in
  let simple = List.length (Context.simple_funcs ctx) in
  ( rw.Rewrite.out,
    {
      r_funcs = List.length ctx.Context.order;
      r_simple = simple;
      r_icf_folded = icf_folded1 + icf_folded2;
      r_icf_bytes = icf_bytes1 + icf_bytes2;
      r_icp_promoted = icp_promoted;
      r_inlined = inlined;
      r_frame_saves_removed = frames_removed;
      r_shrink_wrapped = shrink_wrapped;
      r_profile_branches_matched = mstats.Match_profile.matched_branches;
      r_profile_branches_unmatched = mstats.Match_profile.unmatched_branches;
      r_dyno_before = dyno_before;
      r_dyno_after = dyno_after;
      r_text_before = rw.Rewrite.text_size_before;
      r_text_after = rw.Rewrite.text_size_after;
      r_hot_size = rw.Rewrite.hot_size;
      r_cold_size = rw.Rewrite.cold_size;
      r_bad_layout = bad_layout;
      r_log = List.rev ctx.Context.log;
    } )

let pp_report ppf (r : report) =
  Fmt.pf ppf "BOLT report:@.";
  Fmt.pf ppf "  functions: %d (%d simple)@." r.r_funcs r.r_simple;
  Fmt.pf ppf "  icf: %d folded (%d bytes)@." r.r_icf_folded r.r_icf_bytes;
  Fmt.pf ppf "  icp: %d promoted, inline-small: %d, frame saves removed: %d, shrink-wrapped: %d@."
    r.r_icp_promoted r.r_inlined r.r_frame_saves_removed r.r_shrink_wrapped;
  Fmt.pf ppf "  profile: %d branch records matched, %d unmatched@."
    r.r_profile_branches_matched r.r_profile_branches_unmatched;
  Fmt.pf ppf "  text: %d -> %d bytes (cold %d)@." r.r_text_before r.r_text_after
    r.r_cold_size;
  Fmt.pf ppf "  dyno-stats (profile-weighted, before -> after):@.";
  Dyno_stats.pp_comparison ppf ~before:r.r_dyno_before ~after:r.r_dyno_after
