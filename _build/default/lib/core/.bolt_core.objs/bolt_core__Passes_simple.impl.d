lib/core/passes_simple.ml: Array Bfunc Bolt_isa Codec Context Hashtbl Insn List Reg
