lib/core/bolt.mli: Bolt_obj Bolt_profile Dyno_stats Format Opts Report
