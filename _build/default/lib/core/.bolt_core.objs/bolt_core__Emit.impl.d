lib/core/emit.ml: Bfunc Bolt_asm Bolt_isa Bolt_obj Cond Hashtbl Insn List
