lib/core/dataflow.ml: Bfunc Bolt_isa Hashtbl Insn List Reg
