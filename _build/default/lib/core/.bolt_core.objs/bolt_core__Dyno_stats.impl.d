lib/core/dyno_stats.ml: Bfunc Bolt_isa Context Fmt Hashtbl List
