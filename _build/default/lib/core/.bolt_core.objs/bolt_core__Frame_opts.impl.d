lib/core/frame_opts.ml: Bfunc Bolt_isa Bolt_obj Context Dataflow Hashtbl Insn List Reg
