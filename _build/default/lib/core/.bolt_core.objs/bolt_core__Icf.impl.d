lib/core/icf.ml: Array Bfunc Bolt_isa Buffer Context Hashtbl List Printf String
