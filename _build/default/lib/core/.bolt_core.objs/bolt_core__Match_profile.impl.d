lib/core/match_profile.ml: Array Bfunc Bolt_profile Context Hashtbl List
