lib/core/build.ml: Array Bfunc Bolt_isa Bolt_obj Codec Context Hashtbl Insn List Objfile Option Opts Printf Types
