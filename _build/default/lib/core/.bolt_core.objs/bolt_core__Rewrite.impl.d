lib/core/rewrite.ml: Array Bfunc Bolt_asm Bolt_isa Bolt_obj Buf Bytes Char Context Emit Filename Hashtbl Layout List Objfile Opts String Types
