lib/core/layout_bbs.ml: Bfunc Context Hashtbl List Opts
