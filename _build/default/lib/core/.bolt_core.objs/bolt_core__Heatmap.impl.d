lib/core/heatmap.ml: Array Buffer Fmt Hashtbl Printf
