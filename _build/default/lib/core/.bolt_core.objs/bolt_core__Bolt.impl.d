lib/core/bolt.ml: Bolt_obj Bolt_profile Build Context Dyno_stats Fmt Frame_opts Icf Icp Inline_small Layout_bbs List Match_profile Opts Passes_simple Reorder_funcs Report Rewrite
