lib/core/context.ml: Array Bfunc Bolt_isa Bolt_obj Buf Bytes Fmt Hashtbl List Objfile Opts Types
