lib/core/report.ml: Array Bfunc Context Fmt List Printf
