lib/core/icp.ml: Bfunc Bolt_isa Bolt_profile Cond Context Hashtbl Insn List Opts
