lib/core/inline_small.ml: Bfunc Bolt_isa Context Hashtbl Insn List Opts Reg
