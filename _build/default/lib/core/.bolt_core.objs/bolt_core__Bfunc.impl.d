lib/core/bfunc.ml: Array Bolt_isa Bolt_obj Cond Fmt Hashtbl Insn List Printf String
