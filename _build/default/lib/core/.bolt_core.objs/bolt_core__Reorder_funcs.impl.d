lib/core/reorder_funcs.ml: Bfunc Bolt_hfsort Bolt_isa Bolt_profile Context Hashtbl List Opts
