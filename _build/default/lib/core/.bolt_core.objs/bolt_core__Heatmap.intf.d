lib/core/heatmap.mli: Format Hashtbl
