lib/core/opts.ml:
