(* Emit rewritten functions: CFG fragments back to machine code.

   This is the "emit and link functions" stage of Figure 3.  Each
   function's hot fragment (and optional cold fragment) is lowered to an
   assembler body:

   - terminators are materialised against the final layout — branch
     polarity is chosen so the fall-through is the layout successor, and
     unnecessary jumps disappear (fixup-branches, pass 12);
   - branch relaxation picks 2-byte encodings where displacements allow;
   - frame information is regenerated: whenever the linear frame state at
     a block boundary differs from the state the unwinder would replay, a
     set-state CFI record is inserted (§3.4);
   - exception ranges are regenerated from the instruction annotations;
     cross-fragment landing pads stay symbolic until addresses are known;
   - cross-fragment and cross-function references become relocations that
     the rewriter patches once the new layout is final. *)

open Bolt_isa
open Bolt_asm.Asm
open Bfunc

(* Globally-unique symbol for a block, used for cross-fragment refs. *)
let xref fn l = fn ^ "/" ^ l

type fragment = {
  fr_name : string; (* symbol: fn or fn.cold *)
  fr_func : string; (* owning function *)
  fr_out : fout;
  fr_labels : (string * int) list; (* block label -> offset *)
  fr_lsda_sym : (int * int * string) list;
  fr_has_fde : bool;
}

let cfi_state_after st ops =
  List.fold_left
    (fun st op ->
      match op with
      | Bolt_obj.Types.Cfi_establish -> { st with Bolt_obj.Types.cfa_established = true }
      | Bolt_obj.Types.Cfi_def_locals n -> { st with Bolt_obj.Types.cfa_locals = n }
      | Bolt_obj.Types.Cfi_save (r, slot) ->
          { st with Bolt_obj.Types.cfa_saved = st.Bolt_obj.Types.cfa_saved @ [ (r, slot) ] }
      | Bolt_obj.Types.Cfi_restore r ->
          {
            st with
            Bolt_obj.Types.cfa_saved =
              List.filter (fun (r', _) -> r' <> r) st.Bolt_obj.Types.cfa_saved;
          }
      | Bolt_obj.Types.Cfi_teardown -> Bolt_obj.Types.initial_cfi_state
      | Bolt_obj.Types.Cfi_set_state s -> s)
    st ops

(* Lower one fragment (a list of blocks in final order) to aitem list. *)
let body_of_fragment (fb : Bfunc.t) ~(in_fragment : string -> bool)
    ~(first_state : Bolt_obj.Types.cfi_state option) (blocks : string list) : aitem list =
  let items = ref [] in
  let push it = items := it :: !items in
  let ref_of l = if in_fragment l then Insn.Sym (l, 0) else Insn.Sym (xref fb.fb_name l, 0) in
  let cur_state = ref (match first_state with Some s -> Some s | None -> None) in
  let rec emit_blocks = function
    | [] -> ()
    | l :: rest ->
        let b = block fb l in
        push (A_label l);
        (* regenerate frame info at the boundary *)
        (match !cur_state with
        | Some st when not (Bolt_obj.Types.cfi_state_equal st b.cfi_entry) ->
            push (A_cfi (Bolt_obj.Types.Cfi_set_state b.cfi_entry))
        | None ->
            if b.cfi_entry <> Bolt_obj.Types.initial_cfi_state then
              push (A_cfi (Bolt_obj.Types.Cfi_set_state b.cfi_entry))
        | Some _ -> ());
        cur_state := Some b.cfi_entry;
        List.iter
          (fun (i : minsn) ->
            (match i.loc with Some (f, ln) -> push (A_loc (f, ln)) | None -> ());
            (match i.lp with
            | Some pad ->
                (* landing-pad annotations keep their block symbol; the
                   rewriter resolves pads across fragments *)
                push (A_insn_lp (i.op, pad))
            | None -> push (A_insn i.op));
            (match !cur_state with
            | Some st -> cur_state := Some (cfi_state_after st i.cfi_after)
            | None -> ());
            List.iter (fun op -> push (A_cfi op)) i.cfi_after)
          b.insns;
        let next = match rest with n :: _ -> Some n | [] -> None in
        (match b.term with
        | T_jump t -> if next <> Some t then push (A_insn (Insn.Jmp (ref_of t, Insn.W8)))
        | T_cond (c, taken, fall) ->
            if next = Some fall then push (A_insn (Insn.Jcc (c, ref_of taken, Insn.W8)))
            else if next = Some taken then
              push (A_insn (Insn.Jcc (Cond.invert c, ref_of fall, Insn.W8)))
            else begin
              push (A_insn (Insn.Jcc (c, ref_of taken, Insn.W8)));
              push (A_insn (Insn.Jmp (ref_of fall, Insn.W8)))
            end
        | T_condtail (c, fn, fall) ->
            push (A_insn (Insn.Jcc (c, Insn.Sym (fn, 0), Insn.W32)));
            if next <> Some fall then push (A_insn (Insn.Jmp (ref_of fall, Insn.W8)))
        | T_indirect _ | T_stop -> ());
        emit_blocks rest
  in
  emit_blocks blocks;
  List.rev !items

(* Emit a simple function: hot fragment plus optional cold fragment. *)
let emit_simple (fb : Bfunc.t) : fragment list =
  let hot = hot_layout fb in
  let cold = cold_layout fb in
  let in_hot = Hashtbl.create 16 and in_cold = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace in_hot l ()) hot;
  List.iter (fun l -> Hashtbl.replace in_cold l ()) cold;
  let mk name blocks ~in_fragment ~first_state =
    let body = body_of_fragment fb ~in_fragment ~first_state blocks in
    let af =
      { af_name = name; af_global = true; af_align = 1; af_emit_fde = true; af_body = body }
    in
    let out = assemble_function ~base:0 af in
    {
      fr_name = name;
      fr_func = fb.fb_name;
      fr_out = out;
      fr_labels = out.fo_labels;
      fr_lsda_sym = out.fo_lsda_sym;
      fr_has_fde = true;
    }
  in
  let hot_frag =
    mk fb.fb_name hot
      ~in_fragment:(Hashtbl.mem in_hot)
      ~first_state:(Some Bolt_obj.Types.initial_cfi_state)
  in
  if cold = [] then [ hot_frag ]
  else
    let cold_frag =
      mk (fb.fb_name ^ ".cold") cold ~in_fragment:(Hashtbl.mem in_cold) ~first_state:None
    in
    [ hot_frag; cold_frag ]

(* Emit a non-simple function byte-identically (modulo symbolized
   references, which the rewriter re-resolves). *)
let emit_raw (fb : Bfunc.t) : fragment =
  let body =
    List.concat_map
      (fun (i : minsn) ->
        match i.lp with
        | Some pad -> [ A_insn_lp (i.op, pad) ]
        | None -> [ A_insn i.op ])
      fb.raw_insns
  in
  let af =
    {
      af_name = fb.fb_name;
      af_global = true;
      af_align = 1;
      af_emit_fde = false;
      af_body = body;
    }
  in
  let out = assemble_function ~base:0 af in
  {
    fr_name = fb.fb_name;
    fr_func = fb.fb_name;
    fr_out = out;
    fr_labels = out.fo_labels;
    fr_lsda_sym = [];
    fr_has_fde = false;
  }
