(* -report-bad-layout (§6.3, Figure 10): find frequently-executed
   functions whose ORIGINAL layout interleaves never-executed blocks
   between hot ones — the signature of compile-time FDO having aggregated
   inlined-profile data. *)

open Bfunc

type finding = {
  bl_func : string;
  bl_block : string;
  bl_offset : int;
  bl_prev_count : int;
  bl_next_count : int;
  bl_loc : (string * int) option; (* source origin of the cold block *)
}

(* Must run before reorder-bbs (on the original layout). *)
let bad_layout ctx ~(top : int) : finding list =
  let findings = ref [] in
  List.iter
    (fun fb ->
      if has_profile fb && fb.exec_count > 0 then begin
        let arr = Array.of_list fb.layout in
        for i = 1 to Array.length arr - 2 do
          let prev = block fb arr.(i - 1) in
          let b = block fb arr.(i) in
          let next = block fb arr.(i + 1) in
          if b.ecount = 0 && prev.ecount > 0 && next.ecount > 0 && not b.is_lp then
            findings :=
              {
                bl_func = fb.fb_name;
                bl_block = b.bl;
                bl_offset = b.b_off;
                bl_prev_count = prev.ecount;
                bl_next_count = next.ecount;
                bl_loc =
                  (match b.insns with
                  | i :: _ -> i.loc
                  | [] -> None);
              }
              :: !findings
        done
      end)
    (Context.simple_funcs ctx);
  let sorted =
    List.sort
      (fun a b ->
        compare (b.bl_prev_count + b.bl_next_count) (a.bl_prev_count + a.bl_next_count))
      !findings
  in
  List.filteri (fun i _ -> i < top) sorted

let pp_finding ppf f =
  Fmt.pf ppf "%s: cold block %s (offset %#x) between hot blocks (%d / %d)%s@."
    f.bl_func f.bl_block f.bl_offset f.bl_prev_count f.bl_next_count
    (match f.bl_loc with
    | Some (file, line) -> Printf.sprintf " # from %s:%d" file line
    | None -> "")
