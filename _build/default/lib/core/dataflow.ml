(* Binary-level dataflow: register liveness over the CFG, the analysis
   framework §4 mentions feeding BOLT's frame optimizations.

   Register sets are int bitmasks (16 registers).  Calls clobber the
   caller-saved set and are assumed to read all argument registers; a
   return reads r0 and every callee-saved register (the caller expects
   them preserved), which makes the analysis safely conservative for
   deciding whether a callee-saved register is genuinely dead. *)

open Bolt_isa
open Bfunc

let mask_of regs = List.fold_left (fun m r -> m lor (1 lsl Reg.to_int r)) 0 regs

let caller_saved_mask = mask_of Reg.caller_saved
let callee_saved_mask = mask_of Reg.callee_saved
let args_mask = mask_of Reg.args
let ret_live_mask = (1 lsl Reg.to_int Reg.r0) lor callee_saved_mask lor (1 lsl 15)

let insn_uses (i : Insn.t) =
  match i with
  | Insn.Call _ | Insn.Call_mem _ -> args_mask
  | Insn.Call_ind r -> args_mask lor (1 lsl Reg.to_int r)
  | Insn.Ret | Insn.Repz_ret -> ret_live_mask
  | Insn.Throw -> 1 lsl Reg.to_int Reg.r0
  | _ -> mask_of (Insn.uses i)

let insn_defs (i : Insn.t) =
  match i with
  | Insn.Call _ | Insn.Call_mem _ | Insn.Call_ind _ -> caller_saved_mask
  | _ -> mask_of (Insn.defs i)

(* live-in per block label *)
let liveness (fb : Bfunc.t) : (string, int) Hashtbl.t =
  let live_in = Hashtbl.create 32 in
  let live_out = Hashtbl.create 32 in
  Hashtbl.iter
    (fun l _ ->
      Hashtbl.replace live_in l 0;
      Hashtbl.replace live_out l 0)
    fb.blocks;
  let block_transfer (b : bb) out =
    (* terminators: conditional branches read flags only; stop blocks end
       with their own final instruction already in [insns] *)
    let term_live =
      match b.term with
      | T_stop | T_indirect _ -> out (* final insn handled below *)
      | T_condtail _ -> out lor ret_live_mask lor args_mask
      | _ -> out
    in
    List.fold_right
      (fun (i : minsn) live ->
        live land lnot (insn_defs i.op) lor insn_uses i.op)
      b.insns term_live
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun l b ->
        let out =
          List.fold_left
            (fun acc s -> acc lor try Hashtbl.find live_in s with Not_found -> 0)
            0 (successors_eh fb b)
        in
        let out =
          (* stop blocks that fall nowhere: if they end in ret, the ret's
             uses are inside insns; throw similar *)
          out
        in
        Hashtbl.replace live_out l out;
        let inn = block_transfer b out in
        if inn <> (try Hashtbl.find live_in l with Not_found -> 0) then begin
          Hashtbl.replace live_in l inn;
          changed := true
        end)
      fb.blocks
  done;
  live_in

(* Does the function reference register [r] anywhere outside prologue
   pushes and epilogue pops of that same register? *)
let references_reg (fb : Bfunc.t) r =
  let rmask = 1 lsl Reg.to_int r in
  Hashtbl.fold
    (fun _ b acc ->
      acc
      || List.exists
           (fun (i : minsn) ->
             match i.op with
             | Insn.Push r' | Insn.Pop r' when Reg.equal r' r -> false
             | op -> insn_uses op land rmask <> 0 || insn_defs op land rmask <> 0)
           b.insns)
    fb.blocks false

(* Blocks that reference [r] (excluding its own push/pop). *)
let blocks_referencing (fb : Bfunc.t) r =
  let rmask = 1 lsl Reg.to_int r in
  Hashtbl.fold
    (fun l b acc ->
      if
        List.exists
          (fun (i : minsn) ->
            match i.op with
            | Insn.Push r' | Insn.Pop r' when Reg.equal r' r -> false
            | op -> insn_uses op land rmask <> 0 || insn_defs op land rmask <> 0)
          b.insns
      then l :: acc
      else acc)
    fb.blocks []
