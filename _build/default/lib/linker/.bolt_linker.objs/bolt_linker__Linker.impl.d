lib/linker/linker.ml: Array Bolt_isa Bolt_obj Buf Bytes Char Fmt Hashtbl Layout List Objfile String Types
