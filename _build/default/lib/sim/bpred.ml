(* Branch prediction: a gshare direction predictor, a direct-mapped BTB
   for branch targets (indirect branches predict their last observed
   target) and a return-address stack. *)

type t = {
  gshare : int array; (* 2-bit saturating counters *)
  gshare_mask : int;
  mutable ghist : int;
  btb_tags : int array;
  btb_targets : int array;
  btb_mask : int;
  ras : int array;
  mutable ras_top : int;
  mutable cond_lookups : int;
  mutable cond_misses : int;
  mutable target_misses : int;
}

let create ?(gshare_bits = 14) ?(btb_bits = 12) ?(ras_depth = 32) () =
  {
    gshare = Array.make (1 lsl gshare_bits) 2;
    gshare_mask = (1 lsl gshare_bits) - 1;
    ghist = 0;
    btb_tags = Array.make (1 lsl btb_bits) (-1);
    btb_targets = Array.make (1 lsl btb_bits) 0;
    btb_mask = (1 lsl btb_bits) - 1;
    ras = Array.make ras_depth 0;
    ras_top = 0;
    cond_lookups = 0;
    cond_misses = 0;
    target_misses = 0;
  }

(* Predict and update the direction of a conditional branch at [pc].
   Returns true when the prediction was wrong. *)
let cond_branch p pc taken =
  p.cond_lookups <- p.cond_lookups + 1;
  let idx = (pc lxor p.ghist) land p.gshare_mask in
  let ctr = p.gshare.(idx) in
  let predicted = ctr >= 2 in
  p.gshare.(idx) <- (if taken then min 3 (ctr + 1) else max 0 (ctr - 1));
  p.ghist <- ((p.ghist lsl 1) lor (if taken then 1 else 0)) land p.gshare_mask;
  let mispred = predicted <> taken in
  if mispred then p.cond_misses <- p.cond_misses + 1;
  mispred

(* Target prediction for a taken branch (direct or indirect) at [pc].
   Returns true when the predicted target was wrong. *)
let taken_target p pc target =
  let idx = pc land p.btb_mask in
  let mispred = p.btb_tags.(idx) <> pc || p.btb_targets.(idx) <> target in
  p.btb_tags.(idx) <- pc;
  p.btb_targets.(idx) <- target;
  if mispred then p.target_misses <- p.target_misses + 1;
  mispred

let push_ras p addr =
  p.ras.(p.ras_top mod Array.length p.ras) <- addr;
  p.ras_top <- p.ras_top + 1

(* Returns true when the return address was mispredicted. *)
let pop_ras p addr =
  if p.ras_top = 0 then true
  else begin
    p.ras_top <- p.ras_top - 1;
    let predicted = p.ras.(p.ras_top mod Array.length p.ras) in
    predicted <> addr
  end

let branch_misses p = p.cond_misses + p.target_misses
