lib/sim/bpred.ml: Array
