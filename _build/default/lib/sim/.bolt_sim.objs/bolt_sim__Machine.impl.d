lib/sim/machine.ml: Array Bolt_isa Bolt_obj Bpred Cache Codec Cond Hashtbl Insn Layout List Memory Objfile Option Printf Reg Sys Types
