lib/sim/memory.ml: Bytes Char Hashtbl Int64
