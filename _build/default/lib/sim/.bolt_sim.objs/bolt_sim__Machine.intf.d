lib/sim/machine.mli: Bolt_obj Hashtbl Memory
