(* Sparse paged memory for the simulator.

   Pages are allocated lazily; words are little-endian.  The aligned
   8-byte fast path covers almost all traffic (stack and array cells are
   8-aligned); the byte loop handles the rest, including cross-page
   accesses. *)

let page_bits = 12
let page_size = 1 lsl page_bits

type t = { pages : (int, Bytes.t) Hashtbl.t }

let create () = { pages = Hashtbl.create 256 }

let page m a =
  let key = a lsr page_bits in
  match Hashtbl.find_opt m.pages key with
  | Some p -> p
  | None ->
      let p = Bytes.make page_size '\x00' in
      Hashtbl.add m.pages key p;
      p

let read8 m a = Char.code (Bytes.unsafe_get (page m a) (a land (page_size - 1)))

let write8 m a v =
  Bytes.unsafe_set (page m a) (a land (page_size - 1)) (Char.unsafe_chr (v land 0xff))

let read64 m a =
  let off = a land (page_size - 1) in
  if a land 7 = 0 && off <= page_size - 8 then
    Int64.to_int (Bytes.get_int64_le (page m a) off)
  else begin
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read8 m (a + i)))
    done;
    Int64.to_int !v
  end

let write64 m a v =
  let off = a land (page_size - 1) in
  if a land 7 = 0 && off <= page_size - 8 then
    Bytes.set_int64_le (page m a) off (Int64.of_int v)
  else begin
    let v64 = Int64.of_int v in
    for i = 0 to 7 do
      write8 m (a + i) (Int64.to_int (Int64.shift_right_logical v64 (8 * i)))
    done
  end

let load_bytes m addr (b : Bytes.t) =
  Bytes.iteri (fun i c -> write8 m (addr + i) (Char.code c)) b
