(* Functional + timing simulator for BELF executables.

   This is the reproduction's stand-in for the paper's Intel testbed: it
   executes the program and charges a cycle cost driven by front-end
   structures (L1I, I-TLB, branch predictor, taken-branch bubbles) and the
   data side (L1D, D-TLB), with a shared L2 and LLC.  Cache and TLB sizes
   are deliberately small relative to the synthetic workloads so the
   binaries are front-end bound, like the 100MB+ data-center binaries the
   paper measures.

   It also implements the profiling hardware: an LBR ring of the last 32
   taken branches and event-based sampling (cycles, instructions or taken
   branches), with optional skid when PEBS-style precision is off.

   Exception semantics: [throw] consults the LSDA of the active frame and
   unwinds frames using the CFI records — if a rewriter breaks frame
   information, programs with exceptions break here, visibly. *)

open Bolt_isa
open Bolt_obj

type config = {
  l1i_size : int;
  l1d_size : int;
  l2_size : int;
  llc_size : int;
  line : int;
  itlb_entries : int;
  dtlb_entries : int;
  page : int;
  (* quarter-cycle penalties *)
  q_base : int;
  q_taken : int;
  q_mispredict : int;
  q_l1_miss : int;
  q_l2_miss : int;
  q_llc_miss : int;
  q_tlb_miss : int;
}

let default_config =
  {
    l1i_size = 8192;
    l1d_size = 16384;
    l2_size = 65536;
    llc_size = 1048576;
    line = 64;
    itlb_entries = 16;
    dtlb_entries = 32;
    page = 4096;
    q_base = 1;
    q_taken = 1;
    q_mispredict = 60;
    q_l1_miss = 32;
    q_l2_miss = 80;
    q_llc_miss = 600;
    q_tlb_miss = 100;
  }

type event = Ev_cycles | Ev_instructions | Ev_taken_branches

type sample_cfg = {
  event : event;
  period : int;
  lbr : bool;
  precise : bool; (* PEBS-style: no skid *)
}

type counters = {
  mutable instructions : int;
  mutable qcycles : int;
  mutable branches : int; (* executed branch instructions, cond + uncond *)
  mutable cond_branches : int;
  mutable cond_taken : int;
  mutable taken_branches : int; (* all taken control transfers *)
  mutable calls : int;
  mutable branch_misses : int;
  mutable l1i_accesses : int;
  mutable l1i_misses : int;
  mutable l1d_accesses : int;
  mutable l1d_misses : int;
  mutable l2_misses : int;
  mutable llc_misses : int;
  mutable itlb_misses : int;
  mutable dtlb_misses : int;
  mutable throws : int;
}

let new_counters () =
  {
    instructions = 0;
    qcycles = 0;
    branches = 0;
    cond_branches = 0;
    cond_taken = 0;
    taken_branches = 0;
    calls = 0;
    branch_misses = 0;
    l1i_accesses = 0;
    l1i_misses = 0;
    l1d_accesses = 0;
    l1d_misses = 0;
    l2_misses = 0;
    llc_misses = 0;
    itlb_misses = 0;
    dtlb_misses = 0;
    throws = 0;
  }

let cycles c = c.qcycles / 4

(* Raw sample aggregates: the perf.data analog. *)
type raw_profile = {
  rp_branches : (int * int, int ref * int ref) Hashtbl.t; (* (from,to) -> count, mispreds *)
  rp_traces : (int * int, int ref) Hashtbl.t; (* fall-through ranges between LBR entries *)
  rp_ips : (int, int ref) Hashtbl.t; (* plain IP samples (non-LBR mode) *)
  rp_lbr : bool;
  mutable rp_samples : int;
}

let new_raw_profile lbr =
  {
    rp_branches = Hashtbl.create 4096;
    rp_traces = Hashtbl.create 4096;
    rp_ips = Hashtbl.create 4096;
    rp_lbr = lbr;
    rp_samples = 0;
  }

exception Sim_error of string

type outcome = {
  exit_code : int;
  output : int list;
  counters : counters;
  profile : raw_profile option;
  heat : (int, int) Hashtbl.t option; (* line address -> fetches *)
  uncaught_exception : bool;
  final_mem : Memory.t; (* post-run memory, e.g. to dump PGO counters *)
}

(* ---- executable image ---- *)

type seg = { seg_base : int; seg_limit : int; insns : Insn.t array; isizes : int array }

type fninfo = {
  fi_addr : int;
  fi_size : int;
  fi_name : string;
  fi_fde : Types.fde option;
  fi_lsda : Types.lsda option;
}

type image = {
  segs : seg list;
  funcs : fninfo array; (* sorted by address *)
  entry : int;
  mem : Memory.t;
}

let predecode (sec : Types.section) =
  let n = sec.sec_size in
  let insns = Array.make n Insn.Halt in
  let isizes = Array.make n 0 in
  let pos = ref 0 in
  while !pos < n do
    match Codec.decode sec.sec_data !pos with
    | i, sz ->
        insns.(!pos) <- i;
        isizes.(!pos) <- sz;
        pos := !pos + sz
    | exception Codec.Decode_error _ ->
        (* tolerate padding bytes that are not valid instructions *)
        isizes.(!pos) <- 0;
        incr pos
  done;
  { seg_base = sec.sec_addr; seg_limit = sec.sec_addr + n; insns; isizes }

let load (exe : Objfile.t) : image =
  if exe.kind <> Objfile.Executable then raise (Sim_error "not an executable");
  let mem = Memory.create () in
  let segs = ref [] in
  List.iter
    (fun (s : Types.section) ->
      (match s.sec_kind with
      | Types.Bss -> () (* zero-initialised by sparse memory *)
      | _ -> Memory.load_bytes mem s.sec_addr s.sec_data);
      if s.sec_kind = Types.Text then segs := predecode s :: !segs)
    exe.sections;
  let fdes = Hashtbl.create 64 in
  List.iter (fun (f : Types.fde) -> Hashtbl.replace fdes f.fde_func f) exe.fdes;
  let lsdas = Hashtbl.create 64 in
  List.iter (fun (l : Types.lsda) -> Hashtbl.replace lsdas l.lsda_func l) exe.lsdas;
  let funcs =
    Objfile.function_symbols exe
    |> List.map (fun (s : Types.symbol) ->
           {
             fi_addr = s.sym_value;
             fi_size = s.sym_size;
             fi_name = s.sym_name;
             fi_fde = Hashtbl.find_opt fdes s.sym_name;
             fi_lsda = Hashtbl.find_opt lsdas s.sym_name;
           })
    |> Array.of_list
  in
  Array.sort (fun a b -> compare a.fi_addr b.fi_addr) funcs;
  { segs = List.rev !segs; funcs; entry = exe.entry; mem }

let function_at (img : image) addr =
  let lo = ref 0 and hi = ref (Array.length img.funcs - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let f = img.funcs.(mid) in
    if addr < f.fi_addr then hi := mid - 1
    else if addr >= f.fi_addr + f.fi_size then lo := mid + 1
    else begin
      found := Some f;
      lo := !hi + 1
    end
  done;
  !found

(* ---- execution ---- *)

type lbr_ring = {
  lfrom : int array;
  lto : int array;
  lmis : bool array;
  mutable lpos : int;
  mutable lcount : int;
}

let lbr_depth = 32

let new_lbr () =
  {
    lfrom = Array.make lbr_depth 0;
    lto = Array.make lbr_depth 0;
    lmis = Array.make lbr_depth false;
    lpos = 0;
    lcount = 0;
  }

let lbr_record r f t m =
  r.lfrom.(r.lpos) <- f;
  r.lto.(r.lpos) <- t;
  r.lmis.(r.lpos) <- m;
  r.lpos <- (r.lpos + 1) mod lbr_depth;
  if r.lcount < lbr_depth then r.lcount <- r.lcount + 1

let run ?(config = default_config) ?(sampling : sample_cfg option)
    ?(heatmap = false) ?(fuel = 2_000_000_000) (exe : Objfile.t) ~(input : int array) :
    outcome =
  let img = load exe in
  let mem = img.mem in
  let c = new_counters () in
  let l1i = Cache.create ~size:config.l1i_size ~line:config.line ~assoc:4 in
  let l1d = Cache.create ~size:config.l1d_size ~line:config.line ~assoc:4 in
  let l2 = Cache.create ~size:config.l2_size ~line:config.line ~assoc:8 in
  let llc = Cache.create ~size:config.llc_size ~line:config.line ~assoc:16 in
  let itlb = Cache.create ~size:(config.itlb_entries * config.page) ~line:config.page ~assoc:4 in
  let dtlb = Cache.create ~size:(config.dtlb_entries * config.page) ~line:config.page ~assoc:4 in
  let bp = Bpred.create () in
  let lbr = new_lbr () in
  let heat = if heatmap then Some (Hashtbl.create 4096) else None in
  let prof = Option.map (fun (s : sample_cfg) -> new_raw_profile s.lbr) sampling in
  let regs = Array.make 16 0 in
  regs.(Reg.to_int Reg.sp) <- Layout.stack_top;
  let flags = ref 0 in
  let input_pos = ref 0 in
  let output = ref [] in
  let ip = ref img.entry in
  let running = ref true in
  let exit_code = ref 0 in
  let uncaught = ref false in
  let cur_line = ref (-1) in
  (* sentinel return address: returning to 0 exits *)
  regs.(15) <- regs.(15) - 8;
  Memory.write64 mem regs.(15) 0;

  let daccess addr =
    c.l1d_accesses <- c.l1d_accesses + 1;
    if not (Cache.access dtlb addr) then begin
      c.dtlb_misses <- c.dtlb_misses + 1;
      c.qcycles <- c.qcycles + config.q_tlb_miss
    end;
    if not (Cache.access l1d addr) then begin
      c.l1d_misses <- c.l1d_misses + 1;
      c.qcycles <- c.qcycles + config.q_l1_miss;
      if not (Cache.access l2 addr) then begin
        c.l2_misses <- c.l2_misses + 1;
        c.qcycles <- c.qcycles + config.q_l2_miss;
        if not (Cache.access llc addr) then begin
          c.llc_misses <- c.llc_misses + 1;
          c.qcycles <- c.qcycles + config.q_llc_miss
        end
      end
    end
  in
  let read_mem addr =
    daccess addr;
    Memory.read64 mem addr
  in
  let write_mem addr v =
    daccess addr;
    Memory.write64 mem addr v
  in
  let push v =
    regs.(15) <- regs.(15) - 8;
    write_mem regs.(15) v
  in
  let pop () =
    let v = read_mem regs.(15) in
    regs.(15) <- regs.(15) + 8;
    v
  in

  (* front-end charge when the fetch line changes *)
  let fetch addr =
    let line = addr lsr 6 in
    if line <> !cur_line then begin
      cur_line := line;
      c.l1i_accesses <- c.l1i_accesses + 1;
      (match heat with
      | Some h ->
          let key = line lsl 6 in
          Hashtbl.replace h key (1 + try Hashtbl.find h key with Not_found -> 0)
      | None -> ());
      if not (Cache.access itlb addr) then begin
        c.itlb_misses <- c.itlb_misses + 1;
        c.qcycles <- c.qcycles + config.q_tlb_miss
      end;
      if not (Cache.access l1i addr) then begin
        c.l1i_misses <- c.l1i_misses + 1;
        c.qcycles <- c.qcycles + config.q_l1_miss;
        if not (Cache.access l2 addr) then begin
          c.l2_misses <- c.l2_misses + 1;
          c.qcycles <- c.qcycles + config.q_l2_miss;
          if not (Cache.access llc addr) then begin
            c.llc_misses <- c.llc_misses + 1;
            c.qcycles <- c.qcycles + config.q_llc_miss
          end
        end
      end
    end
  in

  let decode_at addr =
    let rec find = function
      | [] -> raise (Sim_error (Printf.sprintf "jump outside text: %#x" addr))
      | (s : seg) :: rest ->
          if addr >= s.seg_base && addr < s.seg_limit then begin
            let off = addr - s.seg_base in
            let sz = s.isizes.(off) in
            if sz = 0 then
              raise (Sim_error (Printf.sprintf "misaligned execution at %#x" addr));
            (s.insns.(off), sz)
          end
          else find rest
    in
    find img.segs
  in

  (* taken control transfer bookkeeping *)
  let taken_to ~from ~target ~mispred =
    c.taken_branches <- c.taken_branches + 1;
    c.qcycles <- c.qcycles + config.q_taken;
    if mispred then begin
      c.branch_misses <- c.branch_misses + 1;
      c.qcycles <- c.qcycles + config.q_mispredict
    end;
    lbr_record lbr from target mispred;
    ip := target
  in

  (* ---- exception unwinding ---- *)
  let landing_sp fp (state : Types.cfi_state) =
    fp - state.cfa_locals - (8 * List.length state.cfa_saved)
  in
  let rec unwind at_ip =
    match function_at img at_ip with
    | None -> (if Sys.getenv_opt "BOLT_UNWIND_DEBUG" <> None then Printf.eprintf "unwind: no func at %#x\n%!" at_ip); None
    | Some fi -> (
        let off = at_ip - fi.fi_addr in
        (if Sys.getenv_opt "BOLT_UNWIND_DEBUG" <> None then Printf.eprintf "unwind: %s off=%d sp=%#x fp=%#x\n%!" fi.fi_name off regs.(15) regs.(14));
        let pad =
          match fi.fi_lsda with
          | None -> None
          | Some l ->
              List.find_opt
                (fun (e : Types.lsda_entry) ->
                  off >= e.lsda_start && off < e.lsda_start + e.lsda_len)
                l.lsda_entries
        in
        match pad with
        | Some e -> (
            (* the stack pointer the landing pad expects is derived from
               the frame state at the covered call site; the pad itself may
               live in a split-off cold fragment with its own descriptor *)
            match fi.fi_fde with
            | Some fde ->
                let st = Types.cfi_state_at fde.fde_cfi off in
                if st.cfa_established then begin
                  regs.(15) <- landing_sp regs.(14) st;
                  Some (fi.fi_addr + e.lsda_pad)
                end
                else Some (fi.fi_addr + e.lsda_pad)
            | None -> Some (fi.fi_addr + e.lsda_pad))
        | None -> (
            (* pop this frame and continue in the caller *)
            match fi.fi_fde with
            | None -> None (* can't unwind through frame-info-less code *)
            | Some fde ->
                let st = Types.cfi_state_at fde.fde_cfi off in
                let ret =
                  if st.cfa_established then begin
                    let fp = regs.(14) in
                    List.iter
                      (fun (r, slot) ->
                        regs.(Reg.to_int r) <- Memory.read64 mem (fp - slot))
                      st.cfa_saved;
                    let ret = Memory.read64 mem (fp + 8) in
                    regs.(15) <- fp + 16;
                    regs.(14) <- Memory.read64 mem fp;
                    ret
                  end
                  else begin
                    let ret = Memory.read64 mem regs.(15) in
                    regs.(15) <- regs.(15) + 8;
                    ret
                  end
                in
                if ret = 0 then None else unwind (ret - 1)))
  in

  (* ---- sampling ---- *)
  let sample_due = ref max_int in
  let event_count () =
    match sampling with
    | None -> 0
    | Some s -> (
        match s.event with
        | Ev_cycles -> c.qcycles
        | Ev_instructions -> c.instructions
        | Ev_taken_branches -> c.taken_branches)
  in
  (match sampling with Some s -> sample_due := s.period | None -> ());
  let skid_pending = ref false in
  let take_sample () =
    match (sampling, prof) with
    | Some s, Some p ->
        p.rp_samples <- p.rp_samples + 1;
        if s.lbr then begin
          (* read the full LBR stack *)
          let n = lbr.lcount in
          for k = 0 to n - 1 do
            let idx = (lbr.lpos - n + k + (2 * lbr_depth)) mod lbr_depth in
            let f = lbr.lfrom.(idx) and t = lbr.lto.(idx) in
            (match Hashtbl.find_opt p.rp_branches (f, t) with
            | Some (cnt, mis) ->
                incr cnt;
                if lbr.lmis.(idx) then incr mis
            | None ->
                Hashtbl.add p.rp_branches (f, t)
                  (ref 1, ref (if lbr.lmis.(idx) then 1 else 0)));
            if k + 1 < n then begin
              let idx' = (idx + 1) mod lbr_depth in
              let start = t and stop = lbr.lfrom.(idx') in
              if stop >= start && stop - start < 65536 then
                match Hashtbl.find_opt p.rp_traces (start, stop) with
                | Some r -> incr r
                | None -> Hashtbl.add p.rp_traces (start, stop) (ref 1)
            end
          done
        end
        else begin
          let key = !ip in
          match Hashtbl.find_opt p.rp_ips key with
          | Some r -> incr r
          | None -> Hashtbl.add p.rp_ips key (ref 1)
        end
    | _ -> ()
  in

  (* ---- main loop ---- *)
  while !running do
    if c.instructions > fuel then raise (Sim_error "out of fuel");
    let pc = !ip in
    fetch pc;
    let insn, sz = decode_at pc in
    let next = pc + sz in
    c.instructions <- c.instructions + 1;
    c.qcycles <- c.qcycles + config.q_base;
    ip := next;
    (match insn with
    | Insn.Halt ->
        exit_code := regs.(0);
        running := false
    | Insn.Nop _ -> ()
    | Insn.Ret | Insn.Repz_ret ->
        let target = pop () in
        let mispred = Bpred.pop_ras bp target in
        if target = 0 then begin
          exit_code := regs.(0);
          running := false
        end
        else taken_to ~from:pc ~target ~mispred
    | Insn.Push r -> push regs.(Reg.to_int r)
    | Insn.Pop r -> regs.(Reg.to_int r) <- pop ()
    | Insn.Mov_rr (d, s) -> regs.(Reg.to_int d) <- regs.(Reg.to_int s)
    | Insn.Mov_ri (d, Insn.Imm v, _) -> regs.(Reg.to_int d) <- v
    | Insn.Load (d, b, off) -> regs.(Reg.to_int d) <- read_mem (regs.(Reg.to_int b) + off)
    | Insn.Store (b, off, s) -> write_mem (regs.(Reg.to_int b) + off) regs.(Reg.to_int s)
    | Insn.Load_abs (d, Insn.Imm a) -> regs.(Reg.to_int d) <- read_mem a
    | Insn.Store_abs (Insn.Imm a, s) -> write_mem a regs.(Reg.to_int s)
    | Insn.Lea (d, Insn.Imm a) -> regs.(Reg.to_int d) <- a
    | Insn.Lea_rel (d, Insn.Imm disp) -> regs.(Reg.to_int d) <- next + disp
    | Insn.Alu_rr (op, d, s) ->
        let a = regs.(Reg.to_int d) and b = regs.(Reg.to_int s) in
        (match op with
        | Insn.Cmp -> flags := compare a b
        | Insn.Test -> flags := compare (a land b) 0
        | Insn.Add -> regs.(Reg.to_int d) <- a + b
        | Insn.Sub -> regs.(Reg.to_int d) <- a - b
        | Insn.Mul -> regs.(Reg.to_int d) <- a * b
        | Insn.Div -> regs.(Reg.to_int d) <- (if b = 0 then 0 else a / b)
        | Insn.Mod -> regs.(Reg.to_int d) <- (if b = 0 then 0 else a mod b)
        | Insn.And -> regs.(Reg.to_int d) <- a land b
        | Insn.Or -> regs.(Reg.to_int d) <- a lor b
        | Insn.Xor -> regs.(Reg.to_int d) <- a lxor b
        | Insn.Shl -> regs.(Reg.to_int d) <- a lsl (b land 63)
        | Insn.Shr -> regs.(Reg.to_int d) <- a asr (b land 63))
    | Insn.Alu_ri (op, d, Insn.Imm b) ->
        let a = regs.(Reg.to_int d) in
        (match op with
        | Insn.Cmp -> flags := compare a b
        | Insn.Test -> flags := compare (a land b) 0
        | Insn.Add -> regs.(Reg.to_int d) <- a + b
        | Insn.Sub -> regs.(Reg.to_int d) <- a - b
        | Insn.Mul -> regs.(Reg.to_int d) <- a * b
        | Insn.Div -> regs.(Reg.to_int d) <- (if b = 0 then 0 else a / b)
        | Insn.Mod -> regs.(Reg.to_int d) <- (if b = 0 then 0 else a mod b)
        | Insn.And -> regs.(Reg.to_int d) <- a land b
        | Insn.Or -> regs.(Reg.to_int d) <- a lor b
        | Insn.Xor -> regs.(Reg.to_int d) <- a lxor b
        | Insn.Shl -> regs.(Reg.to_int d) <- a lsl (b land 63)
        | Insn.Shr -> regs.(Reg.to_int d) <- a asr (b land 63))
    | Insn.Setcc (cond, r) ->
        regs.(Reg.to_int r) <- (if Cond.holds cond !flags then 1 else 0)
    | Insn.Jmp (Insn.Imm rel, _) ->
        c.branches <- c.branches + 1;
        let target = next + rel in
        let mispred = Bpred.taken_target bp pc target in
        taken_to ~from:pc ~target ~mispred
    | Insn.Jcc (cond, Insn.Imm rel, _) ->
        c.branches <- c.branches + 1;
        c.cond_branches <- c.cond_branches + 1;
        let taken = Cond.holds cond !flags in
        let dir_mis = Bpred.cond_branch bp pc taken in
        if taken then begin
          c.cond_taken <- c.cond_taken + 1;
          taken_to ~from:pc ~target:(next + rel) ~mispred:dir_mis
        end
        else if dir_mis then begin
          c.branch_misses <- c.branch_misses + 1;
          c.qcycles <- c.qcycles + config.q_mispredict
        end
    | Insn.Call (Insn.Imm rel) ->
        c.branches <- c.branches + 1;
        c.calls <- c.calls + 1;
        push next;
        Bpred.push_ras bp next;
        let target = next + rel in
        let mispred = Bpred.taken_target bp pc target in
        taken_to ~from:pc ~target ~mispred
    | Insn.Call_ind r ->
        c.branches <- c.branches + 1;
        c.calls <- c.calls + 1;
        let target = regs.(Reg.to_int r) in
        push next;
        Bpred.push_ras bp next;
        let mispred = Bpred.taken_target bp pc target in
        taken_to ~from:pc ~target ~mispred
    | Insn.Call_mem (Insn.Imm slot) ->
        c.branches <- c.branches + 1;
        c.calls <- c.calls + 1;
        let target = read_mem slot in
        push next;
        Bpred.push_ras bp next;
        let mispred = Bpred.taken_target bp pc target in
        taken_to ~from:pc ~target ~mispred
    | Insn.Jmp_ind r ->
        c.branches <- c.branches + 1;
        let target = regs.(Reg.to_int r) in
        let mispred = Bpred.taken_target bp pc target in
        taken_to ~from:pc ~target ~mispred
    | Insn.Jmp_mem (Insn.Imm slot) ->
        c.branches <- c.branches + 1;
        let target = read_mem slot in
        let mispred = Bpred.taken_target bp pc target in
        taken_to ~from:pc ~target ~mispred
    | Insn.In_ r ->
        regs.(Reg.to_int r) <-
          (if !input_pos < Array.length input then begin
             let v = input.(!input_pos) in
             incr input_pos;
             v
           end
           else 0)
    | Insn.Out r -> output := regs.(Reg.to_int r) :: !output
    | Insn.Throw -> (
        c.throws <- c.throws + 1;
        match unwind pc with
        | Some pad ->
            c.qcycles <- c.qcycles + (config.q_mispredict * 4);
            cur_line := -1;
            ip := pad
        | None ->
            uncaught := true;
            exit_code := -1;
            running := false)
    | Insn.Mov_ri (_, Insn.Sym _, _)
    | Insn.Load_abs (_, Insn.Sym _)
    | Insn.Store_abs (Insn.Sym _, _)
    | Insn.Lea (_, Insn.Sym _)
    | Insn.Lea_rel (_, Insn.Sym _)
    | Insn.Alu_ri (_, _, Insn.Sym _)
    | Insn.Jmp (Insn.Sym _, _)
    | Insn.Jcc (_, Insn.Sym _, _)
    | Insn.Call (Insn.Sym _)
    | Insn.Call_mem (Insn.Sym _)
    | Insn.Jmp_mem (Insn.Sym _) ->
        raise (Sim_error "unresolved symbol in executable"));
    (* sampling *)
    (match sampling with
    | Some s ->
        if !skid_pending then begin
          skid_pending := false;
          take_sample ()
        end;
        if event_count () >= !sample_due then begin
          sample_due := !sample_due + s.period;
          if s.precise then take_sample () else skid_pending := true
        end
    | None -> ())
  done;
  {
    exit_code = !exit_code;
    output = List.rev !output;
    counters = c;
    profile = prof;
    heat;
    uncaught_exception = !uncaught;
    final_mem = mem;
  }
