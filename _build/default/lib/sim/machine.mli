(** Functional + timing simulator for BELF executables — the stand-in for
    the paper's Intel testbed, including its profiling hardware (an LBR
    ring of the last 32 taken branches, and event-based sampling). *)

(** Cache/TLB geometry and the quarter-cycle cost model. *)
type config = {
  l1i_size : int;
  l1d_size : int;
  l2_size : int;
  llc_size : int;
  line : int;
  itlb_entries : int;
  dtlb_entries : int;
  page : int;
  q_base : int;  (** quarter-cycles per retired instruction *)
  q_taken : int;  (** taken-branch fetch bubble *)
  q_mispredict : int;
  q_l1_miss : int;
  q_l2_miss : int;
  q_llc_miss : int;
  q_tlb_miss : int;
}

val default_config : config

type event = Ev_cycles | Ev_instructions | Ev_taken_branches

type sample_cfg = {
  event : event;
  period : int;
  lbr : bool;  (** capture the last-branch-record stack with each sample *)
  precise : bool;  (** PEBS-style: no skid *)
}

type counters = {
  mutable instructions : int;
  mutable qcycles : int;
  mutable branches : int;
  mutable cond_branches : int;
  mutable cond_taken : int;
  mutable taken_branches : int;
  mutable calls : int;
  mutable branch_misses : int;
  mutable l1i_accesses : int;
  mutable l1i_misses : int;
  mutable l1d_accesses : int;
  mutable l1d_misses : int;
  mutable l2_misses : int;
  mutable llc_misses : int;
  mutable itlb_misses : int;
  mutable dtlb_misses : int;
  mutable throws : int;
}

val new_counters : unit -> counters

(** Whole cycles (the model accounts in quarter-cycles). *)
val cycles : counters -> int

(** Raw sample aggregates — the perf.data analog. *)
type raw_profile = {
  rp_branches : (int * int, int ref * int ref) Hashtbl.t;
      (** (from, to) -> taken count, mispredict count *)
  rp_traces : (int * int, int ref) Hashtbl.t;
      (** sequential ranges between consecutive LBR entries *)
  rp_ips : (int, int ref) Hashtbl.t;  (** plain IP samples (non-LBR mode) *)
  rp_lbr : bool;
  mutable rp_samples : int;
}

val new_raw_profile : bool -> raw_profile

exception Sim_error of string

type outcome = {
  exit_code : int;
  output : int list;  (** the program's output tape *)
  counters : counters;
  profile : raw_profile option;
  heat : (int, int) Hashtbl.t option;  (** line address -> fetches *)
  uncaught_exception : bool;
  final_mem : Memory.t;  (** post-run memory, e.g. to dump PGO counters *)
}

(** [run exe ~input] executes the program until it returns from [main],
    halts, fails to catch an exception, or exhausts [fuel] instructions
    (then raising {!Sim_error}).  [sampling] enables the profiler;
    [heatmap] collects the per-line fetch histogram of Figure 9.
    Deterministic: equal inputs give equal outcomes. *)
val run :
  ?config:config ->
  ?sampling:sample_cfg ->
  ?heatmap:bool ->
  ?fuel:int ->
  Bolt_obj.Objfile.t ->
  input:int array ->
  outcome
