(* Set-associative cache and TLB models with LRU replacement.

   Only hit/miss behaviour is modelled — the timing cost of a miss is
   charged by the machine's cycle model.  The same structure serves as a
   TLB by using page-sized "lines". *)

type t = {
  sets : int;
  assoc : int;
  line_bits : int;
  tags : int array; (* sets * assoc, -1 = invalid *)
  stamps : int array; (* LRU timestamps *)
  mutable tick : int;
  mutable accesses : int;
  mutable misses : int;
}

let create ~size ~line ~assoc =
  let line_bits =
    let rec lb n acc = if n <= 1 then acc else lb (n / 2) (acc + 1) in
    lb line 0
  in
  let sets = max 1 (size / (line * assoc)) in
  {
    sets;
    assoc;
    line_bits;
    tags = Array.make (sets * assoc) (-1);
    stamps = Array.make (sets * assoc) 0;
    tick = 0;
    accesses = 0;
    misses = 0;
  }

(* Returns true on hit.  A miss installs the line. *)
let access c addr =
  c.accesses <- c.accesses + 1;
  c.tick <- c.tick + 1;
  let line = addr lsr c.line_bits in
  let set = line mod c.sets in
  let base = set * c.assoc in
  let rec find i =
    if i >= c.assoc then -1
    else if c.tags.(base + i) = line then i
    else find (i + 1)
  in
  let hit = find 0 in
  if hit >= 0 then begin
    c.stamps.(base + hit) <- c.tick;
    true
  end
  else begin
    c.misses <- c.misses + 1;
    (* evict LRU way *)
    let victim = ref 0 in
    for i = 1 to c.assoc - 1 do
      if c.stamps.(base + i) < c.stamps.(base + !victim) then victim := i
    done;
    c.tags.(base + !victim) <- line;
    c.stamps.(base + !victim) <- c.tick;
    false
  end

let reset c =
  Array.fill c.tags 0 (Array.length c.tags) (-1);
  c.accesses <- 0;
  c.misses <- 0;
  c.tick <- 0
