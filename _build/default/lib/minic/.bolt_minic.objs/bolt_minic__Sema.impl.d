lib/minic/sema.ml: Array Ast Fmt Hashtbl List
