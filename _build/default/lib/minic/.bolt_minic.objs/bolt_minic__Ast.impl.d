lib/minic/ast.ml:
