lib/minic/ir.ml: Array Fmt Hashtbl List Printf
