lib/minic/driver.ml: Bolt_asm Bolt_linker Bolt_obj Codegen Inline Ir Irpass List Lower Parser Pgo Sema
