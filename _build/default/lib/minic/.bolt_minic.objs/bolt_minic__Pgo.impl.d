lib/minic/pgo.ml: Array Hashtbl Ir List Printf String
