lib/minic/codegen.ml: Array Blocklayout Bolt_asm Bolt_isa Bolt_obj Codec Cond Hashtbl Insn Ir List Option Pgo Printf Reg
