lib/minic/lower.ml: Array Ast Hashtbl Ir List Sema
