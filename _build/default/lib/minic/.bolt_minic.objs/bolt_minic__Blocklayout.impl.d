lib/minic/blocklayout.ml: Hashtbl Ir List Pgo
