lib/minic/irpass.ml: Array Hashtbl Ir List
