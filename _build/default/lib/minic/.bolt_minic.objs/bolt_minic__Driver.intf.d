lib/minic/driver.mli: Bolt_linker Bolt_obj Inline Ir Pgo Sema
