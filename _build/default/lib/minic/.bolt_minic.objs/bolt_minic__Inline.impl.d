lib/minic/inline.ml: Array Hashtbl Ir List Option Pgo
