(* Abstract syntax of MiniC, the C subset the workloads are written in.

   The language is small but covers everything the BOLT evaluation needs
   from its input programs: integer scalars and global arrays, rich control
   flow (if/while/switch with dense cases), direct and indirect calls
   through function pointers, read-only constant tables, exceptions
   (try/catch/throw) and I/O primitives for observable behaviour. *)

type pos = { file : string; line : int }

let dummy_pos = { file = "<builtin>"; line = 0 }

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Bmod
  | Band
  | Bor
  | Bxor
  | Bshl
  | Bshr
  | Beq
  | Bne
  | Blt
  | Ble
  | Bgt
  | Bge
  | Bland (* short-circuit && *)
  | Blor (* short-circuit || *)

type expr =
  | Eint of int
  | Evar of string
  | Ebin of binop * expr * expr
  | Eneg of expr
  | Enot of expr
  | Ecall of string * expr list
  | Ecall_ind of expr * expr list (* "(&e)(args)" syntax *)
  | Eindex of string * expr (* global array or const table element *)
  | Eaddr of string (* &name: address of a function or global *)
  | Ein (* in(): next value of the input tape *)

type stmt = { sk : stmt_kind; pos : pos }

and stmt_kind =
  | Svar of string * expr (* var x = e; introduces a local *)
  | Sassign of string * expr
  | Sstore of string * expr * expr (* a[i] = e; *)
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sswitch of expr * (int * stmt list) list * stmt list
  | Sreturn of expr option
  | Sexpr of expr
  | Sout of expr (* out e; appends to the output tape *)
  | Sthrow of expr
  | Stry of stmt list * string * stmt list (* try B catch (x) H *)
  | Sbreak
  | Scontinue

type func = {
  fn_name : string;
  fn_params : string list;
  fn_body : stmt list;
  fn_inline : bool; (* 'inline' keyword: always-inline hint *)
  fn_pos : pos;
}

type decl =
  | Dfunc of func
  | Dextern of string * int (* extern fn name(arity); defined elsewhere *)
  | Dglobal of string * int (* global scalar with initial value *)
  | Darray of string * int (* zero-initialised global array (.bss) *)
  | Dconst of string * int list (* read-only table (.rodata) *)

type module_ = { m_name : string; m_decls : decl list }

let binop_name = function
  | Badd -> "+"
  | Bsub -> "-"
  | Bmul -> "*"
  | Bdiv -> "/"
  | Bmod -> "%"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Bshl -> "<<"
  | Bshr -> ">>"
  | Beq -> "=="
  | Bne -> "!="
  | Blt -> "<"
  | Ble -> "<="
  | Bgt -> ">"
  | Bge -> ">="
  | Bland -> "&&"
  | Blor -> "||"
