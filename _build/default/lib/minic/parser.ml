(* Recursive-descent parser for MiniC.

   Expression parsing is precedence-climbing over the operator table
   below; statements and declarations are straightforward LL(1). *)

open Ast

exception Parse_error of string * int

let err lx fmt =
  Fmt.kstr (fun s -> raise (Parse_error (s, Lexer.token_line lx))) fmt

let pos lx file = { file; line = Lexer.token_line lx }

let expect_punct lx p =
  match Lexer.token lx with
  | Lexer.PUNCT q when q = p -> Lexer.advance lx
  | t -> err lx "expected %s, found %s" p (Lexer.token_desc t)

let expect_kw lx k =
  match Lexer.token lx with
  | Lexer.KW q when q = k -> Lexer.advance lx
  | t -> err lx "expected %s, found %s" k (Lexer.token_desc t)

let accept_punct lx p =
  match Lexer.token lx with
  | Lexer.PUNCT q when q = p ->
      Lexer.advance lx;
      true
  | _ -> false

let accept_kw lx k =
  match Lexer.token lx with
  | Lexer.KW q when q = k ->
      Lexer.advance lx;
      true
  | _ -> false

let ident lx =
  match Lexer.token lx with
  | Lexer.IDENT s ->
      Lexer.advance lx;
      s
  | t -> err lx "expected identifier, found %s" (Lexer.token_desc t)

let int_lit lx =
  match Lexer.token lx with
  | Lexer.INT n ->
      Lexer.advance lx;
      n
  | Lexer.PUNCT "-" -> (
      Lexer.advance lx;
      match Lexer.token lx with
      | Lexer.INT n ->
          Lexer.advance lx;
          -n
      | t -> err lx "expected integer, found %s" (Lexer.token_desc t))
  | t -> err lx "expected integer, found %s" (Lexer.token_desc t)

(* Binding powers; higher binds tighter. *)
let binop_of_punct = function
  | "||" -> Some (Blor, 1)
  | "&&" -> Some (Bland, 2)
  | "|" -> Some (Bor, 3)
  | "^" -> Some (Bxor, 4)
  | "&" -> Some (Band, 5)
  | "==" -> Some (Beq, 6)
  | "!=" -> Some (Bne, 6)
  | "<" -> Some (Blt, 7)
  | "<=" -> Some (Ble, 7)
  | ">" -> Some (Bgt, 7)
  | ">=" -> Some (Bge, 7)
  | "<<" -> Some (Bshl, 8)
  | ">>" -> Some (Bshr, 8)
  | "+" -> Some (Badd, 9)
  | "-" -> Some (Bsub, 9)
  | "*" -> Some (Bmul, 10)
  | "/" -> Some (Bdiv, 10)
  | "%" -> Some (Bmod, 10)
  | _ -> None

let rec parse_expr lx = parse_bin lx 0

and parse_bin lx min_bp =
  let lhs = parse_unary lx in
  let rec loop lhs =
    match Lexer.token lx with
    | Lexer.PUNCT p -> (
        match binop_of_punct p with
        | Some (op, bp) when bp >= min_bp ->
            Lexer.advance lx;
            let rhs = parse_bin lx (bp + 1) in
            loop (Ebin (op, lhs, rhs))
        | _ -> lhs)
    | _ -> lhs
  in
  loop lhs

and parse_unary lx =
  match Lexer.token lx with
  | Lexer.PUNCT "-" ->
      Lexer.advance lx;
      Eneg (parse_unary lx)
  | Lexer.PUNCT "!" ->
      Lexer.advance lx;
      Enot (parse_unary lx)
  | Lexer.PUNCT "&" ->
      Lexer.advance lx;
      Eaddr (ident lx)
  | Lexer.PUNCT "*" ->
      (* indirect call through a function pointer value *)
      Lexer.advance lx;
      let callee = parse_callee lx in
      let args = parse_args lx in
      Ecall_ind (callee, args)
  | _ -> parse_primary lx

(* The callee of an indirect call: a value, never a direct call itself —
   the '(' that follows always belongs to the argument list. *)
and parse_callee lx =
  match Lexer.token lx with
  | Lexer.IDENT name -> (
      Lexer.advance lx;
      match Lexer.token lx with
      | Lexer.PUNCT "[" ->
          Lexer.advance lx;
          let idx = parse_expr lx in
          expect_punct lx "]";
          Eindex (name, idx)
      | _ -> Evar name)
  | Lexer.PUNCT "&" ->
      Lexer.advance lx;
      Eaddr (ident lx)
  | Lexer.PUNCT "(" ->
      Lexer.advance lx;
      let e = parse_expr lx in
      expect_punct lx ")";
      e
  | t -> err lx "expected callee, found %s" (Lexer.token_desc t)

and parse_args lx =
  expect_punct lx "(";
  if accept_punct lx ")" then []
  else begin
    let rec loop acc =
      let e = parse_expr lx in
      if accept_punct lx "," then loop (e :: acc)
      else begin
        expect_punct lx ")";
        List.rev (e :: acc)
      end
    in
    loop []
  end

and parse_primary lx =
  match Lexer.token lx with
  | Lexer.INT n ->
      Lexer.advance lx;
      Eint n
  | Lexer.KW "in" ->
      Lexer.advance lx;
      expect_punct lx "(";
      expect_punct lx ")";
      Ein
  | Lexer.IDENT name -> (
      Lexer.advance lx;
      match Lexer.token lx with
      | Lexer.PUNCT "(" -> Ecall (name, parse_args lx)
      | Lexer.PUNCT "[" ->
          Lexer.advance lx;
          let idx = parse_expr lx in
          expect_punct lx "]";
          Eindex (name, idx)
      | _ -> Evar name)
  | Lexer.PUNCT "(" ->
      Lexer.advance lx;
      let e = parse_expr lx in
      expect_punct lx ")";
      e
  | t -> err lx "expected expression, found %s" (Lexer.token_desc t)

let rec parse_stmt lx file =
  let p = pos lx file in
  let mk sk = { sk; pos = p } in
  match Lexer.token lx with
  | Lexer.KW "var" ->
      Lexer.advance lx;
      let name = ident lx in
      expect_punct lx "=";
      let e = parse_expr lx in
      expect_punct lx ";";
      mk (Svar (name, e))
  | Lexer.KW "if" ->
      Lexer.advance lx;
      expect_punct lx "(";
      let c = parse_expr lx in
      expect_punct lx ")";
      let then_ = parse_block lx file in
      let else_ = if accept_kw lx "else" then parse_block lx file else [] in
      mk (Sif (c, then_, else_))
  | Lexer.KW "while" ->
      Lexer.advance lx;
      expect_punct lx "(";
      let c = parse_expr lx in
      expect_punct lx ")";
      let body = parse_block lx file in
      mk (Swhile (c, body))
  | Lexer.KW "switch" ->
      Lexer.advance lx;
      expect_punct lx "(";
      let e = parse_expr lx in
      expect_punct lx ")";
      expect_punct lx "{";
      let cases = ref [] in
      let default = ref [] in
      let rec cases_loop () =
        if accept_kw lx "case" then begin
          let v = int_lit lx in
          expect_punct lx ":";
          let body = parse_block lx file in
          cases := (v, body) :: !cases;
          cases_loop ()
        end
        else if accept_kw lx "default" then begin
          expect_punct lx ":";
          default := parse_block lx file;
          cases_loop ()
        end
        else expect_punct lx "}"
      in
      cases_loop ();
      mk (Sswitch (e, List.rev !cases, !default))
  | Lexer.KW "return" ->
      Lexer.advance lx;
      if accept_punct lx ";" then mk (Sreturn None)
      else begin
        let e = parse_expr lx in
        expect_punct lx ";";
        mk (Sreturn (Some e))
      end
  | Lexer.KW "out" ->
      Lexer.advance lx;
      let e = parse_expr lx in
      expect_punct lx ";";
      mk (Sout e)
  | Lexer.KW "throw" ->
      Lexer.advance lx;
      let e = parse_expr lx in
      expect_punct lx ";";
      mk (Sthrow e)
  | Lexer.KW "try" ->
      Lexer.advance lx;
      let body = parse_block lx file in
      expect_kw lx "catch";
      expect_punct lx "(";
      let v = ident lx in
      expect_punct lx ")";
      let handler = parse_block lx file in
      mk (Stry (body, v, handler))
  | Lexer.KW "break" ->
      Lexer.advance lx;
      expect_punct lx ";";
      mk Sbreak
  | Lexer.KW "continue" ->
      Lexer.advance lx;
      expect_punct lx ";";
      mk Scontinue
  | Lexer.IDENT name -> (
      Lexer.advance lx;
      match Lexer.token lx with
      | Lexer.PUNCT "=" ->
          Lexer.advance lx;
          let e = parse_expr lx in
          expect_punct lx ";";
          mk (Sassign (name, e))
      | Lexer.PUNCT "[" ->
          Lexer.advance lx;
          let idx = parse_expr lx in
          expect_punct lx "]";
          if accept_punct lx "=" then begin
            let e = parse_expr lx in
            expect_punct lx ";";
            mk (Sstore (name, idx, e))
          end
          else begin
            (* expression statement starting with an index load *)
            let e0 = Eindex (name, idx) in
            let e = parse_rest_expr lx e0 in
            expect_punct lx ";";
            mk (Sexpr e)
          end
      | Lexer.PUNCT "(" ->
          let e0 = Ecall (name, parse_args lx) in
          let e = parse_rest_expr lx e0 in
          expect_punct lx ";";
          mk (Sexpr e)
      | t -> err lx "unexpected %s after identifier" (Lexer.token_desc t))
  | _ ->
      let e = parse_expr lx in
      expect_punct lx ";";
      mk (Sexpr e)

(* Continue parsing binary operators after a primary already consumed. *)
and parse_rest_expr lx lhs =
  let rec loop lhs =
    match Lexer.token lx with
    | Lexer.PUNCT p -> (
        match binop_of_punct p with
        | Some (op, bp) ->
            Lexer.advance lx;
            let rhs = parse_bin lx (bp + 1) in
            loop (Ebin (op, lhs, rhs))
        | None -> lhs)
    | _ -> lhs
  in
  loop lhs

and parse_block lx file =
  expect_punct lx "{";
  let rec loop acc =
    if accept_punct lx "}" then List.rev acc
    else loop (parse_stmt lx file :: acc)
  in
  loop []

let parse_params lx =
  expect_punct lx "(";
  if accept_punct lx ")" then []
  else begin
    let rec loop acc =
      let p = ident lx in
      if accept_punct lx "," then loop (p :: acc)
      else begin
        expect_punct lx ")";
        List.rev (p :: acc)
      end
    in
    loop []
  end

let parse_decl lx file =
  match Lexer.token lx with
  | Lexer.KW "extern" ->
      Lexer.advance lx;
      expect_kw lx "fn";
      let name = ident lx in
      let params = parse_params lx in
      expect_punct lx ";";
      Dextern (name, List.length params)
  | Lexer.KW "inline" | Lexer.KW "fn" ->
      let inline = accept_kw lx "inline" in
      expect_kw lx "fn";
      let p = pos lx file in
      let name = ident lx in
      let params = parse_params lx in
      let body = parse_block lx file in
      Dfunc { fn_name = name; fn_params = params; fn_body = body; fn_inline = inline; fn_pos = p }
  | Lexer.KW "global" ->
      Lexer.advance lx;
      let name = ident lx in
      let v = if accept_punct lx "=" then int_lit lx else 0 in
      expect_punct lx ";";
      Dglobal (name, v)
  | Lexer.KW "array" ->
      Lexer.advance lx;
      let name = ident lx in
      expect_punct lx "[";
      let n = int_lit lx in
      expect_punct lx "]";
      expect_punct lx ";";
      Darray (name, n)
  | Lexer.KW "const" ->
      Lexer.advance lx;
      let name = ident lx in
      expect_punct lx "=";
      expect_punct lx "{";
      let rec loop acc =
        let v = int_lit lx in
        if accept_punct lx "," then loop (v :: acc)
        else begin
          expect_punct lx "}";
          List.rev (v :: acc)
        end
      in
      let vs = loop [] in
      expect_punct lx ";";
      Dconst (name, vs)
  | t -> err lx "expected declaration, found %s" (Lexer.token_desc t)

let parse_module ~name ~file src =
  let lx = Lexer.create ~file src in
  let rec loop acc =
    match Lexer.token lx with
    | Lexer.EOF -> List.rev acc
    | _ -> loop (parse_decl lx file :: acc)
  in
  { m_name = name; m_decls = loop [] }
