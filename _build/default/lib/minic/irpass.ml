(* IR cleanup passes: unreachable-block elimination, straight-line block
   merging, jump threading, local constant folding and dead-code
   elimination.  These run before instrumentation and profile annotation
   so both compiler runs (the instrumented one and the optimized one) see
   the same canonical CFG, which is what makes profile labels line up. *)

open Ir

let remove_unreachable (f : func) =
  let r = reachable f in
  f.f_blocks <- List.filter (fun (l, _) -> Hashtbl.mem r l) f.f_blocks

(* Retarget jumps to empty forwarding blocks. *)
let thread_jumps (f : func) =
  let forward = Hashtbl.create 8 in
  List.iter
    (fun (l, b) ->
      match (b.insns, b.term) with
      | [], Tjmp t when t <> l -> Hashtbl.replace forward l t
      | _ -> ())
    f.f_blocks;
  let rec resolve seen l =
    if List.mem l seen then l
    else
      match Hashtbl.find_opt forward l with
      | Some t -> resolve (l :: seen) t
      | None -> l
  in
  let r l = resolve [] l in
  let changed = ref false in
  List.iter
    (fun (_, b) ->
      let t' =
        match b.term with
        | Tjmp l -> Tjmp (r l)
        | Tbr (c, a, x, l1, l2) -> Tbr (c, a, x, r l1, r l2)
        | Tswitch (t, base, targets, d) ->
            Tswitch (t, base, Array.map r targets, r d)
        | t -> t
      in
      if t' <> b.term then begin
        b.term <- t';
        changed := true
      end)
    f.f_blocks;
  !changed

(* Merge [b] into [a] when a ends with an unconditional jump to b and b has
   no other predecessors (and the same landing pad). *)
let merge_straightline (f : func) =
  let preds = predecessors f in
  let changed = ref false in
  List.iter
    (fun (l, b) ->
      match b.term with
      (* the source block must still be live: an earlier merge in this same
         pass may have already folded it into another block *)
      | Tjmp t when t <> l && t <> f.f_entry && List.mem_assoc l f.f_blocks -> (
          match Hashtbl.find_opt preds t with
          | Some [ p ] when p = l -> (
              match block_opt f t with
              | Some tb
                when tb.lp = b.lp
                     && not
                          (List.exists
                             (fun (i, _) ->
                               match i with Ilandingpad _ -> true | _ -> false)
                             tb.insns) ->
                  b.insns <- b.insns @ tb.insns;
                  b.term <- tb.term;
                  b.term_line <- tb.term_line;
                  f.f_blocks <- List.filter (fun (l', _) -> l' <> t) f.f_blocks;
                  changed := true
              | _ -> ())
          | _ -> ())
      | _ -> ())
    f.f_blocks;
  !changed

(* Local constant folding and copy propagation, one block at a time. *)
let fold_block (b : block) =
  let consts = Hashtbl.create 16 in
  let copies = Hashtbl.create 16 in
  let kill t =
    Hashtbl.remove consts t;
    Hashtbl.remove copies t;
    (* any copy of t is stale now *)
    let stale = Hashtbl.fold (fun k v acc -> if v = t then k :: acc else acc) copies [] in
    List.iter (Hashtbl.remove copies) stale
  in
  let subst t = match Hashtbl.find_opt copies t with Some s -> s | None -> t in
  let const_of t = Hashtbl.find_opt consts (subst t) in
  let eval_bin op a b =
    match op with
    | Add -> a + b
    | Sub -> a - b
    | Mul -> a * b
    | Div -> if b = 0 then 0 else a / b
    | Mod -> if b = 0 then 0 else a mod b
    | And -> a land b
    | Or -> a lor b
    | Xor -> a lxor b
    | Shl -> a lsl (b land 63)
    | Shr -> a asr (b land 63)
  in
  let eval_cmp op a b =
    let r =
      match op with
      | Ceq -> a = b
      | Cne -> a <> b
      | Clt -> a < b
      | Cle -> a <= b
      | Cgt -> a > b
      | Cge -> a >= b
    in
    if r then 1 else 0
  in
  let insns =
    List.map
      (fun (i, line) ->
        let i =
          match i with
          | Imov (d, s) -> Imov (d, subst s)
          | Ibin (op, d, a, b) -> Ibin (op, d, subst a, subst b)
          | Icmp (op, d, a, b) -> Icmp (op, d, subst a, subst b)
          | Iload_idx (d, g, ix) -> Iload_idx (d, g, subst ix)
          | Istore_idx (g, ix, v) -> Istore_idx (g, subst ix, subst v)
          | Istore_g (g, v) -> Istore_g (g, subst v)
          | Iout v -> Iout (subst v)
          | Icall (d, fn, args) -> Icall (d, fn, List.map subst args)
          | Icall_ind (d, c, args) -> Icall_ind (d, subst c, List.map subst args)
          | i -> i
        in
        let i =
          match i with
          | Ibin (op, d, a, b) -> (
              match (const_of a, const_of b) with
              | Some ca, Some cb -> Iconst (d, eval_bin op ca cb)
              | _ -> i)
          | Icmp (op, d, a, b) -> (
              match (const_of a, const_of b) with
              | Some ca, Some cb -> Iconst (d, eval_cmp op ca cb)
              | _ -> i)
          | i -> i
        in
        (match i with
        | Iconst (d, n) ->
            kill d;
            Hashtbl.replace consts d n
        | Imov (d, s) ->
            kill d;
            (match Hashtbl.find_opt consts s with
            | Some n -> Hashtbl.replace consts d n
            | None -> Hashtbl.replace copies d s)
        | _ -> List.iter kill (defs_of i));
        (i, line))
      b.insns
  in
  b.insns <- insns;
  (* fold a conditional branch whose operands are both constants *)
  (match b.term with
  | Tbr (op, a, bb, l1, l2) -> (
      let a = subst a and bb = subst bb in
      match (const_of a, const_of bb) with
      | Some ca, Some cb -> b.term <- Tjmp (if eval_cmp op ca cb = 1 then l1 else l2)
      | _ -> b.term <- Tbr (op, a, bb, l1, l2))
  | Tswitch (t, base, targets, d) -> (
      let t = subst t in
      match const_of t with
      | Some v ->
          let idx = v - base in
          b.term <-
            Tjmp (if idx >= 0 && idx < Array.length targets then targets.(idx) else d)
      | None -> b.term <- Tswitch (t, base, targets, d))
  | Tret (Some t) -> b.term <- Tret (Some (subst t))
  | Tthrow t -> b.term <- Tthrow (subst t)
  | _ -> ())

let is_pure = function
  | Iconst _ | Imov _ | Ibin _ | Icmp _ | Iaddr _ | Iload_g _ | Iload_idx _ | Iload_ro _ ->
      true
  | _ -> false

(* Remove pure instructions whose result is never used anywhere in the
   function. *)
let dce (f : func) =
  let used = Hashtbl.create 64 in
  let mark t = Hashtbl.replace used t () in
  List.iter
    (fun (_, b) ->
      List.iter (fun (i, _) -> List.iter mark (uses_of i)) b.insns;
      List.iter mark (term_uses b.term))
    f.f_blocks;
  List.iter mark f.f_params;
  let changed = ref false in
  List.iter
    (fun (_, b) ->
      let keep =
        List.filter
          (fun (i, _) ->
            if is_pure i then
              match defs_of i with
              | [ d ] when not (Hashtbl.mem used d) ->
                  changed := false || true;
                  false
              | _ -> true
            else true)
          b.insns
      in
      if List.length keep <> List.length b.insns then begin
        b.insns <- keep;
        changed := true
      end)
    f.f_blocks;
  !changed

(* Run the cleanup pipeline to a (bounded) fixpoint. *)
let cleanup_func (f : func) =
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < 8 do
    incr rounds;
    List.iter (fun (_, b) -> fold_block b) f.f_blocks;
    let c1 = thread_jumps f in
    remove_unreachable f;
    let c2 = merge_straightline f in
    let c3 = dce f in
    continue_ := c1 || c2 || c3
  done

let cleanup (p : program) = List.iter cleanup_func p.p_funcs
