(* IR-level function inlining.

   Crucially for the paper's Figure 2 story, the callee's edge profile is
   an AGGREGATE over all of its call sites: when the same function is
   inlined into several callers, every copy inherits the same (scaled)
   branch ratios even if the per-call-site behaviour is completely
   different.  BOLT, reading per-address samples from the final binary,
   does not suffer this loss. *)

open Ir

let func_size (f : func) =
  List.fold_left (fun acc (_, b) -> acc + 1 + List.length b.insns) 0 f.f_blocks

let has_calls_to (f : func) name =
  List.exists
    (fun (_, b) ->
      List.exists
        (fun (i, _) -> match i with Icall (_, fn, _) -> fn = name | _ -> false)
        b.insns)
    f.f_blocks

type decision_input = {
  small_threshold : int; (* always inline below this size *)
  hint_threshold : int; (* inline 'inline'-marked functions below this *)
  hot_threshold : int; (* with profile: inline call sites at least this hot *)
  hot_size_limit : int;
}

let default_decisions =
  { small_threshold = 14; hint_threshold = 60; hot_threshold = 1000; hot_size_limit = 40 }

(* Splice [callee] into [caller] at a given call.  [args] are caller temps.
   Returns the label the caller should jump to and the continuation label
   mapping applied. *)
let splice caller callee ~args ~dst ~site_lp ~cont =
  let lmap = Hashtbl.create 16 in
  let tmap = Hashtbl.create 32 in
  let map_label l =
    match Hashtbl.find_opt lmap l with
    | Some l' -> l'
    | None ->
        let l' = new_label caller in
        Hashtbl.replace lmap l l';
        l'
  in
  let map_temp t =
    match Hashtbl.find_opt tmap t with
    | Some t' -> t'
    | None ->
        let t' = new_temp caller in
        Hashtbl.replace tmap t t';
        t'
  in
  (* parameter binding block *)
  let entry' = map_label callee.f_entry in
  let bind = new_label caller in
  let binds =
    List.map2 (fun p a -> (Imov (map_temp p, a), callee.f_line)) callee.f_params args
  in
  add_block caller bind
    { insns = binds; term = Tjmp entry'; term_line = callee.f_line; lp = site_lp };
  List.iter
    (fun (l, b) ->
      let insns =
        List.map
          (fun (i, line) ->
            let m = map_temp in
            let i =
              match i with
              | Iconst (d, n) -> Iconst (m d, n)
              | Imov (d, s) -> Imov (m d, m s)
              | Ibin (op, d, a, b) -> Ibin (op, m d, m a, m b)
              | Icmp (op, d, a, b) -> Icmp (op, m d, m a, m b)
              | Iload_g (d, g) -> Iload_g (m d, g)
              | Istore_g (g, v) -> Istore_g (g, m v)
              | Iload_idx (d, g, ix) -> Iload_idx (m d, g, m ix)
              | Istore_idx (g, ix, v) -> Istore_idx (g, m ix, m v)
              | Iload_ro (d, g, ix) -> Iload_ro (m d, g, ix)
              | Iaddr (d, s) -> Iaddr (m d, s)
              | Icall (d, fn, xs) -> Icall (Option.map m d, fn, List.map m xs)
              | Icall_ind (d, c, xs) -> Icall_ind (Option.map m d, m c, List.map m xs)
              | Iin d -> Iin (m d)
              | Iout v -> Iout (m v)
              | Iprofcnt n -> Iprofcnt n
              | Ilandingpad d -> Ilandingpad (m d)
            in
            (i, line))
          b.insns
      in
      let term, extra =
        match b.term with
        | Tret (Some t) -> (
            match dst with
            | Some d -> (Tjmp cont, [ (Imov (d, map_temp t), b.term_line) ])
            | None -> (Tjmp cont, []))
        | Tret None -> (
            match dst with
            | Some d -> (Tjmp cont, [ (Iconst (d, 0), b.term_line) ])
            | None -> (Tjmp cont, []))
        | Tjmp l -> (Tjmp (map_label l), [])
        | Tbr (c, a, b2, l1, l2) ->
            (Tbr (c, map_temp a, map_temp b2, map_label l1, map_label l2), [])
        | Tswitch (t, base, targets, d) ->
            (Tswitch (map_temp t, base, Array.map map_label targets, map_label d), [])
        | Tthrow t -> (Tthrow (map_temp t), [])
      in
      let lp =
        match b.lp with Some l -> Some (map_label l) | None -> site_lp
      in
      add_block caller (map_label l)
        { insns = insns @ extra; term; term_line = b.term_line; lp })
    callee.f_blocks;
  (* scale and import the callee's aggregate edge profile *)
  (bind, lmap)

let scale_profile caller callee lmap ~site_count =
  let ec = Pgo.entry_count callee in
  if ec > 0 && site_count > 0 then
    Hashtbl.iter
      (fun (s, d) c ->
        match (Hashtbl.find_opt lmap s, Hashtbl.find_opt lmap d) with
        | Some s', Some d' ->
            let scaled = c * site_count / ec in
            let prev =
              try Hashtbl.find caller.f_edge_counts (s', d') with Not_found -> 0
            in
            Hashtbl.replace caller.f_edge_counts (s', d') (prev + scaled)
        | _ -> ())
      callee.f_edge_counts

(* Inline eligible call sites across the program.  One pass, processing
   functions bottom-up-ish (callees before callers by not re-visiting newly
   spliced calls).  [cross_module] is false for non-LTO builds: a classic
   compiler cannot see other translation units' bodies. *)
let run ?(decisions = default_decisions) ?(cross_module = false) (p : program) =
  let by_name = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace by_name f.f_name f) p.p_funcs;
  let inlined = ref 0 in
  List.iter
    (fun caller ->
      let block_w = Pgo.block_counts caller in
      let work = List.map fst caller.f_blocks in
      List.iter
        (fun l ->
          match block_opt caller l with
          | None -> ()
          | Some b ->
              (* at most one inline per block per pass keeps this simple *)
              let rec find_site pre = function
                | [] -> None
                | ((Icall (dst, fn, args), line) as it) :: post -> (
                    match Hashtbl.find_opt by_name fn with
                    | Some callee
                      when callee.f_name <> caller.f_name
                           && (cross_module || callee.f_module = caller.f_module) -> (
                        let size = func_size callee in
                        let site_count =
                          try Hashtbl.find block_w l with Not_found -> 0
                        in
                        let profitable =
                          size <= decisions.small_threshold
                          || (callee.f_inline && size <= decisions.hint_threshold)
                          || (Pgo.has_profile caller
                             && site_count >= decisions.hot_threshold
                             && size <= decisions.hot_size_limit)
                        in
                        let recursive = has_calls_to callee callee.f_name in
                        let has_lp =
                          List.exists (fun (_, cb) -> cb.lp <> None) callee.f_blocks
                        in
                        ignore has_lp;
                        if profitable && not recursive then
                          Some (List.rev pre, dst, fn, args, line, post, site_count)
                        else find_site (it :: pre) post)
                    | _ -> find_site (it :: pre) post)
                | it :: post -> find_site (it :: pre) post
              in
              (match find_site [] b.insns with
              | None -> ()
              | Some (pre, dst, fn, args, _line, post, site_count) ->
                  let callee = Hashtbl.find by_name fn in
                  let cont = new_label caller in
                  add_block caller cont
                    { insns = post; term = b.term; term_line = b.term_line; lp = b.lp };
                  let bind, lmap =
                    splice caller callee ~args ~dst ~site_lp:b.lp ~cont
                  in
                  b.insns <- pre;
                  b.term <- Tjmp bind;
                  scale_profile caller callee lmap ~site_count;
                  incr inlined))
        work)
    p.p_funcs;
  !inlined
