(* Compiler driver: sources to linked executables, with the same knobs the
   paper's evaluation turns — optimization level, instrumentation-based
   PGO, LTO, function sections, PIC jump tables and link-time function
   ordering (the HFSort baseline). *)

type pgo_mode =
  | No_pgo
  | Instrument (* build with edge counters; produces a mapping *)
  | Apply of (string * int * int * int) list (* edge profile to apply *)

type options = {
  opt_level : int;
  lto : bool;
  pgo : pgo_mode;
  function_sections : bool;
  pic_jump_tables : bool;
  align_loops : bool;
  plt_calls : bool;
  repz_ret : bool;
  emit_fde : bool;
  emit_relocs : bool;
  linker_icf : bool;
  func_order : string list option; (* link-time function order (HFSort) *)
  inline_decisions : Inline.decision_input;
}

let default_options =
  {
    opt_level = 2;
    lto = false;
    pgo = No_pgo;
    function_sections = true;
    pic_jump_tables = true;
    align_loops = true;
    plt_calls = true;
    repz_ret = true;
    emit_fde = true;
    emit_relocs = true;
    linker_icf = false;
    func_order = None;
    inline_decisions = Inline.default_decisions;
  }

type result = {
  exe : Bolt_obj.Objfile.t;
  objs : Bolt_obj.Objfile.t list;
  mapping : Pgo.mapping option; (* present for instrumented builds *)
  link_stats : Bolt_linker.Linker.stats;
  ir : Ir.program;
}

(* Front end + middle end shared by every build mode. *)
let to_ir ?(externals = []) (sources : (string * string) list) =
  let modules =
    List.map (fun (name, src) -> Parser.parse_module ~name ~file:(name ^ ".mc") src) sources
  in
  let genv = Sema.check ~externals modules in
  (genv, Lower.lower_program genv modules)

(* [extra_objs] are pre-assembled objects (e.g. hand-written assembly
   units, which typically lack frame information) linked into the
   executable; [externals] declares the functions they define. *)
let compile ?(options = default_options) ?(externals = []) ?(extra_objs = [])
    (sources : (string * string) list) : result =
  let _genv, prog = to_ir ~externals sources in
  if options.opt_level >= 1 then Irpass.cleanup prog;
  let mapping =
    match options.pgo with
    | No_pgo -> None
    | Instrument -> Some (Pgo.instrument prog)
    | Apply prof ->
        Pgo.annotate prog prof;
        None
  in
  if options.opt_level >= 2 then
    ignore
      (Inline.run ~decisions:options.inline_decisions ~cross_module:options.lto prog);
  let cg_opts =
    {
      Codegen.opt_level = options.opt_level;
      lto = options.lto;
      function_sections = options.function_sections;
      pic_jump_tables = options.pic_jump_tables;
      align_loops = options.align_loops;
      plt_calls = options.plt_calls;
      repz_ret = options.repz_ret;
      emit_fde = options.emit_fde;
    }
  in
  let extra_bss =
    match mapping with
    | Some m -> [ (Pgo.counters_symbol, 8 * max 1 (Pgo.num_counters m), true) ]
    | None -> []
  in
  let units = Codegen.gen_program ~opts:cg_opts ~extra_bss prog in
  let objs = List.map (fun (_, u) -> Bolt_asm.Asm.assemble u) units @ extra_objs in
  let link_opts =
    {
      Bolt_linker.Linker.emit_relocs = options.emit_relocs;
      icf = options.linker_icf;
      func_order = options.func_order;
      entry = "main";
    }
  in
  let exe, link_stats = Bolt_linker.Linker.link ~options:link_opts objs in
  { exe; objs; mapping; link_stats; ir = prog }
