(** Compiler driver: MiniC sources to linked BELF executables, with the
    knobs the paper's evaluation turns. *)

(** Profile-guided-optimization mode of a build. *)
type pgo_mode =
  | No_pgo
  | Instrument  (** insert edge counters; the result carries a mapping *)
  | Apply of (string * int * int * int) list
      (** apply an edge profile: (function, src block, dst block, count) *)

type options = {
  opt_level : int;  (** 0, 1 or 2 *)
  lto : bool;  (** whole-program build: cross-module inlining, no PLT *)
  pgo : pgo_mode;
  function_sections : bool;
      (** one text section per function; required for link-time function
          reordering.  When false, intra-unit calls are resolved at
          assembly time and leave no relocations (§3.2's challenge). *)
  pic_jump_tables : bool;
      (** emit PIC jump tables, whose relocations the linker drops —
          BOLT must then rediscover them by pattern matching *)
  align_loops : bool;
  plt_calls : bool;  (** cross-module calls go through PLT stubs *)
  repz_ret : bool;  (** emit the 2-byte legacy-AMD return *)
  emit_fde : bool;
  emit_relocs : bool;  (** keep relocations: enables BOLT's relocations mode *)
  linker_icf : bool;
  func_order : string list option;  (** link-time function order (HFSort) *)
  inline_decisions : Inline.decision_input;
}

val default_options : options

type result = {
  exe : Bolt_obj.Objfile.t;
  objs : Bolt_obj.Objfile.t list;  (** the relocatable inputs to the link *)
  mapping : Pgo.mapping option;  (** present for instrumented builds *)
  link_stats : Bolt_linker.Linker.stats;
  ir : Ir.program;  (** post-optimization IR, for inspection *)
}

(** Shared front end + middle end: parse, check, lower.  [externals]
    declares functions defined by hand-written assembly objects. *)
val to_ir :
  ?externals:(string * int) list ->
  (string * string) list ->
  Sema.genv * Ir.program

(** [compile ~options sources] builds [(module_name, source_text)] pairs
    into an executable.  [extra_objs] are pre-assembled objects linked in
    (e.g. assembly dispatchers); [externals] declares the functions they
    define, as (name, arity). *)
val compile :
  ?options:options ->
  ?externals:(string * int) list ->
  ?extra_objs:Bolt_obj.Objfile.t list ->
  (string * string) list ->
  result
