(* Semantic checks for MiniC modules and programs.

   MiniC is untyped (everything is a 64-bit integer), so the checker is
   mostly about name resolution, arities and structural rules: at most four
   parameters (the ABI passes arguments in registers), locals declared
   before use, break/continue only inside loops, array stores only into
   writable arrays. *)

open Ast

exception Sema_error of string * pos

let err pos fmt = Fmt.kstr (fun s -> raise (Sema_error (s, pos))) fmt

type gkind = Gscalar | Garray of int | Gconst of int array

type genv = {
  funcs : (string, int) Hashtbl.t; (* name -> arity, across the program *)
  inline_funcs : (string, unit) Hashtbl.t;
  globals : (string, gkind) Hashtbl.t;
}

let max_params = 4

(* [externals] declares symbols defined outside MiniC (hand-written
   assembly units linked in later), as (name, arity). *)
let build_genv ?(externals = []) (modules : module_ list) =
  let g =
    { funcs = Hashtbl.create 64; inline_funcs = Hashtbl.create 16; globals = Hashtbl.create 64 }
  in
  List.iter (fun (n, a) -> Hashtbl.replace g.funcs n a) externals;
  List.iter
    (fun m ->
      List.iter
        (fun d ->
          match d with
          | Dfunc f ->
              if Hashtbl.mem g.funcs f.fn_name then
                err f.fn_pos "duplicate function %s" f.fn_name;
              if List.length f.fn_params > max_params then
                err f.fn_pos "%s: more than %d parameters" f.fn_name max_params;
              Hashtbl.replace g.funcs f.fn_name (List.length f.fn_params);
              if f.fn_inline then Hashtbl.replace g.inline_funcs f.fn_name ()
          | Dextern _ -> () (* recorded on a second pass; definition wins *)
          | Dglobal (n, _) ->
              if Hashtbl.mem g.globals n then err dummy_pos "duplicate global %s" n;
              Hashtbl.replace g.globals n Gscalar
          | Darray (n, sz) ->
              if Hashtbl.mem g.globals n then err dummy_pos "duplicate global %s" n;
              if sz <= 0 then err dummy_pos "array %s: bad size" n;
              Hashtbl.replace g.globals n (Garray sz)
          | Dconst (n, vs) ->
              if Hashtbl.mem g.globals n then err dummy_pos "duplicate global %s" n;
              Hashtbl.replace g.globals n (Gconst (Array.of_list vs)))
        m.m_decls)
    modules;
  (* Externs must match a definition somewhere in the program. *)
  List.iter
    (fun m ->
      List.iter
        (function
          | Dextern (n, arity) -> (
              match Hashtbl.find_opt g.funcs n with
              | Some a when a = arity -> ()
              | Some a -> err dummy_pos "extern %s: arity %d, defined with %d" n arity a
              | None -> err dummy_pos "extern %s never defined" n)
          | _ -> ())
        m.m_decls)
    modules;
  g

let check_func g (f : func) =
  let locals = Hashtbl.create 16 in
  List.iter
    (fun p ->
      if Hashtbl.mem locals p then err f.fn_pos "%s: duplicate parameter %s" f.fn_name p;
      Hashtbl.replace locals p ())
    f.fn_params;
  let rec expr pos e =
    match e with
    | Eint _ | Ein -> ()
    | Evar v ->
        if not (Hashtbl.mem locals v) then (
          match Hashtbl.find_opt g.globals v with
          | Some Gscalar -> ()
          | Some _ -> err pos "%s is an array, not a scalar" v
          | None -> err pos "unknown variable %s" v)
    | Ebin (_, a, b) ->
        expr pos a;
        expr pos b
    | Eneg a | Enot a -> expr pos a
    | Ecall (fn, args) ->
        (match Hashtbl.find_opt g.funcs fn with
        | Some arity when arity = List.length args -> ()
        | Some arity -> err pos "call %s: expected %d args, got %d" fn arity (List.length args)
        | None -> err pos "unknown function %s" fn);
        List.iter (expr pos) args
    | Ecall_ind (c, args) ->
        if List.length args > max_params then err pos "indirect call: too many args";
        expr pos c;
        List.iter (expr pos) args
    | Eindex (a, i) ->
        (match Hashtbl.find_opt g.globals a with
        | Some (Garray _ | Gconst _) -> ()
        | Some Gscalar -> err pos "%s is a scalar, not an array" a
        | None -> err pos "unknown array %s" a);
        expr pos i
    | Eaddr n ->
        if not (Hashtbl.mem g.funcs n || Hashtbl.mem g.globals n) then
          err pos "unknown symbol &%s" n
  in
  let rec stmts ~in_loop ss = List.iter (stmt ~in_loop) ss
  and stmt ~in_loop s =
    match s.sk with
    | Svar (v, e) ->
        expr s.pos e;
        Hashtbl.replace locals v ()
    | Sassign (v, e) ->
        expr s.pos e;
        if not (Hashtbl.mem locals v) then (
          match Hashtbl.find_opt g.globals v with
          | Some Gscalar -> ()
          | Some _ -> err s.pos "cannot assign to array %s" v
          | None -> err s.pos "unknown variable %s" v)
    | Sstore (a, i, e) ->
        (match Hashtbl.find_opt g.globals a with
        | Some (Garray _) -> ()
        | Some (Gconst _) -> err s.pos "cannot store into const %s" a
        | Some Gscalar -> err s.pos "%s is a scalar" a
        | None -> err s.pos "unknown array %s" a);
        expr s.pos i;
        expr s.pos e
    | Sif (c, t, e) ->
        expr s.pos c;
        stmts ~in_loop t;
        stmts ~in_loop e
    | Swhile (c, b) ->
        expr s.pos c;
        stmts ~in_loop:true b
    | Sswitch (e, cases, default) ->
        expr s.pos e;
        let seen = Hashtbl.create 8 in
        List.iter
          (fun (v, b) ->
            if Hashtbl.mem seen v then err s.pos "duplicate case %d" v;
            Hashtbl.replace seen v ();
            stmts ~in_loop b)
          cases;
        stmts ~in_loop default
    | Sreturn (Some e) -> expr s.pos e
    | Sreturn None -> ()
    | Sexpr e | Sout e | Sthrow e -> expr s.pos e
    | Stry (b, v, h) ->
        stmts ~in_loop b;
        Hashtbl.replace locals v ();
        stmts ~in_loop h
    | Sbreak | Scontinue -> if not in_loop then err s.pos "break/continue outside loop"
  in
  stmts ~in_loop:false f.fn_body

(* Checks the whole program; returns the global environment. *)
let check ?(externals = []) (modules : module_ list) =
  let g = build_genv ~externals modules in
  List.iter
    (fun m ->
      List.iter (function Dfunc f -> check_func g f | _ -> ()) m.m_decls)
    modules;
  (match Hashtbl.find_opt g.funcs "main" with
  | Some 0 -> ()
  | Some _ -> err dummy_pos "main must take no parameters"
  | None -> err dummy_pos "no main function");
  g
