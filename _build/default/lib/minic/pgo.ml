(* Instrumentation-based PGO support.

   The instrumented build inserts a counter bump on every CFG edge (the
   classic, expensive scheme whose overhead motivates sample-based
   profiling in the paper).  Counters live in a .bss array
   [__prof_counters]; the compiler also produces a mapping from counter
   index to (function, edge).  After a run, the simulator dumps the
   counter memory and [write_profile] turns it into a text profile that
   [annotate] can apply on a later build of the same sources. *)

open Ir

let counters_symbol = "__prof_counters"

type mapping = (string * label * label * int) list (* func, src, dst, index *)

(* Instrument every normal CFG edge of every function.  Returns the
   mapping; the program is mutated in place. *)
let instrument (p : program) : mapping =
  let mapping = ref [] in
  let next = ref 0 in
  List.iter
    (fun f ->
      let preds = predecessors f in
      let single_pred l =
        match Hashtbl.find_opt preds l with Some [ _ ] -> true | _ -> false
      in
      (* collect edges first: splitting mutates the block list *)
      let edges =
        List.concat_map
          (fun (l, b) -> List.map (fun s -> (l, s)) (successors b.term))
          f.f_blocks
      in
      List.iter
        (fun (src, dst) ->
          let idx = !next in
          incr next;
          mapping := (f.f_name, src, dst, idx) :: !mapping;
          let sb = block f src in
          match successors sb.term with
          | [ _ ] -> sb.insns <- sb.insns @ [ (Iprofcnt idx, sb.term_line) ]
          | _ ->
              if single_pred dst then begin
                let db = block f dst in
                (* keep a landing pad's first instruction first *)
                match db.insns with
                | (Ilandingpad t, ln) :: rest ->
                    db.insns <- (Ilandingpad t, ln) :: (Iprofcnt idx, ln) :: rest
                | _ -> db.insns <- (Iprofcnt idx, db.term_line) :: db.insns
              end
              else begin
                (* split the critical edge *)
                let mid = new_label f in
                add_block f mid
                  {
                    insns = [ (Iprofcnt idx, sb.term_line) ];
                    term = Tjmp dst;
                    term_line = sb.term_line;
                    lp = sb.lp;
                  };
                let retarget l = if l = dst then mid else l in
                sb.term <-
                  (match sb.term with
                  | Tjmp l -> Tjmp (retarget l)
                  | Tbr (c, a, b2, l1, l2) ->
                      (* only one occurrence per edge instance: retarget both
                         identical targets together is fine for counting *)
                      Tbr (c, a, b2, retarget l1, retarget l2)
                  | Tswitch (t, base, targets, d) ->
                      Tswitch (t, base, Array.map retarget targets, retarget d)
                  | t -> t)
              end)
        edges)
    p.p_funcs;
  (List.rev !mapping, !next) |> fun (m, n) ->
  ignore n;
  m

let num_counters (m : mapping) =
  List.fold_left (fun acc (_, _, _, i) -> max acc (i + 1)) 0 m

(* ---- mapping and profile files ---- *)

let save_mapping path (m : mapping) =
  let oc = open_out path in
  List.iter
    (fun (f, s, d, i) -> Printf.fprintf oc "%s %d %d %d\n" f s d i)
    m;
  close_out oc

let load_mapping path : mapping =
  let ic = open_in path in
  let rec loop acc =
    match input_line ic with
    | line ->
        let parts = String.split_on_char ' ' line in
        (match parts with
        | [ f; s; d; i ] ->
            loop ((f, int_of_string s, int_of_string d, int_of_string i) :: acc)
        | _ -> loop acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  loop []

(* Combine a mapping with raw counter values into an edge profile. *)
let profile_of_counters (m : mapping) (counters : int array) :
    (string * label * label * int) list =
  List.map
    (fun (f, s, d, i) ->
      (f, s, d, if i < Array.length counters then counters.(i) else 0))
    m

let save_profile path prof =
  let oc = open_out path in
  List.iter
    (fun (f, s, d, c) -> if c > 0 then Printf.fprintf oc "%s %d %d %d\n" f s d c)
    prof;
  close_out oc

let load_profile path =
  let ic = open_in path in
  let rec loop acc =
    match input_line ic with
    | line -> (
        match String.split_on_char ' ' line with
        | [ f; s; d; c ] ->
            loop ((f, int_of_string s, int_of_string d, int_of_string c) :: acc)
        | _ -> loop acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  loop []

(* Attach edge counts to the program's functions.  The label space must
   match the build that was instrumented: both builds lower and clean up
   identically before this point. *)
let annotate (p : program) prof =
  let by_func = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace by_func f.f_name f) p.p_funcs;
  List.iter
    (fun (fn, s, d, c) ->
      match Hashtbl.find_opt by_func fn with
      | Some f ->
          let prev = try Hashtbl.find f.f_edge_counts (s, d) with Not_found -> 0 in
          Hashtbl.replace f.f_edge_counts (s, d) (prev + c)
      | None -> ())
    prof

let has_profile (f : func) = Hashtbl.length f.f_edge_counts > 0

(* Block execution counts derived from edge counts: max of flow in/out so
   entry blocks and blocks with missing edges still get a weight. *)
let block_counts (f : func) : (label, int) Hashtbl.t =
  let w = Hashtbl.create 16 in
  List.iter (fun (l, _) -> Hashtbl.replace w l 0) f.f_blocks;
  Hashtbl.iter
    (fun (s, d) c ->
      (match Hashtbl.find_opt w s with
      | Some cur -> Hashtbl.replace w s (max cur c)
      | None -> ());
      match Hashtbl.find_opt w d with
      | Some _ ->
          let inflow =
            Hashtbl.fold
              (fun (_, d') c' acc -> if d' = d then acc + c' else acc)
              f.f_edge_counts 0
          in
          Hashtbl.replace w d (max inflow (try Hashtbl.find w d with Not_found -> 0))
      | None -> ())
    f.f_edge_counts;
  w

let entry_count (f : func) =
  let w = block_counts f in
  let outflow =
    Hashtbl.fold
      (fun (s, _) c acc -> if s = f.f_entry then acc + c else acc)
      f.f_edge_counts 0
  in
  max outflow (try Hashtbl.find w f.f_entry with Not_found -> 0)
