(* AST to IR lowering.

   Control flow is made explicit here: short-circuit operators become
   branches, switches become dense [Tswitch] tables when profitable and
   compare chains otherwise, and try/catch regions become landing-pad
   attributes on the blocks they cover. *)

open Ast

type ctx = {
  f : Ir.func;
  genv : Sema.genv;
  locals : (string, Ir.temp) Hashtbl.t;
  mutable cur : Ir.label;
  mutable cur_insns : (Ir.insn * int) list; (* reversed *)
  mutable cur_lp : Ir.label option;
  mutable loop_stack : (Ir.label * Ir.label) list; (* continue, break *)
  mutable terminated : bool;
}

let start_block ctx l =
  ctx.cur <- l;
  ctx.cur_insns <- [];
  ctx.terminated <- false

let emit ctx ~line i = ctx.cur_insns <- (i, line) :: ctx.cur_insns

let finish ctx ~line term =
  if not ctx.terminated then begin
    Ir.add_block ctx.f ctx.cur
      {
        Ir.insns = List.rev ctx.cur_insns;
        term;
        term_line = line;
        lp = ctx.cur_lp;
      };
    ctx.terminated <- true
  end

let fresh_block ctx =
  let l = Ir.new_label ctx.f in
  l

(* Dense-table heuristic: at least 4 cases and table no sparser than 3x. *)
let switch_is_dense cases =
  match cases with
  | [] -> false
  | _ ->
      let vs = List.map fst cases in
      let min_v = List.fold_left min (List.hd vs) vs in
      let max_v = List.fold_left max (List.hd vs) vs in
      let span = max_v - min_v + 1 in
      List.length cases >= 4 && span <= 3 * List.length cases && span <= 512

let is_global_scalar ctx v =
  (not (Hashtbl.mem ctx.locals v))
  && match Hashtbl.find_opt ctx.genv.Sema.globals v with
     | Some Sema.Gscalar -> true
     | _ -> false

let rec lower_expr ctx ~line (e : expr) : Ir.temp =
  match e with
  | Eint n ->
      let t = Ir.new_temp ctx.f in
      emit ctx ~line (Ir.Iconst (t, n));
      t
  | Evar v -> (
      match Hashtbl.find_opt ctx.locals v with
      | Some t -> t
      | None ->
          let t = Ir.new_temp ctx.f in
          emit ctx ~line (Ir.Iload_g (t, v));
          t)
  | Ebin ((Bland | Blor), _, _) | Enot _ -> lower_bool ctx ~line e
  | Ebin (op, a, b) -> (
      let cmp c =
        let ta = lower_expr ctx ~line a in
        let tb = lower_expr ctx ~line b in
        let t = Ir.new_temp ctx.f in
        emit ctx ~line (Ir.Icmp (c, t, ta, tb));
        t
      in
      match op with
      | Beq -> cmp Ir.Ceq
      | Bne -> cmp Ir.Cne
      | Blt -> cmp Ir.Clt
      | Ble -> cmp Ir.Cle
      | Bgt -> cmp Ir.Cgt
      | Bge -> cmp Ir.Cge
      | _ ->
          let bop =
            match op with
            | Badd -> Ir.Add
            | Bsub -> Ir.Sub
            | Bmul -> Ir.Mul
            | Bdiv -> Ir.Div
            | Bmod -> Ir.Mod
            | Band -> Ir.And
            | Bor -> Ir.Or
            | Bxor -> Ir.Xor
            | Bshl -> Ir.Shl
            | Bshr -> Ir.Shr
            | _ -> assert false
          in
          let ta = lower_expr ctx ~line a in
          let tb = lower_expr ctx ~line b in
          let t = Ir.new_temp ctx.f in
          emit ctx ~line (Ir.Ibin (bop, t, ta, tb));
          t)
  | Eneg a ->
      let z = Ir.new_temp ctx.f in
      emit ctx ~line (Ir.Iconst (z, 0));
      let ta = lower_expr ctx ~line a in
      let t = Ir.new_temp ctx.f in
      emit ctx ~line (Ir.Ibin (Ir.Sub, t, z, ta));
      t
  | Ecall (fn, args) ->
      let ts = List.map (lower_expr ctx ~line) args in
      let t = Ir.new_temp ctx.f in
      emit ctx ~line (Ir.Icall (Some t, fn, ts));
      t
  | Ecall_ind (c, args) ->
      let tc = lower_expr ctx ~line c in
      let ts = List.map (lower_expr ctx ~line) args in
      let t = Ir.new_temp ctx.f in
      emit ctx ~line (Ir.Icall_ind (Some t, tc, ts));
      t
  | Eindex (a, Eint i)
    when (match Hashtbl.find_opt ctx.genv.Sema.globals a with
         | Some (Sema.Gconst arr) -> i >= 0 && i < Array.length arr
         | _ -> false) ->
      let t = Ir.new_temp ctx.f in
      emit ctx ~line (Ir.Iload_ro (t, a, i));
      t
  | Eindex (a, i) ->
      let ti = lower_expr ctx ~line i in
      let t = Ir.new_temp ctx.f in
      emit ctx ~line (Ir.Iload_idx (t, a, ti));
      t
  | Eaddr n ->
      let t = Ir.new_temp ctx.f in
      emit ctx ~line (Ir.Iaddr (t, n));
      t
  | Ein ->
      let t = Ir.new_temp ctx.f in
      emit ctx ~line (Ir.Iin t);
      t

(* Booleans that need a 0/1 value: materialise through control flow. *)
and lower_bool ctx ~line e =
  let t = Ir.new_temp ctx.f in
  let lt = fresh_block ctx in
  let lf = fresh_block ctx in
  let join = fresh_block ctx in
  lower_cond ctx ~line e lt lf;
  start_block ctx lt;
  emit ctx ~line (Ir.Iconst (t, 1));
  finish ctx ~line (Ir.Tjmp join);
  start_block ctx lf;
  emit ctx ~line (Ir.Iconst (t, 0));
  finish ctx ~line (Ir.Tjmp join);
  start_block ctx join;
  t

(* Lower [e] as a condition, branching to [lt] or [lf]. *)
and lower_cond ctx ~line e lt lf =
  match e with
  | Ebin (Bland, a, b) ->
      let mid = fresh_block ctx in
      lower_cond ctx ~line a mid lf;
      start_block ctx mid;
      lower_cond ctx ~line b lt lf
  | Ebin (Blor, a, b) ->
      let mid = fresh_block ctx in
      lower_cond ctx ~line a lt mid;
      start_block ctx mid;
      lower_cond ctx ~line b lt lf
  | Enot a -> lower_cond ctx ~line a lf lt
  | Ebin ((Beq | Bne | Blt | Ble | Bgt | Bge) as op, a, b) ->
      let c =
        match op with
        | Beq -> Ir.Ceq
        | Bne -> Ir.Cne
        | Blt -> Ir.Clt
        | Ble -> Ir.Cle
        | Bgt -> Ir.Cgt
        | Bge -> Ir.Cge
        | _ -> assert false
      in
      let ta = lower_expr ctx ~line a in
      let tb = lower_expr ctx ~line b in
      finish ctx ~line (Ir.Tbr (c, ta, tb, lt, lf))
  | _ ->
      let t = lower_expr ctx ~line e in
      let z = Ir.new_temp ctx.f in
      emit ctx ~line (Ir.Iconst (z, 0));
      finish ctx ~line (Ir.Tbr (Ir.Cne, t, z, lt, lf))

let rec lower_stmts ctx ss = List.iter (lower_stmt ctx) ss

and lower_stmt ctx (s : stmt) =
  if ctx.terminated then ()
  else
    let line = s.pos.line in
    match s.sk with
    | Svar (v, e) ->
        let te = lower_expr ctx ~line e in
        let t = Ir.new_temp ctx.f in
        emit ctx ~line (Ir.Imov (t, te));
        Hashtbl.replace ctx.locals v t
    | Sassign (v, e) ->
        let te = lower_expr ctx ~line e in
        if is_global_scalar ctx v then emit ctx ~line (Ir.Istore_g (v, te))
        else begin
          match Hashtbl.find_opt ctx.locals v with
          | Some t -> emit ctx ~line (Ir.Imov (t, te))
          | None -> emit ctx ~line (Ir.Istore_g (v, te))
        end
    | Sstore (a, i, e) ->
        let ti = lower_expr ctx ~line i in
        let te = lower_expr ctx ~line e in
        emit ctx ~line (Ir.Istore_idx (a, ti, te))
    | Sif (c, then_, else_) ->
        let lt = fresh_block ctx in
        let lf = fresh_block ctx in
        let join = fresh_block ctx in
        lower_cond ctx ~line c lt lf;
        start_block ctx lt;
        lower_stmts ctx then_;
        finish ctx ~line (Ir.Tjmp join);
        start_block ctx lf;
        lower_stmts ctx else_;
        finish ctx ~line (Ir.Tjmp join);
        start_block ctx join
    | Swhile (c, body) ->
        let header = fresh_block ctx in
        let lbody = fresh_block ctx in
        let exit = fresh_block ctx in
        finish ctx ~line (Ir.Tjmp header);
        start_block ctx header;
        lower_cond ctx ~line c lbody exit;
        start_block ctx lbody;
        ctx.loop_stack <- (header, exit) :: ctx.loop_stack;
        lower_stmts ctx body;
        ctx.loop_stack <- List.tl ctx.loop_stack;
        finish ctx ~line (Ir.Tjmp header);
        start_block ctx exit
    | Sswitch (e, cases, default) ->
        let te = lower_expr ctx ~line e in
        let case_labels = List.map (fun (v, _) -> (v, fresh_block ctx)) cases in
        let ldefault = fresh_block ctx in
        let join = fresh_block ctx in
        if switch_is_dense cases then begin
          let vs = List.map fst cases in
          let min_v = List.fold_left min (List.hd vs) vs in
          let max_v = List.fold_left max (List.hd vs) vs in
          let targets = Array.make (max_v - min_v + 1) ldefault in
          List.iter (fun (v, l) -> targets.(v - min_v) <- l) case_labels;
          finish ctx ~line (Ir.Tswitch (te, min_v, targets, ldefault))
        end
        else begin
          (* compare chain *)
          let rec chain = function
            | [] -> finish ctx ~line (Ir.Tjmp ldefault)
            | (v, l) :: rest ->
                let tv = Ir.new_temp ctx.f in
                emit ctx ~line (Ir.Iconst (tv, v));
                let next = if rest = [] then ldefault else fresh_block ctx in
                finish ctx ~line (Ir.Tbr (Ir.Ceq, te, tv, l, next));
                if rest <> [] then begin
                  start_block ctx next;
                  chain rest
                end
          in
          chain case_labels
        end;
        List.iter2
          (fun (_, body) (_, l) ->
            start_block ctx l;
            lower_stmts ctx body;
            finish ctx ~line (Ir.Tjmp join))
          cases case_labels;
        start_block ctx ldefault;
        lower_stmts ctx default;
        finish ctx ~line (Ir.Tjmp join);
        start_block ctx join
    | Sreturn None -> finish ctx ~line (Ir.Tret None)
    | Sreturn (Some e) ->
        let t = lower_expr ctx ~line e in
        finish ctx ~line (Ir.Tret (Some t))
    | Sexpr (Ecall (fn, args)) ->
        let ts = List.map (lower_expr ctx ~line) args in
        emit ctx ~line (Ir.Icall (None, fn, ts))
    | Sexpr (Ecall_ind (c, args)) ->
        let tc = lower_expr ctx ~line c in
        let ts = List.map (lower_expr ctx ~line) args in
        emit ctx ~line (Ir.Icall_ind (None, tc, ts))
    | Sexpr e -> ignore (lower_expr ctx ~line e)
    | Sout e ->
        let t = lower_expr ctx ~line e in
        emit ctx ~line (Ir.Iout t)
    | Sthrow e ->
        let t = lower_expr ctx ~line e in
        finish ctx ~line (Ir.Tthrow t)
    | Stry (body, v, handler) ->
        let lbody = fresh_block ctx in
        let lpad = fresh_block ctx in
        let join = fresh_block ctx in
        finish ctx ~line (Ir.Tjmp lbody);
        let saved_lp = ctx.cur_lp in
        (* body runs under the new landing pad *)
        ctx.cur_lp <- Some lpad;
        start_block ctx lbody;
        lower_stmts ctx body;
        finish ctx ~line (Ir.Tjmp join);
        (* handler runs under the enclosing landing pad *)
        ctx.cur_lp <- saved_lp;
        start_block ctx lpad;
        let tv = Ir.new_temp ctx.f in
        emit ctx ~line (Ir.Ilandingpad tv);
        Hashtbl.replace ctx.locals v tv;
        lower_stmts ctx handler;
        finish ctx ~line (Ir.Tjmp join);
        start_block ctx join
    | Sbreak -> (
        match ctx.loop_stack with
        | (_, brk) :: _ -> finish ctx ~line (Ir.Tjmp brk)
        | [] -> assert false)
    | Scontinue -> (
        match ctx.loop_stack with
        | (cont, _) :: _ -> finish ctx ~line (Ir.Tjmp cont)
        | [] -> assert false)

let lower_func genv ~module_name (fn : func) : Ir.func =
  let f =
    {
      Ir.f_name = fn.fn_name;
      f_module = module_name;
      f_params = [];
      f_entry = 0;
      f_blocks = [];
      f_ntemps = 0;
      f_nlabels = 0;
      f_line = fn.fn_pos.line;
      f_file = fn.fn_pos.file;
      f_inline = fn.fn_inline;
      f_edge_counts = Hashtbl.create 8;
    }
  in
  let ctx =
    {
      f;
      genv;
      locals = Hashtbl.create 16;
      cur = 0;
      cur_insns = [];
      cur_lp = None;
      loop_stack = [];
      terminated = false;
    }
  in
  let entry = Ir.new_label f in
  let params =
    List.map
      (fun p ->
        let t = Ir.new_temp f in
        Hashtbl.replace ctx.locals p t;
        t)
      fn.fn_params
  in
  let f = { f with Ir.f_params = params; f_entry = entry } in
  let ctx = { ctx with f } in
  start_block ctx entry;
  lower_stmts ctx fn.fn_body;
  finish ctx ~line:fn.fn_pos.line (Ir.Tret None);
  f

(* Lower a set of modules into one IR program. *)
let lower_program genv (modules : module_ list) : Ir.program =
  let funcs = ref [] in
  let globals = ref [] in
  let module_of = Hashtbl.create 64 in
  List.iter
    (fun m ->
      List.iter
        (fun d ->
          match d with
          | Dfunc fn ->
              Hashtbl.replace module_of fn.fn_name m.m_name;
              funcs := lower_func genv ~module_name:m.m_name fn :: !funcs
          | Dextern _ -> ()
          | Dglobal (n, v) -> globals := (n, Ir.Gscalar v) :: !globals
          | Darray (n, sz) -> globals := (n, Ir.Garray sz) :: !globals
          | Dconst (n, vs) -> globals := (n, Ir.Gconst (Array.of_list vs)) :: !globals)
        m.m_decls)
    modules;
  { Ir.p_funcs = List.rev !funcs; p_globals = List.rev !globals; p_module_of = module_of }
