(* Hand-written lexer for MiniC. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string (* fn, var, if, else, while, switch, case, default, ... *)
  | PUNCT of string (* operators and punctuation *)
  | EOF

type t = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable tok : token;
  mutable tok_line : int;
}

exception Lex_error of string * int (* message, line *)

let keywords =
  [
    "fn"; "var"; "if"; "else"; "while"; "switch"; "case"; "default"; "return";
    "extern"; "global"; "array"; "const"; "out"; "in"; "throw"; "try"; "catch";
    "break"; "continue"; "inline";
  ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let rec skip_ws lx =
  if lx.pos >= String.length lx.src then ()
  else
    match lx.src.[lx.pos] with
    | ' ' | '\t' | '\r' ->
        lx.pos <- lx.pos + 1;
        skip_ws lx
    | '\n' ->
        lx.pos <- lx.pos + 1;
        lx.line <- lx.line + 1;
        skip_ws lx
    | '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
        while lx.pos < String.length lx.src && lx.src.[lx.pos] <> '\n' do
          lx.pos <- lx.pos + 1
        done;
        skip_ws lx
    | _ -> ()

let two_char_ops = [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>" ]

let scan lx =
  skip_ws lx;
  lx.tok_line <- lx.line;
  if lx.pos >= String.length lx.src then lx.tok <- EOF
  else
    let c = lx.src.[lx.pos] in
    if is_digit c then begin
      let start = lx.pos in
      while lx.pos < String.length lx.src && is_digit lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      lx.tok <- INT (int_of_string (String.sub lx.src start (lx.pos - start)))
    end
    else if is_alpha c then begin
      let start = lx.pos in
      while lx.pos < String.length lx.src && is_alnum lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      let s = String.sub lx.src start (lx.pos - start) in
      lx.tok <- (if List.mem s keywords then KW s else IDENT s)
    end
    else begin
      let two =
        if lx.pos + 1 < String.length lx.src then
          String.sub lx.src lx.pos 2
        else ""
      in
      if List.mem two two_char_ops then begin
        lx.pos <- lx.pos + 2;
        lx.tok <- PUNCT two
      end
      else
        match c with
        | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '<' | '>' | '='
        | '!' | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | ':' ->
            lx.pos <- lx.pos + 1;
            lx.tok <- PUNCT (String.make 1 c)
        | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, lx.line))
    end

let create ~file src =
  let lx = { src; file; pos = 0; line = 1; tok = EOF; tok_line = 1 } in
  scan lx;
  lx

let token lx = lx.tok
let token_line lx = lx.tok_line
let advance lx = scan lx

let token_desc = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"
