(* Compiler-side basic-block layout.

   Without a profile the compiler uses reverse postorder, which keeps
   loop bodies together and puts the static fall-through path first.
   With a PGO profile it builds Pettis-Hansen-style chains over the
   weighted edges.  Either way this is the layout BOLT later inspects and
   — thanks to its more accurate binary-level profile — improves. *)

open Ir

(* Greedy bottom-up chaining on edge weights. *)
let profiled_order (f : func) : label list =
  let labels = List.map fst f.f_blocks in
  let chain_of = Hashtbl.create 16 in
  let chains = Hashtbl.create 16 in
  List.iteri
    (fun i l ->
      Hashtbl.replace chain_of l i;
      Hashtbl.replace chains i [ l ])
    labels;
  let edges =
    Hashtbl.fold (fun (s, d) c acc -> ((s, d), c) :: acc) f.f_edge_counts []
    |> List.filter (fun ((s, d), _) -> s <> d)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  List.iter
    (fun ((s, d), _c) ->
      match (Hashtbl.find_opt chain_of s, Hashtbl.find_opt chain_of d) with
      | Some cs, Some cd when cs <> cd ->
          let ls = Hashtbl.find chains cs in
          let ld = Hashtbl.find chains cd in
          (* merge only when s ends its chain and d heads its chain *)
          if List.nth ls (List.length ls - 1) = s && List.hd ld = d && d <> f.f_entry
          then begin
            let merged = ls @ ld in
            Hashtbl.replace chains cs merged;
            Hashtbl.remove chains cd;
            List.iter (fun l -> Hashtbl.replace chain_of l cs) ld
          end
      | _ -> ())
    edges;
  let w = Pgo.block_counts f in
  let weight_of_chain ls =
    List.fold_left (fun acc l -> acc + (try Hashtbl.find w l with Not_found -> 0)) 0 ls
  in
  let all = Hashtbl.fold (fun _ ls acc -> ls :: acc) chains [] in
  let entry_chain, rest =
    List.partition (fun ls -> List.mem f.f_entry ls) all
  in
  let rest = List.sort (fun a b -> compare (weight_of_chain b) (weight_of_chain a)) rest in
  List.concat (entry_chain @ rest)

let order (f : func) : label list =
  let o = if Pgo.has_profile f then profiled_order f else rpo f in
  (* make sure every block appears exactly once, entry first *)
  let seen = Hashtbl.create 16 in
  let uniq =
    List.filter
      (fun l ->
        if Hashtbl.mem seen l then false
        else begin
          Hashtbl.replace seen l ();
          true
        end)
      o
  in
  let missing = List.filter (fun (l, _) -> not (Hashtbl.mem seen l)) f.f_blocks in
  let uniq = uniq @ List.map fst missing in
  match uniq with
  | e :: _ when e = f.f_entry -> uniq
  | _ -> f.f_entry :: List.filter (fun l -> l <> f.f_entry) uniq
