(* Mid-level IR: a control-flow graph of basic blocks over unlimited
   integer temporaries.  This is the representation on which the compiler
   runs instrumentation, profile annotation, inlining and block layout —
   the FDO pipeline whose layout imprecision after inlining BOLT later
   corrects. *)

type temp = int
type label = int

type binop = Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr

type cmpop = Ceq | Cne | Clt | Cle | Cgt | Cge

type insn =
  | Iconst of temp * int
  | Imov of temp * temp
  | Ibin of binop * temp * temp * temp (* dst, a, b *)
  | Icmp of cmpop * temp * temp * temp (* dst = (a op b) ? 1 : 0 *)
  | Iload_g of temp * string (* global scalar *)
  | Istore_g of string * temp
  | Iload_idx of temp * string * temp (* array element, dynamic index *)
  | Istore_idx of string * temp * temp (* array, index, value *)
  | Iload_ro of temp * string * int (* const table, constant index *)
  | Iaddr of temp * string (* address of function or global *)
  | Icall of temp option * string * temp list
  | Icall_ind of temp option * temp * temp list
  | Iin of temp
  | Iout of temp
  | Iprofcnt of int (* PGO instrumentation: bump counter [n] *)
  | Ilandingpad of temp (* first insn of a landing pad: temp := exception *)

type term =
  | Tret of temp option
  | Tjmp of label
  | Tbr of cmpop * temp * temp * label * label (* if a op b then l1 else l2 *)
  | Tswitch of temp * int * label array * label
      (* switch t: dense targets for values base..base+len-1, else default *)
  | Tthrow of temp

type block = {
  mutable insns : (insn * int) list; (* insn, source line *)
  mutable term : term;
  mutable term_line : int;
  mutable lp : label option; (* innermost landing pad covering this block *)
}

type func = {
  f_name : string;
  f_module : string;
  f_params : temp list;
  f_entry : label;
  mutable f_blocks : (label * block) list; (* in creation order *)
  mutable f_ntemps : int;
  mutable f_nlabels : int;
  f_line : int;
  f_file : string;
  f_inline : bool;
  (* edge profile: filled by profile application; empty otherwise *)
  f_edge_counts : (label * label, int) Hashtbl.t;
}

type global = Gscalar of int | Garray of int | Gconst of int array

type program = {
  p_funcs : func list;
  p_globals : (string * global) list;
  (* functions defined in each module; used for direct-vs-PLT call decisions *)
  p_module_of : (string, string) Hashtbl.t;
}

let new_temp f =
  let t = f.f_ntemps in
  f.f_ntemps <- t + 1;
  t

let new_label f =
  let l = f.f_nlabels in
  f.f_nlabels <- l + 1;
  l

let block f l = List.assoc l f.f_blocks

let block_opt f l = List.assoc_opt l f.f_blocks

let add_block f l b = f.f_blocks <- f.f_blocks @ [ (l, b) ]

let successors (t : term) =
  match t with
  | Tret _ | Tthrow _ -> []
  | Tjmp l -> [ l ]
  | Tbr (_, _, _, l1, l2) -> if l1 = l2 then [ l1 ] else [ l1; l2 ]
  | Tswitch (_, _, targets, d) ->
      let seen = Hashtbl.create 8 in
      let out = ref [] in
      Array.iter
        (fun l ->
          if not (Hashtbl.mem seen l) then begin
            Hashtbl.replace seen l ();
            out := l :: !out
          end)
        targets;
      if not (Hashtbl.mem seen d) then out := d :: !out;
      List.rev !out

(* Successors including exceptional edges to landing pads. *)
let successors_eh f l =
  let b = block f l in
  let normal = successors b.term in
  match b.lp with
  | Some lp when not (List.mem lp normal) -> normal @ [ lp ]
  | _ -> normal

let predecessors f =
  let preds = Hashtbl.create 16 in
  List.iter (fun (l, _) -> Hashtbl.replace preds l []) f.f_blocks;
  List.iter
    (fun (l, _) ->
      List.iter
        (fun s -> Hashtbl.replace preds s (l :: (try Hashtbl.find preds s with Not_found -> [])))
        (successors_eh f l))
    f.f_blocks;
  preds

(* Reverse postorder over normal+exceptional edges, from the entry. *)
let rpo f =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec go l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.replace visited l ();
      List.iter go (successors_eh f l);
      order := l :: !order
    end
  in
  go f.f_entry;
  !order

let reachable f =
  let r = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace r l ()) (rpo f);
  r

let defs_of = function
  | Iconst (t, _)
  | Imov (t, _)
  | Ibin (_, t, _, _)
  | Icmp (_, t, _, _)
  | Iload_g (t, _)
  | Iload_idx (t, _, _)
  | Iload_ro (t, _, _)
  | Iaddr (t, _)
  | Iin t
  | Ilandingpad t ->
      [ t ]
  | Icall (Some t, _, _) | Icall_ind (Some t, _, _) -> [ t ]
  | Icall (None, _, _) | Icall_ind (None, _, _) -> []
  | Istore_g _ | Istore_idx _ | Iout _ | Iprofcnt _ -> []

let uses_of = function
  | Iconst _ | Iload_g _ | Iload_ro _ | Iaddr _ | Iin _ | Iprofcnt _ | Ilandingpad _ -> []
  | Imov (_, a) -> [ a ]
  | Ibin (_, _, a, b) | Icmp (_, _, a, b) -> [ a; b ]
  | Iload_idx (_, _, i) -> [ i ]
  | Istore_idx (_, i, v) -> [ i; v ]
  | Istore_g (_, t) | Iout t -> [ t ]
  | Icall (_, _, args) -> args
  | Icall_ind (_, c, args) -> c :: args

let term_uses = function
  | Tret (Some t) -> [ t ]
  | Tret None -> []
  | Tjmp _ -> []
  | Tbr (_, a, b, _, _) -> [ a; b ]
  | Tswitch (t, _, _, _) -> [ t ]
  | Tthrow t -> [ t ]

let has_call b =
  List.exists
    (fun (i, _) -> match i with Icall _ | Icall_ind _ -> true | _ -> false)
    b.insns

(* ---- printing, for tests and debugging ---- *)

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let cmpop_name = function
  | Ceq -> "eq"
  | Cne -> "ne"
  | Clt -> "lt"
  | Cle -> "le"
  | Cgt -> "gt"
  | Cge -> "ge"

let negate_cmp = function
  | Ceq -> Cne
  | Cne -> Ceq
  | Clt -> Cge
  | Cle -> Cgt
  | Cgt -> Cle
  | Cge -> Clt

let pp_insn ppf i =
  let t = Fmt.pf in
  match i with
  | Iconst (d, n) -> t ppf "t%d = %d" d n
  | Imov (d, a) -> t ppf "t%d = t%d" d a
  | Ibin (op, d, a, b) -> t ppf "t%d = %s t%d, t%d" d (binop_name op) a b
  | Icmp (op, d, a, b) -> t ppf "t%d = %s t%d, t%d" d (cmpop_name op) a b
  | Iload_g (d, g) -> t ppf "t%d = load %s" d g
  | Istore_g (g, a) -> t ppf "store %s, t%d" g a
  | Iload_idx (d, g, i) -> t ppf "t%d = load %s[t%d]" d g i
  | Istore_idx (g, i, v) -> t ppf "store %s[t%d], t%d" g i v
  | Iload_ro (d, g, i) -> t ppf "t%d = loadro %s[%d]" d g i
  | Iaddr (d, s) -> t ppf "t%d = &%s" d s
  | Icall (Some d, fn, args) ->
      t ppf "t%d = call %s(%a)" d fn Fmt.(list ~sep:comma (fun p a -> pf p "t%d" a)) args
  | Icall (None, fn, args) ->
      t ppf "call %s(%a)" fn Fmt.(list ~sep:comma (fun p a -> pf p "t%d" a)) args
  | Icall_ind (Some d, c, args) ->
      t ppf "t%d = call *t%d(%a)" d c Fmt.(list ~sep:comma (fun p a -> pf p "t%d" a)) args
  | Icall_ind (None, c, args) ->
      t ppf "call *t%d(%a)" c Fmt.(list ~sep:comma (fun p a -> pf p "t%d" a)) args
  | Iin d -> t ppf "t%d = in" d
  | Iout a -> t ppf "out t%d" a
  | Iprofcnt n -> t ppf "profcnt %d" n
  | Ilandingpad d -> t ppf "t%d = landingpad" d

let pp_term ppf = function
  | Tret (Some t) -> Fmt.pf ppf "ret t%d" t
  | Tret None -> Fmt.pf ppf "ret"
  | Tjmp l -> Fmt.pf ppf "jmp L%d" l
  | Tbr (op, a, b, l1, l2) ->
      Fmt.pf ppf "br %s t%d, t%d -> L%d, L%d" (cmpop_name op) a b l1 l2
  | Tswitch (t, base, targets, d) ->
      Fmt.pf ppf "switch t%d base=%d [%a] default L%d" t base
        Fmt.(array ~sep:sp (fun p l -> pf p "L%d" l))
        targets d
  | Tthrow t -> Fmt.pf ppf "throw t%d" t

let pp_func ppf f =
  Fmt.pf ppf "fn %s(%a) entry=L%d@." f.f_name
    Fmt.(list ~sep:comma (fun p t -> pf p "t%d" t))
    f.f_params f.f_entry;
  List.iter
    (fun (l, b) ->
      Fmt.pf ppf "L%d:%s@." l
        (match b.lp with Some lp -> Printf.sprintf " (lp L%d)" lp | None -> "");
      List.iter (fun (i, _) -> Fmt.pf ppf "  %a@." pp_insn i) b.insns;
      Fmt.pf ppf "  %a@." pp_term b.term)
    f.f_blocks
