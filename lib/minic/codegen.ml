(* IR to BISA code generation.

   Register discipline:
   - r5/r6 are per-instruction scratch;
   - in framed functions, the six most-used temps live in callee-saved
     registers r8..r13 (pushed in the prologue, which gives BOLT's
     frame-opts and shrink-wrapping passes something to improve) and the
     rest spill to fp-relative slots;
   - tiny leaf functions are emitted frameless, with temps in the unused
     argument registers — these are exactly the bodies BOLT's inline-small
     pass can later splice into callers.

   Switch statements lower to PIC or absolute jump tables; the PIC flavour
   leaves no relocations behind after linking, so the rewriter has to
   rediscover the table by pattern matching, as the paper describes. *)

open Bolt_isa
open Bolt_asm.Asm
module T = Bolt_obj.Types

type options = {
  opt_level : int;
  lto : bool;
  function_sections : bool;
  pic_jump_tables : bool;
  align_loops : bool;
  plt_calls : bool; (* extern calls go through the PLT (non-LTO builds) *)
  repz_ret : bool; (* emit the legacy-AMD 2-byte return *)
  emit_fde : bool;
}

let default_options =
  {
    opt_level = 2;
    lto = false;
    function_sections = true;
    pic_jump_tables = true;
    align_loops = true;
    plt_calls = true;
    repz_ret = true;
    emit_fde = true;
  }

type home = Hreg of Reg.t | Hslot of int (* slot index, 8 bytes each *)

let lbl fn l = Printf.sprintf ".L%s$%d" fn l
let epi_lbl fn = Printf.sprintf ".L%s$epi" fn

let cond_of_cmp = function
  | Ir.Ceq -> Cond.Eq
  | Ir.Cne -> Cond.Ne
  | Ir.Clt -> Cond.Lt
  | Ir.Cle -> Cond.Le
  | Ir.Cgt -> Cond.Gt
  | Ir.Cge -> Cond.Ge

let alu_of_bin = function
  | Ir.Add -> Insn.Add
  | Ir.Sub -> Insn.Sub
  | Ir.Mul -> Insn.Mul
  | Ir.Div -> Insn.Div
  | Ir.Mod -> Insn.Mod
  | Ir.And -> Insn.And
  | Ir.Or -> Insn.Or
  | Ir.Xor -> Insn.Xor
  | Ir.Shl -> Insn.Shl
  | Ir.Shr -> Insn.Shr

let gsym name = "G$" ^ name

(* ---- register allocation ---- *)

let use_counts (f : Ir.func) =
  let counts = Hashtbl.create 32 in
  let bump t = Hashtbl.replace counts t (1 + try Hashtbl.find counts t with Not_found -> 0) in
  List.iter bump f.Ir.f_params;
  List.iter
    (fun (_, b) ->
      List.iter
        (fun (i, _) ->
          List.iter bump (Ir.defs_of i);
          List.iter bump (Ir.uses_of i))
        b.Ir.insns;
      List.iter bump (Ir.term_uses b.Ir.term))
    f.Ir.f_blocks;
  counts

let callee_pool = [ Reg.r8; Reg.r9; Reg.r10; Reg.r11; Reg.r12; Reg.r13 ]

type frame = {
  homes : (Ir.temp, home) Hashtbl.t;
  saved : Reg.t list; (* callee-saved registers pushed in the prologue *)
  locals : int; (* bytes of slot area *)
  frameless : bool;
}

let is_leaf (f : Ir.func) =
  List.for_all
    (fun (_, b) ->
      b.Ir.lp = None
      && (not (Ir.has_call b))
      && not
           (List.exists
              (fun (i, _) -> match i with Ir.Ilandingpad _ -> true | _ -> false)
              b.Ir.insns))
    f.Ir.f_blocks

let all_temps (f : Ir.func) =
  let counts = use_counts f in
  Hashtbl.fold (fun t c acc -> (t, c) :: acc) counts []
  |> List.sort (fun (t1, c1) (t2, c2) ->
         if c1 <> c2 then compare c2 c1 else compare t1 t2)

let allocate ~opt_level (f : Ir.func) : frame =
  let temps = all_temps f in
  let nparams = List.length f.Ir.f_params in
  let homes = Hashtbl.create 32 in
  let frameless =
    opt_level >= 1 && is_leaf f
    &&
    (* params stay in r1..r4; everything else must fit in leftover arg regs + r7 *)
    let others = List.filter (fun (t, _) -> not (List.mem t f.Ir.f_params)) temps in
    List.length others <= 4 - nparams + 1
  in
  if frameless then begin
    List.iteri (fun i p -> Hashtbl.replace homes p (Hreg (Reg.of_int (i + 1)))) f.Ir.f_params;
    let pool =
      List.filteri (fun i _ -> i >= nparams) [ Reg.r1; Reg.r2; Reg.r3; Reg.r4 ] @ [ Reg.r7 ]
    in
    let others = List.filter (fun (t, _) -> not (List.mem t f.Ir.f_params)) temps in
    List.iteri (fun i (t, _) -> Hashtbl.replace homes t (Hreg (List.nth pool i))) others;
    { homes; saved = []; locals = 0; frameless = true }
  end
  else begin
    let in_regs = if opt_level >= 1 then List.filteri (fun i _ -> i < 6) temps else [] in
    let saved = List.mapi (fun i _ -> List.nth callee_pool i) in_regs in
    List.iteri
      (fun i (t, _) -> Hashtbl.replace homes t (Hreg (List.nth callee_pool i)))
      in_regs;
    let rest = List.filter (fun (t, _) -> not (Hashtbl.mem homes t)) temps in
    List.iteri (fun i (t, _) -> Hashtbl.replace homes t (Hslot i)) rest;
    { homes; saved; locals = 8 * List.length rest; frameless = false }
  end

(* ---- per-function emission ---- *)

type fstate = {
  opts : options;
  f : Ir.func;
  frame : frame;
  mutable items : aitem list; (* reversed *)
  mutable rodata : ditem list; (* reversed: jump tables *)
  mutable jt_count : int;
  module_of : (string, string) Hashtbl.t;
}

let push st it = st.items <- it :: st.items

let ins st ?lp i =
  match lp with
  | Some pad -> push st (A_insn_lp (i, pad))
  | None -> push st (A_insn i)

let home st t =
  match Hashtbl.find_opt st.frame.homes t with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "codegen: temp %d has no home in %s" t st.f.Ir.f_name)

(* fp-relative offset of slot k: slots sit just below fp. *)
let slot_disp k = -8 * (k + 1)

(* Load a temp into a specific register. *)
let load_temp st r t =
  match home st t with
  | Hreg hr -> if not (Reg.equal hr r) then ins st (Insn.Mov_rr (r, hr))
  | Hslot k -> ins st (Insn.Load (r, Reg.fp, slot_disp k))

(* Store a register into a temp's home. *)
let store_temp st t r =
  match home st t with
  | Hreg hr -> if not (Reg.equal hr r) then ins st (Insn.Mov_rr (hr, r))
  | Hslot k -> ins st (Insn.Store (Reg.fp, slot_disp k, r))

let scratch1 = Reg.r5
let scratch2 = Reg.r6

let direct_call_target st fn =
  if st.opts.lto || not st.opts.plt_calls then Insn.Sym (fn, 0)
  else
    let caller_module = st.f.Ir.f_module in
    match Hashtbl.find_opt st.module_of fn with
    | Some m when m = caller_module -> Insn.Sym (fn, 0)
    | Some _ -> Insn.Sym (fn ^ "$plt", 0)
    | None -> Insn.Sym (fn, 0)

let emit_args st args =
  List.iteri (fun i a -> load_temp st (Reg.of_int (i + 1)) a) args

let emit_insn st ~lp (i : Ir.insn) =
  match i with
  | Ir.Iconst (d, n) ->
      let w = if Codec.fits_i32 n then Insn.I32 else Insn.I64 in
      (match home st d with
      | Hreg r -> ins st (Insn.Mov_ri (r, Insn.Imm n, w))
      | Hslot _ ->
          ins st (Insn.Mov_ri (scratch1, Insn.Imm n, w));
          store_temp st d scratch1)
  | Ir.Imov (d, s) -> (
      match (home st d, home st s) with
      | Hreg rd, _ -> load_temp st rd s
      | _, Hreg rs -> store_temp st d rs
      | _ ->
          load_temp st scratch1 s;
          store_temp st d scratch1)
  | Ir.Ibin (op, d, a, b) ->
      load_temp st scratch1 a;
      load_temp st scratch2 b;
      ins st (Insn.Alu_rr (alu_of_bin op, scratch1, scratch2));
      store_temp st d scratch1
  | Ir.Icmp (op, d, a, b) ->
      load_temp st scratch1 a;
      load_temp st scratch2 b;
      ins st (Insn.Alu_rr (Insn.Cmp, scratch1, scratch2));
      ins st (Insn.Setcc (cond_of_cmp op, scratch1));
      store_temp st d scratch1
  | Ir.Iload_g (d, g) ->
      ins st (Insn.Load_abs (scratch1, Insn.Sym (gsym g, 0)));
      store_temp st d scratch1
  | Ir.Istore_g (g, s) ->
      load_temp st scratch1 s;
      ins st (Insn.Store_abs (Insn.Sym (gsym g, 0), scratch1))
  | Ir.Iload_idx (d, g, ix) ->
      load_temp st scratch1 ix;
      ins st (Insn.Alu_ri (Insn.Shl, scratch1, Insn.Imm 3));
      ins st (Insn.Lea (scratch2, Insn.Sym (gsym g, 0)));
      ins st (Insn.Alu_rr (Insn.Add, scratch1, scratch2));
      ins st (Insn.Load (scratch1, scratch1, 0));
      store_temp st d scratch1
  | Ir.Istore_idx (g, ix, v) ->
      load_temp st scratch1 ix;
      ins st (Insn.Alu_ri (Insn.Shl, scratch1, Insn.Imm 3));
      ins st (Insn.Lea (scratch2, Insn.Sym (gsym g, 0)));
      ins st (Insn.Alu_rr (Insn.Add, scratch1, scratch2));
      load_temp st scratch2 v;
      ins st (Insn.Store (scratch1, 0, scratch2))
  | Ir.Iload_ro (d, g, idx) ->
      (* a statically-known read-only cell: simplify-ro-loads material *)
      ins st (Insn.Load_abs (scratch1, Insn.Sym (gsym g, 8 * idx)));
      store_temp st d scratch1
  | Ir.Iaddr (d, s) ->
      let sym = if Hashtbl.mem st.module_of s then s else gsym s in
      ins st (Insn.Lea (scratch1, Insn.Sym (sym, 0)));
      store_temp st d scratch1
  | Ir.Icall (dst, fn, args) ->
      emit_args st args;
      ins st ?lp (Insn.Call (direct_call_target st fn));
      (match dst with Some d -> store_temp st d Reg.r0 | None -> ())
  | Ir.Icall_ind (dst, c, args) ->
      emit_args st args;
      load_temp st scratch1 c;
      ins st ?lp (Insn.Call_ind scratch1);
      (match dst with Some d -> store_temp st d Reg.r0 | None -> ())
  | Ir.Iin d ->
      ins st (Insn.In_ scratch1);
      store_temp st d scratch1
  | Ir.Iout s ->
      load_temp st scratch1 s;
      ins st (Insn.Out scratch1)
  | Ir.Iprofcnt k ->
      let sym = Insn.Sym (Pgo.counters_symbol, 8 * k) in
      ins st (Insn.Load_abs (scratch1, sym));
      ins st (Insn.Alu_ri (Insn.Add, scratch1, Insn.Imm 1));
      ins st (Insn.Store_abs (sym, scratch1))
  | Ir.Ilandingpad d -> store_temp st d Reg.r0

let emit_jump_table st targets =
  let fn = st.f.Ir.f_name in
  let jt = Printf.sprintf "JT$%s$%d" fn st.jt_count in
  st.jt_count <- st.jt_count + 1;
  st.rodata <- D_align 8 :: st.rodata;
  st.rodata <- D_label (jt, false) :: st.rodata;
  Array.iter
    (fun l ->
      let target = lbl fn l in
      if st.opts.pic_jump_tables then
        st.rodata <- D_quad_pic (target, 0, jt) :: st.rodata
      else st.rodata <- D_quad (Insn.Sym (target, 0)) :: st.rodata)
    targets;
  jt

let emit_term st ~lp ~next (t : Ir.term) =
  let fn = st.f.Ir.f_name in
  let goto l = if Some l <> next then ins st (Insn.Jmp (Insn.Sym (lbl fn l, 0), Insn.W8)) in
  match t with
  | Ir.Tjmp l -> goto l
  | Ir.Tbr (op, a, b, l1, l2) ->
      load_temp st scratch1 a;
      load_temp st scratch2 b;
      ins st (Insn.Alu_rr (Insn.Cmp, scratch1, scratch2));
      let c = cond_of_cmp op in
      if Some l2 = next then
        ins st (Insn.Jcc (c, Insn.Sym (lbl fn l1, 0), Insn.W8))
      else if Some l1 = next then
        ins st (Insn.Jcc (Cond.invert c, Insn.Sym (lbl fn l2, 0), Insn.W8))
      else begin
        ins st (Insn.Jcc (c, Insn.Sym (lbl fn l1, 0), Insn.W8));
        ins st (Insn.Jmp (Insn.Sym (lbl fn l2, 0), Insn.W8))
      end
  | Ir.Tswitch (tv, base, targets, default) ->
      let jt = emit_jump_table st targets in
      load_temp st scratch1 tv;
      let dflt = Insn.Sym (lbl fn default, 0) in
      ins st (Insn.Alu_ri (Insn.Cmp, scratch1, Insn.Imm base));
      ins st (Insn.Jcc (Cond.Lt, dflt, Insn.W8));
      ins st (Insn.Alu_ri (Insn.Cmp, scratch1, Insn.Imm (base + Array.length targets - 1)));
      ins st (Insn.Jcc (Cond.Gt, dflt, Insn.W8));
      if base <> 0 then ins st (Insn.Alu_ri (Insn.Sub, scratch1, Insn.Imm base));
      ins st (Insn.Alu_ri (Insn.Shl, scratch1, Insn.Imm 3));
      if st.opts.pic_jump_tables then begin
        ins st (Insn.Lea_rel (scratch2, Insn.Sym (jt, 0)));
        ins st (Insn.Alu_rr (Insn.Add, scratch1, scratch2));
        ins st (Insn.Load (scratch1, scratch1, 0));
        ins st (Insn.Alu_rr (Insn.Add, scratch1, scratch2))
      end
      else begin
        ins st (Insn.Lea (scratch2, Insn.Sym (jt, 0)));
        ins st (Insn.Alu_rr (Insn.Add, scratch1, scratch2));
        ins st (Insn.Load (scratch1, scratch1, 0))
      end;
      ins st (Insn.Jmp_ind scratch1)
  | Ir.Tret res ->
      (match res with
      | Some t -> load_temp st Reg.r0 t
      | None -> ins st (Insn.Mov_ri (Reg.r0, Insn.Imm 0, Insn.I32)));
      if st.frame.frameless then
        ins st (if st.opts.repz_ret then Insn.Repz_ret else Insn.Ret)
      else if next <> None then
        (* the shared epilogue sits right after the last block *)
        ins st (Insn.Jmp (Insn.Sym (epi_lbl fn, 0), Insn.W8))
  | Ir.Tthrow t ->
      load_temp st Reg.r0 t;
      ins st ?lp Insn.Throw

(* Back-edge targets in the layout: candidates for loop alignment. *)
let loop_headers layout =
  let index = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.replace index l i) layout;
  fun (f : Ir.func) ->
    let hdrs = Hashtbl.create 8 in
    List.iter
      (fun (l, b) ->
        List.iter
          (fun s ->
            match (Hashtbl.find_opt index l, Hashtbl.find_opt index s) with
            | Some il, Some is when is <= il -> Hashtbl.replace hdrs s ()
            | _ -> ())
          (Ir.successors b.Ir.term))
      f.Ir.f_blocks;
    hdrs

let gen_func ~opts ~module_of (f : Ir.func) : afunc * ditem list =
  let frame = allocate ~opt_level:opts.opt_level f in
  let st = { opts; f; frame; items = []; rodata = []; jt_count = 0; module_of } in
  let fn = f.Ir.f_name in
  (* prologue *)
  if not frame.frameless then begin
    push st (A_loc (f.Ir.f_file, f.Ir.f_line));
    ins st (Insn.Push Reg.fp);
    ins st (Insn.Mov_rr (Reg.fp, Reg.sp));
    push st (A_cfi T.Cfi_establish);
    if frame.locals > 0 then begin
      ins st (Insn.Alu_ri (Insn.Sub, Reg.sp, Insn.Imm frame.locals));
      push st (A_cfi (T.Cfi_def_locals frame.locals))
    end;
    List.iteri
      (fun k r ->
        ins st (Insn.Push r);
        push st (A_cfi (T.Cfi_save (r, frame.locals + (8 * (k + 1))))))
      frame.saved;
    List.iteri (fun i p -> store_temp st p (Reg.of_int (i + 1))) f.Ir.f_params
  end
  else push st (A_loc (f.Ir.f_file, f.Ir.f_line));
  (* body *)
  let layout = Blocklayout.order ~opt_level:opts.opt_level f in
  let hdrs = loop_headers layout f in
  let rec emit_blocks ?prev = function
    | [] -> ()
    | l :: rest ->
        let b = Ir.block f l in
        (* align loop headers, but only when the previous block does not
           fall through into this one: executed alignment NOPs would cost
           more than the alignment saves *)
        let falls_through =
          match prev with
          | Some p -> List.mem l (Ir.successors (Ir.block f p).Ir.term)
          | None -> false
        in
        if
          opts.align_loops && opts.opt_level >= 2 && Hashtbl.mem hdrs l
          && l <> f.Ir.f_entry && not falls_through
        then push st (A_align 16);
        push st (A_label (lbl fn l));
        let lp = Option.map (fun h -> lbl fn h) b.Ir.lp in
        let last_line = ref (-1) in
        List.iter
          (fun (i, line) ->
            if line <> !last_line then begin
              push st (A_loc (f.Ir.f_file, line));
              last_line := line
            end;
            emit_insn st ~lp i)
          b.Ir.insns;
        if b.Ir.term_line <> !last_line then
          push st (A_loc (f.Ir.f_file, b.Ir.term_line));
        let next = match rest with l' :: _ -> Some l' | [] -> None in
        emit_term st ~lp ~next b.Ir.term;
        emit_blocks ~prev:l rest
  in
  emit_blocks layout;
  (* epilogue *)
  if not frame.frameless then begin
    push st (A_label (epi_lbl fn));
    List.iteri
      (fun k r ->
        ignore k;
        ins st (Insn.Pop r);
        push st (A_cfi (T.Cfi_restore r)))
      (List.rev frame.saved);
    ins st (Insn.Mov_rr (Reg.sp, Reg.fp));
    ins st (Insn.Pop Reg.fp);
    push st (A_cfi T.Cfi_teardown);
    ins st (if opts.repz_ret then Insn.Repz_ret else Insn.Ret)
  end;
  ( {
      af_name = fn;
      af_global = true;
      af_align = Bolt_obj.Layout.func_align;
      af_emit_fde = opts.emit_fde;
      af_body = List.rev st.items;
    },
    List.rev st.rodata )

(* ---- whole program ---- *)

(* Generate one assembly unit per source module (or a single unit under
   LTO).  [extra_bss] lets the driver add the PGO counter array. *)
let gen_program ~opts ?(extra_bss = []) (p : Ir.program) : (string * unit_) list =
  let module_of = p.Ir.p_module_of in
  let groups : (string, Ir.func list) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun f ->
      let m = if opts.lto then "lto" else f.Ir.f_module in
      if not (Hashtbl.mem groups m) then order := m :: !order;
      Hashtbl.replace groups m (f :: (try Hashtbl.find groups m with Not_found -> [])))
    p.Ir.p_funcs;
  let order = List.rev !order in
  let first = match order with m :: _ -> m | [] -> "main" in
  List.map
    (fun m ->
      let funcs = List.rev (Hashtbl.find groups m) in
      let outs = List.map (gen_func ~opts ~module_of) funcs in
      let afuncs = List.map fst outs in
      let jt_rodata = List.concat_map snd outs in
      (* globals live with the first unit *)
      let rodata, data, bss =
        if m = first then
          List.fold_left
            (fun (ro, da, bs) (name, g) ->
              match g with
              | Ir.Gscalar v ->
                  (ro, da @ [ D_label (gsym name, true); D_quad (Insn.Imm v) ], bs)
              | Ir.Garray n -> (ro, da, bs @ [ (gsym name, 8 * n, true) ])
              | Ir.Gconst arr ->
                  ( ro
                    @ [ D_align 8; D_label (gsym name, true) ]
                    @ List.map (fun v -> D_quad (Insn.Imm v)) (Array.to_list arr),
                    da,
                    bs ))
            ([], [], extra_bss) p.Ir.p_globals
        else ([], [], [])
      in
      ( m,
        {
          u_funcs = afuncs;
          u_rodata = rodata @ jt_rodata;
          u_data = data;
          u_bss = bss;
          u_function_sections = opts.function_sections;
        } ))
    order
