(* Compiler-side basic-block layout.

   Without a profile the compiler uses reverse postorder, which keeps
   loop bodies together and puts the static fall-through path first.
   With a PGO profile it hands the weighted CFG to the shared layout
   engine in lib/layout — the same ExtTSP machinery the post-link
   optimizer uses (Pettis-Hansen chaining below -O2, full ext-tsp at
   -O2 and above).  Either way this is the layout BOLT later inspects
   and — thanks to its more accurate binary-level profile — improves. *)

open Ir
module Cfg = Bolt_layout.Cfg
module Engine = Bolt_layout.Engine

(* Instruction byte counts are unknown this early, so size each block by
   a fixed per-instruction proxy (+1 for the terminator): good enough
   for the objective's jump-distance model to prefer keeping hot paths
   adjacent. *)
let block_size_proxy (b : block) = 4 * (List.length b.insns + 1)

let profiled_order ~opt_level (f : func) : label list =
  let labels = Array.of_list (List.map fst f.f_blocks) in
  let idx = Hashtbl.create (Array.length labels * 2 + 1) in
  Array.iteri (fun i l -> Hashtbl.replace idx l i) labels;
  let counts = Pgo.block_counts f in
  let nodes =
    Array.map
      (fun l ->
        {
          Cfg.n_label = string_of_int l;
          n_size = block_size_proxy (block f l);
          n_count = (try Hashtbl.find counts l with Not_found -> 0);
        })
      labels
  in
  let edges =
    Hashtbl.fold
      (fun (s, d) c acc ->
        match (Hashtbl.find_opt idx s, Hashtbl.find_opt idx d) with
        | Some si, Some di -> (si, di, c) :: acc
        | _ -> acc)
      f.f_edge_counts []
  in
  let entry = Option.value ~default:(-1) (Hashtbl.find_opt idx f.f_entry) in
  let cfg = Cfg.make ~nodes ~entry edges in
  let algo = if opt_level >= 2 then Engine.Ext_tsp else Engine.Cache in
  Array.to_list (Array.map (fun i -> labels.(i)) (Engine.order algo cfg))

let order ?(opt_level = 2) (f : func) : label list =
  let o =
    if Pgo.has_profile f then profiled_order ~opt_level f else rpo f
  in
  (* make sure every block appears exactly once, entry first *)
  let seen = Hashtbl.create 16 in
  let uniq =
    List.filter
      (fun l ->
        if Hashtbl.mem seen l then false
        else begin
          Hashtbl.replace seen l ();
          true
        end)
      o
  in
  let missing = List.filter (fun (l, _) -> not (Hashtbl.mem seen l)) f.f_blocks in
  let uniq = uniq @ List.map fst missing in
  match uniq with
  | e :: _ when e = f.f_entry -> uniq
  | _ -> f.f_entry :: List.filter (fun l -> l <> f.f_entry) uniq
