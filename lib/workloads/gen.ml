(* Synthetic workload generator.

   Emits MiniC programs with the characteristics the paper attributes to
   data-center binaries, which are exactly the properties BOLT exploits:

   - thousands of functions spread over many modules, with a heavily
     skewed (zipf-ish) dynamic call profile, so the hot working set is
     scattered across a large text segment (I-cache / I-TLB pressure);
   - biased branches whose hot path CONTRADICTS the static layout (the
     hot code sits in the `else`), so profile-driven block reordering has
     something to fix;
   - switches with a dominant case (jump tables, skewed);
   - indirect calls with a dominant target (ICP material);
   - rarely-executed error paths with exceptions (cold code + EH);
   - families of identical functions, plain ones (linker ICF folds them)
     and switch-bearing ones (only BOLT's ICF folds them);
   - tiny leaf helpers (inline-small material);
   - a few hand-written assembly dispatchers with indirect tail calls and
     no frame information — the functions BOLT must conservatively leave
     non-simple (§3.3, §6.4).

   Everything is derived from an explicit seed. *)

type params = {
  seed : int;
  modules : int;
  funcs : int; (* generated compute functions *)
  layers : int;
  hot_per_mille : int; (* hot fraction of each layer, in 1/1000 *)
  avg_children : int;
  work_ops : int; (* arithmetic ops per function body *)
  switch_per_mille : int;
  indirect_per_mille : int;
  eh_per_mille : int;
  loop_per_mille : int;
  mem_per_mille : int; (* array-traffic statements: D-side dilution *)
  array_size : int; (* per-module scratch array length *)
  dup_plain_families : int;
  dup_plain_copies : int;
  dup_switch_families : int;
  dup_switch_copies : int;
  leaf_helpers : int;
  asm_dispatchers : int;
  top_funcs : int; (* how many top-layer functions main dispatches over *)
  iterations : int; (* main loop iterations (server mode) *)
  input_driven : bool; (* compiler mode: main consumes the input tape *)
  dispatch_thresholds : int;
      (* input-driven only: per-request threshold branches on the token's
         two low residues (t = tok%100, t2 = tok/100%100).  Their hot
         direction is decided by where the traffic's residues sit, so
         request mixes concentrated in different residue windows give the
         same branches opposite biases — the per-host skew the fleet
         simulation needs.  0 disables. *)
  (* Revision drift: regenerate the same service "one commit later".
     All three draw from side RNG streams, so the shared plan/body
     streams are untouched — two revisions differ exactly where the
     drift says they differ, nowhere else. *)
  body_pad : int;
      (* extra straight-line ops prepended to every compute-function
         body: offsets shift, CFG shape survives (light-edit drift) *)
  rename_every : int;
      (* every Nth compute function gets a revision-local name
         (fN -> frN), call sites included; 0 disables (rename drift) *)
  extra_funcs : int;
      (* cold helpers only this revision has; profiles from it carry
         records no other revision can place (deleted-function drift) *)
}

let default =
  {
    seed = 1;
    modules = 24;
    funcs = 1200;
    layers = 6;
    hot_per_mille = 250;
    avg_children = 3;
    work_ops = 6;
    switch_per_mille = 250;
    indirect_per_mille = 150;
    eh_per_mille = 120;
    loop_per_mille = 300;
    mem_per_mille = 250;
    array_size = 512;
    dup_plain_families = 6;
    dup_plain_copies = 4;
    dup_switch_families = 6;
    dup_switch_copies = 4;
    leaf_helpers = 24;
    asm_dispatchers = 3;
    top_funcs = 12;
    iterations = 30_000;
    input_driven = false;
    dispatch_thresholds = 0;
    body_pad = 0;
    rename_every = 0;
    extra_funcs = 0;
  }

type t = {
  sources : (string * string) list;
  externals : (string * int) list; (* hand-written assembly functions *)
  extra_objs : Bolt_obj.Objfile.t list;
  input : int array;
  params : params;
}

(* ---- function plan ---- *)

type fplan = {
  fp_name : string;
  fp_layer : int;
  fp_hot : bool;
  fp_module : int;
  fp_children : string list; (* direct-call children *)
  fp_ind_children : (string * string) option; (* dominant, rare *)
  fp_body_seed : int;
}

let gen (p : params) : t =
  let rng = Rng.create p.seed in
  let fname i =
    if p.rename_every > 0 && i mod p.rename_every = 0 then Printf.sprintf "fr%d" i
    else Printf.sprintf "f%d" i
  in
  let layer_of i = i * p.layers / p.funcs in
  let hot = Array.init p.funcs (fun _ -> Rng.int rng 1000 < p.hot_per_mille) in
  (* layer 0 functions are leaves; make the top layer all hot so main has
     hot entry points *)
  let nlayer l = List.length (List.filter (fun i -> layer_of i = l) (List.init p.funcs Fun.id)) in
  ignore nlayer;
  Array.iteri (fun i _ -> if layer_of i = p.layers - 1 && i land 3 <> 0 then hot.(i) <- true) hot;
  let leaf_name i = Printf.sprintf "leaf%d" i in
  let candidates_below layer want_hot =
    let out = ref [] in
    for i = 0 to p.funcs - 1 do
      if layer_of i < layer && hot.(i) = want_hot then out := i :: !out
    done;
    !out
  in
  let plans =
    Array.init p.funcs (fun i ->
        let layer = layer_of i in
        let nkids = if layer = 0 then 0 else 1 + Rng.int rng (2 * p.avg_children) in
        let pool_hot = candidates_below layer true in
        let pool_cold = candidates_below layer false in
        let pick_child () =
          let want_hot =
            if hot.(i) then Rng.bool rng 9 10 else Rng.bool rng 1 2
          in
          let pool = if want_hot && pool_hot <> [] then pool_hot else pool_cold in
          match pool with
          | [] -> if Rng.bool rng 1 2 then Some (leaf_name (Rng.int rng p.leaf_helpers)) else None
          | _ -> Some (fname (Rng.pick_list rng pool))
        in
        let children =
          List.init nkids (fun _ -> pick_child ()) |> List.filter_map Fun.id
        in
        let children =
          if layer > 0 && Rng.bool rng 1 3 then
            leaf_name (Rng.int rng p.leaf_helpers) :: children
          else children
        in
        let ind =
          if layer > 0 && Rng.int rng 1000 < p.indirect_per_mille then
            match (pool_hot, pool_cold) with
            | h :: _, c :: _ -> Some (fname h, fname c)
            | h :: h2 :: _, [] -> Some (fname h, fname h2)
            | _ -> None
          else None
        in
        {
          fp_name = fname i;
          fp_layer = layer;
          fp_hot = hot.(i);
          fp_module = i mod p.modules;
          fp_children = children;
          fp_ind_children = ind;
          fp_body_seed = Rng.next rng;
        })
  in

  (* ---- body synthesis ---- *)
  let arr_name m = Printf.sprintf "gbuf%d" m in
  let body_of (fp : fplan) =
    let r = Rng.create fp.fp_body_seed in
    let b = Buffer.create 512 in
    let line fmt = Fmt.kstr (fun s -> Buffer.add_string b ("  " ^ s ^ "\n")) fmt in
    Buffer.add_string b (Printf.sprintf "fn %s(x, d) {\n" fp.fp_name);
    line "var a = x + %d;" (Rng.int r 1000);
    (* revision-drift pad: shifts every later offset in the function
       without touching the body's own RNG stream or its CFG shape *)
    if p.body_pad > 0 then begin
      let pr = Rng.create (fp.fp_body_seed lxor 0x9e3779) in
      for _ = 1 to p.body_pad do
        line "a = a + %d;" (1 + Rng.int pr 100)
      done
    end;
    (* arithmetic mix *)
    for _ = 1 to 1 + Rng.int r p.work_ops do
      match Rng.int r 6 with
      | 0 -> line "a = a * %d + %d;" (1 + Rng.int r 7) (Rng.int r 97)
      | 1 -> line "a = a ^ (a >> %d);" (1 + Rng.int r 5)
      | 2 -> line "a = (a & 65535) + (a >> 4);"
      | 3 -> line "a = a + (x << %d);" (Rng.int r 3)
      | 4 -> line "a = a %% %d + d;" (17 + Rng.int r 80)
      | _ -> line "a = a | %d;" (1 + Rng.int r 15)
    done;
    (* array traffic: data-side work like a real service mixes in.
       indices are masked, not mod'ed: [a] may be negative and a negative
       remainder would index outside the array *)
    if Rng.int r 1000 < p.mem_per_mille then begin
      let arr = arr_name fp.fp_module in
      let mask = p.array_size - 1 in
      line "%s[a & %d] = a + %d;" arr mask (Rng.int r 100);
      line "a = a + %s[(a * %d) & %d];" arr (3 + Rng.int r 11) mask;
      if Rng.bool r 1 2 then
        line "a = a + %s[(x + %d) & %d];" arr (Rng.int r 50) mask
    end;
    (* bounded loop *)
    if Rng.int r 1000 < p.loop_per_mille then begin
      line "var j = 0;";
      line "while (j < (x %% %d) + 1) {" (2 + Rng.int r 4);
      line "  a = a + j * %d;" (1 + Rng.int r 9);
      line "  j = j + 1;";
      line "}"
    end;
    (* skewed branch contradicting static layout: hot path in else *)
    let cold_call =
      match List.filter (fun c -> c.[0] = 'f') fp.fp_children with
      | c :: _ when not fp.fp_hot || Rng.bool r 1 2 -> Printf.sprintf "a = a + %s(a, d + 1);" c
      | _ -> "a = a * 3 + 1;"
    in
    if Rng.bool r 6 10 then begin
      (* our compiler's static layout makes the ELSE branch the
         fall-through, so a branch whose hot path sits in the THEN arm
         contradicts the static layout (profile-driven reordering fixes
         it); hot-in-else already matches it *)
      if Rng.bool r 7 10 then begin
        (* contradicts the static layout *)
        line "if (a %% 64 >= %d) {" (1 + Rng.int r 5);
        line "  a = a + %d;" (1 + Rng.int r 31);
        line "} else {";
        line "  %s" cold_call;
        line "  a = a ^ 255;";
        line "}"
      end
      else begin
        (* static layout already right *)
        line "if (a %% 64 < %d) {" (1 + Rng.int r 5);
        line "  %s" cold_call;
        line "} else {";
        line "  a = a + %d;" (1 + Rng.int r 31);
        line "}"
      end
    end;
    (* switch with a dominant case *)
    if Rng.int r 1000 < p.switch_per_mille then begin
      let ncases = 5 + Rng.int r 6 in
      let dominant = Rng.int r ncases in
      line "var s = a %% %d;" ncases;
      line "if (a %% 16 < 13) { s = %d; }" dominant;
      line "switch (s) {";
      for c = 0 to ncases - 1 do
        match Rng.int r 3 with
        | 0 -> line "  case %d: { a = a + %d; }" c (Rng.int r 100)
        | 1 -> line "  case %d: { a = a ^ %d; }" c (Rng.int r 255)
        | _ -> line "  case %d: { a = a * 2 + %d; }" c (Rng.int r 9)
      done;
      line "  default: { a = a - 1; }";
      line "}"
    end;
    (* direct calls to children *)
    List.iteri
      (fun k c ->
        if c.[0] = 'f' then begin
          if Rng.bool r 3 4 then line "a = a + %s(a + %d, d);" c k
          else begin
            (* occasionally guarded: contributes cold call sites *)
            line "if (a %% 128 == %d) { a = a + %s(a, d); }" (Rng.int r 128) c
          end
        end
        else line "a = a + %s(a);" c)
      fp.fp_children;
    (* indirect call with dominant target *)
    (match fp.fp_ind_children with
    | Some (dom, rare) ->
        line "var fp = &%s;" dom;
        line "if (a %% 32 == %d) { fp = &%s; }" (Rng.int r 32) rare;
        line "a = a + *fp(a, d);"
    | None -> ());
    (* rare exception path *)
    if Rng.int r 1000 < p.eh_per_mille then begin
      line "try {";
      line "  if (a %% 8192 == %d) { throw a; }" (Rng.int r 8192);
      line "  a = a + 7;";
      line "} catch (e) {";
      line "  a = a - (e %% 97);";
      line "}"
    end;
    line "return a;";
    Buffer.add_string b "}\n";
    Buffer.contents b
  in

  (* leaf helpers: tiny, frameless, inline-small material *)
  let leaf_bodies =
    List.init p.leaf_helpers (fun i ->
        let r = Rng.create (p.seed + (31 * i)) in
        Printf.sprintf "fn %s(x) { return x * %d + %d; }\n" (leaf_name i)
          (1 + Rng.int r 9) (Rng.int r 31))
  in

  (* revision-only cold helpers (deleted-function drift): the other
     revision has no counterpart, so a stale matcher must drop their
     records cleanly *)
  let extra_name i = Printf.sprintf "fx%d" i in
  let extra_bodies =
    List.init p.extra_funcs (fun i ->
        let r = Rng.create (p.seed + 7000 + (17 * i)) in
        Printf.sprintf
          "fn %s(x, d) {\n\
          \  var a = x * %d + d;\n\
          \  if (a %% 16 < %d) { a = a + %d; } else { a = a - %d; }\n\
          \  return a;\n\
           }\n"
          (extra_name i) (3 + Rng.int r 9) (2 + Rng.int r 8) (Rng.int r 50)
          (1 + Rng.int r 50))
  in

  (* duplicate families *)
  let dup_plain fam =
    let r = Rng.create (p.seed + 1000 + fam) in
    let c1 = 3 + Rng.int r 11 and c2 = Rng.int r 50 and c3 = 1 + Rng.int r 6 in
    fun copy ->
      Printf.sprintf
        "fn dupp%d_%d(x) {\n  var a = x * %d + %d;\n  a = a ^ (a >> %d);\n  if (a %% 64 < 3) { a = a * 5; } else { a = a + 9; }\n  return a;\n}\n"
        fam copy c1 c2 c3
  in
  let dup_switch fam =
    let r = Rng.create (p.seed + 2000 + fam) in
    let k = 2 + Rng.int r 5 in
    fun copy ->
      Printf.sprintf
        "fn dups%d_%d(x) {\n\
        \  var s = x %% 6;\n\
        \  var a = x;\n\
        \  switch (s) {\n\
        \    case 0: { a = a + %d; }\n\
        \    case 1: { a = a * 2; }\n\
        \    case 2: { a = a ^ 85; }\n\
        \    case 3: { a = a - 7; }\n\
        \    case 4: { a = a + x; }\n\
        \    default: { a = a * 3; }\n\
        \  }\n\
        \  return a + %d;\n\
        }\n"
        fam copy k (k * 3)
  in

  (* ---- assemble modules ---- *)
  let dup_names =
    List.concat
      (List.init p.dup_plain_families (fun fam ->
           List.init p.dup_plain_copies (fun c -> Printf.sprintf "dupp%d_%d" fam c)))
    @ List.concat
        (List.init p.dup_switch_families (fun fam ->
             List.init p.dup_switch_copies (fun c -> Printf.sprintf "dups%d_%d" fam c)))
  in
  let asm_names = List.init p.asm_dispatchers (fun i -> Printf.sprintf "asm_disp%d" i) in
  let module_funcs = Array.make p.modules [] in
  Array.iter
    (fun fp -> module_funcs.(fp.fp_module) <- fp :: module_funcs.(fp.fp_module))
    plans;
  (* leaf helpers + dups all live in module 0; mains in module 0 *)
  let module_of_fn = Hashtbl.create 256 in
  Array.iter (fun fp -> Hashtbl.replace module_of_fn fp.fp_name fp.fp_module) plans;
  List.iteri (fun i _ -> Hashtbl.replace module_of_fn (leaf_name i) 0) leaf_bodies;
  List.iter (fun n -> Hashtbl.replace module_of_fn n 0) dup_names;
  List.iteri (fun i _ -> Hashtbl.replace module_of_fn (extra_name i) 0) extra_bodies;

  (* main *)
  let top =
    Array.to_list plans
    |> List.filter (fun fp -> fp.fp_layer = p.layers - 1 && fp.fp_hot)
    |> List.filteri (fun i _ -> i < p.top_funcs)
  in
  let top = if top = [] then [ plans.(p.funcs - 1) ] else top in
  let cold_top =
    Array.to_list plans
    |> List.filter (fun fp -> fp.fp_layer >= p.layers - 2 && not fp.fp_hot)
    |> List.filteri (fun i _ -> i < 6)
  in
  let main_buf = Buffer.create 1024 in
  let ml fmt = Fmt.kstr (fun s -> Buffer.add_string main_buf (s ^ "\n")) fmt in
  ml "global checksum = 0;";
  ml "global lcg = %d;" (1 + Rng.int rng 1_000_000);
  ml "fn main() {";
  if p.input_driven then begin
    ml "  var tok = in();";
    ml "  while (tok != 0) {";
    ml "    var t = tok %% 100;"
  end
  else begin
    ml "  var i = 0;";
    ml "  while (i < %d) {" p.iterations;
    ml "    lcg = (lcg * 1103515245 + 12345) & 1073741823;";
    ml "    var t = lcg %% 100;"
  end;
  if p.input_driven && p.dispatch_thresholds > 0 then begin
    ml "    var t2 = (tok / 100) %% 100;";
    for j = 1 to p.dispatch_thresholds do
      let thr = j * 97 / (p.dispatch_thresholds + 1) in
      ml "    if (t < %d) { checksum = checksum + %d; }" thr j;
      ml "    if (t2 < %d) { checksum = checksum + %d; }" thr (j * 3)
    done
  end;
  (* zipf-ish dispatch over the top functions *)
  let n_top = List.length top in
  let cum = ref 0 in
  List.iteri
    (fun k fp ->
      let share =
        if k = 0 then 40
        else max 1 (40 / (k + 1) / 2 * 2 / 2)
      in
      let share = if k = n_top - 1 then max 1 (97 - !cum) else min share (97 - !cum) in
      if share > 0 then begin
        let lo = !cum in
        cum := !cum + share;
        if k = 0 then ml "    if (t < %d) { checksum = checksum + %s(t, 0); }" !cum fp.fp_name
        else ml "    else { if (t < %d) { checksum = checksum + %s(t + %d, 0); }" !cum fp.fp_name lo
      end)
    top;
  (* the rare cold tail *)
  (match cold_top with
  | [] -> ml "    else { checksum = checksum + 1; }"
  | c ->
      ml "    else {";
      List.iteri
        (fun k fp ->
          ml "      if (t == %d) { checksum = checksum + %s(t, 1); }" (97 + k) fp.fp_name)
        (List.filteri (fun i _ -> i < 3) c);
      ml "      checksum = checksum + 1;";
      ml "    }");
  (* close the else-if chain: each non-first top opened one '{' *)
  for _ = 2 to n_top do
    Buffer.add_string main_buf "    }\n"
  done;
  (* exercise the duplicate families and asm dispatchers lightly *)
  (match dup_names with
  | d1 :: d2 :: _ ->
      ml "    if (t == 3) { checksum = checksum + %s(t) + %s(t); }" d1 d2
  | _ -> ());
  List.iteri
    (fun k n -> ml "    if (t == %d) { checksum = checksum + %s(t, 0); }" (5 + k) n)
    asm_names;
  (* revision-only helpers get real (if cool) traffic, so a profile from
     this revision records them *)
  List.iteri
    (fun k _ ->
      ml "    if (t == %d) { checksum = checksum + %s(t, 1); }"
        (9 + (k mod 80)) (extra_name k))
    extra_bodies;
  if p.input_driven then ml "    tok = in();" else ml "    i = i + 1;";
  ml "  }";
  ml "  out checksum;";
  ml "  return 0;";
  ml "}";

  (* collect sources per module with extern decls *)
  let sources =
    List.init p.modules (fun m ->
        let buf = Buffer.create 4096 in
        Buffer.add_string buf (Printf.sprintf "array %s[%d];\n" (arr_name m) p.array_size);
        if m = 0 then Buffer.add_string buf (Buffer.contents main_buf);
        if m = 0 then begin
          List.iter (Buffer.add_string buf) leaf_bodies;
          List.iter (Buffer.add_string buf) extra_bodies;
          for fam = 0 to p.dup_plain_families - 1 do
            for c = 0 to p.dup_plain_copies - 1 do
              Buffer.add_string buf (dup_plain fam c)
            done
          done;
          for fam = 0 to p.dup_switch_families - 1 do
            for c = 0 to p.dup_switch_copies - 1 do
              Buffer.add_string buf (dup_switch fam c)
            done
          done
        end;
        let fps = List.rev module_funcs.(m) in
        (* extern decls for everything referenced outside this module *)
        let referenced = Hashtbl.create 64 in
        let note n = Hashtbl.replace referenced n () in
        List.iter
          (fun fp ->
            List.iter note fp.fp_children;
            match fp.fp_ind_children with
            | Some (a, b) ->
                note a;
                note b
            | None -> ())
          fps;
        if m = 0 then begin
          List.iter (fun fp -> note fp.fp_name) top;
          List.iter (fun fp -> note fp.fp_name) cold_top
        end;
        Hashtbl.iter
          (fun n () ->
            match Hashtbl.find_opt module_of_fn n with
            | Some m' when m' <> m ->
                let arity = if n.[0] = 'f' then 2 else 1 in
                Buffer.add_string buf (Printf.sprintf "extern fn %s(%s);\n" n
                  (if arity = 2 then "a, b" else "a"))
            | _ -> ())
          referenced;
        List.iter (fun fp -> Buffer.add_string buf (body_of fp)) fps;
        (Printf.sprintf "mod%d" m, Buffer.contents buf))
  in

  (* hand-written assembly dispatchers: indirect tail calls, no FDE *)
  let asm_unit =
    let open Bolt_asm.Asm in
    let open Bolt_isa in
    let funcs =
      List.mapi
        (fun i name ->
          let t1 = leaf_name (i mod p.leaf_helpers) in
          let t2 = leaf_name ((i + 1) mod p.leaf_helpers) in
          {
            af_name = name;
            af_global = true;
            af_align = 16;
            af_emit_fde = false;
            af_body =
              [
                A_insn (Insn.Mov_rr (Reg.r5, Reg.r1));
                A_insn (Insn.Alu_ri (Insn.And, Reg.r5, Insn.Imm 1));
                A_insn (Insn.Lea (Reg.r6, Insn.Sym (t1, 0)));
                A_insn (Insn.Alu_ri (Insn.Cmp, Reg.r5, Insn.Imm 0));
                A_insn (Insn.Jcc (Cond.Eq, Insn.Sym ("done", 0), Insn.W8));
                A_insn (Insn.Lea (Reg.r6, Insn.Sym (t2, 0)));
                A_label "done";
                (* indirect tail call: BOLT must mark this non-simple *)
                A_insn (Insn.Jmp_ind Reg.r6);
              ];
          })
        asm_names
    in
    assemble { empty_unit with u_funcs = funcs; u_function_sections = true }
  in
  {
    sources;
    externals = List.map (fun n -> (n, 2)) asm_names;
    extra_objs = (if p.asm_dispatchers > 0 then [ asm_unit ] else []);
    input = [||];
    params = p;
  }

(* ---- iocore mega-workload --------------------------------------------

   The data-plane bench needs inputs big enough that parser and writer
   allocation dominates: >= 100k functions, >= 1M profile lines.
   Compiling MiniC at that scale spends minutes inside the compiler, so
   the mega generator skips it entirely: every function body is encoded
   straight through the codec, laid out at its final address, and the
   container is stamped the same way the linker stamps a real link.  The
   loader cannot tell the result from a linked executable.

   Call sites are confined to low-indexed functions: fingerprint call
   resolution scans the (sorted) function table per call site, so a
   dense call graph over 100k functions would make stamping quadratic
   while adding nothing the I/O paths care about. *)

type mega = {
  mg_exe : Bolt_obj.Objfile.t;
  mg_belf : string; (* serialized BELF container bytes *)
  mg_fdata : string; (* synthetic profile text over the same functions *)
  mg_fdata_lines : int;
}

let mega_fname i = Printf.sprintf "mf_%06d" i

(* One function body: fully resolved insns (the intra-function branch
   displacement is computed from known encoded sizes) plus an optional
   call target to patch once addresses are assigned. *)
let mega_body rng ~idx =
  let open Bolt_isa in
  let module I = Insn in
  let ops = [| I.Add; I.Sub; I.Xor; I.Or; I.And |] in
  let work =
    List.init
      (2 + Rng.int rng 5)
      (fun _ -> I.Alu_ri (Rng.pick rng ops, Reg.r1, I.Imm (Rng.int rng 0x10000)))
  in
  (* biased forward branches over one instruction, like the MiniC bodies;
     several per function so fingerprints carry a realistic block count *)
  let branchy =
    List.concat
      (List.init
         (1 + Rng.int rng 3)
         (fun k ->
           let skipped = I.Alu_ri (I.Xor, Reg.r1, I.Imm (0x5a5a + k)) in
           [
             I.Alu_ri (I.Cmp, Reg.r1, I.Imm k);
             I.Jcc (Cond.Ne, I.Imm (I.size skipped), I.W8);
             skipped;
           ]))
  in
  let callee =
    if idx >= 256 && idx < 4096 && Rng.bool rng 1 4 then Some (Rng.int rng 256)
    else None
  in
  let call = match callee with Some _ -> [ I.Call (I.Imm 0) ] | None -> [] in
  let insns =
    [
      I.Push Reg.r5;
      I.Mov_ri (Reg.r1, I.Imm (Rng.int rng 0x7fff_ffff), I.I32);
      I.Load (Reg.r2, Reg.r5, 8 * Rng.int rng 16);
    ]
    @ work @ branchy @ call
    @ [
        I.Store (Reg.r5, 8 * Rng.int rng 16, Reg.r2);
        I.Alu_rr (I.Add, Reg.r1, Reg.r2);
        I.Pop Reg.r5;
        I.Ret;
      ]
  in
  (Array.of_list insns, callee)

let gen_mega ?(seed = 42) ~funcs ~fdata_lines () : mega =
  let open Bolt_obj in
  let open Bolt_obj.Types in
  let rng = Rng.create (seed lxor 0x10c04e) in
  let n = max 16 funcs in
  let bodies = Array.init n (fun i -> mega_body rng ~idx:i) in
  let sizes =
    Array.map
      (fun (insns, _) ->
        Array.fold_left (fun a i -> a + Bolt_isa.Insn.size i) 0 insns)
      bodies
  in
  let align16 a = (a + 15) land lnot 15 in
  let addrs = Array.make n 0 in
  let cur = ref Layout.text_base in
  for i = 0 to n - 1 do
    addrs.(i) <- !cur;
    cur := align16 (!cur + sizes.(i))
  done;
  let text_size = !cur - Layout.text_base in
  (* 1-byte nops in the alignment gaps keep the whole segment decodable *)
  let text = Bytes.make text_size '\x02' in
  for i = 0 to n - 1 do
    let insns, callee = bodies.(i) in
    let pos = ref (addrs.(i) - Layout.text_base) in
    Array.iter
      (fun insn ->
        let insn =
          match (insn, callee) with
          | Bolt_isa.Insn.Call _, Some t ->
              let end_addr = Layout.text_base + !pos + Bolt_isa.Insn.size insn in
              Bolt_isa.Insn.Call (Bolt_isa.Insn.Imm (addrs.(t) - end_addr))
          | _ -> insn
        in
        pos := !pos + Bolt_isa.Codec.encode_into text !pos insn)
      insns
  done;
  let blob bytes_len =
    let b = Bytes.create bytes_len in
    for k = 0 to (bytes_len / 8) - 1 do
      Bytes.set_int64_le b (8 * k) (Int64.of_int (Rng.next rng))
    done;
    b
  in
  let rodata = blob 4096 and data = blob 4096 in
  let sections =
    [
      {
        sec_name = ".text";
        sec_kind = Text;
        sec_addr = Layout.text_base;
        sec_data = text;
        sec_size = text_size;
      };
      {
        sec_name = ".rodata";
        sec_kind = Rodata;
        sec_addr = Layout.rodata_base;
        sec_data = rodata;
        sec_size = Bytes.length rodata;
      };
      {
        sec_name = ".data";
        sec_kind = Data;
        sec_addr = Layout.data_base;
        sec_data = data;
        sec_size = Bytes.length data;
      };
    ]
  in
  let fsyms =
    List.init n (fun i ->
        {
          sym_name = mega_fname i;
          sym_kind = Func;
          sym_bind = (if i land 7 = 0 then Global else Local);
          sym_section = ".text";
          sym_value = addrs.(i);
          sym_size = sizes.(i);
        })
  in
  let osyms =
    [
      {
        sym_name = "mega_table";
        sym_kind = Object;
        sym_bind = Global;
        sym_section = ".rodata";
        sym_value = Layout.rodata_base;
        sym_size = Bytes.length rodata;
      };
      {
        sym_name = "mega_state";
        sym_kind = Object;
        sym_bind = Global;
        sym_section = ".data";
        sym_value = Layout.data_base;
        sym_size = Bytes.length data;
      };
    ]
  in
  (* metadata density mirrors a real -update-debug-sections binary: a
     multi-op prologue/epilogue CFI program per function and a line-table
     entry per instruction *)
  let fdes =
    List.init n (fun i ->
        {
          fde_func = mega_fname i;
          fde_addr = addrs.(i);
          fde_size = sizes.(i);
          fde_cfi =
            [
              (0, Cfi_establish);
              (2, Cfi_def_locals (16 * (1 + (i land 3))));
              (2, Cfi_save (Bolt_isa.Reg.r5, 8));
              (sizes.(i) - 3, Cfi_restore Bolt_isa.Reg.r5);
              (sizes.(i) - 1, Cfi_teardown);
            ];
        })
  in
  (* per-instruction line tables, like -update-debug-sections input *)
  let dbgs =
    List.init n (fun i ->
        let insns, _ = bodies.(i) in
        let off = ref 0 in
        let entries =
          Array.to_list
            (Array.mapi
               (fun k insn ->
                 let e = (!off, "mega.c", 100 + (i mod 900) + k) in
                 off := !off + Bolt_isa.Insn.size insn;
                 e)
               insns)
        in
        { dbg_func = mega_fname i; dbg_addr = addrs.(i); dbg_entries = entries })
  in
  let lsdas =
    List.filteri (fun i _ -> i land 15 = 0) (List.init n Fun.id)
    |> List.map (fun i ->
           {
             lsda_func = mega_fname i;
             lsda_fn_addr = addrs.(i);
             lsda_entries =
               [ { lsda_start = 0; lsda_len = 8; lsda_pad = 0; lsda_action = 1 } ];
           })
  in
  let exe =
    {
      Objfile.kind = Objfile.Executable;
      entry = addrs.(0);
      build_id = "";
      sections;
      symbols = fsyms @ osyms;
      relocs = [];
      fdes;
      lsdas;
      dbgs;
      fingerprints = [];
    }
    |> Objfile.stamp_fingerprints |> Objfile.stamp_build_id
  in
  let belf = Objfile.to_string exe in
  (* profile text: headers, a bounded G/GB prefix (fingerprint parse
     path), then a zipf-skewed stream of B/F/S records *)
  let fb = Buffer.create (fdata_lines * 28) in
  let nlines = ref 0 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string fb s;
        Buffer.add_char fb '\n';
        incr nlines)
      fmt
  in
  line "mode lbr";
  line "H host mega-host";
  line "H build-id %s" exe.Objfile.build_id;
  line "H timestamp %d" 1700000000;
  line "H events %Ld" (Int64.of_int (fdata_lines * 40));
  let g_budget = fdata_lines / 10 in
  (try
     List.iter
       (fun (f : Fingerprint.func) ->
         if !nlines >= g_budget then raise Exit;
         line "G %s %d %s %s %s" f.fp_func f.fp_size
           (Fingerprint.to_hex f.fp_opcode_hash)
           (Fingerprint.to_hex f.fp_cfg_hash)
           (if f.fp_calls = [] then "-" else String.concat "," f.fp_calls);
         List.iter
           (fun (blk : Fingerprint.block) ->
             line "GB %s %d %d %s %s" f.fp_func blk.bk_off blk.bk_size
               (Fingerprint.to_hex blk.bk_opcode_hash)
               (Fingerprint.to_hex blk.bk_shape_hash))
           f.fp_blocks)
       exe.Objfile.fingerprints
   with Exit -> ());
  while !nlines < fdata_lines do
    let fi = Rng.zipf rng n in
    let name = mega_fname fi in
    let off () = Rng.int rng (max 1 sizes.(fi)) in
    let cnt () = Int64.of_int (1 + Rng.int rng 10000) in
    let kind = Rng.int rng 100 in
    if kind < 85 then begin
      let c = cnt () in
      let to_f, to_o =
        if Rng.bool rng 1 8 then
          let t = Rng.zipf rng n in
          (mega_fname t, 0)
        else (name, off ())
      in
      line "B %s %d %s %d %Ld %Ld" name (off ()) to_f to_o c
        (Int64.div c 8L)
    end
    else if kind < 95 then begin
      let s = off () in
      line "F %s %d %d %Ld" name s (s + Rng.int rng 32) (cnt ())
    end
    else line "S %s %d %Ld" name (off ()) (cnt ())
  done;
  {
    mg_exe = exe;
    mg_belf = belf;
    mg_fdata = Buffer.contents fb;
    mg_fdata_lines = !nlines;
  }
