(* Byte-accurate encoder/decoder for BISA instructions.

   [encode] demands fully resolved operands ([Imm]); the assembler and the
   binary rewriter resolve symbols (or leave a zero placeholder plus a
   relocation) before coming here.  [decode] is total over well-formed
   code and raises [Decode_error] otherwise; round-tripping preserves both
   the instruction and its encoded size, which the rewriter depends on. *)

open Insn

exception Decode_error of int (* position *)
exception Encoding_overflow of string

let fits_i8 n = n >= -128 && n <= 127
let fits_i32 n = n >= -0x8000_0000 && n <= 0x7fff_ffff

let imm_exn what = function
  | Imm n -> n
  | Sym (s, _) ->
      invalid_arg (Printf.sprintf "Codec.encode: unresolved symbol %s in %s" s what)

let put8 b pos v = Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xff))

let put_i8 b pos v =
  if not (fits_i8 v) then raise (Encoding_overflow "i8");
  put8 b pos v

(* Multi-byte fields go through the stdlib's batched little-endian
   accessors (single bounds check + word store), not a byte loop — the
   encode path runs once per instruction per rewrite. *)

let put_i32 b pos v =
  if not (fits_i32 v) then raise (Encoding_overflow "i32");
  Bytes.set_int32_le b pos (Int32.of_int v)

let put_i64 b pos v = Bytes.set_int64_le b pos (Int64.of_int v)

let get8 b pos = Char.code (Bytes.get b pos)

let get_i8 b pos =
  let v = get8 b pos in
  if v >= 128 then v - 256 else v

let get_i32 b pos = Int32.to_int (Bytes.get_int32_le b pos)

let get_i64 b pos = Int64.to_int (Bytes.get_int64_le b pos)

(* Encode [i] into [b] at [pos]; returns the number of bytes written. *)
let encode_into b pos i =
  let n = size i in
  (match i with
  | Halt -> put8 b pos 0x01
  | Nop 1 -> put8 b pos 0x02
  | Nop k ->
      if k < 2 || k > 15 then invalid_arg "Codec.encode: nop size";
      put8 b pos 0x03;
      put8 b (pos + 1) k;
      for j = 2 to k - 1 do
        put8 b (pos + j) 0x90
      done
  | Ret -> put8 b pos 0x04
  | Repz_ret ->
      put8 b pos 0x05;
      put8 b (pos + 1) 0x04
  | Push r ->
      put8 b pos 0x06;
      put8 b (pos + 1) (Reg.to_int r)
  | Pop r ->
      put8 b pos 0x07;
      put8 b (pos + 1) (Reg.to_int r)
  | Mov_rr (d, s) ->
      put8 b pos 0x08;
      put8 b (pos + 1) ((Reg.to_int d lsl 4) lor Reg.to_int s)
  | Mov_ri (d, v, I64) ->
      put8 b pos 0x09;
      put8 b (pos + 1) (Reg.to_int d);
      put_i64 b (pos + 2) (imm_exn "movabs" v)
  | Mov_ri (d, v, I32) ->
      put8 b pos 0x0A;
      put8 b (pos + 1) (Reg.to_int d);
      put_i32 b (pos + 2) (imm_exn "mov" v)
  | Load (d, base, off) ->
      put8 b pos 0x0B;
      put8 b (pos + 1) ((Reg.to_int d lsl 4) lor Reg.to_int base);
      put_i32 b (pos + 2) off
  | Store (base, off, s) ->
      put8 b pos 0x0C;
      put8 b (pos + 1) ((Reg.to_int s lsl 4) lor Reg.to_int base);
      put_i32 b (pos + 2) off
  | Load_abs (d, v) ->
      put8 b pos 0x0D;
      put8 b (pos + 1) (Reg.to_int d);
      put_i32 b (pos + 2) (imm_exn "load_abs" v)
  | Store_abs (v, s) ->
      put8 b pos 0x0E;
      put8 b (pos + 1) (Reg.to_int s);
      put_i32 b (pos + 2) (imm_exn "store_abs" v)
  | Lea (d, v) ->
      put8 b pos 0x0F;
      put8 b (pos + 1) (Reg.to_int d);
      put_i32 b (pos + 2) (imm_exn "lea" v)
  | Lea_rel (d, v) ->
      put8 b pos 0x56;
      put8 b (pos + 1) (Reg.to_int d);
      put_i32 b (pos + 2) (imm_exn "lea_rel" v)
  | Alu_rr (op, d, s) ->
      put8 b pos (0x10 + alu_code op);
      put8 b (pos + 1) ((Reg.to_int d lsl 4) lor Reg.to_int s)
  | Alu_ri (op, d, v) ->
      put8 b pos (0x20 + alu_code op);
      put8 b (pos + 1) (Reg.to_int d);
      put_i32 b (pos + 2) (imm_exn "alu_ri" v)
  | Setcc (c, r) ->
      put8 b pos 0x57;
      put8 b (pos + 1) ((Cond.to_int c lsl 4) lor Reg.to_int r)
  | Jmp (v, W8) ->
      put8 b pos 0x30;
      put_i8 b (pos + 1) (imm_exn "jmp8" v)
  | Jmp (v, W32) ->
      put8 b pos 0x31;
      put_i32 b (pos + 1) (imm_exn "jmp" v)
  | Jcc (c, v, W8) ->
      put8 b pos (0x40 + Cond.to_int c);
      put_i8 b (pos + 1) (imm_exn "jcc8" v)
  | Jcc (c, v, W32) ->
      put8 b pos (0x48 + Cond.to_int c);
      put8 b (pos + 1) 0;
      put_i32 b (pos + 2) (imm_exn "jcc" v)
  | Call v ->
      put8 b pos 0x50;
      put_i32 b (pos + 1) (imm_exn "call" v)
  | Call_ind r ->
      put8 b pos 0x51;
      put8 b (pos + 1) (Reg.to_int r)
  | Call_mem v ->
      put8 b pos 0x52;
      put8 b (pos + 1) 0;
      put_i32 b (pos + 2) (imm_exn "call_mem" v)
  | Jmp_ind r ->
      put8 b pos 0x53;
      put8 b (pos + 1) (Reg.to_int r)
  | Jmp_mem v ->
      put8 b pos 0x54;
      put8 b (pos + 1) 0;
      put_i32 b (pos + 2) (imm_exn "jmp_mem" v)
  | In_ r ->
      put8 b pos 0x60;
      put8 b (pos + 1) (Reg.to_int r)
  | Out r ->
      put8 b pos 0x61;
      put8 b (pos + 1) (Reg.to_int r)
  | Throw -> put8 b pos 0x62);
  n

let encode i =
  let b = Bytes.make (size i) '\x00' in
  ignore (encode_into b 0 i);
  b

(* Decode the instruction at [pos]; returns it with its encoded size. *)
let decode b pos =
  let opc = get8 b pos in
  let reg1 () = Reg.of_int (get8 b (pos + 1) land 0x0f) in
  let pair () =
    let v = get8 b (pos + 1) in
    (Reg.of_int (v lsr 4), Reg.of_int (v land 0x0f))
  in
  let i =
    match opc with
    | 0x01 -> Halt
    | 0x02 -> Nop 1
    | 0x03 ->
        let k = get8 b (pos + 1) in
        if k < 2 || k > 15 then raise (Decode_error pos);
        Nop k
    | 0x04 -> Ret
    | 0x05 -> Repz_ret
    | 0x06 -> Push (reg1 ())
    | 0x07 -> Pop (reg1 ())
    | 0x08 ->
        let d, s = pair () in
        Mov_rr (d, s)
    | 0x09 -> Mov_ri (reg1 (), Imm (get_i64 b (pos + 2)), I64)
    | 0x0A -> Mov_ri (reg1 (), Imm (get_i32 b (pos + 2)), I32)
    | 0x0B ->
        let d, base = pair () in
        Load (d, base, get_i32 b (pos + 2))
    | 0x0C ->
        let s, base = pair () in
        Store (base, get_i32 b (pos + 2), s)
    | 0x0D -> Load_abs (reg1 (), Imm (get_i32 b (pos + 2)))
    | 0x0E -> Store_abs (Imm (get_i32 b (pos + 2)), reg1 ())
    | 0x0F -> Lea (reg1 (), Imm (get_i32 b (pos + 2)))
    | 0x56 -> Lea_rel (reg1 (), Imm (get_i32 b (pos + 2)))
    | op when op >= 0x10 && op <= 0x1B ->
        let d, s = pair () in
        Alu_rr (alu_of_code (op - 0x10), d, s)
    | 0x57 ->
        let v = get8 b (pos + 1) in
        Setcc (Cond.of_int (v lsr 4), Reg.of_int (v land 0x0f))
    | op when op >= 0x20 && op <= 0x2B ->
        Alu_ri (alu_of_code (op - 0x20), reg1 (), Imm (get_i32 b (pos + 2)))
    | 0x30 -> Jmp (Imm (get_i8 b (pos + 1)), W8)
    | 0x31 -> Jmp (Imm (get_i32 b (pos + 1)), W32)
    | op when op >= 0x40 && op <= 0x45 ->
        Jcc (Cond.of_int (op - 0x40), Imm (get_i8 b (pos + 1)), W8)
    | op when op >= 0x48 && op <= 0x4D ->
        Jcc (Cond.of_int (op - 0x48), Imm (get_i32 b (pos + 2)), W32)
    | 0x50 -> Call (Imm (get_i32 b (pos + 1)))
    | 0x51 -> Call_ind (reg1 ())
    | 0x52 -> Call_mem (Imm (get_i32 b (pos + 2)))
    | 0x53 -> Jmp_ind (reg1 ())
    | 0x54 -> Jmp_mem (Imm (get_i32 b (pos + 2)))
    | 0x60 -> In_ (reg1 ())
    | 0x61 -> Out (reg1 ())
    | 0x62 -> Throw
    | _ -> raise (Decode_error pos)
  in
  (i, size i)

(* Location of the immediate operand inside the encoding, with its width in
   bytes and its addressing kind.  Relocation plumbing in the assembler and
   the rewriter is driven by this. *)

type operand_kind =
  | Op_none
  | Op_abs of int * int (* byte offset within the encoding, width *)
  | Op_rel of int * int (* pc-relative, measured from end of insn *)

let operand_kind = function
  | Mov_ri (_, _, I64) -> Op_abs (2, 8)
  | Mov_ri (_, _, I32) -> Op_abs (2, 4)
  | Load_abs _ | Store_abs _ | Lea _ -> Op_abs (2, 4)
  | Call_mem _ | Jmp_mem _ -> Op_abs (2, 4)
  | Lea_rel _ -> Op_rel (2, 4)
  | Alu_ri _ -> Op_abs (2, 4)
  | Jmp (_, W8) -> Op_rel (1, 1)
  | Jmp (_, W32) -> Op_rel (1, 4)
  | Jcc (_, _, W8) -> Op_rel (1, 1)
  | Jcc (_, _, W32) -> Op_rel (2, 4)
  | Call _ -> Op_rel (1, 4)
  | _ -> Op_none
