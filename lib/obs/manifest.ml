(* The machine-readable run manifest: one JSON document per tool run,
   carrying the trace, the metrics registry, the event log, and
   tool-specific sections (dyno-stats, quarantine diagnostics, heat-map
   summaries, ...).

   Schema (`obolt-manifest/1`):

     { "schema":  "obolt-manifest/1",
       "tool":    "obolt" | "bsim" | "perf2bolt" | "bench",
       "argv":    [...],
       "trace":   { "name", "start_s", "dur_s", "attrs"?, "children"? },
       "metrics": { "<dotted.name>": {"type":"counter","value":N} | ... },
       "events":  [ {"t_s","name","attrs"?}, ... ],
       ...tool sections... }

   Every future perf PR diffs these artifacts; keep additions
   backward-compatible (new fields, never repurposed ones). *)

let schema = "obolt-manifest/1"
let version = 1

(* The self-describing `meta` stanza: everything a longitudinal reader
   (`bstat`, the history store) needs to decide whether two records are
   comparable — tool, argv, schema version and the monotonic-clock epoch
   the trace timeline is anchored to.  Duplicates the top-level
   tool/argv/schema fields on purpose: history records keep only `meta`,
   not the full manifest envelope. *)
let meta_stanza ~tool ~argv (obs : Obs.t) : Json.t =
  Json.Obj
    [
      ("tool", Json.String tool);
      ("argv", Json.List (List.map (fun a -> Json.String a) argv));
      ("schema", Json.String schema);
      ("version", Json.Int version);
      ("epoch_s", Json.Float (Trace.epoch obs.Obs.trace));
      ("clock", Json.String "monotonic");
    ]

(* Read a record's schema version back: the meta stanza when present,
   else the trailing "/N" of the schema string, else None (not a
   manifest-family record at all). *)
let version_of (j : Json.t) : int option =
  match Json.member "meta" j with
  | Some m when Json.get_int (Json.member "version" m) <> None ->
      Json.get_int (Json.member "version" m)
  | _ -> (
      match Json.get_string (Json.member "schema" j) with
      | Some s -> (
          match String.rindex_opt s '/' with
          | Some i ->
              int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          | None -> None)
      | None -> None)

let make ~tool ?(argv = []) ?(sections = []) (obs : Obs.t) : Json.t =
  Obs.finish obs;
  Json.Obj
    ([
       ("schema", Json.String schema);
       ("tool", Json.String tool);
       ("argv", Json.List (List.map (fun a -> Json.String a) argv));
       ("meta", meta_stanza ~tool ~argv obs);
       ("trace", Trace.to_json obs.Obs.trace);
       ("metrics", Metrics.to_json obs.Obs.metrics);
       ("events", Trace.events_to_json obs.Obs.trace);
     ]
    @ sections)

(* Temp + rename: a crash mid-write leaves the previous manifest intact,
   and concurrent readers never observe a half-written file. *)
let save path (manifest : Json.t) =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Json.to_string ~indent:true manifest);
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

let load path : Json.t =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Json.of_string s

(* ---- reading spans back out of a serialized manifest ---- *)

type flat_span = {
  fs_name : string;
  fs_depth : int;
  fs_dur : float;
  fs_attrs : (string * Json.t) list;
}

let flat_spans (manifest : Json.t) : flat_span list =
  let out = ref [] in
  let rec go depth j =
    let name = Option.value ~default:"?" (Json.get_string (Json.member "name" j)) in
    let dur = Option.value ~default:0.0 (Json.get_float (Json.member "dur_s" j)) in
    let attrs =
      match Json.member "attrs" j with Some (Json.Obj f) -> f | _ -> []
    in
    out := { fs_name = name; fs_depth = depth; fs_dur = dur; fs_attrs = attrs } :: !out;
    match Json.get_list (Json.member "children" j) with
    | Some kids -> List.iter (go (depth + 1)) kids
    | None -> ()
  in
  (match Json.member "trace" manifest with Some tr -> go 0 tr | None -> ());
  List.rev !out

(* Leaf-biased "top-N slowest": spans sorted by duration, the root
   excluded (it is the whole run by construction). *)
let slowest ?(n = 10) (manifest : Json.t) : flat_span list =
  flat_spans manifest
  |> List.filter (fun s -> s.fs_depth > 0)
  |> List.stable_sort (fun a b -> compare b.fs_dur a.fs_dur)
  |> List.filteri (fun i _ -> i < n)

let pp_slowest ?(n = 10) ppf (manifest : Json.t) =
  let tool = Option.value ~default:"?" (Json.get_string (Json.member "tool" manifest)) in
  let total =
    match Json.member "trace" manifest with
    | Some tr -> Option.value ~default:0.0 (Json.get_float (Json.member "dur_s" tr))
    | None -> 0.0
  in
  Fmt.pf ppf "manifest: tool=%s total=%.3f ms@." tool (total *. 1000.0);
  let spans = slowest ~n manifest in
  if spans = [] then Fmt.pf ppf "  (no spans)@."
  else
    List.iter
      (fun s ->
        let pct = if total > 0.0 then 100.0 *. s.fs_dur /. total else 0.0 in
        Fmt.pf ppf "  %8.3f ms %5.1f%%  %s%s@." (s.fs_dur *. 1000.0) pct s.fs_name
          (match Json.member "metrics" (Json.Obj s.fs_attrs) with
          | Some (Json.Obj moved) ->
              "  ["
              ^ String.concat ", "
                  (List.map
                     (fun (k, v) ->
                       Printf.sprintf "%s%s" k
                         (match v with Json.Int i -> Printf.sprintf "=%d" i | _ -> ""))
                     moved)
              ^ "]"
          | _ -> ""))
      spans
