(* The unified telemetry handle every layer threads: one trace, one
   metrics registry, one event log.

   [span] is the instrumentation workhorse: it times the stage AND
   attaches the registry's counter movement during the stage to the span
   as `metrics`, so the manifest shows per-pass metric deltas without the
   passes doing anything beyond [incr].  With [enabled = false] every
   operation is a no-op beyond running the wrapped function, which is
   what the <2%-overhead requirement is measured against. *)

type t = {
  trace : Trace.t;
  metrics : Metrics.t;
  enabled : bool;
}

let create ?clock ?(enabled = true) ?(name = "run") () =
  { trace = Trace.create ?clock ~name (); metrics = Metrics.create (); enabled }

(* A shared disabled instance for call sites that want telemetry to be
   optional without an option type. *)
let null () = create ~enabled:false ~name:"null" ()

let is_enabled t = t.enabled
let incr t ?by name = if t.enabled then Metrics.incr t.metrics ?by name
let set t name v = if t.enabled then Metrics.set t.metrics name v
let observe t name v = if t.enabled then Metrics.observe t.metrics name v
let event t ?attrs name = if t.enabled then Trace.event t.trace ?attrs name
let add_child t ?attrs name ~dur_s =
  if t.enabled then Trace.add_child t.trace ?attrs name ~dur_s
let set_attr t key v = if t.enabled then Trace.set_attr t.trace key v

let span t name ?attrs f =
  if not t.enabled then f ()
  else begin
    let before = Metrics.counters t.metrics in
    Trace.with_span t.trace name ?attrs (fun () ->
        let r = f () in
        (match Metrics.counter_delta t.metrics ~before with
        | [] -> ()
        | moved ->
            Trace.set_attr t.trace "metrics"
              (Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) moved)));
        r)
  end

let finish t = if t.enabled then Trace.finish t.trace
