(* Minimal JSON: the manifest's wire format.

   The container has no JSON package, so this module carries its own
   value type, printer and parser.  The printer and parser are exact
   inverses for every value the telemetry layer produces (integers kept
   distinct from floats, strings escaped per RFC 8259), which the
   manifest round-trip tests rely on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---- printing ---- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Shortest decimal that reads back as the same float, always with a
   decimal point or exponent so the parser keeps the int/float split. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* %g can spell big integer-valued floats without a point or
       exponent (e.g. 2^53); mark them so the parser keeps them Float *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let to_buffer ?(indent = false) b t =
  let pad n = if indent then Buffer.add_string b (String.make n ' ') in
  let nl () = if indent then Buffer.add_char b '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        if Float.is_nan f || Float.abs f = infinity then
          Buffer.add_string b "null"
        else Buffer.add_string b (float_repr f)
    | String s -> escape b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_char b '[';
        nl ();
        List.iteri
          (fun i v ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad ((depth + 1) * 2);
            go (depth + 1) v)
          items;
        nl ();
        pad (depth * 2);
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_char b '{';
        nl ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad ((depth + 1) * 2);
            escape b k;
            Buffer.add_string b (if indent then ": " else ":");
            go (depth + 1) v)
          fields;
        nl ();
        pad (depth * 2);
        Buffer.add_char b '}'
  in
  go 0 t

let to_string ?indent t =
  let b = Buffer.create 4096 in
  to_buffer ?indent b t;
  Buffer.contents b

let pp ppf t = Format.pp_print_string ppf (to_string ~indent:true t)

(* ---- parsing ---- *)

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let fail p msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg p.pos))

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
      p.pos <- p.pos + 1;
      skip_ws p
  | _ -> ()

let expect p c =
  if peek p = Some c then p.pos <- p.pos + 1
  else fail p (Printf.sprintf "expected '%c'" c)

let literal p word value =
  let n = String.length word in
  if p.pos + n <= String.length p.src && String.sub p.src p.pos n = word then begin
    p.pos <- p.pos + n;
    value
  end
  else fail p ("expected " ^ word)

let parse_string p =
  expect p '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' -> p.pos <- p.pos + 1
    | Some '\\' -> (
        p.pos <- p.pos + 1;
        match peek p with
        | Some '"' -> Buffer.add_char b '"'; p.pos <- p.pos + 1; go ()
        | Some '\\' -> Buffer.add_char b '\\'; p.pos <- p.pos + 1; go ()
        | Some '/' -> Buffer.add_char b '/'; p.pos <- p.pos + 1; go ()
        | Some 'n' -> Buffer.add_char b '\n'; p.pos <- p.pos + 1; go ()
        | Some 'r' -> Buffer.add_char b '\r'; p.pos <- p.pos + 1; go ()
        | Some 't' -> Buffer.add_char b '\t'; p.pos <- p.pos + 1; go ()
        | Some 'b' -> Buffer.add_char b '\b'; p.pos <- p.pos + 1; go ()
        | Some 'f' -> Buffer.add_char b '\012'; p.pos <- p.pos + 1; go ()
        | Some 'u' ->
            if p.pos + 5 > String.length p.src then fail p "bad \\u escape";
            let hex = String.sub p.src (p.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail p "bad \\u escape"
            in
            (* the printer only emits \u for control chars; decode the
               BMP code point as UTF-8 for general inputs *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
            end;
            p.pos <- p.pos + 5;
            go ()
        | _ -> fail p "bad escape")
    | Some c ->
        Buffer.add_char b c;
        p.pos <- p.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number p =
  let start = p.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek p with Some c when is_num_char c -> true | _ -> false) do
    p.pos <- p.pos + 1
  done;
  let s = String.sub p.src start (p.pos - start) in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
    try Float (float_of_string s) with _ -> fail p "bad number"
  else try Int (int_of_string s) with _ -> fail p "bad number"

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some 'n' -> literal p "null" Null
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some '"' -> String (parse_string p)
  | Some '[' ->
      p.pos <- p.pos + 1;
      skip_ws p;
      if peek p = Some ']' then begin
        p.pos <- p.pos + 1;
        List []
      end
      else begin
        let items = ref [ parse_value p ] in
        skip_ws p;
        while peek p = Some ',' do
          p.pos <- p.pos + 1;
          items := parse_value p :: !items;
          skip_ws p
        done;
        expect p ']';
        List (List.rev !items)
      end
  | Some '{' ->
      p.pos <- p.pos + 1;
      skip_ws p;
      if peek p = Some '}' then begin
        p.pos <- p.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws p;
          let k = parse_string p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws p;
        while peek p = Some ',' do
          p.pos <- p.pos + 1;
          fields := field () :: !fields;
          skip_ws p
        done;
        expect p '}';
        Obj (List.rev !fields)
      end
  | Some _ -> parse_number p

let of_string s =
  let p = { src = s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length s then fail p "trailing garbage";
  v

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_string = function Some (String s) -> Some s | _ -> None
let get_int = function Some (Int i) -> Some i | _ -> None

let get_float = function
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let get_list = function Some (List l) -> Some l | _ -> None
