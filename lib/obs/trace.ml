(* Hierarchical trace spans — the `-time-opts` analog.

   A span is a named, monotonic-clock wall-time interval with typed
   attributes and child spans; every pipeline stage runs inside one.  A
   structured event log rides along for point-in-time facts (a function
   quarantined, a retry taken).

   The clock is injectable so tests drive the timeline deterministically.
   Whatever the clock does, readings are clamped to be non-decreasing:
   a span can never have a negative duration and siblings can never
   appear to run backwards. *)

type span = {
  sp_name : string;
  sp_start : float; (* seconds since the trace epoch *)
  mutable sp_dur : float; (* -1.0 while still open *)
  mutable sp_attrs : (string * Json.t) list; (* newest first *)
  mutable sp_children : span list; (* newest first while building *)
}

type event = {
  ev_time : float;
  ev_name : string;
  ev_attrs : (string * Json.t) list;
}

type t = {
  clock : unit -> float;
  epoch : float;
  root : span;
  mutable stack : span list; (* innermost open span first; root is last *)
  mutable events : event list; (* newest first *)
  mutable last : float; (* monotonic clamp *)
}

let default_clock = Unix.gettimeofday

let create ?(clock = default_clock) ?(name = "run") () =
  let epoch = clock () in
  let root =
    { sp_name = name; sp_start = 0.0; sp_dur = -1.0; sp_attrs = []; sp_children = [] }
  in
  { clock; epoch; root; stack = [ root ]; events = []; last = 0.0 }

(* Monotonic "now", relative to the epoch. *)
let now t =
  let v = t.clock () -. t.epoch in
  if v > t.last then t.last <- v;
  t.last

let current t = match t.stack with s :: _ -> s | [] -> t.root

let set_attr t key v =
  let s = current t in
  s.sp_attrs <- (key, v) :: List.remove_assoc key s.sp_attrs

let event t ?(attrs = []) name =
  t.events <- { ev_time = now t; ev_name = name; ev_attrs = attrs } :: t.events

let close_span t s =
  s.sp_dur <- now t -. s.sp_start;
  s.sp_children <- List.rev s.sp_children;
  s.sp_attrs <- List.rev s.sp_attrs

(* Run [f] inside a fresh child of the current span.  Exception-safe: the
   span is closed (and marked failed) even if [f] raises. *)
let with_span t name ?(attrs = []) f =
  let s =
    {
      sp_name = name;
      sp_start = now t;
      sp_dur = -1.0;
      sp_attrs = List.rev attrs;
      sp_children = [];
    }
  in
  let parent = current t in
  parent.sp_children <- s :: parent.sp_children;
  t.stack <- s :: t.stack;
  let pop () =
    (match t.stack with
    | top :: rest when top == s -> t.stack <- rest
    | _ -> () (* unbalanced close: drop nothing, keep the trace usable *));
    close_span t s
  in
  match f () with
  | r -> pop (); r
  | exception exn ->
      s.sp_attrs <- ("error", Json.String (Printexc.to_string exn)) :: s.sp_attrs;
      pop ();
      raise exn

(* Append an already-measured, closed child span under the current span.
   Used for work that ran outside the trace's own clock discipline — e.g.
   a worker domain's share of a parallel pass, whose busy time was
   measured on the worker and reported at pool join.  The span is
   back-dated so it nests inside (never before) the current span. *)
let add_child t ?(attrs = []) name ~dur_s =
  let parent = current t in
  let dur = if dur_s < 0.0 then 0.0 else dur_s in
  let start = Float.max parent.sp_start (now t -. dur) in
  let s =
    { sp_name = name; sp_start = start; sp_dur = dur; sp_attrs = attrs; sp_children = [] }
  in
  parent.sp_children <- s :: parent.sp_children

(* Close the root (idempotent); call once the run is over. *)
let finish t =
  List.iter (fun s -> if s.sp_dur < 0.0 then close_span t s) t.stack;
  t.stack <- []

let root t = t.root
let events t = List.rev t.events

(* The raw clock reading the trace's relative timeline is anchored to.
   Manifests publish it in the `meta` stanza so two runs' records can be
   ordered even when neither carries a wall-clock timestamp. *)
let epoch t = t.epoch

(* Pre-order (depth, span) listing; the root is depth 0. *)
let flatten t =
  let out = ref [] in
  (* child lists are newest-first while a span is open, oldest-first
     after close_span reverses them *)
  let rec go depth s =
    out := (depth, s) :: !out;
    List.iter (go (depth + 1))
      (if s.sp_dur < 0.0 then List.rev s.sp_children else s.sp_children)
  in
  go 0 t.root;
  List.rev !out

(* ---- serialization ---- *)

let rec span_to_json (s : span) : Json.t =
  Json.Obj
    ([
       ("name", Json.String s.sp_name);
       ("start_s", Json.Float s.sp_start);
       ("dur_s", Json.Float (if s.sp_dur < 0.0 then 0.0 else s.sp_dur));
     ]
    @ (if s.sp_attrs = [] then [] else [ ("attrs", Json.Obj s.sp_attrs) ])
    @
    if s.sp_children = [] then []
    else [ ("children", Json.List (List.map span_to_json s.sp_children)) ])

let to_json t : Json.t = span_to_json t.root

let events_to_json t : Json.t =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           ([ ("t_s", Json.Float e.ev_time); ("name", Json.String e.ev_name) ]
           @ if e.ev_attrs = [] then [] else [ ("attrs", Json.Obj e.ev_attrs) ]))
       (events t))

(* ---- the -time-opts terminal table ---- *)

let pp_table ppf t =
  let total = if t.root.sp_dur > 0.0 then t.root.sp_dur else 1e-9 in
  Fmt.pf ppf "pass timing (wall clock, total %.3f ms):@." (total *. 1000.0);
  List.iter
    (fun (depth, (s : span)) ->
      if depth > 0 then
        let dur = if s.sp_dur < 0.0 then 0.0 else s.sp_dur in
        (* Per-function time distribution, recorded by parallel passes as
           fn_p50_ms / fn_p99_ms attrs: shows where a parallel section's
           critical path is (a fat p99 caps the speedup). *)
        let dist =
          match
            ( List.assoc_opt "fn_p50_ms" s.sp_attrs,
              List.assoc_opt "fn_p99_ms" s.sp_attrs )
          with
          | Some (Json.Float p50), Some (Json.Float p99) ->
              Printf.sprintf "  [fn p50 %.3f p99 %.3f ms]" p50 p99
          | _ -> ""
        in
        Fmt.pf ppf "  %7.3f ms %5.1f%%  %s%s%s@." (dur *. 1000.0)
          (100.0 *. dur /. total)
          (String.make ((depth - 1) * 2) ' ')
          s.sp_name dist)
    (flatten t)
