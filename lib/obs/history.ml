(* Append-only JSONL run-history store: the longitudinal layer on top of
   the single-run manifest.

   One record per tool run, one compact JSON object per line
   (`obolt-history/1`).  A record is a manifest with the bulky envelope
   stripped: the full trace collapses to the root wall time plus a
   per-span-name duration table, the event log is dropped, and the
   `meta` stanza, metrics registry and every tool section survive
   verbatim.  Records additionally carry the identity fields a fleet
   operator keys trajectories on: workload label, git revision and the
   binary build-id the run measured.

   Durability model: [append] writes a whole line with a single
   flush-on-close, so concurrent appenders from separate processes
   interleave at line granularity and [load] tolerates the one failure
   mode that leaves — a torn final line from a writer that died
   mid-write — by skipping unparseable lines and reporting them as
   warnings instead of failing the whole read.  `bstat` and the bench
   gate therefore keep working against a history file that is being
   appended to while they read it. *)

let schema = "obolt-history/1"

type warning = { w_line : int; w_reason : string }

let pp_warning ppf w =
  Fmt.pf ppf "history line %d skipped: %s" w.w_line w.w_reason

(* ---- record construction ---- *)

(* Aggregate span durations by name (a parallel pass contributes one span
   per domain; summing them keeps the table small and diffable). *)
let span_table (manifest : Json.t) : (string * float) list =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (s : Manifest.flat_span) ->
      if s.Manifest.fs_depth > 0 then begin
        if not (Hashtbl.mem tbl s.Manifest.fs_name) then
          order := s.Manifest.fs_name :: !order;
        Hashtbl.replace tbl s.Manifest.fs_name
          (s.Manifest.fs_dur
          +. try Hashtbl.find tbl s.Manifest.fs_name with Not_found -> 0.0)
      end)
    (Manifest.flat_spans manifest);
  List.rev_map (fun n -> (n, Hashtbl.find tbl n)) !order

let envelope_fields =
  [ "schema"; "tool"; "argv"; "meta"; "trace"; "metrics"; "events" ]

(* Detect the current git revision for stamping records.  The
   OBOLT_GIT_REV environment variable wins (hermetic builds, tests);
   otherwise ask git, quietly returning "" when the working directory is
   not a repository (e.g. a dune sandbox). *)
let detect_git_rev () =
  match Sys.getenv_opt "OBOLT_GIT_REV" with
  | Some rev -> rev
  | None -> (
      try
        let ic =
          Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
        in
        let rev = try input_line ic with End_of_file -> "" in
        match Unix.close_process_in ic with
        | Unix.WEXITED 0 -> String.trim rev
        | _ -> ""
      with _ -> "")

(* Compress a full run manifest into a one-line history record. *)
let of_manifest ?(workload = "") ?(git_rev = "") ?(build_id = "")
    (manifest : Json.t) : Json.t =
  let tool =
    Option.value ~default:"?" (Json.get_string (Json.member "tool" manifest))
  in
  let wall_s =
    match Json.member "trace" manifest with
    | Some tr -> Option.value ~default:0.0 (Json.get_float (Json.member "dur_s" tr))
    | None -> 0.0
  in
  let meta =
    match Json.member "meta" manifest with
    | Some m -> m
    | None ->
        (* legacy manifest: synthesize the stanza from the envelope *)
        Json.Obj
          [
            ("tool", Json.String tool);
            ( "argv",
              Option.value ~default:(Json.List [])
                (Json.member "argv" manifest) );
            ( "schema",
              Json.String
                (Option.value ~default:""
                   (Json.get_string (Json.member "schema" manifest))) );
            ( "version",
              match Manifest.version_of manifest with
              | Some v -> Json.Int v
              | None -> Json.Null );
          ]
  in
  let sections =
    match manifest with
    | Json.Obj fields ->
        List.filter (fun (k, _) -> not (List.mem k envelope_fields)) fields
    | _ -> []
  in
  Json.Obj
    ([
       ("schema", Json.String schema);
       ("tool", Json.String tool);
       ("workload", Json.String workload);
       ("git_rev", Json.String git_rev);
       ("build_id", Json.String build_id);
       ("meta", meta);
       ("wall_s", Json.Float wall_s);
       ( "spans",
         Json.Obj
           (List.map (fun (n, d) -> (n, Json.Float d)) (span_table manifest)) );
       ( "metrics",
         Option.value ~default:(Json.Obj []) (Json.member "metrics" manifest) );
     ]
    @ sections)

(* ---- the store ---- *)

(* Append one record as a single line.  The line is materialized first
   and written with one [output_string] on an O_APPEND channel, so
   concurrent appenders never interleave within a line. *)
let append path (record : Json.t) =
  let line = Json.to_string record ^ "\n" in
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
  in
  output_string oc line;
  close_out oc

(* Load every parseable record, in file order.  Blank lines are ignored;
   malformed lines (torn writes, truncation) become warnings. *)
let load path : Json.t list * warning list =
  if not (Sys.file_exists path) then ([], [])
  else begin
    let ic = open_in_bin path in
    let records = ref [] in
    let warnings = ref [] in
    let lineno = ref 0 in
    (try
       while true do
         let line = input_line ic in
         incr lineno;
         if String.trim line <> "" then
           match Json.of_string line with
           | j -> records := j :: !records
           | exception Json.Parse_error msg ->
               warnings := { w_line = !lineno; w_reason = msg } :: !warnings
       done
     with End_of_file -> ());
    close_in ic;
    (List.rev !records, List.rev !warnings)
  end

(* ---- record accessors (shared by `bstat` and the tests) ---- *)

let str field r =
  Option.value ~default:"" (Json.get_string (Json.member field r))

let tool_of r = str "tool" r
let workload_of r = str "workload" r
let git_rev_of r = str "git_rev" r
let build_id_of r = str "build_id" r

let wall_of r =
  Option.value ~default:0.0 (Json.get_float (Json.member "wall_s" r))
