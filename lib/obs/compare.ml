(* Manifest/record comparison: the engine behind `bstat`.

   Works on any manifest-family JSON value — a full `obolt-manifest/1`
   document or a compact `obolt-history/1` record.  Every numeric leaf
   is flattened to a dotted path ("metrics.sim.cycles.value",
   "dyno_stats.after.taken_branches", "spans.bolt", "wall_s", ...), so
   diffing is schema-agnostic: two records diff over the intersection of
   their paths, and the regression gate expresses thresholds as
   (path-glob, direction, percent) rules over the same namespace. *)

(* ---- compatibility ---- *)

let known_schemas = [ "obolt-manifest"; "obolt-history" ]

let schema_of (j : Json.t) : string =
  Option.value ~default:"" (Json.get_string (Json.member "schema" j))

let family s =
  match String.rindex_opt s '/' with Some i -> String.sub s 0 i | None -> s

(* Two records are diffable when both carry a known manifest-family
   schema at the same version.  A full manifest and a history record are
   deliberately cross-comparable (the history record is a projection of
   the manifest).  [Error] carries a structured, human-readable
   diagnostic naming both schemas. *)
let compatible (a : Json.t) (b : Json.t) : (unit, string) result =
  let check j =
    let s = schema_of j in
    if s = "" then Error "record carries no schema field (not a manifest?)"
    else if not (List.mem (family s) known_schemas) then
      Error (Printf.sprintf "unknown schema %S" s)
    else
      match Manifest.version_of j with
      | Some v -> Ok (s, v)
      | None -> Error (Printf.sprintf "schema %S carries no version" s)
  in
  match (check a, check b) with
  | Error e, _ -> Error (Printf.sprintf "first record: %s" e)
  | _, Error e -> Error (Printf.sprintf "second record: %s" e)
  | Ok (sa, va), Ok (sb, vb) ->
      if va <> vb then
        Error
          (Printf.sprintf
             "version mismatch: first is %s (version %d), second is %s \
              (version %d)"
             sa va sb vb)
      else Ok ()

(* ---- flattening ---- *)

(* Numeric leaves only: Int and Float as themselves, Bool as 0/1 (so
   behaviour flags can gate), everything else skipped.  The full trace
   tree and event log are deliberately excluded — pass wall-times are
   read from the aggregated "spans" table of history records, or
   aggregated here for full manifests. *)
let flatten (j : Json.t) : (string * float) list =
  let out = ref [] in
  let add path v = out := (path, v) :: !out in
  let join prefix k = if prefix = "" then k else prefix ^ "." ^ k in
  let rec go prefix = function
    | Json.Int i -> add prefix (float_of_int i)
    | Json.Float f -> if Float.is_finite f then add prefix f
    | Json.Bool b -> add prefix (if b then 1.0 else 0.0)
    | Json.Obj fields ->
        List.iter
          (fun (k, v) ->
            (* trace/events are bulk (spans are aggregated separately),
               argv and meta are identity — epoch_s differs every run
               and would show as a changed row in every diff *)
            if
              prefix = ""
              && (k = "trace" || k = "events" || k = "argv" || k = "meta")
            then ()
            else go (join prefix k) v)
          fields
    | Json.List items -> List.iteri (fun i v -> go (join prefix (string_of_int i)) v) items
    | Json.Null | Json.String _ -> ()
  in
  go "" j;
  (* a full manifest carries no "spans" table: derive one from its trace
     so pass wall-times diff the same way in both representations *)
  let spans =
    match Json.member "spans" j with
    | Some _ -> []
    | None ->
        (match Json.member "trace" j with
        | Some tr ->
            ("wall_s",
             Option.value ~default:0.0
               (Json.get_float (Json.member "dur_s" tr)))
            :: List.map
                 (fun (n, d) -> ("spans." ^ n, d))
                 (History.span_table j)
        | None -> [])
  in
  List.sort compare (spans @ !out)

(* ---- diff ---- *)

type row = {
  r_path : string;
  r_a : float option;
  r_b : float option;
  r_delta_pct : float option; (* None when either side is missing or a=0 *)
}

let delta_pct a b =
  if a = 0.0 then None else Some (100.0 *. (b -. a) /. Float.abs a)

let diff_rows (a : Json.t) (b : Json.t) : row list =
  let fa = flatten a and fb = flatten b in
  let ta = Hashtbl.create 64 and tb = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace ta k v) fa;
  List.iter (fun (k, v) -> Hashtbl.replace tb k v) fb;
  let paths =
    List.sort_uniq compare (List.map fst fa @ List.map fst fb)
  in
  List.map
    (fun p ->
      let va = Hashtbl.find_opt ta p and vb = Hashtbl.find_opt tb p in
      {
        r_path = p;
        r_a = va;
        r_b = vb;
        r_delta_pct =
          (match (va, vb) with
          | Some x, Some y -> delta_pct x y
          | _ -> None);
      })
    paths

let changed (rows : row list) : row list =
  List.filter (fun r -> r.r_a <> r.r_b) rows

(* Render a float like the numbers it came from: integers without a
   fraction, small rates with enough precision to matter. *)
let pp_num ppf v =
  if Float.is_integer v && Float.abs v < 1e15 then Fmt.pf ppf "%.0f" v
  else if Float.abs v < 10.0 then Fmt.pf ppf "%.4f" v
  else Fmt.pf ppf "%.2f" v

let side_str = function
  | Some v -> Fmt.str "%a" pp_num v
  | None -> "-"

let pp_rows ?(labels = ("a", "b")) ppf (rows : row list) =
  let la, lb = labels in
  let width =
    List.fold_left (fun w r -> max w (String.length r.r_path)) 24 rows
  in
  Fmt.pf ppf "  %-*s %14s %14s %9s@." width "metric" la lb "delta";
  List.iter
    (fun r ->
      Fmt.pf ppf "  %-*s %14s %14s %9s@." width r.r_path (side_str r.r_a)
        (side_str r.r_b)
        (match r.r_delta_pct with
        | Some d -> Printf.sprintf "%+.1f%%" d
        | None -> (
            match (r.r_a, r.r_b) with
            | None, Some _ -> "new"
            | Some _, None -> "gone"
            | _ -> "-")))
    rows

(* ---- regression rules ---- *)

type direction = Up_is_bad | Down_is_bad

type rule = {
  ru_path : string; (* glob over dotted paths: '*' matches any run *)
  ru_dir : direction;
  ru_pct : float; (* allowed movement in the bad direction, percent *)
}

(* "PATH=+10" — regression when PATH rises more than 10% over baseline;
   "PATH=-5"  — regression when PATH falls more than 5% below baseline. *)
let parse_rule s : (rule, string) result =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "bad threshold %S (want PATH=+PCT or PATH=-PCT)" s)
  | Some i ->
      let path = String.sub s 0 i in
      let spec = String.sub s (i + 1) (String.length s - i - 1) in
      let dir, mag =
        if String.length spec > 0 && spec.[0] = '-' then
          (Down_is_bad, String.sub spec 1 (String.length spec - 1))
        else if String.length spec > 0 && spec.[0] = '+' then
          (Up_is_bad, String.sub spec 1 (String.length spec - 1))
        else (Up_is_bad, spec)
      in
      (match float_of_string_opt mag with
      | Some pct when pct >= 0.0 && path <> "" -> Ok { ru_path = path; ru_dir = dir; ru_pct = pct }
      | _ -> Error (Printf.sprintf "bad threshold %S (want PATH=+PCT or PATH=-PCT)" s))

let pp_rule ppf r =
  Fmt.pf ppf "%s=%c%g" r.ru_path
    (match r.ru_dir with Up_is_bad -> '+' | Down_is_bad -> '-')
    r.ru_pct

(* Tiny glob: '*' matches any (possibly empty) substring. *)
let glob_match pat s =
  let np = String.length pat and ns = String.length s in
  let rec go pi si =
    if pi = np then si = ns
    else
      match pat.[pi] with
      | '*' ->
          let rec try_from k = k <= ns && (go (pi + 1) k || try_from (k + 1)) in
          try_from si
      | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
  in
  go 0 0

(* Conservative defaults for the bench/CI gate: wall time and simulated
   cycles may not climb, recovery/coverage may not collapse, and a
   behaviour-mismatch flag dropping from 1 to 0 always fires (any drop
   below 100% of baseline). *)
let default_rules : rule list =
  [
    { ru_path = "wall_s"; ru_dir = Up_is_bad; ru_pct = 30.0 };
    { ru_path = "metrics.sim.cycles.value"; ru_dir = Up_is_bad; ru_pct = 10.0 };
    { ru_path = "*dyno_stats.after.cycles"; ru_dir = Up_is_bad; ru_pct = 10.0 };
    { ru_path = "*dyno_stats.after.taken_branches"; ru_dir = Up_is_bad; ru_pct = 10.0 };
    { ru_path = "*recovery.rate"; ru_dir = Down_is_bad; ru_pct = 10.0 };
    { ru_path = "fleet.coverage_pct"; ru_dir = Down_is_bad; ru_pct = 20.0 };
    { ru_path = "*behaviour_ok"; ru_dir = Down_is_bad; ru_pct = 1.0 };
    (* iocore data-plane budgets: throughput of the slice/cursor paths
       may drift with machine noise but not collapse, the speedup ratios
       over the legacy paths are the refactor's receipts, and a parity
       flag dropping from 1 to 0 always fires. *)
    { ru_path = "iocore.belf.new_mb_per_s"; ru_dir = Down_is_bad; ru_pct = 40.0 };
    { ru_path = "iocore.belf.load_speedup"; ru_dir = Down_is_bad; ru_pct = 25.0 };
    { ru_path = "iocore.fdata.stream_lines_per_s"; ru_dir = Down_is_bad; ru_pct = 40.0 };
    { ru_path = "iocore.fdata.stream_speedup"; ru_dir = Down_is_bad; ru_pct = 25.0 };
    { ru_path = "iocore.fdata.parse_speedup"; ru_dir = Down_is_bad; ru_pct = 25.0 };
    { ru_path = "iocore.*identical"; ru_dir = Down_is_bad; ru_pct = 1.0 };
    { ru_path = "iocore.*parity"; ru_dir = Down_is_bad; ru_pct = 1.0 };
    (* continuous-optimization service budgets: ingest throughput may
       not collapse, the sketch may not start thrashing (evictions are
       deterministic for a fixed tape/config, so a jump is a real
       retention regression), and the sharded-merge parity / memory
       bound flags dropping from 1 to 0 always fire. *)
    { ru_path = "service.ingest_lines_per_s"; ru_dir = Down_is_bad; ru_pct = 40.0 };
    { ru_path = "service.sketch_evictions"; ru_dir = Up_is_bad; ru_pct = 50.0 };
    { ru_path = "service.*identical"; ru_dir = Down_is_bad; ru_pct = 1.0 };
    { ru_path = "service.*within_budget"; ru_dir = Down_is_bad; ru_pct = 1.0 };
  ]

(* Rules whose glob matches no metric path of [record] — a budget rule
   that can never fire, usually a typo'd path.  bstat warns on these so
   a silently-dead gate is visible. *)
let unmatched_rules ~(rules : rule list) (record : Json.t) : rule list =
  let paths = List.map fst (flatten record) in
  List.filter
    (fun r -> not (List.exists (glob_match r.ru_path) paths))
    rules

(* ---- the check itself ---- *)

type verdict = {
  v_rule : rule;
  v_path : string;
  v_baseline : float; (* mean over the baseline window *)
  v_runs : int; (* baseline runs that carried the metric *)
  v_latest : float;
  v_change_pct : float;
}

let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

(* Check [latest] against the rolling baseline: for every rule, every
   path of [latest] matching it is compared to the mean of that path
   over the baseline records that carry it.  A path absent from every
   baseline record is new — nothing to regress against — and a baseline
   mean of exactly 0 only fires for Up_is_bad when the latest value is
   positive (percent change from zero is undefined; any appearance of a
   cost where there was none counts as worse). *)
let check ~(rules : rule list) ~(baseline : Json.t list) (latest : Json.t) :
    verdict list =
  let base_flat = List.map flatten baseline in
  let latest_flat = flatten latest in
  List.concat_map
    (fun rule ->
      List.filter_map
        (fun (path, v) ->
          if not (glob_match rule.ru_path path) then None
          else
            let samples =
              List.filter_map (fun f -> List.assoc_opt path f) base_flat
            in
            if samples = [] then None
            else
              let b = mean samples in
              let change =
                if b <> 0.0 then 100.0 *. (v -. b) /. Float.abs b
                else if v > 0.0 then 100.0
                else if v < 0.0 then -100.0
                else 0.0
              in
              let bad =
                match rule.ru_dir with
                | Up_is_bad -> change > rule.ru_pct
                | Down_is_bad -> change < -.rule.ru_pct
              in
              if bad then
                Some
                  {
                    v_rule = rule;
                    v_path = path;
                    v_baseline = b;
                    v_runs = List.length samples;
                    v_latest = v;
                    v_change_pct = change;
                  }
              else None)
        latest_flat)
    rules

let pp_verdict ppf v =
  Fmt.pf ppf
    "REGRESSION %s: %a -> %a (%+.1f%% vs mean of %d baseline run%s, \
     threshold %a)"
    v.v_path pp_num v.v_baseline pp_num v.v_latest v.v_change_pct v.v_runs
    (if v.v_runs = 1 then "" else "s")
    pp_rule v.v_rule
