(* Typed metrics registry: counters, gauges and distributions, keyed by
   a dotted name ("pass.icf.folded", "sim.l1i_misses", ...).

   Naming convention (documented in DESIGN.md): lowercase dotted paths,
   first segment the owning subsystem (pass/profile/sim/rewrite/bench),
   counters named after the thing counted, never the unit.  A name is
   bound to one metric kind for the registry's lifetime; re-registering
   it with another kind raises [Invalid_argument] so type confusion is a
   bug at the recording site, not a silently corrupted manifest. *)

type dist = {
  mutable d_n : int;
  mutable d_sum : float;
  mutable d_min : float;
  mutable d_max : float;
}

type value = Counter of int ref | Gauge of float ref | Dist of dist

(* The mutex makes every recording and snapshot operation atomic, so a
   registry shared across domains never tears a count.  The parallel
   rewriter still prefers one registry per domain (uncontended locks)
   merged at pool join; the lock is the safety net for stray shared
   writers, not the scaling strategy. *)
type t = { tbl : (string, value) Hashtbl.t; m : Mutex.t }

let create () = { tbl = Hashtbl.create 64; m = Mutex.create () }

let locked t f = Mutex.protect t.m f

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Dist _ -> "distribution"

let mismatch name v wanted =
  invalid_arg
    (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_name v) wanted)

let incr t ?(by = 1) name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Counter r) -> r := !r + by
      | Some v -> mismatch name v "counter"
      | None -> Hashtbl.replace t.tbl name (Counter (ref by)))

let set t name x =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Gauge r) -> r := x
      | Some v -> mismatch name v "gauge"
      | None -> Hashtbl.replace t.tbl name (Gauge (ref x)))

let observe t name x =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Dist d) ->
          d.d_n <- d.d_n + 1;
          d.d_sum <- d.d_sum +. x;
          if x < d.d_min then d.d_min <- x;
          if x > d.d_max then d.d_max <- x
      | Some v -> mismatch name v "distribution"
      | None ->
          Hashtbl.replace t.tbl name
            (Dist { d_n = 1; d_sum = x; d_min = x; d_max = x }))

let counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with Some (Counter r) -> !r | _ -> 0)

let gauge t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with Some (Gauge r) -> !r | _ -> 0.0)

let dist t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with Some (Dist d) -> Some d | _ -> None)

(* Fold [other] into [into]: counters add, distributions combine, a gauge
   takes [other]'s (most recent) value.  Used to aggregate per-stage,
   per-domain or per-workload registries into one run-level registry.
   Only [into] is locked: [other] is expected to be quiescent at merge
   time (a finished shard), and locking both would risk a lock-order
   deadlock when two registries merge into each other concurrently. *)
let merge ~into other =
  locked into (fun () ->
      Hashtbl.iter
        (fun name v ->
          match (Hashtbl.find_opt into.tbl name, v) with
          | None, Counter r -> Hashtbl.replace into.tbl name (Counter (ref !r))
          | None, Gauge r -> Hashtbl.replace into.tbl name (Gauge (ref !r))
          | None, Dist d ->
              Hashtbl.replace into.tbl name
                (Dist { d_n = d.d_n; d_sum = d.d_sum; d_min = d.d_min; d_max = d.d_max })
          | Some (Counter a), Counter b -> a := !a + !b
          | Some (Gauge a), Gauge b -> a := !b
          | Some (Dist a), Dist b ->
              a.d_n <- a.d_n + b.d_n;
              a.d_sum <- a.d_sum +. b.d_sum;
              if b.d_min < a.d_min then a.d_min <- b.d_min;
              if b.d_max > a.d_max then a.d_max <- b.d_max
          | Some existing, _ -> mismatch name existing (kind_name v))
        other.tbl)

(* Snapshot of every counter, for computing per-span deltas. *)
let counters t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name v acc ->
          match v with Counter r -> (name, !r) :: acc | _ -> acc)
        t.tbl [])

(* Snapshot of every gauge, sorted by name. *)
let gauges t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name v acc -> match v with Gauge r -> (name, !r) :: acc | _ -> acc)
        t.tbl [])
  |> List.sort compare

(* Counters that moved since [before] (a [counters] snapshot). *)
let counter_delta t ~before =
  let old = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace old k v) before;
  counters t
  |> List.filter_map (fun (k, v) ->
         let prev = Option.value ~default:0 (Hashtbl.find_opt old k) in
         if v <> prev then Some (k, v - prev) else None)
  |> List.sort compare

let sorted_bindings t =
  locked t (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_json t : Json.t =
  Json.Obj
    (List.map
       (fun (name, v) ->
         let body =
           match v with
           | Counter r -> [ ("type", Json.String "counter"); ("value", Json.Int !r) ]
           | Gauge r -> [ ("type", Json.String "gauge"); ("value", Json.Float !r) ]
           | Dist d ->
               [
                 ("type", Json.String "dist");
                 ("n", Json.Int d.d_n);
                 ("sum", Json.Float d.d_sum);
                 ("min", Json.Float d.d_min);
                 ("max", Json.Float d.d_max);
               ]
         in
         (name, Json.Obj body))
       (sorted_bindings t))

let of_json (j : Json.t) : t =
  let t = create () in
  (match j with
  | Json.Obj fields ->
      List.iter
        (fun (name, body) ->
          match Json.get_string (Json.member "type" body) with
          | Some "counter" ->
              incr t name
                ~by:(Option.value ~default:0 (Json.get_int (Json.member "value" body)))
          | Some "gauge" ->
              set t name
                (Option.value ~default:0.0 (Json.get_float (Json.member "value" body)))
          | Some "dist" ->
              let f k = Option.value ~default:0.0 (Json.get_float (Json.member k body)) in
              let n = Option.value ~default:0 (Json.get_int (Json.member "n" body)) in
              Hashtbl.replace t.tbl name
                (Dist { d_n = n; d_sum = f "sum"; d_min = f "min"; d_max = f "max" })
          | _ -> ())
        fields
  | _ -> ());
  t
