(* Static linker for BELF objects.

   Produces an executable with the properties BOLT depends on:

   - the symbol table is always preserved (function discovery);
   - with [emit_relocs] the linker keeps its relocations in the output,
     which is what enables BOLT's relocations mode — except PIC jump-table
     difference entries, which are resolved and then dropped, and
     assembler-resolved local calls, which never existed as relocations;
   - calls to [f$plt] symbols get a synthesized PLT stub (a [jmp_mem]
     through a GOT slot) so the plt pass has indirection to remove;
   - optional linker-level identical-code folding over function sections,
     deliberately more conservative than BOLT's (no jump tables, no EH);
   - an optional explicit function order (the HFSort-at-link-time baseline
     of the paper's evaluation).

   Layout units are input sections, like a real linker: function
   reordering is only possible for objects assembled one-function-per-
   section. *)

open Bolt_obj
open Types

type options = {
  emit_relocs : bool;
  icf : bool;
  func_order : string list option;
  entry : string;
}

let default_options =
  { emit_relocs = false; icf = false; func_order = None; entry = "main" }

exception Link_error of string

let err fmt = Fmt.kstr (fun s -> raise (Link_error s)) fmt

(* An input section together with its origin and attached metadata. *)
type chunk = {
  ch_obj : int;
  ch_name : string; (* input section name *)
  ch_kind : section_kind;
  ch_data : Bytes.t;
  ch_size : int;
  ch_syms : symbol list; (* symbols defined in this section *)
  ch_relocs : reloc list; (* relocations patching this section *)
  ch_fdes : fde list;
  ch_lsdas : lsda list;
  ch_dbgs : dbg list;
  mutable ch_out_off : int; (* assigned offset within the output section *)
  mutable ch_folded_into : int option; (* ICF: index of surviving chunk *)
}

type stats = {
  mutable icf_folded : int;
  mutable icf_bytes_saved : int;
  mutable plt_stubs : int;
}

let align a off = if a <= 1 then off else (off + a - 1) / a * a

let collect_chunks objs =
  let chunks = ref [] in
  List.iteri
    (fun oi (o : Objfile.t) ->
      List.iter
        (fun (s : section) ->
          let in_sec (name : string) = name = s.sec_name in
          let syms = List.filter (fun sy -> in_sec sy.sym_section) o.symbols in
          let relocs = List.filter (fun r -> in_sec r.rel_section) o.relocs in
          let fdes, lsdas, dbgs =
            if s.sec_kind = Text then
              let fnames =
                List.filter (fun sy -> sy.sym_kind = Func) syms
                |> List.map (fun sy -> sy.sym_name)
              in
              ( List.filter (fun f -> List.mem f.fde_func fnames) o.fdes,
                List.filter (fun l -> List.mem l.lsda_func fnames) o.lsdas,
                List.filter (fun d -> List.mem d.dbg_func fnames) o.dbgs )
            else ([], [], [])
          in
          chunks :=
            {
              ch_obj = oi;
              ch_name = s.sec_name;
              ch_kind = s.sec_kind;
              ch_data = s.sec_data;
              ch_size = s.sec_size;
              ch_syms = syms;
              ch_relocs = relocs;
              ch_fdes = fdes;
              ch_lsdas = lsdas;
              ch_dbgs = dbgs;
              ch_out_off = -1;
              ch_folded_into = None;
            }
            :: !chunks)
        o.sections)
    objs;
  Array.of_list (List.rev !chunks)

(* ---- linker ICF ---- *)

(* Function sections eligible for folding: single function symbol, no EH,
   and nothing in the program points into the middle of the function
   (a reloc against the function symbol with a nonzero addend indicates a
   jump table or similar). *)
let run_icf chunks stats =
  let mid_referenced = Hashtbl.create 64 in
  Array.iter
    (fun ch ->
      List.iter
        (fun r -> if r.rel_addend <> 0 then Hashtbl.replace mid_referenced r.rel_sym ())
        ch.ch_relocs)
    chunks;
  let key ch =
    let rs =
      List.map
        (fun r ->
          (r.rel_offset, reloc_kind_code r.rel_kind, r.rel_sym, r.rel_addend, r.rel_end))
        ch.ch_relocs
    in
    (Bytes.to_string ch.ch_data, rs)
  in
  let seen = Hashtbl.create 64 in
  Array.iteri
    (fun i ch ->
      let eligible =
        ch.ch_kind = Text
        && String.length ch.ch_name > 6
        && String.sub ch.ch_name 0 6 = ".text."
        && ch.ch_lsdas = []
        && List.for_all
             (fun sy -> not (Hashtbl.mem mid_referenced sy.sym_name))
             ch.ch_syms
        && List.for_all (fun r -> r.rel_pic_base = "") ch.ch_relocs
      in
      if eligible then begin
        let k = key ch in
        match Hashtbl.find_opt seen k with
        | Some j ->
            ch.ch_folded_into <- Some j;
            stats.icf_folded <- stats.icf_folded + 1;
            stats.icf_bytes_saved <- stats.icf_bytes_saved + ch.ch_size
        | None -> Hashtbl.add seen k i
      end)
    chunks

(* ---- main entry ---- *)

let link ?(options = default_options) (objs : Objfile.t list) : Objfile.t * stats =
  let stats = { icf_folded = 0; icf_bytes_saved = 0; plt_stubs = 0 } in
  let chunks = collect_chunks objs in
  if options.icf then run_icf chunks stats;

  (* PLT discovery: every reloc target of the form f$plt. *)
  let plt_syms = Hashtbl.create 16 in
  Array.iter
    (fun ch ->
      List.iter
        (fun r ->
          let s = r.rel_sym in
          let n = String.length s in
          if n > 4 && String.sub s (n - 4) 4 = "$plt" then
            Hashtbl.replace plt_syms (String.sub s 0 (n - 4)) ())
        ch.ch_relocs)
    chunks;
  let plt_names = Hashtbl.fold (fun k () acc -> k :: acc) plt_syms [] |> List.sort compare in
  stats.plt_stubs <- List.length plt_names;

  (* Layout of .text: optionally honouring an explicit function order. *)
  let live i = chunks.(i).ch_folded_into = None in
  let text_idx = ref [] in
  Array.iteri (fun i ch -> if ch.ch_kind = Text && live i then text_idx := i :: !text_idx) chunks;
  let text_idx = List.rev !text_idx in
  let text_idx =
    match options.func_order with
    | None -> text_idx
    | Some order ->
        let by_func = Hashtbl.create 64 in
        List.iter
          (fun i ->
            List.iter
              (fun sy ->
                if sy.sym_kind = Func then Hashtbl.replace by_func sy.sym_name i)
              chunks.(i).ch_syms)
          text_idx;
        let placed = Hashtbl.create 64 in
        let first =
          List.filter_map
            (fun f ->
              match Hashtbl.find_opt by_func f with
              | Some i when not (Hashtbl.mem placed i) ->
                  Hashtbl.replace placed i ();
                  Some i
              | _ -> None)
            order
        in
        first @ List.filter (fun i -> not (Hashtbl.mem placed i)) text_idx
  in
  let text_size = ref 0 in
  List.iter
    (fun i ->
      let ch = chunks.(i) in
      text_size := align Layout.func_align !text_size;
      ch.ch_out_off <- !text_size;
      text_size := !text_size + ch.ch_size)
    text_idx;
  (* Folded chunks land on their survivor. *)
  Array.iter
    (fun ch ->
      match ch.ch_folded_into with
      | Some j -> ch.ch_out_off <- chunks.(j).ch_out_off
      | None -> ())
    chunks;

  let layout_kind kind =
    let idx = ref [] in
    Array.iteri
      (fun i ch -> if ch.ch_kind = kind && live i then idx := i :: !idx)
      chunks;
    let idx = List.rev !idx in
    let size = ref 0 in
    List.iter
      (fun i ->
        let ch = chunks.(i) in
        size := align 16 !size;
        ch.ch_out_off <- !size;
        size := !size + ch.ch_size)
      idx;
    (idx, !size)
  in
  let ro_idx, ro_size = layout_kind Rodata in
  let data_idx, data_size = layout_kind Data in
  let _bss_idx, bss_size = layout_kind Bss in

  (* Addresses. *)
  let text_addr = Layout.text_base in
  let plt_addr = align 16 (text_addr + !text_size) in
  let plt_size = 6 * List.length plt_names in
  let ro_addr = Layout.rodata_base in
  let got_addr = Layout.data_base in
  let got_size = 8 * List.length plt_names in
  let data_addr = align 16 (got_addr + got_size) in
  let bss_addr = align 16 (data_addr + data_size) in
  if plt_addr + plt_size > ro_addr then err "text segment overflow";
  if ro_addr + ro_size > got_addr then err "rodata segment overflow";

  (* Global symbol table: name -> address (and keep records for output). *)
  let addr_of_chunk ch =
    match ch.ch_kind with
    | Text -> text_addr + ch.ch_out_off
    | Rodata -> ro_addr + ch.ch_out_off
    | Data -> data_addr + ch.ch_out_off
    | Bss -> bss_addr + ch.ch_out_off
  in
  let sym_addr = Hashtbl.create 256 in
  let out_symbols = ref [] in
  let define name addr = Hashtbl.replace sym_addr name addr in
  let out_sec_name ch =
    match ch.ch_kind with
    | Text -> ".text"
    | Rodata -> ".rodata"
    | Data -> ".data"
    | Bss -> ".bss"
  in
  Array.iter
    (fun ch ->
      List.iter
        (fun sy ->
          let addr = addr_of_chunk ch + sy.sym_value in
          (if Hashtbl.mem sym_addr sy.sym_name then
             match sy.sym_bind with
             | Global -> err "duplicate symbol %s" sy.sym_name
             | Local -> err "colliding local symbol %s (must be unique program-wide)" sy.sym_name);
          define sy.sym_name addr;
          out_symbols :=
            { sy with sym_value = addr; sym_section = out_sec_name ch } :: !out_symbols)
        ch.ch_syms)
    chunks;

  (* PLT stubs and GOT slots. *)
  let plt_data = Bytes.make plt_size '\x00' in
  let got_data = Bytes.make got_size '\x00' in
  let got_relocs = ref [] in
  List.iteri
    (fun k f ->
      let stub_addr = plt_addr + (6 * k) in
      let slot_addr = got_addr + (8 * k) in
      define (f ^ "$plt") stub_addr;
      define (f ^ "$got") slot_addr;
      out_symbols :=
        {
          sym_name = f ^ "$plt";
          sym_kind = Func;
          sym_bind = Local;
          sym_section = ".plt";
          sym_value = stub_addr;
          sym_size = 6;
        }
        :: {
             sym_name = f ^ "$got";
             sym_kind = Object;
             sym_bind = Local;
             sym_section = ".got";
             sym_value = slot_addr;
             sym_size = 8;
           }
        :: !out_symbols;
      ignore
        (Bolt_isa.Codec.encode_into plt_data (6 * k)
           (Bolt_isa.Insn.Jmp_mem (Bolt_isa.Insn.Imm slot_addr)));
      (* GOT slot content: address of f, patched below once f resolves. *)
      got_relocs :=
        {
          rel_section = ".got";
          rel_offset = 8 * k;
          rel_kind = Abs64;
          rel_sym = f;
          rel_addend = 0;
          rel_end = 0;
          rel_pic_base = "";
        }
        :: !got_relocs)
    plt_names;

  (* Section-name symbols used by relocations (e.g. jump-table refs could
     use them); map input section names of each object to addresses. *)
  let lookup obj_id name =
    match Hashtbl.find_opt sym_addr name with
    | Some a -> Some a
    | None ->
        (* section symbol: find that object's chunk *)
        let found = ref None in
        Array.iter
          (fun ch ->
            if ch.ch_obj = obj_id && ch.ch_name = name && ch.ch_folded_into = None then
              found := Some (addr_of_chunk ch))
          chunks;
        !found
  in

  (* Build output section contents. *)
  let build_bytes idx total =
    let b = Bytes.make total '\x00' in
    List.iter
      (fun i ->
        let ch = chunks.(i) in
        Bytes.blit ch.ch_data 0 b ch.ch_out_off ch.ch_size)
      idx;
    b
  in
  let text_bytes = Bytes.make !text_size '\x02' in
  List.iter
    (fun i ->
      let ch = chunks.(i) in
      Bytes.blit ch.ch_data 0 text_bytes ch.ch_out_off ch.ch_size)
    text_idx;
  let ro_bytes = build_bytes ro_idx ro_size in
  let data_bytes = build_bytes data_idx data_size in

  let out_sec_for ch =
    match ch.ch_kind with
    | Text -> (".text", text_bytes, text_addr)
    | Rodata -> (".rodata", ro_bytes, ro_addr)
    | Data -> (".data", data_bytes, data_addr)
    | Bss -> (".bss", Bytes.empty, bss_addr)
  in

  (* Apply relocations. *)
  let kept_relocs = ref [] in
  let patch bytes off kind v =
    match kind with
    | Abs64 -> Bytes.set_int64_le bytes off (Int64.of_int v)
    | Abs32 | Rel32 ->
        Bytes.set bytes off (Char.chr (v land 0xff));
        Bytes.set bytes (off + 1) (Char.chr ((v asr 8) land 0xff));
        Bytes.set bytes (off + 2) (Char.chr ((v asr 16) land 0xff));
        Bytes.set bytes (off + 3) (Char.chr ((v asr 24) land 0xff))
    | Rel8 ->
        if not (Bolt_isa.Codec.fits_i8 v) then err "rel8 overflow";
        Bytes.set bytes off (Char.chr (v land 0xff))
  in
  Array.iter
    (fun ch ->
      if ch.ch_folded_into = None then
        List.iter
          (fun r ->
            let out_name, out_bytes, out_addr = out_sec_for ch in
            let field_off = ch.ch_out_off + r.rel_offset in
            let field_addr = out_addr + field_off in
            let s =
              match lookup ch.ch_obj r.rel_sym with
              | Some a -> a
              | None -> err "undefined symbol %s" r.rel_sym
            in
            let v =
              match r.rel_kind with
              | Abs64 | Abs32 ->
                  if r.rel_pic_base <> "" then
                    match lookup ch.ch_obj r.rel_pic_base with
                    | Some base -> s + r.rel_addend - base
                    | None -> err "undefined pic base %s" r.rel_pic_base
                  else s + r.rel_addend
              | Rel32 | Rel8 -> s + r.rel_addend - (field_addr + r.rel_end)
            in
            if ch.ch_kind <> Bss then patch out_bytes field_off r.rel_kind v;
            if options.emit_relocs && r.rel_pic_base = "" then
              kept_relocs :=
                { r with rel_section = out_name; rel_offset = field_off } :: !kept_relocs)
          ch.ch_relocs)
    chunks;
  (* GOT relocations. *)
  List.iter
    (fun r ->
      let s =
        match Hashtbl.find_opt sym_addr r.rel_sym with
        | Some a -> a
        | None -> err "undefined plt target %s" r.rel_sym
      in
      patch got_data r.rel_offset Abs64 s;
      if options.emit_relocs then kept_relocs := r :: !kept_relocs)
    !got_relocs;

  (* FDEs, LSDAs and line tables, rebased to addresses. *)
  let fdes = ref [] in
  let lsdas = ref [] in
  let dbgs = ref [] in
  Array.iter
    (fun ch ->
      if ch.ch_folded_into = None then begin
        List.iter
          (fun f ->
            let base =
              match Hashtbl.find_opt sym_addr f.fde_func with
              | Some a -> a
              | None -> addr_of_chunk ch + f.fde_addr
            in
            fdes := { f with fde_addr = base } :: !fdes)
          ch.ch_fdes;
        List.iter
          (fun l ->
            let base =
              match Hashtbl.find_opt sym_addr l.lsda_func with
              | Some a -> a
              | None -> addr_of_chunk ch + l.lsda_fn_addr
            in
            lsdas := { l with lsda_fn_addr = base } :: !lsdas)
          ch.ch_lsdas;
        List.iter
          (fun d ->
            let base =
              match Hashtbl.find_opt sym_addr d.dbg_func with
              | Some a -> a
              | None -> addr_of_chunk ch + d.dbg_addr
            in
            dbgs := { d with dbg_addr = base } :: !dbgs)
          ch.ch_dbgs
      end)
    chunks;

  let entry =
    match Hashtbl.find_opt sym_addr options.entry with
    | Some a -> a
    | None -> err "entry symbol %s undefined" options.entry
  in
  let sections =
    [
      { sec_name = ".text"; sec_kind = Text; sec_addr = text_addr; sec_data = text_bytes; sec_size = !text_size };
    ]
    @ (if plt_size > 0 then
         [ { sec_name = ".plt"; sec_kind = Text; sec_addr = plt_addr; sec_data = plt_data; sec_size = plt_size } ]
       else [])
    @ (if ro_size > 0 then
         [ { sec_name = ".rodata"; sec_kind = Rodata; sec_addr = ro_addr; sec_data = ro_bytes; sec_size = ro_size } ]
       else [])
    @ (if got_size > 0 then
         [ { sec_name = ".got"; sec_kind = Data; sec_addr = got_addr; sec_data = got_data; sec_size = got_size } ]
       else [])
    @ (if data_size > 0 then
         [ { sec_name = ".data"; sec_kind = Data; sec_addr = data_addr; sec_data = data_bytes; sec_size = data_size } ]
       else [])
    @
    if bss_size > 0 then
      [ { sec_name = ".bss"; sec_kind = Bss; sec_addr = bss_addr; sec_data = Bytes.empty; sec_size = bss_size } ]
    else []
  in
  ( Objfile.stamp_fingerprints
      (Objfile.stamp_build_id
         {
           Objfile.kind = Objfile.Executable;
           entry;
           build_id = "";
           sections;
           symbols = List.rev !out_symbols;
           relocs = List.rev !kept_relocs;
           fdes = List.rev !fdes;
           lsdas = List.rev !lsdas;
           dbgs = List.rev !dbgs;
           fingerprints = [];
         }),
    stats )
