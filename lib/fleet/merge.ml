(* Fleet profile merger — the merge-fdata analog (§7: BOLT in the data
   center consumes samples aggregated across thousands of hosts, not one
   run's profile).

   Semantics: each shard's counts are scaled once by

     scale = header weight x CLI weight override x decay

   with decay = exp(-lambda * age), age measured back from the newest
   shard timestamp; then all scaled records are summed with saturating
   64-bit addition and the result is emitted in canonical order
   ([Fdata.normalize]).

   Determinism: scaling is per-shard (no cross-shard state beyond the
   newest timestamp, itself a max — order-independent), saturating add of
   non-negative counts is commutative and associative, and the output is
   sorted — so the merged bytes are identical for any shard ordering and
   any [jobs].  The parallel fold below partitions shards over a domain
   pool purely for throughput. *)

module Fdata = Bolt_profile.Fdata
module Obs = Bolt_obs.Obs

type loaded = { sh_name : string; sh_prof : Fdata.t }

type options = {
  weights : (string * float) list; (* host -> weight override (multiplies) *)
  decay : float option; (* lambda, per timestamp unit *)
  expect_build_id : string option; (* target revision for staleness checks *)
  jobs : int; (* worker domains for the parallel fold *)
}

let default_options =
  { weights = []; decay = None; expect_build_id = None; jobs = 1 }

let shard_of_profile ~name prof = { sh_name = name; sh_prof = prof }

let load_shard path =
  { sh_name = Filename.basename path; sh_prof = Fdata.load path }

(* One shard the loader refused: which file, and why. *)
type skip = { sk_path : string; sk_reason : string }

let pp_skip ppf s = Fmt.pf ppf "skipped shard %s: %s" s.sk_path s.sk_reason

(* Load a shard set, skipping the unusable ones instead of aborting the
   whole merge (a fleet aggregation must survive one torn file).  A shard
   is skipped when the file is unreadable, or when parsing salvaged
   nothing at all — warnings with zero surviving records means the file
   is not an fdata profile, not a profile with a few bad lines.

   [~strict:true] restores fail-fast: the first unreadable file raises
   [Sys_error], the first malformed record raises [Fdata.Bad_format]. *)
let load_shards ?(strict = false) paths : loaded list * skip list =
  let skips = ref [] in
  let loaded =
    List.filter_map
      (fun path ->
        match Fdata.load_with_warnings ~strict path with
        | prof, warnings ->
            let records =
              List.length prof.Fdata.branches
              + List.length prof.Fdata.ranges
              + List.length prof.Fdata.samples
            in
            if warnings <> [] && records = 0 then begin
              skips :=
                {
                  sk_path = path;
                  sk_reason =
                    Fmt.str "no usable records (%d malformed line%s, first: %a)"
                      (List.length warnings)
                      (if List.length warnings = 1 then "" else "s")
                      Fdata.pp_warning (List.hd warnings);
                }
                :: !skips;
              None
            end
            else Some { sh_name = Filename.basename path; sh_prof = prof }
        | exception Sys_error msg ->
            if strict then raise (Sys_error msg);
            skips := { sk_path = path; sk_reason = msg } :: !skips;
            None)
      paths
  in
  (loaded, List.rev !skips)

let header sh = Option.value ~default:Fdata.no_header sh.sh_prof.Fdata.header

(* Host label used for --weight matching: the header's host when present,
   the shard (file) name otherwise. *)
let host_of sh =
  let h = header sh in
  if h.Fdata.hd_host <> "" then h.Fdata.hd_host else sh.sh_name

let newest_timestamp shards =
  List.fold_left (fun a sh -> max a (header sh).Fdata.hd_timestamp) 0 shards

(* The most common non-empty shard build-id; ties break to the
   lexicographically smallest so the choice never depends on input
   order.  "" when no shard is stamped. *)
let modal_build_id shards =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun sh ->
      let id = (header sh).Fdata.hd_build_id in
      if id <> "" then
        Hashtbl.replace tally id (1 + try Hashtbl.find tally id with Not_found -> 0))
    shards;
  Hashtbl.fold
    (fun id n best ->
      match best with
      | Some (bid, bn) when bn > n || (bn = n && bid <= id) -> best
      | _ -> Some (id, n))
    tally None
  |> function
  | Some (id, _) -> id
  | None -> ""

let scale_of opts ~newest sh =
  let h = header sh in
  let override =
    match List.assoc_opt (host_of sh) opts.weights with Some w -> w | None -> 1.0
  in
  let decay =
    match opts.decay with
    | Some lambda when h.Fdata.hd_timestamp > 0 ->
        exp (-.lambda *. float_of_int (newest - h.Fdata.hd_timestamp))
    | _ -> 1.0
  in
  h.Fdata.hd_weight *. override *. decay

let scale_profile (p : Fdata.t) (f : float) : Fdata.t =
  if f = 1.0 then p
  else
    {
      p with
      Fdata.branches =
        List.map
          (fun (b : Fdata.branch) ->
            {
              b with
              Fdata.br_count = Fdata.sat_scale b.br_count f;
              br_mispreds = Fdata.sat_scale b.br_mispreds f;
            })
          p.Fdata.branches;
      ranges =
        List.map
          (fun (r : Fdata.range) ->
            { r with Fdata.rg_count = Fdata.sat_scale r.rg_count f })
          p.Fdata.ranges;
      samples =
        List.map
          (fun (s : Fdata.sample) ->
            { s with Fdata.sm_count = Fdata.sat_scale s.sm_count f })
          p.Fdata.samples;
    }

(* Provenance of the merged profile: a synthetic "fleet" host stamped
   with the target (or modal) build-id, the newest shard timestamp and
   the saturating event total. *)
let merged_header opts shards =
  let events =
    List.fold_left
      (fun a sh ->
        let h = header sh in
        let ev =
          if h.Fdata.hd_events > 0L then h.Fdata.hd_events
          else sh.sh_prof.Fdata.total_samples
        in
        Fdata.sat_add a ev)
      0L shards
  in
  {
    Fdata.hd_host = "fleet";
    hd_build_id =
      (match opts.expect_build_id with
      | Some id -> id
      | None -> modal_build_id shards);
    hd_timestamp = newest_timestamp shards;
    hd_events = events;
    hd_weight = 1.0;
  }

(* Recover stale shards against the target revision before merging:
   every shard whose build-id disagrees with [build_id] and that carries
   its own fingerprints is re-keyed through [Stale_match], so its events
   survive the merge instead of polluting it with dead names/offsets.
   Returns the (possibly rewritten) shards plus, per recovered shard,
   the host label and its recovery breakdown — the per-host series the
   fleet health monitor folds over ticks. *)
let recover_stale_each ~(fingerprints : Bolt_obj.Fingerprint.t)
    ~(build_id : string) (shards : loaded list) :
    loaded list * (string * Bolt_profile.Stale_match.stats) list =
  if fingerprints = [] || build_id = "" then (shards, [])
  else begin
    let per_shard = ref [] in
    let shards' =
      List.map
        (fun sh ->
          match
            Bolt_profile.Stale_match.recover_if_stale ~fingerprints ~build_id
              sh.sh_prof
          with
          | Some (p, st) ->
              per_shard := (host_of sh, st) :: !per_shard;
              { sh with sh_prof = p }
          | None -> sh)
        shards
    in
    (shards', List.rev !per_shard)
  end

(* The aggregate view of [recover_stale_each]: one summed breakdown,
   [None] when nothing needed recovering. *)
let recover_stale ~fingerprints ~build_id (shards : loaded list) :
    loaded list * Bolt_profile.Stale_match.stats option =
  let shards', per_shard = recover_stale_each ~fingerprints ~build_id shards in
  ( shards',
    match List.map snd per_shard with
    | [] -> None
    | st :: rest -> Some (List.fold_left Bolt_profile.Stale_match.add_stats st rest)
  )

let merge ?obs ?(opts = default_options) (shards : loaded list) : Fdata.t =
  let obs = match obs with Some o -> o | None -> Obs.null () in
  Obs.span obs "fleet.merge" (fun () ->
      let newest = newest_timestamp shards in
      let jobs = max 1 opts.jobs in
      (* per-domain accumulators; the scaled shard lists are folded
         domain-locally, concatenated in fixed domain order, and
         canonicalized — grouping cannot change a saturating sum of
         non-negatives, so -j only affects wall time *)
      let acc = Array.make jobs ([] : Fdata.t list) in
      let pool = Bolt_core.Pool.create ~jobs () in
      let worker dom sh =
        let scaled = scale_profile sh.sh_prof (scale_of opts ~newest sh) in
        acc.(dom) <- scaled :: acc.(dom)
      in
      ignore (Bolt_core.Pool.run pool ~worker (Array.of_list shards));
      let parts = Array.to_list acc |> List.concat in
      let mheader = merged_header opts shards in
      (* the merged profile describes the target (or modal) revision:
         carry that revision's fingerprints forward, from the
         lexicographically-first shard that has them so the choice never
         depends on input order *)
      let fingerprints =
        List.filter
          (fun sh ->
            (header sh).Fdata.hd_build_id = mheader.Fdata.hd_build_id
            && sh.sh_prof.Fdata.fingerprints <> [])
          shards
        |> List.sort (fun a b -> compare a.sh_name b.sh_name)
        |> function
        | [] -> []
        | sh :: _ -> sh.sh_prof.Fdata.fingerprints
      in
      let merged =
        Fdata.normalize
          {
            Fdata.lbr = List.for_all (fun p -> p.Fdata.lbr) parts;
            header = Some mheader;
            branches = List.concat_map (fun p -> p.Fdata.branches) parts;
            ranges = List.concat_map (fun p -> p.Fdata.ranges) parts;
            samples = List.concat_map (fun p -> p.Fdata.samples) parts;
            total_samples = 0L (* recomputed by normalize *);
            fingerprints;
          }
      in
      Obs.incr obs ~by:(List.length shards) "fleet.shards";
      Obs.incr obs
        ~by:(List.length merged.Fdata.branches)
        "fleet.merged_branch_records";
      merged)

(* ---- streaming ingest ----

   [merge] above materializes every shard's record lists before folding
   them; ingesting million-line fleet shards that way spends most of its
   time consing and collecting records that exist only to be summed.
   [merge_stream] folds each record straight into one global accumulator
   as the iocore lexer produces it, via [Fdata.scan]:

   - pass 1 lexes every shard with no-op record callbacks, which is how
     the headers, fingerprints and event totals are discovered — scales
     depend on the newest timestamp {e across} shards, so no record can
     be scaled until every header has been seen;
   - pass 2 lexes again, scaling each record at stream time and bumping
     it into the accumulator table.

   Scaling stays per-record-then-add, exactly like the batch path —
   [sat_scale (a + b) f] is not [sat_add (sat_scale a f) (sat_scale b f)]
   — and the accumulator mirrors [Fdata.normalize]'s aggregation, so the
   output is byte-identical to [merge] over the same shards (the iocore
   parity suite holds this). *)

let merge_stream ?obs ?(opts = default_options)
    (shards : (string * string) list) : Fdata.t =
  let obs = match obs with Some o -> o | None -> Obs.null () in
  Obs.span obs "fleet.merge" (fun () ->
      (* pass 1: headers, fingerprints, totals — no record lists *)
      let metas =
        List.map
          (fun (name, text) ->
            let prof, _ = Fdata.scan text in
            { sh_name = name; sh_prof = prof })
          shards
      in
      let newest = newest_timestamp metas in
      let tbl = Hashtbl.create 4096 in
      let bump k c m =
        match Hashtbl.find_opt tbl k with
        | Some (c0, m0) ->
            Hashtbl.replace tbl k (Fdata.sat_add c0 c, Fdata.sat_add m0 m)
        | None -> Hashtbl.add tbl k (c, m)
      in
      let lbr = ref true in
      (* pass 2: scale at stream time, accumulate *)
      List.iter2
        (fun (_, text) meta ->
          if not meta.sh_prof.Fdata.lbr then lbr := false;
          let f = scale_of opts ~newest meta in
          let sc c = if f = 1.0 then c else Fdata.sat_scale c f in
          ignore
            (Fdata.scan
               ~branch:(fun (b : Fdata.branch) ->
                 bump
                   (`B
                     ( b.Fdata.br_from_func,
                       b.Fdata.br_from_off,
                       b.Fdata.br_to_func,
                       b.Fdata.br_to_off ))
                   (sc b.Fdata.br_count) (sc b.Fdata.br_mispreds))
               ~range:(fun (r : Fdata.range) ->
                 bump
                   (`F (r.Fdata.rg_func, r.Fdata.rg_start, r.Fdata.rg_end))
                   (sc r.Fdata.rg_count) 0L)
               ~sample:(fun (s : Fdata.sample) ->
                 bump
                   (`S (s.Fdata.sm_func, s.Fdata.sm_off))
                   (sc s.Fdata.sm_count) 0L)
               text))
        shards metas;
      (* materialize once, in canonical ([Fdata.normalize]) form *)
      let branches = ref [] and ranges = ref [] and samples = ref [] in
      Hashtbl.iter
        (fun k (c, m) ->
          match k with
          | `B (ff, fo, tf, to_) ->
              branches :=
                {
                  Fdata.br_from_func = ff;
                  br_from_off = fo;
                  br_to_func = tf;
                  br_to_off = to_;
                  br_count = c;
                  br_mispreds = m;
                }
                :: !branches
          | `F (f, s, e) ->
              ranges :=
                { Fdata.rg_func = f; rg_start = s; rg_end = e; rg_count = c }
                :: !ranges
          | `S (f, o) ->
              samples :=
                { Fdata.sm_func = f; sm_off = o; sm_count = c } :: !samples)
        tbl;
      let total =
        List.fold_left
          (fun a (b : Fdata.branch) -> Fdata.sat_add a b.Fdata.br_count)
          0L !branches
        |> fun acc ->
        List.fold_left
          (fun a (s : Fdata.sample) -> Fdata.sat_add a s.Fdata.sm_count)
          acc !samples
      in
      let mheader = merged_header opts metas in
      let fingerprints =
        List.filter
          (fun sh ->
            (header sh).Fdata.hd_build_id = mheader.Fdata.hd_build_id
            && sh.sh_prof.Fdata.fingerprints <> [])
          metas
        |> List.sort (fun a b -> compare a.sh_name b.sh_name)
        |> function
        | [] -> []
        | sh :: _ -> sh.sh_prof.Fdata.fingerprints
      in
      let merged =
        {
          Fdata.lbr = !lbr;
          header = Some mheader;
          branches = List.sort compare !branches;
          ranges = List.sort compare !ranges;
          samples = List.sort compare !samples;
          total_samples = total;
          fingerprints = List.sort_uniq compare fingerprints;
        }
      in
      Obs.incr obs ~by:(List.length metas) "fleet.shards";
      Obs.incr obs
        ~by:(List.length merged.Fdata.branches)
        "fleet.merged_branch_records";
      merged)

(* ---- sharded-by-function-key parallel streaming merge ----

   [merge_stream] folds every record into ONE accumulator table, so one
   domain owns the whole reduction no matter how many shards arrive.
   [merge_stream_sharded] partitions the key space by function-name hash
   across the pool's domains instead:

   - stage A lexes shards in parallel; each worker buckets its scaled
     records into per-(worker, partition) tables, where a record's
     partition is [Hashtbl.hash] of its owning function name mod jobs
     ([Hashtbl.hash] on strings is seed-free and deterministic, so the
     partition of a key never varies across runs or domains);
   - stage B folds each partition across all workers' tables — the key
     sets are disjoint by construction, so the folds share nothing and
     need no locks — and materializes its records.

   Saturating addition of non-negative counts is commutative and
   associative and the output is globally sorted, so the bytes are
   identical to [merge_stream] for any shard order and any [jobs] (the
   service suite holds this by property). *)

let merge_stream_sharded ?obs ?(opts = default_options)
    (shards : (string * string) list) : Fdata.t =
  let jobs = max 1 opts.jobs in
  if jobs = 1 || List.length shards <= 1 then merge_stream ?obs ~opts shards
  else begin
    let obs = match obs with Some o -> o | None -> Obs.null () in
    Obs.span obs "fleet.merge" (fun () ->
        (* pass 1: headers, fingerprints, totals — no record lists *)
        let metas =
          List.map
            (fun (name, text) ->
              let prof, _ = Fdata.scan text in
              { sh_name = name; sh_prof = prof })
            shards
        in
        let newest = newest_timestamp metas in
        let nparts = jobs in
        let part_of fn = Hashtbl.hash fn mod nparts in
        let tables =
          Array.init jobs (fun _ ->
              Array.init nparts (fun _ -> Hashtbl.create 1024))
        in
        let bump tbl k c m =
          match Hashtbl.find_opt tbl k with
          | Some (c0, m0) ->
              Hashtbl.replace tbl k (Fdata.sat_add c0 c, Fdata.sat_add m0 m)
          | None -> Hashtbl.add tbl k (c, m)
        in
        (* stage A: parallel lex, bucketing scaled records by partition *)
        let items =
          Array.of_list
            (List.map2 (fun (_, text) meta -> (text, meta)) shards metas)
        in
        let pool = Bolt_core.Pool.create ~jobs () in
        let worker dom (text, meta) =
          let row = tables.(dom) in
          let f = scale_of opts ~newest meta in
          let sc c = if f = 1.0 then c else Fdata.sat_scale c f in
          ignore
            (Fdata.scan
               ~branch:(fun (b : Fdata.branch) ->
                 bump
                   row.(part_of b.Fdata.br_from_func)
                   (`B
                     ( b.Fdata.br_from_func,
                       b.Fdata.br_from_off,
                       b.Fdata.br_to_func,
                       b.Fdata.br_to_off ))
                   (sc b.Fdata.br_count) (sc b.Fdata.br_mispreds))
               ~range:(fun (r : Fdata.range) ->
                 bump
                   row.(part_of r.Fdata.rg_func)
                   (`F (r.Fdata.rg_func, r.Fdata.rg_start, r.Fdata.rg_end))
                   (sc r.Fdata.rg_count) 0L)
               ~sample:(fun (s : Fdata.sample) ->
                 bump
                   row.(part_of s.Fdata.sm_func)
                   (`S (s.Fdata.sm_func, s.Fdata.sm_off))
                   (sc s.Fdata.sm_count) 0L)
               text)
        in
        ignore (Bolt_core.Pool.run pool ~worker items);
        (* stage B: fold each partition across workers — disjoint keys,
           so the per-partition accumulators never race *)
        let parts =
          Array.make nparts
            (([] : Fdata.branch list), ([] : Fdata.range list),
             ([] : Fdata.sample list))
        in
        let fold_worker _dom p =
          let acc = Hashtbl.create 4096 in
          for dom = 0 to jobs - 1 do
            Hashtbl.iter (fun k (c, m) -> bump acc k c m) tables.(dom).(p)
          done;
          let branches = ref [] and ranges = ref [] and samples = ref [] in
          Hashtbl.iter
            (fun k (c, m) ->
              match k with
              | `B (ff, fo, tf, to_) ->
                  branches :=
                    {
                      Fdata.br_from_func = ff;
                      br_from_off = fo;
                      br_to_func = tf;
                      br_to_off = to_;
                      br_count = c;
                      br_mispreds = m;
                    }
                    :: !branches
              | `F (f, s, e) ->
                  ranges :=
                    { Fdata.rg_func = f; rg_start = s; rg_end = e; rg_count = c }
                    :: !ranges
              | `S (f, o) ->
                  samples :=
                    { Fdata.sm_func = f; sm_off = o; sm_count = c } :: !samples)
            acc;
          parts.(p) <- (!branches, !ranges, !samples)
        in
        ignore
          (Bolt_core.Pool.run pool ~worker:fold_worker
             (Array.init nparts Fun.id));
        let all = Array.to_list parts in
        let branches = List.concat_map (fun (b, _, _) -> b) all in
        let ranges = List.concat_map (fun (_, r, _) -> r) all in
        let samples = List.concat_map (fun (_, _, s) -> s) all in
        let total =
          List.fold_left
            (fun a (b : Fdata.branch) -> Fdata.sat_add a b.Fdata.br_count)
            0L branches
          |> fun acc ->
          List.fold_left
            (fun a (s : Fdata.sample) -> Fdata.sat_add a s.Fdata.sm_count)
            acc samples
        in
        let mheader = merged_header opts metas in
        let fingerprints =
          List.filter
            (fun sh ->
              (header sh).Fdata.hd_build_id = mheader.Fdata.hd_build_id
              && sh.sh_prof.Fdata.fingerprints <> [])
            metas
          |> List.sort (fun a b -> compare a.sh_name b.sh_name)
          |> function
          | [] -> []
          | sh :: _ -> sh.sh_prof.Fdata.fingerprints
        in
        let merged =
          {
            Fdata.lbr = List.for_all (fun m -> m.sh_prof.Fdata.lbr) metas;
            header = Some mheader;
            branches = List.sort compare branches;
            ranges = List.sort compare ranges;
            samples = List.sort compare samples;
            total_samples = total;
            fingerprints = List.sort_uniq compare fingerprints;
          }
        in
        Obs.incr obs ~by:(List.length metas) "fleet.shards";
        Obs.incr obs
          ~by:(List.length merged.Fdata.branches)
          "fleet.merged_branch_records";
        merged)
  end

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

(* File-path convenience entry, on the streaming path: each shard's text
   is read once and lexed twice, never parsed into record lists.  With
   [jobs > 1] the accumulator itself is sharded by function key. *)
let merge_paths ?obs ?opts paths : Fdata.t =
  let shards = List.map (fun p -> (Filename.basename p, read_file p)) paths in
  match opts with
  | Some o when o.jobs > 1 -> merge_stream_sharded ?obs ~opts:o shards
  | _ -> merge_stream ?obs ?opts shards
