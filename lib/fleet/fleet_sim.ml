(* Simulated data-center fleet: N hosts serving skewed request streams,
   some still running yesterday's binary (§7's deployment reality —
   aggregated profiles span hosts AND revisions).

   Each host gets its own request tape: same token-stream generator as
   the compiler workloads, but with a per-host seed and a per-host mix so
   different dispatch residues run hot on different hosts.  A configured
   number of hosts run a *stale* build — same sources modulo a
   revision-style perturbation (edited bodies, a few renamed functions,
   helpers the new revision deleted), so shard records drift in every
   way [Stale_match] and [match_profile] are built to tolerate.  Stale hosts also carry older
   timestamps, so age-decay downweights them.

   The "fleet workload" used for evaluation is the concatenation of every
   host's tape: the merged profile should serve it better than any single
   host's shard, which is the subsystem's end-to-end acceptance check. *)

module Fdata = Bolt_profile.Fdata
module Gen = Bolt_workloads.Gen
module Workloads = Bolt_workloads.Workloads
module Machine = Bolt_sim.Machine
module P = Bolt_pipeline.Pipeline
module Obs = Bolt_obs.Obs

type host = {
  h_name : string;
  h_stale : bool; (* running the previous binary revision *)
  h_mix : int; (* percentage of requests biased into this host's windows *)
  h_window : int; (* start of the t-residue window this host heats *)
  h_window2 : int; (* start of its t2-residue window (independent family) *)
  h_seed : int;
  h_timestamp : int; (* when this host's shard was collected *)
}

type config = {
  fc_hosts : int;
  fc_stale : int; (* how many hosts run the stale revision *)
  fc_requests : int; (* tokens per host tape *)
  fc_seed : int;
  fc_params : Gen.params; (* base service shape; forced input-driven *)
  fc_sampling : Machine.sample_cfg;
}

(* Small-but-realistic defaults: an hhvm-shaped service cut down to test
   scale, sampled densely enough that every host yields a useful shard. *)
let default_config =
  {
    fc_hosts = 8;
    fc_stale = 1;
    fc_requests = 3_000;
    fc_seed = 4242;
    fc_params =
      {
        Workloads.hhvm_like with
        Gen.funcs = 320;
        modules = 8;
        input_driven = true;
        dispatch_thresholds = 16;
      };
    fc_sampling = { P.default_sampling with Machine.period = 301 };
  }

type result = {
  fr_build : P.build; (* the current revision (merge target) *)
  fr_stale_build : P.build; (* the previous revision some hosts still run *)
  fr_hosts : host list;
  fr_shards : (host * Fdata.t) list; (* provenance-stamped, one per host *)
  fr_fleet_input : int array; (* all host tapes concatenated: eval traffic *)
}

(* The fleet epoch: shard timestamps count seconds from here.  Stale
   shards predate the current build by a day. *)
let base_timestamp = 1_000_000
let stale_age = 86_400

let hosts_of_config c =
  List.init c.fc_hosts (fun i ->
      (* spread the mix across hosts so each skews different residues hot;
         stale hosts are the first [fc_stale] for determinism *)
      let stale = i < c.fc_stale in
      {
        h_name = Printf.sprintf "host%02d.dc1" i;
        h_stale = stale;
        h_mix = 85 + i * 10 / max 1 (c.fc_hosts - 1);
        h_window = i * 80 / max 1 c.fc_hosts;
        (* the t2 windows are the same set rotated by half the fleet, so a
           host median in one family is extreme in the other: no single
           host agrees with the fleet-majority branch direction
           everywhere, which is why the merged profile wins *)
        h_window2 =
          (i + (c.fc_hosts / 2)) mod max 1 c.fc_hosts * 80 / max 1 c.fc_hosts;
        h_seed = (c.fc_seed * 1_000) + i;
        h_timestamp =
          (if stale then base_timestamp - stale_age else base_timestamp + i);
      })

(* A host's request tape.  Like [Workloads.token_input], but the biased
   tokens land in host-specific residue windows: t = tok%100 in
   [h_window, h_window+12) and t2 = tok/100%100 in [h_window2,
   h_window2+12).  Each host therefore drives the service's
   threshold-dispatch branches in its own direction, so no single host's
   shard predicts the fleet-wide branch biases — the skew that makes
   aggregation matter. *)
let host_tape (h : host) ~n =
  let r = Bolt_workloads.Rng.create h.h_seed in
  Array.init n (fun _ ->
      let v = 1 + Bolt_workloads.Rng.int r 1_000_000 in
      if Bolt_workloads.Rng.bool r h.h_mix 100 then
        let t = (h.h_window + Bolt_workloads.Rng.int r 12) mod 100 in
        let t2 = (h.h_window2 + Bolt_workloads.Rng.int r 12) mod 100 in
        10_000 + (v / 10_000 * 10_000) + (t2 * 100) + t
      else v)

(* A "previous revision": the same service one commit back, with real
   drift on every axis the stale matcher must survive — every function
   body lightly edited (offsets shift, CFG shape survives), every 9th
   function under a different name (call sites included), and a few
   helpers that only the old revision had (their records have no home in
   the new binary and must drop cleanly). *)
let stale_params (p : Gen.params) =
  { p with Gen.body_pad = 2; rename_every = 9; extra_funcs = 4 }

let compile_params ?obs (p : Gen.params) : P.build =
  let w = Gen.gen p in
  let cc = Bolt_minic.Driver.default_options in
  let obs = match obs with Some o -> o | None -> Obs.null () in
  Obs.span obs "fleet.compile" (fun () ->
      let r =
        Bolt_minic.Driver.compile ~options:cc ~externals:w.Gen.externals
          ~extra_objs:w.Gen.extra_objs w.Gen.sources
      in
      { P.exe = r.exe; cc })

let run ?obs (c : config) : result =
  let obs = match obs with Some o -> o | None -> Obs.null () in
  Obs.span obs "fleet.sim" (fun () ->
      let params = { c.fc_params with Gen.input_driven = true } in
      let build = compile_params ~obs params in
      let stale_build = compile_params ~obs (stale_params params) in
      let hosts = hosts_of_config c in
      let tapes = List.map (fun h -> (h, host_tape h ~n:c.fc_requests)) hosts in
      let shards =
        List.map
          (fun (h, tape) ->
            let b = if h.h_stale then stale_build else build in
            let prof, _ =
              P.profile_shard ~obs ~sampling:c.fc_sampling ~host:h.h_name
                ~timestamp:h.h_timestamp b ~input:tape
            in
            Obs.incr obs "fleet.sim.hosts";
            if h.h_stale then Obs.incr obs "fleet.sim.stale_hosts";
            (h, prof))
          tapes
      in
      {
        fr_build = build;
        fr_stale_build = stale_build;
        fr_hosts = hosts;
        fr_shards = shards;
        fr_fleet_input = Array.concat (List.map snd tapes);
      })

(* Shards as merger input, named by host. *)
let loaded_shards (r : result) : Merge.loaded list =
  List.map
    (fun ((h : host), prof) -> Merge.shard_of_profile ~name:h.h_name prof)
    r.fr_shards

(* ---- rollout simulation ---- *)

(* One aggregation round during a rollout: which revision each host runs
   at this tick, and the shard it contributed. *)
type tick = {
  tk_index : int;
  tk_hosts : host list; (* h_stale/h_timestamp reflect this tick's state *)
  tk_shards : (host * Fdata.t) list;
}

(* Wall-clock seconds between aggregation rounds. *)
let tick_interval = 3_600

(* Simulate a deployment rolling forward: starting from [run]'s state
   (the configured [fc_stale] hosts on yesterday's revision), one stale
   host upgrades to the current build per tick, until the fleet
   converges.  An upgraded host re-collects its shard against the new
   binary with a fresh timestamp; hosts that have not changed keep
   contributing their original shard.  This is the input the fleet
   health monitor folds into per-host time series: tick 0 shows every
   configured stale host, the last tick (given enough ticks) none. *)
let rollout ?obs ?(ticks = 3) (c : config) : result * tick list =
  let obs = match obs with Some o -> o | None -> Obs.null () in
  let r = run ~obs c in
  let restamp (p : Fdata.t) timestamp =
    let h = Option.value ~default:Fdata.no_header p.Fdata.header in
    { p with Fdata.header = Some { h with Fdata.hd_timestamp = timestamp } }
  in
  (* an upgraded host's fresh-revision shard, profiled once and restamped
     per tick (its tape is a pure function of the host record) *)
  let fresh_cache : (string, Fdata.t) Hashtbl.t = Hashtbl.create 8 in
  let fresh_shard (h : host) ~timestamp =
    let prof =
      match Hashtbl.find_opt fresh_cache h.h_name with
      | Some p -> p
      | None ->
          let tape = host_tape h ~n:c.fc_requests in
          let p, _ =
            P.profile_shard ~obs ~sampling:c.fc_sampling ~host:h.h_name
              ~timestamp r.fr_build ~input:tape
          in
          Hashtbl.add fresh_cache h.h_name p;
          p
    in
    restamp prof timestamp
  in
  let tick_of t =
    Obs.span obs "fleet.rollout.tick" (fun () ->
        let rows =
          List.mapi
            (fun i ((h : host), orig_shard) ->
              (* stale hosts occupy indices [0, fc_stale); the rollout
                 upgrades one per tick from the highest stale index down,
                 so after t ticks indices [fc_stale - t, fc_stale) run
                 the current build *)
              let still_stale = h.h_stale && i < c.fc_stale - t in
              if still_stale then ({ h with h_stale = true }, orig_shard)
              else if h.h_stale then begin
                (* upgraded during the rollout: new build, new shard *)
                let timestamp = base_timestamp + (t * tick_interval) in
                Obs.incr obs "fleet.rollout.upgrades";
                ( { h with h_stale = false; h_timestamp = timestamp },
                  fresh_shard h ~timestamp )
              end
              else (h, orig_shard))
            r.fr_shards
        in
        {
          tk_index = t;
          tk_hosts = List.map fst rows;
          tk_shards = rows;
        })
  in
  (r, List.init ticks tick_of)

let tick_loaded_shards (t : tick) : Merge.loaded list =
  List.map
    (fun ((h : host), prof) -> Merge.shard_of_profile ~name:h.h_name prof)
    t.tk_shards

(* ---- mega-scale synthetic tape ----

   [run]/[rollout] compile and execute a real service per host, which
   tops out around tens of hosts.  The continuous-optimization service
   and its bench need the data-center shape — thousands of hosts,
   millions of fdata lines — where only the *profiles* have to be real.
   [scale_tape] synthesizes that: one fdata shard per host over a shared
   synthetic function universe, zipf-skewed with a per-host rotation of
   the hot set (so no host covers the fleet), a configurable fraction of
   hosts still reporting the previous revision with day-old timestamps,
   and arrival times grouped into waves so the tape replays as a
   sequence of service ticks.  Entirely deterministic from [sc_seed]. *)

type scale = {
  sc_hosts : int;
  sc_funcs : int; (* size of the synthetic function universe *)
  sc_lines : int; (* B/F/S record lines per host shard *)
  sc_stale_every : int; (* every Nth host reports the old revision; 0 = none *)
  sc_wave : int; (* hosts arriving per tick *)
  sc_seed : int;
}

let default_scale =
  {
    sc_hosts = 1_000;
    sc_funcs = 4_000;
    sc_lines = 500;
    sc_stale_every = 7;
    sc_wave = 128;
    sc_seed = 991;
  }

(* Synthetic revision stamps for the tape's current/previous builds. *)
let scale_build_id = "feedc0de00000001"
let scale_stale_build_id = "feedc0de00000000"
let scale_fname i = Printf.sprintf "svc_%05d" i

(* (arrival time, host, fdata text) triples, sorted by arrival. *)
let scale_tape ?(start_time = base_timestamp) (s : scale) :
    (int * string * string) list =
  let module Rng = Bolt_workloads.Rng in
  List.init s.sc_hosts (fun i ->
      let rng = Rng.create ((s.sc_seed * 7_919) + i) in
      let stale =
        s.sc_stale_every > 0 && i mod s.sc_stale_every = s.sc_stale_every - 1
      in
      let host = Printf.sprintf "mh%05d.dc1" i in
      let tick = i / max 1 s.sc_wave in
      let time = start_time + (tick * tick_interval) in
      let b = Buffer.create (s.sc_lines * 32) in
      let line fmt =
        Printf.ksprintf
          (fun str ->
            Buffer.add_string b str;
            Buffer.add_char b '\n')
          fmt
      in
      line "mode lbr";
      line "H host %s" host;
      line "H build-id %s" (if stale then scale_stale_build_id else scale_build_id);
      line "H timestamp %d" (if stale then time - stale_age else time);
      line "H events %d" (s.sc_lines * 25);
      for _ = 1 to s.sc_lines do
        (* rotate the zipf hot set per host: host i's hottest functions
           start at index i, so fleet coverage needs many hosts *)
        let fi = (Rng.zipf rng s.sc_funcs + i) mod s.sc_funcs in
        let name = scale_fname fi in
        let off () = Rng.int rng 256 in
        let cnt () = Int64.of_int (1 + Rng.int rng 5_000) in
        let kind = Rng.int rng 100 in
        if kind < 80 then begin
          let c = cnt () in
          let to_f, to_o =
            if Rng.bool rng 1 8 then
              (scale_fname ((Rng.zipf rng s.sc_funcs + i) mod s.sc_funcs), 0)
            else (name, off ())
          in
          line "B %s %d %s %d %Ld %Ld" name (off ()) to_f to_o c
            (Int64.div c 8L)
        end
        else if kind < 92 then begin
          let st = off () in
          line "F %s %d %d %Ld" name st (st + Rng.int rng 32) (cnt ())
        end
        else line "S %s %d %Ld" name (off ()) (cnt ())
      done;
      (time, host, Buffer.contents b))
