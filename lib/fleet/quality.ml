(* Merge quality report: how trustworthy is the aggregated fleet profile?

   Three axes, mirroring what a deployment pipeline gates on:

   - coverage: how much of the merged profile's function set each shard
     saw (low coverage = hosts sampled disjoint slices of the binary, the
     merge is gluing together sparse views);
   - agreement/divergence: the fraction of merged branch records observed
     by more than one shard (high divergence = per-host behaviour skew,
     or clock/revision drift);
   - staleness: the fraction of shards — and of raw events — collected
     against a binary revision other than the target build-id (§6/§7:
     merged fleet profiles rarely match the binary exactly). *)

module Fdata = Bolt_profile.Fdata
module Json = Bolt_obs.Json
module Obs = Bolt_obs.Obs

type report = {
  q_shards : int;
  q_hosts : string list;
  q_events : int64; (* saturating total of per-shard event counts *)
  q_functions : int; (* functions in the merged profile *)
  q_coverage_pct : float; (* mean per-shard coverage of merged functions *)
  q_agreement_pct : float; (* merged branch keys seen by >= 2 shards *)
  q_divergence_pct : float; (* merged branch keys seen by exactly 1 shard *)
  q_expected_build_id : string; (* target revision ("" = none known) *)
  q_build_ids : (string * int) list; (* build-id -> shard count, sorted *)
  q_stale_shards : int; (* shards on a revision other than the target *)
  q_unstamped_shards : int; (* shards with no build-id at all *)
  q_staleness_pct : float; (* share of events from stale shards *)
  q_recovery : Bolt_profile.Stale_match.stats option;
      (* aggregate stale-shard recovery breakdown (functions matched
         exact/fuzzy/inferred/dropped); None when no shard was recovered *)
}

let pct num den = if den <= 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let shard_events (sh : Merge.loaded) =
  let h = Merge.header sh in
  if h.Fdata.hd_events > 0L then h.Fdata.hd_events
  else sh.sh_prof.Fdata.total_samples

let assess ?expect_build_id ?recovery (shards : Merge.loaded list)
    ~(merged : Fdata.t) : report =
  let expected =
    match expect_build_id with
    | Some id -> id
    | None -> Merge.modal_build_id shards
  in
  let merged_funcs = Fdata.func_events merged in
  let nfuncs = Hashtbl.length merged_funcs in
  (* coverage: per-shard fraction of the merged function set it touched *)
  let coverage_pct =
    match shards with
    | [] -> 0.0
    | _ when nfuncs = 0 -> 0.0
    | _ ->
        let per_shard =
          List.map
            (fun sh ->
              let seen = Fdata.func_events sh.Merge.sh_prof in
              let hit =
                Hashtbl.fold
                  (fun f _ acc -> if Hashtbl.mem merged_funcs f then acc + 1 else acc)
                  seen 0
              in
              pct hit nfuncs)
            shards
        in
        List.fold_left ( +. ) 0.0 per_shard /. float_of_int (List.length per_shard)
  in
  (* agreement: how many shards observed each merged branch key *)
  let observers = Hashtbl.create 1024 in
  List.iter
    (fun sh ->
      let mine = Hashtbl.create 256 in
      List.iter
        (fun (b : Fdata.branch) ->
          Hashtbl.replace mine (b.br_from_func, b.br_from_off, b.br_to_func, b.br_to_off) ())
        sh.Merge.sh_prof.Fdata.branches;
      Hashtbl.iter
        (fun k () ->
          Hashtbl.replace observers k (1 + try Hashtbl.find observers k with Not_found -> 0))
        mine)
    shards;
  let keys = List.length merged.Fdata.branches in
  let shared =
    List.fold_left
      (fun acc (b : Fdata.branch) ->
        let k = (b.br_from_func, b.br_from_off, b.br_to_func, b.br_to_off) in
        match Hashtbl.find_opt observers k with
        | Some n when n >= 2 -> acc + 1
        | _ -> acc)
      0 merged.Fdata.branches
  in
  let agreement_pct = pct shared keys in
  (* staleness: shards (and their events) on the wrong revision *)
  let build_tally = Hashtbl.create 8 in
  let stale_shards = ref 0 in
  let unstamped = ref 0 in
  let total_events = ref 0L in
  let stale_events = ref 0L in
  List.iter
    (fun sh ->
      let id = (Merge.header sh).Fdata.hd_build_id in
      let label = if id = "" then "<unstamped>" else id in
      Hashtbl.replace build_tally label
        (1 + try Hashtbl.find build_tally label with Not_found -> 0);
      if id = "" then incr unstamped;
      let ev = shard_events sh in
      total_events := Fdata.sat_add !total_events ev;
      if expected <> "" && id <> "" && id <> expected then begin
        incr stale_shards;
        stale_events := Fdata.sat_add !stale_events ev
      end)
    shards;
  let staleness_pct =
    if !total_events = 0L then 0.0
    else 100.0 *. Int64.to_float !stale_events /. Int64.to_float !total_events
  in
  {
    q_shards = List.length shards;
    q_hosts = List.map Merge.host_of shards |> List.sort_uniq compare;
    q_events = !total_events;
    q_functions = nfuncs;
    q_coverage_pct = coverage_pct;
    q_agreement_pct = agreement_pct;
    q_divergence_pct = (if keys = 0 then 0.0 else 100.0 -. agreement_pct);
    q_expected_build_id = expected;
    q_build_ids =
      Hashtbl.fold (fun id n acc -> (id, n) :: acc) build_tally []
      |> List.sort compare;
    q_stale_shards = !stale_shards;
    q_unstamped_shards = !unstamped;
    q_staleness_pct = staleness_pct;
    q_recovery = recovery;
  }

(* Publish the report through the metrics registry, so it lands in the
   run manifest's "metrics" object alongside everything else. *)
let to_obs (obs : Obs.t) (r : report) =
  Obs.incr obs ~by:r.q_shards "fleet.quality.shards";
  Obs.incr obs ~by:r.q_stale_shards "fleet.quality.stale_shards";
  Obs.incr obs ~by:r.q_unstamped_shards "fleet.quality.unstamped_shards";
  Obs.incr obs ~by:r.q_functions "fleet.quality.functions";
  Obs.set obs "fleet.quality.coverage_pct" r.q_coverage_pct;
  Obs.set obs "fleet.quality.agreement_pct" r.q_agreement_pct;
  Obs.set obs "fleet.quality.divergence_pct" r.q_divergence_pct;
  Obs.set obs "fleet.quality.staleness_pct" r.q_staleness_pct;
  match r.q_recovery with
  | None -> ()
  | Some st ->
      Obs.incr obs ~by:st.Bolt_profile.Stale_match.st_exact
        "fleet.quality.recovery.exact";
      Obs.incr obs ~by:st.Bolt_profile.Stale_match.st_fuzzy
        "fleet.quality.recovery.fuzzy";
      Obs.incr obs ~by:st.Bolt_profile.Stale_match.st_inferred
        "fleet.quality.recovery.inferred";
      Obs.incr obs ~by:st.Bolt_profile.Stale_match.st_dropped
        "fleet.quality.recovery.dropped";
      Obs.set obs "fleet.quality.recovery.rate"
        (Bolt_profile.Stale_match.recovery_rate st)

(* A structured manifest section ("fleet") for bmerge --trace-out. *)
let manifest_section (r : report) : string * Json.t =
  ( "fleet",
    Json.Obj
      [
        ("shards", Json.Int r.q_shards);
        ("hosts", Json.List (List.map (fun h -> Json.String h) r.q_hosts));
        ("events", Json.Int (Fdata.clamp_int r.q_events));
        ("functions", Json.Int r.q_functions);
        ("coverage_pct", Json.Float r.q_coverage_pct);
        ("agreement_pct", Json.Float r.q_agreement_pct);
        ("divergence_pct", Json.Float r.q_divergence_pct);
        ("expected_build_id", Json.String r.q_expected_build_id);
        ( "build_ids",
          Json.Obj (List.map (fun (id, n) -> (id, Json.Int n)) r.q_build_ids) );
        ("stale_shards", Json.Int r.q_stale_shards);
        ("unstamped_shards", Json.Int r.q_unstamped_shards);
        ("staleness_pct", Json.Float r.q_staleness_pct);
        ( "recovery",
          match r.q_recovery with
          | None -> Json.Null
          | Some st ->
              Json.Obj
                [
                  ("funcs", Json.Int st.Bolt_profile.Stale_match.st_funcs);
                  ("exact", Json.Int st.Bolt_profile.Stale_match.st_exact);
                  ("fuzzy", Json.Int st.Bolt_profile.Stale_match.st_fuzzy);
                  ("inferred", Json.Int st.Bolt_profile.Stale_match.st_inferred);
                  ("dropped", Json.Int st.Bolt_profile.Stale_match.st_dropped);
                  ( "records_in",
                    Json.Int st.Bolt_profile.Stale_match.st_records_in );
                  ( "records_kept",
                    Json.Int st.Bolt_profile.Stale_match.st_records_kept );
                  ( "rate",
                    Json.Float (Bolt_profile.Stale_match.recovery_rate st) );
                ] );
      ] )

let pp ppf (r : report) =
  Fmt.pf ppf "fleet merge quality:@.";
  Fmt.pf ppf "  shards          %d (%d hosts)@." r.q_shards (List.length r.q_hosts);
  Fmt.pf ppf "  events          %Ld@." r.q_events;
  Fmt.pf ppf "  functions       %d@." r.q_functions;
  Fmt.pf ppf "  coverage        %.1f%% (mean shard coverage of merged functions)@."
    r.q_coverage_pct;
  Fmt.pf ppf "  agreement       %.1f%% of branch records seen by >1 shard@."
    r.q_agreement_pct;
  Fmt.pf ppf "  divergence      %.1f%%@." r.q_divergence_pct;
  Fmt.pf ppf "  target build    %s@."
    (if r.q_expected_build_id = "" then "<none>" else r.q_expected_build_id);
  List.iter
    (fun (id, n) -> Fmt.pf ppf "    %-34s %d shard%s@." id n (if n = 1 then "" else "s"))
    r.q_build_ids;
  Fmt.pf ppf "  stale shards    %d (%.1f%% of events)@." r.q_stale_shards
    r.q_staleness_pct;
  if r.q_unstamped_shards > 0 then
    Fmt.pf ppf "  unstamped       %d@." r.q_unstamped_shards;
  match r.q_recovery with
  | None -> ()
  | Some st ->
      Fmt.pf ppf "  stale recovery  %a (rate %.0f%%)@."
        Bolt_profile.Stale_match.pp_stats st
        (100.0 *. Bolt_profile.Stale_match.recovery_rate st)
