(* Fleet health monitor: the longitudinal view of profile quality.

   Where [Quality.assess] scores one merge, the monitor folds shard
   provenance plus quality output across successive aggregation rounds
   ("ticks" — fleet_sim rollout steps, or daemon ingest cycles) into
   per-host time series: coverage of the merged function set, shard
   staleness/age, stale-recovery rate, and rollout state (which build-id
   each host runs).  Threshold violations become structured [Obs]
   events (`fleet.monitor.*`), every tick's summary is retained, and
   the whole state renders as an ASCII health table plus a
   `fleet_health` manifest section — the substrate a daemon-mode
   continuous-optimization service will alert from. *)

module Fdata = Bolt_profile.Fdata
module Json = Bolt_obs.Json
module Obs = Bolt_obs.Obs
module Stale_match = Bolt_profile.Stale_match

type thresholds = {
  th_min_coverage_pct : float; (* per-host coverage of merged functions *)
  th_min_recovery_rate : float; (* per-host, when stale recovery ran *)
  th_max_age : int; (* seconds a shard may lag the newest shard *)
  th_max_stale_pct : float; (* fleet-level share of stale events *)
}

let default_thresholds =
  {
    th_min_coverage_pct = 25.0;
    th_min_recovery_rate = 0.5;
    th_max_age = 2 * 86_400;
    th_max_stale_pct = 50.0;
  }

type host_state = {
  hs_host : string;
  hs_build_id : string;
  hs_stale : bool; (* build-id disagrees with the expected revision *)
  hs_age : int; (* seconds behind the newest shard of the tick *)
  hs_coverage_pct : float;
  hs_recovery_rate : float option; (* None when no recovery was needed *)
  hs_events : int64;
  hs_alerts : int; (* alerts raised against this host this tick *)
}

type alert = {
  al_tick : int;
  al_host : string; (* "" for fleet-level alerts *)
  al_kind : string; (* "stale_build" | "low_coverage" | ... *)
  al_detail : string;
}

type tick = {
  tk_index : int;
  tk_expected_build_id : string;
  tk_hosts : host_state list;
  tk_quality : Quality.report;
  tk_alerts : alert list;
}

type t = {
  thresholds : thresholds;
  mutable ticks : tick list; (* newest first *)
}

let create ?(thresholds = default_thresholds) () = { thresholds; ticks = [] }
let ticks t = List.rev t.ticks
let alerts t = List.concat_map (fun tk -> tk.tk_alerts) (ticks t)
let stale_hosts (tk : tick) =
  List.filter_map (fun h -> if h.hs_stale then Some h.hs_host else None) tk.tk_hosts

(* Per-host coverage of the merged profile's function set — the same
   notion [Quality.assess] averages, kept per host here.  The merged
   function table is computed once per tick and shared across hosts: at
   daemon scale (thousands of hosts) rebuilding it per host dominates
   the whole observation. *)
let coverage_of ~merged_funcs (sh : Merge.loaded) =
  let nfuncs = Hashtbl.length merged_funcs in
  if nfuncs = 0 then 0.0
  else begin
    let seen = Fdata.func_events sh.Merge.sh_prof in
    let hit =
      Hashtbl.fold
        (fun f _ acc -> if Hashtbl.mem merged_funcs f then acc + 1 else acc)
        seen 0
    in
    100.0 *. float_of_int hit /. float_of_int nfuncs
  end

let host_coverage ~(merged : Fdata.t) (sh : Merge.loaded) =
  coverage_of ~merged_funcs:(Fdata.func_events merged) sh

(* Fold one aggregation round into the monitor.  [shards] are the
   shards as collected (pre-recovery, so provenance is the hosts'
   truth), [merged] the round's merged profile, [recovery] the per-host
   breakdown from [Merge.recover_stale_each].  Emits `fleet.monitor.*`
   events and counters through [obs] and returns the recorded tick. *)
let observe ?obs t ~(expected_build_id : string)
    ?(recovery : (string * Stale_match.stats) list = [])
    (shards : Merge.loaded list) ~(merged : Fdata.t) : tick =
  let obs = match obs with Some o -> o | None -> Obs.null () in
  let index = List.length t.ticks in
  let newest = Merge.newest_timestamp shards in
  let agg_recovery =
    match List.map snd recovery with
    | [] -> None
    | st :: rest -> Some (List.fold_left Stale_match.add_stats st rest)
  in
  let quality =
    Quality.assess ~expect_build_id:expected_build_id ?recovery:agg_recovery
      shards ~merged
  in
  let alerts = ref [] in
  let alert ~host kind detail =
    alerts := { al_tick = index; al_host = host; al_kind = kind; al_detail = detail } :: !alerts;
    Obs.incr obs "fleet.monitor.alerts";
    Obs.event obs ("fleet.monitor." ^ kind)
      ~attrs:
        ([ ("tick", Json.Int index); ("detail", Json.String detail) ]
        @ if host = "" then [] else [ ("host", Json.String host) ])
  in
  let th = t.thresholds in
  let merged_funcs = Fdata.func_events merged in
  let hosts =
    List.map
      (fun sh ->
        let header = Merge.header sh in
        let host = Merge.host_of sh in
        let build = header.Fdata.hd_build_id in
        let stale =
          expected_build_id <> "" && build <> "" && build <> expected_build_id
        in
        let age =
          if header.Fdata.hd_timestamp = 0 then 0
          else newest - header.Fdata.hd_timestamp
        in
        let coverage = coverage_of ~merged_funcs sh in
        let rate =
          match List.assoc_opt host recovery with
          | Some st -> Some (Stale_match.recovery_rate st)
          | None -> None
        in
        let n_alerts = ref 0 in
        let host_alert kind detail = incr n_alerts; alert ~host kind detail in
        if stale then
          host_alert "stale_build"
            (Printf.sprintf "running build %s, expected %s" build
               expected_build_id);
        if coverage < th.th_min_coverage_pct then
          host_alert "low_coverage"
            (Printf.sprintf "%.1f%% of merged functions (threshold %.1f%%)"
               coverage th.th_min_coverage_pct);
        (match rate with
        | Some r when r < th.th_min_recovery_rate ->
            host_alert "low_recovery"
              (Printf.sprintf "stale-profile recovery rate %.2f (threshold %.2f)"
                 r th.th_min_recovery_rate)
        | _ -> ());
        if age > th.th_max_age then
          host_alert "old_shard"
            (Printf.sprintf "shard is %ds behind the newest (threshold %ds)" age
               th.th_max_age);
        {
          hs_host = host;
          hs_build_id = build;
          hs_stale = stale;
          hs_age = age;
          hs_coverage_pct = coverage;
          hs_recovery_rate = rate;
          hs_events =
            (if header.Fdata.hd_events > 0L then header.Fdata.hd_events
             else sh.Merge.sh_prof.Fdata.total_samples);
          hs_alerts = !n_alerts;
        })
      shards
  in
  if quality.Quality.q_staleness_pct > th.th_max_stale_pct then
    alert ~host:"" "fleet_stale"
      (Printf.sprintf "%.1f%% of events from stale shards (threshold %.1f%%)"
         quality.Quality.q_staleness_pct th.th_max_stale_pct);
  (* drift detection: recovery rate falling tick-over-tick is the signal
     the stale-matching paper says operators watch *)
  (match (t.ticks, quality.Quality.q_recovery) with
  | prev :: _, Some st -> (
      match prev.tk_quality.Quality.q_recovery with
      | Some prev_st ->
          let r = Stale_match.recovery_rate st
          and pr = Stale_match.recovery_rate prev_st in
          if r < pr -. 0.10 then
            alert ~host:"" "recovery_drift"
              (Printf.sprintf "fleet recovery rate fell %.2f -> %.2f" pr r)
      | None -> ())
  | _ -> ());
  Obs.incr obs "fleet.monitor.ticks";
  Obs.incr obs ~by:(List.length (List.filter (fun h -> h.hs_stale) hosts))
    "fleet.monitor.stale_hosts";
  Obs.set obs "fleet.monitor.coverage_pct" quality.Quality.q_coverage_pct;
  Obs.set obs "fleet.monitor.staleness_pct" quality.Quality.q_staleness_pct;
  let tk =
    {
      tk_index = index;
      tk_expected_build_id = expected_build_id;
      tk_hosts = hosts;
      tk_quality = quality;
      tk_alerts = List.rev !alerts;
    }
  in
  t.ticks <- tk :: t.ticks;
  tk

(* ---- rendering ---- *)

let short_id s = if String.length s > 10 then String.sub s 0 10 else s

(* Per-host one-char state at a tick: '.' healthy, 'S' stale revision,
   '!' some other alert fired. *)
let host_char (h : host_state) =
  if h.hs_stale then 'S' else if h.hs_alerts > 0 then '!' else '.'

let pp ppf (t : t) =
  match ticks t with
  | [] -> Fmt.pf ppf "fleet health: no ticks observed@."
  | all ->
      let latest = List.nth all (List.length all - 1) in
      Fmt.pf ppf "fleet health: %d tick(s), expected build %s, %d host(s)@."
        (List.length all)
        (match latest.tk_expected_build_id with "" -> "<none>" | id -> short_id id)
        (List.length latest.tk_hosts);
      Fmt.pf ppf "  %4s %6s %6s %7s %7s %7s@." "tick" "hosts" "stale" "cov%"
        "recov" "alerts";
      List.iter
        (fun tk ->
          Fmt.pf ppf "  %4d %6d %6d %7.1f %7s %7d@." tk.tk_index
            (List.length tk.tk_hosts)
            (List.length (stale_hosts tk))
            tk.tk_quality.Quality.q_coverage_pct
            (match tk.tk_quality.Quality.q_recovery with
            | Some st -> Printf.sprintf "%.2f" (Stale_match.recovery_rate st)
            | None -> "-")
            (List.length tk.tk_alerts))
        all;
      (* per-host rollout/health view over the ticks *)
      let width =
        List.fold_left
          (fun w h -> max w (String.length h.hs_host))
          12 latest.tk_hosts
      in
      Fmt.pf ppf "  %-*s %-10s %8s %6s %6s %-7s %s@." width "host" "build"
        "age(s)" "cov%" "recov" "state" "ticks";
      List.iter
        (fun (h : host_state) ->
          let history =
            String.init (List.length all) (fun i ->
                match
                  List.find_opt
                    (fun x -> x.hs_host = h.hs_host)
                    (List.nth all i).tk_hosts
                with
                | Some hx -> host_char hx
                | None -> ' ')
          in
          Fmt.pf ppf "  %-*s %-10s %8d %6.1f %6s %-7s %s@." width h.hs_host
            (match h.hs_build_id with "" -> "<none>" | id -> short_id id)
            h.hs_age h.hs_coverage_pct
            (match h.hs_recovery_rate with
            | Some r -> Printf.sprintf "%.2f" r
            | None -> "-")
            (if h.hs_stale then "STALE"
             else if h.hs_alerts > 0 then "ALERT"
             else "ok")
            history)
        latest.tk_hosts;
      let alerts = alerts t in
      if alerts <> [] then begin
        Fmt.pf ppf "  alerts:@.";
        List.iter
          (fun a ->
            Fmt.pf ppf "    [tick %d] %s%s: %s@." a.al_tick
              (if a.al_host = "" then "fleet" else a.al_host)
              (" " ^ a.al_kind) a.al_detail)
          alerts
      end

(* ---- manifest section ---- *)

let host_json (h : host_state) =
  Json.Obj
    [
      ("host", Json.String h.hs_host);
      ("build_id", Json.String h.hs_build_id);
      ("stale", Json.Bool h.hs_stale);
      ("age_s", Json.Int h.hs_age);
      ("coverage_pct", Json.Float h.hs_coverage_pct);
      ( "recovery_rate",
        match h.hs_recovery_rate with
        | Some r -> Json.Float r
        | None -> Json.Null );
      ("events", Json.Int (Fdata.clamp_int h.hs_events));
      ("alerts", Json.Int h.hs_alerts);
    ]

let manifest_section (t : t) : string * Json.t =
  let all = ticks t in
  let latest_hosts =
    match List.rev all with [] -> [] | tk :: _ -> tk.tk_hosts
  in
  ( "fleet_health",
    Json.Obj
      [
        ("ticks", Json.Int (List.length all));
        ( "expected_build_id",
          Json.String
            (match List.rev all with
            | [] -> ""
            | tk :: _ -> tk.tk_expected_build_id) );
        ( "series",
          Json.List
            (List.map
               (fun tk ->
                 Json.Obj
                   [
                     ("tick", Json.Int tk.tk_index);
                     ("hosts", Json.Int (List.length tk.tk_hosts));
                     ("stale_hosts", Json.Int (List.length (stale_hosts tk)));
                     ( "coverage_pct",
                       Json.Float tk.tk_quality.Quality.q_coverage_pct );
                     ( "staleness_pct",
                       Json.Float tk.tk_quality.Quality.q_staleness_pct );
                     ( "recovery_rate",
                       match tk.tk_quality.Quality.q_recovery with
                       | Some st -> Json.Float (Stale_match.recovery_rate st)
                       | None -> Json.Null );
                     ("alerts", Json.Int (List.length tk.tk_alerts));
                   ])
               all) );
        ("hosts", Json.List (List.map host_json latest_hosts));
        ( "alerts",
          Json.List
            (List.map
               (fun a ->
                 Json.Obj
                   [
                     ("tick", Json.Int a.al_tick);
                     ("host", Json.String a.al_host);
                     ("kind", Json.String a.al_kind);
                     ("detail", Json.String a.al_detail);
                   ])
               (alerts t)) );
      ] )
