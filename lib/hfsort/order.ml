(* Function-ordering algorithms, expressed over the shared chain pool in
   lib/layout (bolt_layout).

   - [c3] is HFSort's call-chain clustering (Ottoni & Maher, CGO'17): hot
     functions are appended to the cluster of their hottest caller as long
     as the merged cluster stays within a page-budget and the callee is not
     drastically colder than the cluster, then clusters are emitted by
     density (samples per byte).
   - [hfsort_plus] runs c3 and then greedily merges clusters by expected
     i-TLB benefit — a simplified rendition of the hfsort+ refinement used
     by BOLT's -reorder-functions=hfsort+.
   - [pettis_hansen] is the classic PH "closest is best" cluster merge on
     raw edge weights, the baseline HFSort was measured against.

   A cluster is simply a chain whose nodes are functions: weight =
   samples, size = bytes, so Chain.weight/size give density directly.
   Node ids are assigned in function-name order and every greedy loop
   consumes Cfg's totally-ordered edge array, making all three
   algorithms deterministic under equal weights. *)

module Cfg = Bolt_layout.Cfg
module Chain = Bolt_layout.Chain

type algo = C3 | Hfsort_plus | Pettis_hansen

let page_budget = 4096
let merge_density_ratio = 8 (* callee may be at most 8x colder per byte *)

(* The call graph projected onto node ids (name order). *)
type proj = { cfg : Cfg.t; names : string array; id : (string, int) Hashtbl.t }

let project (g : Callgraph.t) : proj =
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) g.Callgraph.nodes []
    |> List.sort compare |> Array.of_list
  in
  let id = Hashtbl.create (Array.length names * 2 + 1) in
  Array.iteri (fun i n -> Hashtbl.replace id n i) names;
  let nodes =
    Array.map
      (fun name ->
        let n = Hashtbl.find g.Callgraph.nodes name in
        { Cfg.n_label = name; n_size = n.Callgraph.n_size; n_count = n.n_samples })
      names
  in
  let edges =
    Hashtbl.fold
      (fun (a, b) r acc ->
        match (Hashtbl.find_opt id a, Hashtbl.find_opt id b) with
        | Some ia, Some ib -> (ia, ib, !r) :: acc
        | _ -> acc)
      g.Callgraph.edges []
  in
  { cfg = Cfg.make ~nodes edges; names; id }

let density pool c =
  let s = Chain.size pool c in
  if s = 0 then 0.0 else float_of_int (Chain.weight pool c) /. float_of_int s

(* Hot clusters (weight > 0) by density desc, chain id asc, flattened to
   function names.  Cold functions never join a hot chain (every merge
   guard requires weight > 0 on both sides), so they are left for the
   caller's original-order fallback. *)
let cluster_order proj pool =
  Chain.live_chains pool
  |> List.filter (fun c -> Chain.weight pool c > 0)
  |> List.sort (fun a b ->
         let da = density pool a and db = density pool b in
         if da <> db then compare db da else compare a b)
  |> List.concat_map (fun c ->
         Array.to_list (Chain.blocks pool c)
         |> List.map (fun i -> proj.names.(i)))

(* Hot node ids, samples desc then name asc (id order = name order). *)
let hot_ids proj =
  let ids = ref [] in
  for i = Array.length proj.names - 1 downto 0 do
    if Cfg.count proj.cfg i > 0 then ids := i :: !ids
  done;
  List.sort
    (fun a b ->
      let ca = Cfg.count proj.cfg a and cb = Cfg.count proj.cfg b in
      if ca <> cb then compare cb ca else compare a b)
    !ids

let c3_merges (g : Callgraph.t) proj pool =
  let best_caller = Callgraph.hottest_caller g in
  List.iter
    (fun i ->
      match Hashtbl.find_opt best_caller proj.names.(i) with
      | None -> ()
      | Some (caller, _w) -> (
          match Hashtbl.find_opt proj.id caller with
          | None -> ()
          | Some ci ->
              let cc = Chain.chain_of pool ci and cf = Chain.chain_of pool i in
              if cc <> cf && Chain.weight pool cc > 0 then begin
                let merged_size = Chain.size pool cc + Chain.size pool cf in
                if
                  merged_size <= page_budget
                  && density pool cf *. float_of_int merge_density_ratio
                     >= density pool cc
                then Chain.append pool ~into:cc cf
              end))
    (hot_ids proj)

let c3 (g : Callgraph.t) =
  let proj = project g in
  let pool = Chain.create proj.cfg in
  c3_merges g proj pool;
  cluster_order proj pool

(* hfsort+ style refinement: keep merging cluster pairs with the highest
   inter-cluster call weight, while the merge still fits a small
   multiple of the page budget; the denser cluster leads. *)
let hfsort_plus (g : Callgraph.t) =
  let proj = project g in
  let pool = Chain.create proj.cfg in
  c3_merges g proj pool;
  (* snapshot the c3 clusters: cluster index per node, plus one
     representative node per cluster to find its current chain later *)
  let clusters =
    Chain.live_chains pool |> List.filter (fun c -> Chain.weight pool c > 0)
  in
  let rep = Array.of_list (List.map (Chain.head pool) clusters) in
  let cl = Array.make (Array.length proj.names) (-1) in
  List.iteri
    (fun i c -> Array.iter (fun b -> cl.(b) <- i) (Chain.blocks pool c))
    clusters;
  (* inter-cluster weights *)
  let w = Hashtbl.create 1024 in
  Array.iter
    (fun (ia, ib, weight) ->
      let ca = cl.(ia) and cb = cl.(ib) in
      if ca >= 0 && cb >= 0 && ca <> cb then begin
        let key = (min ca cb, max ca cb) in
        Hashtbl.replace w key
          (weight + try Hashtbl.find w key with Not_found -> 0)
      end)
    proj.cfg.Cfg.edges;
  let candidates =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) w []
    |> List.sort (fun (k1, a) (k2, b) ->
           if a <> b then compare b a else compare k1 k2)
  in
  List.iter
    (fun ((ia, ib), _) ->
      let ra = Chain.chain_of pool rep.(ia)
      and rb = Chain.chain_of pool rep.(ib) in
      if ra <> rb && Chain.size pool ra + Chain.size pool rb <= 4 * page_budget
      then begin
        let hi, lo =
          if density pool ra >= density pool rb then (ra, rb) else (rb, ra)
        in
        Chain.append pool ~into:hi lo
      end)
    candidates;
  cluster_order proj pool

(* Classic Pettis-Hansen function ordering: merge the clusters joined by
   the globally heaviest remaining edge (ties broken by endpoint names
   via the edge array's total order). *)
let pettis_hansen (g : Callgraph.t) =
  let proj = project g in
  let pool = Chain.create proj.cfg in
  Array.iter
    (fun (ia, ib, _) ->
      let ca = Chain.chain_of pool ia and cb = Chain.chain_of pool ib in
      if
        ca <> cb && Chain.weight pool ca > 0 && Chain.weight pool cb > 0
      then Chain.append pool ~into:ca cb)
    proj.cfg.Cfg.edges;
  cluster_order proj pool

(* Full ordering: hot functions by the chosen algorithm, then everything
   else in original order. *)
let order algo (g : Callgraph.t) ~(original : string list) : string list =
  let hot =
    match algo with
    | C3 -> c3 g
    | Hfsort_plus -> hfsort_plus g
    | Pettis_hansen -> pettis_hansen g
  in
  let placed = Hashtbl.create 256 in
  List.iter (fun f -> Hashtbl.replace placed f ()) hot;
  hot @ List.filter (fun f -> not (Hashtbl.mem placed f)) original
