(* Weighted dynamic call graph for function reordering.

   With LBR profiles, edge weights come straight from recorded call
   branches (from one function into offset 0 of another).  Without LBRs
   the paper's §5.3 fallback applies: walk the binary's direct calls and
   weight each caller→callee edge by the samples observed in the caller's
   enclosing code — indirect calls are invisible in that mode. *)

type node = { n_name : string; n_size : int; mutable n_samples : int }

type t = {
  nodes : (string, node) Hashtbl.t;
  edges : (string * string, int ref) Hashtbl.t; (* caller, callee -> weight *)
}

let create () = { nodes = Hashtbl.create 256; edges = Hashtbl.create 1024 }

let add_node g ~name ~size =
  if not (Hashtbl.mem g.nodes name) then
    Hashtbl.replace g.nodes name { n_name = name; n_size = size; n_samples = 0 }

let node g name = Hashtbl.find_opt g.nodes name

let add_samples g name c =
  match Hashtbl.find_opt g.nodes name with
  | Some n -> n.n_samples <- n.n_samples + c
  | None -> ()

let add_edge g caller callee w =
  if w > 0 && Hashtbl.mem g.nodes caller && Hashtbl.mem g.nodes callee then
    match Hashtbl.find_opt g.edges (caller, callee) with
    | Some r -> r := !r + w
    | None -> Hashtbl.add g.edges (caller, callee) (ref w)

(* Incoming call weight per function. *)
let in_weights g =
  let h = Hashtbl.create 256 in
  Hashtbl.iter
    (fun (_, callee) w ->
      Hashtbl.replace h callee (!w + try Hashtbl.find h callee with Not_found -> 0))
    g.edges;
  h

(* The hottest caller of each function; equal weights break towards the
   lexicographically smaller caller so the result does not depend on
   hashtable iteration order. *)
let hottest_caller g =
  let best = Hashtbl.create 256 in
  Hashtbl.iter
    (fun (caller, callee) w ->
      if caller <> callee then
        match Hashtbl.find_opt best callee with
        | Some (bc, bw) when bw > !w || (bw = !w && bc <= caller) -> ()
        | _ -> Hashtbl.replace best callee (caller, !w))
    g.edges;
  best

(* Build from an LBR profile: calls are branches landing at offset 0 of
   another function. *)
let of_profile ~(funcs : (string * int) list) (prof : Bolt_profile.Fdata.t) : t =
  let g = create () in
  List.iter (fun (name, size) -> add_node g ~name ~size) funcs;
  let events = Bolt_profile.Fdata.func_events prof in
  Hashtbl.iter (fun name c -> add_samples g name (Bolt_profile.Fdata.clamp_int c)) events;
  List.iter
    (fun (b : Bolt_profile.Fdata.branch) ->
      if b.br_from_func <> b.br_to_func && b.br_to_off = 0 then
        add_edge g b.br_from_func b.br_to_func (Bolt_profile.Fdata.clamp_int b.br_count))
    prof.branches;
  g

(* §5.3 fallback: no LBR.  [direct_calls] lists the binary's static call
   sites as (caller, offset-in-caller, callee); each edge gets the IP
   samples recorded near the call site (same function, any offset —
   approximated by the caller's sample count scaled per site). *)
let of_samples_and_calls ~(funcs : (string * int) list)
    ~(direct_calls : (string * int * string) list) (prof : Bolt_profile.Fdata.t) : t =
  let g = create () in
  List.iter (fun (name, size) -> add_node g ~name ~size) funcs;
  let events = Bolt_profile.Fdata.func_events prof in
  Hashtbl.iter (fun name c -> add_samples g name (Bolt_profile.Fdata.clamp_int c)) events;
  (* samples per (func, off) for call-site weighting *)
  let site_w = Hashtbl.create 1024 in
  List.iter
    (fun (s : Bolt_profile.Fdata.sample) ->
      Hashtbl.replace site_w (s.sm_func, s.sm_off)
        (Bolt_profile.Fdata.clamp_int s.sm_count
        + try Hashtbl.find site_w (s.sm_func, s.sm_off) with Not_found -> 0))
    prof.samples;
  List.iter
    (fun (caller, off, callee) ->
      (* weight: samples within a small window after the call site *)
      let w = ref 0 in
      for o = off to off + 16 do
        match Hashtbl.find_opt site_w (caller, o) with
        | Some c -> w := !w + c
        | None -> ()
      done;
      add_edge g caller callee (max 1 !w))
    direct_calls;
  g
