(* The layout engine: three algorithms over the shared chain pool.

   - Cache: bottom-up Pettis-Hansen chaining — hottest edge first, merge
     only when the edge runs tail-to-head, so the hottest successor
     becomes the fall-through.
   - Cache_plus: the historical "ext-TSP-flavoured" variant — scores
     both concatenation orders of the two chains by the fall-through
     weight across the seam.
   - Ext_tsp: greedy chain merging under the real ExtTSP objective.
     Every round picks the pair of connected chains whose best
     arrangement — X·Y, Y·X, or a bounded split X1·Y·X2 / Y1·X·Y2 —
     gains the most score, until no merge gains anything.  The result is
     guarded: the engine returns whichever of {ext-tsp, cache+,
     original} scores highest among those keeping at least cache+'s
     fall-through weight, so Ext_tsp never regresses the objective below
     cache+ and never produces more taken branches than cache+ either.

   All loops iterate edges and chains in total deterministic orders
   (count desc then (src, dst) asc; chain ids ascend), so layouts are
   reproducible across runs and domain counts. *)

type algo = Cache | Cache_plus | Ext_tsp

let name = function
  | Cache -> "cache"
  | Cache_plus -> "cache+"
  | Ext_tsp -> "ext-tsp"

(* Entry chain first, then weight desc, chain id asc — and any node the
   merge loops never reached (there are none today, but keep the
   contract total) would simply still be its own chain. *)
let final_order (cfg : Cfg.t) pool =
  let chains = Chain.live_chains pool in
  let entry_c, rest =
    if cfg.Cfg.entry >= 0 then
      List.partition (fun c -> c = Chain.chain_of pool cfg.Cfg.entry) chains
    else ([], chains)
  in
  let rest =
    List.sort
      (fun a b ->
        let wa = Chain.weight pool a and wb = Chain.weight pool b in
        if wa <> wb then compare wb wa else compare a b)
      rest
  in
  Chain.emit pool (entry_c @ rest)

let cache (cfg : Cfg.t) =
  let pool = Chain.create cfg in
  Array.iter
    (fun (s, d, _) ->
      let ca = Chain.chain_of pool s and cb = Chain.chain_of pool d in
      if ca <> cb && Chain.tail pool ca = s && Chain.head pool cb = d
         && d <> cfg.Cfg.entry
      then Chain.append pool ~into:ca cb)
    cfg.Cfg.edges;
  final_order cfg pool

let cache_plus (cfg : Cfg.t) =
  let pool = Chain.create cfg in
  let w = Hashtbl.create 64 in
  Array.iter (fun (s, d, c) -> Hashtbl.replace w (s, d) c) cfg.Cfg.edges;
  let seam a b = Option.value ~default:0 (Hashtbl.find_opt w (a, b)) in
  Array.iter
    (fun (s, d, _) ->
      let ca = Chain.chain_of pool s and cb = Chain.chain_of pool d in
      if ca <> cb then begin
        let seam_ab = seam (Chain.tail pool ca) (Chain.head pool cb) in
        let seam_ba = seam (Chain.tail pool cb) (Chain.head pool ca) in
        if seam_ab >= seam_ba && Chain.head pool cb <> cfg.Cfg.entry
           && seam_ab > 0
        then Chain.append pool ~into:ca cb
        else if seam_ba > 0 && Chain.head pool ca <> cfg.Cfg.entry then
          Chain.append pool ~into:cb ca
      end)
    cfg.Cfg.edges;
  final_order cfg pool

(* ---- ext-tsp ---- *)

(* Split bounds: arrangements with a split point are tried only for
   chains of at most [split_threshold] blocks, and only while the whole
   function stays under [split_node_limit] blocks — past that the
   quadratic split enumeration stops paying for itself. *)
let split_threshold = 128
let split_node_limit = 512
let epsilon = 1e-9

let ext_tsp_merge (cfg : Cfg.t) =
  let n = Cfg.node_count cfg in
  let pool = Chain.create cfg in
  (* arrangement scoring with stamped addresses: only edges with both
     ends inside the arrangement count, which is exactly the chain-local
     score the merge loop maximises *)
  let addr = Array.make n 0 in
  let stamp = Array.make n 0 in
  let clock = ref 0 in
  let score_arr arr =
    incr clock;
    let a = ref 0 in
    Array.iter
      (fun b ->
        stamp.(b) <- !clock;
        addr.(b) <- !a;
        a := !a + Cfg.size cfg b)
      arr;
    let t = ref 0.0 in
    Array.iter
      (fun b ->
        let src_end = addr.(b) + Cfg.size cfg b in
        List.iter
          (fun (d, c) ->
            if stamp.(d) = !clock then
              t := !t +. Exttsp.score_edge ~src_end ~dst:addr.(d) c)
          cfg.Cfg.succ.(b))
      arr;
    !t
  in
  (* self-edges are dropped at Cfg.make, so singletons score 0 *)
  let chain_score = Array.make n 0.0 in
  let entry = cfg.Cfg.entry in
  (* best arrangement of two live chains; returns (gain, score, arr) *)
  let best_merge a b =
    let xa = Chain.blocks pool a and xb = Chain.blocks pool b in
    let la = Array.length xa and lb = Array.length xb in
    let base = chain_score.(a) +. chain_score.(b) in
    let has_entry =
      entry >= 0 && (Chain.chain_of pool entry = a || Chain.chain_of pool entry = b)
    in
    let best = ref None in
    let consider arr =
      if (not has_entry) || arr.(0) = entry then begin
        let s = score_arr arr in
        let g = s -. base in
        match !best with
        | Some (bg, _, _) when g <= bg +. epsilon -> ()
        | _ -> best := Some (g, s, arr)
      end
    in
    consider (Array.append xa xb);
    consider (Array.append xb xa);
    if n <= split_node_limit then begin
      if la >= 2 && la <= split_threshold then
        for i = 1 to la - 1 do
          consider
            (Array.concat [ Array.sub xa 0 i; xb; Array.sub xa i (la - i) ])
        done;
      if lb >= 2 && lb <= split_threshold then
        for i = 1 to lb - 1 do
          consider
            (Array.concat [ Array.sub xb 0 i; xa; Array.sub xb i (lb - i) ])
        done
    end;
    !best
  in
  (* candidate pairs: chains connected by at least one edge *)
  let norm a b = if a < b then (a, b) else (b, a) in
  let pairs : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (s, d, _) ->
      let ca = Chain.chain_of pool s and cb = Chain.chain_of pool d in
      if ca <> cb then Hashtbl.replace pairs (norm ca cb) ())
    cfg.Cfg.edges;
  let gains : (int * int, (float * float * int array) option) Hashtbl.t =
    Hashtbl.create 64
  in
  let continue_ = ref true in
  while !continue_ && Hashtbl.length pairs > 0 do
    let keys =
      Hashtbl.fold (fun k () acc -> k :: acc) pairs [] |> List.sort compare
    in
    let best = ref None in
    List.iter
      (fun (a, b) ->
        let g =
          match Hashtbl.find_opt gains (a, b) with
          | Some g -> g
          | None ->
              let g = best_merge a b in
              Hashtbl.replace gains (a, b) g;
              g
        in
        match g with
        | Some (gain, score, arr) -> (
            match !best with
            | Some (bg, _, _, _, _) when gain <= bg +. epsilon -> ()
            | _ -> best := Some (gain, score, arr, a, b))
        | None -> ())
      keys;
    match !best with
    | Some (gain, score, arr, a, b) when gain > epsilon ->
        Chain.replace pool ~keep:a ~drop:b arr;
        chain_score.(a) <- score;
        (* rekey b's pairs onto a, and drop stale gains touching a or b *)
        let touched (x, y) = x = a || y = a || x = b || y = b in
        let old = Hashtbl.fold (fun k () acc -> k :: acc) pairs [] in
        List.iter
          (fun ((x, y) as k) ->
            if touched k then begin
              Hashtbl.remove pairs k;
              let partner = if x = a || x = b then y else x in
              if partner <> a && partner <> b then
                Hashtbl.replace pairs (norm a partner) ()
            end)
          old;
        Hashtbl.iter
          (fun k _ -> if touched k then Hashtbl.remove gains k)
          (Hashtbl.copy gains)
    | _ -> continue_ := false
  done;
  final_order cfg pool

let order algo (cfg : Cfg.t) =
  if Cfg.node_count cfg <= 1 then Cfg.identity cfg
  else
    match algo with
    | Cache -> cache cfg
    | Cache_plus -> cache_plus cfg
    | Ext_tsp ->
        (* Never-regress guard, two keys.  Among {ext-tsp, cache+,
           original}, keep the best under the objective (ties prefer
           ext-tsp) — but only candidates that keep at least cache+'s
           fall-through weight are eligible.  The objective's proximity
           terms can trade a fall-through for short-jump credit, which
           raises the score while raising taken branches too; pinning
           fall-through weight at the cache+ floor means switching the
           default to ext-tsp can only remove taken branches, never add
           them, while the score still never drops below cache+ (cache+
           itself always meets its own floor). *)
        let cp = cache_plus cfg in
        let floor = Exttsp.fallthroughs cfg cp in
        let candidates = [ ext_tsp_merge cfg; cp; Cfg.identity cfg ] in
        let scored =
          List.filter_map
            (fun o ->
              if Exttsp.fallthroughs cfg o >= floor then
                Some (Exttsp.score cfg o, o)
              else None)
            candidates
        in
        let best =
          List.fold_left
            (fun (bs, bo) (s, o) ->
              if s > bs +. epsilon then (s, o) else (bs, bo))
            (List.hd scored) (List.tl scored)
        in
        snd best
