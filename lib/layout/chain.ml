(* The single chain abstraction behind every layout pass in the tree.

   A pool starts with one singleton chain per node and supports exactly
   one mutation: replacing two live chains by an arbitrary arrangement
   of their blocks (concatenation either way round, or a split-merge
   like X1·Y·X2).  Chains are arrays, so endpoints are O(1) and merge
   cost is proportional to the merged length; [chain_of] is a flat
   node -> chain-id map, so no union-find or hashtable of mutable list
   cells is needed.  Chain ids are the id of one of the member nodes,
   which keeps every downstream tie-break deterministic. *)

type t = {
  blocks : int array array;  (* chain id -> member nodes; [||] = dead *)
  node_chain : int array;    (* node id -> chain id *)
  weight : int array;        (* chain id -> summed node counts *)
  size : int array;          (* chain id -> summed node sizes *)
  mutable live : int;
}

let create (cfg : Cfg.t) =
  let n = Cfg.node_count cfg in
  {
    blocks = Array.init n (fun i -> [| i |]);
    node_chain = Array.init n (fun i -> i);
    weight = Array.init n (fun i -> Cfg.count cfg i);
    size = Array.init n (fun i -> Cfg.size cfg i);
    live = n;
  }

let chain_of t node = t.node_chain.(node)
let alive t c = Array.length t.blocks.(c) > 0
let blocks t c = t.blocks.(c)
let weight t c = t.weight.(c)
let size t c = t.size.(c)
let length t c = Array.length t.blocks.(c)
let head t c = t.blocks.(c).(0)
let tail t c = let b = t.blocks.(c) in b.(Array.length b - 1)

(* Live chain ids in ascending order — the deterministic iteration
   order for final emission. *)
let live_chains t =
  let acc = ref [] in
  for c = Array.length t.blocks - 1 downto 0 do
    if alive t c then acc := c :: !acc
  done;
  !acc

(* Replace chains [keep] and [drop] by [merged], which must be a
   permutation of their combined blocks (the caller decides the
   arrangement: XY, YX, or a split like X1·Y·X2). *)
let replace t ~keep ~drop merged =
  if keep = drop || not (alive t keep) || not (alive t drop) then
    invalid_arg "Chain.replace: need two distinct live chains";
  if Array.length merged <> length t keep + length t drop then
    invalid_arg "Chain.replace: arrangement loses or duplicates blocks";
  t.blocks.(keep) <- merged;
  t.blocks.(drop) <- [||];
  t.weight.(keep) <- t.weight.(keep) + t.weight.(drop);
  t.weight.(drop) <- 0;
  t.size.(keep) <- t.size.(keep) + t.size.(drop);
  t.size.(drop) <- 0;
  Array.iter (fun node -> t.node_chain.(node) <- keep) merged;
  t.live <- t.live - 1

(* Tail-to-head concatenation, the classic Pettis-Hansen move. *)
let append t ~into other =
  replace t ~keep:into ~drop:other (Array.append t.blocks.(into) t.blocks.(other))

(* Emit [chains] in the given order as one flat node order. *)
let emit t chains =
  Array.concat (List.map (fun c -> t.blocks.(c)) chains)
