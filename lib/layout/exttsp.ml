(* The ExtTSP objective (Newell & Pupyrev, "Improved Basic Block
   Reordering").  An edge (s, d, w) placed at addresses [src_end] (end
   of s) and [dst] (start of d) contributes

     w            when d falls through  (dst = src_end)
     0.1·w·(1 − dist/1024)   for a short forward jump (dist < 1024)
     0.1·w·(1 − dist/640)    for a short backward jump (dist < 640)

   and nothing otherwise.  Maximising the sum rewards fall-throughs
   first but still credits layouts that keep branch targets within a
   cache line or two, which plain maximum-fall-through chaining
   ignores. *)

let fallthrough_weight = 1.0
let forward_weight = 0.1
let forward_distance = 1024
let backward_weight = 0.1
let backward_distance = 640

let score_edge ~src_end ~dst count =
  let w = float_of_int count in
  if dst = src_end then fallthrough_weight *. w
  else if dst > src_end then begin
    let d = dst - src_end in
    if d < forward_distance then
      forward_weight *. w
      *. (1.0 -. (float_of_int d /. float_of_int forward_distance))
    else 0.0
  end
  else begin
    let d = src_end - dst in
    if d < backward_distance then
      backward_weight *. w
      *. (1.0 -. (float_of_int d /. float_of_int backward_distance))
    else 0.0
  end

(* Score a full layout: [order] is a permutation of the graph's nodes
   (or a subset — edges with an unplaced endpoint count zero). *)
let score (cfg : Cfg.t) (order : int array) =
  let n = Cfg.node_count cfg in
  let addr = Array.make n (-1) in
  let a = ref 0 in
  Array.iter
    (fun b ->
      addr.(b) <- !a;
      a := !a + Cfg.size cfg b)
    order;
  let total = ref 0.0 in
  Array.iter
    (fun b ->
      let src_end = addr.(b) + Cfg.size cfg b in
      List.iter
        (fun (d, c) ->
          if addr.(d) >= 0 then
            total := !total +. score_edge ~src_end ~dst:addr.(d) c)
        cfg.Cfg.succ.(b))
    order;
  !total

(* The fall-through component alone: summed counts of edges whose
   destination is laid out immediately after their source.  A function's
   estimated taken-branch count is its total branch weight minus exactly
   this, so comparing layouts by [fallthroughs] compares their taken
   branches with the sign flipped. *)
let fallthroughs (cfg : Cfg.t) (order : int array) =
  let next = Array.make (Cfg.node_count cfg) (-1) in
  let last = Array.length order - 1 in
  Array.iteri (fun i b -> if i < last then next.(b) <- order.(i + 1)) order;
  Array.fold_left
    (fun acc (s, d, c) -> if next.(s) = d then acc + c else acc)
    0 cfg.Cfg.edges
