(* The layout engine's view of a control-flow (or call) graph: an array
   of weighted, sized nodes plus deduplicated weighted edges.  Node ids
   are indices into [nodes]; the array order is the *original* layout,
   so the identity permutation scores the input layout.

   The same structure serves all three layers: basic blocks inside a
   function (lib/core, lib/minic) and whole functions in the call graph
   (lib/hfsort, with [entry = -1]). *)

type node = {
  n_label : string;  (* block label / function name, for reporting *)
  n_size : int;      (* bytes (or a byte proxy) occupied by the node *)
  n_count : int;     (* execution count / samples *)
}

type t = {
  nodes : node array;
  entry : int;  (* index of the entry node, or -1 when order-free *)
  edges : (int * int * int) array;
      (* (src, dst, count), deduplicated, sorted by count desc then
         (src, dst) asc — the deterministic hot-first order every greedy
         consumer wants *)
  succ : (int * int) list array;  (* per-node out-edges, same sort *)
}

let node_count t = Array.length t.nodes
let size t i = t.nodes.(i).n_size
let count t i = t.nodes.(i).n_count
let label t i = t.nodes.(i).n_label

(* Build a graph.  Self-edges, non-positive counts and out-of-range
   endpoints are dropped; parallel edges are summed.  The edge sort is
   total (count desc, then (src, dst) asc), so downstream greedy loops
   are deterministic no matter what order edges arrive in. *)
let make ~nodes ?(entry = -1) edges =
  let n = Array.length nodes in
  let tbl = Hashtbl.create (List.length edges * 2 + 1) in
  List.iter
    (fun (s, d, c) ->
      if s <> d && c > 0 && s >= 0 && s < n && d >= 0 && d < n then
        match Hashtbl.find_opt tbl (s, d) with
        | Some r -> r := !r + c
        | None -> Hashtbl.add tbl (s, d) (ref c))
    edges;
  let edges =
    Hashtbl.fold (fun (s, d) c acc -> (s, d, !c) :: acc) tbl []
    |> List.sort (fun (s1, d1, a) (s2, d2, b) ->
           if a <> b then compare b a else compare (s1, d1) (s2, d2))
    |> Array.of_list
  in
  let succ = Array.make (max n 1) [] in
  Array.iter (fun (s, d, c) -> succ.(s) <- (d, c) :: succ.(s)) edges;
  Array.iteri (fun i l -> succ.(i) <- List.rev l) succ;
  let entry = if entry >= 0 && entry < n then entry else -1 in
  { nodes; entry; edges; succ }

let total_size t = Array.fold_left (fun a n -> a + n.n_size) 0 t.nodes

(* The identity permutation: the layout the graph was built from. *)
let identity t = Array.init (node_count t) (fun i -> i)
