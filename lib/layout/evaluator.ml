(* Offline layout evaluator: score a layout and estimate its hot
   working set without running anything.

   The ExtTSP score comes straight from the objective; the i-cache-line
   and i-TLB-page estimates reuse lib/sim's set-associative cache model
   statically — configured fully associative and big enough never to
   evict, every cold miss is one distinct line (page) touched by a
   block that executed at least once.  That makes `bsim`-free layout
   comparisons possible: a layout that packs the hot blocks into fewer
   lines and pages is better before any simulation. *)

type result = {
  ev_score : float;       (* ExtTSP objective of the layout *)
  ev_hot_bytes : int;     (* bytes in blocks with a nonzero count *)
  ev_icache_lines : int;  (* distinct icache lines those blocks span *)
  ev_itlb_pages : int;    (* distinct ITLB pages those blocks span *)
}

let zero = { ev_score = 0.0; ev_hot_bytes = 0; ev_icache_lines = 0; ev_itlb_pages = 0 }

let add a b =
  {
    ev_score = a.ev_score +. b.ev_score;
    ev_hot_bytes = a.ev_hot_bytes + b.ev_hot_bytes;
    ev_icache_lines = a.ev_icache_lines + b.ev_icache_lines;
    ev_itlb_pages = a.ev_itlb_pages + b.ev_itlb_pages;
  }

(* A never-evicting counter of distinct lines: one set, enough ways for
   every line the layout could touch. *)
let distinct_line_counter ~line ~total_size =
  let ways = max 4 ((total_size / line) + 2) in
  Bolt_sim.Cache.create ~size:(line * ways) ~line ~assoc:ways

let evaluate ?(line = 64) ?(page = 4096) (cfg : Cfg.t) (order : int array) =
  let total_size = max 1 (Cfg.total_size cfg) in
  let lines = distinct_line_counter ~line ~total_size in
  let pages = distinct_line_counter ~line:page ~total_size in
  let addr = ref 0 in
  let hot_bytes = ref 0 in
  Array.iter
    (fun b ->
      let sz = Cfg.size cfg b in
      if Cfg.count cfg b > 0 && sz > 0 then begin
        hot_bytes := !hot_bytes + sz;
        let first = !addr / line and last = (!addr + sz - 1) / line in
        for l = first to last do
          ignore (Bolt_sim.Cache.access lines (l * line))
        done;
        let firstp = !addr / page and lastp = (!addr + sz - 1) / page in
        for p = firstp to lastp do
          ignore (Bolt_sim.Cache.access pages (p * page))
        done
      end;
      addr := !addr + sz)
    order;
  {
    ev_score = Exttsp.score cfg order;
    ev_hot_bytes = !hot_bytes;
    ev_icache_lines = lines.Bolt_sim.Cache.misses;
    ev_itlb_pages = pages.Bolt_sim.Cache.misses;
  }
