(** End-to-end experiment driver: the tool flow of Figure 1.

    {[
      let b = Pipeline.compile [ ("m", source) ] in
      let prof, _ = Pipeline.profile b ~input in
      let b', report = Pipeline.bolt b prof in
      let base = Pipeline.run b ~input and opt = Pipeline.run b' ~input in
      assert (Pipeline.same_behaviour base opt);
      Pipeline.speedup ~baseline:base ~optimized:opt
    ]} *)

module Machine = Bolt_sim.Machine
module Obs = Bolt_obs.Obs

(** A built executable together with the compiler options that produced it
    (profiling re-runs need the same options). *)
type build = { exe : Bolt_obj.Objfile.t; cc : Bolt_minic.Driver.options }

(** Every stage accepts an optional telemetry bundle ([?obs]); given one,
    the stage runs inside a span ("compile", "profile", "bolt", "run") and
    records stage metrics, so a driver gets a single trace across the whole
    experiment. Omitted, the helpers are telemetry-free. *)

val compile :
  ?obs:Obs.t -> ?cc:Bolt_minic.Driver.options -> (string * string) list -> build

(** The revision identity a deployment pipeline keys on: the build-id
    stamp and CFG fingerprint table of the built binary. These are what
    {!Bolt_fleet.Merge} staleness recovery and the fleet health monitor
    expect for the target revision. *)
val build_id : build -> string

val fingerprints : build -> Bolt_obj.Fingerprint.t

(** LBR sampling on cycles, the paper's [-e cycles:u -j any,u]. *)
val default_sampling : Machine.sample_cfg

(** Run under the sampling profiler and aggregate to an fdata profile. *)
val profile :
  ?obs:Obs.t ->
  ?sampling:Machine.sample_cfg ->
  ?config:Machine.config ->
  build ->
  input:int array ->
  Bolt_profile.Fdata.t * Machine.outcome

(** Like {!profile}, but stamp the resulting fdata with a fleet
    provenance header: the host label, the build's build-id, the given
    collection [timestamp] and the raw sampling-event count. The fleet
    merger ({!Bolt_fleet.Merge}) keys weighting, age-decay and staleness
    checks on this header. *)
val profile_shard :
  ?obs:Obs.t ->
  ?sampling:Machine.sample_cfg ->
  ?config:Machine.config ->
  host:string ->
  ?weight:float ->
  timestamp:int ->
  build ->
  input:int array ->
  Bolt_profile.Fdata.t * Machine.outcome

(** Apply BOLT, returning the rewritten build and its report. With [?obs]
    the per-pass spans of the optimizer nest under this stage's "bolt"
    span. [?jobs] overrides [opts.jobs] (worker domains for per-function
    passes); output is byte-identical regardless of the value. *)
val bolt :
  ?obs:Obs.t ->
  ?opts:Bolt_core.Opts.t ->
  ?jobs:int ->
  build ->
  Bolt_profile.Fdata.t ->
  build * Bolt_core.Bolt.report

val run :
  ?obs:Obs.t ->
  ?config:Machine.config ->
  ?heatmap:bool ->
  build ->
  input:int array ->
  Machine.outcome

(** Instrumentation-based compiler PGO: build with edge counters, run on
    the training input, and return the edge profile for
    {!Bolt_minic.Driver.Apply}. *)
val pgo_profile :
  ?externals:(string * int) list ->
  ?extra_objs:Bolt_obj.Objfile.t list ->
  cc:Bolt_minic.Driver.options ->
  (string * string) list ->
  input:int array ->
  (string * int * int * int) list

(** Profile a binary and compute an HFSort function order for relinking —
    the paper's data-center baseline. *)
val hfsort_order :
  ?algo:Bolt_hfsort.Order.algo -> build -> input:int array -> string list

(** Percentage speedup of [optimized] over [baseline] (cycle ratio). *)
val speedup : baseline:Machine.outcome -> optimized:Machine.outcome -> float

(** [miss_reduction ~before ~after] in percent; 0 when [before] is 0. *)
val miss_reduction : before:int -> after:int -> float

type metric_deltas = {
  d_cycles : float;  (** CPU-time reduction, % *)
  d_instructions : float;
  d_branch_miss : float;
  d_l1i_miss : float;
  d_l1d_miss : float;
  d_llc_miss : float;
  d_itlb_miss : float;
  d_dtlb_miss : float;
  d_taken_branches : float;
}

val deltas : baseline:Machine.outcome -> optimized:Machine.outcome -> metric_deltas

(** The repository's central invariant: same output tape, exit code and
    exception behaviour. *)
val same_behaviour : Machine.outcome -> Machine.outcome -> bool
