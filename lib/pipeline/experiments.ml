(* One experiment per table/figure of the paper's evaluation (§6).

   Each experiment returns structured rows together with the paper's
   reported numbers, so the harness can print measured-vs-paper tables.
   Absolute magnitudes differ (our substrate is a simulator, not a Xeon
   fleet); what must reproduce is the shape: who wins, roughly by how
   much, and in which direction each micro-architecture metric moves. *)

module Machine = Bolt_sim.Machine

let geomean xs =
  match xs with
  | [] -> 0.0
  | _ ->
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun a x -> a +. log (1.0 +. (x /. 100.0))) 0.0 xs /. n) -. 1.0
      |> fun g -> g *. 100.0

(* ---- shared flows ---- *)

type fb_result = {
  fb_name : string;
  fb_speedup : float; (* BOLT over the HFSort(+LTO) baseline, % *)
  fb_deltas : Pipeline.metric_deltas;
  fb_report : Bolt_core.Bolt.report;
  fb_base : Machine.outcome;
  fb_opt : Machine.outcome;
  fb_base_exe : Bolt_obj.Objfile.t;
  fb_opt_exe : Bolt_obj.Objfile.t;
  fb_behaviour_ok : bool;
}

(* The Figure-5 flow: -O2 (+LTO for hhvm) + HFSort-at-link-time baseline,
   then BOLT on top of it. *)
let fb_flow ?(lto = false) ?(heatmap = false) ?(bolt_opts = Bolt_core.Opts.default)
    ~name (params : Bolt_workloads.Gen.params) : fb_result =
  let w = Bolt_workloads.Gen.gen params in
  let compile cc =
    Bolt_minic.Driver.compile ~options:cc ~externals:w.externals
      ~extra_objs:w.extra_objs w.sources
  in
  let cc0 = { Bolt_minic.Driver.default_options with lto } in
  let b0 = compile cc0 in
  let prof0, _ =
    Pipeline.profile { Pipeline.exe = b0.exe; cc = cc0 } ~input:w.input
  in
  (* HFSort at link time, as in [25] *)
  let funcs =
    Bolt_obj.Objfile.function_symbols b0.exe
    |> List.filter_map (fun (s : Bolt_obj.Types.symbol) ->
           if s.sym_section = ".text" then Some (s.sym_name, max 1 s.sym_size)
           else None)
  in
  let g = Bolt_hfsort.Callgraph.of_profile ~funcs prof0 in
  let order =
    Bolt_hfsort.Order.order Bolt_hfsort.Order.C3 g ~original:(List.map fst funcs)
  in
  let cc1 = { cc0 with func_order = Some order } in
  let b1 = compile cc1 in
  let base = Machine.run ~heatmap b1.exe ~input:w.input in
  let prof1, _ = Pipeline.profile { Pipeline.exe = b1.exe; cc = cc1 } ~input:w.input in
  let exe2, report = Bolt_core.Bolt.optimize ~opts:bolt_opts b1.exe prof1 in
  let opt = Machine.run ~heatmap ~fuel:2_000_000_000 exe2 ~input:w.input in
  {
    fb_name = name;
    fb_speedup = Pipeline.speedup ~baseline:base ~optimized:opt;
    fb_deltas = Pipeline.deltas ~baseline:base ~optimized:opt;
    fb_report = report;
    fb_base = base;
    fb_opt = opt;
    fb_base_exe = b1.exe;
    fb_opt_exe = exe2;
    fb_behaviour_ok = Pipeline.same_behaviour base opt;
  }

(* ---- Figure 5: data-center workloads ---- *)

(* Paper's reported speedups (read off Figure 5). *)
let fig5_paper =
  [ ("hhvm", 8.0); ("tao", 6.4); ("proxygen", 4.4); ("multifeed1", 4.7); ("multifeed2", 3.7) ]

let fig5 ?(quick = false) () =
  let scale p =
    if quick then { p with Bolt_workloads.Gen.iterations = p.Bolt_workloads.Gen.iterations / 4 }
    else p
  in
  List.map
    (fun (name, params) ->
      fb_flow ~lto:(name = "hhvm") ~name (scale params))
    Bolt_workloads.Workloads.fb_workloads

(* ---- Figure 6: micro-architecture metrics for hhvm ---- *)

let fig6_paper =
  [
    ("branch-miss", 11.0);
    ("d-cache-miss", 1.0);
    ("i-cache-miss", 18.0);
    ("i-tlb-miss", 16.0);
    ("d-tlb-miss", 6.0);
    ("llc-miss", 5.5);
  ]

let fig6_rows (r : fb_result) =
  let d = r.fb_deltas in
  [
    ("branch-miss", d.Pipeline.d_branch_miss);
    ("d-cache-miss", d.Pipeline.d_l1d_miss);
    ("i-cache-miss", d.Pipeline.d_l1i_miss);
    ("i-tlb-miss", d.Pipeline.d_itlb_miss);
    ("d-tlb-miss", d.Pipeline.d_dtlb_miss);
    ("llc-miss", d.Pipeline.d_llc_miss);
  ]

(* ---- Figures 7/8: compilers ---- *)

type cc_variant = { cv_name : string; cv_speedups : (string * float) list }

type cc_result = {
  cc_variants : cc_variant list;
  cc_bolt_report : Bolt_core.Bolt.report; (* BOLT over baseline *)
  cc_pgobolt_report : Bolt_core.Bolt.report; (* BOLT over PGO(+LTO) *)
}

let compiler_inputs ?(quick = false) seed =
  let q n = if quick then n / 3 else n in
  [
    ("input1", Bolt_workloads.Workloads.token_input ~seed:(seed + 1) ~n:(q 2_000) ~mix:70);
    ("input2", Bolt_workloads.Workloads.token_input ~seed:(seed + 2) ~n:(q 5_000) ~mix:45);
    ("input3", Bolt_workloads.Workloads.token_input ~seed:(seed + 3) ~n:(q 12_000) ~mix:25);
    ("full-build", Bolt_workloads.Workloads.token_input ~seed:(seed + 4) ~n:(q 25_000) ~mix:50);
  ]

let compiler_flow ?(quick = false) ~(lto : bool) (params : Bolt_workloads.Gen.params) :
    cc_result =
  let w = Bolt_workloads.Gen.gen params in
  let inputs = compiler_inputs ~quick params.Bolt_workloads.Gen.seed in
  let train = List.assoc "full-build" inputs in
  let compile cc =
    Bolt_minic.Driver.compile ~options:cc ~externals:w.externals
      ~extra_objs:w.extra_objs w.sources
  in
  let cc_base = Bolt_minic.Driver.default_options in
  let b_base = compile cc_base in
  let run exe input = Machine.run ~fuel:2_000_000_000 exe ~input in
  let base_cycles =
    List.map (fun (n, i) -> (n, Machine.cycles (run b_base.exe i).Machine.counters)) inputs
  in
  let speedups_of exe =
    List.map
      (fun (n, i) ->
        let c = Machine.cycles (run exe i).Machine.counters in
        let c0 = List.assoc n base_cycles in
        (n, 100.0 *. (float_of_int c0 /. float_of_int c -. 1.0)))
      inputs
  in
  (* BOLT on the plain baseline *)
  let prof_base, _ =
    Pipeline.profile { Pipeline.exe = b_base.exe; cc = cc_base } ~input:train
  in
  let exe_bolt, rep_bolt = Bolt_core.Bolt.optimize b_base.exe prof_base in
  (* PGO (+LTO) *)
  let edge_prof =
    Pipeline.pgo_profile ~externals:w.externals ~extra_objs:w.extra_objs
      ~cc:{ cc_base with lto } w.sources ~input:train
  in
  let edge_prof =
    (* instrumented builds of the workload read the same input *)
    edge_prof
  in
  let cc_pgo = { cc_base with pgo = Bolt_minic.Driver.Apply edge_prof; lto } in
  let b_pgo = compile cc_pgo in
  (* BOLT on PGO(+LTO) *)
  let prof_pgo, _ =
    Pipeline.profile { Pipeline.exe = b_pgo.exe; cc = cc_pgo } ~input:train
  in
  let exe_pgobolt, rep_pgobolt = Bolt_core.Bolt.optimize b_pgo.exe prof_pgo in
  let pgo_name = if lto then "PGO+LTO" else "PGO" in
  {
    cc_variants =
      [
        { cv_name = "BOLT"; cv_speedups = speedups_of exe_bolt };
        { cv_name = pgo_name; cv_speedups = speedups_of b_pgo.exe };
        { cv_name = pgo_name ^ "+BOLT"; cv_speedups = speedups_of exe_pgobolt };
      ];
    cc_bolt_report = rep_bolt;
    cc_pgobolt_report = rep_pgobolt;
  }

let fig7_paper =
  [
    ("BOLT", [ ("input1", 52.14); ("input2", 40.15); ("input3", 22.27); ("full-build", 36.22) ]);
    ("PGO+LTO", [ ("input1", 39.92); ("input2", 30.54); ("input3", 21.52); ("full-build", 29.93) ]);
    ( "PGO+LTO+BOLT",
      [ ("input1", 68.49); ("input2", 53.25); ("input3", 33.98); ("full-build", 49.42) ] );
  ]

let fig8_paper =
  [
    ("BOLT", [ ("input1", 24.28); ("input2", 24.12); ("input3", 13.99); ("full-build", 21.26) ]);
    ("PGO", [ ("input1", 16.46); ("input2", 17.28); ("input3", 12.42); ("full-build", 15.73) ]);
    ( "PGO+BOLT",
      [ ("input1", 27.08); ("input2", 27.52); ("input3", 17.76); ("full-build", 24.35) ] );
  ]

let fig7 ?quick () = compiler_flow ?quick ~lto:true Bolt_workloads.Workloads.clang_like
let fig8 ?quick () = compiler_flow ?quick ~lto:false Bolt_workloads.Workloads.gcc_like

(* ---- Table 2: dyno-stats ---- *)

let table2_paper =
  [
    ("executed forward branches", -1.6, -1.0);
    ("taken forward branches", -83.9, -61.1);
    ("executed backward branches", 9.6, 6.0);
    ("taken backward branches", -9.2, -21.8);
    ("executed unconditional branches", -66.6, -36.3);
    ("executed instructions", -1.2, -0.7);
    ("total branches", -7.3, -2.2);
    ("taken branches", -69.8, -44.3);
    ("non-taken conditional branches", 60.0, 13.7);
    ("taken conditional branches", -70.6, -46.6);
  ]

let table2_rows (cc : cc_result) =
  let delta (r : Bolt_core.Bolt.report) =
    List.map2
      (fun (name, b) (_, a) -> (name, Bolt_core.Dyno_stats.pct_delta b a))
      (Bolt_core.Dyno_stats.rows r.Bolt_core.Bolt.r_dyno_before)
      (Bolt_core.Dyno_stats.rows r.Bolt_core.Bolt.r_dyno_after)
  in
  (delta cc.cc_bolt_report, delta cc.cc_pgobolt_report)

(* ---- Figure 9: heat maps ---- *)

type fig9_result = {
  h_before : Bolt_core.Heatmap.t;
  h_after : Bolt_core.Heatmap.t;
  h_prefix_before : float; (* heat in the first 1/16 of the text *)
  h_prefix_after : float;
  h_extent_before : int;
  h_extent_after : int;
}

let fig9_of (r : fb_result) =
  let span exe =
    List.fold_left
      (fun a (s : Bolt_obj.Types.section) ->
        if s.sec_kind = Bolt_obj.Types.Text then max a (s.sec_addr + s.sec_size) else a)
      0 exe.Bolt_obj.Objfile.sections
    - Bolt_obj.Layout.text_base
  in
  let mk exe (o : Machine.outcome) =
    match o.Machine.heat with
    | Some h ->
        Bolt_core.Heatmap.build ~base:Bolt_obj.Layout.text_base ~span:(span exe) h
    | None ->
        Bolt_core.Heatmap.build ~base:Bolt_obj.Layout.text_base ~span:1 (Hashtbl.create 1)
  in
  (* use the LARGER of the two spans for both maps so cells are comparable *)
  let before = mk r.fb_base_exe r.fb_base in
  let after = mk r.fb_opt_exe r.fb_opt in
  {
    h_before = before;
    h_after = after;
    h_prefix_before = Bolt_core.Heatmap.heat_in_prefix before (1.0 /. 16.0);
    h_prefix_after = Bolt_core.Heatmap.heat_in_prefix after (1.0 /. 16.0);
    h_extent_before = Bolt_core.Heatmap.hot_extent before;
    h_extent_after = Bolt_core.Heatmap.hot_extent after;
  }

(* ---- Figure 11 / §6.5: the importance of LBRs ---- *)

let fig11_paper =
  (* improvement from using LBRs, percent, per scenario *)
  [
    ("functions", [ ("instructions", 0.52); ("branch-miss", 0.66); ("i-cache-miss", 0.03); ("llc-miss", 1.75); ("i-tlb-miss", 0.09); ("cpu-time", 0.28) ]);
    ("bbs", [ ("instructions", 2.88); ("branch-miss", 2.43); ("i-cache-miss", 1.03); ("llc-miss", 5.39); ("i-tlb-miss", 1.71); ("cpu-time", 0.35) ]);
    ("both", [ ("instructions", 2.82); ("branch-miss", 5.16); ("i-cache-miss", 1.41); ("llc-miss", 8.2); ("i-tlb-miss", 2.16); ("cpu-time", 2.16) ]);
  ]

let scenario_opts = function
  | "functions" ->
      {
        Bolt_core.Opts.none with
        reorder_functions = Bolt_core.Opts.default.reorder_functions;
        split_all_cold = true;
      }
  | "bbs" ->
      { Bolt_core.Opts.default with reorder_functions = Bolt_core.Opts.Rf_none; split_all_cold = false }
  | _ -> Bolt_core.Opts.default

let fig11 ?(params = { Bolt_workloads.Workloads.hhvm_like with iterations = 6_000 }) () =
  let w = Bolt_workloads.Gen.gen params in
  let cc = Bolt_minic.Driver.default_options in
  let b =
    Bolt_minic.Driver.compile ~options:cc ~externals:w.externals ~extra_objs:w.extra_objs
      w.sources
  in
  let profile ~lbr =
    let sampling = { Pipeline.default_sampling with Machine.lbr } in
    let o = Machine.run ~sampling b.exe ~input:w.input in
    match o.Machine.profile with
    | Some raw -> Bolt_profile.Perf2bolt.convert b.exe raw
    | None -> Bolt_profile.Fdata.empty
  in
  let prof_lbr = profile ~lbr:true in
  let prof_nolbr = profile ~lbr:false in
  List.map
    (fun scenario ->
      let opts = scenario_opts scenario in
      let run prof =
        let exe, _ = Bolt_core.Bolt.optimize ~opts b.exe prof in
        Machine.run ~fuel:2_000_000_000 exe ~input:w.input
      in
      let with_lbr = run prof_lbr in
      let without = run prof_nolbr in
      let impr f =
        let a = float_of_int (f with_lbr.Machine.counters) in
        let b = float_of_int (f without.Machine.counters) in
        if b = 0.0 then 0.0 else 100.0 *. (b -. a) /. b
      in
      ( scenario,
        [
          ("instructions", impr (fun c -> c.Machine.instructions));
          ("branch-miss", impr (fun c -> c.Machine.branch_misses));
          ("i-cache-miss", impr (fun c -> c.Machine.l1i_misses));
          ("llc-miss", impr (fun c -> c.Machine.llc_misses));
          ("i-tlb-miss", impr (fun c -> c.Machine.itlb_misses));
          ("cpu-time", impr (fun c -> Machine.cycles c * 4));
        ] ))
    [ "functions"; "bbs"; "both" ]

(* ---- §5.1: sampling events ---- *)

let sec51 ?(params = { Bolt_workloads.Workloads.hhvm_like with iterations = 6_000 }) () =
  let w = Bolt_workloads.Gen.gen params in
  let cc = Bolt_minic.Driver.default_options in
  let b =
    Bolt_minic.Driver.compile ~options:cc ~externals:w.externals ~extra_objs:w.extra_objs
      w.sources
  in
  let base = Machine.run b.exe ~input:w.input in
  let try_sampling name (s : Machine.sample_cfg) =
    let o = Machine.run ~sampling:s b.exe ~input:w.input in
    let prof =
      match o.Machine.profile with
      | Some raw -> Bolt_profile.Perf2bolt.convert b.exe raw
      | None -> Bolt_profile.Fdata.empty
    in
    let exe, _ = Bolt_core.Bolt.optimize b.exe prof in
    let opt = Machine.run ~fuel:2_000_000_000 exe ~input:w.input in
    (name, Pipeline.speedup ~baseline:base ~optimized:opt)
  in
  [
    try_sampling "lbr-cycles"
      { Machine.event = Machine.Ev_cycles; period = 4001; lbr = true; precise = true };
    try_sampling "lbr-instructions"
      { Machine.event = Machine.Ev_instructions; period = 1009; lbr = true; precise = true };
    try_sampling "lbr-taken-branches"
      { Machine.event = Machine.Ev_taken_branches; period = 257; lbr = true; precise = true };
    try_sampling "lbr-cycles-skid"
      { Machine.event = Machine.Ev_cycles; period = 4001; lbr = true; precise = false };
    try_sampling "nolbr-cycles"
      { Machine.event = Machine.Ev_cycles; period = 997; lbr = false; precise = true };
    try_sampling "nolbr-instructions"
      { Machine.event = Machine.Ev_instructions; period = 251; lbr = false; precise = false };
  ]

(* ---- §4: ICF on top of linker ICF ---- *)

type icf_result = {
  icf_linker_folded : int;
  icf_linker_bytes : int;
  icf_bolt_folded : int;
  icf_bolt_bytes : int;
  icf_text_size : int;
  icf_pct : float; (* BOLT's extra reduction, % of text *)
}

let icf_experiment ?(params = { Bolt_workloads.Workloads.hhvm_like with iterations = 3_000 })
    () =
  let w = Bolt_workloads.Gen.gen params in
  let cc = { Bolt_minic.Driver.default_options with linker_icf = true } in
  let r =
    Bolt_minic.Driver.compile ~options:cc ~externals:w.externals ~extra_objs:w.extra_objs
      w.sources
  in
  let prof, _ = Pipeline.profile { Pipeline.exe = r.exe; cc } ~input:w.input in
  let opts = { Bolt_core.Opts.none with icf = true } in
  let _, report = Bolt_core.Bolt.optimize ~opts r.exe prof in
  let text = Bolt_obj.Objfile.text_size r.exe in
  {
    icf_linker_folded = r.link_stats.Bolt_linker.Linker.icf_folded;
    icf_linker_bytes = r.link_stats.Bolt_linker.Linker.icf_bytes_saved;
    icf_bolt_folded = report.Bolt_core.Bolt.r_icf_folded;
    icf_bolt_bytes = report.Bolt_core.Bolt.r_icf_bytes;
    icf_text_size = text;
    icf_pct = 100.0 *. float_of_int report.Bolt_core.Bolt.r_icf_bytes /. float_of_int text;
  }

(* ---- Figure 2: the motivating example ---- *)

(* foo's branch direction depends on the call site; the compiler's PGO
   aggregates the two inlined copies, BOLT sees them separately. *)
let fig2_source =
  {|
global sink = 0;
inline fn foo(x) {
  if (x > 0) { return x * 3 + 1; } else { return x * 5 - 1; }
}
fn bar(i) { return foo((i % 100) + 1); }
fn baz(i) { return foo(0 - (i % 100) - 1); }
fn main() {
  var i = 0;
  while (i < 40000) {
    sink = sink + bar(i) + baz(i);
    i = i + 1;
  }
  out sink;
  return 0;
}
|}

type fig2_result = {
  f2_plain_taken : int; (* taken conditional branches, plain -O2 build *)
  f2_pgo_taken : int; (* same, instrumentation-PGO build *)
  f2_bolt_taken : int; (* same, BOLT applied to the plain build *)
  f2_plain_cycles : int;
  f2_pgo_cycles : int;
  f2_bolt_cycles : int;
  f2_plain_branches : int; (* total taken branches (any kind), plain *)
  f2_pgo_branches : int;
  f2_bolt_branches : int;
  f2_behaviour_ok : bool;
}

(* Three builds of the foo/bar/baz example.  Plain -O2 keeps source
   order: both inlined copies of foo take their conditional every
   iteration.  Instrumented PGO feeds each copy's own edge counters to
   the layout engine, which collapses both at compile time.  BOLT gets
   only per-address samples of the *plain* binary — no recompile, no
   counters — and must recover the same layout, which it does, plus the
   loop rotation compile-time layout keeps missing (the rotated loop
   trades its back-edge jmp for a bottom-of-loop conditional, so total
   taken branches drop well below even the PGO build). *)
let fig2 () =
  let sources = [ ("m", fig2_source) ] in
  let cc = Bolt_minic.Driver.default_options in
  let plain = Bolt_minic.Driver.compile ~options:cc sources in
  let base = Machine.run plain.exe ~input:[||] in
  let edge_prof = Pipeline.pgo_profile ~cc sources ~input:[||] in
  let b =
    Bolt_minic.Driver.compile
      ~options:{ cc with pgo = Bolt_minic.Driver.Apply edge_prof }
      sources
  in
  let pgo = Machine.run b.exe ~input:[||] in
  let prof, _ = Pipeline.profile { Pipeline.exe = plain.exe; cc } ~input:[||] in
  let exe', _ = Bolt_core.Bolt.optimize plain.exe prof in
  let opt = Machine.run ~fuel:2_000_000_000 exe' ~input:[||] in
  {
    f2_plain_taken = base.Machine.counters.Machine.cond_taken;
    f2_pgo_taken = pgo.Machine.counters.Machine.cond_taken;
    f2_bolt_taken = opt.Machine.counters.Machine.cond_taken;
    f2_plain_cycles = Machine.cycles base.Machine.counters;
    f2_pgo_cycles = Machine.cycles pgo.Machine.counters;
    f2_bolt_cycles = Machine.cycles opt.Machine.counters;
    f2_plain_branches = base.Machine.counters.Machine.taken_branches;
    f2_pgo_branches = pgo.Machine.counters.Machine.taken_branches;
    f2_bolt_branches = opt.Machine.counters.Machine.taken_branches;
    f2_behaviour_ok =
      Pipeline.same_behaviour base opt && Pipeline.same_behaviour base pgo;
  }

(* ---- Figure 10 / §6.3: report-bad-layout ---- *)

let fig10 ?(quick = false) () =
  let params = Bolt_workloads.Workloads.clang_like in
  let w = Bolt_workloads.Gen.gen params in
  let inputs = compiler_inputs ~quick params.Bolt_workloads.Gen.seed in
  let train = List.assoc "full-build" inputs in
  let cc = Bolt_minic.Driver.default_options in
  let edge_prof =
    Pipeline.pgo_profile ~externals:w.externals ~extra_objs:w.extra_objs
      ~cc:{ cc with lto = true } w.sources ~input:train
  in
  let cc_pgo = { cc with pgo = Bolt_minic.Driver.Apply edge_prof; lto = true } in
  let b =
    Bolt_minic.Driver.compile ~options:cc_pgo ~externals:w.externals
      ~extra_objs:w.extra_objs w.sources
  in
  let prof, _ = Pipeline.profile { Pipeline.exe = b.exe; cc = cc_pgo } ~input:train in
  let _, report = Bolt_core.Bolt.optimize b.exe prof in
  report.Bolt_core.Bolt.r_bad_layout

(* ---- ablations ---- *)

let ablations ?(params = { Bolt_workloads.Workloads.hhvm_like with iterations = 6_000 }) ()
    =
  let variants =
    [
      ("full (ext-tsp, hfsort+)", Bolt_core.Opts.default);
      ("reorder-blocks=cache+", { Bolt_core.Opts.default with reorder_blocks = Bolt_core.Opts.Rb_cache_plus });
      ("reorder-blocks=cache", { Bolt_core.Opts.default with reorder_blocks = Bolt_core.Opts.Rb_cache });
      ("reorder-blocks=none", { Bolt_core.Opts.default with reorder_blocks = Bolt_core.Opts.Rb_none });
      ("reorder-functions=hfsort", { Bolt_core.Opts.default with reorder_functions = Bolt_core.Opts.Rf_hfsort });
      ("reorder-functions=ph", { Bolt_core.Opts.default with reorder_functions = Bolt_core.Opts.Rf_pettis_hansen });
      ("reorder-functions=none", { Bolt_core.Opts.default with reorder_functions = Bolt_core.Opts.Rf_none });
      ("no-splitting", { Bolt_core.Opts.default with split_functions = Bolt_core.Opts.Split_none; split_all_cold = false; split_eh = false });
      ("no-trust-fallthrough", { Bolt_core.Opts.default with trust_fallthrough = false });
      ("no-nop-stripping", { Bolt_core.Opts.default with strip_nops = false });
      ("no-icf-icp-inline", { Bolt_core.Opts.default with icf = false; icp = false; inline_small = false });
    ]
  in
  List.map
    (fun (name, opts) ->
      let r = fb_flow ~name ~bolt_opts:opts params in
      (name, r.fb_speedup, r.fb_behaviour_ok))
    variants
