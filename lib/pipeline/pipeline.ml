(* End-to-end experiment driver: the flow every evaluation in the paper
   follows.

     sources --minicc--> exe --bsim+sampling--> raw samples
         --perf2bolt--> fdata --obolt--> exe' --bsim--> counters'

   Helpers here also cover the compiler-PGO leg (instrument, run, dump
   counters, rebuild with the profile) and HFSort-at-link-time (profile a
   binary, compute a function order, relink), which the paper's baselines
   use. *)

module Machine = Bolt_sim.Machine
module Obs = Bolt_obs.Obs

(* Every stage helper takes an optional telemetry bundle; when present the
   stage runs inside a span so an experiment driver gets one trace across
   compile -> profile -> bolt -> re-run.  Omitted, the helpers cost
   nothing (a null no-op handle). *)
let opt_obs = function Some obs -> obs | None -> Obs.null ()

type build = {
  exe : Bolt_obj.Objfile.t;
  cc : Bolt_minic.Driver.options;
}

(* The revision identity a deployment pipeline keys on: the binary's
   build-id stamp plus its CFG fingerprint table.  This is what the fleet
   merger's staleness checks ([Merge.recover_stale*]) and the health
   monitor's rollout view expect for the target build. *)
let build_id (b : build) : string = b.exe.Bolt_obj.Objfile.build_id
let fingerprints (b : build) : Bolt_obj.Fingerprint.t =
  b.exe.Bolt_obj.Objfile.fingerprints

let compile ?obs ?(cc = Bolt_minic.Driver.default_options) sources : build =
  let obs = opt_obs obs in
  Obs.span obs "compile" (fun () ->
      let r = Bolt_minic.Driver.compile ~options:cc sources in
      Obs.incr obs ~by:(List.length sources) "build.sources";
      { exe = r.exe; cc })

let default_sampling =
  {
    Machine.event = Machine.Ev_cycles;
    period = 4001;
    lbr = true;
    precise = true;
  }

(* Run under the sampling profiler and convert to fdata. *)
let profile ?obs ?(sampling = default_sampling) ?config (b : build) ~input :
    Bolt_profile.Fdata.t * Machine.outcome =
  let obs = opt_obs obs in
  Obs.span obs "profile" (fun () ->
      let o = Machine.run ?config ~sampling b.exe ~input in
      match o.Machine.profile with
      | Some raw ->
          Obs.incr obs ~by:raw.Machine.rp_samples "samples.raw";
          let fdata = Bolt_profile.Perf2bolt.convert b.exe raw in
          Obs.incr obs
            ~by:(List.length fdata.Bolt_profile.Fdata.branches)
            "fdata.branch_records";
          (fdata, o)
      | None -> (Bolt_profile.Fdata.empty, o))

(* Profile one simulated host into a fleet shard: same as [profile], but
   the resulting fdata carries a provenance header — the host label, the
   profiled binary's build-id, the collection timestamp and the raw
   sampling-event count — which is what the fleet merger's weighting,
   decay and staleness checks key on. *)
let profile_shard ?obs ?sampling ?config ~host ?(weight = 1.0) ~timestamp
    (b : build) ~input : Bolt_profile.Fdata.t * Machine.outcome =
  let prof, o = profile ?obs ?sampling ?config b ~input in
  let events =
    match o.Machine.profile with
    | Some raw -> Int64.of_int raw.Machine.rp_samples
    | None -> 0L
  in
  let header =
    {
      Bolt_profile.Fdata.hd_host = host;
      hd_build_id = b.exe.Bolt_obj.Objfile.build_id;
      hd_timestamp = timestamp;
      hd_events = events;
      hd_weight = weight;
    }
  in
  ({ prof with Bolt_profile.Fdata.header = Some header }, o)

(* Apply BOLT and return the rewritten binary plus its report.  The obs
   handle is threaded straight into the optimizer, so the experiment
   trace nests every pass span under "bolt".  [jobs] overrides
   [opts.jobs] (worker domains for per-function passes); output is
   byte-identical regardless. *)
let bolt ?obs ?(opts = Bolt_core.Opts.default) ?jobs (b : build)
    (prof : Bolt_profile.Fdata.t) : build * Bolt_core.Bolt.report =
  let obs = opt_obs obs in
  let opts =
    match jobs with None -> opts | Some j -> { opts with Bolt_core.Opts.jobs = j }
  in
  Obs.span obs "bolt" (fun () ->
      let exe', report = Bolt_core.Bolt.optimize ~opts ~obs b.exe prof in
      ({ b with exe = exe' }, report))

let run ?obs ?config ?heatmap (b : build) ~input : Machine.outcome =
  let obs = opt_obs obs in
  Obs.span obs "run" (fun () -> Machine.run ?config ?heatmap b.exe ~input)

(* ---- compiler PGO leg ---- *)

(* Build instrumented, run it, and return the edge profile for Apply. *)
let pgo_profile ?(externals = []) ?(extra_objs = []) ~(cc : Bolt_minic.Driver.options)
    sources ~input : (string * int * int * int) list =
  let opts = { cc with Bolt_minic.Driver.pgo = Bolt_minic.Driver.Instrument } in
  let r = Bolt_minic.Driver.compile ~options:opts ~externals ~extra_objs sources in
  let mapping = match r.mapping with Some m -> m | None -> [] in
  let o = Machine.run r.exe ~input in
  (* read the counter array back from the final memory image *)
  let base =
    match Bolt_obj.Objfile.find_symbol r.exe Bolt_minic.Pgo.counters_symbol with
    | Some s -> s.Bolt_obj.Types.sym_value
    | None -> 0
  in
  let n = Bolt_minic.Pgo.num_counters mapping in
  let counters =
    Array.init n (fun i -> Bolt_sim.Memory.read64 o.Machine.final_mem (base + (8 * i)))
  in
  Bolt_minic.Pgo.profile_of_counters mapping counters

(* ---- HFSort at link time (the data-center baseline) ---- *)

(* Profile a binary and compute an HFSort function order for relinking. *)
let hfsort_order ?(algo = Bolt_hfsort.Order.C3) (b : build) ~input : string list =
  let prof, _ = profile b ~input in
  let funcs =
    Bolt_obj.Objfile.function_symbols b.exe
    |> List.filter_map (fun (s : Bolt_obj.Types.symbol) ->
           if s.sym_section = ".text" then Some (s.sym_name, max 1 s.sym_size) else None)
  in
  let g = Bolt_hfsort.Callgraph.of_profile ~funcs prof in
  Bolt_hfsort.Order.order algo g ~original:(List.map fst funcs)

(* ---- measurement helpers ---- *)

let speedup ~(baseline : Machine.outcome) ~(optimized : Machine.outcome) =
  let b = Machine.cycles baseline.Machine.counters in
  let o = Machine.cycles optimized.Machine.counters in
  if o = 0 then 0.0 else (float_of_int b /. float_of_int o -. 1.0) *. 100.0

let miss_reduction ~before ~after =
  if before = 0 then 0.0
  else 100.0 *. float_of_int (before - after) /. float_of_int before

type metric_deltas = {
  d_cycles : float; (* CPU time reduction, % *)
  d_instructions : float;
  d_branch_miss : float;
  d_l1i_miss : float;
  d_l1d_miss : float;
  d_llc_miss : float;
  d_itlb_miss : float;
  d_dtlb_miss : float;
  d_taken_branches : float;
}

let deltas ~(baseline : Machine.outcome) ~(optimized : Machine.outcome) : metric_deltas =
  let b = baseline.Machine.counters and o = optimized.Machine.counters in
  {
    d_cycles = miss_reduction ~before:(Machine.cycles b) ~after:(Machine.cycles o);
    d_instructions = miss_reduction ~before:b.Machine.instructions ~after:o.Machine.instructions;
    d_branch_miss = miss_reduction ~before:b.Machine.branch_misses ~after:o.Machine.branch_misses;
    d_l1i_miss = miss_reduction ~before:b.Machine.l1i_misses ~after:o.Machine.l1i_misses;
    d_l1d_miss = miss_reduction ~before:b.Machine.l1d_misses ~after:o.Machine.l1d_misses;
    d_llc_miss = miss_reduction ~before:b.Machine.llc_misses ~after:o.Machine.llc_misses;
    d_itlb_miss = miss_reduction ~before:b.Machine.itlb_misses ~after:o.Machine.itlb_misses;
    d_dtlb_miss = miss_reduction ~before:b.Machine.dtlb_misses ~after:o.Machine.dtlb_misses;
    d_taken_branches =
      miss_reduction ~before:b.Machine.taken_branches ~after:o.Machine.taken_branches;
  }

(* Check two runs produced identical observable behaviour: the rewriter
   must never change program semantics. *)
let same_behaviour (a : Machine.outcome) (b : Machine.outcome) =
  a.Machine.exit_code = b.Machine.exit_code
  && a.Machine.output = b.Machine.output
  && a.Machine.uncaught_exception = b.Machine.uncaught_exception
