(* Per-function quarantine: the exception barrier around every
   optimization pass and the emitter.

   BOLT's conservativeness guarantee (§3.3) is per function: a function
   the tool cannot handle is left alone, everything else is still
   optimized.  This module extends that guarantee from "cannot analyze"
   to "crashed while transforming": a pass that raises on one function
   demotes that function back to its verbatim input bytes — exactly the
   non-simple treatment — records a diagnostic, and the run continues.

   Strictness is the inverse switch: with [Opts.strict] any demotion is a
   hard [Diag.Strict_error]; with [Opts.max_quarantine] a badly corrupted
   input that demotes too many functions is rejected wholesale. *)

(* Exceptions that must never be swallowed by a barrier: deliberate
   aborts, resource exhaustion, and user interrupts. *)
let fatal = function
  | Diag.Strict_error _ | Diag.Quarantine_limit _ -> true
  | Out_of_memory | Stack_overflow | Sys.Break -> true
  | _ -> false

(* Demote [fb] to non-simple and rebuild its verbatim representation from
   the input bytes.  The CFG may be half-mutated by the failing pass, so
   everything derived from it is dropped; [fb.jts] is kept because the
   rewriter still needs the table addresses to repoint the cells at the
   function's final location.

   This half only mutates [fb] itself, so a worker domain can run it for
   a function it owns; the run-level bookkeeping ([record]) is deferred
   to the join, where verdicts fold in stable order. *)
let demote_quiet ctx ~stage (fb : Bfunc.t) =
  Bfunc.mark_non_simple fb (Printf.sprintf "quarantined in %s" stage);
  Hashtbl.reset fb.blocks;
  fb.layout <- [];
  fb.entry <- "";
  Hashtbl.reset fb.edge_counts;
  Hashtbl.reset fb.cold_set;
  Build.redecode ctx fb

(* Run-level half of a demotion: diagnostics, the trace event, and the
   strict / quarantine-budget escalation.  Single-domain only. *)
let record ctx ~stage (fb : Bfunc.t) msg =
  Diag.quarantine ctx.Context.diag ~stage ~func:fb.Bfunc.fb_name msg;
  Bolt_obs.Obs.event ctx.Context.obs "quarantine"
    ~attrs:
      [
        ("func", Bolt_obs.Json.String fb.Bfunc.fb_name);
        ("stage", Bolt_obs.Json.String stage);
      ];
  if ctx.Context.opts.Opts.strict then
    raise
      (Diag.Strict_error
         (Printf.sprintf "%s: function %s failed: %s" stage fb.Bfunc.fb_name msg));
  match ctx.Context.opts.Opts.max_quarantine with
  | Some limit when Diag.quarantined_count ctx.Context.diag > limit ->
      raise (Diag.Quarantine_limit (Diag.quarantined_count ctx.Context.diag))
  | _ -> ()

let demote ctx ~stage (fb : Bfunc.t) msg =
  demote_quiet ctx ~stage fb;
  record ctx ~stage fb msg

(* Run [f fb] under the barrier: any non-fatal exception quarantines [fb]
   instead of propagating. *)
let protect ctx ~stage (fb : Bfunc.t) f =
  try f fb
  with exn when not (fatal exn) ->
    demote ctx ~stage fb (Printexc.to_string exn)

(* The standard shape of a per-function pass: iterate the simple
   functions, each under its own barrier.  The function list is
   re-evaluated up front, so a demotion mid-pass does not disturb the
   iteration. *)
let iter_simple ctx ~stage f =
  List.iter (fun fb -> protect ctx ~stage fb f) (Context.simple_funcs ctx)

(* The barrier for worker domains: the function is demoted in place (a
   worker owns its function), but the verdict is parked on the shard and
   replayed by [fold_shards] at the join. *)
let protect_sharded ctx (sh : Context.shard) ~stage (fb : Bfunc.t) f =
  try f fb
  with exn when not (fatal exn) ->
    demote_quiet ctx ~stage fb;
    sh.Context.sh_verdicts <- (fb, Printexc.to_string exn) :: sh.Context.sh_verdicts

(* Fold per-domain shards back into the run, deterministically: replay
   diagnostics, then quarantine verdicts, each sorted by the function's
   original address order — the order a sequential run would have hit
   them in.  [record] re-raises Strict_error / Quarantine_limit here, so
   a fatal verdict surfaces with the same exception (and obolt exit
   code) at any -j, pinned to the lowest-ranked failing function. *)
let fold_shards ctx ~stage (shards : Context.shard list) =
  Context.apply_shard_diags ctx shards;
  let rank = Context.order_rank ctx in
  shards
  |> List.concat_map (fun sh -> List.rev sh.Context.sh_verdicts)
  |> List.sort (fun ((a : Bfunc.t), _) ((b : Bfunc.t), _) ->
         compare (rank a.Bfunc.fb_name) (rank b.Bfunc.fb_name))
  |> List.iter (fun (fb, msg) -> record ctx ~stage fb msg)

(* Sequential driver for the visitor form of a per-function pass: the
   compatibility entry points (Passes_simple.strip_rep_ret & co.) run
   their visitor over one shard and fold it immediately.  Returns the
   shard registry so the caller can log counts from it. *)
let run_fns ctx ~stage ?(funcs = fun c -> Context.simple_funcs c)
    (visit : Context.shard -> Bfunc.t -> unit) : Bolt_obs.Metrics.t =
  let sh = Context.new_shard () in
  List.iter (fun fb -> protect_sharded ctx sh ~stage fb (visit sh)) (funcs ctx);
  fold_shards ctx ~stage [ sh ];
  Hashtbl.iter
    (fun k () -> Hashtbl.replace ctx.Context.touched k ())
    sh.Context.sh_touched;
  Bolt_obs.Metrics.merge ~into:ctx.Context.stats sh.Context.sh_stats;
  sh.Context.sh_stats

(* Pass-level barrier for whole-program passes (ICF, function reordering)
   whose failure cannot be pinned on one function: skip the pass, keep
   the run. *)
let pass ctx ~stage ~default f =
  try f ()
  with exn when not (fatal exn) ->
    Diag.errorf ctx.Context.diag ~stage "pass failed (%s); skipped"
      (Printexc.to_string exn);
    Bolt_obs.Obs.event ctx.Context.obs "pass-skipped"
      ~attrs:[ ("stage", Bolt_obs.Json.String stage) ];
    if ctx.Context.opts.Opts.strict then
      raise
        (Diag.Strict_error
           (Printf.sprintf "%s: pass failed: %s" stage (Printexc.to_string exn)));
    default
