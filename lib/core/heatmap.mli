(** Figure-9 style heat maps of the instruction address space.

    Input: the simulator's per-cache-line fetch histogram.  Output: a
    [rows] x [cols] matrix of log-scaled per-byte fetch averages, a
    terminal rendering, and two scalar summaries used by the experiments:
    how much of the heat lands in a prefix of the text, and how far into
    the text any heat extends. *)

type t = {
  base : int;  (** first address covered *)
  span : int;  (** bytes covered *)
  bucket : int;  (** bytes per cell *)
  rows : int;
  cols : int;
  cells : float array;  (** row-major; log10 (1 + avg fetches per byte) *)
}

(** [build ~base ~span heat] buckets a (line-address -> fetch count)
    histogram into a matrix; default geometry 64x64 like the paper's. *)
val build :
  ?rows:int -> ?cols:int -> base:int -> span:int -> (int, int) Hashtbl.t -> t

(** Fraction (0..1) of total heat inside the first [frac] of the span. *)
val heat_in_prefix : t -> float -> float

(** Bytes from [base] to the last cell with any heat: the extent of code
    actually touched.  0 for an empty histogram. *)
val hot_extent : t -> int

(** Scalar summary (geometry, hot extent, prefix packing, cell
    population) as a JSON section for the run manifest. *)
val summary_json : t -> Bolt_obs.Json.t

(** ASCII rendering, one glyph per cell, log-scaled like Figure 9. *)
val render : Format.formatter -> t -> unit

(** CSV matrix for external plotting. *)
val to_csv : t -> string
