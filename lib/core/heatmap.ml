(* Figure-9 style heat maps of the instruction address space.

   The input is the simulator's per-line fetch histogram; the output is a
   [rows] x [cols] matrix of average per-byte fetch counts on a log
   scale, plus a terminal rendering. *)

type t = {
  base : int;
  span : int;
  bucket : int; (* bytes per cell *)
  rows : int;
  cols : int;
  cells : float array; (* log10 (1 + avg fetches per byte) *)
}

let build ?(rows = 64) ?(cols = 64) ~(base : int) ~(span : int)
    (heat : (int, int) Hashtbl.t) : t =
  let bucket = max 1 ((span + (rows * cols) - 1) / (rows * cols)) in
  let cells = Array.make (rows * cols) 0.0 in
  let raw = Array.make (rows * cols) 0 in
  Hashtbl.iter
    (fun line_addr count ->
      if line_addr >= base && line_addr < base + span then begin
        let idx = (line_addr - base) / bucket in
        if idx < rows * cols then raw.(idx) <- raw.(idx) + (count * 64)
      end)
    heat;
  Array.iteri
    (fun i v -> cells.(i) <- log10 (1.0 +. (float_of_int v /. float_of_int bucket)))
    raw;
  { base; span; bucket; rows; cols; cells }

(* Fraction of total heat captured by the first [frac] of the address
   space — the "hot code packed into a small prefix" measure. *)
let heat_in_prefix t frac =
  let cutoff = int_of_float (frac *. float_of_int (t.rows * t.cols)) in
  let total = Array.fold_left ( +. ) 0.0 t.cells in
  if total = 0.0 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to cutoff - 1 do
      acc := !acc +. t.cells.(i)
    done;
    !acc /. total
  end

(* Address of the highest-index cell with any heat: the extent of code
   that is actually touched.  0 when nothing was fetched at all — an
   empty histogram must not report one phantom bucket of heat. *)
let hot_extent t =
  let last = ref (-1) in
  Array.iteri (fun i v -> if v > 0.0 then last := i) t.cells;
  if !last < 0 then 0 else (!last + 1) * t.bucket

let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let render ppf t =
  let max_v = Array.fold_left max 0.0 t.cells in
  let scale v =
    if max_v = 0.0 then 0
    else min (Array.length glyphs - 1) (int_of_float (v /. max_v *. 9.0))
  in
  Fmt.pf ppf "heat map: base=%#x span=%d bucket=%d bytes/cell@." t.base t.span t.bucket;
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cols - 1 do
      Fmt.pf ppf "%c" glyphs.(scale t.cells.((r * t.cols) + c))
    done;
    Fmt.pf ppf "@."
  done

(* Scalar summary of a heat map for the run manifest: geometry, how far
   heat extends, how much of it lands in the first 1/16 of the span
   (Figure 9's packing measure), and the cell population. *)
let summary_json t : Bolt_obs.Json.t =
  let hot_cells = Array.fold_left (fun a v -> if v > 0.0 then a + 1 else a) 0 t.cells in
  let max_cell = Array.fold_left max 0.0 t.cells in
  Bolt_obs.Json.Obj
    [
      ("base", Bolt_obs.Json.Int t.base);
      ("span", Bolt_obs.Json.Int t.span);
      ("bucket", Bolt_obs.Json.Int t.bucket);
      ("rows", Bolt_obs.Json.Int t.rows);
      ("cols", Bolt_obs.Json.Int t.cols);
      ("hot_extent", Bolt_obs.Json.Int (hot_extent t));
      ("heat_in_prefix_16th", Bolt_obs.Json.Float (heat_in_prefix t (1.0 /. 16.0)));
      ("hot_cells", Bolt_obs.Json.Int hot_cells);
      ("max_cell_log10", Bolt_obs.Json.Float max_cell);
    ]

let to_csv t =
  let b = Buffer.create 4096 in
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cols - 1 do
      if c > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%.3f" t.cells.((r * t.cols) + c))
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.contents b
