(* Pass 2/7: identical code folding at the binary level.

   BOLT's ICF folds strictly more than the linker's: it normalises block
   labels to layout indices and resolves call targets through the current
   fold map, so functions that differ only in label names, in jump-table
   placement, or that call previously-folded twins, all collapse.  The
   fixpoint iteration is what lets mutually-similar families fold. *)

open Bfunc

(* A structural key for a function, with intra-function labels replaced by
   layout indices and call targets resolved through [canon]. *)
let normalize canon (fb : Bfunc.t) : string =
  let index = Hashtbl.create 32 in
  List.iteri (fun i l -> Hashtbl.replace index l i) fb.layout;
  let blk l = match Hashtbl.find_opt index l with Some i -> string_of_int i | None -> "?" in
  let buf = Buffer.create 256 in
  let jt_index = Hashtbl.create 4 in
  Array.iteri (fun k (jt : jt) -> Hashtbl.replace jt_index jt.jt_addr k) fb.jts;
  let value v =
    match v with
    | Bolt_isa.Insn.Imm n -> (
        (* jump-table base addresses normalise to the table index, so two
           functions with identical tables at different addresses fold *)
        match Hashtbl.find_opt jt_index n with
        | Some k -> Printf.sprintf "#JT%d" k
        | None -> Printf.sprintf "#%d" n)
    | Bolt_isa.Insn.Sym (s, a) -> Printf.sprintf "@%s+%d" (canon s) a
  in
  List.iter
    (fun l ->
      let b = block fb l in
      Buffer.add_string buf (Printf.sprintf "[%s lp:%b " (blk l) b.is_lp);
      List.iter
        (fun (i : minsn) ->
          (match Bolt_isa.Insn.value i.op with
          | Some v ->
              Buffer.add_string buf (Bolt_isa.Insn.to_string (Bolt_isa.Insn.with_value i.op (Bolt_isa.Insn.Imm 0)));
              Buffer.add_string buf (value v)
          | None -> Buffer.add_string buf (Bolt_isa.Insn.to_string i.op));
          (match i.lp with
          | Some p -> Buffer.add_string buf ("!lp" ^ blk p)
          | None -> ());
          Buffer.add_char buf ';')
        b.insns;
      (match b.term with
      | T_jump t -> Buffer.add_string buf ("J" ^ blk t)
      | T_cond (c, a, f) ->
          Buffer.add_string buf (Printf.sprintf "C%s,%s,%s" (Bolt_isa.Cond.name c) (blk a) (blk f))
      | T_condtail (c, fn, f) ->
          Buffer.add_string buf (Printf.sprintf "T%s,@%s,%s" (Bolt_isa.Cond.name c) (canon fn) (blk f))
      | T_indirect (Some k) ->
          let jt = fb.jts.(k) in
          Buffer.add_string buf
            (Printf.sprintf "I%b:%s" jt.jt_pic
               (String.concat "," (Array.to_list (Array.map blk jt.jt_targets))))
      | T_indirect None -> Buffer.add_string buf "I?"
      | T_stop -> Buffer.add_string buf "S");
      Buffer.add_char buf ']')
    fb.layout;
  Buffer.contents buf

let run ctx =
  let folded_total = ref 0 in
  let bytes_saved = ref 0 in
  let canon_map : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let rec canon s =
    match Hashtbl.find_opt canon_map s with Some s' -> canon s' | None -> s
  in
  let pass () =
    let seen = Hashtbl.create 256 in
    let folded_now = ref 0 in
    List.iter
      (fun fb ->
        if fb.Bfunc.folded_into = None && fb.simple then begin
          let key = normalize canon fb in
          match Hashtbl.find_opt seen key with
          | Some survivor when survivor <> fb.fb_name ->
              fb.folded_into <- Some survivor;
              Hashtbl.replace canon_map fb.fb_name survivor;
              (match Context.func ctx survivor with
              | Some sf -> sf.exec_count <- sf.exec_count + fb.exec_count
              | None -> ());
              incr folded_now;
              bytes_saved := !bytes_saved + fb.fb_size;
              Context.touch ctx fb.fb_name;
              Context.touch ctx survivor
          | Some _ -> ()
          | None -> Hashtbl.add seen key fb.fb_name
        end)
      (List.filter_map (fun n -> Context.func ctx n) ctx.Context.order);
    !folded_now
  in
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < 5 do
    incr rounds;
    let f = pass () in
    folded_total := !folded_total + f;
    continue_ := f > 0
  done;
  (* retarget all call/tail-call references to survivors *)
  Context.iter_funcs ctx (fun fb ->
      let fix (i : minsn) =
        match i.op with
        | Bolt_isa.Insn.Call (Bolt_isa.Insn.Sym (s, a)) when canon s <> s ->
            i.op <- Bolt_isa.Insn.Call (Bolt_isa.Insn.Sym (canon s, a))
        | Bolt_isa.Insn.Jmp (Bolt_isa.Insn.Sym (s, a), w) when canon s <> s ->
            i.op <- Bolt_isa.Insn.Jmp (Bolt_isa.Insn.Sym (canon s, a), w)
        | Bolt_isa.Insn.Lea (r, Bolt_isa.Insn.Sym (s, a)) when canon s <> s ->
            i.op <- Bolt_isa.Insn.Lea (r, Bolt_isa.Insn.Sym (canon s, a))
        | _ -> ()
      in
      Hashtbl.iter (fun _ b -> List.iter fix b.insns) fb.blocks;
      List.iter fix fb.raw_insns;
      Hashtbl.iter
        (fun l b ->
          match b.term with
          | T_condtail (c, fn, fall) when canon fn <> fn ->
              (block fb l).term <- T_condtail (c, canon fn, fall)
          | _ -> ())
        fb.blocks);
  Context.logf ctx "icf: %d functions folded, %d bytes saved" !folded_total !bytes_saved;
  (!folded_total, !bytes_saved)
