(* Structured diagnostics for the hardened rewrite pipeline.

   BOLT's production stance (§7) is graceful degradation: whatever goes
   wrong while rebuilding one function must never take down the whole
   rewrite.  Every stage therefore reports through this module instead of
   raising: per-function and per-pass records with a severity, plus
   counters, are accumulated on the binary context and surfaced in the
   final report.  Record storage is capped so a hostile input cannot blow
   up memory by generating millions of warnings; the counters keep the
   true totals. *)

type severity = Info | Warning | Error

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

type record = {
  d_severity : severity;
  d_stage : string; (* pipeline stage or pass name *)
  d_func : string option; (* affected function, when per-function *)
  d_msg : string;
}

(* Raised when [Opts.strict] turns a degradation into a hard failure. *)
exception Strict_error of string

(* Raised when more functions than [Opts.max_quarantine] were demoted. *)
exception Quarantine_limit of int

type t = {
  mutable records : record list; (* newest first, capped *)
  mutable dropped : int; (* records not stored because of the cap *)
  mutable n_info : int;
  mutable n_warning : int;
  mutable n_error : int;
  mutable quarantined : (string * string) list; (* function, stage; newest first *)
  max_records : int;
}

let create ?(max_records = 500) () =
  {
    records = [];
    dropped = 0;
    n_info = 0;
    n_warning = 0;
    n_error = 0;
    quarantined = [];
    max_records;
  }

let count t = function
  | Info -> t.n_info
  | Warning -> t.n_warning
  | Error -> t.n_error

let total t = t.n_info + t.n_warning + t.n_error

let add t severity ~stage ?func msg =
  (match severity with
  | Info -> t.n_info <- t.n_info + 1
  | Warning -> t.n_warning <- t.n_warning + 1
  | Error -> t.n_error <- t.n_error + 1);
  if total t - t.dropped > t.max_records then t.dropped <- t.dropped + 1
  else
    t.records <-
      { d_severity = severity; d_stage = stage; d_func = func; d_msg = msg }
      :: t.records

let infof t ~stage ?func fmt = Fmt.kstr (add t Info ~stage ?func) fmt
let warnf t ~stage ?func fmt = Fmt.kstr (add t Warning ~stage ?func) fmt
let errorf t ~stage ?func fmt = Fmt.kstr (add t Error ~stage ?func) fmt

(* A function was demoted to non-simple and left byte-identical. *)
let quarantine t ~stage ~func msg =
  t.quarantined <- (func, stage) :: t.quarantined;
  errorf t ~stage ~func "quarantined: %s" msg

let quarantined_count t = List.length t.quarantined
let quarantined t = List.rev t.quarantined

(* Oldest first. *)
let records t = List.rev t.records

let pp_record ppf r =
  Fmt.pf ppf "[%s] %s%s: %s" (severity_name r.d_severity) r.d_stage
    (match r.d_func with Some f -> " (" ^ f ^ ")" | None -> "")
    r.d_msg

let pp_summary ppf t =
  Fmt.pf ppf "diagnostics: %d error(s), %d warning(s), %d info" t.n_error
    t.n_warning t.n_info;
  if t.dropped > 0 then Fmt.pf ppf " (%d records dropped)" t.dropped;
  if t.quarantined <> [] then
    Fmt.pf ppf "; %d function(s) quarantined" (List.length t.quarantined)
