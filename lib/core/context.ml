(* The binary context: the input executable, its parsed metadata, and the
   set of binary functions under rewriting. *)

open Bolt_obj

type t = {
  exe : Objfile.t;
  opts : Opts.t;
  funcs : (string, Bfunc.t) Hashtbl.t;
  mutable order : string list; (* functions by original address *)
  text : Types.section;
  plt : Types.section option;
  rodata : Types.section option;
  got : Types.section option;
  relocations_mode : bool;
  (* sorted (addr, size, name) of code symbols for address resolution *)
  sym_index : (int * int * string) array;
  plt_target : (string, string) Hashtbl.t; (* stub symbol -> target function *)
  mutable func_layout : (string list * string list) option; (* hot, cold order *)
  mutable log : string list; (* pass log, newest first *)
  diag : Diag.t; (* structured diagnostics for the whole run *)
  obs : Bolt_obs.Obs.t; (* trace spans + metrics registry for the run *)
  stats : Bolt_obs.Metrics.t;
      (* always-on run statistics the final report is built from; the
         (possibly disabled) [obs] registry mirrors it for manifests *)
  touched : (string, unit) Hashtbl.t; (* functions modified by the current pass *)
  m : Mutex.t; (* guards [log] and [touched] under parallel passes *)
}

let logf ctx fmt =
  Fmt.kstr (fun s -> Mutex.protect ctx.m (fun () -> ctx.log <- s :: ctx.log)) fmt

(* Mark [name] as modified by the pass currently running; the per-pass
   span reads (and resets) the set to report functions-touched counts.
   Safe to call from worker domains, but parallel passes should prefer
   [sh_touch] on their shard — uncontended, merged at join. *)
let touch ctx name =
  Mutex.protect ctx.m (fun () -> Hashtbl.replace ctx.touched name ())

exception Bolt_error of string

let err fmt = Fmt.kstr (fun s -> raise (Bolt_error s)) fmt

let section_value _ctx (sec : Types.section option) addr =
  match sec with
  | Some s when addr >= s.sec_addr && addr + 8 <= s.sec_addr + s.sec_size ->
      let r = Buf.reader (Bytes.to_string s.sec_data) in
      r.Buf.pos <- addr - s.sec_addr;
      Some (Buf.r_i64 r)
  | _ -> None

let in_section (sec : Types.section option) addr =
  match sec with
  | Some s -> addr >= s.sec_addr && addr < s.sec_addr + s.sec_size
  | None -> false

(* Resolve a code address to (function name, offset). *)
let resolve_code ctx addr =
  let a = ctx.sym_index in
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let res = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let base, size, name = a.(mid) in
    if addr < base then hi := mid - 1
    else if addr >= base + size then lo := mid + 1
    else begin
      res := Some (name, addr - base);
      lo := !hi + 1
    end
  done;
  !res

let create ~(opts : Opts.t) ?obs (exe : Objfile.t) : t =
  let obs =
    match obs with Some o -> o | None -> Bolt_obs.Obs.create ~name:"bolt" ()
  in
  let text =
    match Objfile.find_section exe ".text" with
    | Some s -> s
    | None -> err "no .text section"
  in
  let plt = Objfile.find_section exe ".plt" in
  let rodata = Objfile.find_section exe ".rodata" in
  let got = Objfile.find_section exe ".got" in
  let relocations_mode =
    match opts.use_relocations with
    | Some b -> b
    | None -> exe.relocs <> []
  in
  let code_syms =
    List.filter
      (fun (s : Types.symbol) ->
        s.sym_kind = Types.Func && (s.sym_section = ".text" || s.sym_section = ".plt"))
      exe.symbols
  in
  let sym_index =
    List.map (fun (s : Types.symbol) -> (s.sym_value, max 1 s.sym_size, s.sym_name)) code_syms
    |> Array.of_list
  in
  Array.sort compare sym_index;
  (* resolve PLT stubs through their GOT slots *)
  let plt_target = Hashtbl.create 16 in
  let ctx =
    {
      exe;
      opts;
      funcs = Hashtbl.create 256;
      order = [];
      text;
      plt;
      rodata;
      got;
      relocations_mode;
      sym_index;
      plt_target;
      func_layout = None;
      log = [];
      diag = Diag.create ();
      obs;
      stats = Bolt_obs.Metrics.create ();
      touched = Hashtbl.create 64;
      m = Mutex.create ();
    }
  in
  (match plt with
  | Some p ->
      List.iter
        (fun (s : Types.symbol) ->
          if s.sym_section = ".plt" && s.sym_kind = Types.Func then
            match Bolt_isa.Codec.decode p.sec_data (s.sym_value - p.sec_addr) with
            | Bolt_isa.Insn.Jmp_mem (Bolt_isa.Insn.Imm slot), _ -> (
                match section_value ctx ctx.got slot with
                | Some target -> (
                    match resolve_code ctx target with
                    | Some (name, 0) -> Hashtbl.replace plt_target s.sym_name name
                    | _ ->
                        Diag.warnf ctx.diag ~stage:"plt-scan" ~func:s.sym_name
                          "GOT slot %#x does not point at a function entry" slot)
                | None ->
                    Diag.warnf ctx.diag ~stage:"plt-scan" ~func:s.sym_name
                      "GOT slot %#x out of range" slot)
            | _ ->
                Diag.warnf ctx.diag ~stage:"plt-scan" ~func:s.sym_name
                  "PLT stub is not a GOT-indirect jump; left unresolved"
            | exception exn ->
                Diag.warnf ctx.diag ~stage:"plt-scan" ~func:s.sym_name
                  "undecodable PLT stub (%s); left unresolved"
                  (Printexc.to_string exn))
        exe.symbols
  | None -> ());
  ctx

let func ctx name = Hashtbl.find_opt ctx.funcs name

let iter_funcs ctx g =
  List.iter (fun name -> g (Hashtbl.find ctx.funcs name)) ctx.order

let all_funcs ctx = List.map (fun name -> Hashtbl.find ctx.funcs name) ctx.order

let simple_funcs ctx =
  List.filter_map
    (fun name ->
      let f = Hashtbl.find ctx.funcs name in
      if f.Bfunc.simple && f.Bfunc.folded_into = None then Some f else None)
    ctx.order

(* Rank of a function name in the original address order; [max_int] for
   names outside it.  Used to fold per-domain results deterministically. *)
let order_rank ctx =
  let tbl = Hashtbl.create 256 in
  List.iteri (fun i n -> Hashtbl.replace tbl n i) ctx.order;
  fun n -> match Hashtbl.find_opt tbl n with Some i -> i | None -> max_int

(* ---- per-domain shards ----

   A parallel pass hands each worker domain a private shard; workers
   record metrics, touched functions, diagnostics and quarantine verdicts
   there without synchronization.  At pool join the shards are folded
   back into the context in stable function order, so the visible result
   is independent of how items were scheduled across domains. *)

type shard = {
  sh_stats : Bolt_obs.Metrics.t; (* merged into the pass registry at join *)
  sh_touched : (string, unit) Hashtbl.t;
  mutable sh_verdicts : (Bfunc.t * string) list; (* demoted function, reason *)
  mutable sh_diags : (Diag.severity * string * string option * string) list;
      (* severity, stage, func, message *)
  mutable sh_times : float list; (* per-function wall seconds, when traced *)
}

let new_shard () =
  {
    sh_stats = Bolt_obs.Metrics.create ();
    sh_touched = Hashtbl.create 64;
    sh_verdicts = [];
    sh_diags = [];
    sh_times = [];
  }

let sh_touch sh (fb : Bfunc.t) = Hashtbl.replace sh.sh_touched fb.Bfunc.fb_name ()
let sh_incr sh ?by name = Bolt_obs.Metrics.incr sh.sh_stats ?by name

let sh_diag sh severity ~stage ?func fmt =
  Fmt.kstr (fun msg -> sh.sh_diags <- (severity, stage, func, msg) :: sh.sh_diags) fmt

(* Replay shard diagnostics into [ctx.diag], sorted by function rank
   (then stage/severity/message) so the record order matches what a
   sequential run in address order would have produced. *)
let apply_shard_diags ctx shards =
  let rank = order_rank ctx in
  shards
  |> List.concat_map (fun sh -> List.rev sh.sh_diags)
  |> List.map (fun ((_sev, stage, func, msg) as d) ->
         ((Option.fold ~none:max_int ~some:rank func, stage, msg), d))
  |> List.sort (fun (ka, _) (kb, _) -> compare ka kb)
  |> List.iter (fun (_, (sev, stage, func, msg)) ->
         Diag.add ctx.diag sev ~stage ?func msg)
