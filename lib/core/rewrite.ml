(* Rewrite the binary file (last stage of Figure 3).

   Relocations mode (§3.2): every function is re-emitted and the whole
   .text is laid out afresh — hot functions first in HFSort order, then
   unsampled functions, then PLT stubs, then all cold fragments.  Enabled
   when the input keeps linker relocations (--emit-relocs).

   In-place mode (§3.1, the original design): functions stay at their
   original addresses; an optimized body that fits its old slot replaces
   it, cold fragments overflow into a fresh code segment at a high
   address, and anything that does not fit is left untouched.

   Either way: jump-table cells in .rodata are rewritten to the blocks'
   new addresses (PIC tables keep their difference encoding), GOT slots
   that hold function addresses are re-pointed, the symbol table, frame
   descriptors, exception tables and line tables are regenerated, and the
   entry point is remapped. *)

open Bolt_obj
open Types
open Bfunc

type placed = {
  p_frag : Emit.fragment;
  mutable p_addr : int;
}

type result = {
  out : Objfile.t;
  hot_size : int;
  cold_size : int;
  text_size_before : int;
  text_size_after : int;
}

let align a off = if a <= 1 then off else (off + a - 1) / a * a

(* A fragment could not be finalized: (function, message).  The driver
   quarantines the function and re-runs the rewrite. *)
exception Frag_error of string * string

(* original PLT stub contents: stub symbol -> GOT slot address *)
let plt_slots ctx =
  let slots = Hashtbl.create 16 in
  (match ctx.Context.plt with
  | Some p ->
      List.iter
        (fun (s : symbol) ->
          if s.sym_section = ".plt" && s.sym_kind = Func then
            match Bolt_isa.Codec.decode p.sec_data (s.sym_value - p.sec_addr) with
            | Bolt_isa.Insn.Jmp_mem (Bolt_isa.Insn.Imm slot), _ ->
                Hashtbl.replace slots s.sym_name slot
            | _ ->
                Diag.warnf ctx.Context.diag ~stage:"rewrite" ~func:s.sym_name
                  "PLT stub is not a GOT-indirect jump; stub not re-emitted"
            | exception exn ->
                Diag.warnf ctx.Context.diag ~stage:"rewrite" ~func:s.sym_name
                  "undecodable PLT stub (%s); stub not re-emitted"
                  (Printexc.to_string exn))
        ctx.Context.exe.symbols
  | None -> ());
  slots

let canon_name ctx name =
  let rec go n =
    match Context.func ctx n with
    | Some f -> ( match f.folded_into with Some s -> go s | None -> n)
    | None -> n
  in
  go name

let run ctx : result =
  let exe = ctx.Context.exe in
  let opts = ctx.Context.opts in
  let text_size_before = exe.sections |> List.filter (fun s -> s.sec_kind = Text)
                         |> List.fold_left (fun a s -> a + s.sec_size) 0 in
  let live =
    List.filter_map
      (fun n ->
        let f = Hashtbl.find ctx.Context.funcs n in
        if f.folded_into = None then Some f else None)
      ctx.Context.order
  in

  (* ---- function order ---- *)
  let prof_order = ctx.Context.func_layout in
  let hot_names, cold_names =
    match prof_order with
    | Some (h, c) -> (h, c)
    | None -> (List.map (fun f -> f.fb_name) live, [])
  in

  (* ---- emit fragments ----

     Re-encoding is per-function and by far the largest fraction of the
     rewrite, so it fans out over the domain pool: each worker fills its
     item's slot in [frags_arr] (per-item state only) and parks
     diagnostics/quarantine verdicts on its per-domain shard, which fold
     back in address order at the join — bytes and diagnostics are
     identical at any -j.  [min_chunk] keeps small binaries inline: a
     per-function encode is microseconds, a domain spawn a millisecond. *)
  let relmode = ctx.Context.relocations_mode in
  let frags_of = Hashtbl.create 256 in
  let reverted = Hashtbl.create 16 in
  let live_arr = Array.of_list live in
  let n_live = Array.length live_arr in
  let frags_arr = Array.make n_live ([] : Emit.fragment list) in
  let reverted_arr = Array.make n_live false in
  let pool = Pool.create ~jobs:opts.Opts.jobs () in
  let emit_domains = Pool.domains_for ~min_chunk:32 pool n_live in
  let shards = Array.init emit_domains (fun _ -> Context.new_shard ()) in
  let worker dom i =
    let fb = live_arr.(i) in
    let sh = shards.(dom) in
    (* Verbatim emission of a non-simple function.  A function whose
       bytes would not even decode cannot be re-emitted at all: in-place
       it stays in its original slot; in relocations mode the whole text
       moves around it, so the run must fall back to the identity
       rewrite. *)
    let emit_verbatim () =
      if fb.raw_insns = [] then
        if relmode then
          raise
            (Frag_error (fb.fb_name, "undecodable function cannot be relocated"))
        else begin
          Context.sh_diag sh Diag.Warning ~stage:"rewrite" ~func:fb.fb_name
            "undecodable function left in place";
          reverted_arr.(i) <- true;
          []
        end
      else if fb.table_unrecovered && relmode then
        (* the body reads a jump table we could not reconstruct; its
           cells still aim at the original body, so moving the code
           would leave them stale.  In-place the function never moves
           and stays safe. *)
        raise
          (Frag_error
             (fb.fb_name, "unrecoverable jump table: function cannot be relocated"))
      else [ Emit.emit_raw fb ]
    in
    frags_arr.(i) <-
      (if fb.simple then
         try Emit.emit_simple fb
         with exn when not (Quarantine.fatal exn) ->
           (* emitter barrier: demote and emit the original bytes; the
              verdict replays (and escalates under --strict) at the
              join *)
           Quarantine.demote_quiet ctx ~stage:"emit" fb;
           sh.Context.sh_verdicts <-
             (fb, Printexc.to_string exn) :: sh.Context.sh_verdicts;
           emit_verbatim ()
       else emit_verbatim ())
  in
  ignore
    (Pool.run ~min_chunk:32 pool ~worker (Array.init n_live (fun i -> i)));
  Quarantine.fold_shards ctx ~stage:"emit" (Array.to_list shards);
  Array.iteri
    (fun i fb ->
      if reverted_arr.(i) then Hashtbl.replace reverted fb.fb_name ();
      Hashtbl.replace frags_of fb.fb_name frags_arr.(i))
    live_arr;

  (* ---- placement ---- *)
  let placements = ref [] in
  let place frag addr = placements := { p_frag = frag; p_addr = addr } :: !placements in
  let slots = plt_slots ctx in
  let hot_end = ref 0 and cold_bytes = ref 0 in
  if relmode then begin
    let cursor = ref Layout.text_base in
    let place_hot (frag : Emit.fragment) align_to =
      cursor := align align_to !cursor;
      place frag !cursor;
      cursor := !cursor + frag.fr_out.Bolt_asm.Asm.fo_size
    in
    let by_name = Hashtbl.create 256 in
    List.iter (fun fb -> Hashtbl.replace by_name fb.fb_name fb) live;
    let ordered = hot_names @ List.filter (fun n -> not (List.mem n hot_names)) cold_names in
    let rest =
      List.filter (fun fb -> not (List.mem fb.fb_name ordered)) live
      |> List.map (fun fb -> fb.fb_name)
    in
    (* hot fragments first, in order *)
    List.iter
      (fun n ->
        match Hashtbl.find_opt frags_of n with
        | Some (hot :: _) -> place_hot hot opts.Opts.align_functions
        | _ -> ())
      (ordered @ rest);
    (* then PLT stubs *)
    let stub_frags =
      Hashtbl.fold
        (fun stub slot acc ->
          let insn = Bolt_isa.Insn.Jmp_mem (Bolt_isa.Insn.Imm slot) in
          let af =
            {
              Bolt_asm.Asm.af_name = stub;
              af_global = false;
              af_align = 1;
              af_emit_fde = false;
              af_body = [ Bolt_asm.Asm.A_insn insn ];
            }
          in
          let out = Bolt_asm.Asm.assemble_function ~base:0 af in
          {
            Emit.fr_name = stub;
            fr_func = stub;
            fr_out = out;
            fr_labels = [];
            fr_lsda_sym = [];
            fr_has_fde = false;
          }
          :: acc)
        slots []
    in
    List.iter (fun f -> place_hot f 16) stub_frags;
    hot_end := !cursor;
    (* finally, the cold area *)
    List.iter
      (fun n ->
        match Hashtbl.find_opt frags_of n with
        | Some (_ :: cold :: _) ->
            place_hot cold 4;
            cold_bytes := !cold_bytes + cold.Emit.fr_out.Bolt_asm.Asm.fo_size
        | _ -> ())
      (ordered @ rest)
  end
  else begin
    (* in-place: hot fragment must fit the original slot *)
    let cold_cursor = ref Layout.bolt_text_base in
    List.iter
      (fun fb ->
        match Hashtbl.find_opt frags_of fb.fb_name with
        | Some (hot :: rest) ->
            let hot_size = hot.Emit.fr_out.Bolt_asm.Asm.fo_size in
            if hot_size <= fb.fb_size then begin
              place hot fb.fb_addr;
              match rest with
              | cold :: _ ->
                  place cold !cold_cursor;
                  cold_bytes := !cold_bytes + cold.Emit.fr_out.Bolt_asm.Asm.fo_size;
                  cold_cursor :=
                    align 4 (!cold_cursor + cold.Emit.fr_out.Bolt_asm.Asm.fo_size)
              | [] -> ()
            end
            else
              (* does not fit even after splitting: leave untouched *)
              Hashtbl.replace reverted fb.fb_name ()
        | _ -> ())
      live;
    hot_end := Layout.text_base + ctx.Context.text.sec_size
  end;
  let placements = List.rev !placements in

  (* ---- global resolution maps ---- *)
  let frag_addr = Hashtbl.create 256 in
  let block_addr = Hashtbl.create 1024 in
  List.iter
    (fun p ->
      Hashtbl.replace frag_addr p.p_frag.Emit.fr_name p.p_addr;
      List.iter
        (fun (l, off) ->
          Hashtbl.replace block_addr (p.p_frag.Emit.fr_func, l) (p.p_addr + off))
        p.p_frag.Emit.fr_labels)
    placements;
  (* reverted / untouched functions keep original addresses *)
  Hashtbl.iter
    (fun n () ->
      match Context.func ctx n with
      | Some fb -> Hashtbl.replace frag_addr n fb.fb_addr
      | None -> ())
    reverted;
  let resolve_sym s =
    (* block cross-reference? *)
    match String.index_opt s '/' with
    | Some i ->
        let fn = String.sub s 0 i and l = String.sub s (i + 1) (String.length s - i - 1) in
        Hashtbl.find_opt block_addr (fn, l)
    | None -> (
        let s = canon_name ctx s in
        match Hashtbl.find_opt frag_addr s with
        | Some a -> Some a
        | None -> (
            (* data or untouched symbol: original address *)
            match Objfile.find_symbol exe s with
            | Some sym -> Some sym.sym_value
            | None -> None))
  in

  (* ---- build the new text ---- *)
  let write_frag text text_base_addr p =
    let out = p.p_frag.Emit.fr_out in
    let base_off = p.p_addr - text_base_addr in
    Bytes.blit out.Bolt_asm.Asm.fo_bytes 0 text base_off out.Bolt_asm.Asm.fo_size;
    List.iter
      (fun (off, kind, sym, addend, rel_end) ->
        let s =
          match resolve_sym sym with
          | Some a -> a
          | None ->
              raise
                (Frag_error
                   ( p.p_frag.Emit.fr_func,
                     Printf.sprintf "undefined symbol %s in %s" sym
                       p.p_frag.Emit.fr_name ))
        in
        let v =
          match kind with
          | Abs32 | Abs64 -> s + addend
          | Rel32 | Rel8 -> s + addend - (p.p_addr + off + rel_end)
        in
        let fo = base_off + off in
        match kind with
        | Abs64 -> Bytes.set_int64_le text fo (Int64.of_int v)
        | Abs32 | Rel32 -> Bytes.set_int32_le text fo (Int32.of_int v)
        | Rel8 ->
            if not (Bolt_isa.Codec.fits_i8 v) then
              raise
                (Frag_error
                   ( p.p_frag.Emit.fr_func,
                     Printf.sprintf "rel8 overflow in %s" p.p_frag.Emit.fr_name ));
            Bytes.set text fo (Char.chr (v land 0xff)))
      out.Bolt_asm.Asm.fo_relocs
  in

  let sections = ref [] in
  if relmode then begin
    let text_size = !hot_end - Layout.text_base + !cold_bytes + 64 in
    let total =
      List.fold_left
        (fun acc p ->
          max acc (p.p_addr + p.p_frag.Emit.fr_out.Bolt_asm.Asm.fo_size - Layout.text_base))
        0 placements
    in
    let size = max text_size total in
    if Layout.text_base + size >= Layout.rodata_base then
      Context.err "rewrite: text overflow";
    let text = Bytes.make size '\x02' in
    List.iter (fun p -> write_frag text Layout.text_base p) placements;
    sections :=
      [ { sec_name = ".text"; sec_kind = Text; sec_addr = Layout.text_base; sec_data = text; sec_size = size } ]
  end
  else begin
    (* in-place: start from the original text bytes *)
    let orig = ctx.Context.text in
    let text = Bytes.copy orig.sec_data in
    let in_text, in_cold =
      List.partition (fun p -> p.p_addr < Layout.bolt_text_base) placements
    in
    (* clear each rewritten function's slot to nops first *)
    List.iter
      (fun p ->
        match Context.func ctx p.p_frag.Emit.fr_func with
        | Some fb when p.p_frag.Emit.fr_name = fb.fb_name ->
            Bytes.fill text (fb.fb_addr - orig.sec_addr) fb.fb_size '\x02'
        | _ -> ())
      in_text;
    List.iter (fun p -> write_frag text orig.sec_addr p) in_text;
    let cold_size =
      List.fold_left
        (fun acc p ->
          max acc (p.p_addr + p.p_frag.Emit.fr_out.Bolt_asm.Asm.fo_size - Layout.bolt_text_base))
        0 in_cold
    in
    let cold = Bytes.make (max cold_size 0) '\x02' in
    List.iter (fun p -> write_frag cold Layout.bolt_text_base p) in_cold;
    sections :=
      [ { orig with sec_data = text } ]
      @ (match ctx.Context.plt with Some p -> [ p ] | None -> [])
      @
      if cold_size > 0 then
        [ { sec_name = ".bolt.text"; sec_kind = Text; sec_addr = Layout.bolt_text_base; sec_data = cold; sec_size = cold_size } ]
      else []
  end;

  (* ---- patch jump tables in .rodata ---- *)
  let rodata =
    match ctx.Context.rodata with
    | Some ro ->
        let data = Bytes.copy ro.sec_data in
        let patch_cell (jt : jt) k target_addr =
          let v = if jt.jt_pic then target_addr - jt.jt_addr else target_addr in
          Bytes.set_int64_le data
            (jt.jt_addr - ro.sec_addr + (8 * k))
            (Int64.of_int v)
        in
        (* a block label minted at CFG build time encodes its original
           offset; quarantined functions move as a verbatim unit, so that
           offset is still the block's position in the placed bytes *)
        let lbl_off l =
          if String.length l > 4 && String.sub l 0 4 = ".LBB" then
            int_of_string_opt (String.sub l 4 (String.length l - 4))
          else None
        in
        List.iter
          (fun fb ->
            if Hashtbl.mem reverted fb.fb_name then ()
            else if fb.simple then
              Array.iter
                (fun (jt : jt) ->
                  Array.iteri
                    (fun k l ->
                      match Hashtbl.find_opt block_addr (fb.fb_name, l) with
                      | Some a -> patch_cell jt k a
                      | None -> ())
                    jt.jt_targets)
                fb.jts
            else
              (* quarantined mid-pipeline: the body is byte-identical but
                 may have moved, so every cell shifts by the same delta *)
              match Hashtbl.find_opt frag_addr fb.fb_name with
              | Some base when base <> fb.fb_addr ->
                  Array.iter
                    (fun (jt : jt) ->
                      Array.iteri
                        (fun k l ->
                          match lbl_off l with
                          | Some off -> patch_cell jt k (base + off)
                          | None ->
                              Diag.warnf ctx.Context.diag ~stage:"rewrite"
                                ~func:fb.fb_name
                                "jump table %#x cell %d has no offset label; \
                                 left stale"
                                jt.jt_addr k)
                        jt.jt_targets)
                    fb.jts
              | _ -> ())
          live;
        Some { ro with sec_data = data }
    | None -> None
  in

  (* ---- patch GOT and other data relocations against moved functions ---- *)
  let got =
    match ctx.Context.got with
    | Some g when relmode ->
        let data = Bytes.copy g.sec_data in
        List.iter
          (fun (r : reloc) ->
            if r.rel_section = ".got" && r.rel_kind = Abs64 && r.rel_addend = 0 then
              match resolve_sym r.rel_sym with
              | Some a -> Bytes.set_int64_le data r.rel_offset (Int64.of_int a)
              | None -> ())
          exe.relocs;
        Some { g with sec_data = data }
    | g -> g
  in

  (* ---- symbols ---- *)
  let new_symbols =
    List.filter_map
      (fun (s : symbol) ->
        if s.sym_kind = Func && s.sym_section = ".plt" && relmode then
          (* stub moved into .text *)
          match Hashtbl.find_opt frag_addr s.sym_name with
          | Some a -> Some { s with sym_value = a; sym_section = ".text" }
          | None -> None
        else
          match Context.func ctx s.sym_name with
          | Some fb -> (
              let target = canon_name ctx s.sym_name in
              match Hashtbl.find_opt frag_addr target with
              | Some a ->
                  let size =
                    match Hashtbl.find_opt frags_of target with
                    | Some (hot :: _) when not (Hashtbl.mem reverted target) ->
                        if relmode then hot.Emit.fr_out.Bolt_asm.Asm.fo_size
                        else fb.fb_size
                    | _ -> fb.fb_size
                  in
                  Some { s with sym_value = a; sym_size = size }
              | None -> Some s)
          | None -> Some s)
      exe.symbols
  in
  let cold_symbols =
    List.filter_map
      (fun p ->
        let n = p.p_frag.Emit.fr_name in
        if Filename.check_suffix n ".cold" then
          Some
            {
              sym_name = n;
              sym_kind = Func;
              sym_bind = Local;
              sym_section = (if relmode then ".text" else ".bolt.text");
              sym_value = p.p_addr;
              sym_size = p.p_frag.Emit.fr_out.Bolt_asm.Asm.fo_size;
            }
        else None)
      placements
  in

  (* ---- frame info, exception tables, line tables ---- *)
  let fdes = ref [] and lsdas = ref [] and dbgs = ref [] in
  List.iter
    (fun p ->
      let frag = p.p_frag in
      let out = frag.Emit.fr_out in
      let fb = Context.func ctx frag.Emit.fr_func in
      match fb with
      | Some fb when fb.simple && not (Hashtbl.mem reverted fb.fb_name) ->
          if frag.Emit.fr_has_fde then
            fdes :=
              {
                fde_func = frag.Emit.fr_name;
                fde_addr = p.p_addr;
                fde_size = out.Bolt_asm.Asm.fo_size;
                fde_cfi = out.Bolt_asm.Asm.fo_cfi;
              }
              :: !fdes;
          (if frag.Emit.fr_lsda_sym <> [] then
             let entries =
               List.filter_map
                 (fun (start, len, pad) ->
                   match Hashtbl.find_opt block_addr (fb.fb_name, pad) with
                   | Some pad_addr ->
                       Some
                         {
                           lsda_start = start;
                           lsda_len = len;
                           lsda_pad = pad_addr - p.p_addr;
                           lsda_action = 1;
                         }
                   | None -> None)
                 frag.Emit.fr_lsda_sym
             in
             if entries <> [] then
               lsdas :=
                 { lsda_func = frag.Emit.fr_name; lsda_fn_addr = p.p_addr; lsda_entries = entries }
                 :: !lsdas);
          if opts.Opts.update_debug_sections && out.Bolt_asm.Asm.fo_dbg <> [] then
            dbgs :=
              { dbg_func = frag.Emit.fr_name; dbg_addr = p.p_addr; dbg_entries = out.Bolt_asm.Asm.fo_dbg }
              :: !dbgs
      | Some fb ->
          (* non-simple or reverted: original metadata rebased *)
          if frag.Emit.fr_name = fb.fb_name then begin
            (match Objfile.fde_for exe fb.fb_name with
            | Some f -> fdes := { f with fde_addr = p.p_addr } :: !fdes
            | None -> ());
            (match Objfile.lsda_for exe fb.fb_name with
            | Some l -> lsdas := { l with lsda_fn_addr = p.p_addr } :: !lsdas
            | None -> ());
            match Objfile.dbg_for exe fb.fb_name with
            | Some d -> dbgs := { d with dbg_addr = p.p_addr } :: !dbgs
            | None -> ()
          end
      | None -> ())
    placements;
  (* reverted functions keep their original records *)
  Hashtbl.iter
    (fun n () ->
      (match Objfile.fde_for exe n with Some f -> fdes := f :: !fdes | None -> ());
      (match Objfile.lsda_for exe n with Some l -> lsdas := l :: !lsdas | None -> ());
      match Objfile.dbg_for exe n with Some d -> dbgs := d :: !dbgs | None -> ())
    reverted;

  let other_sections =
    List.filter_map
      (fun (s : section) ->
        match s.sec_kind with
        | Text -> None
        | _ ->
            if s.sec_name = ".rodata" then rodata
            else if s.sec_name = ".got" then got
            else Some s)
      exe.sections
  in
  let entry =
    match resolve_sym "main" with Some a -> a | None -> exe.entry
  in
  let out =
    (* a rewritten binary is a new revision: restamp build-id and
       fingerprints so fleet staleness checks distinguish it from the
       input build and profiles collected on it can be matched later *)
    Objfile.stamp_fingerprints
      (Objfile.stamp_build_id
         {
           Objfile.kind = Objfile.Executable;
           entry;
           build_id = "";
           sections = !sections @ other_sections;
           symbols = new_symbols @ cold_symbols;
           relocs = [];
           fdes = List.rev !fdes;
           lsdas = List.rev !lsdas;
           dbgs = List.rev !dbgs;
           fingerprints = [];
         })
  in
  let text_size_after =
    out.Objfile.sections |> List.filter (fun s -> s.sec_kind = Text)
    |> List.fold_left (fun a s -> a + s.sec_size) 0
  in
  {
    out;
    hot_size = !hot_end - Layout.text_base;
    cold_size = !cold_bytes;
    text_size_before;
    text_size_after;
  }

(* ---- the hardened rewrite driver ----

   The emit/link/rewrite step with the degradation ladder that used to
   live in the Bolt driver: a function whose fragment cannot be finalized
   is quarantined and the rewrite re-run without it; if the rewrite still
   cannot complete (and we are not strict) the run degrades to the
   identity rewrite — the input binary unchanged. *)

let text_bytes (e : Objfile.t) =
  e.Objfile.sections
  |> List.filter (fun (s : section) -> s.sec_kind = Text)
  |> List.fold_left (fun a (s : section) -> a + s.sec_size) 0

(* How many times a Frag_error may quarantine a function and retry the
   whole rewrite before giving up.  Each retry removes at least one
   function from the optimized set, so this bounds wasted work on a
   pathological input, not correctness. *)
let max_retries = 8

(* Returns the result and whether the identity fallback was taken. *)
let run_protected ctx : result * bool =
  let obs = ctx.Context.obs in
  let rec retry budget =
    try run ctx
    with Frag_error (func, msg) ->
      (match Context.func ctx func with
      | Some fb when fb.Bfunc.simple && budget > 0 ->
          Quarantine.demote ctx ~stage:"rewrite" fb msg
      | _ -> Context.err "rewrite: %s: %s" func msg);
      retry (budget - 1)
  in
  let rw, identity_fallback =
    try (retry max_retries, false)
    with
    | exn
      when (not ctx.Context.opts.Opts.strict) && not (Quarantine.fatal exn) ->
      (* last rung of the degradation ladder: ship the input unchanged *)
      Diag.errorf ctx.Context.diag ~stage:"rewrite"
        "rewrite failed (%s); falling back to the identity rewrite"
        (Printexc.to_string exn);
      Bolt_obs.Obs.event obs "identity-fallback";
      let tb = text_bytes ctx.Context.exe in
      ( {
          out = ctx.Context.exe;
          hot_size = 0;
          cold_size = 0;
          text_size_before = tb;
          text_size_after = tb;
        },
        true )
  in
  Bolt_obs.Obs.incr obs ~by:rw.text_size_after "rewrite.bytes_emitted";
  Bolt_obs.Obs.set_attr obs "hot_bytes" (Bolt_obs.Json.Int rw.hot_size);
  Bolt_obs.Obs.set_attr obs "cold_bytes" (Bolt_obs.Json.Int rw.cold_size);
  Bolt_obs.Obs.set_attr obs "text_before" (Bolt_obs.Json.Int rw.text_size_before);
  Bolt_obs.Obs.set_attr obs "text_after" (Bolt_obs.Json.Int rw.text_size_after);
  Bolt_obs.Metrics.incr ctx.Context.stats ~by:rw.text_size_after
    "rewrite.bytes_emitted";
  (rw, identity_fallback)
