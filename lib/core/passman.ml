(* The first-class pass manager: Table 1 as data.

   A pass is a descriptor — name, enablement predicate over [Opts.t], and
   a body that is either [Whole_program] (runs once, single-domain) or
   [Per_function] (a visitor the executor fans out over the domain pool).
   The registry below assembles the paper's Figure 3 / Table 1 pipeline
   declaratively; [Bolt.optimize] just runs it.  Adding a pass (e.g. the
   improved-reordering or stale-matching follow-up papers) is one more
   descriptor in the list, not driver surgery.

   Uniform wrapping: every enabled pass runs inside a trace span that
   reports wall time, functions modified and metric movement; every
   per-function body runs under the quarantine barrier; and every pass
   writes its counters into a fresh per-invocation registry that is
   merged into [Context.stats] (the report's source of truth) and
   mirrored into the run's [Obs] registry for manifests.

   Determinism contract for [Per_function] passes: the visitor may
   mutate only the [Bfunc.t] it was handed and the shard, with all
   shared context state read-only; shards are folded in original address
   order at the join.  Output is therefore byte-identical at any -j. *)

module Obs = Bolt_obs.Obs
module Json = Bolt_obs.Json
module Metrics = Bolt_obs.Metrics

type env = { ctx : Context.t; prof : Bolt_profile.Fdata.t; pool : Pool.t }

type kind =
  | Whole_program of (env -> Metrics.t -> unit)
  | Per_function of {
      pf_funcs : Context.t -> Bfunc.t list;
          (* work list; evaluated after the visitor's prelude *)
      pf_visit : env -> Context.shard -> Bfunc.t -> unit;
          (* [pf_visit env] runs once per pass on the main domain (the
             sequential prelude — e.g. an index built from all
             functions); the returned visitor runs per function on
             worker domains *)
    }

type pass = {
  p_name : string;
  p_enabled : Opts.t -> bool;
  p_kind : kind;
  p_post : env -> Metrics.t -> unit;
      (* runs after the join with the pass's own registry: summary log
         lines, derived counters *)
}

let no_post _ _ = ()

let make_env ?pool ctx prof =
  let pool =
    match pool with
    | Some p -> p
    | None -> Pool.create ~jobs:ctx.Context.opts.Opts.jobs ()
  in
  { ctx; prof; pool }

(* Run one pipeline stage inside a trace span.  The span records wall
   time, the number of functions the stage modified (via
   [Context.touch] / shard touches), and — through [Obs.span] —
   whichever registry counters moved while it ran. *)
let stage env name f =
  let ctx = env.ctx in
  Hashtbl.reset ctx.Context.touched;
  Obs.span ctx.Context.obs name (fun () ->
      let r = f () in
      let n = Hashtbl.length ctx.Context.touched in
      Obs.set_attr ctx.Context.obs "funcs_modified" (Json.Int n);
      if n > 0 then
        Obs.incr ctx.Context.obs ~by:n ("pass." ^ name ^ ".funcs_modified");
      r)

(* The parallel executor for a [Per_function] pass.  Fan the work list
   out over the pool with one shard per worker domain; at the join, fold
   quarantine verdicts/diagnostics deterministically, merge shard
   registries, and (when tracing) attach the per-function time
   distribution and one child span per worker domain. *)
let run_per_function env ~stage:sname ~funcs ~visit_of : Metrics.t =
  let ctx = env.ctx in
  let obs = ctx.Context.obs in
  (* the sequential prelude runs before the work list is computed *)
  let visit = visit_of env in
  let items = Array.of_list (funcs ctx) in
  let d = Pool.domains_for env.pool (Array.length items) in
  let shards = Array.init d (fun _ -> Context.new_shard ()) in
  let timing = Obs.is_enabled obs in
  let worker dom fb =
    let sh = shards.(dom) in
    if timing then begin
      let t0 = Unix.gettimeofday () in
      Quarantine.protect_sharded ctx sh ~stage:sname fb (visit sh);
      sh.Context.sh_times <- (Unix.gettimeofday () -. t0) :: sh.Context.sh_times
    end
    else Quarantine.protect_sharded ctx sh ~stage:sname fb (visit sh)
  in
  let dstats = Pool.run env.pool ~worker items in
  let shard_list = Array.to_list shards in
  (* raises Strict_error / Quarantine_limit exactly as a sequential run
     would, pinned to the first failing function in address order *)
  Quarantine.fold_shards ctx ~stage:sname shard_list;
  let pstats = Metrics.create () in
  List.iter
    (fun (sh : Context.shard) ->
      Metrics.merge ~into:pstats sh.Context.sh_stats;
      Hashtbl.iter
        (fun k () -> Hashtbl.replace ctx.Context.touched k ())
        sh.Context.sh_touched)
    shard_list;
  if timing then begin
    (match
       List.concat_map (fun (sh : Context.shard) -> sh.Context.sh_times) shard_list
       |> List.sort compare
     with
    | [] -> ()
    | times ->
        let a = Array.of_list times in
        let n = Array.length a in
        let pct p = a.(min (n - 1) (int_of_float (p *. float_of_int n))) in
        Obs.set_attr obs "fn_n" (Json.Int n);
        Obs.set_attr obs "fn_p50_ms" (Json.Float (1000.0 *. pct 0.50));
        Obs.set_attr obs "fn_p99_ms" (Json.Float (1000.0 *. pct 0.99)));
    if List.length dstats > 1 then begin
      Obs.set_attr obs "jobs" (Json.Int (List.length dstats));
      List.iter
        (fun (s : Pool.stats) ->
          Obs.add_child obs
            (Printf.sprintf "domain-%d" s.Pool.st_domain)
            ~attrs:[ ("items", Json.Int s.Pool.st_items) ]
            ~dur_s:s.Pool.st_busy_s)
        dstats
    end
  end;
  pstats

let run_pass env (p : pass) =
  if p.p_enabled env.ctx.Context.opts then
    stage env p.p_name (fun () ->
        let pstats =
          match p.p_kind with
          | Whole_program f ->
              let m = Metrics.create () in
              f env m;
              m
          | Per_function { pf_funcs; pf_visit } ->
              run_per_function env ~stage:p.p_name ~funcs:pf_funcs
                ~visit_of:pf_visit
        in
        p.p_post env pstats;
        Metrics.merge ~into:env.ctx.Context.stats pstats;
        (* mirror into the run's obs registry, inside the span, so the
           span's metric-delta attribute and the manifest keep the same
           counter names the sequential pipeline produced *)
        let obs = env.ctx.Context.obs in
        List.iter
          (fun (k, v) -> Obs.incr obs ~by:v k)
          (List.sort compare (Metrics.counters pstats));
        List.iter (fun (k, v) -> Obs.set obs k v) (Metrics.gauges pstats))

let run env passes = List.iter (run_pass env) passes

(* ---- the registry ---- *)

(* Per-function descriptor: default work list is the simple functions. *)
let pf name enabled ?(funcs = Context.simple_funcs) ?(post = no_post) visit =
  {
    p_name = name;
    p_enabled = enabled;
    p_kind = Per_function { pf_funcs = funcs; pf_visit = visit };
    p_post = post;
  }

let wp name enabled ?(post = no_post) f =
  { p_name = name; p_enabled = enabled; p_kind = Whole_program f; p_post = post }

(* Figure 3 front half: disassembly/CFG construction, then profile
   attachment.  CFG build runs over every discovered function (simple or
   not: the non-simple fallback symbolization happens there too). *)
let build_cfg =
  pf "build-cfg"
    (fun _ -> true)
    ~funcs:Context.all_funcs
    (fun env ->
      Build.discover env.ctx;
      Build.build_fn env.ctx)
    ~post:(fun env p ->
      let funcs = List.length env.ctx.Context.order in
      let simple = List.length (Context.simple_funcs env.ctx) in
      Metrics.incr p ~by:funcs "build.funcs";
      Metrics.incr p ~by:simple "build.simple_funcs";
      Context.logf env.ctx "build: %d functions, %d simple" funcs simple)

let match_profile =
  wp "match-profile"
    (fun _ -> true)
    (fun env m ->
      let zero =
        {
          Match_profile.matched_branches = 0;
          unmatched_branches = 0;
          matched_count = 0;
          unmatched_count = 0;
          stale_records = 0;
          unknown_funcs = 0;
        }
      in
      let s =
        Quarantine.pass env.ctx ~stage:"match-profile" ~default:zero (fun () ->
            let s = Match_profile.attach env.ctx env.prof in
            Match_profile.finalize env.ctx ~lbr:env.prof.Bolt_profile.Fdata.lbr
              ~trust_fallthrough:env.ctx.Context.opts.Opts.trust_fallthrough;
            s)
      in
      Metrics.incr m ~by:s.Match_profile.matched_branches "profile.matched_branches";
      Metrics.incr m ~by:s.Match_profile.unmatched_branches
        "profile.unmatched_branches";
      Metrics.incr m ~by:s.Match_profile.matched_count "profile.matched_count";
      Metrics.incr m ~by:s.Match_profile.unmatched_count "profile.unmatched_count";
      Metrics.incr m ~by:s.Match_profile.stale_records "profile.stale_records";
      Metrics.incr m ~by:s.Match_profile.unknown_funcs "profile.unknown_funcs";
      let total = s.matched_branches + s.unmatched_branches in
      Metrics.set m "profile.staleness_ratio"
        (if total = 0 then 0.0
         else float_of_int s.stale_records /. float_of_int total))

let pre_passes = [ build_cfg; match_profile ]

let icf_body env m =
  let folded, bytes =
    Quarantine.pass env.ctx ~stage:"icf" ~default:(0, 0) (fun () ->
        Icf.run env.ctx)
  in
  Metrics.incr m ~by:folded "pass.icf.folded";
  Metrics.incr m ~by:bytes "pass.icf.bytes_saved"

let log_count env p fmt key = Context.logf env.ctx fmt (Metrics.counter p key)

(* Table 1, in the paper's order.  fixup-branches (pass 12) happens
   structurally at emission; reorder-functions runs even under Rf_none
   because it also computes the identity function layout. *)
let table1 =
  [
    pf "strip-rep-ret"
      (fun o -> o.Opts.strip_rep_ret)
      (fun env -> Passes_simple.strip_rep_ret_fn env.ctx)
      ~post:(fun env p ->
        log_count env p "strip-rep-ret: %d returns stripped"
          "pass.strip-rep-ret.stripped");
    wp "icf" (fun o -> o.Opts.icf) icf_body;
    wp "icp"
      (fun o -> o.Opts.icp)
      (fun env m ->
        let promoted =
          Quarantine.pass env.ctx ~stage:"icp" ~default:0 (fun () ->
              Icp.run env.ctx (Icp.build_site_profile env.ctx env.prof))
        in
        Metrics.incr m ~by:promoted "pass.icp.promoted");
    pf "peepholes"
      (fun o -> o.Opts.peepholes)
      (fun env -> Passes_simple.peepholes_fn env.ctx)
      ~post:(fun env p ->
        Context.logf env.ctx "peepholes: %d removed, %d shortened"
          (Metrics.counter p "pass.peepholes.removed")
          (Metrics.counter p "pass.peepholes.shortened"));
    wp "inline-small"
      (fun o -> o.Opts.inline_small)
      (fun env m ->
        Metrics.incr m ~by:(Inline_small.run env.ctx) "pass.inline-small.inlined");
    pf "simplify-ro-loads"
      (fun o -> o.Opts.simplify_ro_loads)
      (fun env -> Passes_simple.simplify_ro_loads_fn env.ctx)
      ~post:(fun env p ->
        Context.logf env.ctx "simplify-ro-loads: %d converted, %d aborted (size)"
          (Metrics.counter p "pass.simplify-ro-loads.converted")
          (Metrics.counter p "pass.simplify-ro-loads.aborted"));
    wp "icf-2" (fun o -> o.Opts.icf) icf_body;
    pf "plt"
      (fun o -> o.Opts.plt)
      (fun env -> Passes_simple.plt_fn env.ctx)
      ~post:(fun env p ->
        log_count env p "plt: %d calls de-indirected" "pass.plt.deindirected");
    pf "reorder-bbs"
      (fun o -> o.Opts.reorder_blocks <> Opts.Rb_none)
      (fun env -> Layout_bbs.reorder_fn env.ctx)
      ~post:(fun env p ->
        Context.logf env.ctx "reorder-bbs(%s): %d functions reordered"
          (Layout_bbs.algo_name env.ctx.Context.opts.Opts.reorder_blocks)
          (Metrics.counter p "pass.reorder-bbs.reordered"));
    pf "split-functions"
      (fun o -> o.Opts.split_functions <> Opts.Split_none)
      (fun env -> Layout_bbs.split_fn env.ctx)
      ~post:(fun env p ->
        log_count env p "split-functions: %d blocks moved to cold fragments"
          "pass.split-functions.blocks_split");
    pf "peepholes-2"
      (fun o -> o.Opts.peepholes)
      (fun env -> Passes_simple.peepholes_fn env.ctx)
      ~post:(fun env p ->
        Context.logf env.ctx "peepholes: %d removed, %d shortened"
          (Metrics.counter p "pass.peepholes.removed")
          (Metrics.counter p "pass.peepholes.shortened"));
    pf "uce"
      (fun o -> o.Opts.uce)
      (fun env -> Passes_simple.uce_fn env.ctx)
      ~post:(fun env p ->
        log_count env p "uce: %d unreachable blocks removed"
          "pass.uce.blocks_removed");
    (* fixup-branches happens structurally at emission *)
    wp "reorder-functions"
      (fun _ -> true)
      (fun env _m ->
        env.ctx.Context.func_layout <-
          Quarantine.pass env.ctx ~stage:"reorder-functions" ~default:None
            (fun () -> Some (Reorder_funcs.run env.ctx env.prof)));
    pf "sctc"
      (fun o -> o.Opts.sctc)
      (fun env -> Passes_simple.sctc_fn env.ctx)
      ~post:(fun env p ->
        log_count env p "sctc: %d branches simplified" "pass.sctc.simplified");
    pf "frame-opts"
      (fun o -> o.Opts.frame_opts)
      (fun env -> Frame_opts.frame_opts_fn env.ctx)
      ~post:(fun env p ->
        log_count env p "frame-opts: %d dead register saves removed"
          "pass.frame-opts.saves_removed");
    pf "shrink-wrapping"
      (fun o -> o.Opts.shrink_wrapping)
      (fun env -> Frame_opts.shrink_wrapping_fn env.ctx)
      ~post:(fun env p ->
        log_count env p "shrink-wrapping: %d saves moved to cold blocks"
          "pass.shrink-wrapping.moved");
  ]
