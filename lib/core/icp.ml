(* Pass 3: indirect call promotion.

   When the profile shows one dominant target at an indirect call site,
   the call is rewritten as

       cmp  r, @target        ; address of the hot target
       jne  .Licp_indirect
     .Licp_direct:   call target      ; direct: predictable, inlinable
                     jmp  .Licp_cont
     .Licp_indirect: call *r          ; the cold remainder
                     jmp  .Licp_cont
     .Licp_cont:     ...rest of the original block

   The comparison operand stays symbolic so the rewritten binary keeps
   working after function reordering moves the target. *)

open Bolt_isa
open Bfunc

(* Per-site indirect-call target profile, provided by the driver from the
   fdata inter-function branch records. *)
type site_profile = (string * int, (string * int) list) Hashtbl.t

let build_site_profile ctx (prof : Bolt_profile.Fdata.t) : site_profile =
  let h = Hashtbl.create 64 in
  List.iter
    (fun (b : Bolt_profile.Fdata.branch) ->
      if b.br_from_func <> b.br_to_func && b.br_to_off = 0 then begin
        (* keep only records whose source is an indirect call instruction *)
        match Context.func ctx b.br_from_func with
        | Some fb when fb.simple ->
            let key = (b.br_from_func, b.br_from_off) in
            Hashtbl.replace h key
              ((b.br_to_func, Bolt_profile.Fdata.clamp_int b.br_count)
              :: (try Hashtbl.find h key with Not_found -> []))
        | _ -> ()
      end)
    prof.branches;
  h

let run ctx (sites : site_profile) =
  let promoted = ref 0 in
  let threshold = ctx.Context.opts.Opts.icp_threshold_pct in
  Quarantine.iter_simple ctx ~stage:"icp"
    (fun fb ->
      (* collect candidate (block, insn) sites first: we mutate the CFG *)
      let candidates = ref [] in
      Hashtbl.iter
        (fun l b ->
          List.iter
            (fun (i : minsn) ->
              match i.op with
              | Insn.Call_ind _ when i.m_off >= 0 -> (
                  match Hashtbl.find_opt sites (fb.fb_name, i.m_off) with
                  | Some targets ->
                      let total = List.fold_left (fun a (_, c) -> a + c) 0 targets in
                      let merged = Hashtbl.create 8 in
                      List.iter
                        (fun (t, c) ->
                          Hashtbl.replace merged t
                            (c + try Hashtbl.find merged t with Not_found -> 0))
                        targets;
                      let best =
                        Hashtbl.fold
                          (fun t c acc ->
                            match acc with
                            | Some (_, bc) when bc >= c -> acc
                            | _ -> Some (t, c))
                          merged None
                      in
                      (match best with
                      | Some (t, c)
                        when total > 0
                             && c * 100 >= threshold * total
                             && Context.func ctx t <> None ->
                          candidates := (l, i.m_off, t, c, total) :: !candidates
                      | _ -> ())
                  | None -> ())
              | _ -> ())
            b.insns)
        fb.blocks;
      List.iter
        (fun (l, off, target, c_top, c_tot) ->
          match block_opt fb l with
          | None -> ()
          | Some b -> (
              (* split the block around the indirect call *)
              let rec split pre = function
                | [] -> None
                | ({ op = Insn.Call_ind r; _ } as i) :: post when i.m_off = off ->
                    Some (List.rev pre, i, r, post)
                | i :: post -> split (i :: pre) post
              in
              match split [] b.insns with
              | None -> ()
              | Some (pre, icall, reg, post) ->
                  let direct_l = fresh_label fb "Licp_direct" in
                  let indirect_l = fresh_label fb "Licp_ind" in
                  let cont_l = fresh_label fb "Licp_cont" in
                  let scale x = if b.ecount = 0 || c_tot = 0 then 0 else b.ecount * x / c_tot in
                  add_block fb
                    {
                      bl = direct_l;
                      b_off = -1;
                      insns =
                        [ { op = Insn.Call (Insn.Sym (target, 0));
                            lp = icall.lp;
                            loc = icall.loc;
                            cfi_after = [];
                            m_off = -1;
                          } ];
                      term = T_jump cont_l;
                      ecount = scale c_top;
                      cfi_entry = b.cfi_entry;
                      is_lp = false;
                    };
                  add_block fb
                    {
                      bl = indirect_l;
                      b_off = -1;
                      insns = [ { icall with cfi_after = [] } ];
                      term = T_jump cont_l;
                      ecount = scale (c_tot - c_top);
                      cfi_entry = b.cfi_entry;
                      is_lp = false;
                    };
                  add_block fb
                    {
                      bl = cont_l;
                      b_off = -1;
                      insns = (match icall.cfi_after with
                               | [] -> post
                               | ops -> (
                                   match post with
                                   | p0 :: rest -> { p0 with cfi_after = ops @ p0.cfi_after } :: rest
                                   | [] -> post));
                      term = b.term;
                      ecount = b.ecount;
                      cfi_entry = b.cfi_entry;
                      is_lp = false;
                    };
                  (* move b's outgoing edge counts to the continuation *)
                  let moved = ref [] in
                  Hashtbl.iter
                    (fun (s, d) (c, m) -> if s = l then moved := (d, !c, !m) :: !moved)
                    fb.edge_counts;
                  List.iter
                    (fun (d, c, m) ->
                      Hashtbl.remove fb.edge_counts (l, d);
                      add_edge_count fb cont_l d c m)
                    !moved;
                  b.insns <-
                    pre
                    @ [ { op = Insn.Alu_ri (Insn.Cmp, reg, Insn.Sym (target, 0));
                          lp = None;
                          loc = icall.loc;
                          cfi_after = [];
                          m_off = -1;
                        } ];
                  b.term <- T_cond (Cond.Eq, direct_l, indirect_l);
                  add_edge_count fb l direct_l (scale c_top) 0;
                  add_edge_count fb l indirect_l (scale (c_tot - c_top)) 0;
                  add_edge_count fb direct_l cont_l (scale c_top) 0;
                  add_edge_count fb indirect_l cont_l (scale (c_tot - c_top)) 0;
                  fb.layout <-
                    List.concat_map
                      (fun l' ->
                        if l' = l then [ l; direct_l; indirect_l; cont_l ] else [ l' ])
                      fb.layout;
                  incr promoted;
                  Context.touch ctx fb.fb_name))
        !candidates);
  Context.logf ctx "icp: %d indirect calls promoted" !promoted;
  !promoted
