(* BOLT options, mirroring the command line the paper uses:

     -reorder-blocks=cache+ -reorder-functions=hfsort+
     -split-functions=3 -split-all-cold -split-eh -icf=1
     -dyno-stats ...                                           *)

type reorder_blocks = Rb_none | Rb_cache | Rb_cache_plus | Rb_ext_tsp

type reorder_functions = Rf_none | Rf_hfsort | Rf_hfsort_plus | Rf_pettis_hansen

type split_functions = Split_none | Split_large | Split_all

type t = {
  reorder_blocks : reorder_blocks;
  reorder_functions : reorder_functions;
  split_functions : split_functions;
  split_all_cold : bool; (* move entirely-cold functions to the cold area *)
  split_eh : bool; (* move landing pads to the cold fragment *)
  icf : bool;
  icp : bool; (* indirect call promotion *)
  icp_threshold_pct : int; (* promote when the top target takes >= this % *)
  inline_small : bool;
  inline_size_limit : int; (* bytes *)
  simplify_ro_loads : bool;
  plt : bool;
  peepholes : bool;
  strip_rep_ret : bool;
  strip_nops : bool; (* discard alignment NOPs on input (paper's policy) *)
  sctc : bool;
  frame_opts : bool;
  shrink_wrapping : bool;
  uce : bool;
  fixup_branches : bool;
  trust_fallthrough : bool;
      (* §5.2: attribute surplus flow to the fall-through path and trust
         the compiler's original layout under uncertainty *)
  stale_match : bool;
      (* recover a profile whose build-id doesn't match the input binary
         via fingerprint matching (Stale_match) instead of letting its
         records decay record-by-record *)
  align_functions : int;
  use_relocations : bool option; (* None = auto: use them when present *)
  update_debug_sections : bool;
  verbose : bool;
  strict : bool;
      (* fail hard (Diag.Strict_error) instead of degrading: any verifier
         issue, profile-parse warning or function quarantine aborts *)
  max_quarantine : int option;
      (* abort (Diag.Quarantine_limit) when more functions than this are
         quarantined: a badly corrupted input is better rejected *)
  jobs : int;
      (* worker domains for per-function passes (obolt -j); output is
         byte-identical regardless of the value.  1 = fully sequential *)
}

let default =
  {
    reorder_blocks = Rb_ext_tsp;
    reorder_functions = Rf_hfsort_plus;
    split_functions = Split_all;
    split_all_cold = true;
    split_eh = true;
    icf = true;
    icp = true;
    icp_threshold_pct = 66;
    inline_small = true;
    inline_size_limit = 32;
    simplify_ro_loads = true;
    plt = true;
    peepholes = true;
    strip_rep_ret = true;
    strip_nops = true;
    sctc = true;
    frame_opts = true;
    shrink_wrapping = true;
    uce = true;
    fixup_branches = true;
    trust_fallthrough = true;
    stale_match = true;
    align_functions = 16;
    use_relocations = None;
    update_debug_sections = true;
    verbose = false;
    strict = false;
    max_quarantine = None;
    jobs = 1;
  }

(* Everything off: the identity rewrite, useful for testing the pipeline. *)
let none =
  {
    default with
    reorder_blocks = Rb_none;
    reorder_functions = Rf_none;
    split_functions = Split_none;
    split_all_cold = false;
    split_eh = false;
    icf = false;
    icp = false;
    inline_small = false;
    simplify_ro_loads = false;
    plt = false;
    peepholes = false;
    strip_rep_ret = false;
    strip_nops = false;
    sctc = false;
    frame_opts = false;
    shrink_wrapping = false;
    uce = false;
  }
