(* The small transformation passes of Table 1: strip-rep-ret, peepholes,
   unreachable-code elimination, simplification of conditional tail calls,
   read-only load simplification and PLT de-indirection.

   Each pass comes in two forms.  The [*_fn] visitor
   ([Context.t -> Context.shard -> Bfunc.t -> unit]) transforms one
   function and records counts/touches on the worker's shard — this is
   what the pass manager fans out over domains, and the contract is that
   a visitor mutates nothing but its own [Bfunc.t] and shard (shared
   context state is read-only).  The classic [Context.t -> unit] entry
   point remains as a sequential wrapper over the same visitor, for
   direct callers and tests. *)

open Bolt_isa
open Bfunc

(* Pass 1: strip the legacy-AMD repz prefix from returns (2 bytes -> 1). *)
let strip_rep_ret_fn _ctx sh (fb : Bfunc.t) =
  Hashtbl.iter
    (fun _ b ->
      List.iter
        (fun (i : minsn) ->
          if i.op = Insn.Repz_ret then begin
            i.op <- Insn.Ret;
            Context.sh_incr sh "pass.strip-rep-ret.stripped";
            Context.sh_touch sh fb
          end)
        b.insns)
    fb.blocks

let strip_rep_ret ctx =
  let s = Quarantine.run_fns ctx ~stage:"strip-rep-ret" (strip_rep_ret_fn ctx) in
  Context.logf ctx "strip-rep-ret: %d returns stripped"
    (Bolt_obs.Metrics.counter s "pass.strip-rep-ret.stripped")

(* Passes 4/10: peephole simplifications. *)
let peepholes_fn _ctx sh (fb : Bfunc.t) =
  Hashtbl.iter
    (fun _ b ->
      let keep =
        List.filter
          (fun (i : minsn) ->
            match i.op with
            | Insn.Mov_rr (d, s) when Reg.equal d s ->
                Context.sh_incr sh "pass.peepholes.removed";
                Context.sh_touch sh fb;
                false
            | _ -> true)
          b.insns
      in
      List.iter
        (fun (i : minsn) ->
          match i.op with
          | Insn.Alu_ri (Insn.Cmp, r, Insn.Imm 0) ->
              (* cmp r, 0 (6 bytes) -> test r, r (2 bytes) *)
              i.op <- Insn.Alu_rr (Insn.Test, r, r);
              Context.sh_incr sh "pass.peepholes.shortened";
              Context.sh_touch sh fb
          | _ -> ())
        keep;
      b.insns <- keep)
    fb.blocks

let peepholes ctx =
  let s = Quarantine.run_fns ctx ~stage:"peepholes" (peepholes_fn ctx) in
  Context.logf ctx "peepholes: %d removed, %d shortened"
    (Bolt_obs.Metrics.counter s "pass.peepholes.removed")
    (Bolt_obs.Metrics.counter s "pass.peepholes.shortened")

(* Pass 11: eliminate unreachable basic blocks. *)
let uce_fn _ctx sh (fb : Bfunc.t) =
  let reach = Hashtbl.create 32 in
  let rec go l =
    if not (Hashtbl.mem reach l) then begin
      Hashtbl.replace reach l ();
      match block_opt fb l with
      | Some b -> List.iter go (successors_eh fb b)
      | None -> ()
    end
  in
  go fb.entry;
  let dead = ref [] in
  Hashtbl.iter (fun l _ -> if not (Hashtbl.mem reach l) then dead := l :: !dead) fb.blocks;
  List.iter
    (fun l ->
      Hashtbl.remove fb.blocks l;
      Context.sh_incr sh "pass.uce.blocks_removed";
      Context.sh_touch sh fb)
    !dead;
  fb.layout <- List.filter (Hashtbl.mem reach) fb.layout

let uce ctx =
  let s = Quarantine.run_fns ctx ~stage:"uce" (uce_fn ctx) in
  Context.logf ctx "uce: %d unreachable blocks removed"
    (Bolt_obs.Metrics.counter s "pass.uce.blocks_removed")

(* Pass 14: simplify conditional tail calls — a conditional branch to a
   block that only forwards (an empty block jumping elsewhere, or a lone
   direct tail call) is retargeted, removing a jump from the hot path. *)
let sctc_fn _ctx sh (fb : Bfunc.t) =
  Hashtbl.iter
    (fun l b ->
      match b.term with
      | T_cond (c, taken, fall) when taken <> fall -> (
          match block_opt fb taken with
          | Some tb when tb.insns = [] && not tb.is_lp -> (
              match tb.term with
              | T_jump t2 when t2 <> taken ->
                  let cnt = edge_count fb l taken in
                  b.term <- T_cond (c, t2, fall);
                  add_edge_count fb l t2 cnt 0;
                  Context.sh_incr sh "pass.sctc.simplified";
                  Context.sh_touch sh fb
              | _ -> ())
          | Some tb when not tb.is_lp -> (
              (* a lone direct tail call: jcc straight to the callee *)
              match (tb.insns, tb.term) with
              | [ { op = Insn.Jmp (Insn.Sym (fn, 0), _); _ } ], T_stop ->
                  b.term <- T_condtail (c, fn, fall);
                  Context.sh_incr sh "pass.sctc.simplified";
                  Context.sh_touch sh fb
              | _ -> ())
          | _ -> ())
      | T_jump t -> (
          match block_opt fb t with
          | Some tb when tb.insns = [] && (not tb.is_lp) && t <> l -> (
              match tb.term with
              | T_jump t2 when t2 <> t ->
                  let cnt = edge_count fb l t in
                  b.term <- T_jump t2;
                  add_edge_count fb l t2 cnt 0;
                  Context.sh_incr sh "pass.sctc.simplified";
                  Context.sh_touch sh fb
              | _ -> ())
          | _ -> ())
      | _ -> ())
    fb.blocks

let sctc ctx =
  let s = Quarantine.run_fns ctx ~stage:"sctc" (sctc_fn ctx) in
  Context.logf ctx "sctc: %d branches simplified"
    (Bolt_obs.Metrics.counter s "pass.sctc.simplified")

(* Pass 6: loads from statically-known read-only cells become immediate
   moves, unless the new encoding would be larger (the paper's policy).
   The jump-table cell index is the pass's sequential prelude: built once
   from every simple function, then read-only by the workers. *)
let simplify_ro_loads_fn ctx =
  let jt_cells = Hashtbl.create 64 in
  List.iter
    (fun fb ->
      Array.iter
        (fun (jt : jt) ->
          Array.iteri
            (fun k _ -> Hashtbl.replace jt_cells (jt.jt_addr + (8 * k)) ())
            jt.jt_targets)
        fb.Bfunc.jts)
    (Context.simple_funcs ctx);
  fun sh (fb : Bfunc.t) ->
    Hashtbl.iter
      (fun _ b ->
        List.iter
          (fun (i : minsn) ->
            match i.op with
            | Insn.Load_abs (r, Insn.Imm a)
              when Context.in_section ctx.Context.rodata a
                   && not (Hashtbl.mem jt_cells a) -> (
                match Context.section_value ctx ctx.Context.rodata a with
                | Some v ->
                    if Codec.fits_i32 v then begin
                      (* same 6-byte encoding: a pure win *)
                      i.op <- Insn.Mov_ri (r, Insn.Imm v, Insn.I32);
                      Context.sh_incr sh "pass.simplify-ro-loads.converted";
                      Context.sh_touch sh fb
                    end
                    else
                      (* movabs would be 10 > 6 bytes *)
                      Context.sh_incr sh "pass.simplify-ro-loads.aborted"
                | None -> ())
            | _ -> ())
          b.insns)
      fb.blocks

let simplify_ro_loads ctx =
  let s =
    Quarantine.run_fns ctx ~stage:"simplify-ro-loads" (simplify_ro_loads_fn ctx)
  in
  Context.logf ctx "simplify-ro-loads: %d converted, %d aborted (size)"
    (Bolt_obs.Metrics.counter s "pass.simplify-ro-loads.converted")
    (Bolt_obs.Metrics.counter s "pass.simplify-ro-loads.aborted")

(* Pass 8: remove PLT indirection from calls whose stub target is known. *)
let plt_fn ctx sh (fb : Bfunc.t) =
  Hashtbl.iter
    (fun _ b ->
      List.iter
        (fun (i : minsn) ->
          match i.op with
          | Insn.Call (Insn.Sym (s, 0)) -> (
              match Hashtbl.find_opt ctx.Context.plt_target s with
              | Some target ->
                  i.op <- Insn.Call (Insn.Sym (target, 0));
                  Context.sh_incr sh "pass.plt.deindirected";
                  Context.sh_touch sh fb
              | None -> ())
          | _ -> ())
        b.insns)
    fb.blocks

let plt ctx =
  let s = Quarantine.run_fns ctx ~stage:"plt" (plt_fn ctx) in
  Context.logf ctx "plt: %d calls de-indirected"
    (Bolt_obs.Metrics.counter s "pass.plt.deindirected")
