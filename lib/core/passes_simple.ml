(* The small transformation passes of Table 1: strip-rep-ret, peepholes,
   unreachable-code elimination, simplification of conditional tail calls,
   read-only load simplification and PLT de-indirection. *)

open Bolt_isa
open Bfunc

(* Pass 1: strip the legacy-AMD repz prefix from returns (2 bytes -> 1). *)
let strip_rep_ret ctx =
  let n = ref 0 in
  Quarantine.iter_simple ctx ~stage:"strip-rep-ret"
    (fun fb ->
      Hashtbl.iter
        (fun _ b ->
          List.iter
            (fun (i : minsn) ->
              if i.op = Insn.Repz_ret then begin
                i.op <- Insn.Ret;
                incr n;
                Context.touch ctx fb.fb_name
              end)
            b.insns)
        fb.blocks);
  Context.logf ctx "strip-rep-ret: %d returns stripped" !n

(* Passes 4/10: peephole simplifications. *)
let peepholes ctx =
  let removed = ref 0 and mutated = ref 0 in
  Quarantine.iter_simple ctx ~stage:"peepholes"
    (fun fb ->
      Hashtbl.iter
        (fun _ b ->
          let keep =
            List.filter
              (fun (i : minsn) ->
                match i.op with
                | Insn.Mov_rr (d, s) when Reg.equal d s ->
                    incr removed;
                    Context.touch ctx fb.fb_name;
                    false
                | _ -> true)
              b.insns
          in
          List.iter
            (fun (i : minsn) ->
              match i.op with
              | Insn.Alu_ri (Insn.Cmp, r, Insn.Imm 0) ->
                  (* cmp r, 0 (6 bytes) -> test r, r (2 bytes) *)
                  i.op <- Insn.Alu_rr (Insn.Test, r, r);
                  incr mutated;
                  Context.touch ctx fb.fb_name
              | _ -> ())
            keep;
          b.insns <- keep)
        fb.blocks);
  Context.logf ctx "peepholes: %d removed, %d shortened" !removed !mutated

(* Pass 11: eliminate unreachable basic blocks. *)
let uce ctx =
  let n = ref 0 in
  Quarantine.iter_simple ctx ~stage:"uce"
    (fun fb ->
      let reach = Hashtbl.create 32 in
      let rec go l =
        if not (Hashtbl.mem reach l) then begin
          Hashtbl.replace reach l ();
          match block_opt fb l with
          | Some b -> List.iter go (successors_eh fb b)
          | None -> ()
        end
      in
      go fb.entry;
      let dead = ref [] in
      Hashtbl.iter (fun l _ -> if not (Hashtbl.mem reach l) then dead := l :: !dead) fb.blocks;
      List.iter
        (fun l ->
          Hashtbl.remove fb.blocks l;
          incr n;
          Context.touch ctx fb.fb_name)
        !dead;
      fb.layout <- List.filter (Hashtbl.mem reach) fb.layout);
  Context.logf ctx "uce: %d unreachable blocks removed" !n

(* Pass 14: simplify conditional tail calls — a conditional branch to a
   block that only forwards (an empty block jumping elsewhere, or a lone
   direct tail call) is retargeted, removing a jump from the hot path. *)
let sctc ctx =
  let n = ref 0 in
  Quarantine.iter_simple ctx ~stage:"sctc"
    (fun fb ->
      Hashtbl.iter
        (fun l b ->
          match b.term with
          | T_cond (c, taken, fall) when taken <> fall -> (
              match block_opt fb taken with
              | Some tb when tb.insns = [] && not tb.is_lp -> (
                  match tb.term with
                  | T_jump t2 when t2 <> taken ->
                      let cnt = edge_count fb l taken in
                      b.term <- T_cond (c, t2, fall);
                      add_edge_count fb l t2 cnt 0;
                      incr n;
                      Context.touch ctx fb.fb_name
                  | _ -> ())
              | Some tb when not tb.is_lp -> (
                  (* a lone direct tail call: jcc straight to the callee *)
                  match (tb.insns, tb.term) with
                  | [ { op = Insn.Jmp (Insn.Sym (fn, 0), _); _ } ], T_stop ->
                      b.term <- T_condtail (c, fn, fall);
                      incr n;
                      Context.touch ctx fb.fb_name
                  | _ -> ())
              | _ -> ())
          | T_jump t -> (
              match block_opt fb t with
              | Some tb when tb.insns = [] && (not tb.is_lp) && t <> l -> (
                  match tb.term with
                  | T_jump t2 when t2 <> t ->
                      let cnt = edge_count fb l t in
                      b.term <- T_jump t2;
                      add_edge_count fb l t2 cnt 0;
                      incr n;
                      Context.touch ctx fb.fb_name
                  | _ -> ())
              | _ -> ())
          | _ -> ())
        fb.blocks);
  Context.logf ctx "sctc: %d branches simplified" !n

(* Pass 6: loads from statically-known read-only cells become immediate
   moves, unless the new encoding would be larger (the paper's policy). *)
let simplify_ro_loads ctx =
  let n = ref 0 and aborted = ref 0 in
  let jt_cells = Hashtbl.create 64 in
  List.iter
    (fun fb ->
      Array.iter
        (fun (jt : jt) ->
          Array.iteri
            (fun k _ -> Hashtbl.replace jt_cells (jt.jt_addr + (8 * k)) ())
            jt.jt_targets)
        fb.Bfunc.jts)
    (Context.simple_funcs ctx);
  Quarantine.iter_simple ctx ~stage:"simplify-ro-loads"
    (fun fb ->
      Hashtbl.iter
        (fun _ b ->
          List.iter
            (fun (i : minsn) ->
              match i.op with
              | Insn.Load_abs (r, Insn.Imm a)
                when Context.in_section ctx.Context.rodata a
                     && not (Hashtbl.mem jt_cells a) -> (
                  match Context.section_value ctx ctx.Context.rodata a with
                  | Some v ->
                      if Codec.fits_i32 v then begin
                        (* same 6-byte encoding: a pure win *)
                        i.op <- Insn.Mov_ri (r, Insn.Imm v, Insn.I32);
                        incr n;
                        Context.touch ctx fb.fb_name
                      end
                      else incr aborted (* movabs would be 10 > 6 bytes *)
                  | None -> ())
              | _ -> ())
            b.insns)
        fb.blocks);
  Context.logf ctx "simplify-ro-loads: %d converted, %d aborted (size)" !n !aborted

(* Pass 8: remove PLT indirection from calls whose stub target is known. *)
let plt ctx =
  let n = ref 0 in
  Quarantine.iter_simple ctx ~stage:"plt"
    (fun fb ->
      Hashtbl.iter
        (fun _ b ->
          List.iter
            (fun (i : minsn) ->
              match i.op with
              | Insn.Call (Insn.Sym (s, 0)) -> (
                  match Hashtbl.find_opt ctx.Context.plt_target s with
                  | Some target ->
                      i.op <- Insn.Call (Insn.Sym (target, 0));
                      incr n;
                      Context.touch ctx fb.fb_name
                  | None -> ())
              | _ -> ())
            b.insns)
        fb.blocks);
  Context.logf ctx "plt: %d calls de-indirected" !n
