(* -dyno-stats: profile-weighted execution statistics of the current
   layout, the source of the paper's Table 2.

   All numbers are derived from the CFG annotations: a branch "executes"
   its block's count; it is "taken" with the weight of its non-fall-through
   edge; forward/backward is judged against the current block layout.
   Instruction counts weight each block's length by its execution count. *)

open Bfunc

type t = {
  mutable executed_forward_branches : int;
  mutable taken_forward_branches : int;
  mutable executed_backward_branches : int;
  mutable taken_backward_branches : int;
  mutable executed_unconditional : int;
  mutable executed_instructions : int;
  mutable total_branches : int;
  mutable taken_branches : int;
  mutable non_taken_conditional : int;
  mutable taken_conditional : int;
  mutable executed_calls : int;
  (* layout quality (lib/layout's offline evaluator): summed per-function
     ExtTSP objective (x1000, so the before/after delta table stays
     integral) and the estimated hot working set *)
  mutable layout_score_x1000 : int;
  mutable hot_icache_lines : int;
  mutable hot_itlb_pages : int;
}

let zero () =
  {
    executed_forward_branches = 0;
    taken_forward_branches = 0;
    executed_backward_branches = 0;
    taken_backward_branches = 0;
    executed_unconditional = 0;
    executed_instructions = 0;
    total_branches = 0;
    taken_branches = 0;
    non_taken_conditional = 0;
    taken_conditional = 0;
    executed_calls = 0;
    layout_score_x1000 = 0;
    hot_icache_lines = 0;
    hot_itlb_pages = 0;
  }

let collect ctx : t =
  let st = zero () in
  List.iter
    (fun fb ->
      let pos = Hashtbl.create 32 in
      List.iteri (fun i l -> Hashtbl.replace pos l i) fb.layout;
      let index l = try Hashtbl.find pos l with Not_found -> max_int in
      List.iteri
        (fun i l ->
          let b = block fb l in
          let n = b.ecount in
          st.executed_instructions <-
            st.executed_instructions + (n * List.length b.insns);
          List.iter
            (fun (ins : minsn) ->
              if Bolt_isa.Insn.is_call ins.op then
                st.executed_calls <- st.executed_calls + n)
            b.insns;
          let next =
            if i + 1 < List.length fb.layout then List.nth fb.layout (i + 1) else ""
          in
          match b.term with
          | T_cond (_, taken, fall) when taken <> fall ->
              let tk = edge_count fb l taken in
              let fl = edge_count fb l fall in
              let executed = max n (tk + fl) in
              (* emission picks the branch polarity from the layout: the
                 emitted Jcc is TAKEN with the weight of whichever edge is
                 NOT the layout successor *)
              let jcc_target, jcc_taken, jcc_not_taken, extra_jmp =
                if next = fall then (taken, tk, fl, 0)
                else if next = taken then (fall, fl, tk, 0)
                else (taken, tk, fl, fl) (* Jcc taken + trailing jmp fall *)
              in
              let forward = index jcc_target > i in
              st.total_branches <- st.total_branches + executed;
              st.taken_branches <- st.taken_branches + jcc_taken;
              st.taken_conditional <- st.taken_conditional + jcc_taken;
              st.non_taken_conditional <- st.non_taken_conditional + jcc_not_taken;
              if forward then begin
                st.executed_forward_branches <- st.executed_forward_branches + executed;
                st.taken_forward_branches <- st.taken_forward_branches + jcc_taken
              end
              else begin
                st.executed_backward_branches <- st.executed_backward_branches + executed;
                st.taken_backward_branches <- st.taken_backward_branches + jcc_taken
              end;
              if extra_jmp > 0 then begin
                st.executed_unconditional <- st.executed_unconditional + extra_jmp;
                st.taken_branches <- st.taken_branches + extra_jmp;
                st.total_branches <- st.total_branches + extra_jmp;
                st.executed_instructions <- st.executed_instructions + extra_jmp
              end
          | T_jump t ->
              if next <> t then begin
                (* a real jmp instruction will be emitted *)
                st.executed_unconditional <- st.executed_unconditional + n;
                st.total_branches <- st.total_branches + n;
                st.taken_branches <- st.taken_branches + n;
                st.executed_instructions <- st.executed_instructions + n
              end
          | T_condtail (_, _, fall) ->
              let tk = max 0 (n - edge_count fb l fall) in
              st.total_branches <- st.total_branches + n;
              st.taken_branches <- st.taken_branches + tk;
              st.taken_conditional <- st.taken_conditional + tk;
              st.non_taken_conditional <- st.non_taken_conditional + (n - tk)
          | T_indirect _ ->
              st.total_branches <- st.total_branches + n;
              st.taken_branches <- st.taken_branches + n
          | T_cond _ | T_stop -> ())
        fb.layout;
      if has_profile fb && Hashtbl.length fb.blocks > 0 then begin
        let r = Layout_bbs.eval_fn fb in
        st.layout_score_x1000 <-
          st.layout_score_x1000
          + int_of_float ((r.Bolt_layout.Evaluator.ev_score *. 1000.0) +. 0.5);
        st.hot_icache_lines <-
          st.hot_icache_lines + r.Bolt_layout.Evaluator.ev_icache_lines;
        st.hot_itlb_pages <-
          st.hot_itlb_pages + r.Bolt_layout.Evaluator.ev_itlb_pages
      end)
    (Context.simple_funcs ctx);
  st

let rows (t : t) =
  [
    ("executed forward branches", t.executed_forward_branches);
    ("taken forward branches", t.taken_forward_branches);
    ("executed backward branches", t.executed_backward_branches);
    ("taken backward branches", t.taken_backward_branches);
    ("executed unconditional branches", t.executed_unconditional);
    ("executed instructions", t.executed_instructions);
    ("total branches", t.total_branches);
    ("taken branches", t.taken_branches);
    ("non-taken conditional branches", t.non_taken_conditional);
    ("taken conditional branches", t.taken_conditional);
    ("executed calls", t.executed_calls);
    ("layout score (ExtTSP x1000)", t.layout_score_x1000);
    ("hot i-cache lines", t.hot_icache_lines);
    ("hot i-TLB pages", t.hot_itlb_pages);
  ]

let pct_delta before after =
  if before = 0 then 0.0 else 100.0 *. float_of_int (after - before) /. float_of_int before

(* BOLT-style before/after delta table (Table 2): one row per statistic,
   before, after and the percentage change side by side. *)
let pp_comparison ppf ~(before : t) ~(after : t) =
  Fmt.pf ppf "  %-34s %12s %12s %9s@." "metric" "before" "after" "delta";
  List.iter2
    (fun (name, b) (_, a) ->
      Fmt.pf ppf "  %-34s %12d %12d %+8.1f%%@." name b a (pct_delta b a))
    (rows before) (rows after)

let to_json (t : t) : Bolt_obs.Json.t =
  Bolt_obs.Json.Obj
    (List.map
       (fun (name, v) ->
         (String.map (fun c -> if c = ' ' then '_' else c) name, Bolt_obs.Json.Int v))
       (rows t))

(* Before/after/delta rows as one JSON object per metric. *)
let comparison_to_json ~(before : t) ~(after : t) : Bolt_obs.Json.t =
  Bolt_obs.Json.List
    (List.map2
       (fun (name, b) (_, a) ->
         Bolt_obs.Json.Obj
           [
             ("metric", Bolt_obs.Json.String name);
             ("before", Bolt_obs.Json.Int b);
             ("after", Bolt_obs.Json.Int a);
             ("delta_pct", Bolt_obs.Json.Float (pct_delta b a));
           ])
       (rows before) (rows after))
