(* Function discovery, disassembly and CFG construction (§3.3, Figure 3).

   Discovery is the paper's hybrid: every Func symbol in the symbol table,
   plus any frame descriptor whose code range has no symbol (functions
   written in assembly often lack one or the other).

   CFG construction decodes each function linearly, finds leaders, and
   recovers jump tables for register-indirect jumps by pattern-matching
   the bounds-check + table-load idiom — including PIC tables whose
   relocations the linker dropped.  When an indirect jump cannot be
   resolved (e.g. an indirect tail call), the function is marked
   non-simple and kept byte-identical, exactly like the real BOLT (§6.4's
   heat-map discussion).  Non-simple functions still get their calls and
   PC-relative data references symbolized so they can be relocated as a
   unit in relocations mode. *)

open Bolt_isa
open Bolt_obj
open Bfunc

let lbl off = Printf.sprintf ".LBB%d" off

type raw = { r_off : int; r_insn : Insn.t; r_size : int }

let decode_function (text : Types.section) ~addr ~size =
  let base = addr - text.sec_addr in
  let insns = ref [] in
  let pos = ref 0 in
  let ok = ref true in
  while !ok && !pos < size do
    match Codec.decode text.sec_data (base + !pos) with
    | i, sz ->
        insns := { r_off = !pos; r_insn = i; r_size = sz } :: !insns;
        pos := !pos + sz
    | exception Codec.Decode_error _ -> ok := false
    (* an instruction straddling the section end reads past the buffer *)
    | exception Invalid_argument _ -> ok := false
  done;
  if !ok then Some (List.rev !insns) else None

(* ---- jump table discovery ---- *)

(* Scan backwards from an indirect jump for the switch idiom:
     cmp r, #lo ; jlt default ; cmp r, #hi ; jgt default ;
     [sub r, #lo] ; shl r, 3 ; lea rb, table ; add r, rb ;
     load r, [r] ; [add r, rb] ; jmp *r

   [Jt_found] carries (table_addr, pic, entry_count).  [Jt_suspicious]
   means table-like evidence (a .rodata base, or a memory load feeding
   the jump) without the full idiom: the jump probably reads a table we
   cannot recover, so the function must not be moved.  [Jt_absent] is a
   plain computed target — an indirect tail call through a register —
   which is safe to relocate verbatim. *)
type jt_scan = Jt_found of int * bool * int | Jt_suspicious | Jt_absent

let find_jump_table ctx (raws : raw array) idx fb_addr =
  let lo_bound = ref None and hi_bound = ref None in
  let table = ref None in
  let saw_load = ref false in
  let start = max 0 (idx - 12) in
  for k = idx - 1 downto start do
    (match raws.(k).r_insn with
    | Insn.Alu_ri (Insn.Cmp, _, Insn.Imm v) -> (
        (* the first cmp hit walking backwards is the hi bound *)
        match !hi_bound with
        | None -> hi_bound := Some v
        | Some _ -> if !lo_bound = None then lo_bound := Some v)
    | Insn.Lea (_, Insn.Imm a) when Context.in_section ctx.Context.rodata a ->
        if !table = None then table := Some (a, false)
    | Insn.Lea_rel (_, Insn.Imm disp) ->
        let a = fb_addr + raws.(k).r_off + raws.(k).r_size + disp in
        if !table = None && Context.in_section ctx.Context.rodata a then
          table := Some (a, true)
    | Insn.Load _ | Insn.Load_abs _ -> saw_load := true
    | _ -> ());
    ()
  done;
  match (!table, !lo_bound, !hi_bound) with
  | Some (addr, pic), Some lo, Some hi when hi >= lo && hi - lo < 4096 ->
      Jt_found (addr, pic, hi - lo + 1)
  | Some _, _, _ -> Jt_suspicious
  | None, _, _ -> if !saw_load then Jt_suspicious else Jt_absent

(* ---- non-simple fallback ---- *)

(* Linear code for a function kept byte-identical, with the references
   that must survive relocation (calls, code addresses) symbolized. *)
let symbolize_raw ctx (fb : Bfunc.t) raw_list =
  fb.raw_insns <-
    List.map
      (fun r ->
        let next_off = r.r_off + r.r_size in
        let sym =
          match r.r_insn with
          | Insn.Call (Insn.Imm rel) -> (
              match Context.resolve_code ctx (fb.fb_addr + next_off + rel) with
              | Some (fn, 0) -> Insn.Call (Insn.Sym (fn, 0))
              | _ -> r.r_insn)
          | Insn.Lea_rel (rg, Insn.Imm disp) -> (
              let a = fb.fb_addr + next_off + disp in
              match Context.resolve_code ctx a with
              | Some (fn, 0) -> Insn.Lea (rg, Insn.Sym (fn, 0))
              | _ -> Insn.Lea (rg, Insn.Imm a))
          | Insn.Lea (rg, Insn.Imm a) -> (
              match Context.resolve_code ctx a with
              | Some (fn, 0) -> Insn.Lea (rg, Insn.Sym (fn, 0))
              | _ -> r.r_insn)
          | i -> i
        in
        { op = sym; lp = None; loc = None; cfi_after = []; m_off = r.r_off })
      raw_list

(* Re-derive a function's verbatim representation from the input bytes:
   used when quarantining a function whose CFG was already mutated by a
   failing pass.  Leaves [raw_insns] empty when the bytes are undecodable
   (the rewriter then refuses to move the function at all). *)
let redecode ctx (fb : Bfunc.t) =
  match decode_function ctx.Context.text ~addr:fb.fb_addr ~size:fb.fb_size with
  | Some raw_list -> symbolize_raw ctx fb raw_list
  | None -> fb.raw_insns <- []

(* ---- per-function CFG build ---- *)

let build_function ctx (fb : Bfunc.t) =
  let opts = ctx.Context.opts in
  let text = ctx.Context.text in
  match decode_function text ~addr:fb.fb_addr ~size:fb.fb_size with
  | None ->
      mark_non_simple fb "undecodable bytes";
      fb.raw_insns <- []
  | Some raw_list -> (
      let raws = Array.of_list raw_list in
      let n = Array.length raws in
      (* source locations *)
      let dbg =
        match Objfile.dbg_for ctx.Context.exe fb.fb_name with
        | Some d -> d.dbg_entries
        | None -> []
      in
      let loc_at =
        let sorted = List.sort compare (List.map (fun (o, f, l) -> (o, (f, l))) dbg) in
        fun off ->
          let rec go acc = function
            | (o, fl) :: rest when o <= off -> go (Some fl) rest
            | _ -> acc
          in
          go None sorted
      in
      (* CFI ops keyed by the offset at which they take effect *)
      let fde = Objfile.fde_for ctx.Context.exe fb.fb_name in
      let cfi_at = Hashtbl.create 16 in
      (match fde with
      | Some f ->
          List.iter
            (fun (o, op) ->
              Hashtbl.replace cfi_at o
                ((try Hashtbl.find cfi_at o with Not_found -> []) @ [ op ]))
            f.fde_cfi
      | None -> ());
      let lsda = Objfile.lsda_for ctx.Context.exe fb.fb_name in
      (* symbolize a call target; raises Exit when impossible *)
      let call_target addr =
        match Context.resolve_code ctx addr with
        | Some (name, 0) -> name
        | _ -> raise Exit
      in
      let in_func off = off >= 0 && off < fb.fb_size in
      (* jump tables, keyed by the indirect jump's instruction index *)
      let jts = ref [] in
      let jt_of_idx = Hashtbl.create 4 in
      (try
         (* pass 1: control-flow targets and jump tables *)
         let leaders = Hashtbl.create 32 in
         Hashtbl.replace leaders 0 ();
         let add_leader o = if in_func o then Hashtbl.replace leaders o () in
         Array.iteri
           (fun i r ->
             let next = r.r_off + r.r_size in
             match r.r_insn with
             | Insn.Jmp (Insn.Imm rel, _) ->
                 let t = next + rel in
                 if in_func t then add_leader t
                 else ignore (call_target (fb.fb_addr + t));
                 add_leader next
             | Insn.Jcc (_, Insn.Imm rel, _) ->
                 let t = next + rel in
                 if in_func t then add_leader t
                 else ignore (call_target (fb.fb_addr + t));
                 add_leader next
             | Insn.Jmp_ind _ -> (
                 match find_jump_table ctx raws i fb.fb_addr with
                 | Jt_found (taddr, pic, count) ->
                     let entries = Array.make count 0 in
                     let ok = ref true in
                     for k = 0 to count - 1 do
                       match Context.section_value ctx ctx.Context.rodata (taddr + (8 * k)) with
                       | Some v ->
                           let target = if pic then taddr + v else v in
                           let off = target - fb.fb_addr in
                           if in_func off then entries.(k) <- off else ok := false
                       | None -> ok := false
                     done;
                     if not !ok then begin
                       mark_non_simple fb "invalid jump table entries";
                       fb.table_unrecovered <- true;
                       raise Exit
                     end;
                     Array.iter add_leader entries;
                     let k = List.length !jts in
                     jts := (taddr, pic, entries) :: !jts;
                     Hashtbl.replace jt_of_idx i k;
                     add_leader next
                 | Jt_suspicious ->
                     mark_non_simple fb "unrecoverable jump table";
                     fb.table_unrecovered <- true;
                     raise Exit
                 | Jt_absent ->
                     mark_non_simple fb
                       "unresolved indirect jump (possible indirect tail call)";
                     raise Exit)
             | Insn.Jmp_mem _ ->
                 mark_non_simple fb "jump through memory outside PLT";
                 raise Exit
             | Insn.Call (Insn.Imm rel) -> ignore (call_target (fb.fb_addr + next + rel))
             | Insn.Ret | Insn.Repz_ret | Insn.Halt | Insn.Throw -> add_leader next
             | _ -> ())
           raws;
         (match lsda with
         | Some l ->
             List.iter (fun (e : Types.lsda_entry) -> add_leader e.lsda_pad) l.lsda_entries;
             fb.has_eh <- true
         | None -> ());
         (* landing pads for instructions *)
         let lp_at off =
           match lsda with
           | None -> None
           | Some l ->
               List.find_opt
                 (fun (e : Types.lsda_entry) ->
                   off >= e.lsda_start && off < e.lsda_start + e.lsda_len)
                 l.lsda_entries
               |> Option.map (fun e -> lbl e.Types.lsda_pad)
         in
         let leader_list = Hashtbl.fold (fun o () acc -> o :: acc) leaders [] in
         let leader_list = List.sort compare leader_list in
         let next_leader = Hashtbl.create 32 in
         let rec link = function
           | a :: (b :: _ as rest) ->
               Hashtbl.replace next_leader a b;
               link rest
           | _ -> []
         in
         ignore (link leader_list);
         (* index raws by offset for block slicing *)
         let idx_of_off = Hashtbl.create 64 in
         Array.iteri (fun i r -> Hashtbl.replace idx_of_off r.r_off i) raws;
         let cfi_ops_upto o =
           (* list of (off, op) with off <= o, in order: used for entry states *)
           match fde with
           | Some f -> List.filter (fun (o', _) -> o' <= o) f.fde_cfi
           | None -> []
         in
         List.iter
           (fun leader ->
             let stop =
               match Hashtbl.find_opt next_leader leader with
               | Some nl -> nl
               | None -> fb.fb_size
             in
             let i0 =
               match Hashtbl.find_opt idx_of_off leader with
               | Some i -> i
               | None ->
                   mark_non_simple fb "leader inside an instruction";
                   raise Exit
             in
             let insns = ref [] in
             let term = ref None in
             let i = ref i0 in
             while !term = None && !i < n && raws.(!i).r_off < stop do
               let r = raws.(!i) in
               let next_off = r.r_off + r.r_size in
               let mark_term t = term := Some t in
               let keep ?(sym = r.r_insn) () =
                 let cfi =
                   match Hashtbl.find_opt cfi_at next_off with Some ops -> ops | None -> []
                 in
                 insns :=
                   {
                     op = sym;
                     lp =
                       (if Insn.is_call r.r_insn || r.r_insn = Insn.Throw then
                          lp_at r.r_off
                        else None);
                     loc = loc_at r.r_off;
                     cfi_after = cfi;
                     m_off = r.r_off;
                   }
                   :: !insns
               in
               (match r.r_insn with
               | Insn.Nop _ -> if not opts.Opts.strip_nops then keep ()
               | Insn.Jmp (Insn.Imm rel, _) ->
                   let t = next_off + rel in
                   if in_func t then mark_term (T_jump (lbl t))
                   else begin
                     (* direct tail call *)
                     let fn = call_target (fb.fb_addr + t) in
                     keep ~sym:(Insn.Jmp (Insn.Sym (fn, 0), Insn.W32)) ();
                     mark_term T_stop
                   end
               | Insn.Jcc (c, Insn.Imm rel, _) ->
                   let t = next_off + rel in
                   let fall =
                     if in_func next_off then lbl next_off
                     else begin
                       mark_non_simple fb "conditional branch at function end";
                       raise Exit
                     end
                   in
                   if in_func t then mark_term (T_cond (c, lbl t, fall))
                   else mark_term (T_condtail (c, call_target (fb.fb_addr + t), fall))
               | Insn.Jmp_ind _ ->
                   keep ();
                   mark_term (T_indirect (Hashtbl.find_opt jt_of_idx !i))
               | Insn.Ret | Insn.Repz_ret | Insn.Halt | Insn.Throw ->
                   keep ();
                   mark_term T_stop
               | Insn.Call (Insn.Imm rel) ->
                   let fn = call_target (fb.fb_addr + next_off + rel) in
                   keep ~sym:(Insn.Call (Insn.Sym (fn, 0))) ()
               | Insn.Lea_rel (rg, Insn.Imm disp) ->
                   (* rewrite PIC address materialisation to absolute: the
                      instruction is about to move, the data is not *)
                   let a = fb.fb_addr + next_off + disp in
                   (match Context.resolve_code ctx a with
                   | Some (fn, 0) -> keep ~sym:(Insn.Lea (rg, Insn.Sym (fn, 0))) ()
                   | _ -> keep ~sym:(Insn.Lea (rg, Insn.Imm a)) ())
               | Insn.Lea (rg, Insn.Imm a) -> (
                   (* function pointers must stay symbolic: the target is
                      about to move *)
                   match Context.resolve_code ctx a with
                   | Some (fn, 0) -> keep ~sym:(Insn.Lea (rg, Insn.Sym (fn, 0))) ()
                   | Some _ ->
                       mark_non_simple fb "address of code taken mid-function";
                       raise Exit
                   | None -> keep ())
               | _ -> keep ());
               incr i
             done;
             let term =
               match !term with
               | Some t -> t
               | None ->
                   if stop >= fb.fb_size then begin
                     mark_non_simple fb "control falls off the function end";
                     raise Exit
                   end
                   else T_jump (lbl stop)
             in
             let entry_state =
               Types.cfi_state_at (cfi_ops_upto leader) leader
             in
             Hashtbl.replace fb.blocks (lbl leader)
               {
                 bl = lbl leader;
                 b_off = leader;
                 insns = List.rev !insns;
                 term;
                 ecount = 0;
                 cfi_entry = entry_state;
                 is_lp = false;
               })
           leader_list;
         (* jump tables, now that labels exist *)
         fb.jts <-
           Array.of_list
             (List.rev_map
                (fun (addr, pic, entries) ->
                  { jt_addr = addr; jt_pic = pic; jt_targets = Array.map lbl entries })
                !jts);
         (match lsda with
         | Some l ->
             List.iter
               (fun (e : Types.lsda_entry) ->
                 match block_opt fb (lbl e.lsda_pad) with
                 | Some b -> b.is_lp <- true
                 | None -> ())
               l.lsda_entries
         | None -> ());
         fb.layout <- List.map lbl leader_list;
         fb.entry <- lbl 0
       with Exit ->
         if fb.why_not_simple = "" then
           mark_non_simple fb "unresolvable code reference";
         Hashtbl.reset fb.blocks;
         fb.layout <- []);
      (* Non-simple fallback: keep bytes identical, but symbolize the
         references that must survive relocation. *)
      if not fb.simple then symbolize_raw ctx fb raw_list)

(* ---- discovery ---- *)

let discover ctx =
  let exe = ctx.Context.exe in
  let seen = Hashtbl.create 256 in
  let order = ref [] in
  let text = ctx.Context.text in
  let text_end = text.sec_addr + text.sec_size in
  let add name addr size =
    (* a symbol table from a damaged binary can claim ranges outside .text;
       decoding those would read out of bounds, so clamp or drop here *)
    if addr < text.sec_addr || addr >= text_end then begin
      if size > 0 then
        Diag.warnf ctx.Context.diag ~stage:"discover" ~func:name
          "function at %#x lies outside .text [%#x, %#x); skipped" addr
          text.sec_addr text_end
    end
    else begin
      let size =
        if addr + size > text_end then begin
          Diag.warnf ctx.Context.diag ~stage:"discover" ~func:name
            "function at %#x size %d overruns .text; clamped to %d" addr size
            (text_end - addr);
          text_end - addr
        end
        else size
      in
      if size > 0 && not (Hashtbl.mem seen addr) then begin
        Hashtbl.replace seen addr name;
        Hashtbl.replace ctx.Context.funcs name (Bfunc.create ~name ~addr ~size);
        order := (addr, name) :: !order
      end
    end
  in
  (* symbol-table functions (skip PLT stubs: they are kept verbatim) *)
  List.iter
    (fun (s : Types.symbol) ->
      if s.sym_kind = Types.Func && s.sym_section = ".text" then
        add s.sym_name s.sym_value s.sym_size)
    exe.symbols;
  (* frame-info-only functions: the hybrid half of discovery *)
  List.iter
    (fun (f : Types.fde) ->
      if
        f.fde_size > 0
        && f.fde_addr >= ctx.Context.text.sec_addr
        && f.fde_addr < ctx.Context.text.sec_addr + ctx.Context.text.sec_size
        && not (Hashtbl.mem seen f.fde_addr)
      then
        add
          (if f.fde_func <> "" then f.fde_func
           else Printf.sprintf "__unknown_%x" f.fde_addr)
          f.fde_addr f.fde_size)
    exe.fdes;
  ctx.Context.order <-
    List.sort compare !order |> List.map snd

(* Visitor form for the pass manager: build one function's CFG, parking
   any failure diagnostic on the worker's shard.  CFG construction must
   never take the run down: on an escaping exception the function keeps
   its input bytes. *)
let build_fn ctx sh (fb : Bfunc.t) =
  try build_function ctx fb
  with exn ->
    Context.sh_diag sh Diag.Error ~stage:"build" ~func:fb.fb_name
      "CFG construction failed (%s); function kept verbatim"
      (Printexc.to_string exn);
    if fb.simple then mark_non_simple fb "CFG construction failed";
    Hashtbl.reset fb.blocks;
    fb.layout <- [];
    redecode ctx fb

let run ctx =
  discover ctx;
  let sh = Context.new_shard () in
  Context.iter_funcs ctx (build_fn ctx sh);
  Context.apply_shard_diags ctx [ sh ];
  let simple = List.length (Context.simple_funcs ctx) in
  Context.logf ctx "build: %d functions, %d simple" (List.length ctx.Context.order) simple
