(* Passes 15 & 16: frame optimizations and shrink wrapping.

   frame-opts removes saves of callee-saved registers that nothing in the
   function touches any more — opportunities typically created by BOLT's
   own earlier passes (inlining, ICP, load simplification).

   shrink-wrapping moves a save/restore pair next to its uses when the
   profile shows the uses are cold: the conservative prologue push is
   deleted and re-materialised inside the cold block.  The restrictions
   (uses confined to one block, no calls or throws in it, the block's
   final control transfer must not consume the register) keep the
   transformation unconditionally sound with our CFI scheme: the emitter
   regenerates frame state per block, so the unwinder keeps working. *)

open Bolt_isa
open Bolt_obj.Types
open Bfunc

(* The prologue save plan of a function: pushes of callee-saved registers
   in the entry block, in order, with the locals size. *)
type plan = {
  locals : int;
  saves : (Reg.t * int) list; (* reg, slot offset below fp *)
}

let prologue_plan (fb : Bfunc.t) : plan option =
  match block_opt fb fb.entry with
  | None -> None
  | Some b ->
      let locals = ref 0 in
      let saves = ref [] in
      let established = ref false in
      List.iter
        (fun (i : minsn) ->
          List.iter
            (fun op ->
              match op with
              | Cfi_establish -> established := true
              | Cfi_def_locals n -> locals := n
              | Cfi_save (r, slot) -> saves := (r, slot) :: !saves
              | _ -> ())
            i.cfi_after)
        b.insns;
      if !established then Some { locals = !locals; saves = List.rev !saves } else None

(* Remove the push of [r] from the entry block and every pop of [r] in
   return blocks; fix the CFI annotations, including the slot shift of
   registers pushed after [r]. *)
let remove_save (fb : Bfunc.t) (r : Reg.t) (plan : plan) =
  let slot_of_r = List.assoc r plan.saves in
  let fix_cfi ops =
    List.filter_map
      (fun op ->
        match op with
        | Cfi_save (r', _) when Reg.equal r' r -> None
        | Cfi_restore r' when Reg.equal r' r -> None
        | Cfi_save (r', slot) when slot > slot_of_r -> Some (Cfi_save (r', slot - 8))
        | op -> Some op)
      ops
  in
  Hashtbl.iter
    (fun _ b ->
      b.insns <-
        List.filter_map
          (fun (i : minsn) ->
            let i = { i with cfi_after = fix_cfi i.cfi_after } in
            match i.op with
            | Insn.Push r' when Reg.equal r' r ->
                (* keep this instruction's CFI ops by reattaching them *)
                if i.cfi_after = [] then None
                else Some { i with op = Insn.Nop 1 }
            | Insn.Pop r' when Reg.equal r' r ->
                if i.cfi_after = [] then None else Some { i with op = Insn.Nop 1 }
            | _ -> Some i)
          b.insns;
      (* shift the recorded entry state too *)
      let st = b.cfi_entry in
      b.cfi_entry <-
        {
          st with
          cfa_saved =
            List.filter_map
              (fun (r', slot) ->
                if Reg.equal r' r then None
                else if slot > slot_of_r then Some (r', slot - 8)
                else Some (r', slot))
              st.cfa_saved;
        })
    fb.blocks

(* Visitor form for the pass manager. *)
let frame_opts_fn _ctx sh (fb : Bfunc.t) =
  match prologue_plan fb with
  | None -> ()
  | Some plan ->
      List.iter
        (fun (r, _) ->
          if (not (Reg.equal r Reg.fp)) && not (Dataflow.references_reg fb r) then begin
            remove_save fb r plan;
            Context.sh_incr sh "pass.frame-opts.saves_removed";
            Context.sh_touch sh fb
          end)
        plan.saves

let frame_opts ctx =
  let s = Quarantine.run_fns ctx ~stage:"frame-opts" (frame_opts_fn ctx) in
  let removed = Bolt_obs.Metrics.counter s "pass.frame-opts.saves_removed" in
  Context.logf ctx "frame-opts: %d dead register saves removed" removed;
  removed

(* ---- shrink wrapping ---- *)

let block_has_call_or_throw (b : bb) =
  List.exists
    (fun (i : minsn) ->
      Insn.is_call i.op || i.op = Insn.Throw)
    b.insns

let final_transfer_uses (b : bb) r =
  match List.rev b.insns with
  | ({ op = Insn.Jmp_ind r'; _ } : minsn) :: _ -> Reg.equal r r'
  | _ -> false

let shrink_wrapping_fn _ctx sh (fb : Bfunc.t) =
  if has_profile fb && fb.exec_count > 0 then
    match prologue_plan fb with
    | None -> ()
    | Some plan ->
        List.iter
          (fun (r, _) ->
            if not (Reg.equal r Reg.fp) then
              match Dataflow.blocks_referencing fb r with
              | [ bl ] when bl <> fb.entry -> (
                  let b = block fb bl in
                  if
                    b.ecount = 0
                    && (not b.is_lp)
                    && (not (block_has_call_or_throw b))
                    && not (final_transfer_uses b r)
                  then begin
                    (* recompute the plan: earlier removals shift slots *)
                    match prologue_plan fb with
                    | Some plan' when List.mem_assoc r plan'.saves ->
                        remove_save fb r plan';
                        let nsaved =
                          List.length plan'.saves - 1 (* after removal *)
                        in
                        let slot = plan'.locals + (8 * nsaved) + 8 in
                        let push =
                          {
                            op = Insn.Push r;
                            lp = None;
                            loc = None;
                            cfi_after = [ Cfi_save (r, slot) ];
                            m_off = -1;
                          }
                        in
                        let pop =
                          {
                            op = Insn.Pop r;
                            lp = None;
                            loc = None;
                            cfi_after = [ Cfi_restore r ];
                            m_off = -1;
                          }
                        in
                        (* pop goes before a trailing control transfer *)
                        let rec insert_pop acc = function
                          | [ (last : minsn) ] when Insn.is_terminator last.op ->
                              List.rev acc @ [ pop; last ]
                          | [ last ] -> List.rev acc @ [ last; pop ]
                          | [] -> [ pop ]
                          | x :: rest -> insert_pop (x :: acc) rest
                        in
                        b.insns <- push :: insert_pop [] b.insns;
                        Context.sh_incr sh "pass.shrink-wrapping.moved";
                        Context.sh_touch sh fb
                    | _ -> ()
                  end)
              | _ -> ())
          plan.saves

let shrink_wrapping ctx =
  let s = Quarantine.run_fns ctx ~stage:"shrink-wrapping" (shrink_wrapping_fn ctx) in
  let moved = Bolt_obs.Metrics.counter s "pass.shrink-wrapping.moved" in
  Context.logf ctx "shrink-wrapping: %d saves moved to cold blocks" moved;
  moved
