(* The first-class pass manager: Table 1 as data.  See passman.ml for
   the execution model and the per-function determinism contract. *)

type env = {
  ctx : Context.t;
  prof : Bolt_profile.Fdata.t;
  pool : Pool.t;
}

type kind =
  | Whole_program of (env -> Bolt_obs.Metrics.t -> unit)
  | Per_function of {
      pf_funcs : Context.t -> Bfunc.t list;
      pf_visit : env -> Context.shard -> Bfunc.t -> unit;
    }

type pass = {
  p_name : string;
  p_enabled : Opts.t -> bool;
  p_kind : kind;
  p_post : env -> Bolt_obs.Metrics.t -> unit;
}

val no_post : env -> Bolt_obs.Metrics.t -> unit

(* Build an environment; the pool defaults to one sized by
   [ctx.opts.jobs]. *)
val make_env : ?pool:Pool.t -> Context.t -> Bolt_profile.Fdata.t -> env

(* Run [f] as a named pipeline stage: trace span, functions-modified
   accounting.  For driver steps that are not registry passes. *)
val stage : env -> string -> (unit -> 'a) -> 'a

(* Run one pass / a pass list.  Disabled passes are skipped entirely (no
   span).  A [Per_function] pass fans out over the env's pool; quarantine
   and metrics behave identically at any pool width. *)
val run_pass : env -> pass -> unit
val run : env -> pass list -> unit

(* Descriptor constructors (exposed for tests and extensions). *)
val pf :
  string ->
  (Opts.t -> bool) ->
  ?funcs:(Context.t -> Bfunc.t list) ->
  ?post:(env -> Bolt_obs.Metrics.t -> unit) ->
  (env -> Context.shard -> Bfunc.t -> unit) ->
  pass

val wp :
  string ->
  (Opts.t -> bool) ->
  ?post:(env -> Bolt_obs.Metrics.t -> unit) ->
  (env -> Bolt_obs.Metrics.t -> unit) ->
  pass

(* Figure 3 front half: build-cfg (per-function, over all functions) and
   match-profile. *)
val pre_passes : pass list

(* Table 1, in the paper's order. *)
val table1 : pass list
