(* BOLT's in-memory representation of a binary function: basic blocks of
   annotated machine instructions plus structured terminators, following
   the real tool's BinaryFunction/BinaryBasicBlock/MCInst-with-annotations
   design (§3.3, Figure 4).

   Instructions carry the annotations the paper describes: landing-pad
   (exception handler) links, source-line origins, and CFI effects.  The
   terminator is structured so fixup-branches is a by-product of emission:
   conditional branches get their polarity and an optional trailing jump
   chosen from the final layout. *)

open Bolt_isa

(* An instruction with BOLT annotations ("MCInst plus annotations"). *)
type minsn = {
  mutable op : Insn.t;
      (* branch/memory operands are Sym-bolic while in CFG form: block
         labels for intra-function control flow, symbol names otherwise *)
  mutable lp : string option; (* landing-pad block label, for calls/throws *)
  mutable loc : (string * int) option; (* source file/line *)
  mutable cfi_after : Bolt_obj.Types.cfi_op list; (* CFI effects of this insn *)
  m_off : int; (* offset in the original function; -1 when synthesized *)
}

let mk ?(lp = None) ?(loc = None) ?(cfi = []) ?(off = -1) op =
  { op; lp; loc; cfi_after = cfi; m_off = off }

type term =
  | T_jump of string (* unconditional transfer to a block *)
  | T_cond of Cond.t * string * string (* if cond then taken-label else fall-label *)
  | T_condtail of Cond.t * string * string (* conditional tail call: cond, function, fall *)
  | T_indirect of int option (* jump table index; None = unresolved *)
  | T_stop (* ret / halt / throw / direct tail call: last insn decides *)

type bb = {
  bl : string; (* function-unique label *)
  b_off : int; (* original offset, -1 for synthesized blocks *)
  mutable insns : minsn list;
  mutable term : term;
  mutable ecount : int; (* execution count from the profile *)
  mutable cfi_entry : Bolt_obj.Types.cfi_state; (* frame state on entry *)
  mutable is_lp : bool; (* block is a landing pad *)
}

(* A jump table discovered in .rodata. *)
type jt = {
  jt_addr : int;
  jt_pic : bool;
  mutable jt_targets : string array; (* block labels *)
}

type t = {
  fb_name : string;
  fb_addr : int;
  fb_size : int;
  mutable simple : bool;
  mutable why_not_simple : string;
  blocks : (string, bb) Hashtbl.t;
  mutable layout : string list; (* block order; entry first *)
  mutable entry : string;
  mutable jts : jt array;
  edge_counts : (string * string, int ref * int ref) Hashtbl.t; (* count, mispreds *)
  mutable exec_count : int; (* function entry count *)
  mutable profile_acc : float; (* fraction of flow the profile explains *)
  mutable has_eh : bool;
  mutable folded_into : string option; (* set by ICF on dropped duplicates *)
  mutable raw_insns : minsn list; (* non-simple: linear code, still relocatable *)
  mutable next_label : int; (* fresh-label counter for synthesized blocks *)
  cold_set : (string, unit) Hashtbl.t; (* blocks split into the cold fragment *)
  mutable table_unrecovered : bool;
      (* the body contains an indirect jump whose table could not be
         recovered: the cells (absolute or PIC) still aim at the original
         body, so the function must not be moved *)
}

let create ~name ~addr ~size =
  {
    fb_name = name;
    fb_addr = addr;
    fb_size = size;
    simple = true;
    why_not_simple = "";
    blocks = Hashtbl.create 16;
    layout = [];
    entry = "";
    jts = [||];
    edge_counts = Hashtbl.create 16;
    exec_count = 0;
    profile_acc = 0.0;
    has_eh = false;
    folded_into = None;
    raw_insns = [];
    next_label = 0;
    cold_set = Hashtbl.create 8;
    table_unrecovered = false;
  }

let fresh_label f prefix =
  let l = Printf.sprintf ".%s%d" prefix f.next_label in
  f.next_label <- f.next_label + 1;
  l

let add_block f (b : bb) = Hashtbl.replace f.blocks b.bl b

let mark_non_simple f why =
  f.simple <- false;
  if f.why_not_simple = "" then f.why_not_simple <- why

let block f l =
  match Hashtbl.find_opt f.blocks l with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Bfunc.block: %s has no block %s" f.fb_name l)

let block_opt f l = Hashtbl.find_opt f.blocks l

(* Normal-flow successors of a block. *)
let successors f (b : bb) =
  match b.term with
  | T_jump l -> [ l ]
  | T_cond (_, a, c) -> if a = c then [ a ] else [ a; c ]
  | T_condtail (_, _, fall) -> [ fall ]
  | T_indirect (Some k) ->
      let seen = Hashtbl.create 8 in
      Array.fold_left
        (fun acc l ->
          if Hashtbl.mem seen l then acc
          else begin
            Hashtbl.replace seen l ();
            l :: acc
          end)
        [] f.jts.(k).jt_targets
      |> List.rev
  | T_indirect None -> []
  | T_stop -> []

(* Successors including exceptional edges. *)
let successors_eh f (b : bb) =
  let normal = successors f b in
  let lps =
    List.filter_map (fun (i : minsn) -> i.lp) b.insns
    |> List.sort_uniq compare
    |> List.filter (fun l -> not (List.mem l normal))
  in
  normal @ lps

let edge_count f src dst =
  match Hashtbl.find_opt f.edge_counts (src, dst) with
  | Some (c, _) -> !c
  | None -> 0

let add_edge_count f src dst count mispreds =
  match Hashtbl.find_opt f.edge_counts (src, dst) with
  | Some (c, m) ->
      c := !c + count;
      m := !m + mispreds
  | None -> Hashtbl.add f.edge_counts (src, dst) (ref count, ref mispreds)

let set_edge_count f src dst count =
  match Hashtbl.find_opt f.edge_counts (src, dst) with
  | Some (c, _) -> c := count
  | None -> Hashtbl.add f.edge_counts (src, dst) (ref count, ref 0)

(* Size of the block as currently encoded (wide branch assumptions). *)
let block_size f (b : bb) =
  let base = List.fold_left (fun acc (i : minsn) -> acc + Insn.size i.op) 0 b.insns in
  ignore f;
  let term_size =
    match b.term with
    | T_jump _ -> 5
    | T_cond _ -> 6 + 5
    | T_condtail _ -> 6 + 5
    | T_indirect _ | T_stop -> 0
  in
  base + term_size

let code_size f =
  Hashtbl.fold (fun _ b acc -> acc + block_size f b) f.blocks 0

let has_profile f = Hashtbl.length f.edge_counts > 0 || f.exec_count > 0

let is_cold f l = Hashtbl.mem f.cold_set l
let hot_layout f = List.filter (fun l -> not (is_cold f l)) f.layout
let cold_layout f = List.filter (is_cold f) f.layout

(* Iterate blocks in layout order. *)
let iter_layout f g = List.iter (fun l -> g l (block f l)) f.layout

let pp_term ppf = function
  | T_jump l -> Fmt.pf ppf "jump %s" l
  | T_cond (c, a, b) -> Fmt.pf ppf "cond %s -> %s | %s" (Cond.name c) a b
  | T_condtail (c, fn, fall) -> Fmt.pf ppf "condtail %s -> %s | %s" (Cond.name c) fn fall
  | T_indirect (Some k) -> Fmt.pf ppf "jumptable %d" k
  | T_indirect None -> Fmt.pf ppf "indirect"
  | T_stop -> Fmt.pf ppf "stop"

(* A Figure-4 style dump of the function's CFG. *)
let pp ppf f =
  Fmt.pf ppf "Binary Function \"%s\" {@." f.fb_name;
  Fmt.pf ppf "  Address    : %#x@." f.fb_addr;
  Fmt.pf ppf "  Size       : %#x@." f.fb_size;
  Fmt.pf ppf "  IsSimple   : %b@." f.simple;
  Fmt.pf ppf "  BB Count   : %d@." (Hashtbl.length f.blocks);
  Fmt.pf ppf "  Exec Count : %d@." f.exec_count;
  Fmt.pf ppf "  Profile Acc: %.1f%%@." (100.0 *. f.profile_acc);
  Fmt.pf ppf "}@.";
  iter_layout f (fun l b ->
      Fmt.pf ppf "%s (%d instructions%s)@." l (List.length b.insns)
        (if b.is_lp then ", landing pad" else "");
      Fmt.pf ppf "  Exec Count : %d@." b.ecount;
      List.iter
        (fun (i : minsn) ->
          Fmt.pf ppf "    %a%s%s@." Insn.pp i.op
            (match i.lp with Some p -> Printf.sprintf " # handler: %s" p | None -> "")
            (match i.loc with Some (f, ln) -> Printf.sprintf " # %s:%d" f ln | None -> ""))
        b.insns;
      Fmt.pf ppf "    [%a]@." pp_term b.term;
      let succs = successors f b in
      if succs <> [] then
        Fmt.pf ppf "  Successors: %s@."
          (String.concat ", "
             (List.map
                (fun s ->
                  Printf.sprintf "%s (count: %d)" s (edge_count f l s))
                succs)))
