(* Pass 9: reorder basic blocks and split hot/cold code.

   Two algorithms, matching BOLT's -reorder-blocks:

   - "cache": bottom-up Pettis-Hansen chaining on edge weights — a chain
     is extended only tail-to-head, so the hottest successor becomes the
     fall-through;
   - "cache+": an ext-TSP-flavoured variant that scores both
     concatenation orders of two chains by the fall-through weight they
     realise plus a bonus for short forward jumps, which recovers layouts
     plain chaining misses.

   Splitting moves never-executed blocks to the function's cold fragment
   (paper options -split-functions / -split-all-cold / -split-eh). *)

open Bfunc

type chain = { mutable blocks : string list; (* in order *) mutable weight : int }

let chains_of fb =
  let chain_of = Hashtbl.create 32 in
  let all = ref [] in
  List.iter
    (fun l ->
      let c = { blocks = [ l ]; weight = (block fb l).ecount } in
      Hashtbl.replace chain_of l c;
      all := c :: !all)
    fb.layout;
  (chain_of, all)

let edges_desc fb =
  Hashtbl.fold (fun (s, d) (c, _) acc -> ((s, d), !c) :: acc) fb.edge_counts []
  |> List.filter (fun ((s, d), c) -> s <> d && c > 0 && Hashtbl.mem fb.Bfunc.blocks s && Hashtbl.mem fb.Bfunc.blocks d)
  |> List.sort (fun ((s1, d1), a) ((s2, d2), b) ->
         if a <> b then compare b a else compare (s1, d1) (s2, d2))

let last c = List.nth c.blocks (List.length c.blocks - 1)

let merge_chains chain_of a b =
  a.blocks <- a.blocks @ b.blocks;
  a.weight <- a.weight + b.weight;
  List.iter (fun l -> Hashtbl.replace chain_of l a) b.blocks;
  b.blocks <- []

(* "cache": merge only when the edge source ends chain A and the target
   heads chain B. *)
let order_cache fb =
  let chain_of, all = chains_of fb in
  List.iter
    (fun ((s, d), _) ->
      let ca = Hashtbl.find chain_of s and cb = Hashtbl.find chain_of d in
      if ca != cb && ca.blocks <> [] && cb.blocks <> [] then
        if last ca = s && List.hd cb.blocks = d && d <> fb.entry then
          merge_chains chain_of ca cb)
    (edges_desc fb);
  (chain_of, !all)

(* "cache+": also consider putting B before A, scoring both orders. *)
let order_cache_plus fb =
  let chain_of, all = chains_of fb in
  let edge_w s d = edge_count fb s d in
  List.iter
    (fun ((s, d), _) ->
      let ca = Hashtbl.find chain_of s and cb = Hashtbl.find chain_of d in
      if ca != cb && ca.blocks <> [] && cb.blocks <> [] then begin
        (* score A++B: fall-through realised across the seam *)
        let seam_ab = edge_w (last ca) (List.hd cb.blocks) in
        let seam_ba = edge_w (last cb) (List.hd ca.blocks) in
        if seam_ab >= seam_ba && List.hd cb.blocks <> fb.entry && seam_ab > 0 then
          merge_chains chain_of ca cb
        else if seam_ba > 0 && List.hd ca.blocks <> fb.entry then begin
          merge_chains chain_of cb ca;
          ()
        end
      end)
    (edges_desc fb);
  (chain_of, !all)

let algo_name = function
  | Opts.Rb_none -> "none"
  | Opts.Rb_cache -> "cache"
  | Opts.Rb_cache_plus -> "cache+"

(* Visitor form for the pass manager: reorder one function's layout.
   No-op under Rb_none (the registry also disables the pass then). *)
let reorder_fn ctx sh (fb : Bfunc.t) =
  let algo = ctx.Context.opts.Opts.reorder_blocks in
  if
    algo <> Opts.Rb_none
    && has_profile fb
    && Hashtbl.length fb.Bfunc.blocks > 1
  then begin
    let _, all =
      match algo with
      | Opts.Rb_cache -> order_cache fb
      | _ -> order_cache_plus fb
    in
    let chains = List.filter (fun c -> c.blocks <> []) all in
    (* entry chain first, then by weight *)
    let entry_c, rest =
      List.partition (fun c -> List.mem fb.entry c.blocks) chains
    in
    let rest =
      List.sort
        (fun a b ->
          if a.weight <> b.weight then compare b.weight a.weight
          else compare a.blocks b.blocks)
        rest
    in
    let order = List.concat_map (fun c -> c.blocks) (entry_c @ rest) in
    (* keep any stragglers (unreached blocks) *)
    let seen = Hashtbl.create 32 in
    List.iter (fun l -> Hashtbl.replace seen l ()) order;
    let stragglers = List.filter (fun l -> not (Hashtbl.mem seen l)) fb.layout in
    fb.layout <- order @ stragglers;
    Context.sh_incr sh "pass.reorder-bbs.reordered";
    Context.sh_touch sh fb
  end

let reorder ctx =
  let s = Quarantine.run_fns ctx ~stage:"reorder-bbs" (reorder_fn ctx) in
  Context.logf ctx "reorder-bbs(%s): %d functions reordered"
    (algo_name ctx.Context.opts.Opts.reorder_blocks)
    (Bolt_obs.Metrics.counter s "pass.reorder-bbs.reordered")

(* Hot/cold splitting: cold blocks go to the function's cold fragment,
   which the rewriter emits in the cold code area. *)
let split_fn ctx sh (fb : Bfunc.t) =
  let opts = ctx.Context.opts in
  match opts.Opts.split_functions with
  | Opts.Split_none -> ()
  | mode ->
      let size_ok =
        match mode with
        | Opts.Split_all -> true
        | Opts.Split_large -> fb.fb_size > 256
        | Opts.Split_none -> false
      in
      if size_ok && has_profile fb && fb.exec_count > 0 then begin
        List.iter
          (fun l ->
            let b = block fb l in
            let cold =
              b.ecount = 0 && l <> fb.entry
              && (opts.Opts.split_eh || not b.is_lp)
            in
            if cold then begin
              Hashtbl.replace fb.cold_set l ();
              Context.sh_incr sh "pass.split-functions.blocks_split";
              Context.sh_touch sh fb
            end)
          fb.layout;
        (* a cold block that can fall into a hot one needs a jump; the
           emitter handles that, but keep cold blocks grouped at the end
           of the layout for deterministic output *)
        fb.layout <- hot_layout fb @ cold_layout fb
      end

let split ctx =
  let s = Quarantine.run_fns ctx ~stage:"split-functions" (split_fn ctx) in
  Context.logf ctx "split-functions: %d blocks moved to cold fragments"
    (Bolt_obs.Metrics.counter s "pass.split-functions.blocks_split")
