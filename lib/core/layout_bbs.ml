(* Pass 9: reorder basic blocks and split hot/cold code.

   The chain building, merging and scoring all live in lib/layout
   (bolt_layout) now; this pass is an adapter that projects a Bfunc
   onto Bolt_layout.Cfg, runs the requested algorithm, and writes the
   resulting order back.  Three algorithms, matching BOLT's
   -reorder-blocks:

   - "cache": bottom-up Pettis-Hansen chaining on edge weights;
   - "cache+": the historical seam-scored variant (kept for A/B runs);
   - "ext-tsp" (default): greedy chain merging with splitting under the
     real ExtTSP objective, guarded never to score below cache+ or the
     original layout.

   Splitting moves never-executed blocks to the function's cold fragment
   (paper options -split-functions / -split-all-cold / -split-eh). *)

open Bfunc
module Cfg = Bolt_layout.Cfg
module Engine = Bolt_layout.Engine
module Evaluator = Bolt_layout.Evaluator

(* Project a function's CFG in its current layout order.  The identity
   permutation of the result scores the layout as it stands.  [cold]
   marks blocks whose edges should be dropped from the projection (see
   [sunk_cold]); their nodes stay, as weight-0 singletons. *)
let cfg_of_fn ?(cold = fun _ -> false) (fb : Bfunc.t) : Cfg.t =
  let labels = Array.of_list fb.layout in
  let idx = Hashtbl.create (Array.length labels * 2 + 1) in
  Array.iteri (fun i l -> Hashtbl.replace idx l i) labels;
  let nodes =
    Array.map
      (fun l ->
        let b = block fb l in
        { Cfg.n_label = l; n_size = block_size fb b; n_count = b.ecount })
      labels
  in
  let edges =
    Hashtbl.fold
      (fun (s, d) (c, _) acc ->
        match (Hashtbl.find_opt idx s, Hashtbl.find_opt idx d) with
        | Some si, Some di when (not (cold s)) && not (cold d) ->
            (si, di, !c) :: acc
        | _ -> acc)
      fb.edge_counts []
  in
  let entry = Option.value ~default:(-1) (Hashtbl.find_opt idx fb.entry) in
  Cfg.make ~nodes ~entry edges

(* Blocks the split-functions pass is about to sink to the cold
   fragment make worthless fall-through partners: any adjacency the
   engine buys against one (a stale profile can carry a hot edge into a
   block that never executed) is destroyed right after reorder-bbs.
   When splitting is on, project the CFG with such blocks' edges
   dropped, so every algorithm competes only on adjacencies that
   survive. *)
let sunk_cold opts (fb : Bfunc.t) =
  let size_ok =
    match opts.Opts.split_functions with
    | Opts.Split_none -> false
    | Opts.Split_all -> true
    | Opts.Split_large -> fb.fb_size > 256
  in
  if size_ok && has_profile fb && fb.exec_count > 0 then fun l ->
    let b = block fb l in
    b.ecount = 0 && l <> fb.entry && (opts.Opts.split_eh || not b.is_lp)
  else fun _ -> false

let algo_name = function
  | Opts.Rb_none -> "none"
  | Opts.Rb_cache -> "cache"
  | Opts.Rb_cache_plus -> "cache+"
  | Opts.Rb_ext_tsp -> "ext-tsp"

let engine_algo = function
  | Opts.Rb_cache -> Engine.Cache
  | Opts.Rb_cache_plus -> Engine.Cache_plus
  | Opts.Rb_none | Opts.Rb_ext_tsp -> Engine.Ext_tsp

(* Visitor form for the pass manager: reorder one function's layout.
   No-op under Rb_none (the registry also disables the pass then). *)
let reorder_fn ctx sh (fb : Bfunc.t) =
  let algo = ctx.Context.opts.Opts.reorder_blocks in
  if
    algo <> Opts.Rb_none
    && has_profile fb
    && Hashtbl.length fb.Bfunc.blocks > 1
  then begin
    let cfg = cfg_of_fn ~cold:(sunk_cold ctx.Context.opts fb) fb in
    let order = Engine.order (engine_algo algo) cfg in
    fb.layout <- Array.to_list (Array.map (Cfg.label cfg) order);
    Context.sh_incr sh "pass.reorder-bbs.reordered";
    Context.sh_touch sh fb
  end

let reorder ctx =
  let s = Quarantine.run_fns ctx ~stage:"reorder-bbs" (reorder_fn ctx) in
  Context.logf ctx "reorder-bbs(%s): %d functions reordered"
    (algo_name ctx.Context.opts.Opts.reorder_blocks)
    (Bolt_obs.Metrics.counter s "pass.reorder-bbs.reordered")

(* ---- offline evaluation ---- *)

(* Score one function's current layout: ExtTSP objective plus the
   estimated hot i-cache-line / i-TLB-page working set. *)
let eval_fn (fb : Bfunc.t) : Evaluator.result =
  let cfg = cfg_of_fn fb in
  Evaluator.evaluate cfg (Cfg.identity cfg)

(* Per-function layout snapshot over the whole context, hottest first —
   feeds the report's layout section and `bdump --layout-score`. *)
let snapshot ctx : (string * int * Evaluator.result) list =
  Context.simple_funcs ctx
  |> List.filter_map (fun fb ->
         if has_profile fb && Hashtbl.length fb.Bfunc.blocks > 0 then
           Some (fb.fb_name, fb.exec_count, eval_fn fb)
         else None)
  |> List.sort (fun (n1, e1, _) (n2, e2, _) ->
         if e1 <> e2 then compare e2 e1 else compare n1 n2)

let snapshot_totals rows =
  List.fold_left (fun acc (_, _, r) -> Evaluator.add acc r) Evaluator.zero rows

(* Hot/cold splitting: cold blocks go to the function's cold fragment,
   which the rewriter emits in the cold code area. *)
let split_fn ctx sh (fb : Bfunc.t) =
  let opts = ctx.Context.opts in
  match opts.Opts.split_functions with
  | Opts.Split_none -> ()
  | mode ->
      let size_ok =
        match mode with
        | Opts.Split_all -> true
        | Opts.Split_large -> fb.fb_size > 256
        | Opts.Split_none -> false
      in
      if size_ok && has_profile fb && fb.exec_count > 0 then begin
        List.iter
          (fun l ->
            let b = block fb l in
            let cold =
              b.ecount = 0 && l <> fb.entry
              && (opts.Opts.split_eh || not b.is_lp)
            in
            if cold then begin
              Hashtbl.replace fb.cold_set l ();
              Context.sh_incr sh "pass.split-functions.blocks_split";
              Context.sh_touch sh fb
            end)
          fb.layout;
        (* a cold block that can fall into a hot one needs a jump; the
           emitter handles that, but keep cold blocks grouped at the end
           of the layout for deterministic output *)
        fb.layout <- hot_layout fb @ cold_layout fb
      end

let split ctx =
  let s = Quarantine.run_fns ctx ~stage:"split-functions" (split_fn ctx) in
  Context.logf ctx "split-functions: %d blocks moved to cold fragments"
    (Bolt_obs.Metrics.counter s "pass.split-functions.blocks_split")
