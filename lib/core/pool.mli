(* Domain pool for per-function passes.  See pool.ml for the work model
   and the determinism contract. *)

type t

type stats = {
  st_domain : int; (* worker index, 0 = the calling domain *)
  st_items : int; (* items this worker processed *)
  st_busy_s : float; (* wall time spent inside the worker function *)
}

(* [Domain.recommended_domain_count], the obolt -j default. *)
val default_jobs : unit -> int

(* [create ~jobs ()] — clamped to >= 1; [jobs] defaults to 1. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

(* Worker domains a run over [n] items will actually use (<= jobs).
   [min_chunk] (default 1) is the number of items that justify one
   domain: below [2 * min_chunk] items the run stays inline, and no
   domain is spawned for fewer than [min_chunk] items.  Callers with
   cheap per-item work (per-function encode) should pass a real
   granularity; callers with huge items (fleet shards) keep the
   default. *)
val domains_for : ?min_chunk:int -> t -> int -> int

(* [run t ~worker items] fans [items] out over the pool.  [worker dom x]
   is called with the worker index [dom] in [0, domains_for t n).  Returns
   one [stats] per worker.  If any worker raised, the exception attached
   to the smallest item index is re-raised after all workers joined.
   [min_chunk] feeds [domains_for] and floors the chunk size items are
   claimed in. *)
val run :
  ?min_chunk:int -> t -> worker:(int -> 'a -> unit) -> 'a array -> stats list
