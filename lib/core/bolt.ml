(* The BOLT driver: rewriting pipeline of Figure 3 with the optimization
   sequence of Table 1.

   The pipeline itself lives in [Passman]: Table 1 is a declarative pass
   registry, each pass uniformly wrapped in trace spans, quarantine
   barriers and metrics, with per-function passes fanned out over a
   domain pool ([Opts.jobs]).  This driver is only the frame around it:
   verify the input, build the context, run the registry, rewrite, and
   assemble the report from [Context.stats].

   Hardening (§7's production stance) is unchanged: the input is
   verified before anything touches it, every pass and the emitter run
   under per-function quarantine, a failing fragment is demoted and the
   rewrite retried, and if the rewrite still cannot complete the run
   degrades to the identity rewrite ([Rewrite.run_protected]).
   [Opts.strict] inverts the policy and [Opts.max_quarantine] bounds how
   much degradation is acceptable. *)

module Obs = Bolt_obs.Obs
module Json = Bolt_obs.Json
module Metrics = Bolt_obs.Metrics

type report = {
  r_funcs : int;
  r_simple : int;
  r_icf_folded : int;
  r_icf_bytes : int;
  r_icp_promoted : int;
  r_inlined : int;
  r_frame_saves_removed : int;
  r_shrink_wrapped : int;
  r_profile_branches_matched : int;
  r_profile_branches_unmatched : int;
  r_profile_stale_records : int;
  r_profile_unknown_funcs : int;
  r_profile_staleness : float; (* stale records / all branch records *)
  r_recovery : Bolt_profile.Stale_match.stats option;
      (* stale-profile recovery breakdown; None when the profile was
         fresh (or recovery was disabled / impossible) *)
  r_dyno_before : Dyno_stats.t;
  r_dyno_after : Dyno_stats.t;
  r_layout_before : (string * int * Bolt_layout.Evaluator.result) list;
      (* per simple profiled function: name, exec count, offline layout
         evaluation — hottest first *)
  r_layout_after : (string * int * Bolt_layout.Evaluator.result) list;
  r_text_before : int;
  r_text_after : int;
  r_hot_size : int;
  r_cold_size : int;
  r_bad_layout : Report.finding list;
  r_quarantined : (string * string) list;
  r_diagnostics : Diag.record list;
  r_diag_errors : int;
  r_diag_warnings : int;
  r_identity_fallback : bool;
  r_log : string list;
}

let optimize ?(opts = Opts.default) ?obs (exe : Bolt_obj.Objfile.t)
    (prof : Bolt_profile.Fdata.t) : Bolt_obj.Objfile.t * report =
  let obs = match obs with Some o -> o | None -> Obs.create ~name:"bolt" () in
  (* Figure 3, stage 0: validate the container before trusting it.
     Structural damage is a clean rejection; lesser oddities are
     diagnostics (or, under --strict, also rejections). *)
  let issues =
    Obs.span obs "verify" (fun () ->
        let issues = Bolt_obj.Verify.run exe in
        Obs.incr obs ~by:(List.length issues) "verify.issues";
        issues)
  in
  (match Bolt_obj.Verify.fatal issues with
  | [] -> ()
  | i :: _ -> Context.err "invalid input: %s" i.Bolt_obj.Verify.v_what);
  let ctx = Context.create ~opts ~obs exe in
  let diag = ctx.Context.diag in
  List.iter
    (fun (i : Bolt_obj.Verify.issue) ->
      Diag.warnf diag ~stage:"verify" "%s" i.v_what)
    issues;
  if opts.strict && issues <> [] then
    raise
      (Diag.Strict_error
         (Printf.sprintf "verify: %s" (List.hd issues).Bolt_obj.Verify.v_what));
  (* Profile collected on a different revision?  Recover what the
     fingerprints can carry over before the matcher sees it, instead of
     letting every drifted record decay individually. *)
  let prof, recovery =
    if not opts.stale_match then (prof, None)
    else
      Obs.span obs "stale-match" (fun () ->
          match
            Bolt_profile.Stale_match.recover_if_stale
              ~fingerprints:exe.Bolt_obj.Objfile.fingerprints
              ~build_id:exe.Bolt_obj.Objfile.build_id prof
          with
          | Some (p, st) ->
              Diag.warnf diag ~stage:"stale-match"
                "stale profile recovered: %a" Bolt_profile.Stale_match.pp_stats
                st;
              Obs.incr obs ~by:st.Bolt_profile.Stale_match.st_exact
                "profile.recovery.exact";
              Obs.incr obs ~by:st.Bolt_profile.Stale_match.st_fuzzy
                "profile.recovery.fuzzy";
              Obs.incr obs ~by:st.Bolt_profile.Stale_match.st_inferred
                "profile.recovery.inferred";
              Obs.incr obs ~by:st.Bolt_profile.Stale_match.st_dropped
                "profile.recovery.dropped";
              (p, Some st)
          | None -> (prof, None))
  in
  let env = Passman.make_env ctx prof in
  (* Figure 3 front half: discover, disassemble, build CFGs, attach the
     profile — then the Table 1 registry, then the rewrite. *)
  Passman.run env Passman.pre_passes;
  let bad_layout =
    Passman.stage env "bad-layout" (fun () ->
        Quarantine.pass ctx ~stage:"bad-layout" ~default:[] (fun () ->
            Report.bad_layout ctx ~top:20))
  in
  let dyno ctx name =
    Passman.stage env name (fun () ->
        Quarantine.pass ctx ~stage:"dyno-stats" ~default:(Dyno_stats.zero ())
          (fun () -> Dyno_stats.collect ctx))
  in
  let layout_snap name =
    Passman.stage env name (fun () ->
        Quarantine.pass ctx ~stage:"layout-eval" ~default:[] (fun () ->
            Layout_bbs.snapshot ctx))
  in
  let dyno_before = dyno ctx "dyno-stats-before" in
  let layout_before = layout_snap "layout-eval-before" in
  Passman.run env Passman.table1;
  let dyno_after = dyno ctx "dyno-stats-after" in
  let layout_after = layout_snap "layout-eval-after" in
  let rw, identity_fallback =
    Passman.stage env "rewrite" (fun () -> Rewrite.run_protected ctx)
  in
  Obs.incr obs ~by:(Diag.quarantined_count diag) "quarantine.funcs";
  Obs.incr obs ~by:(Diag.count diag Diag.Error) "diag.errors";
  Obs.incr obs ~by:(Diag.count diag Diag.Warning) "diag.warnings";
  let stat = Metrics.counter ctx.Context.stats in
  let branches_matched = stat "profile.matched_branches" in
  let branches_unmatched = stat "profile.unmatched_branches" in
  let stale_records = stat "profile.stale_records" in
  ( rw.Rewrite.out,
    {
      r_funcs = List.length ctx.Context.order;
      r_simple = List.length (Context.simple_funcs ctx);
      r_icf_folded = stat "pass.icf.folded";
      r_icf_bytes = stat "pass.icf.bytes_saved";
      r_icp_promoted = stat "pass.icp.promoted";
      r_inlined = stat "pass.inline-small.inlined";
      r_frame_saves_removed = stat "pass.frame-opts.saves_removed";
      r_shrink_wrapped = stat "pass.shrink-wrapping.moved";
      r_profile_branches_matched = branches_matched;
      r_profile_branches_unmatched = branches_unmatched;
      r_profile_stale_records = stale_records;
      r_profile_unknown_funcs = stat "profile.unknown_funcs";
      r_profile_staleness =
        (let total = branches_matched + branches_unmatched in
         if total = 0 then 0.0
         else float_of_int stale_records /. float_of_int total);
      r_recovery = recovery;
      r_dyno_before = dyno_before;
      r_dyno_after = dyno_after;
      r_layout_before = layout_before;
      r_layout_after = layout_after;
      r_text_before = rw.Rewrite.text_size_before;
      r_text_after = rw.Rewrite.text_size_after;
      r_hot_size = rw.Rewrite.hot_size;
      r_cold_size = rw.Rewrite.cold_size;
      r_bad_layout = bad_layout;
      r_quarantined = Diag.quarantined diag;
      r_diagnostics = Diag.records diag;
      r_diag_errors = Diag.count diag Diag.Error;
      r_diag_warnings = Diag.count diag Diag.Warning;
      r_identity_fallback = identity_fallback;
      r_log = List.rev ctx.Context.log;
    } )

let pp_report ppf (r : report) =
  Fmt.pf ppf "BOLT report:@.";
  Fmt.pf ppf "  functions: %d (%d simple)@." r.r_funcs r.r_simple;
  Fmt.pf ppf "  icf: %d folded (%d bytes)@." r.r_icf_folded r.r_icf_bytes;
  Fmt.pf ppf "  icp: %d promoted, inline-small: %d, frame saves removed: %d, shrink-wrapped: %d@."
    r.r_icp_promoted r.r_inlined r.r_frame_saves_removed r.r_shrink_wrapped;
  Fmt.pf ppf "  profile: %d branch records matched, %d unmatched@."
    r.r_profile_branches_matched r.r_profile_branches_unmatched;
  Fmt.pf ppf
    "  profile decay: %d stale records, %d unknown functions (staleness %.2f%%)@."
    r.r_profile_stale_records r.r_profile_unknown_funcs
    (100.0 *. r.r_profile_staleness);
  (match r.r_recovery with
  | Some st ->
      Fmt.pf ppf "  stale recovery: %a (rate %.0f%%)@."
        Bolt_profile.Stale_match.pp_stats st
        (100.0 *. Bolt_profile.Stale_match.recovery_rate st)
  | None -> ());
  Fmt.pf ppf "  text: %d -> %d bytes (cold %d)@." r.r_text_before r.r_text_after
    r.r_cold_size;
  if r.r_quarantined <> [] then begin
    Fmt.pf ppf "  quarantined: %d function(s)@." (List.length r.r_quarantined);
    List.iter
      (fun (f, stage) -> Fmt.pf ppf "    %s (in %s)@." f stage)
      r.r_quarantined
  end;
  if r.r_identity_fallback then
    Fmt.pf ppf "  NOTE: rewrite failed; output is the unmodified input@.";
  if r.r_diag_errors > 0 || r.r_diag_warnings > 0 then
    Fmt.pf ppf "  diagnostics: %d error(s), %d warning(s)@." r.r_diag_errors
      r.r_diag_warnings;
  (let b = Layout_bbs.snapshot_totals r.r_layout_before
   and a = Layout_bbs.snapshot_totals r.r_layout_after in
   Fmt.pf ppf
     "  layout: ExtTSP %.1f -> %.1f, hot i-cache lines %d -> %d, hot i-TLB \
      pages %d -> %d@."
     b.Bolt_layout.Evaluator.ev_score a.Bolt_layout.Evaluator.ev_score
     b.Bolt_layout.Evaluator.ev_icache_lines
     a.Bolt_layout.Evaluator.ev_icache_lines
     b.Bolt_layout.Evaluator.ev_itlb_pages a.Bolt_layout.Evaluator.ev_itlb_pages);
  Fmt.pf ppf "  dyno-stats (profile-weighted, before -> after):@.";
  Dyno_stats.pp_comparison ppf ~before:r.r_dyno_before ~after:r.r_dyno_after

(* The report's contribution to the run manifest: everything a later
   perf PR wants to diff — pass outcomes, profile quality, dyno-stats
   deltas, quarantine and diagnostics — as stable JSON sections. *)
let manifest_sections (r : report) : (string * Json.t) list =
  [
    ( "report",
      Json.Obj
        [
          ("funcs", Json.Int r.r_funcs);
          ("simple", Json.Int r.r_simple);
          ("icf_folded", Json.Int r.r_icf_folded);
          ("icf_bytes", Json.Int r.r_icf_bytes);
          ("icp_promoted", Json.Int r.r_icp_promoted);
          ("inlined", Json.Int r.r_inlined);
          ("frame_saves_removed", Json.Int r.r_frame_saves_removed);
          ("shrink_wrapped", Json.Int r.r_shrink_wrapped);
          ("text_before", Json.Int r.r_text_before);
          ("text_after", Json.Int r.r_text_after);
          ("hot_size", Json.Int r.r_hot_size);
          ("cold_size", Json.Int r.r_cold_size);
          ("identity_fallback", Json.Bool r.r_identity_fallback);
        ] );
    ( "profile_quality",
      Json.Obj
        [
          ("branches_matched", Json.Int r.r_profile_branches_matched);
          ("branches_unmatched", Json.Int r.r_profile_branches_unmatched);
          ("stale_records", Json.Int r.r_profile_stale_records);
          ("unknown_funcs", Json.Int r.r_profile_unknown_funcs);
          ("staleness_ratio", Json.Float r.r_profile_staleness);
          ( "recovery",
            match r.r_recovery with
            | None -> Json.Null
            | Some st ->
                Json.Obj
                  [
                    ("funcs", Json.Int st.Bolt_profile.Stale_match.st_funcs);
                    ("exact", Json.Int st.Bolt_profile.Stale_match.st_exact);
                    ("fuzzy", Json.Int st.Bolt_profile.Stale_match.st_fuzzy);
                    ( "inferred",
                      Json.Int st.Bolt_profile.Stale_match.st_inferred );
                    ( "dropped",
                      Json.Int st.Bolt_profile.Stale_match.st_dropped );
                    ( "records_in",
                      Json.Int st.Bolt_profile.Stale_match.st_records_in );
                    ( "records_kept",
                      Json.Int st.Bolt_profile.Stale_match.st_records_kept );
                    ( "rate",
                      Json.Float (Bolt_profile.Stale_match.recovery_rate st) );
                  ] );
        ] );
    ( "dyno_stats",
      Json.Obj
        [
          ("before", Dyno_stats.to_json r.r_dyno_before);
          ("after", Dyno_stats.to_json r.r_dyno_after);
          ( "delta",
            Dyno_stats.comparison_to_json ~before:r.r_dyno_before
              ~after:r.r_dyno_after );
        ] );
    ( "layout",
      (let ev_json (r : Bolt_layout.Evaluator.result) =
         Json.Obj
           [
             ("exttsp_score", Json.Float r.Bolt_layout.Evaluator.ev_score);
             ("hot_bytes", Json.Int r.Bolt_layout.Evaluator.ev_hot_bytes);
             ("icache_lines", Json.Int r.Bolt_layout.Evaluator.ev_icache_lines);
             ("itlb_pages", Json.Int r.Bolt_layout.Evaluator.ev_itlb_pages);
           ]
       in
       let after_by_name =
         List.map (fun (n, _, ev) -> (n, ev)) r.r_layout_after
       in
       let rec top n l =
         match (n, l) with
         | 0, _ | _, [] -> []
         | n, x :: tl -> x :: top (n - 1) tl
       in
       Json.Obj
         [
           ( "before",
             ev_json (Layout_bbs.snapshot_totals r.r_layout_before) );
           ("after", ev_json (Layout_bbs.snapshot_totals r.r_layout_after));
           ( "functions",
             (* hottest 100 functions, before/after paired by name *)
             Json.List
               (top 100 r.r_layout_before
               |> List.map (fun (name, exec, before) ->
                      Json.Obj
                        ([
                           ("func", Json.String name);
                           ("exec_count", Json.Int exec);
                           ("before", ev_json before);
                         ]
                        @
                        match List.assoc_opt name after_by_name with
                        | Some a -> [ ("after", ev_json a) ]
                        | None -> []))) );
         ]) );
    ( "quarantine",
      Json.List
        (List.map
           (fun (func, stage) ->
             Json.Obj
               [ ("func", Json.String func); ("stage", Json.String stage) ])
           r.r_quarantined) );
    ( "diagnostics",
      Json.Obj
        [
          ("errors", Json.Int r.r_diag_errors);
          ("warnings", Json.Int r.r_diag_warnings);
          ( "records",
            Json.List
              (List.map
                 (fun (d : Diag.record) ->
                   Json.Obj
                     ([
                        ("severity", Json.String (Diag.severity_name d.d_severity));
                        ("stage", Json.String d.d_stage);
                        ("msg", Json.String d.d_msg);
                      ]
                     @
                     match d.d_func with
                     | Some f -> [ ("func", Json.String f) ]
                     | None -> []))
                 r.r_diagnostics) );
        ] );
    ( "bad_layout",
      Json.List
        (List.map
           (fun (f : Report.finding) ->
             Json.Obj
               [
                 ("func", Json.String f.Report.bl_func);
                 ("block", Json.String f.Report.bl_block);
                 ("offset", Json.Int f.Report.bl_offset);
                 ("prev_count", Json.Int f.Report.bl_prev_count);
                 ("next_count", Json.Int f.Report.bl_next_count);
               ])
           r.r_bad_layout) );
  ]
