(* The BOLT driver: rewriting pipeline of Figure 3 with the optimization
   sequence of Table 1.

     1. strip-rep-ret     5. inline-small      9. reorder-bbs (+split)
     2. icf               6. simplify-ro-loads 10. peepholes
     3. icp               7. icf               11. uce
     4. peepholes         8. plt               12. fixup-branches (emission)
                                               13. reorder-functions
                                               14. sctc
                                               15. frame-opts
                                               16. shrink-wrapping

   The pipeline is hardened (§7's production stance): the input is
   verified before anything touches it, every optimization pass and the
   emitter run under per-function quarantine, a failing fragment is
   demoted and the rewrite retried, and if the rewrite still cannot
   complete the run degrades to the identity rewrite — the input binary
   unchanged — rather than failing.  [Opts.strict] inverts the policy and
   [Opts.max_quarantine] bounds how much degradation is acceptable. *)

module Obs = Bolt_obs.Obs
module Json = Bolt_obs.Json

type report = {
  r_funcs : int;
  r_simple : int;
  r_icf_folded : int;
  r_icf_bytes : int;
  r_icp_promoted : int;
  r_inlined : int;
  r_frame_saves_removed : int;
  r_shrink_wrapped : int;
  r_profile_branches_matched : int;
  r_profile_branches_unmatched : int;
  r_profile_stale_records : int;
  r_profile_unknown_funcs : int;
  r_profile_staleness : float; (* stale records / all branch records *)
  r_dyno_before : Dyno_stats.t;
  r_dyno_after : Dyno_stats.t;
  r_text_before : int;
  r_text_after : int;
  r_hot_size : int;
  r_cold_size : int;
  r_bad_layout : Report.finding list;
  r_quarantined : (string * string) list;
  r_diagnostics : Diag.record list;
  r_diag_errors : int;
  r_diag_warnings : int;
  r_identity_fallback : bool;
  r_log : string list;
}

let text_bytes (e : Bolt_obj.Objfile.t) =
  e.Bolt_obj.Objfile.sections
  |> List.filter (fun (s : Bolt_obj.Types.section) -> s.sec_kind = Bolt_obj.Types.Text)
  |> List.fold_left (fun a (s : Bolt_obj.Types.section) -> a + s.sec_size) 0

(* How many times a Frag_error may quarantine a function and retry the
   whole rewrite before giving up.  Each retry removes at least one
   function from the optimized set, so this bounds wasted work on a
   pathological input, not correctness. *)
let max_rewrite_retries = 8

(* Run one pipeline stage inside a trace span.  The span records wall
   time, the number of functions the stage modified (via
   [Context.touch]), and — through [Obs.span] — whichever registry
   counters moved while it ran. *)
let stage ctx name f =
  Hashtbl.reset ctx.Context.touched;
  Obs.span ctx.Context.obs name (fun () ->
      let r = f () in
      Obs.set_attr ctx.Context.obs "funcs_modified"
        (Json.Int (Hashtbl.length ctx.Context.touched));
      let n = Hashtbl.length ctx.Context.touched in
      if n > 0 then Obs.incr ctx.Context.obs ~by:n ("pass." ^ name ^ ".funcs_modified");
      r)

let optimize ?(opts = Opts.default) ?obs (exe : Bolt_obj.Objfile.t)
    (prof : Bolt_profile.Fdata.t) : Bolt_obj.Objfile.t * report =
  let obs = match obs with Some o -> o | None -> Obs.create ~name:"bolt" () in
  (* Figure 3, stage 0: validate the container before trusting it.
     Structural damage is a clean rejection; lesser oddities are
     diagnostics (or, under --strict, also rejections). *)
  let issues =
    Obs.span obs "verify" (fun () ->
        let issues = Bolt_obj.Verify.run exe in
        Obs.incr obs ~by:(List.length issues) "verify.issues";
        issues)
  in
  (match Bolt_obj.Verify.fatal issues with
  | [] -> ()
  | i :: _ -> Context.err "invalid input: %s" i.Bolt_obj.Verify.v_what);
  let ctx = Context.create ~opts ~obs exe in
  let diag = ctx.Context.diag in
  List.iter
    (fun (i : Bolt_obj.Verify.issue) ->
      Diag.warnf diag ~stage:"verify" "%s" i.v_what)
    issues;
  if opts.strict && issues <> [] then
    raise
      (Diag.Strict_error
         (Printf.sprintf "verify: %s"
            (List.hd issues).Bolt_obj.Verify.v_what));
  (* Figure 3: discover functions, read debug info and profile,
     disassemble, build CFGs *)
  stage ctx "build-cfg" (fun () ->
      Build.run ctx;
      Obs.incr obs ~by:(List.length ctx.Context.order) "build.funcs";
      Obs.incr obs ~by:(List.length (Context.simple_funcs ctx)) "build.simple_funcs");
  let zero_mstats () =
    {
      Match_profile.matched_branches = 0;
      unmatched_branches = 0;
      matched_count = 0;
      unmatched_count = 0;
      stale_records = 0;
      unknown_funcs = 0;
    }
  in
  let mstats =
    stage ctx "match-profile" (fun () ->
        let s =
          Quarantine.pass ctx ~stage:"match-profile" ~default:(zero_mstats ())
            (fun () ->
              let s = Match_profile.attach ctx prof in
              Match_profile.finalize ctx ~lbr:prof.lbr
                ~trust_fallthrough:opts.trust_fallthrough;
              s)
        in
        Obs.incr obs ~by:s.Match_profile.matched_branches "profile.matched_branches";
        Obs.incr obs ~by:s.Match_profile.unmatched_branches "profile.unmatched_branches";
        Obs.incr obs ~by:s.Match_profile.matched_count "profile.matched_count";
        Obs.incr obs ~by:s.Match_profile.unmatched_count "profile.unmatched_count";
        Obs.incr obs ~by:s.Match_profile.stale_records "profile.stale_records";
        Obs.incr obs ~by:s.Match_profile.unknown_funcs "profile.unknown_funcs";
        let total = s.matched_branches + s.unmatched_branches in
        Obs.set obs "profile.staleness_ratio"
          (if total = 0 then 0.0
           else float_of_int s.stale_records /. float_of_int total);
        s)
  in
  let bad_layout =
    stage ctx "bad-layout" (fun () ->
        Quarantine.pass ctx ~stage:"bad-layout" ~default:[] (fun () ->
            Report.bad_layout ctx ~top:20))
  in
  let dyno_before =
    stage ctx "dyno-stats-before" (fun () ->
        Quarantine.pass ctx ~stage:"dyno-stats" ~default:(Dyno_stats.zero ())
          (fun () -> Dyno_stats.collect ctx))
  in
  (* Table 1 pipeline.  Per-function passes carry their own quarantine
     barriers; the whole-program passes (ICF, ICP site profiling,
     function reordering) degrade pass-wise. *)
  if opts.strip_rep_ret then
    stage ctx "strip-rep-ret" (fun () -> Passes_simple.strip_rep_ret ctx);
  let run_icf name =
    if opts.icf then
      stage ctx name (fun () ->
          let folded, bytes =
            Quarantine.pass ctx ~stage:"icf" ~default:(0, 0) (fun () -> Icf.run ctx)
          in
          Obs.incr obs ~by:folded "pass.icf.folded";
          Obs.incr obs ~by:bytes "pass.icf.bytes_saved";
          (folded, bytes))
    else (0, 0)
  in
  let icf_folded1, icf_bytes1 = run_icf "icf" in
  let icp_promoted =
    if opts.icp then
      stage ctx "icp" (fun () ->
          let promoted =
            Quarantine.pass ctx ~stage:"icp" ~default:0 (fun () ->
                Icp.run ctx (Icp.build_site_profile ctx prof))
          in
          Obs.incr obs ~by:promoted "pass.icp.promoted";
          promoted)
    else 0
  in
  if opts.peepholes then stage ctx "peepholes" (fun () -> Passes_simple.peepholes ctx);
  let inlined =
    if opts.inline_small then
      stage ctx "inline-small" (fun () ->
          let n = Inline_small.run ctx in
          Obs.incr obs ~by:n "pass.inline-small.inlined";
          n)
    else 0
  in
  if opts.simplify_ro_loads then
    stage ctx "simplify-ro-loads" (fun () -> Passes_simple.simplify_ro_loads ctx);
  let icf_folded2, icf_bytes2 = run_icf "icf-2" in
  if opts.plt then stage ctx "plt" (fun () -> Passes_simple.plt ctx);
  stage ctx "reorder-bbs" (fun () -> Layout_bbs.reorder ctx);
  stage ctx "split-functions" (fun () -> Layout_bbs.split ctx);
  if opts.peepholes then stage ctx "peepholes-2" (fun () -> Passes_simple.peepholes ctx);
  if opts.uce then stage ctx "uce" (fun () -> Passes_simple.uce ctx);
  (* fixup-branches happens structurally at emission *)
  stage ctx "reorder-functions" (fun () ->
      ctx.Context.func_layout <-
        Quarantine.pass ctx ~stage:"reorder-functions" ~default:None (fun () ->
            Some (Reorder_funcs.run ctx prof)));
  if opts.sctc then stage ctx "sctc" (fun () -> Passes_simple.sctc ctx);
  let frames_removed =
    if opts.frame_opts then
      stage ctx "frame-opts" (fun () ->
          let n = Frame_opts.frame_opts ctx in
          Obs.incr obs ~by:n "pass.frame-opts.saves_removed";
          n)
    else 0
  in
  let shrink_wrapped =
    if opts.shrink_wrapping then
      stage ctx "shrink-wrapping" (fun () ->
          let n = Frame_opts.shrink_wrapping ctx in
          Obs.incr obs ~by:n "pass.shrink-wrapping.moved";
          n)
    else 0
  in
  let dyno_after =
    stage ctx "dyno-stats-after" (fun () ->
        Quarantine.pass ctx ~stage:"dyno-stats" ~default:(Dyno_stats.zero ())
          (fun () -> Dyno_stats.collect ctx))
  in
  (* emit, link, rewrite — with the fragment-failure retry loop: a
     function whose fragment cannot be finalized is quarantined and the
     rewrite re-run without it *)
  let rec rewrite_retry budget =
    try Rewrite.run ctx
    with Rewrite.Frag_error (func, msg) ->
      (match Context.func ctx func with
      | Some fb when fb.Bfunc.simple && budget > 0 ->
          Quarantine.demote ctx ~stage:"rewrite" fb msg
      | _ -> Context.err "rewrite: %s: %s" func msg);
      rewrite_retry (budget - 1)
  in
  let identity_fallback = ref false in
  let rw =
    stage ctx "rewrite" (fun () ->
        let rw =
          try rewrite_retry max_rewrite_retries
          with exn when (not opts.strict) && not (Quarantine.fatal exn) ->
            (* last rung of the degradation ladder: ship the input unchanged *)
            Diag.errorf diag ~stage:"rewrite"
              "rewrite failed (%s); falling back to the identity rewrite"
              (Printexc.to_string exn);
            Obs.event obs "identity-fallback";
            identity_fallback := true;
            let tb = text_bytes exe in
            {
              Rewrite.out = exe;
              hot_size = 0;
              cold_size = 0;
              text_size_before = tb;
              text_size_after = tb;
            }
        in
        Obs.incr obs ~by:rw.Rewrite.text_size_after "rewrite.bytes_emitted";
        Obs.set_attr obs "hot_bytes" (Json.Int rw.Rewrite.hot_size);
        Obs.set_attr obs "cold_bytes" (Json.Int rw.Rewrite.cold_size);
        Obs.set_attr obs "text_before" (Json.Int rw.Rewrite.text_size_before);
        Obs.set_attr obs "text_after" (Json.Int rw.Rewrite.text_size_after);
        rw)
  in
  Obs.incr obs ~by:(Diag.quarantined_count diag) "quarantine.funcs";
  Obs.incr obs ~by:(Diag.count diag Diag.Error) "diag.errors";
  Obs.incr obs ~by:(Diag.count diag Diag.Warning) "diag.warnings";
  let simple = List.length (Context.simple_funcs ctx) in
  ( rw.Rewrite.out,
    {
      r_funcs = List.length ctx.Context.order;
      r_simple = simple;
      r_icf_folded = icf_folded1 + icf_folded2;
      r_icf_bytes = icf_bytes1 + icf_bytes2;
      r_icp_promoted = icp_promoted;
      r_inlined = inlined;
      r_frame_saves_removed = frames_removed;
      r_shrink_wrapped = shrink_wrapped;
      r_profile_branches_matched = mstats.Match_profile.matched_branches;
      r_profile_branches_unmatched = mstats.Match_profile.unmatched_branches;
      r_profile_stale_records = mstats.Match_profile.stale_records;
      r_profile_unknown_funcs = mstats.Match_profile.unknown_funcs;
      r_profile_staleness =
        (let total =
           mstats.Match_profile.matched_branches
           + mstats.Match_profile.unmatched_branches
         in
         if total = 0 then 0.0
         else float_of_int mstats.Match_profile.stale_records /. float_of_int total);
      r_dyno_before = dyno_before;
      r_dyno_after = dyno_after;
      r_text_before = rw.Rewrite.text_size_before;
      r_text_after = rw.Rewrite.text_size_after;
      r_hot_size = rw.Rewrite.hot_size;
      r_cold_size = rw.Rewrite.cold_size;
      r_bad_layout = bad_layout;
      r_quarantined = Diag.quarantined diag;
      r_diagnostics = Diag.records diag;
      r_diag_errors = Diag.count diag Diag.Error;
      r_diag_warnings = Diag.count diag Diag.Warning;
      r_identity_fallback = !identity_fallback;
      r_log = List.rev ctx.Context.log;
    } )

let pp_report ppf (r : report) =
  Fmt.pf ppf "BOLT report:@.";
  Fmt.pf ppf "  functions: %d (%d simple)@." r.r_funcs r.r_simple;
  Fmt.pf ppf "  icf: %d folded (%d bytes)@." r.r_icf_folded r.r_icf_bytes;
  Fmt.pf ppf "  icp: %d promoted, inline-small: %d, frame saves removed: %d, shrink-wrapped: %d@."
    r.r_icp_promoted r.r_inlined r.r_frame_saves_removed r.r_shrink_wrapped;
  Fmt.pf ppf "  profile: %d branch records matched, %d unmatched@."
    r.r_profile_branches_matched r.r_profile_branches_unmatched;
  Fmt.pf ppf
    "  profile decay: %d stale records, %d unknown functions (staleness %.2f%%)@."
    r.r_profile_stale_records r.r_profile_unknown_funcs
    (100.0 *. r.r_profile_staleness);
  Fmt.pf ppf "  text: %d -> %d bytes (cold %d)@." r.r_text_before r.r_text_after
    r.r_cold_size;
  if r.r_quarantined <> [] then begin
    Fmt.pf ppf "  quarantined: %d function(s)@." (List.length r.r_quarantined);
    List.iter
      (fun (f, stage) -> Fmt.pf ppf "    %s (in %s)@." f stage)
      r.r_quarantined
  end;
  if r.r_identity_fallback then
    Fmt.pf ppf "  NOTE: rewrite failed; output is the unmodified input@.";
  if r.r_diag_errors > 0 || r.r_diag_warnings > 0 then
    Fmt.pf ppf "  diagnostics: %d error(s), %d warning(s)@." r.r_diag_errors
      r.r_diag_warnings;
  Fmt.pf ppf "  dyno-stats (profile-weighted, before -> after):@.";
  Dyno_stats.pp_comparison ppf ~before:r.r_dyno_before ~after:r.r_dyno_after

(* The report's contribution to the run manifest: everything a later
   perf PR wants to diff — pass outcomes, profile quality, dyno-stats
   deltas, quarantine and diagnostics — as stable JSON sections. *)
let manifest_sections (r : report) : (string * Json.t) list =
  [
    ( "report",
      Json.Obj
        [
          ("funcs", Json.Int r.r_funcs);
          ("simple", Json.Int r.r_simple);
          ("icf_folded", Json.Int r.r_icf_folded);
          ("icf_bytes", Json.Int r.r_icf_bytes);
          ("icp_promoted", Json.Int r.r_icp_promoted);
          ("inlined", Json.Int r.r_inlined);
          ("frame_saves_removed", Json.Int r.r_frame_saves_removed);
          ("shrink_wrapped", Json.Int r.r_shrink_wrapped);
          ("text_before", Json.Int r.r_text_before);
          ("text_after", Json.Int r.r_text_after);
          ("hot_size", Json.Int r.r_hot_size);
          ("cold_size", Json.Int r.r_cold_size);
          ("identity_fallback", Json.Bool r.r_identity_fallback);
        ] );
    ( "profile_quality",
      Json.Obj
        [
          ("branches_matched", Json.Int r.r_profile_branches_matched);
          ("branches_unmatched", Json.Int r.r_profile_branches_unmatched);
          ("stale_records", Json.Int r.r_profile_stale_records);
          ("unknown_funcs", Json.Int r.r_profile_unknown_funcs);
          ("staleness_ratio", Json.Float r.r_profile_staleness);
        ] );
    ( "dyno_stats",
      Json.Obj
        [
          ("before", Dyno_stats.to_json r.r_dyno_before);
          ("after", Dyno_stats.to_json r.r_dyno_after);
          ( "delta",
            Dyno_stats.comparison_to_json ~before:r.r_dyno_before
              ~after:r.r_dyno_after );
        ] );
    ( "quarantine",
      Json.List
        (List.map
           (fun (func, stage) ->
             Json.Obj
               [ ("func", Json.String func); ("stage", Json.String stage) ])
           r.r_quarantined) );
    ( "diagnostics",
      Json.Obj
        [
          ("errors", Json.Int r.r_diag_errors);
          ("warnings", Json.Int r.r_diag_warnings);
          ( "records",
            Json.List
              (List.map
                 (fun (d : Diag.record) ->
                   Json.Obj
                     ([
                        ("severity", Json.String (Diag.severity_name d.d_severity));
                        ("stage", Json.String d.d_stage);
                        ("msg", Json.String d.d_msg);
                      ]
                     @
                     match d.d_func with
                     | Some f -> [ ("func", Json.String f) ]
                     | None -> []))
                 r.r_diagnostics) );
        ] );
    ( "bad_layout",
      Json.List
        (List.map
           (fun (f : Report.finding) ->
             Json.Obj
               [
                 ("func", Json.String f.Report.bl_func);
                 ("block", Json.String f.Report.bl_block);
                 ("offset", Json.Int f.Report.bl_offset);
                 ("prev_count", Json.Int f.Report.bl_prev_count);
                 ("next_count", Json.Int f.Report.bl_next_count);
               ])
           r.r_bad_layout) );
  ]
