(* Pass 5: inline small functions.

   As the paper notes, BOLT's inliner is deliberately limited — the
   compiler already took the big opportunities; what remains is typically
   exposed by more accurate profile data or by indirect-call promotion.
   Eligible callees are single-block leaf functions with no frame, no
   stack traffic and no exception behaviour: their body (minus the
   return) can be spliced verbatim over the call site. *)

open Bolt_isa
open Bfunc

let eligible_body (fb : Bfunc.t) ~size_limit =
  if not fb.simple then None
  else
    match fb.layout with
    | [ l ] -> (
        let b = block fb l in
        match b.term with
        | T_stop -> (
            match List.rev b.insns with
            | { op = Insn.Ret | Insn.Repz_ret; _ } :: rev_body ->
                let body = List.rev rev_body in
                let ok =
                  List.for_all
                    (fun (i : minsn) ->
                      match i.op with
                      | Insn.Push _ | Insn.Pop _ | Insn.Call _ | Insn.Call_ind _
                      | Insn.Call_mem _ | Insn.Throw | Insn.Jmp_ind _ | Insn.Jmp_mem _
                      | Insn.Ret | Insn.Repz_ret | Insn.Halt ->
                          false
                      | op ->
                          (* no stack-pointer arithmetic either *)
                          not
                            (List.exists (Reg.equal Reg.sp) (Insn.defs op))
                          && not (List.exists (Reg.equal Reg.sp) (Insn.uses op)))
                    body
                in
                let bytes =
                  List.fold_left (fun a (i : minsn) -> a + Insn.size i.op) 0 body
                in
                if ok && bytes <= size_limit then Some body else None
            | _ -> None)
        | _ -> None)
    | _ -> None

let run ctx =
  let inlined = ref 0 in
  let limit = ctx.Context.opts.Opts.inline_size_limit in
  let bodies = Hashtbl.create 32 in
  Context.iter_funcs ctx (fun fb ->
      if fb.folded_into = None then
        match eligible_body fb ~size_limit:limit with
        | Some body -> Hashtbl.replace bodies fb.fb_name body
        | None -> ());
  (* The compiler already inlined the intra-module candidates; what is
     left for BOLT is mostly cross-module calls behind PLT stubs — the
     "cross-module nature" opportunity the paper credits BOLT's inliner
     with.  Resolve stubs to their final targets here. *)
  let resolve callee =
    match Hashtbl.find_opt ctx.Context.plt_target callee with
    | Some t -> t
    | None -> callee
  in
  Quarantine.iter_simple ctx ~stage:"inline-small"
    (fun fb ->
      Hashtbl.iter
        (fun _ b ->
          if b.ecount > 0 then
            b.insns <-
              List.concat_map
                (fun (i : minsn) ->
                  match i.op with
                  | Insn.Call (Insn.Sym (callee, 0))
                    when resolve callee <> fb.fb_name
                         && Hashtbl.mem bodies (resolve callee) ->
                      incr inlined;
                      Context.touch ctx fb.fb_name;
                      List.map
                        (fun (bi : minsn) -> { bi with m_off = -1; loc = bi.loc })
                        (Hashtbl.find bodies (resolve callee))
                  | _ -> [ i ])
                b.insns)
        fb.blocks);
  Context.logf ctx "inline-small: %d call sites inlined" !inlined;
  !inlined
