(* Domain pool for per-function passes.

   The work model is deliberately narrow: an array of items, a worker
   that mutates only its own item (plus the per-domain shard it is
   handed), and nothing to return.  Items are claimed in contiguous
   chunks off an atomic cursor, so the schedule is dynamic (a domain
   that draws expensive functions takes fewer chunks) but the set of
   items each worker sees never affects the output — determinism is the
   caller's contract: workers write only per-item state and per-domain
   shards, and the caller folds shards in a stable order at join.

   Exceptions escaping a worker are collected with the item index that
   raised them; after the join the one with the smallest index is
   re-raised, so a fatal error surfaces identically at any -j. *)

type stats = {
  st_domain : int; (* worker index, 0 = the calling domain *)
  st_items : int; (* items this worker processed *)
  st_busy_s : float; (* wall time spent inside the worker function *)
}

type t = { jobs : int }

let default_jobs () = Domain.recommended_domain_count ()

let create ?(jobs = 1) () = { jobs = max 1 jobs }

let jobs t = t.jobs

(* Number of worker domains a run over [n] items will actually use.

   [min_chunk] is the caller's statement of how many items justify one
   domain: spawning a domain costs on the order of a millisecond, so a
   pass whose per-item work is microseconds (the encode-dominated emit
   loop) must not fan 40 functions out over 8 domains and lose to -j1.
   The default of 1 keeps the historical behaviour (one domain per item
   when items are scarce) for callers whose items are individually huge,
   e.g. the fleet merger's shards. *)
let domains_for ?(min_chunk = 1) t n =
  if n <= 1 || n < 2 * min_chunk then 1
  else min t.jobs (max 1 (n / min_chunk))

let run ?(min_chunk = 1) t ~(worker : int -> 'a -> unit) (items : 'a array) :
    stats list =
  let n = Array.length items in
  let d = domains_for ~min_chunk t n in
  if d = 1 then begin
    (* Inline fast path: no domains, no atomics, exceptions propagate
       as-is.  This is also the only path when the pool is sequential,
       so -j1 has zero parallel-runtime overhead. *)
    let t0 = Unix.gettimeofday () in
    Array.iter (worker 0) items;
    [ { st_domain = 0; st_items = n; st_busy_s = Unix.gettimeofday () -. t0 } ]
  end
  else begin
    let cursor = Atomic.make 0 in
    (* claim at least [min_chunk] items per trip to the atomic cursor:
       the dynamic schedule still balances (8 trips per domain on even
       work) without paying one fetch-and-add per cheap item *)
    let chunk = max min_chunk (max 1 (n / (d * 8))) in
    let failures = Atomic.make ([] : (int * exn) list) in
    let record_failure i exn =
      let rec push () =
        let old = Atomic.get failures in
        if not (Atomic.compare_and_set failures old ((i, exn) :: old)) then push ()
      in
      push ()
    in
    let drain dom =
      let t0 = Unix.gettimeofday () in
      let processed = ref 0 in
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add cursor chunk in
        if start >= n then continue := false
        else
          for i = start to min (start + chunk) n - 1 do
            (try worker dom items.(i)
             with exn ->
               record_failure i exn;
               (* stop claiming work: the run is going down anyway *)
               Atomic.set cursor n);
            incr processed
          done
      done;
      { st_domain = dom; st_items = !processed; st_busy_s = Unix.gettimeofday () -. t0 }
    in
    let spawned = Array.init (d - 1) (fun i -> Domain.spawn (fun () -> drain (i + 1))) in
    let s0 = drain 0 in
    let rest = Array.to_list (Array.map Domain.join spawned) in
    (match List.sort compare (Atomic.get failures) with
    | (_, exn) :: _ -> raise exn
    | [] -> ());
    s0 :: rest
  end
