(** The BOLT driver: Figure 3's rewriting pipeline with Table 1's
    optimization sequence.

    Typical use:
    {[
      let exe', report = Bolt.optimize ~opts:Opts.default exe profile in
      Bolt_obj.Objfile.save "prog.bolt.x" exe'
    ]} *)

(** Summary of what one [optimize] run did: per-pass counters, profile
    match quality, dyno-stats before/after (Table 2), code-size effects,
    and the bad-layout findings collected on the {e original} layout
    (Figure 10). *)
type report = {
  r_funcs : int;  (** functions discovered (symbol table + frame info) *)
  r_simple : int;  (** functions with a fully reconstructed CFG *)
  r_icf_folded : int;  (** identical functions folded (both ICF runs) *)
  r_icf_bytes : int;  (** code bytes eliminated by ICF *)
  r_icp_promoted : int;  (** indirect call sites promoted *)
  r_inlined : int;  (** call sites inlined by inline-small *)
  r_frame_saves_removed : int;  (** dead callee-saved spills removed *)
  r_shrink_wrapped : int;  (** saves moved next to their cold uses *)
  r_profile_branches_matched : int;
  r_profile_branches_unmatched : int;
  r_profile_stale_records : int;
      (** profile records whose offsets fall outside the named function *)
  r_profile_unknown_funcs : int;
      (** distinct profile names with no function in the binary *)
  r_profile_staleness : float;
      (** fraction (0..1) of branch records that were stale — the §7
          profile-decay measure, also exported to the run manifest *)
  r_recovery : Bolt_profile.Stale_match.stats option;
      (** stale-profile recovery breakdown (functions matched
          exact/fuzzy/inferred/dropped); [None] when the profile was
          fresh, unmatchable, or [Opts.stale_match] was off *)
  r_dyno_before : Dyno_stats.t;  (** profile-weighted stats, input layout *)
  r_dyno_after : Dyno_stats.t;  (** same, final layout *)
  r_layout_before : (string * int * Bolt_layout.Evaluator.result) list;
      (** per-function offline layout evaluation of the input layout
          (name, exec count, ExtTSP score + working-set estimate),
          hottest functions first *)
  r_layout_after : (string * int * Bolt_layout.Evaluator.result) list;
      (** same, final layout *)
  r_text_before : int;  (** code bytes before rewriting *)
  r_text_after : int;
  r_hot_size : int;  (** bytes in the hot area (relocations mode) *)
  r_cold_size : int;  (** bytes moved to the cold area *)
  r_bad_layout : Report.finding list;  (** §6.3's interleaving report *)
  r_quarantined : (string * string) list;
      (** functions demoted to their verbatim input bytes after a pass or
          emitter failure, with the stage that failed; oldest first *)
  r_diagnostics : Diag.record list;  (** structured diagnostics, oldest first *)
  r_diag_errors : int;
  r_diag_warnings : int;
  r_identity_fallback : bool;
      (** the rewrite could not complete and the output is the input,
          byte-identical (never set under [Opts.strict]) *)
  r_log : string list;  (** one line per pass, in execution order *)
}

(** [optimize ~opts exe profile] rewrites the executable under the given
    options and returns the new binary together with the report.  The
    rewritten binary is behaviourally identical to the input by
    construction; only its layout and instruction selection change.
    Relocations mode (whole-binary function reordering) is used when the
    input retains linker relocations, unless [opts.use_relocations]
    overrides the choice.

    Degradation ladder, in order of preference: malformed profile records
    are skipped at parse time; a stale profile record degrades that
    function's profile to unmatched/partial; a pass or emitter failure
    quarantines the one affected function back to its input bytes; a
    whole-program pass failure skips that pass; and if the rewrite itself
    cannot complete, the input is returned unchanged with
    [r_identity_fallback] set.  Only three exceptions escape:
    {!Context.Bolt_error} on structurally invalid input,
    {!Diag.Strict_error} when [opts.strict] forbids degradation, and
    {!Diag.Quarantine_limit} when [opts.max_quarantine] is exceeded.

    When [obs] is supplied, every pipeline stage runs inside a trace
    span on it (wall time, functions modified, registry-counter deltas)
    and profile-quality metrics are recorded — the data behind
    [--trace-out] and [--time-opts]; omitted, a private handle is
    created so instrumentation stays on for in-process callers. *)
val optimize :
  ?opts:Opts.t ->
  ?obs:Bolt_obs.Obs.t ->
  Bolt_obj.Objfile.t ->
  Bolt_profile.Fdata.t ->
  Bolt_obj.Objfile.t * report

(** Render the report in the style of BOLT's console output, including the
    dyno-stats before/after table. *)
val pp_report : Format.formatter -> report -> unit

(** The report as stable JSON manifest sections ([report],
    [profile_quality], [dyno_stats], [layout], [quarantine],
    [diagnostics], [bad_layout]) for {!Bolt_obs.Manifest.make}. *)
val manifest_sections : report -> (string * Bolt_obs.Json.t) list
