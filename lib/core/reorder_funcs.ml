(* Pass 13: reorder functions with HFSort (§5.3, [25]).

   The weighted call graph comes from the LBR profile when available;
   otherwise from the binary's direct calls weighted by IP samples near
   each call site — which is §5.3's degraded-but-workable fallback that
   cannot see indirect calls.

   The result is a function order (hot first); with split-all-cold,
   never-sampled functions are pushed to the cold area.  Non-simple
   functions participate in the ordering (they can be moved as units in
   relocations mode) but are never split. *)

let direct_calls ctx =
  let calls = ref [] in
  Context.iter_funcs ctx (fun fb ->
      let record off callee = calls := (fb.Bfunc.fb_name, off, callee) :: !calls in
      if fb.Bfunc.simple then
        Hashtbl.iter
          (fun _ b ->
            List.iter
              (fun (i : Bfunc.minsn) ->
                match i.Bfunc.op with
                | Bolt_isa.Insn.Call (Bolt_isa.Insn.Sym (s, 0)) when i.Bfunc.m_off >= 0 ->
                    record i.Bfunc.m_off
                      (match Hashtbl.find_opt ctx.Context.plt_target s with
                      | Some t -> t
                      | None -> s)
                | _ -> ())
              b.Bfunc.insns)
          fb.Bfunc.blocks
      else
        List.iter
          (fun (i : Bfunc.minsn) ->
            match i.Bfunc.op with
            | Bolt_isa.Insn.Call (Bolt_isa.Insn.Sym (s, 0)) ->
                record i.Bfunc.m_off
                  (match Hashtbl.find_opt ctx.Context.plt_target s with
                  | Some t -> t
                  | None -> s)
            | _ -> ())
          fb.Bfunc.raw_insns);
  !calls

(* Returns (hot order, cold order). *)
let run ctx (prof : Bolt_profile.Fdata.t) : string list * string list =
  let opts = ctx.Context.opts in
  let live =
    List.filter
      (fun n ->
        match Context.func ctx n with
        | Some f -> f.Bfunc.folded_into = None
        | None -> false)
      ctx.Context.order
  in
  let algo =
    match opts.Opts.reorder_functions with
    | Opts.Rf_none -> None
    | Opts.Rf_hfsort -> Some Bolt_hfsort.Order.C3
    | Opts.Rf_hfsort_plus -> Some Bolt_hfsort.Order.Hfsort_plus
    | Opts.Rf_pettis_hansen -> Some Bolt_hfsort.Order.Pettis_hansen
  in
  match algo with
  | None -> (live, [])
  | Some algo ->
      let funcs =
        List.map
          (fun n ->
            let f = Hashtbl.find ctx.Context.funcs n in
            (n, max 1 f.Bfunc.fb_size))
          live
      in
      let g =
        if prof.lbr then Bolt_hfsort.Callgraph.of_profile ~funcs prof
        else
          Bolt_hfsort.Callgraph.of_samples_and_calls ~funcs
            ~direct_calls:(direct_calls ctx) prof
      in
      (* ICF may have folded some call targets: fold their samples in *)
      let order = Bolt_hfsort.Order.order algo g ~original:live in
      let order = List.filter (fun n -> List.mem n live) order in
      let events = Bolt_profile.Fdata.func_events prof in
      let is_sampled n =
        match Hashtbl.find_opt events n with Some c -> c > 0L | None -> false
      in
      let hot, cold =
        if opts.Opts.split_all_cold then
          List.partition
            (fun n ->
              is_sampled n
              ||
              match Context.func ctx n with
              | Some f -> f.Bfunc.exec_count > 0
              | None -> false)
            order
        else (order, [])
      in
      Context.logf ctx "reorder-functions: %d hot, %d cold" (List.length hot)
        (List.length cold);
      (hot, cold)
