(* Profile matching: attach an fdata profile to the reconstructed CFGs.

   In LBR mode, taken-branch records become CFG edge counts directly, and
   fall-through ranges (derived from consecutive LBR entries) supply the
   non-taken edge counts that LBRs by construction never record.  Whatever
   flow is still missing is repaired per §5.2: surplus inflow is
   attributed to the fall-through path, trusting the static compiler's
   original layout under uncertainty.

   In non-LBR mode only IP sample counts exist; block counts are taken
   from the samples and edge counts are inferred with a deliberately
   simple proportional-split algorithm — the "non-ideal" inference whose
   cost the paper quantifies in §5.1/6.5. *)

open Bfunc

type stats = {
  mutable matched_branches : int;
  mutable unmatched_branches : int;
  mutable matched_count : int;
  mutable unmatched_count : int;
  (* match decay from a stale profile (§7: profiles survive minor code
     drift): records whose offsets fall outside the named function, and
     distinct profile names with no function in the binary *)
  mutable stale_records : int;
  mutable unknown_funcs : int;
}

(* offset -> block lookup per function *)
let offset_maps (fb : Bfunc.t) =
  let starts = Hashtbl.create 32 in
  let spans = ref [] in
  Hashtbl.iter
    (fun _ b ->
      if b.b_off >= 0 then begin
        Hashtbl.replace starts b.b_off b.bl;
        spans := (b.b_off, b.bl) :: !spans
      end)
    fb.blocks;
  let arr = Array.of_list (List.sort compare !spans) in
  let containing off =
    (* greatest block start <= off *)
    let lo = ref 0 and hi = ref (Array.length arr - 1) in
    let res = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let o, l = arr.(mid) in
      if o <= off then begin
        res := Some l;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    !res
  in
  (starts, containing, arr)

let attach ctx (prof : Bolt_profile.Fdata.t) : stats =
  (* profile counts are saturating int64; CFG machinery runs on native
     ints, so clamp at the boundary *)
  let c64 = Bolt_profile.Fdata.clamp_int in
  let st =
    {
      matched_branches = 0;
      unmatched_branches = 0;
      matched_count = 0;
      unmatched_count = 0;
      stale_records = 0;
      unknown_funcs = 0;
    }
  in
  (* A stale profile names functions that no longer exist and offsets the
     code has drifted past.  Both degrade that function's profile to
     unmatched/partial — never an exception, never mis-attribution to
     whatever block happens to sit at the bad offset. *)
  let unknown = Hashtbl.create 16 in
  (* names in the symbol table that aren't optimizable functions (plt
     stubs, data symbols) are legitimately unattachable — only names
     absent from the binary altogether hint at a stale profile *)
  let known_syms = Hashtbl.create 64 in
  List.iter
    (fun (s : Bolt_obj.Types.symbol) -> Hashtbl.replace known_syms s.sym_name ())
    ctx.Context.exe.Bolt_obj.Objfile.symbols;
  let note_unknown name =
    if (not (Hashtbl.mem known_syms name)) && not (Hashtbl.mem unknown name)
    then begin
      Hashtbl.replace unknown name ();
      Diag.warnf ctx.Context.diag ~stage:"match-profile" ~func:name
        "profile names a function not in the binary (stale profile?)"
    end
  in
  let stale fb what off =
    st.stale_records <- st.stale_records + 1;
    Diag.warnf ctx.Context.diag ~stage:"match-profile" ~func:fb.fb_name
      "%s offset %d outside function of size %d (stale profile?)" what off
      fb.fb_size
  in
  let in_bounds fb off = off >= 0 && off < fb.fb_size in
  let maps = Hashtbl.create 64 in
  let map_of fb =
    match Hashtbl.find_opt maps fb.fb_name with
    | Some m -> m
    | None ->
        let m = offset_maps fb in
        Hashtbl.add maps fb.fb_name m;
        m
  in
  (* 1. taken-branch records -> edges; call records -> entry counts *)
  List.iter
    (fun (b : Bolt_profile.Fdata.branch) ->
      if b.br_from_func = b.br_to_func then begin
        match Context.func ctx b.br_from_func with
        | Some fb when fb.simple ->
            let drop () =
              st.unmatched_branches <- st.unmatched_branches + 1;
              st.unmatched_count <- st.unmatched_count + c64 b.br_count
            in
            if not (in_bounds fb b.br_from_off) then begin
              stale fb "branch source" b.br_from_off;
              drop ()
            end
            else if not (in_bounds fb b.br_to_off) then begin
              stale fb "branch target" b.br_to_off;
              drop ()
            end
            else begin
              let starts, containing, _ = map_of fb in
              let src = containing b.br_from_off in
              let dst = Hashtbl.find_opt starts b.br_to_off in
              match (src, dst) with
              | Some s, Some d ->
                  add_edge_count fb s d (c64 b.br_count) (c64 b.br_mispreds);
                  st.matched_branches <- st.matched_branches + 1;
                  st.matched_count <- st.matched_count + c64 b.br_count
              | _ -> drop ()
            end
        | Some _ -> ()
        | None ->
            note_unknown b.br_from_func;
            st.unmatched_branches <- st.unmatched_branches + 1;
            st.unmatched_count <- st.unmatched_count + c64 b.br_count
      end
      else if b.br_to_off = 0 then begin
        (* a call (or tail transfer) into the target's entry *)
        match Context.func ctx b.br_to_func with
        | Some fb -> fb.exec_count <- fb.exec_count + c64 b.br_count
        | None -> note_unknown b.br_to_func
      end)
    prof.branches;
  (* 2. fall-through ranges: block counts + non-taken edge counts *)
  List.iter
    (fun (r : Bolt_profile.Fdata.range) ->
      match Context.func ctx r.rg_func with
      | Some fb when fb.simple && not (in_bounds fb r.rg_start) ->
          stale fb "range start" r.rg_start
      | Some fb when fb.simple ->
          (* a range end past the function still profiles the prefix *)
          if not (in_bounds fb r.rg_end) then stale fb "range end" r.rg_end;
          let _, _, arr = map_of fb in
          let covered =
            Array.to_list arr
            |> List.filter (fun (o, _) -> o >= r.rg_start && o <= r.rg_end)
          in
          (* the block containing rg_start is covered too if it starts earlier *)
          let covered =
            let _, containing, _ = map_of fb in
            match containing r.rg_start with
            | Some l when not (List.exists (fun (_, l') -> l' = l) covered) ->
                ((-1), l) :: covered
            | _ -> covered
          in
          let rec pairs = function
            | (_, a) :: ((_, b) :: _ as rest) ->
                (* sequential flow between adjacent covered blocks *)
                let ba = block fb a in
                (match ba.term with
                | T_cond (_, _, fall) when fall = b ->
                    add_edge_count fb a b (c64 r.rg_count) 0
                | T_jump t when t = b -> add_edge_count fb a b (c64 r.rg_count) 0
                | _ -> ());
                pairs rest
            | _ -> ()
          in
          pairs covered;
          List.iter
            (fun (_, l) ->
              let b = block fb l in
              b.ecount <- b.ecount + c64 r.rg_count)
            covered
      | Some _ -> ()
      | None -> note_unknown r.rg_func)
    prof.ranges;
  (* 3. non-LBR: block counts from IP samples *)
  if not prof.lbr then
    List.iter
      (fun (s : Bolt_profile.Fdata.sample) ->
        match Context.func ctx s.sm_func with
        | Some fb when fb.simple && not (in_bounds fb s.sm_off) ->
            stale fb "sample" s.sm_off
        | Some fb when fb.simple -> (
            let _, containing, _ = map_of fb in
            match containing s.sm_off with
            | Some l ->
                let b = block fb l in
                b.ecount <- b.ecount + c64 s.sm_count
            | None -> ())
        | Some fb -> fb.exec_count <- fb.exec_count + c64 s.sm_count
        | None -> note_unknown s.sm_func)
      prof.samples;
  st.unknown_funcs <- Hashtbl.length unknown;
  st

(* Derive block execution counts from edges where ranges left gaps, then
   repair the flow equations. *)
let finalize ctx ~(lbr : bool) ~(trust_fallthrough : bool) =
  Context.iter_funcs ctx (fun fb ->
      if fb.simple then begin
        let inflow = Hashtbl.create 32 and outflow = Hashtbl.create 32 in
        let bump h k v =
          Hashtbl.replace h k (v + try Hashtbl.find h k with Not_found -> 0)
        in
        Hashtbl.iter
          (fun (s, d) (c, _) ->
            bump outflow s !c;
            bump inflow d !c)
          fb.edge_counts;
        Hashtbl.iter
          (fun l b ->
            let cand =
              max b.ecount
                (max
                   (try Hashtbl.find inflow l with Not_found -> 0)
                   (try Hashtbl.find outflow l with Not_found -> 0))
            in
            let cand = if l = fb.entry then max cand fb.exec_count else cand in
            b.ecount <- cand)
          fb.blocks;
        if fb.exec_count = 0 then fb.exec_count <- (block fb fb.entry).ecount;
        (* non-LBR inference: split each block's count across its successors
           proportionally to the successors' own sample counts *)
        if not lbr then
          Hashtbl.iter
            (fun l b ->
              let succs = successors fb b in
              match succs with
              | [] -> ()
              | [ s ] -> set_edge_count fb l s b.ecount
              | _ ->
                  let weights =
                    List.map (fun s -> (s, (block fb s).ecount + 1)) succs
                  in
                  let total = List.fold_left (fun a (_, w) -> a + w) 0 weights in
                  List.iter
                    (fun (s, w) -> set_edge_count fb l s (b.ecount * w / total))
                    weights)
            fb.blocks;
        (* §5.2 repair: put surplus flow on the fall-through edge *)
        if lbr && trust_fallthrough then
          Hashtbl.iter
            (fun l b ->
              match b.term with
              | T_cond (_, taken, fall) when taken <> fall ->
                  let t = edge_count fb l taken in
                  let f = edge_count fb l fall in
                  if b.ecount > t + f then
                    set_edge_count fb l fall (f + (b.ecount - t - f))
              | T_jump t ->
                  if b.ecount > edge_count fb l t then set_edge_count fb l t b.ecount
              | _ -> ())
            fb.blocks;
        (* profile accuracy: how much of the block flow the edges explain *)
        let total = Hashtbl.fold (fun _ b acc -> acc + b.ecount) fb.blocks 0 in
        let explained =
          Hashtbl.fold
            (fun l b acc ->
              let out = List.fold_left (fun a s -> a + edge_count fb l s) 0 (successors fb b) in
              acc + min b.ecount out)
            fb.blocks 0
        in
        fb.profile_acc <- (if total = 0 then 1.0 else float_of_int explained /. float_of_int total)
      end)
