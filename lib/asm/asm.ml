(* The BISA assembler: structured instruction streams to relocatable
   BELF objects.

   Responsibilities mirroring a real assembler:

   - branch relaxation: direct branches to labels within the same function
     start in their 2-byte form and are widened to the 32-bit form only
     when the displacement demands it (the fixpoint is monotone);
   - relocation emission for anything that cannot be resolved locally:
     calls and jumps to other functions (when each function gets its own
     section), absolute references to globals and jump tables, and
     PIC jump-table difference entries;
   - deliberately resolving what a real compiler resolves internally:
     with [u_function_sections = false] all functions of a unit share one
     .text section and cross-function calls inside the unit are patched at
     assembly time with NO relocation records, reproducing the invisible
     local-call references the BOLT paper calls out;
   - frame (CFI) and exception (LSDA) table generation from inline
     annotations. *)

open Bolt_isa
open Bolt_obj
open Types

type aitem =
  | A_label of string
  | A_insn of Insn.t
  | A_insn_lp of Insn.t * string (* instruction covered by a landing pad *)
  | A_cfi of cfi_op
  | A_align of int
  | A_loc of string * int (* current source file/line for following insns *)

type afunc = {
  af_name : string;
  af_global : bool;
  af_align : int;
  af_emit_fde : bool; (* hand-written assembly may omit frame info *)
  af_body : aitem list;
}

type ditem =
  | D_label of string * bool (* name, global *)
  | D_quad of Insn.value
  | D_quad_pic of string * int * string (* target sym, addend, base label *)
  | D_space of int
  | D_align of int

type unit_ = {
  u_funcs : afunc list;
  u_rodata : ditem list;
  u_data : ditem list;
  u_bss : (string * int * bool) list; (* name, size, global *)
  u_function_sections : bool;
}

let empty_unit =
  { u_funcs = []; u_rodata = []; u_data = []; u_bss = []; u_function_sections = true }

exception Asm_error of string

let err fmt = Fmt.kstr (fun s -> raise (Asm_error s)) fmt

(* ---- per-function assembly ---- *)

type fout = {
  fo_bytes : Bytes.t;
  fo_size : int;
  fo_relocs : (int * reloc_kind * string * int * int) list;
      (* field offset (fn-relative), kind, sym, addend, rel_end *)
  fo_cfi : (int * cfi_op) list;
  fo_lsda : lsda_entry list; (* pads resolved to local labels *)
  fo_lsda_sym : (int * int * string) list; (* start, len, pad label *)
  fo_dbg : (int * string * int) list;
  fo_labels : (string * int) list; (* fn-local labels, for tests *)
}

(* Items with branch widths chosen; returns offsets of each item. *)
let layout_function f =
  let items = Array.of_list f.af_body in
  let n = Array.length items in
  (* Local label table: name -> item index. *)
  let label_idx = Hashtbl.create 16 in
  Array.iteri
    (fun i it ->
      match it with
      | A_label l ->
          if Hashtbl.mem label_idx l then err "duplicate label %s in %s" l f.af_name;
          Hashtbl.add label_idx l i
      | _ -> ())
    items;
  let is_local = Hashtbl.mem label_idx in
  (* Width choice per item: true = wide.  Branches to non-local symbols are
     always wide (they need a 32-bit relocation). *)
  let wide = Array.make n false in
  Array.iteri
    (fun i it ->
      match it with
      | A_insn insn | A_insn_lp (insn, _) -> (
          match insn with
          | Insn.Jmp (Sym (s, _), _) | Insn.Jcc (_, Sym (s, _), _) ->
              if not (is_local s) then wide.(i) <- true
          | Insn.Jmp (_, w) | Insn.Jcc (_, _, w) -> if w = Insn.W32 then wide.(i) <- true
          | _ -> ())
      | _ -> ())
    items;
  let widen insn w =
    match insn with
    | Insn.Jmp (v, _) -> Insn.Jmp (v, w)
    | Insn.Jcc (c, v, _) -> Insn.Jcc (c, v, w)
    | i -> i
  in
  let item_size off i it =
    match it with
    | A_label _ | A_cfi _ | A_loc _ -> 0
    | A_align a ->
        if a <= 1 then 0
        else
          let pad = (a - (off mod a)) mod a in
          pad
    | A_insn insn | A_insn_lp (insn, _) ->
        Insn.size (widen insn (if wide.(i) then Insn.W32 else Insn.W8))
  in
  let offsets = Array.make (n + 1) 0 in
  let compute_offsets () =
    let off = ref 0 in
    Array.iteri
      (fun i it ->
        offsets.(i) <- !off;
        off := !off + item_size !off i it)
      items;
    offsets.(n) <- !off
  in
  let changed = ref true in
  while !changed do
    changed := false;
    compute_offsets ();
    Array.iteri
      (fun i it ->
        match it with
        | (A_insn insn | A_insn_lp (insn, _)) when not wide.(i) -> (
            match insn with
            | Insn.Jmp (Sym (s, a), _) | Insn.Jcc (_, Sym (s, a), _)
              when is_local s ->
                let ti = Hashtbl.find label_idx s in
                let target = offsets.(ti) + a in
                let end_of = offsets.(i) + item_size offsets.(i) i it in
                let rel = target - end_of in
                if not (Bolt_isa.Codec.fits_i8 rel) then (
                  wide.(i) <- true;
                  changed := true)
            | _ -> ())
        | _ -> ())
      items
  done;
  compute_offsets ();
  (items, offsets, wide, label_idx)

(* [resolve_in_unit] maps a symbol defined elsewhere in the same section to
   its offset (used when a unit is assembled without function sections). *)
let assemble_function ?(resolve_in_unit = fun _ -> None) ~base f =
  let items, offsets, wide, label_idx = layout_function f in
  let n = Array.length items in
  let size = offsets.(n) in
  let bytes = Bytes.make size '\x02' (* single-byte nops *) in
  let relocs = ref [] in
  let cfi = ref [] in
  let lsda = ref [] in
  let dbg = ref [] in
  let cur_loc = ref None in
  let note_loc off =
    match !cur_loc with
    | None -> ()
    | Some (f, l) -> (
        match !dbg with
        | (_, f', l') :: _ when f' = f && l' = l -> ()
        | _ -> dbg := (off, f, l) :: !dbg)
  in
  let lsda_sym = ref [] in
  let lsda_open = ref None (* (label, start) of the range being grown *) in
  let close_lsda upto =
    match !lsda_open with
    | None -> ()
    | Some (pad_label, start) ->
        lsda_sym := (start, upto - start, pad_label) :: !lsda_sym;
        (match Hashtbl.find_opt label_idx pad_label with
        | Some i ->
            lsda :=
              {
                lsda_start = start;
                lsda_len = upto - start;
                lsda_pad = offsets.(i);
                lsda_action = 1;
              }
              :: !lsda
        | None ->
            (* pad lives outside this fragment; the caller resolves it *)
            ());
        lsda_open := None
  in
  let local_target s a =
    match Hashtbl.find_opt label_idx s with
    | Some i -> Some (offsets.(i) + a)
    | None -> ( match resolve_in_unit s with Some o -> Some (o - base + a) | None -> None)
  in
  let emit_insn i insn =
    let off = offsets.(i) in
    let w = if wide.(i) then Insn.W32 else Insn.W8 in
    let insn =
      match insn with
      | Insn.Jmp (v, _) -> Insn.Jmp (v, w)
      | Insn.Jcc (c, v, _) -> Insn.Jcc (c, v, w)
      | x -> x
    in
    let isize = Insn.size insn in
    let end_of = off + isize in
    (* Resolve or relocate the symbolic operand, if any. *)
    let resolved =
      match Codec.operand_kind insn with
      | Codec.Op_none -> insn
      | Codec.Op_rel (fo, fw) -> (
          let v =
            match insn with
            | Insn.Jmp (v, _) | Insn.Jcc (_, v, _) | Insn.Call v | Insn.Lea_rel (_, v) -> v
            | _ -> err "unexpected rel operand in %s" (Insn.to_string insn)
          in
          match v with
          | Insn.Imm _ -> insn
          | Insn.Sym (s, a) -> (
              match local_target s a with
              | Some t -> Insn.with_value insn (Insn.Imm (t - end_of))
              | None ->
                  let kind = if fw = 1 then Rel8 else Rel32 in
                  relocs := (off + fo, kind, s, a, isize - fo) :: !relocs;
                  Insn.with_value insn (Insn.Imm 0)))
      | Codec.Op_abs (fo, fw) -> (
          let v =
            match insn with
            | Insn.Mov_ri (_, v, _)
            | Insn.Load_abs (_, v)
            | Insn.Store_abs (v, _)
            | Insn.Lea (_, v)
            | Insn.Call_mem v
            | Insn.Jmp_mem v
            | Insn.Alu_ri (_, _, v) ->
                v
            | _ -> err "unexpected abs operand in %s" (Insn.to_string insn)
          in
          match v with
          | Insn.Imm _ -> insn
          | Insn.Sym (s, a) ->
              let kind = if fw = 8 then Abs64 else Abs32 in
              relocs := (off + fo, kind, s, a, 0) :: !relocs;
              Insn.with_value insn (Insn.Imm 0))
    in
    ignore (Codec.encode_into bytes off resolved)
  in
  Array.iteri
    (fun i it ->
      match it with
      | A_label _ -> ()
      | A_cfi op -> cfi := (offsets.(i), op) :: !cfi
      | A_align _ ->
          (* pad with single-byte nops: bytes are pre-filled with 0x02 *)
          ()
      | A_loc (f, l) -> cur_loc := Some (f, l)
      | A_insn insn ->
          close_lsda offsets.(i);
          note_loc offsets.(i);
          emit_insn i insn
      | A_insn_lp (insn, pad) ->
          (match !lsda_open with
          | Some (p, _) when p = pad -> ()
          | Some _ ->
              close_lsda offsets.(i);
              lsda_open := Some (pad, offsets.(i))
          | None -> lsda_open := Some (pad, offsets.(i)));
          note_loc offsets.(i);
          emit_insn i insn)
    items;
  close_lsda size;
  let labels =
    Hashtbl.fold (fun l i acc -> (l, offsets.(i)) :: acc) label_idx []
  in
  {
    fo_bytes = bytes;
    fo_size = size;
    fo_relocs = List.rev !relocs;
    fo_cfi = List.rev !cfi;
    fo_lsda = List.rev !lsda;
    fo_lsda_sym = List.rev !lsda_sym;
    fo_dbg = List.rev !dbg;
    fo_labels = labels;
  }

(* ---- data sections ---- *)

(* [resolve] maps a function-internal label (e.g. a jump-table target) to
   (function symbol, offset) so data references can be expressed as
   relocations against the function symbol with an addend — exactly how a
   real assembler lowers .L labels away. *)
let assemble_data ?(resolve = fun _ -> None) ~sec_name items =
  let buf = Buffer.create 256 in
  let relocs = ref [] in
  let syms = ref [] in
  List.iter
    (fun it ->
      let off = Buffer.length buf in
      match it with
      | D_label (name, global) -> syms := (name, off, global) :: !syms
      | D_quad (Insn.Imm v) -> Buffer.add_int64_le buf (Int64.of_int v)
      | D_quad (Insn.Sym (s, a)) ->
          let s, a =
            match resolve s with Some (fn, off') -> (fn, off' + a) | None -> (s, a)
          in
          relocs :=
            {
              rel_section = sec_name;
              rel_offset = off;
              rel_kind = Abs64;
              rel_sym = s;
              rel_addend = a;
              rel_end = 0;
              rel_pic_base = "";
            }
            :: !relocs;
          Buffer.add_string buf (String.make 8 '\x00')
      | D_quad_pic (s, a, base) ->
          let s, a =
            match resolve s with Some (fn, off') -> (fn, off' + a) | None -> (s, a)
          in
          relocs :=
            {
              rel_section = sec_name;
              rel_offset = off;
              rel_kind = Abs64;
              rel_sym = s;
              rel_addend = a;
              rel_end = 0;
              rel_pic_base = base;
            }
            :: !relocs;
          Buffer.add_string buf (String.make 8 '\x00')
      | D_space n -> Buffer.add_string buf (String.make n '\x00')
      | D_align a ->
          let pad = (a - (off mod a)) mod a in
          Buffer.add_string buf (String.make pad '\x00'))
    items;
  (Bytes.of_string (Buffer.contents buf), List.rev !relocs, List.rev !syms)

(* ---- whole unit ---- *)

let assemble (u : unit_) : Objfile.t =
  let sections = ref [] in
  let fn_labels : (string, string * int) Hashtbl.t = Hashtbl.create 64 in
  let symbols = ref [] in
  let relocs = ref [] in
  let fdes = ref [] in
  let lsdas = ref [] in
  let dbgs = ref [] in
  let add_func_output ~sec ~base f (out : fout) =
    List.iter
      (fun (l, off) -> Hashtbl.replace fn_labels l (f.af_name, off))
      out.fo_labels;
    symbols :=
      {
        sym_name = f.af_name;
        sym_kind = Func;
        sym_bind = (if f.af_global then Global else Local);
        sym_section = sec;
        sym_value = base;
        sym_size = out.fo_size;
      }
      :: !symbols;
    List.iter
      (fun (off, kind, s, a, rel_end) ->
        relocs :=
          {
            rel_section = sec;
            rel_offset = base + off;
            rel_kind = kind;
            rel_sym = s;
            rel_addend = a;
            rel_end;
            rel_pic_base = "";
          }
          :: !relocs)
      out.fo_relocs;
    if f.af_emit_fde then
      fdes :=
        { fde_func = f.af_name; fde_addr = base; fde_size = out.fo_size; fde_cfi = out.fo_cfi }
        :: !fdes;
    if out.fo_lsda <> [] then
      lsdas := { lsda_func = f.af_name; lsda_fn_addr = base; lsda_entries = out.fo_lsda } :: !lsdas;
    if out.fo_dbg <> [] then
      dbgs := { dbg_func = f.af_name; dbg_addr = base; dbg_entries = out.fo_dbg } :: !dbgs
  in
  if u.u_function_sections then
    List.iter
      (fun f ->
        let out = assemble_function ~base:0 f in
        let sec = ".text." ^ f.af_name in
        sections :=
          {
            sec_name = sec;
            sec_kind = Text;
            sec_addr = 0;
            sec_data = out.fo_bytes;
            sec_size = out.fo_size;
          }
          :: !sections;
        add_func_output ~sec ~base:0 f out)
      u.u_funcs
  else begin
    (* Single .text: lay out functions sequentially, then resolve
       cross-function references inside the unit without relocations. *)
    let align a off = ((off + a - 1) / a) * a in
    let bases = Hashtbl.create 16 in
    let off = ref 0 in
    List.iter
      (fun f ->
        off := align (max 1 f.af_align) !off;
        Hashtbl.add bases f.af_name !off;
        (* account for size via a dry-run layout *)
        let _, offsets, _, _ = layout_function f in
        off := !off + offsets.(Array.length offsets - 1))
      u.u_funcs;
    let total = !off in
    let text = Bytes.make total '\x02' in
    let resolve_in_unit s = Hashtbl.find_opt bases s in
    List.iter
      (fun f ->
        let base = Hashtbl.find bases f.af_name in
        let out = assemble_function ~resolve_in_unit ~base f in
        Bytes.blit out.fo_bytes 0 text base out.fo_size;
        add_func_output ~sec:".text" ~base f out)
      u.u_funcs;
    sections :=
      [ { sec_name = ".text"; sec_kind = Text; sec_addr = 0; sec_data = text; sec_size = total } ]
  end;
  let add_data ~name ~kind items =
    if items <> [] then begin
      let resolve l = Hashtbl.find_opt fn_labels l in
      let data, rs, syms = assemble_data ~resolve ~sec_name:name items in
      sections :=
        { sec_name = name; sec_kind = kind; sec_addr = 0; sec_data = data; sec_size = Bytes.length data }
        :: !sections;
      relocs := List.rev_append (List.rev rs) !relocs;
      List.iter
        (fun (s, off, global) ->
          symbols :=
            {
              sym_name = s;
              sym_kind = Object;
              sym_bind = (if global then Global else Local);
              sym_section = name;
              sym_value = off;
              sym_size = 0;
            }
            :: !symbols)
        syms
    end
  in
  add_data ~name:".rodata" ~kind:Rodata u.u_rodata;
  add_data ~name:".data" ~kind:Data u.u_data;
  if u.u_bss <> [] then begin
    let off = ref 0 in
    let syms =
      List.map
        (fun (name, size, global) ->
          let o = !off in
          off := !off + size;
          (name, o, size, global))
        u.u_bss
    in
    sections :=
      { sec_name = ".bss"; sec_kind = Bss; sec_addr = 0; sec_data = Bytes.empty; sec_size = !off }
      :: !sections;
    List.iter
      (fun (name, o, size, global) ->
        symbols :=
          {
            sym_name = name;
            sym_kind = Object;
            sym_bind = (if global then Global else Local);
            sym_section = ".bss";
            sym_value = o;
            sym_size = size;
          }
          :: !symbols)
      syms
  end;
  {
    Objfile.kind = Objfile.Object;
    entry = 0;
    build_id = "";
    sections = List.rev !sections;
    symbols = List.rev !symbols;
    relocs = List.rev !relocs;
    fdes = List.rev !fdes;
    lsdas = List.rev !lsdas;
    dbgs = List.rev !dbgs;
    fingerprints = [];
  }
