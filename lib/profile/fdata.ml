(* BOLT's profile format (the fdata/YAML analog): function-relative branch
   records, fall-through ranges and plain IP samples.

   Produced by [Perf2bolt] from raw simulator samples; consumed by the
   rewriter's profile matcher.  Text format, one record per line:

     B <from_func> <from_off> <to_func> <to_off> <count> <mispreds>
     F <func> <start_off> <end_off> <count>        (LBR fall-through range)
     S <func> <off> <count>                        (non-LBR IP sample)

   Function names never contain spaces by construction.

   Profiles are data about a binary, not part of it; a malformed or stale
   profile must degrade optimization quality, never correctness.  Parsing
   is therefore lenient by default: malformed and unknown records are
   skipped with a warning each.  [~strict:true] restores the hard
   [Bad_format] failure for tooling that wants it. *)

type branch = {
  br_from_func : string;
  br_from_off : int;
  br_to_func : string;
  br_to_off : int;
  br_count : int;
  br_mispreds : int;
}

type range = { rg_func : string; rg_start : int; rg_end : int; rg_count : int }

type sample = { sm_func : string; sm_off : int; sm_count : int }

type t = {
  lbr : bool;
  branches : branch list;
  ranges : range list;
  samples : sample list;
  total_samples : int;
}

let empty = { lbr = true; branches = []; ranges = []; samples = []; total_samples = 0 }

(* Aggregate count of events attributed to a function, used for function
   hotness by the reorder-functions pass. *)
let func_events t =
  let h = Hashtbl.create 64 in
  let add f c = Hashtbl.replace h f (c + try Hashtbl.find h f with Not_found -> 0) in
  List.iter (fun b -> add b.br_from_func b.br_count) t.branches;
  List.iter (fun r -> add r.rg_func r.rg_count) t.ranges;
  List.iter (fun s -> add s.sm_func s.sm_count) t.samples;
  h

let to_string t =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "mode %s\n" (if t.lbr then "lbr" else "sample"));
  List.iter
    (fun x ->
      Buffer.add_string b
        (Printf.sprintf "B %s %d %s %d %d %d\n" x.br_from_func x.br_from_off
           x.br_to_func x.br_to_off x.br_count x.br_mispreds))
    t.branches;
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "F %s %d %d %d\n" r.rg_func r.rg_start r.rg_end r.rg_count))
    t.ranges;
  List.iter
    (fun s ->
      Buffer.add_string b (Printf.sprintf "S %s %d %d\n" s.sm_func s.sm_off s.sm_count))
    t.samples;
  Buffer.contents b

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

exception Bad_format of string

type warning = { w_line : int; w_text : string; w_reason : string }

let pp_warning ppf w =
  Fmt.pf ppf "fdata line %d: %s (%S)" w.w_line w.w_reason w.w_text

(* Malformed lines raise [Reject] internally; [parse] turns that into a
   warning (lenient) or [Bad_format] (strict). *)
exception Reject of string

let int_field what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> raise (Reject (Printf.sprintf "%s is not an integer: %s" what s))

let non_negative what v =
  if v < 0 then raise (Reject (Printf.sprintf "%s is negative: %d" what v));
  v

let parse ?(strict = false) text : t * warning list =
  let branches = ref [] in
  let ranges = ref [] in
  let samples = ref [] in
  let lbr = ref true in
  let warnings = ref [] in
  let reject lineno line reason =
    if strict then raise (Bad_format (Printf.sprintf "line %d: %s: %s" lineno reason line));
    warnings := { w_line = lineno; w_text = line; w_reason = reason } :: !warnings
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        (* tolerate CRLF profiles copied across systems *)
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      try
        match String.split_on_char ' ' line with
        | [ "mode"; "lbr" ] -> lbr := true
        | [ "mode"; "sample" ] -> lbr := false
        | [ "mode"; m ] -> raise (Reject (Printf.sprintf "unknown mode %s" m))
        | [ "B"; ff; fo; tf; to_; c; m ] ->
            branches :=
              {
                br_from_func = ff;
                br_from_off = non_negative "from offset" (int_field "from offset" fo);
                br_to_func = tf;
                br_to_off = non_negative "to offset" (int_field "to offset" to_);
                br_count = non_negative "count" (int_field "count" c);
                br_mispreds = non_negative "mispredicts" (int_field "mispredicts" m);
              }
              :: !branches
        | [ "F"; f; s; e; c ] ->
            let rg_start = non_negative "range start" (int_field "range start" s) in
            let rg_end = non_negative "range end" (int_field "range end" e) in
            if rg_end < rg_start then
              raise (Reject (Printf.sprintf "range end %d before start %d" rg_end rg_start));
            ranges :=
              {
                rg_func = f;
                rg_start;
                rg_end;
                rg_count = non_negative "count" (int_field "count" c);
              }
              :: !ranges
        | [ "S"; f; o; c ] ->
            samples :=
              {
                sm_func = f;
                sm_off = non_negative "offset" (int_field "offset" o);
                sm_count = non_negative "count" (int_field "count" c);
              }
              :: !samples
        | [] | [ "" ] -> ()
        | ("B" | "F" | "S" | "mode") :: _ -> raise (Reject "wrong field count")
        | _ -> raise (Reject "unknown record tag")
      with Reject reason -> reject lineno line reason)
    lines;
  let total =
    List.fold_left (fun a (b : branch) -> a + b.br_count) 0 !branches
    + List.fold_left (fun a s -> a + s.sm_count) 0 !samples
  in
  ( {
      lbr = !lbr;
      branches = List.rev !branches;
      ranges = List.rev !ranges;
      samples = List.rev !samples;
      total_samples = total;
    },
    List.rev !warnings )

let load_with_warnings ?strict path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse ?strict text

let load ?strict path = fst (load_with_warnings ?strict path)
