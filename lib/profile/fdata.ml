(* BOLT's profile format (the fdata/YAML analog): function-relative branch
   records, fall-through ranges and plain IP samples.

   Produced by [Perf2bolt] from raw simulator samples; consumed by the
   rewriter's profile matcher and folded across hosts by the fleet merger
   (lib/fleet).  Text format, one record per line:

     mode lbr|sample
     H <key> <value>                               (provenance header)
     B <from_func> <from_off> <to_func> <to_off> <count> <mispreds>
     F <func> <start_off> <end_off> <count>        (LBR fall-through range)
     S <func> <off> <count>                        (non-LBR IP sample)

   Function names never contain spaces by construction.

   Counts are 64-bit and every accumulation saturates at [Int64.max_int]:
   a fleet-wide merge of thousands of shards must degrade to a pinned
   counter, never wrap into garbage (or worse, a negative weight).

   Profiles are data about a binary, not part of it; a malformed or stale
   profile must degrade optimization quality, never correctness.  Parsing
   is therefore lenient by default: malformed and unknown records are
   skipped with a warning each.  [~strict:true] restores the hard
   [Bad_format] failure for tooling that wants it.  Header records are
   new; old readers skip them as unknown tags, old files simply have no
   header. *)

(* ---- saturating 64-bit arithmetic ---- *)

(* [sat_add] is commutative and, over non-negative operands, associative:
   min(max_int, a+b+c) regardless of grouping.  The fleet merger's
   order-independence proof leans on exactly this. *)
let sat_add (a : int64) (b : int64) : int64 =
  if a > Int64.sub Int64.max_int b then Int64.max_int else Int64.add a b

(* Scale a count by a non-negative float factor (shard weight x decay),
   rounding to nearest, saturating on overflow.

   The factor-1.0 case short-circuits to the exact count: going through
   the float path would round counts within 1024 of [Int64.max_int] up to
   2^63 ([Int64.to_float] keeps 53 mantissa bits) and return a wrongly
   saturated [max_int] for an identity scale. *)
let sat_scale (c : int64) (f : float) : int64 =
  if f <= 0.0 then 0L
  else if f = 1.0 then c
  else
    let x = Float.round (Int64.to_float c *. f) in
    if x >= Int64.to_float Int64.max_int then Int64.max_int else Int64.of_float x

(* Clamp to a native int for consumers feeding int-based machinery
   (edge counts, call-graph weights).  On 64-bit OCaml this only bites
   within a factor of two of saturation. *)
let clamp_int (c : int64) : int =
  if c > Int64.of_int max_int then max_int
  else if c < 0L then 0
  else Int64.to_int c

(* ---- records ---- *)

type branch = {
  br_from_func : string;
  br_from_off : int;
  br_to_func : string;
  br_to_off : int;
  br_count : int64;
  br_mispreds : int64;
}

type range = { rg_func : string; rg_start : int; rg_end : int; rg_count : int64 }

type sample = { sm_func : string; sm_off : int; sm_count : int64 }

(* Shard provenance, carried in `H` records: which host produced the
   profile, against which binary revision, when, and how many raw events
   went into it.  [hd_weight] is a merge-time knob (relative trust /
   traffic share of the host), default 1. *)
type header = {
  hd_host : string;
  hd_build_id : string; (* hex build-id of the profiled binary; "" unknown *)
  hd_timestamp : int; (* seconds since the fleet epoch; 0 unknown *)
  hd_events : int64; (* raw hardware events behind this shard *)
  hd_weight : float;
}

let no_header =
  { hd_host = ""; hd_build_id = ""; hd_timestamp = 0; hd_events = 0L; hd_weight = 1.0 }

type t = {
  lbr : bool;
  header : header option;
  branches : branch list;
  ranges : range list;
  samples : sample list;
  total_samples : int64;
  fingerprints : Bolt_obj.Fingerprint.func list;
      (* structural fingerprints of the binary the profile was collected
         on, copied from its BELF fingerprint table at conversion time.
         [] for old shards; the raw material for stale-profile matching. *)
}

let empty =
  {
    lbr = true;
    header = None;
    branches = [];
    ranges = [];
    samples = [];
    total_samples = 0L;
    fingerprints = [];
  }

(* Aggregate count of events attributed to a function, used for function
   hotness by the reorder-functions pass. *)
let func_events t =
  let h = Hashtbl.create 64 in
  let add f c = Hashtbl.replace h f (sat_add c (try Hashtbl.find h f with Not_found -> 0L)) in
  List.iter (fun b -> add b.br_from_func b.br_count) t.branches;
  List.iter (fun r -> add r.rg_func r.rg_count) t.ranges;
  List.iter (fun s -> add s.sm_func s.sm_count) t.samples;
  h

(* ---- canonical form ---- *)

(* Sort records and aggregate duplicates (same endpoints -> counts
   saturating-added).  Two profiles holding the same multiset of events
   normalize to the same value — and therefore the same bytes — which is
   what makes merged output independent of shard order and -j. *)
let normalize t =
  let tbl = Hashtbl.create 256 in
  let bump k c m =
    match Hashtbl.find_opt tbl k with
    | Some (c0, m0) -> Hashtbl.replace tbl k (sat_add c0 c, sat_add m0 m)
    | None -> Hashtbl.add tbl k (c, m)
  in
  List.iter
    (fun b ->
      bump (`B (b.br_from_func, b.br_from_off, b.br_to_func, b.br_to_off)) b.br_count
        b.br_mispreds)
    t.branches;
  List.iter (fun r -> bump (`F (r.rg_func, r.rg_start, r.rg_end)) r.rg_count 0L) t.ranges;
  List.iter (fun s -> bump (`S (s.sm_func, s.sm_off)) s.sm_count 0L) t.samples;
  let branches = ref [] and ranges = ref [] and samples = ref [] in
  Hashtbl.iter
    (fun k (c, m) ->
      match k with
      | `B (ff, fo, tf, to_) ->
          branches :=
            {
              br_from_func = ff;
              br_from_off = fo;
              br_to_func = tf;
              br_to_off = to_;
              br_count = c;
              br_mispreds = m;
            }
            :: !branches
      | `F (f, s, e) -> ranges := { rg_func = f; rg_start = s; rg_end = e; rg_count = c } :: !ranges
      | `S (f, o) -> samples := { sm_func = f; sm_off = o; sm_count = c } :: !samples)
    tbl;
  let total =
    List.fold_left (fun a (b : branch) -> sat_add a b.br_count) 0L !branches
    |> fun acc -> List.fold_left (fun a (s : sample) -> sat_add a s.sm_count) acc !samples
  in
  {
    t with
    branches = List.sort compare !branches;
    ranges = List.sort compare !ranges;
    samples = List.sort compare !samples;
    total_samples = total;
    fingerprints = List.sort_uniq compare t.fingerprints;
  }

(* ---- text format ---- *)

module Buf = Bolt_obj.Buf

(* Emission goes through the iocore arena writer with hand-rolled
   decimal/hex emitters; a fleet-sized dump is dominated by B/F/S lines
   and must not pay Printf per record.  [to_string_legacy] below keeps
   the original Printf implementation; the parity suite checks the two
   produce identical bytes. *)
let to_string t =
  let b = Buf.writer () in
  Buf.add_string b (if t.lbr then "mode lbr\n" else "mode sample\n");
  (match t.header with
  | Some h ->
      if h.hd_host <> "" then Buf.add_string b (Printf.sprintf "H host %s\n" h.hd_host);
      if h.hd_build_id <> "" then
        Buf.add_string b (Printf.sprintf "H build-id %s\n" h.hd_build_id);
      if h.hd_timestamp <> 0 then
        Buf.add_string b (Printf.sprintf "H timestamp %d\n" h.hd_timestamp);
      if h.hd_events <> 0L then
        Buf.add_string b (Printf.sprintf "H events %Ld\n" h.hd_events);
      if h.hd_weight <> 1.0 then
        Buf.add_string b (Printf.sprintf "H weight %h\n" h.hd_weight)
  | None -> ());
  List.iter
    (fun (f : Bolt_obj.Fingerprint.func) ->
      Buf.add_string b "G ";
      Buf.add_string b f.fp_func;
      Buf.add_char b ' ';
      Buf.dec b f.fp_size;
      Buf.add_char b ' ';
      Buf.hex b f.fp_opcode_hash;
      Buf.add_char b ' ';
      Buf.hex b f.fp_cfg_hash;
      Buf.add_char b ' ';
      Buf.add_string b
        (if f.fp_calls = [] then "-" else String.concat "," f.fp_calls);
      Buf.add_char b '\n';
      List.iter
        (fun (blk : Bolt_obj.Fingerprint.block) ->
          Buf.add_string b "GB ";
          Buf.add_string b f.fp_func;
          Buf.add_char b ' ';
          Buf.dec b blk.bk_off;
          Buf.add_char b ' ';
          Buf.dec b blk.bk_size;
          Buf.add_char b ' ';
          Buf.hex b blk.bk_opcode_hash;
          Buf.add_char b ' ';
          Buf.hex b blk.bk_shape_hash;
          Buf.add_char b '\n')
        f.fp_blocks)
    t.fingerprints;
  List.iter
    (fun x ->
      Buf.add_string b "B ";
      Buf.add_string b x.br_from_func;
      Buf.add_char b ' ';
      Buf.dec b x.br_from_off;
      Buf.add_char b ' ';
      Buf.add_string b x.br_to_func;
      Buf.add_char b ' ';
      Buf.dec b x.br_to_off;
      Buf.add_char b ' ';
      Buf.dec64 b x.br_count;
      Buf.add_char b ' ';
      Buf.dec64 b x.br_mispreds;
      Buf.add_char b '\n')
    t.branches;
  List.iter
    (fun r ->
      Buf.add_string b "F ";
      Buf.add_string b r.rg_func;
      Buf.add_char b ' ';
      Buf.dec b r.rg_start;
      Buf.add_char b ' ';
      Buf.dec b r.rg_end;
      Buf.add_char b ' ';
      Buf.dec64 b r.rg_count;
      Buf.add_char b '\n')
    t.ranges;
  List.iter
    (fun s ->
      Buf.add_string b "S ";
      Buf.add_string b s.sm_func;
      Buf.add_char b ' ';
      Buf.dec b s.sm_off;
      Buf.add_char b ' ';
      Buf.dec64 b s.sm_count;
      Buf.add_char b '\n')
    t.samples;
  Buf.contents b

(* The pre-iocore emitter, verbatim: the oracle [to_string] is checked
   against and the baseline the iocore bench measures. *)
let to_string_legacy t =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "mode %s\n" (if t.lbr then "lbr" else "sample"));
  (match t.header with
  | Some h ->
      if h.hd_host <> "" then Buffer.add_string b (Printf.sprintf "H host %s\n" h.hd_host);
      if h.hd_build_id <> "" then
        Buffer.add_string b (Printf.sprintf "H build-id %s\n" h.hd_build_id);
      if h.hd_timestamp <> 0 then
        Buffer.add_string b (Printf.sprintf "H timestamp %d\n" h.hd_timestamp);
      if h.hd_events <> 0L then
        Buffer.add_string b (Printf.sprintf "H events %Ld\n" h.hd_events);
      if h.hd_weight <> 1.0 then
        Buffer.add_string b (Printf.sprintf "H weight %h\n" h.hd_weight)
  | None -> ());
  (* G/GB: fingerprints of the profiled binary, for stale matching.  Old
     readers skip them as unknown tags; profiles without them just have
     no G lines. *)
  List.iter
    (fun (f : Bolt_obj.Fingerprint.func) ->
      Buffer.add_string b
        (Printf.sprintf "G %s %d %s %s %s\n" f.fp_func f.fp_size
           (Bolt_obj.Fingerprint.to_hex f.fp_opcode_hash)
           (Bolt_obj.Fingerprint.to_hex f.fp_cfg_hash)
           (if f.fp_calls = [] then "-" else String.concat "," f.fp_calls));
      List.iter
        (fun (blk : Bolt_obj.Fingerprint.block) ->
          Buffer.add_string b
            (Printf.sprintf "GB %s %d %d %s %s\n" f.fp_func blk.bk_off
               blk.bk_size
               (Bolt_obj.Fingerprint.to_hex blk.bk_opcode_hash)
               (Bolt_obj.Fingerprint.to_hex blk.bk_shape_hash)))
        f.fp_blocks)
    t.fingerprints;
  List.iter
    (fun x ->
      Buffer.add_string b
        (Printf.sprintf "B %s %d %s %d %Ld %Ld\n" x.br_from_func x.br_from_off
           x.br_to_func x.br_to_off x.br_count x.br_mispreds))
    t.branches;
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "F %s %d %d %Ld\n" r.rg_func r.rg_start r.rg_end r.rg_count))
    t.ranges;
  List.iter
    (fun s ->
      Buffer.add_string b (Printf.sprintf "S %s %d %Ld\n" s.sm_func s.sm_off s.sm_count))
    t.samples;
  Buffer.contents b

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

exception Bad_format of string

type warning = { w_line : int; w_text : string; w_reason : string }

let pp_warning ppf w =
  (* the "+K more skipped" summary carries no line of its own *)
  if w.w_line = 0 && w.w_text = "" then Fmt.pf ppf "fdata: %s" w.w_reason
  else Fmt.pf ppf "fdata line %d: %s (%S)" w.w_line w.w_reason w.w_text

(* Malformed lines raise [Reject] internally; [parse] turns that into a
   warning (lenient) or [Bad_format] (strict). *)
exception Reject of string

let int_field what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> raise (Reject (Printf.sprintf "%s is not an integer: %s" what s))

let count_field what s =
  match Int64.of_string_opt s with
  | Some v when v >= 0L -> v
  | Some v -> raise (Reject (Printf.sprintf "%s is negative: %Ld" what v))
  | None -> raise (Reject (Printf.sprintf "%s is not an integer: %s" what s))

let non_negative what v =
  if v < 0 then raise (Reject (Printf.sprintf "%s is negative: %d" what v));
  v

let hash_field what s =
  match Bolt_obj.Fingerprint.of_hex s with
  | Some v -> v
  | None -> raise (Reject (Printf.sprintf "%s is not a hex hash: %s" what s))

(* The pre-iocore parser, verbatim: [String.split_on_char] per line and
   per field.  Kept as the parity oracle and the bench baseline. *)
let parse_legacy ?(strict = false) text : t * warning list =
  let branches = ref [] in
  let ranges = ref [] in
  let samples = ref [] in
  let lbr = ref true in
  let header = ref None in
  (* G lines open a fingerprint (in file order); GB lines append blocks
     to the most recently seen G of the same function *)
  let fp_order : string list ref = ref [] in
  let fp_tbl :
      (string, Bolt_obj.Fingerprint.func * Bolt_obj.Fingerprint.block list ref)
      Hashtbl.t =
    Hashtbl.create 16
  in
  let warnings = ref [] in
  let reject lineno line reason =
    if strict then raise (Bad_format (Printf.sprintf "line %d: %s: %s" lineno reason line));
    warnings := { w_line = lineno; w_text = line; w_reason = reason } :: !warnings
  in
  let set_header f = header := Some (f (Option.value ~default:no_header !header)) in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        (* tolerate CRLF profiles copied across systems *)
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      try
        match String.split_on_char ' ' line with
        | [ "mode"; "lbr" ] -> lbr := true
        | [ "mode"; "sample" ] -> lbr := false
        | [ "mode"; m ] -> raise (Reject (Printf.sprintf "unknown mode %s" m))
        | [ "H"; "host"; v ] -> set_header (fun h -> { h with hd_host = v })
        | [ "H"; "build-id"; v ] -> set_header (fun h -> { h with hd_build_id = v })
        | [ "H"; "timestamp"; v ] ->
            let ts = non_negative "timestamp" (int_field "timestamp" v) in
            set_header (fun h -> { h with hd_timestamp = ts })
        | [ "H"; "events"; v ] ->
            let ev = count_field "events" v in
            set_header (fun h -> { h with hd_events = ev })
        | [ "H"; "weight"; v ] -> (
            match float_of_string_opt v with
            | Some w when w >= 0.0 -> set_header (fun h -> { h with hd_weight = w })
            | _ -> raise (Reject (Printf.sprintf "weight is not a number: %s" v)))
        | [ "H"; k; _ ] -> raise (Reject (Printf.sprintf "unknown header key %s" k))
        | [ "B"; ff; fo; tf; to_; c; m ] ->
            branches :=
              {
                br_from_func = ff;
                br_from_off = non_negative "from offset" (int_field "from offset" fo);
                br_to_func = tf;
                br_to_off = non_negative "to offset" (int_field "to offset" to_);
                br_count = count_field "count" c;
                br_mispreds = count_field "mispredicts" m;
              }
              :: !branches
        | [ "F"; f; s; e; c ] ->
            let rg_start = non_negative "range start" (int_field "range start" s) in
            let rg_end = non_negative "range end" (int_field "range end" e) in
            if rg_end < rg_start then
              raise (Reject (Printf.sprintf "range end %d before start %d" rg_end rg_start));
            ranges :=
              { rg_func = f; rg_start; rg_end; rg_count = count_field "count" c }
              :: !ranges
        | [ "S"; f; o; c ] ->
            samples :=
              {
                sm_func = f;
                sm_off = non_negative "offset" (int_field "offset" o);
                sm_count = count_field "count" c;
              }
              :: !samples
        | [ "G"; f; sz; oh; ch; calls ] ->
            let fp =
              {
                Bolt_obj.Fingerprint.fp_func = f;
                fp_size = non_negative "size" (int_field "size" sz);
                fp_opcode_hash = hash_field "opcode hash" oh;
                fp_cfg_hash = hash_field "cfg hash" ch;
                fp_calls =
                  (if calls = "-" then []
                   else String.split_on_char ',' calls);
                fp_blocks = [];
              }
            in
            if not (Hashtbl.mem fp_tbl f) then fp_order := f :: !fp_order;
            Hashtbl.replace fp_tbl f (fp, ref [])
        | [ "GB"; f; off; sz; oh; sh ] -> (
            match Hashtbl.find_opt fp_tbl f with
            | None -> raise (Reject "GB record before its G record")
            | Some (_, blocks) ->
                blocks :=
                  {
                    Bolt_obj.Fingerprint.bk_off =
                      non_negative "block offset" (int_field "block offset" off);
                    bk_size = non_negative "block size" (int_field "block size" sz);
                    bk_opcode_hash = hash_field "block opcode hash" oh;
                    bk_shape_hash = hash_field "block shape hash" sh;
                  }
                  :: !blocks)
        | [] | [ "" ] -> ()
        | ("B" | "F" | "S" | "G" | "GB" | "mode" | "H") :: _ ->
            raise (Reject "wrong field count")
        | _ -> raise (Reject "unknown record tag")
      with Reject reason -> reject lineno line reason)
    lines;
  let total =
    List.fold_left (fun a (b : branch) -> sat_add a b.br_count) 0L !branches
    |> fun acc ->
    List.fold_left (fun a (s : sample) -> sat_add a s.sm_count) acc !samples
  in
  let fingerprints =
    List.rev_map
      (fun f ->
        let fp, blocks = Hashtbl.find fp_tbl f in
        { fp with Bolt_obj.Fingerprint.fp_blocks = List.rev !blocks })
      !fp_order
  in
  ( {
      lbr = !lbr;
      header = !header;
      branches = List.rev !branches;
      ranges = List.rev !ranges;
      samples = List.rev !samples;
      total_samples = total;
      fingerprints;
    },
    List.rev !warnings )

(* ---- the allocation-free lexer ----

   One pass over the text by index: lines found with [index_from] (no
   [split_on_char] list), fields recorded as (start, stop) pairs into two
   reused arrays, integers parsed in place.  Strings materialize only for
   the fields a surviving record actually keeps.  The in-place numeric
   parsers take a fast path over plain ASCII decimal/hex and fall back to
   the stdlib parsers on a substring for anything unusual (signs other
   than a leading '-', 0x/0o prefixes, '_' separators, overflow), so
   accept/reject behaviour matches the legacy field parsers exactly. *)

let int_at text s e =
  let len = e - s in
  if len = 0 || len > 18 then int_of_string_opt (String.sub text s len)
  else begin
    let s' = if String.unsafe_get text s = '-' then s + 1 else s in
    let v = ref 0 in
    let ok = ref (s' < e) in
    (try
       for i = s' to e - 1 do
         let d = Char.code (String.unsafe_get text i) - 48 in
         if d < 0 || d > 9 then raise_notrace Exit;
         v := (!v * 10) + d
       done
     with Exit -> ok := false);
    if !ok then Some (if s' > s then - !v else !v)
    else int_of_string_opt (String.sub text s len)
  end

(* <= 18 plain digits always fits the native int, so the int fast path
   covers everything except genuinely 19-digit-or-odd spellings. *)
let int64_at text s e : int64 option =
  match int_at text s e with
  | Some v -> Some (Int64.of_int v)
  | None -> Int64.of_string_opt (String.sub text s (e - s))

let hex_at text s e =
  let len = e - s in
  if len = 0 || len > 15 then Bolt_obj.Fingerprint.of_hex (String.sub text s len)
  else begin
    let v = ref 0 in
    let ok = ref true in
    (try
       for i = s to e - 1 do
         let c = Char.code (String.unsafe_get text i) in
         let d =
           if c >= 48 && c <= 57 then c - 48
           else if c >= 97 && c <= 102 then c - 87
           else if c >= 65 && c <= 70 then c - 55
           else raise_notrace Exit
         in
         v := (!v lsl 4) lor d
       done
     with Exit -> ok := false);
    if !ok then Some !v else Bolt_obj.Fingerprint.of_hex (String.sub text s len)
  end

(* A corrupt million-line shard must not flood stderr (or heap) with a
   warning per line: lenient parsing keeps the first [max_warnings] and
   folds the rest into one "+K more" summary. *)
let default_max_warnings = 100

let scan ?(strict = false) ?(max_warnings = default_max_warnings)
    ?(branch = fun (_ : branch) -> ()) ?(range = fun (_ : range) -> ())
    ?(sample = fun (_ : sample) -> ()) text : t * warning list =
  let lbr = ref true in
  let header = ref None in
  let fp_order : string list ref = ref [] in
  let fp_tbl :
      (string, Bolt_obj.Fingerprint.func * Bolt_obj.Fingerprint.block list ref)
      Hashtbl.t =
    Hashtbl.create 16
  in
  let total = ref 0L in
  let warnings = ref [] in
  let n_warn = ref 0 in
  let overflow = ref 0 in
  let reject lineno ls le reason =
    if strict then
      raise
        (Bad_format
           (Printf.sprintf "line %d: %s: %s" lineno reason
              (String.sub text ls (le - ls))));
    if !n_warn < max_warnings then begin
      incr n_warn;
      warnings :=
        { w_line = lineno; w_text = String.sub text ls (le - ls); w_reason = reason }
        :: !warnings
    end
    else incr overflow
  in
  let set_header f = header := Some (f (Option.value ~default:no_header !header)) in
  (* field boundaries of the current line, reused across lines; no record
     needs more than 7 fields, so scanning stops once that is exceeded *)
  let max_fields = 8 in
  let fs = Array.make max_fields 0 and fe = Array.make max_fields 0 in
  let sub i = String.sub text fs.(i) (fe.(i) - fs.(i)) in
  (* GB records nearly always follow their G record directly (that is how
     every emitter writes them), so the last G's name and block list are
     cached and the common case is one span compare — no substring, no
     table lookup. *)
  let last_g : (string * Bolt_obj.Fingerprint.block list ref) option ref =
    ref None
  in
  let fld_is i lit =
    let s = fs.(i) and e = fe.(i) in
    e - s = String.length lit
    &&
    let ok = ref true in
    for k = 0 to e - s - 1 do
      if String.unsafe_get text (s + k) <> String.unsafe_get lit k then ok := false
    done;
    !ok
  in
  let int_field what i =
    match int_at text fs.(i) fe.(i) with
    | Some v -> v
    | None -> raise (Reject (Printf.sprintf "%s is not an integer: %s" what (sub i)))
  in
  let count_field what i =
    match int64_at text fs.(i) fe.(i) with
    | Some v when v >= 0L -> v
    | Some v -> raise (Reject (Printf.sprintf "%s is negative: %Ld" what v))
    | None -> raise (Reject (Printf.sprintf "%s is not an integer: %s" what (sub i)))
  in
  let hash_field what i =
    match hex_at text fs.(i) fe.(i) with
    | Some v -> v
    | None -> raise (Reject (Printf.sprintf "%s is not a hex hash: %s" what (sub i)))
  in
  let len = String.length text in
  let pos = ref 0 in
  let lineno = ref 0 in
  let running = ref true in
  while !running do
    incr lineno;
    let nl = try String.index_from text !pos '\n' with Not_found -> -1 in
    let ls = !pos in
    let le0 = if nl >= 0 then nl else len in
    (* tolerate CRLF profiles copied across systems *)
    let le = if le0 > ls && String.unsafe_get text (le0 - 1) = '\r' then le0 - 1 else le0 in
    (if le > ls then begin
       (* one pass over the line's characters: field boundaries land in
          [fs]/[fe] without a search call (or its option) per field.
          Scanning stops once [max_fields] spans are recorded — the
          dispatch below only needs to know the count is wrong. *)
       let nf = ref 0 in
       let fpos = ref ls in
       (try
          for i = ls to le - 1 do
            if String.unsafe_get text i = ' ' then begin
              fs.(!nf) <- !fpos;
              fe.(!nf) <- i;
              incr nf;
              fpos := i + 1;
              if !nf >= max_fields then raise_notrace Exit
            end
          done;
          fs.(!nf) <- !fpos;
          fe.(!nf) <- le;
          incr nf
        with Exit -> ());
       let nf = !nf in
       try
         let t0 = fe.(0) - fs.(0) in
         match if t0 > 0 then String.unsafe_get text fs.(0) else '\x00' with
         | 'B' when t0 = 1 ->
             if nf <> 7 then raise (Reject "wrong field count");
             let b =
               {
                 br_from_func = sub 1;
                 br_from_off = non_negative "from offset" (int_field "from offset" 2);
                 br_to_func = sub 3;
                 br_to_off = non_negative "to offset" (int_field "to offset" 4);
                 br_count = count_field "count" 5;
                 br_mispreds = count_field "mispredicts" 6;
               }
             in
             total := sat_add !total b.br_count;
             branch b
         | 'F' when t0 = 1 ->
             if nf <> 5 then raise (Reject "wrong field count");
             let rg_start = non_negative "range start" (int_field "range start" 2) in
             let rg_end = non_negative "range end" (int_field "range end" 3) in
             if rg_end < rg_start then
               raise
                 (Reject (Printf.sprintf "range end %d before start %d" rg_end rg_start));
             range
               { rg_func = sub 1; rg_start; rg_end; rg_count = count_field "count" 4 }
         | 'S' when t0 = 1 ->
             if nf <> 4 then raise (Reject "wrong field count");
             let s =
               {
                 sm_func = sub 1;
                 sm_off = non_negative "offset" (int_field "offset" 2);
                 sm_count = count_field "count" 3;
               }
             in
             total := sat_add !total s.sm_count;
             sample s
         | 'G' when t0 = 1 ->
             if nf <> 6 then raise (Reject "wrong field count");
             let f = sub 1 in
             let fp =
               {
                 Bolt_obj.Fingerprint.fp_func = f;
                 fp_size = non_negative "size" (int_field "size" 2);
                 fp_opcode_hash = hash_field "opcode hash" 3;
                 fp_cfg_hash = hash_field "cfg hash" 4;
                 fp_calls =
                   (if fld_is 5 "-" then [] else String.split_on_char ',' (sub 5));
                 fp_blocks = [];
               }
             in
             let blocks = ref [] in
             if not (Hashtbl.mem fp_tbl f) then fp_order := f :: !fp_order;
             Hashtbl.replace fp_tbl f (fp, blocks);
             last_g := Some (f, blocks)
         | 'G' when t0 = 2 && String.unsafe_get text (fs.(0) + 1) = 'B' -> (
             if nf <> 6 then raise (Reject "wrong field count");
             (* writers emit a function's GB lines right after its G
                line, so the common case is one short string compare
                instead of a table lookup *)
             match
               (match !last_g with
               | Some (g, blocks) when fld_is 1 g -> Some blocks
               | _ -> Option.map snd (Hashtbl.find_opt fp_tbl (sub 1)))
             with
             | None -> raise (Reject "GB record before its G record")
             | Some blocks ->
                 blocks :=
                   {
                     Bolt_obj.Fingerprint.bk_off =
                       non_negative "block offset" (int_field "block offset" 2);
                     bk_size = non_negative "block size" (int_field "block size" 3);
                     bk_opcode_hash = hash_field "block opcode hash" 4;
                     bk_shape_hash = hash_field "block shape hash" 5;
                   }
                   :: !blocks)
         | 'H' when t0 = 1 ->
             if nf <> 3 then raise (Reject "wrong field count");
             if fld_is 1 "host" then set_header (fun h -> { h with hd_host = sub 2 })
             else if fld_is 1 "build-id" then
               set_header (fun h -> { h with hd_build_id = sub 2 })
             else if fld_is 1 "timestamp" then begin
               let ts = non_negative "timestamp" (int_field "timestamp" 2) in
               set_header (fun h -> { h with hd_timestamp = ts })
             end
             else if fld_is 1 "events" then begin
               let ev = count_field "events" 2 in
               set_header (fun h -> { h with hd_events = ev })
             end
             else if fld_is 1 "weight" then begin
               match float_of_string_opt (sub 2) with
               | Some w when w >= 0.0 -> set_header (fun h -> { h with hd_weight = w })
               | _ -> raise (Reject (Printf.sprintf "weight is not a number: %s" (sub 2)))
             end
             else raise (Reject (Printf.sprintf "unknown header key %s" (sub 1)))
         | 'm' when fld_is 0 "mode" ->
             if nf <> 2 then raise (Reject "wrong field count");
             if fld_is 1 "lbr" then lbr := true
             else if fld_is 1 "sample" then lbr := false
             else raise (Reject (Printf.sprintf "unknown mode %s" (sub 1)))
         | _ -> raise (Reject "unknown record tag")
       with Reject reason -> reject !lineno ls le reason
     end);
    if nl >= 0 then pos := nl + 1 else running := false
  done;
  let fingerprints =
    List.rev_map
      (fun f ->
        let fp, blocks = Hashtbl.find fp_tbl f in
        { fp with Bolt_obj.Fingerprint.fp_blocks = List.rev !blocks })
      !fp_order
  in
  let warnings = List.rev !warnings in
  let warnings =
    if !overflow > 0 then
      warnings
      @ [
          {
            w_line = 0;
            w_text = "";
            w_reason = Printf.sprintf "+%d more malformed lines skipped" !overflow;
          };
        ]
    else warnings
  in
  ( {
      lbr = !lbr;
      header = !header;
      branches = [];
      ranges = [];
      samples = [];
      total_samples = !total;
      fingerprints;
    },
    warnings )

let parse ?strict ?max_warnings text : t * warning list =
  let branches = ref [] and ranges = ref [] and samples = ref [] in
  let t, warnings =
    scan ?strict ?max_warnings
      ~branch:(fun b -> branches := b :: !branches)
      ~range:(fun r -> ranges := r :: !ranges)
      ~sample:(fun s -> samples := s :: !samples)
      text
  in
  ( {
      t with
      branches = List.rev !branches;
      ranges = List.rev !ranges;
      samples = List.rev !samples;
    },
    warnings )

let load_with_warnings ?strict ?max_warnings path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse ?strict ?max_warnings text

let load ?strict path = fst (load_with_warnings ?strict path)
